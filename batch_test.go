// Batch-engine acceptance at the facade: the columnar sweep path must
// be observationally identical to the scalar path on every seed sheet —
// bit-identical points, identical error text — and measurably faster on
// the 10k-point sweep EXPERIMENTS.md records as X21.
package powerplay_test

import (
	"context"
	"math"
	"os"
	"testing"
	"time"

	"powerplay"
)

// batchConfigs are the chunked runner shapes checked against the
// scalar oracle (ChunkSize 1).
var batchConfigs = []powerplay.ExploreRunner{
	{Workers: 1},                // default chunk, serial
	{Workers: 4},                // default chunk, parallel
	{Workers: 1, ChunkSize: 64}, // several chunks per sweep
	{Workers: 4, ChunkSize: 64},
	{Workers: 3, ChunkSize: 17}, // chunk not dividing the sweep
}

func samePoints(t *testing.T, label string, got, want []powerplay.ExplorePoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i].Power) != math.Float64bits(want[i].Power) ||
			math.Float64bits(got[i].Area) != math.Float64bits(want[i].Area) ||
			math.Float64bits(got[i].Delay) != math.Float64bits(want[i].Delay) {
			t.Errorf("%s point %d: batch %+v, scalar %+v", label, i, got[i], want[i])
		}
	}
}

// TestBatchSweepEquivalenceOnSeedSheets sweeps every seed design along
// both operating-point axes, 257 points each, through the scalar engine
// and through every chunked configuration. The supply range starts at
// 0.8 V, inside every model's schema but below the delay-scale
// threshold region where delays blow up toward +Inf — those bit
// patterns must survive the columnar path unchanged.
func TestBatchSweepEquivalenceOnSeedSheets(t *testing.T) {
	axes := []struct {
		name   string
		values []float64
	}{
		{"vdd", powerplay.Linspace(0.8, 3.3, 257)},
		{"f", powerplay.Linspace(1e5, 66e6, 257)},
	}
	ctx := context.Background()
	for name, d := range seedDesigns(t) {
		t.Run(name, func(t *testing.T) {
			for _, ax := range axes {
				scalar := &powerplay.ExploreRunner{Workers: 1, ChunkSize: 1}
				want, wantErr := scalar.Sweep(ctx, d, ax.name, ax.values)
				for _, cfg := range batchConfigs {
					cfg := cfg
					got, err := cfg.Sweep(ctx, d, ax.name, ax.values)
					if (err == nil) != (wantErr == nil) {
						t.Fatalf("%s %+v: err=%v, scalar err=%v", ax.name, cfg, err, wantErr)
					}
					if wantErr != nil {
						if err.Error() != wantErr.Error() {
							t.Fatalf("%s %+v: error text differs:\nbatch:  %v\nscalar: %v",
								ax.name, cfg, err, wantErr)
						}
						continue
					}
					samePoints(t, name+"/"+ax.name, got, want)
				}
			}
		})
	}
}

// TestBatchSweepErrorEquivalenceOnSeedSheets drives every seed design
// into failure — 0.2 V sits below every model's supply range — and
// demands the chunked engine reproduce the scalar engine's error text
// exactly, regardless of where in the chunk the bad point lands.
func TestBatchSweepErrorEquivalenceOnSeedSheets(t *testing.T) {
	values := []float64{1.5, 2.0, 0.2, 2.5, 0.2, 3.0}
	ctx := context.Background()
	for name, d := range seedDesigns(t) {
		t.Run(name, func(t *testing.T) {
			_, want := (&powerplay.ExploreRunner{Workers: 1, ChunkSize: 1}).Sweep(ctx, d, "vdd", values)
			if want == nil {
				t.Fatal("scalar sweep over 0.2 V did not fail")
			}
			for _, cfg := range batchConfigs {
				cfg := cfg
				_, err := cfg.Sweep(ctx, d, "vdd", values)
				if err == nil {
					t.Fatalf("%+v: chunked sweep did not fail", cfg)
				}
				if err.Error() != want.Error() {
					t.Fatalf("%+v: error text differs:\nbatch:  %v\nscalar: %v", cfg, err, want)
				}
			}
		})
	}
}

// benchmarkSweep10k is X21: the Figure 3 sheet swept across 10,000
// supply points on one worker, scalar versus columnar. Compare against
// BenchmarkSweepSerial (X18/X19) for the historical 64-point shape.
func benchmarkSweep10k(b *testing.B, chunk int) {
	reg := powerplay.StandardLibrary()
	d, err := powerplay.Luminance2(reg)
	if err != nil {
		b.Fatal(err)
	}
	runner := &powerplay.ExploreRunner{Workers: 1, ChunkSize: chunk}
	values := powerplay.Linspace(1.0, 3.3, 10000)
	ctx := context.Background()
	if _, err := runner.Sweep(ctx, d, "vdd", values); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Sweep(ctx, d, "vdd", values); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(10000*b.N)/b.Elapsed().Seconds(), "points/s")
}

func BenchmarkSweep10kScalar(b *testing.B) { benchmarkSweep10k(b, 1) }
func BenchmarkSweep10kBatch(b *testing.B)  { benchmarkSweep10k(b, 0) }

// TestBatchThroughputSmoke is the CI regression gate behind
// POWERPLAY_BENCH_BATCH (make bench-batch): one in-process X21 run,
// failing if the columnar engine has lost its edge over the scalar
// path on the 10k-point sweep.
func TestBatchThroughputSmoke(t *testing.T) {
	if os.Getenv("POWERPLAY_BENCH_BATCH") == "" {
		t.Skip("set POWERPLAY_BENCH_BATCH=1 to run the batch throughput smoke")
	}
	reg := powerplay.StandardLibrary()
	d, err := powerplay.Luminance2(reg)
	if err != nil {
		t.Fatal(err)
	}
	values := powerplay.Linspace(1.0, 3.3, 10000)
	ctx := context.Background()
	rate := func(chunk int) float64 {
		runner := &powerplay.ExploreRunner{Workers: 1, ChunkSize: chunk}
		if _, err := runner.Sweep(ctx, d, "vdd", values); err != nil { // warm compile caches
			t.Fatal(err)
		}
		const reps = 3
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := runner.Sweep(ctx, d, "vdd", values); err != nil {
				t.Fatal(err)
			}
		}
		return float64(reps*len(values)) / time.Since(start).Seconds()
	}
	scalar := rate(1)
	batch := rate(0)
	t.Logf("scalar %.0f points/s, batch %.0f points/s (%.1fx)", scalar, batch, batch/scalar)
	if batch < scalar {
		t.Fatalf("columnar sweep slower than scalar: %.0f vs %.0f points/s", batch, scalar)
	}
}
