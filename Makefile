# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet race bench benchserve bench-batch bench-incremental metrics-smoke faultsim crashsim shardsim federationsim repro examples libdoc clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The X20 serving-throughput report: 16 concurrent clients against the
# InfoPad sheet with the read caches on and off (see EXPERIMENTS.md).
benchserve:
	$(GO) run ./cmd/loadgen -clients 16 -requests 1000 -o BENCH_SERVE.json

# The X21 batch-sweep regression gate: one in-process 10k-point sweep
# through the scalar and columnar engines, failing if columnar is no
# longer faster (see EXPERIMENTS.md).
bench-batch:
	POWERPLAY_BENCH_BATCH=1 $(GO) test -run 'TestBatchThroughputSmoke' -v .

# The X22 incremental-Play regression gate: a one-binding edit on the
# InfoPad sheet must re-evaluate at most 20% of the plan's slots and
# beat a full (recompiling) Play by at least 5x, bit-identically (see
# EXPERIMENTS.md).
bench-incremental:
	POWERPLAY_BENCH_INCREMENTAL=1 $(GO) test -run 'TestIncrementalPlaySmoke' -v .

# The observability smoke: drive real traffic through an in-process
# site and assert the /metrics contract — every instrument family
# present, histogram buckets cumulative, counters monotonic — under the
# race detector.
metrics-smoke:
	$(GO) test -race -run 'TestMetricsSmoke' ./internal/web/

# The fault-injection suite: the faultnet harness plus the remote
# resilience and hardening tests, raced and repeated to shake out
# timing-dependent retry/breaker/cancellation bugs.
faultsim:
	$(GO) test -race -count=3 ./internal/faultnet/
	$(GO) test -race -count=3 -run 'TestRemote|TestBreaker|TestMount|TestRefresh|TestSheetDegrades|TestSweepClientDisconnect|TestRecoverMiddleware|TestBodyLimit|TestRequestTimeout' ./internal/web/
	$(GO) test -race -count=3 -run 'TestServeGracefulShutdown' ./cmd/powerplay/

# The crash simulator: build the real binary, kill -9 it repeatedly —
# mid-write and at quiescence — over one data directory, and assert
# every reboot recovers a consistent, byte-identical site from the
# journal (see DESIGN.md "Durability").
crashsim:
	POWERPLAY_CRASHSIM=1 $(GO) test -run 'TestCrashSim' -v ./cmd/powerplay/

# The shard fleet simulator: build the real binary, run a router over
# two shard-aware backends, and kill -9 / restart one backend under
# live traffic — the breaker must open (fast 503s for the dead shard,
# the survivor unperturbed) and the restarted shard must rejoin
# serving its partition byte-identically (see DESIGN.md "Sharding").
shardsim:
	POWERPLAY_SHARDSIM=1 $(GO) test -run 'TestShardSim' -v ./cmd/powerplay/

# The federation simulator: build the real binary, run a publisher and
# a subscribed mirror, kill -9 the mirror mid-sync and the publisher
# outright — the restarted mirror must serve every mirrored model from
# its journal, converge on missed publications, and keep serving with
# the publisher dead (see DESIGN.md "Federation").
federationsim:
	POWERPLAY_FEDSIM=1 $(GO) test -run 'TestFedSim' -v ./cmd/powerplay/

# Regenerate every figure, table and ablation from the paper.
repro:
	$(GO) run ./cmd/repro

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vqdecoder
	$(GO) run ./examples/infopad
	$(GO) run ./examples/sorting
	$(GO) run ./examples/remotelib
	$(GO) run ./examples/archscale

# Regenerate the library reference.
libdoc:
	$(GO) run ./cmd/ppcli libdoc > LIBRARY.md

# The final-deliverable logs.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
