// Equivalence harness for the compiled evaluation pipeline: every seed
// sheet is evaluated through the default (compiled) path and through
// the tree interpreter, at several operating points, and the result
// trees must match exactly — bit-identical floats, same resolved
// parameters, same shape.  This is the acceptance gate that lets
// Evaluate/EvaluateAt route through the plan without any observable
// change.
package powerplay_test

import (
	"testing"

	"powerplay"
)

// seedDesigns enumerates every design builder the repo ships.
func seedDesigns(t *testing.T) map[string]*powerplay.Design {
	t.Helper()
	reg := powerplay.StandardLibrary()
	out := make(map[string]*powerplay.Design)
	build := func(name string, d *powerplay.Design, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = d
	}
	d1, err := powerplay.Luminance1(reg)
	build("Luminance_1", d1, err)
	d2, err := powerplay.Luminance2(reg)
	build("Luminance_2", d2, err)
	ip, err := powerplay.InfoPad(reg)
	build("InfoPad", ip, err)
	mac, err := powerplay.MACDesign(reg, 4, 1e6)
	build("MAC", mac, err)
	return out
}

func sameTree(t *testing.T, name, path string, a, b *powerplay.Result) {
	t.Helper()
	if a.Power != b.Power || a.DynamicPower != b.DynamicPower || a.StaticPower != b.StaticPower ||
		a.Area != b.Area || a.Delay != b.Delay || a.EnergyPerOp != b.EnergyPerOp {
		t.Errorf("%s%s: compiled %v/%v/%v/%v vs interpreted %v/%v/%v/%v",
			name, path, a.Power, a.Area, a.Delay, a.EnergyPerOp,
			b.Power, b.Area, b.Delay, b.EnergyPerOp)
	}
	if len(a.Params) != len(b.Params) {
		t.Errorf("%s%s: params %v vs %v", name, path, a.Params, b.Params)
	} else {
		for k, v := range a.Params {
			if bv, ok := b.Params[k]; !ok || bv != v {
				t.Errorf("%s%s: param %q = %v vs %v", name, path, k, v, bv)
			}
		}
	}
	if len(a.Children) != len(b.Children) {
		t.Fatalf("%s%s: %d children vs %d", name, path, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		sameTree(t, name, path+"/"+a.Children[i].Node.Name, a.Children[i], b.Children[i])
	}
}

// TestCompiledEquivalenceOnSeedSheets is the repo-wide acceptance test:
// same values, same errors, both paths, every sheet.
func TestCompiledEquivalenceOnSeedSheets(t *testing.T) {
	points := []map[string]float64{
		nil,
		{"vdd": 1.1},
		{"vdd": 3.3, "f": 5e6},
		{"f": 1e4},
		{"vdd": 0.2}, // below most models' ranges: both paths must fail identically
		{"vdd": 2.0, "nonsense": 7},
	}
	for name, d := range seedDesigns(t) {
		t.Run(name, func(t *testing.T) {
			for _, ov := range points {
				rc, errC := d.EvaluateAt(ov)
				ri, errI := d.EvaluateInterpreted(ov)
				if (errC == nil) != (errI == nil) {
					t.Fatalf("at %v: compiled err=%v, interpreted err=%v", ov, errC, errI)
				}
				if errC != nil {
					if errC.Error() != errI.Error() {
						t.Fatalf("at %v: error text differs:\ncompiled:    %v\ninterpreted: %v", ov, errC, errI)
					}
					continue
				}
				sameTree(t, name, "", rc, ri)
			}
		})
	}
}
