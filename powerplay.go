// Package powerplay is a from-scratch reproduction of PowerPlay, the
// early design-phase power exploration framework of Lidsky and Rabaey
// ("Early Power Exploration — A World Wide Web Application", DAC 1996).
//
// PowerPlay estimates the power, area and timing of a system before any
// compilable description exists, purely by manipulating parameterized
// models of functional blocks.  Every model maps its parameters (bit
// widths, memory organization, bias currents, efficiencies…) onto the
// EQ 1 template
//
//	P = Σᵢ Csw,ᵢ·Vswing,ᵢ·VDD·fᵢ + I·VDD
//
// and is scalable with supply voltage and technology.  Designs are
// hierarchical spreadsheets whose cells may be expressions over design
// variables and over other modules' computed results; whole sheets lump
// into reusable macro models; and a web application makes the library,
// the forms and the sheets universally accessible, including an HTTP
// protocol for sharing model libraries between sites.
//
// This package is the public facade: it re-exports the core types and
// the entry points a downstream user needs.  The implementation lives
// in the internal packages (see DESIGN.md for the full inventory).
//
// Quick start:
//
//	reg := powerplay.StandardLibrary()
//	d := powerplay.NewDesign("demo", reg)
//	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
//	d.Root.SetGlobalValue("f", 2e6, "2MHz")
//	row := d.Root.MustAddChild("mult", powerplay.ArrayMultiplier)
//	_ = row.SetParam("bwA", "8")
//	_ = row.SetParam("bwB", "8")
//	res, err := d.Evaluate()
//	// res.Power == 64 × 253 fF × 1.5² × 2 MHz
package powerplay

import (
	"context"
	"io"

	"powerplay/internal/activity"
	"powerplay/internal/cachesim"
	"powerplay/internal/core/explore"
	"powerplay/internal/core/model"
	"powerplay/internal/core/sheet"
	"powerplay/internal/infopad"
	"powerplay/internal/library"
	"powerplay/internal/proc"
	"powerplay/internal/units"
	"powerplay/internal/vqsim"
	"powerplay/internal/web"
)

// Core model types.
type (
	// Model is a parameterized power/area/delay model.
	Model = model.Model
	// Registry is a model namespace (a library).
	Registry = model.Registry
	// Params is a parameter valuation.
	Params = model.Params
	// Param describes one model parameter.
	Param = model.Param
	// Estimate is an evaluated EQ 1 estimate.
	Estimate = model.Estimate
	// Info describes a model for menus and documentation.
	Info = model.Info
	// Class is a component class.
	Class = model.Class
)

// Spreadsheet types.
type (
	// Design is a hierarchical design sheet.
	Design = sheet.Design
	// Node is one row (possibly a subtree) of a sheet.
	Node = sheet.Node
	// Result is an evaluated row.
	Result = sheet.Result
	// Macro is a design lumped into a reusable model.
	Macro = sheet.Macro
	// Incremental is a design's incremental Play engine: it re-executes
	// only the dirty cone an edit reaches, bit-identically to a full
	// evaluation.
	Incremental = sheet.Incremental
	// PlayDelta reports what one incremental Play recomputed — the
	// changed-cell delta set.
	PlayDelta = sheet.PlayDelta
)

// Web application types.
type (
	// Server is one PowerPlay web site.
	Server = web.Server
	// ServerConfig parameterizes a site.
	ServerConfig = web.Config
	// Remote is a client for another site's model API.  It retries,
	// circuit-breaks, and degrades to cached estimates by default; see
	// DESIGN.md's "Resilience" section.
	Remote = web.Remote
	// RetryPolicy paces a Remote's re-attempts.
	RetryPolicy = web.RetryPolicy
	// Breaker is a Remote's per-site circuit breaker.
	Breaker = web.Breaker
)

// ErrRemoteUnavailable is the typed error behind every remote failure
// that means "the publishing site cannot be reached": match it with
// errors.Is to tell a dead site from a rejected request.
var ErrRemoteUnavailable = web.ErrRemoteUnavailable

// Standard library cell names.
const (
	RippleAdder     = library.RippleAdder
	CLAAdder        = library.CLAAdder
	SvenssonAdder   = library.SvenssonAdder
	ArrayMultiplier = library.ArrayMultiplier
	LogShifter      = library.LogShifter
	Mux             = library.Mux
	Register        = library.Register
	SRAM            = library.SRAM
	LowSwingSRAM    = library.LowSwingSRAM
	DRAM            = library.DRAM
	PadBuffer       = library.PadBuffer
	ClockBuffer     = library.ClockBuffer
	RandomCtrl      = library.RandomCtrl
	ROMCtrl         = library.ROMCtrl
	PLACtrl         = library.PLACtrl
	Wire            = library.Wire
	AnalogBias      = library.AnalogBias
	AnalogOTA       = library.AnalogOTA
	DCDC            = library.DCDC
	GenericCPU      = library.GenericCPU
	FixedPart       = library.FixedPart
)

// StandardLibrary builds the built-in characterized library: the UCB
// low-power cells (EQ 2–10, EQ 20), interconnect, analog, converter,
// processor and commodity models.
func StandardLibrary() *Registry { return library.Standard() }

// NewDesign creates an empty design sheet over a library.
func NewDesign(name string, reg *Registry) *Design {
	return sheet.NewDesign(name, reg)
}

// ParseDesign loads a design sheet from its JSON form.
func ParseDesign(data []byte, reg *Registry) (*Design, error) {
	return sheet.ParseDesign(data, reg)
}

// ParseDeck loads a design sheet from the hand-writable deck format.
func ParseDeck(src string, reg *Registry) (*Design, error) {
	return sheet.ParseDeck(src, reg)
}

// FormatDeck serializes a design in deck form.
func FormatDeck(d *Design) string { return sheet.FormatDeck(d) }

// NewMacro lumps a design into a reusable library model.
func NewMacro(name, title, doc string, d *Design) (*Macro, error) {
	return sheet.NewMacro(name, title, doc, d)
}

// Report writes the text spreadsheet view of an evaluated design.
func Report(w io.Writer, d *Design, r *Result) { sheet.Report(w, d, r) }

// Evaluate validates parameters against a model's schema and runs it.
func Evaluate(m Model, p Params) (*Estimate, error) { return model.Evaluate(m, p) }

// NewServer builds a PowerPlay web site over a registry.
func NewServer(cfg ServerConfig, reg *Registry) (*Server, error) {
	return web.NewServer(cfg, reg)
}

// MountRemote registers every model of a remote site into reg under
// prefix+"." — the Figure 6–7 library-sharing protocol.  The mount is
// atomic: on any failure the registry is left exactly as it was.
func MountRemote(reg *Registry, rc *Remote, prefix string) (int, error) {
	return web.Mount(reg, rc, prefix)
}

// RefreshRemote re-syncs a mounted prefix with its remote site: new
// models appear, unpublished ones are unmounted, and any failure leaves
// the existing mount untouched.
func RefreshRemote(ctx context.Context, reg *Registry, rc *Remote, prefix string) (int, error) {
	return web.Refresh(ctx, reg, rc, prefix)
}

// Luminance1 builds the paper's Figure 1 video decompression sheet.
func Luminance1(reg *Registry) (*Design, error) { return vqsim.Luminance1(reg) }

// Luminance2 builds the paper's Figure 3 alternative architecture.
func Luminance2(reg *Registry) (*Design, error) { return vqsim.Luminance2(reg) }

// InfoPad builds the paper's Figure 5 system sheet (registering the
// luminance macro into reg as a side effect).
func InfoPad(reg *Registry) (*Design, error) { return infopad.Build(reg) }

// Instruction-level processor modeling (EQ 11–12 and the fictitious
// processor substrate).
type (
	// EnergyTable is a per-instruction-class energy characterization.
	EnergyTable = proc.EnergyTable
	// SortEnergy is one row of the sorting-energy study.
	SortEnergy = proc.SortEnergy
	// CacheConfig describes the Dinero-style data cache used to refine
	// instruction-level estimates.
	CacheConfig = cachesim.Config
)

// DefaultEnergyTable returns the built-in 3.3 V characterization of the
// fictitious processor.
func DefaultEnergyTable() *EnergyTable { return proc.DefaultEnergyTable() }

// MeasureSorts runs the built-in sorting programs (bubble, insertion,
// shellsort, quicksort) on the fictitious processor over a copy of
// data, through a simulated data cache, and prices each run with EQ 12
// — the Ong/Yan study the paper cites.
func MeasureSorts(data []int64, table *EnergyTable, cache CacheConfig) ([]SortEnergy, error) {
	return proc.MeasureSorts(data, table, cache)
}

// Design-space exploration helpers.
type (
	// ExplorePoint is one evaluated point of a sweep.
	ExplorePoint = explore.Point
	// ExploreRunner is the parallel exploration engine: a worker pool
	// that fans sweep points out over per-worker design snapshots in
	// chunks, evaluating each chunk columnar when the sheet allows.
	// See explore.Runner for the full concurrency contract.
	ExploreRunner = explore.Runner
	// ExploreCache memoizes evaluated points by override vector; see
	// explore.Cache for the validity rules.
	ExploreCache = explore.Cache
	// SupplySavings reports a voltage-scaling result.
	SupplySavings = explore.SupplySavings
	// SignalStats is a word-level signal description for the
	// dual-bit-type activity model.
	SignalStats = activity.Stats
	// AdviceRow ranks one power consumer of an evaluated sheet.
	AdviceRow = sheet.AdviceRow
	// TimingRow is one row of a timing report.
	TimingRow = sheet.TimingRow
)

// DefaultChunkSize is the sweep chunk size a zero
// ExploreRunner.ChunkSize selects: the unit of columnar evaluation.
const DefaultChunkSize = explore.DefaultChunkSize

// NewExploreCache returns an evaluation cache for exploration runs;
// limit <= 0 selects the default size.  A cache is valid for a single
// design snapshot — drop it when the design is edited.
func NewExploreCache(limit int) *ExploreCache { return explore.NewCache(limit) }

// Sweep evaluates the design across values of one variable, in
// parallel across GOMAXPROCS workers with deterministic result order.
// The context cancels or bounds the run; use an ExploreRunner to
// control the worker count or attach an ExploreCache.
func Sweep(ctx context.Context, d *Design, name string, values []float64) ([]ExplorePoint, error) {
	return explore.Sweep(ctx, d, name, values)
}

// Sweep2D evaluates the cross product of two variables, row-major in
// the first, with the same parallelism and cancellation semantics as
// Sweep.
func Sweep2D(ctx context.Context, d *Design, n1 string, v1 []float64, n2 string, v2 []float64) ([]ExplorePoint, error) {
	return explore.Sweep2D(ctx, d, n1, v1, n2, v2)
}

// Pareto extracts the power/delay non-dominated subset of a sweep.
func Pareto(points []ExplorePoint) []ExplorePoint { return explore.Pareto(points) }

// Linspace returns n evenly spaced values across [lo, hi].
func Linspace(lo, hi float64, n int) []float64 { return explore.Linspace(lo, hi, n) }

// MinSupply finds the lowest supply at which the design still meets a
// clock target.  The context cancels or bounds the search.
func MinSupply(ctx context.Context, d *Design, fTarget, lo, hi float64) (float64, error) {
	return explore.MinSupply(ctx, d, fTarget, lo, hi)
}

// VoltageScale compares running at the minimum frequency-meeting
// supply against a nominal supply.  The context cancels or bounds the
// underlying search.
func VoltageScale(ctx context.Context, d *Design, fTarget, lo, nominal float64) (SupplySavings, error) {
	return explore.VoltageScale(ctx, d, fTarget, lo, nominal)
}

// Advice ranks every model row of an evaluated design by power.
func Advice(r *Result) []AdviceRow { return sheet.Advice(r) }

// ArchPoint is one architecture's operating point in the
// parallelism-vs-voltage study.
type ArchPoint = vqsim.ArchPoint

// MACDesign builds an n-lane multiply-accumulate datapath sheet at a
// total sample rate.
func MACDesign(reg *Registry, lanes int, sampleRate float64) (*Design, error) {
	return vqsim.MACDesign(reg, lanes, sampleRate)
}

// ArchScale runs the architecture-driven voltage scaling study: for
// each parallelism degree, the minimum supply meeting the per-lane
// clock and the resulting power and area.
func ArchScale(ctx context.Context, reg *Registry, sampleRate float64, lanes []int) ([]ArchPoint, error) {
	return vqsim.ArchScale(ctx, reg, sampleRate, lanes)
}

// TimingReport checks every model row against a clock target in hertz.
func TimingReport(r *Result, fTarget float64) ([]TimingRow, error) {
	return sheet.TimingReport(r, units.Hertz(fTarget))
}
