package powerplay_test

import (
	"fmt"
	"os"

	"powerplay"
)

// The three-minute estimate: pick a characterized cell, set its
// parameters, read the EQ 1 result.
func ExampleEvaluate() {
	reg := powerplay.StandardLibrary()
	m, _ := reg.Lookup(powerplay.ArrayMultiplier)
	est, err := powerplay.Evaluate(m, powerplay.Params{
		"bwA": 8, "bwB": 8, "vdd": 1.5, "f": 2e6,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("C_T  =", est.SwitchedCap())
	fmt.Println("E/op =", est.EnergyPerOp())
	fmt.Println("P    =", est.Power())
	// Output:
	// C_T  = 16.19pF
	// E/op = 36.43pJ
	// P    = 72.86uW
}

// A design sheet with variables: parameters are expressions, and the
// whole sheet re-prices when a variable changes.
func ExampleDesign() {
	reg := powerplay.StandardLibrary()
	d := powerplay.NewDesign("demo", reg)
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 2e6, "2MHz")
	mem := d.Root.MustAddChild("buffer", powerplay.SRAM)
	_ = mem.SetParam("words", "2048")
	_ = mem.SetParam("bits", "8")
	_ = mem.SetParam("f", "f/16") // read once per 16 pixels

	r, _ := d.Evaluate()
	fmt.Println("at 1.5V:", r.Power)
	swept, _ := d.EvaluateAt(map[string]float64{"vdd": 3.0})
	fmt.Println("at 3.0V:", swept.Power)
	// Output:
	// at 1.5V: 23.65uW
	// at 3.0V: 94.59uW
}

// Inter-model interaction: a DC-DC converter row whose load is an
// expression over the rows it feeds (EQ 19).
func ExampleDesign_interModel() {
	reg := powerplay.StandardLibrary()
	d := powerplay.NewDesign("system", reg)
	d.Root.SetGlobalValue("vdd", 5, "5")
	d.Root.SetGlobalValue("f", 1e6, "1MHz")
	radio := d.Root.MustAddChild("radio", powerplay.FixedPart)
	_ = radio.SetParam("pnom", "0.4")
	conv := d.Root.MustAddChild("converter", powerplay.DCDC)
	_ = conv.SetParam("pload", `power("radio")`)
	_ = conv.SetParam("eta", "0.8")

	r, _ := d.Evaluate()
	fmt.Println("radio:    ", r.Find("radio").Power)
	fmt.Println("converter:", r.Find("converter").Power)
	// Output:
	// radio:     400mW
	// converter: 100mW
}

// Deck files are the hand-writable form of a sheet.
func ExampleParseDeck() {
	reg := powerplay.StandardLibrary()
	d, err := powerplay.ParseDeck(`
design quick
var vdd = 1.5
var f = 2MHz
row mult ucb.mult.array bwA=8 bwB=8
row acc ucb.add.ripple bits=16
`, reg)
	if err != nil {
		panic(err)
	}
	r, _ := d.Evaluate()
	fmt.Println(r.Power)
	// Output:
	// 76.32uW
}

// A whole design lumps into a macro: one row of a bigger sheet.
func ExampleNewMacro() {
	reg := powerplay.StandardLibrary()
	chip, _ := powerplay.Luminance2(reg)
	mac, _ := powerplay.NewMacro("macro.chip", "Video chip", "Figure 3 design", chip)
	_ = reg.Register(mac)

	system := powerplay.NewDesign("terminal", reg)
	system.Root.SetGlobalValue("vdd", 1.5, "1.5")
	system.Root.SetGlobalValue("f", 2e6, "2MHz")
	system.Root.MustAddChild("video", "macro.chip")
	r, _ := system.Evaluate()
	fmt.Println(r.Power)
	// Output:
	// 142.3uW
}

// Report renders the Figure 2-style spreadsheet view.
func ExampleReport() {
	reg := powerplay.StandardLibrary()
	d, _ := powerplay.Luminance1(reg)
	r, _ := d.Evaluate()
	powerplay.Report(os.Stdout, d, r)
	// Unordered output comparison is not needed: the report is
	// deterministic, but long; just show it ran.
}
