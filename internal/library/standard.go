// Package library assembles PowerPlay's model library: the
// pre-characterized UC Berkeley low-power cells the paper ships with,
// data-sheet commodity parts for system-level work, and user-defined
// equation models entered through the web form and persisted as JSON.
package library

import (
	"powerplay/internal/analog"
	"powerplay/internal/cells"
	"powerplay/internal/core/model"
	"powerplay/internal/ctrl"
	"powerplay/internal/dcdc"
	"powerplay/internal/proc"
	"powerplay/internal/storage"
	"powerplay/internal/units"
	"powerplay/internal/wire"
)

// Cell names of the standard library, so call sites don't scatter
// string literals.
const (
	RippleAdder     = "ucb.add.ripple"
	CLAAdder        = "ucb.add.cla"
	SvenssonAdder   = "ucb.add.svensson"
	ArrayMultiplier = "ucb.mult.array"
	LogShifter      = "ucb.shift.log"
	Mux             = "ucb.mux"
	Register        = "ucb.reg"
	SRAM            = "ucb.sram"
	LowSwingSRAM    = "ucb.sram.lowswing"
	DRAM            = "commodity.dram"
	PadBuffer       = "ucb.pad"
	ClockBuffer     = "ucb.clkbuf"
	RandomCtrl      = "ucb.ctrl.random"
	ROMCtrl         = "ucb.ctrl.rom"
	PLACtrl         = "ucb.ctrl.pla"
	Wire            = "ucb.wire"
	AnalogBias      = "analog.bias"
	AnalogOTA       = "analog.ota"
	AnalogOTACMOS   = "analog.ota.cmos"
	DCDC            = "power.dcdc"
	DCDCCurve       = "power.dcdc.curve"
	GenericCPU      = "proc.datasheet"
	FixedPart       = "commodity.fixed"
)

// Standard builds a registry holding the full built-in library.
//
// The capacitance coefficients are re-characterizations: the original
// UCB numbers live in theses that are not public, so the library is
// calibrated against the two absolute anchors the paper publishes (the
// Figure 3 implementation at ≈150 µW and its ≈5× ratio to Figure 1, at
// 1.5 V / 2 MHz).  EQ 20's 253 fF multiplier coefficient is printed in
// the paper and used verbatim.
func Standard() *model.Registry {
	r := model.NewRegistry()

	r.MustRegister(&cells.Linear{
		Name: RippleAdder, Title: "Ripple-carry adder",
		Doc: "EQ 2-3 Landman cell: single coefficient relating input bit-width " +
			"to total switched capacitance, C_T = bitwidth × C0.",
		CapPerBit:  48 * units.FemtoFarad,
		AreaPerBit: 900 * units.SquareMicron,
		Delay0:     2e-9, DelayPerBit: 1.5e-9,
	})
	r.MustRegister(&cells.Linear{
		Name: CLAAdder, Title: "Carry-lookahead adder",
		Doc: "Faster, hungrier adder: ~1.7× the ripple capacitance, " +
			"logarithmic-ish delay budgeted as a small per-bit slope.",
		CapPerBit:  82 * units.FemtoFarad,
		AreaPerBit: 1500 * units.SquareMicron,
		Delay0:     3e-9, DelayPerBit: 0.25e-9,
	})
	r.MustRegister(&cells.Svensson{
		Name: SvenssonAdder, Title: "Adder (Svensson analytical)",
		Doc: "EQ 4-6 analytical model of a two-stage full-adder bit slice: " +
			"no characterization simulations required.",
		Slice: []cells.Stage{
			{Label: "carry", Cin: 22 * units.FemtoFarad, Cout: 30 * units.FemtoFarad, AlphaIn: 0.5, AlphaOut: 0.25},
			{Label: "sum", Cin: 16 * units.FemtoFarad, Cout: 26 * units.FemtoFarad, AlphaIn: 0.5, AlphaOut: 0.5},
		},
		AreaPerBit:    950 * units.SquareMicron,
		DelayPerStage: 1.8e-9,
	})
	r.MustRegister(&cells.Multiplier{
		Name: ArrayMultiplier, Title: "Array multiplier",
		Doc: "EQ 20: C_T = bitwidthA × bitwidthB × 253 fF for non-correlated " +
			"inputs; a reduced coefficient applies to correlated streams.",
		CoeffUncorr: 253 * units.FemtoFarad,
		CoeffCorr:   170 * units.FemtoFarad,
		AreaPerBit2: 2500 * units.SquareMicron,
		DelayPerBit: 2e-9,
	})
	r.MustRegister(&cells.Shifter{
		Name: LogShifter, Title: "Logarithmic shifter",
		Doc:             "Mux-tree shifter; capacitance per bit per stage, stages = ceil(log2(maxshift+1)).",
		CapPerBitStage:  30 * units.FemtoFarad,
		AreaPerBitStage: 250 * units.SquareMicron,
		DelayPerStage:   1e-9,
	})
	r.MustRegister(&cells.Mux{
		Name: Mux, Title: "Multiplexor",
		Doc:           "n-way select tree: C_T = bits × (inputs−1) × C_leg.",
		CapPerLeg:     100 * units.FemtoFarad,
		AreaPerLeg:    120 * units.SquareMicron,
		DelayPerLevel: 0.8e-9,
	})
	r.MustRegister(&storage.RegisterFile{
		Name: Register, Title: "Register / register file",
		Doc: "Small storage modeled like a computational element; clock load " +
			"on every cell is included, as the paper notes.",
		CapPerBit:  150 * units.FemtoFarad,
		CapPerCell: 150 * units.FemtoFarad,
		CellArea:   400 * units.SquareMicron,
		Delay:      1.2e-9,
	})
	r.MustRegister(ucbSRAM(SRAM, "Low-power SRAM",
		"EQ 7: C_T = C0 + C1·words + C1·bits + C2·words·bits, characterized "+
			"at the 1.5 V operating point of the UCB low-power library."))
	lowswing := ucbSRAM(LowSwingSRAM, "Low-swing SRAM",
		"EQ 8 variant with reduced bit-line swings; characterized at more "+
			"than one voltage level to extract Cpartialswing and Vswing.")
	lowswing.DefaultSwing = storage.ReducedSwing
	r.MustRegister(lowswing)
	r.MustRegister(&storage.DRAM{
		Name: DRAM, Title: "Commodity DRAM",
		Doc: "First-order dynamic memory: EQ 7 access terms plus refresh. " +
			"Coefficients reflect a banked megabit part: only one bank's " +
			"word line and a page of bit lines switch per access.",
		C0:    30 * units.PicoFarad,
		CWord: 0.02 * units.FemtoFarad, CBit: 1 * units.PicoFarad,
		CWordBit:      0.0005 * units.FemtoFarad,
		RefreshPeriod: 16e-3,
		CellArea:      8 * units.SquareMicron,
		Delay0:        60e-9,
	})
	r.MustRegister(&cells.Buffer{
		Name: PadBuffer, Title: "Output pad buffer",
		Doc:         "Pad driver plus external load; activity is the data transition probability.",
		CapInternal: 250 * units.FemtoFarad,
		DefaultLoad: 750 * units.FemtoFarad,
		AreaPerBit:  4000 * units.SquareMicron,
		Delay:       3e-9,
	})
	r.MustRegister(&cells.Buffer{
		Name: ClockBuffer, Title: "Clock buffer",
		Doc:         "On-chip clock driver; activity 1 (switches every cycle).",
		CapInternal: 400 * units.FemtoFarad,
		DefaultLoad: 2 * units.PicoFarad,
		AreaPerBit:  1200 * units.SquareMicron,
		Delay:       1.5e-9,
	})
	r.MustRegister(&ctrl.RandomLogic{
		Name: RandomCtrl, Title: "Random-logic controller",
		Doc: "EQ 9: C_T = C0·α0·N_I·N_O + C1·α1·N_M·N_O with α = 0.25 for " +
			"randomly distributed input vectors.",
		C0: 40 * units.FemtoFarad, C1: 40 * units.FemtoFarad,
		AreaPerGate: 200 * units.SquareMicron, DelayPerLevel: 2e-9,
	})
	r.MustRegister(&ctrl.ROM{
		Name: ROMCtrl, Title: "ROM controller",
		Doc: "EQ 10 with precharged word/bit lines; P_O is the average " +
			"fraction of low output bits.",
		C0: 2 * units.PicoFarad, C1: 1 * units.FemtoFarad,
		C2: 0.05 * units.FemtoFarad, C3: 5 * units.FemtoFarad, C4: 20 * units.FemtoFarad,
		AreaPerCell: 15 * units.SquareMicron, Delay0: 8e-9,
	})
	r.MustRegister(&ctrl.PLA{
		Name: PLACtrl, Title: "PLA controller",
		Doc: "ROM-style model with word lines replaced by product terms.",
		C0:  1 * units.PicoFarad, CAnd: 2 * units.FemtoFarad, COr: 2 * units.FemtoFarad,
		AreaPerCrosspoint: 10 * units.SquareMicron, Delay0: 6e-9,
	})
	r.MustRegister(&wire.Interconnect{
		Name: Wire, Title: "Interconnect (Rent/Donath)",
		Doc: "Average wire length from hierarchical placement; bind the area " +
			"parameter to area(...) of the composing modules.",
		CapPerMeter: 200e-12, // 0.2 pF/mm
		WirePitch:   2.4e-6,
	})
	r.MustRegister(&analog.Bias{
		Name: AnalogBias, Title: "Analog bias block",
		Doc:  "EQ 13: power is the linear product of supply and summed bias currents.",
		Area: 0.05e-6,
	})
	r.MustRegister(&analog.TransconductanceAmp{
		Name: AnalogOTA, Title: "Bipolar transconductance amplifier",
		Doc: "EQ 14-17: parameterized by Gm, Rid or Ro exactly like a digital " +
			"adder is parameterized by bit-width.",
		Area: 0.1e-6,
	})
	r.MustRegister(&analog.CMOSOTA{
		Name: AnalogOTACMOS, Title: "CMOS operational transconductance amplifier",
		Doc: "Square-law MOS counterpart of the bipolar pair: Gm specs fix " +
			"the tail current as Gm²/(k'·W/L).",
		Area: 0.08e-6,
	})
	r.MustRegister(&dcdc.Converter{
		Name: DCDC, Title: "DC-DC converter",
		Doc: "EQ 18-19: dissipation from load power and efficiency; bind pload " +
			"to power(...) of the modules it feeds.",
		DefaultEta: 0.9,
	})
	r.MustRegister(dcdc.NewTypicalBuck(DCDCCurve, "DC-DC converter (measured efficiency curve)", 2))
	r.MustRegister(&proc.Datasheet{
		Name: GenericCPU, Title: "Embedded processor (data sheet)",
		Doc: "EQ 11: P = α·P_AVG from the data book; α < 1 models power-down " +
			"duty cycling.",
		PAvg: 0.5, RatedVDD: 3.3, RatedFreq: 20e6,
	})
	r.MustRegister(&Fixed{
		Name: FixedPart, Title: "Data-sheet component",
		Doc: "Any commodity part whose power is read straight from its data " +
			"sheet or measured: LCDs, radios, codecs, servos.",
	})
	return r
}

// ucbSRAM builds the calibrated SRAM cell.
func ucbSRAM(name, title, doc string) *storage.SRAM {
	return &storage.SRAM{
		Name: name, Title: title, Doc: doc,
		C0:            6.25 * units.PicoFarad,
		CWord:         31.25 * units.FemtoFarad,
		CBit:          500 * units.FemtoFarad,
		CWordBit:      0.6 * units.FemtoFarad,
		CellArea:      120 * units.SquareMicron,
		PeripheryArea: 0.04e-6,
		Delay0:        10e-9,
	}
}
