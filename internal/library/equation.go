package library

import (
	"encoding/json"
	"fmt"
	"io"

	"powerplay/internal/core/model"
	"powerplay/internal/expr"
	"powerplay/internal/units"
)

// Equation is a user-defined model, the kind entered through
// PowerPlay's interactive model-definition page: names, equations and
// documentation.  Each result quantity is an expression over the
// model's own parameters (plus vdd/f/tech), evaluated per the EQ 1
// template:
//
//	Csw     switched capacitance per operation (F)
//	Vswing  swing voltage; empty or 0 means full rail
//	Istatic static supply current (A)
//	Area    active area (m²)
//	Delay   critical path at the reference supply (s); voltage-scaled
//	Freq    switching frequency; defaults to "f"
//
// Equation is JSON-serializable, which is how user libraries persist on
// the server and travel between sites (Figures 6–7).
type Equation struct {
	// Name is the registry name; Title and Doc feed the generated
	// documentation page.
	Name  string `json:"name"`
	Title string `json:"title,omitempty"`
	Class string `json:"class,omitempty"`
	Doc   string `json:"doc,omitempty"`
	// Params declares the model's own parameters.
	Params []EquationParam `json:"params,omitempty"`
	// The quantity expressions; empty strings mean "none"/default.
	Csw     string `json:"csw,omitempty"`
	Vswing  string `json:"vswing,omitempty"`
	Istatic string `json:"istatic,omitempty"`
	Area    string `json:"area,omitempty"`
	Delay   string `json:"delay,omitempty"`
	Freq    string `json:"freq,omitempty"`

	compiled *compiledEquation
}

// EquationParam is the JSON form of a parameter declaration.
type EquationParam struct {
	Name    string  `json:"name"`
	Doc     string  `json:"doc,omitempty"`
	Unit    string  `json:"unit,omitempty"`
	Default float64 `json:"default"`
	Min     float64 `json:"min,omitempty"`
	Max     float64 `json:"max,omitempty"`
	Integer bool    `json:"integer,omitempty"`
}

type compiledEquation struct {
	csw, vswing, istatic, area, delay, freq *expr.Expr
}

// Compile parses every expression; it must be called (directly or via
// ParseEquation) before Evaluate.
func (q *Equation) Compile() error {
	c := &compiledEquation{}
	compile := func(src, what string) (*expr.Expr, error) {
		if src == "" {
			return nil, nil
		}
		e, err := expr.Compile(src)
		if err != nil {
			return nil, fmt.Errorf("model %q: %s: %w", q.Name, what, err)
		}
		return e, nil
	}
	var err error
	if c.csw, err = compile(q.Csw, "csw"); err != nil {
		return err
	}
	if c.vswing, err = compile(q.Vswing, "vswing"); err != nil {
		return err
	}
	if c.istatic, err = compile(q.Istatic, "istatic"); err != nil {
		return err
	}
	if c.area, err = compile(q.Area, "area"); err != nil {
		return err
	}
	if c.delay, err = compile(q.Delay, "delay"); err != nil {
		return err
	}
	freqSrc := q.Freq
	if freqSrc == "" {
		freqSrc = "f"
	}
	if c.freq, err = compile(freqSrc, "freq"); err != nil {
		return err
	}
	if c.csw == nil && c.istatic == nil {
		return fmt.Errorf("model %q: needs at least one of csw or istatic", q.Name)
	}
	q.compiled = c
	return nil
}

// Info implements model.Model.
func (q *Equation) Info() model.Info {
	params := model.WithStd()
	for _, p := range q.Params {
		params = append(params, model.Param{
			Name: p.Name, Doc: p.Doc, Unit: p.Unit,
			Default: p.Default, Min: p.Min, Max: p.Max, Integer: p.Integer,
		})
	}
	class := model.Class(q.Class)
	if q.Class == "" {
		class = model.Computation
	}
	return model.Info{Name: q.Name, Title: q.Title, Class: class, Doc: q.Doc, Params: params}
}

// Evaluate implements model.Model.
func (q *Equation) Evaluate(p model.Params) (*model.Estimate, error) {
	if q.compiled == nil {
		if err := q.Compile(); err != nil {
			return nil, err
		}
	}
	env := expr.MapEnv(p)
	eval := func(e *expr.Expr) (float64, error) {
		if e == nil {
			return 0, nil
		}
		return e.Eval(env)
	}
	c := q.compiled
	est := &model.Estimate{VDD: p.VDD()}
	csw, err := eval(c.csw)
	if err != nil {
		return nil, fmt.Errorf("model %q: %w", q.Name, err)
	}
	if csw < 0 {
		return nil, fmt.Errorf("model %q: negative capacitance %g", q.Name, csw)
	}
	if csw > 0 {
		swing, err := eval(c.vswing)
		if err != nil {
			return nil, fmt.Errorf("model %q: %w", q.Name, err)
		}
		freq, err := eval(c.freq)
		if err != nil {
			return nil, fmt.Errorf("model %q: %w", q.Name, err)
		}
		scale := model.CapScale(p[model.ParamTech])
		est.AddSwing("equation", units.Farads(csw*scale), units.Volts(swing), units.Hertz(freq))
	}
	ist, err := eval(c.istatic)
	if err != nil {
		return nil, fmt.Errorf("model %q: %w", q.Name, err)
	}
	if ist != 0 {
		est.AddStatic("equation", units.Amps(ist))
	}
	area, err := eval(c.area)
	if err != nil {
		return nil, fmt.Errorf("model %q: %w", q.Name, err)
	}
	est.Area = units.SquareMeters(area)
	delay, err := eval(c.delay)
	if err != nil {
		return nil, fmt.Errorf("model %q: %w", q.Name, err)
	}
	if delay > 0 {
		est.Delay = units.Seconds(delay * model.DelayScale(float64(p.VDD())))
	}
	est.Note("user-defined equation model")
	return est, nil
}

// ParseEquation decodes and compiles a JSON model definition.
func ParseEquation(data []byte) (*Equation, error) {
	var q Equation
	if err := json.Unmarshal(data, &q); err != nil {
		return nil, fmt.Errorf("library: bad model JSON: %w", err)
	}
	if q.Name == "" {
		return nil, fmt.Errorf("library: model JSON missing name")
	}
	if err := q.Compile(); err != nil {
		return nil, err
	}
	return &q, nil
}

// MarshalTo writes the JSON form of the model definition.
func (q *Equation) MarshalTo(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(q)
}

// LoadEquations reads a JSON array of model definitions, compiling and
// registering each.
func LoadEquations(r *model.Registry, data []byte) (int, error) {
	var defs []json.RawMessage
	if err := json.Unmarshal(data, &defs); err != nil {
		return 0, fmt.Errorf("library: bad model list JSON: %w", err)
	}
	for i, raw := range defs {
		q, err := ParseEquation(raw)
		if err != nil {
			return i, err
		}
		if err := r.Register(q); err != nil {
			return i, err
		}
	}
	return len(defs), nil
}

// DumpEquations serializes every Equation model in the registry as a
// JSON array — the wire format of the remote-library protocol.
func DumpEquations(r *model.Registry) ([]byte, error) {
	var defs []*Equation
	for _, name := range r.Names() {
		m, _ := r.Lookup(name)
		if q, ok := m.(*Equation); ok {
			defs = append(defs, q)
		}
	}
	return json.MarshalIndent(defs, "", "  ")
}

var _ model.Model = (*Equation)(nil)
