package library

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestStandardLibraryComplete(t *testing.T) {
	r := Standard()
	wanted := []string{
		RippleAdder, CLAAdder, SvenssonAdder, ArrayMultiplier, LogShifter,
		Mux, Register, SRAM, LowSwingSRAM, DRAM, PadBuffer, ClockBuffer,
		RandomCtrl, ROMCtrl, PLACtrl, Wire, AnalogBias, AnalogOTA,
		AnalogOTACMOS, DCDC, DCDCCurve, GenericCPU, FixedPart,
	}
	for _, name := range wanted {
		m, ok := r.Lookup(name)
		if !ok {
			t.Errorf("library missing %q", name)
			continue
		}
		info := m.Info()
		if info.Doc == "" {
			t.Errorf("%s: missing documentation", name)
		}
		if info.Title == "" {
			t.Errorf("%s: missing title", name)
		}
		// Every cell evaluates at its own defaults.
		est, err := model.Evaluate(m, nil)
		if err != nil {
			t.Errorf("%s at defaults: %v", name, err)
			continue
		}
		if p := float64(est.Power()); math.IsNaN(p) || p < 0 {
			t.Errorf("%s: bad default power %v", name, p)
		}
	}
	if r.Len() != len(wanted) {
		t.Errorf("library has %d cells, test covers %d", r.Len(), len(wanted))
	}
}

func TestLibraryClasses(t *testing.T) {
	r := Standard()
	if got := r.ByClass(model.Computation); len(got) < 6 {
		t.Errorf("computation cells = %v", got)
	}
	if got := r.ByClass(model.Storage); len(got) != 4 {
		t.Errorf("storage cells = %v", got)
	}
	if got := r.ByClass(model.Controller); len(got) != 3 {
		t.Errorf("controller cells = %v", got)
	}
}

func TestMultiplierPaperCoefficient(t *testing.T) {
	// The one number the paper prints verbatim: 253 fF · bwA · bwB.
	r := Standard()
	est, err := r.Evaluate(ArrayMultiplier, model.Params{"bwA": 8, "bwB": 8, "vdd": 1.5, "f": 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(est.SwitchedCap()); !almost(got, 64*253e-15) {
		t.Errorf("C_T = %v, want 64×253fF", units.Farads(got))
	}
}

func TestLowSwingDefaultsDiffer(t *testing.T) {
	r := Standard()
	p := model.Params{"words": 1024, "bits": 16, "vdd": 1.5, "f": 1e6}
	rail, err := r.Evaluate(SRAM, p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	low, err := r.Evaluate(LowSwingSRAM, p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if float64(low.Power()) >= float64(rail.Power()) {
		t.Errorf("low-swing variant should default cheaper: %v vs %v", low.Power(), rail.Power())
	}
}

func TestFixedModel(t *testing.T) {
	f := &Fixed{Name: "lcd", DefaultPower: 0.445, DefaultVDD: 5}
	est, err := model.Evaluate(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(est.Power()); !almost(got, 0.445) {
		t.Errorf("P = %v, want 0.445", got)
	}
	// Duty cycling.
	est, err = model.Evaluate(f, model.Params{"act": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(est.Power()); !almost(got, 0.2225) {
		t.Errorf("P = %v, want 0.2225", got)
	}
	// Not voltage scaled: power identical at another supply.
	est, err = model.Evaluate(f, model.Params{"vdd": 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(est.Power()); !almost(got, 0.445) {
		t.Errorf("data-sheet power should not rescale, got %v", got)
	}
}

func TestEquationModel(t *testing.T) {
	q := &Equation{
		Name:  "user.accmul",
		Title: "Multiply-accumulate",
		Doc:   "entered through the model form",
		Params: []EquationParam{
			{Name: "bits", Doc: "width", Default: 8, Min: 1, Max: 64, Integer: true},
		},
		Csw: "bits*bits*253f + bits*48f",
	}
	if err := q.Compile(); err != nil {
		t.Fatal(err)
	}
	est, err := model.Evaluate(q, model.Params{"bits": 8, "vdd": 1.5, "f": 2e6})
	if err != nil {
		t.Fatal(err)
	}
	wantC := 64*253e-15 + 8*48e-15
	if got := float64(est.SwitchedCap()); !almost(got, wantC) {
		t.Errorf("C_T = %v, want %v", got, wantC)
	}
	wantP := wantC * 2.25 * 2e6
	if got := float64(est.Power()); !almost(got, wantP) {
		t.Errorf("P = %v, want %v", got, wantP)
	}
}

func TestEquationModelAllQuantities(t *testing.T) {
	q := &Equation{
		Name:    "user.full",
		Params:  []EquationParam{{Name: "n", Default: 4, Min: 1, Max: 100}},
		Csw:     "n*1p",
		Vswing:  "0.4",
		Istatic: "n*1u",
		Area:    "n*100e-12",
		Delay:   "n*1n",
		Freq:    "f/2",
	}
	est, err := model.Evaluate(q, model.Params{"vdd": 2, "f": 1e6})
	if err != nil {
		t.Fatal(err)
	}
	// P = C·Vsw·VDD·(f/2) + I·VDD.
	want := 4e-12*0.4*2*0.5e6 + 4e-6*2
	if got := float64(est.Power()); !almost(got, want) {
		t.Errorf("P = %v, want %v", got, want)
	}
	if got := float64(est.Area); !almost(got, 400e-12) {
		t.Errorf("Area = %v", got)
	}
	if got := float64(est.Delay); !almost(got, 4e-9*model.DelayScale(2)) {
		t.Errorf("Delay = %v", got)
	}
}

func TestEquationModelErrors(t *testing.T) {
	// No quantities at all.
	if err := (&Equation{Name: "e"}).Compile(); err == nil {
		t.Error("empty model should fail to compile")
	}
	// Syntax error in an expression.
	if err := (&Equation{Name: "e", Csw: "1 +"}).Compile(); err == nil {
		t.Error("bad csw should fail")
	}
	// Negative capacitance at runtime.
	q := &Equation{Name: "e", Csw: "0 - 1p"}
	if err := q.Compile(); err != nil {
		t.Fatal(err)
	}
	if _, err := model.Evaluate(q, nil); err == nil {
		t.Error("negative capacitance should fail at evaluation")
	}
	// Unknown variable at runtime.
	q2 := &Equation{Name: "e2", Csw: "nosuch*1p"}
	if err := q2.Compile(); err != nil {
		t.Fatal(err)
	}
	if _, err := model.Evaluate(q2, nil); err == nil {
		t.Error("unbound variable should fail at evaluation")
	}
	// Lazy compile path via Evaluate.
	q3 := &Equation{Name: "e3", Csw: "1p"}
	if _, err := model.Evaluate(q3, nil); err != nil {
		t.Errorf("lazy compile: %v", err)
	}
}

func TestEquationJSONRoundTrip(t *testing.T) {
	src := `{
	  "name": "user.filter",
	  "title": "FIR tap",
	  "class": "computation",
	  "doc": "one multiply-add tap",
	  "params": [{"name": "bits", "default": 12, "min": 1, "max": 64, "integer": true}],
	  "csw": "bits*bits*253f",
	  "area": "bits*bits*2500e-12"
	}`
	q, err := ParseEquation([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "user.filter" || q.Info().Class != model.Computation {
		t.Errorf("parsed = %+v", q)
	}
	est, err := model.Evaluate(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(est.SwitchedCap()); !almost(got, 144*253e-15) {
		t.Errorf("C_T = %v", got)
	}
	var buf bytes.Buffer
	if err := q.MarshalTo(&buf); err != nil {
		t.Fatal(err)
	}
	q2, err := ParseEquation(buf.Bytes())
	if err != nil {
		t.Fatalf("re-parse: %v (json: %s)", err, buf.String())
	}
	if q2.Csw != q.Csw || len(q2.Params) != 1 {
		t.Errorf("round trip lost data: %+v", q2)
	}
}

func TestParseEquationErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"csw": "1p"}`,             // missing name
		`{"name": "x"}`,             // no quantities
		`{"name": "x", "csw": ")"}`, // bad expression
	}
	for _, src := range cases {
		if _, err := ParseEquation([]byte(src)); err == nil {
			t.Errorf("ParseEquation(%q) should fail", src)
		}
	}
}

func TestLoadDumpEquations(t *testing.T) {
	r := Standard()
	base := r.Len()
	src := `[
	  {"name": "user.a", "csw": "1p"},
	  {"name": "user.b", "istatic": "10u"}
	]`
	n, err := LoadEquations(r, []byte(src))
	if err != nil || n != 2 {
		t.Fatalf("LoadEquations = %d, %v", n, err)
	}
	if r.Len() != base+2 {
		t.Errorf("registry size = %d", r.Len())
	}
	out, err := DumpEquations(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "user.a") || !strings.Contains(string(out), "user.b") {
		t.Errorf("dump missing models: %s", out)
	}
	// Built-ins are not dumped (they are not Equation models).
	if strings.Contains(string(out), RippleAdder) {
		t.Error("dump should only contain user equation models")
	}
	// Round-trip the dump into a fresh registry.
	r2 := model.NewRegistry()
	if n, err := LoadEquations(r2, out); err != nil || n != 2 {
		t.Fatalf("reload = %d, %v", n, err)
	}
	// Bad list JSON.
	if _, err := LoadEquations(r, []byte("{")); err == nil {
		t.Error("bad list should fail")
	}
	// Bad entry position reported.
	if n, err := LoadEquations(r, []byte(`[{"name":"ok","csw":"1p"},{"bad":true}]`)); err == nil || n != 1 {
		t.Errorf("partial load = %d, %v", n, err)
	}
}
