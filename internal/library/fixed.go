package library

import (
	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// Fixed is the data-sheet component model for system-level analysis:
// commodity parts (LCDs, radio modems, codecs, servos) whose power the
// designer reads from a data sheet or measures on the bench.  The
// paper's InfoPad analysis mixes such measured rows freely with modeled
// custom hardware — that interleaving is the point of the spreadsheet.
type Fixed struct {
	// Name, Title, Doc identify the part.
	Name, Title, Doc string
	// DefaultPower seeds the pnom parameter.
	DefaultPower units.Watts
	// DefaultVDD seeds the supply (informational: power is taken as
	// measured, not rescaled).
	DefaultVDD units.Volts
	// Area is the board/module footprint, if tracked.
	Area units.SquareMeters
}

// Info implements model.Model.
func (f *Fixed) Info() model.Info {
	vdd := f.DefaultVDD
	if vdd == 0 {
		vdd = 5
	}
	return model.Info{
		Name:  f.Name,
		Title: f.Title,
		Class: model.Commodity,
		Doc:   f.Doc,
		Params: []model.Param{
			{Name: model.ParamVDD, Doc: "supply voltage (informational)", Unit: "V", Default: float64(vdd), Min: 0, Max: 50},
			{Name: model.ParamFreq, Doc: "operating frequency (informational)", Unit: "Hz", Default: 0, Min: 0, Max: 10e9},
			{Name: model.ParamTech, Doc: "unused", Unit: "m", Default: 0, Min: 0, Max: 1e-3},
			{Name: "pnom", Doc: "data-sheet or measured power", Unit: "W", Default: float64(f.DefaultPower), Min: 0, Max: 1e6},
			{Name: "act", Doc: "duty cycle (1 = always on)", Default: 1, Min: 0, Max: 1},
		},
	}
}

// Evaluate implements model.Model.
func (f *Fixed) Evaluate(p model.Params) (*model.Estimate, error) {
	vdd := p.VDD()
	e := &model.Estimate{VDD: vdd}
	power := p["pnom"] * p["act"]
	if vdd > 0 {
		e.AddStatic("data-sheet draw", units.Amps(power/float64(vdd)))
	}
	e.Area = f.Area
	e.Note("power taken from data sheet / measurement; not voltage-scaled")
	return e, nil
}

var _ model.Model = (*Fixed)(nil)
