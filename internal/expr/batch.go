package expr

import (
	"fmt"
	"math"
)

// This file implements the columnar half of the compiled evaluation
// pipeline: running one Program over a whole vector of points at once.
// Where Run interprets the instruction list once per point, RunBatch
// interprets it once per *chunk* — each stack cell becomes a []float64
// column, each operator a tight loop over the chunk — so the dispatch
// overhead of the interpreter is paid per column instead of per point.
//
// Correctness contract (the batch side of the scalar-oracle story):
//
//   - RunBatch is only defined for Batchable programs: straight-line
//     code with no jumps.  Such a program executes exactly the same
//     instruction sequence for every point, so evaluating it column-
//     major performs, for each point, the same floating-point
//     operations in the same order as Run — a successful RunBatch
//     yields bit-identical results, NaNs and infinities included.
//   - RunBatch returns an error if and only if Run would fail on at
//     least one point of the vector.  The error itself, however, is
//     whichever failure the column order happened to reach first — NOT
//     necessarily the lowest-indexed point's error.  Callers that need
//     the canonical error (text and position) must re-run the chunk
//     point-by-point through the scalar path; the sheet and explore
//     layers do exactly that, so a batch error is never user-visible.

// Batchable reports whether the program can run columnar: straight-line
// code only.  Programs with control flow (&&, ||, ?:) take per-point
// branches, which a column pass cannot replicate without changing which
// operations execute; they stay on the scalar interpreter.
func (p *Program) Batchable() bool {
	for i := range p.code {
		switch p.code[i].op {
		case opAndShort, opOrShort, opJmp, opJmpFalse:
			return false
		}
	}
	return true
}

// BatchScratch is reusable per-goroutine columnar evaluation state: the
// column stack plus call-argument buffers.  A zero BatchScratch is
// ready to use; after the first RunBatch it holds grown buffers, making
// subsequent runs allocation-free.  It must not be shared between
// concurrent RunBatch calls.
type BatchScratch struct {
	stack [][]float64
	width int
	vals  []Value
	args  []float64
}

// ensure sizes the column stack to depth columns of at least width
// points each.
func (s *BatchScratch) ensure(depth, width int) {
	if s.width < width {
		s.stack = nil
		s.width = width
	}
	for len(s.stack) < depth {
		s.stack = append(s.stack, make([]float64, s.width))
	}
}

// RunBatch evaluates a Batchable program for points 0..n-1 at once:
// cols[slot][i] supplies slot reads for point i, and the program's
// value for point i is written to dst[i].  dst may alias a column in
// cols that the program does not read.  See the contract above: on
// success every dst[i] is bit-identical to Run on the same point; on
// error the caller must fall back to per-point Run calls to learn the
// canonical failure.  RunBatch panics if the program is not Batchable.
func (p *Program) RunBatch(cols [][]float64, dst []float64, n int, s *BatchScratch) error {
	if s == nil {
		s = &BatchScratch{}
	}
	s.ensure(p.maxStack, n)
	stack := s.stack
	sp := 0
	code := p.code
	for ip := 0; ip < len(code); ip++ {
		in := &code[ip]
		switch in.op {
		case opConst:
			col := stack[sp][:n]
			for i := range col {
				col[i] = in.val
			}
			sp++
		case opSlot:
			copy(stack[sp][:n], cols[in.a][:n])
			sp++
		case opNeg:
			col := stack[sp-1][:n]
			for i := range col {
				col[i] = -col[i]
			}
		case opNot:
			col := stack[sp-1][:n]
			for i := range col {
				if col[i] == 0 {
					col[i] = 1
				} else {
					col[i] = 0
				}
			}
		case opBool:
			col := stack[sp-1][:n]
			for i := range col {
				if col[i] != 0 {
					col[i] = 1
				} else {
					col[i] = 0
				}
			}
		case opAdd:
			sp--
			a, b := stack[sp-1][:n], stack[sp][:n]
			for i := range a {
				a[i] = a[i] + b[i]
			}
		case opSub:
			sp--
			a, b := stack[sp-1][:n], stack[sp][:n]
			for i := range a {
				a[i] = a[i] - b[i]
			}
		case opMul:
			sp--
			a, b := stack[sp-1][:n], stack[sp][:n]
			for i := range a {
				a[i] = a[i] * b[i]
			}
		case opDiv:
			sp--
			a, b := stack[sp-1][:n], stack[sp][:n]
			for i := range a {
				if b[i] == 0 {
					return p.errs[in.a]
				}
				a[i] = a[i] / b[i]
			}
		case opMod:
			sp--
			a, b := stack[sp-1][:n], stack[sp][:n]
			for i := range a {
				if b[i] == 0 {
					return p.errs[in.a]
				}
				a[i] = math.Mod(a[i], b[i])
			}
		case opPow:
			sp--
			a, b := stack[sp-1][:n], stack[sp][:n]
			for i := range a {
				a[i] = math.Pow(a[i], b[i])
			}
		case opEq:
			sp--
			a, b := stack[sp-1][:n], stack[sp][:n]
			for i := range a {
				a[i] = b2f(a[i] == b[i])
			}
		case opNe:
			sp--
			a, b := stack[sp-1][:n], stack[sp][:n]
			for i := range a {
				a[i] = b2f(a[i] != b[i])
			}
		case opLt:
			sp--
			a, b := stack[sp-1][:n], stack[sp][:n]
			for i := range a {
				a[i] = b2f(a[i] < b[i])
			}
		case opLe:
			sp--
			a, b := stack[sp-1][:n], stack[sp][:n]
			for i := range a {
				a[i] = b2f(a[i] <= b[i])
			}
		case opGt:
			sp--
			a, b := stack[sp-1][:n], stack[sp][:n]
			for i := range a {
				a[i] = b2f(a[i] > b[i])
			}
		case opGe:
			sp--
			a, b := stack[sp-1][:n], stack[sp][:n]
			for i := range a {
				a[i] = b2f(a[i] >= b[i])
			}
		case opCallB:
			// Builtins take a per-point argument slice; gather each
			// point's arguments across the top argc columns.  The
			// result overwrites the first argument column, writing
			// index i only after reading it.
			site := &p.sites[in.b]
			argc := int(in.a)
			if cap(s.args) < argc {
				s.args = make([]float64, argc)
			}
			args := s.args[:argc]
			res := stack[sp-argc][:n]
			for i := 0; i < n; i++ {
				for k := 0; k < argc; k++ {
					args[k] = stack[sp-argc+k][i]
				}
				v, err := site.bfn(args)
				if err != nil {
					return &EvalError{Expr: p.src, Msg: fmt.Sprintf("%s: %v", site.name, err)}
				}
				res[i] = v
			}
			sp -= argc
			sp++
		case opCallH:
			site := &p.sites[in.b]
			argc := int(in.a)
			res := stack[sp-argc][:n]
			for i := 0; i < n; i++ {
				vals := append(s.vals[:0], site.tmpl...)
				s.vals = vals[:0]
				k := 0
				for j := range vals {
					if !vals[j].IsStr {
						vals[j].Num = stack[sp-argc+k][i]
						k++
					}
				}
				v, err := site.hfn(vals)
				if err != nil {
					return &EvalError{Expr: p.src, Msg: fmt.Sprintf("%s: %v", site.name, err)}
				}
				res[i] = v
			}
			sp -= argc
			sp++
		case opErr:
			return p.errs[in.a]
		default:
			// A jump in a program RunBatch was promised not to see.
			panic(fmt.Sprintf("expr: RunBatch on non-batchable program %q", p.src))
		}
	}
	copy(dst[:n], stack[sp-1][:n])
	return nil
}
