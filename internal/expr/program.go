package expr

import (
	"fmt"
	"math"
	"sort"

	"powerplay/internal/obs"
)

// This file implements the compiled evaluation pipeline's first stage:
// lowering a parsed expression tree to a flat postfix instruction slice
// that evaluates with zero map lookups and zero allocations in the
// numeric path.  Variables are resolved to integer slots in a caller-
// provided vector at compile time, builtins and host functions to
// direct function values, and constant subtrees are folded.  The
// program preserves the tree interpreter's semantics exactly — same
// values (operation for operation, so floats are bit-identical), same
// short-circuit behaviour, and an error exactly when Eval would error —
// which is what lets sheet evaluation swap it in transparently and fall
// back to the interpreter for canonical error messages.

// Resolver supplies compile-time name resolution for CompileProgram:
// the static counterpart of Env/FuncEnv.  Variables resolve to slot
// indices into the slot vector passed to Program.Run; host functions
// resolve to direct function values.  Either method may report a name
// as unknown, in which case the program raises the interpreter's
// corresponding evaluation error when (and only when) the operand is
// actually reached.
type Resolver interface {
	// ResolveVar maps a variable name to its slot index.
	ResolveVar(name string) (slot int, ok bool)
	// ResolveFunc maps a host-function name to its implementation.
	// Host functions shadow built-ins of the same name, exactly as
	// FuncEnv does during tree interpretation.
	ResolveFunc(name string) (Func, bool)
}

// CallArg summarizes one call-site argument for CallResolver: string
// literals carry their value, every other argument shape is opaque.
type CallArg struct {
	// IsStr marks a string-literal argument.
	IsStr bool
	// Str is the literal's value when IsStr.
	Str string
}

// CallLowering is a CallResolver's verdict on a call site: either the
// call's value lives in a precomputed slot, or the site is statically
// wrong and evaluating it must raise Err.
type CallLowering struct {
	// Slot holds the call's value when Err is nil.
	Slot int
	// Err, when non-nil, is raised if the call site is evaluated.
	Err error
}

// CallResolver is an optional Resolver extension that lowers whole call
// sites to slot reads.  The sheet compiler uses it for the inter-row
// accessors power("x"), area("x") and delay("x"), whose values the
// evaluation plan computes into slots before any referencing expression
// runs.
type CallResolver interface {
	// ClaimsCall reports whether the named function belongs to this
	// resolver.  Claimed names shadow host functions and built-ins.
	ClaimsCall(name string) bool
	// ResolveCall lowers a claimed call site; it is invoked once per
	// site with the argument shapes.
	ResolveCall(name string, args []CallArg) CallLowering
}

// EmptyResolver resolves nothing: programs compiled against it evaluate
// literals and built-ins only, like Eval under EmptyEnv.
type EmptyResolver struct{}

// ResolveVar reports every variable as unknown.
func (EmptyResolver) ResolveVar(string) (int, bool) { return 0, false }

// ResolveFunc reports every host function as unknown.
func (EmptyResolver) ResolveFunc(string) (Func, bool) { return nil, false }

// opcode enumerates the program instructions.
type opcode uint8

const (
	opConst opcode = iota // push val
	opSlot                // push slots[a]
	opNeg                 // top = -top
	opNot                 // top = top==0 ? 1 : 0
	opBool                // top = top!=0 ? 1 : 0
	opAdd                 // pop r; top += r
	opSub
	opMul
	opDiv // errs[a] when divisor is zero
	opMod // errs[a] when divisor is zero
	opPow
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opAndShort // if top==0 {top=0; jump a} else pop
	opOrShort  // if top!=0 {top=1; jump a} else pop
	opJmp      // jump a
	opJmpFalse // pop; jump a when zero
	opCallB    // built-in call: a args from the stack through sites[b]
	opCallH    // host call: a numeric args from the stack through sites[b]
	opErr      // raise errs[a]
)

// instr is one program instruction.  a and b are opcode-specific
// operands (slot, jump target, arg count, table index).
type instr struct {
	op  opcode
	a   int32
	b   int32
	val float64
}

// callSite is one resolved call target.
type callSite struct {
	name string
	bfn  func([]float64) (float64, error) // built-in
	hfn  Func                             // host function
	tmpl []Value                          // host arg template; string slots prefilled
}

// Program is a compiled expression: a flat instruction slice evaluating
// against a slot vector.  Programs are immutable after CompileProgram
// and safe for concurrent Run calls (per-call state lives in the
// caller's Scratch).
type Program struct {
	src      string
	code     []instr
	sites    []callSite
	errs     []error
	maxStack int
	slots    []int
}

// Scratch is reusable per-goroutine evaluation state.  A zero Scratch
// is ready to use; after the first Run it holds grown buffers, making
// subsequent runs allocation-free.
type Scratch struct {
	stack []float64
	vals  []Value
}

// Slots returns the distinct slot indices the program may read, sorted
// ascending: the expression's statically-known data dependencies.
// Slots behind untaken branches are included (the set is conservative).
func (p *Program) Slots() []int { return p.slots }

// Source returns the source text of the compiled expression.
func (p *Program) Source() string { return p.src }

// CompileProgram lowers a parsed expression to a slot-resolved program.
// Compilation never fails: names the scope cannot resolve compile to
// instructions that raise the interpreter's corresponding error if the
// operand is reached, so Run errs exactly when Eval would.
// programCompiles counts expression lowerings: plan (re)compilation
// cost made visible, since a site whose designs churn recompiles every
// binding per edit.
var programCompiles = obs.NewCounter("powerplay_expr_program_compiles_total",
	"Expressions lowered to slot-resolved programs.")

func CompileProgram(e *Expr, scope Resolver) *Program {
	programCompiles.Inc()
	c := &progCompiler{e: e, scope: scope, p: &Program{src: e.src}}
	if cr, ok := scope.(CallResolver); ok {
		c.calls = cr
	}
	c.emit(e.root)
	sort.Ints(c.p.slots)
	return c.p
}

type progCompiler struct {
	e     *Expr
	scope Resolver
	calls CallResolver
	p     *Program

	cur, max int // stack depth accounting
}

func (c *progCompiler) push(n int) {
	c.cur += n
	if c.cur > c.max {
		c.max = c.cur
	}
	c.p.maxStack = c.max
}

func (c *progCompiler) pop(n int) { c.cur -= n }

func (c *progCompiler) add(in instr) int {
	c.p.code = append(c.p.code, in)
	return len(c.p.code) - 1
}

// patch sets instruction i's jump target to the next emitted index.
func (c *progCompiler) patch(i int) { c.p.code[i].a = int32(len(c.p.code)) }

func (c *progCompiler) addErr(format string, args ...any) int32 {
	c.p.errs = append(c.p.errs, &EvalError{Expr: c.e.src, Msg: fmt.Sprintf(format, args...)})
	return int32(len(c.p.errs) - 1)
}

func (c *progCompiler) emitErr(format string, args ...any) {
	c.add(instr{op: opErr, a: c.addErr(format, args...)})
	c.push(1) // keep depth accounting consistent across branches
}

func (c *progCompiler) slotRead(slot int) {
	c.add(instr{op: opSlot, a: int32(slot)})
	c.push(1)
	for _, s := range c.p.slots {
		if s == slot {
			return
		}
	}
	c.p.slots = append(c.p.slots, slot)
}

// foldable reports whether a subtree is a compile-time constant: no
// variables and no calls other than built-ins the scope does not
// shadow.
func (c *progCompiler) foldable(n Node) bool {
	ok := true
	walk(n, func(m Node) {
		switch m := m.(type) {
		case *Var:
			ok = false
		case *Call:
			if c.calls != nil && c.calls.ClaimsCall(m.Name) {
				ok = false
			} else if _, host := c.scope.ResolveFunc(m.Name); host {
				ok = false
			} else if _, builtin := builtins[m.Name]; !builtin {
				ok = false
			}
		}
	})
	return ok
}

// fold evaluates a constant subtree with the tree interpreter itself,
// so the folded value is bit-identical to what Eval would compute.  A
// subtree that errors (1/0, bad arity) is not folded — it compiles to
// code that raises the same error only if actually reached.
func (c *progCompiler) fold(n Node) (float64, bool) {
	if _, isNum := n.(*Num); isNum {
		return 0, false // already a single instruction; nothing to fold
	}
	if !c.foldable(n) {
		return 0, false
	}
	v, err := c.e.eval(n, EmptyEnv{})
	if err != nil {
		return 0, false
	}
	return v, true
}

func (c *progCompiler) emit(n Node) {
	if v, ok := c.fold(n); ok {
		c.add(instr{op: opConst, val: v})
		c.push(1)
		return
	}
	switch n := n.(type) {
	case *Num:
		c.add(instr{op: opConst, val: n.Value})
		c.push(1)
	case *Str:
		c.emitErr("string %q used as a number", n.Value)
	case *Var:
		if slot, ok := c.scope.ResolveVar(n.Name); ok {
			c.slotRead(slot)
			return
		}
		c.emitErr("undefined variable %q", n.Name)
	case *Unary:
		c.emit(n.X)
		switch n.Op {
		case "-":
			c.add(instr{op: opNeg})
		case "!":
			c.add(instr{op: opNot})
		default:
			c.pop(1)
			c.emitErr("unknown unary operator %q", n.Op)
		}
	case *Binary:
		c.emitBinary(n)
	case *Cond:
		c.emit(n.C)
		jElse := c.add(instr{op: opJmpFalse})
		c.pop(1)
		c.emit(n.A)
		jEnd := c.add(instr{op: opJmp})
		c.patch(jElse)
		c.pop(1) // both branches leave one value; account once
		c.emit(n.B)
		c.patch(jEnd)
	case *Call:
		c.emitCall(n)
	default:
		c.emitErr("unknown node %T", n)
	}
}

func (c *progCompiler) emitBinary(n *Binary) {
	switch n.Op {
	case "&&":
		c.emit(n.L)
		j := c.add(instr{op: opAndShort})
		c.pop(1)
		c.emit(n.R)
		c.add(instr{op: opBool})
		c.patch(j)
		return
	case "||":
		c.emit(n.L)
		j := c.add(instr{op: opOrShort})
		c.pop(1)
		c.emit(n.R)
		c.add(instr{op: opBool})
		c.patch(j)
		return
	}
	c.emit(n.L)
	c.emit(n.R)
	c.pop(1)
	switch n.Op {
	case "+":
		c.add(instr{op: opAdd})
	case "-":
		c.add(instr{op: opSub})
	case "*":
		c.add(instr{op: opMul})
	case "/":
		c.add(instr{op: opDiv, a: c.addErr("division by zero")})
	case "%":
		c.add(instr{op: opMod, a: c.addErr("modulo by zero")})
	case "^":
		c.add(instr{op: opPow})
	case "==":
		c.add(instr{op: opEq})
	case "!=":
		c.add(instr{op: opNe})
	case "<":
		c.add(instr{op: opLt})
	case "<=":
		c.add(instr{op: opLe})
	case ">":
		c.add(instr{op: opGt})
	case ">=":
		c.add(instr{op: opGe})
	default:
		c.pop(1)
		c.emitErr("unknown operator %q", n.Op)
	}
}

func (c *progCompiler) emitCall(n *Call) {
	// Claimed call sites lower to slot reads (or static errors), and
	// their arguments are never evaluated — the plan computes the
	// target before any referencing program runs.
	if c.calls != nil && c.calls.ClaimsCall(n.Name) {
		args := make([]CallArg, len(n.Args))
		for i, a := range n.Args {
			if s, ok := a.(*Str); ok {
				args[i] = CallArg{IsStr: true, Str: s.Value}
			}
		}
		low := c.calls.ResolveCall(n.Name, args)
		if low.Err != nil {
			c.p.errs = append(c.p.errs, low.Err)
			c.add(instr{op: opErr, a: int32(len(c.p.errs) - 1)})
			c.push(1)
			return
		}
		c.slotRead(low.Slot)
		return
	}
	// Host functions next, shadowing built-ins, exactly like FuncEnv.
	// String literals ride in the argument template; numeric arguments
	// are evaluated onto the stack in order.
	if fn, ok := c.scope.ResolveFunc(n.Name); ok {
		site := callSite{name: n.Name, hfn: fn, tmpl: make([]Value, len(n.Args))}
		numeric := 0
		for i, a := range n.Args {
			if s, ok := a.(*Str); ok {
				site.tmpl[i] = Value{Str: s.Value, IsStr: true}
				continue
			}
			c.emit(a)
			numeric++
		}
		c.p.sites = append(c.p.sites, site)
		c.add(instr{op: opCallH, a: int32(numeric), b: int32(len(c.p.sites) - 1)})
		c.pop(numeric)
		c.push(1)
		return
	}
	// Built-ins: arity is checked before any argument evaluates, as the
	// interpreter does, so a bad-arity call errs even with erring args.
	b, ok := builtins[n.Name]
	if !ok {
		c.emitErr("unknown function %q", n.Name)
		return
	}
	if b.arity >= 0 && len(n.Args) != b.arity {
		c.emitErr("%s expects %d argument(s), got %d", n.Name, b.arity, len(n.Args))
		return
	}
	if b.arity < 0 && len(n.Args) < -b.arity {
		c.emitErr("%s expects at least %d argument(s), got %d", n.Name, -b.arity, len(n.Args))
		return
	}
	for _, a := range n.Args {
		c.emit(a)
	}
	c.p.sites = append(c.p.sites, callSite{name: n.Name, bfn: b.fn})
	c.add(instr{op: opCallB, a: int32(len(n.Args)), b: int32(len(c.p.sites) - 1)})
	c.pop(len(n.Args))
	c.push(1)
}

// Run evaluates the program against a slot vector.  The scratch space
// may be nil (a fresh one is used); passing a per-goroutine Scratch
// makes repeated runs allocation-free.  Run is safe for concurrent use
// with distinct Scratch values.
func (p *Program) Run(slots []float64, s *Scratch) (float64, error) {
	if s == nil {
		s = &Scratch{}
	}
	if cap(s.stack) < p.maxStack {
		s.stack = make([]float64, p.maxStack)
	}
	stack := s.stack[:cap(s.stack)]
	sp := 0
	code := p.code
	for i := 0; i < len(code); i++ {
		in := &code[i]
		switch in.op {
		case opConst:
			stack[sp] = in.val
			sp++
		case opSlot:
			stack[sp] = slots[in.a]
			sp++
		case opNeg:
			stack[sp-1] = -stack[sp-1]
		case opNot:
			if stack[sp-1] == 0 {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}
		case opBool:
			if stack[sp-1] != 0 {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}
		case opAdd:
			sp--
			stack[sp-1] = stack[sp-1] + stack[sp]
		case opSub:
			sp--
			stack[sp-1] = stack[sp-1] - stack[sp]
		case opMul:
			sp--
			stack[sp-1] = stack[sp-1] * stack[sp]
		case opDiv:
			sp--
			if stack[sp] == 0 {
				return 0, p.errs[in.a]
			}
			stack[sp-1] = stack[sp-1] / stack[sp]
		case opMod:
			sp--
			if stack[sp] == 0 {
				return 0, p.errs[in.a]
			}
			stack[sp-1] = math.Mod(stack[sp-1], stack[sp])
		case opPow:
			sp--
			stack[sp-1] = math.Pow(stack[sp-1], stack[sp])
		case opEq:
			sp--
			stack[sp-1] = b2f(stack[sp-1] == stack[sp])
		case opNe:
			sp--
			stack[sp-1] = b2f(stack[sp-1] != stack[sp])
		case opLt:
			sp--
			stack[sp-1] = b2f(stack[sp-1] < stack[sp])
		case opLe:
			sp--
			stack[sp-1] = b2f(stack[sp-1] <= stack[sp])
		case opGt:
			sp--
			stack[sp-1] = b2f(stack[sp-1] > stack[sp])
		case opGe:
			sp--
			stack[sp-1] = b2f(stack[sp-1] >= stack[sp])
		case opAndShort:
			if stack[sp-1] == 0 {
				stack[sp-1] = 0
				i = int(in.a) - 1
			} else {
				sp--
			}
		case opOrShort:
			if stack[sp-1] != 0 {
				stack[sp-1] = 1
				i = int(in.a) - 1
			} else {
				sp--
			}
		case opJmp:
			i = int(in.a) - 1
		case opJmpFalse:
			sp--
			if stack[sp] == 0 {
				i = int(in.a) - 1
			}
		case opCallB:
			site := &p.sites[in.b]
			argc := int(in.a)
			v, err := site.bfn(stack[sp-argc : sp])
			if err != nil {
				return 0, &EvalError{Expr: p.src, Msg: fmt.Sprintf("%s: %v", site.name, err)}
			}
			sp -= argc
			stack[sp] = v
			sp++
		case opCallH:
			site := &p.sites[in.b]
			argc := int(in.a)
			vals := append(s.vals[:0], site.tmpl...)
			s.vals = vals[:0]
			base := sp - argc
			k := 0
			for j := range vals {
				if !vals[j].IsStr {
					vals[j].Num = stack[base+k]
					k++
				}
			}
			v, err := site.hfn(vals)
			if err != nil {
				return 0, &EvalError{Expr: p.src, Msg: fmt.Sprintf("%s: %v", site.name, err)}
			}
			sp = base
			stack[sp] = v
			sp++
		case opErr:
			return 0, p.errs[in.a]
		}
	}
	return stack[sp-1], nil
}
