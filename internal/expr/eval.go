package expr

import (
	"fmt"
	"math"
)

// Value is a function argument: either a number or a string literal.
type Value struct {
	Num float64
	Str string
	// IsStr marks Str as the payload.
	IsStr bool
}

// Float returns the numeric payload, or an error for string values.
func (v Value) Float() (float64, error) {
	if v.IsStr {
		return 0, fmt.Errorf("expected number, got string %q", v.Str)
	}
	return v.Num, nil
}

// Func is a host-provided function callable from expressions.
type Func func(args []Value) (float64, error)

// Env supplies variable bindings during evaluation.
type Env interface {
	// Var resolves a (possibly dotted) variable name.
	Var(name string) (float64, bool)
}

// FuncEnv is an Env that additionally supplies functions beyond the
// built-in math library.  Host functions shadow built-ins of the same
// name.
type FuncEnv interface {
	Env
	Func(name string) (Func, bool)
}

// EmptyEnv has no variables; only literals and built-ins evaluate.
type EmptyEnv struct{}

// Var always reports the name as unbound.
func (EmptyEnv) Var(string) (float64, bool) { return 0, false }

// MapEnv is an Env backed by a map.
type MapEnv map[string]float64

// Var looks the name up in the map.
func (m MapEnv) Var(name string) (float64, bool) {
	v, ok := m[name]
	return v, ok
}

// EvalError describes an evaluation failure (unbound variable, unknown
// function, bad arity, domain error).
type EvalError struct {
	Expr string
	Msg  string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("expr: %s evaluating %q", e.Msg, e.Expr)
}

func (e *Expr) evalErr(format string, args ...any) error {
	return &EvalError{Expr: e.src, Msg: fmt.Sprintf(format, args...)}
}

// Eval computes the expression's value in the given environment.
func (e *Expr) Eval(env Env) (float64, error) {
	return e.eval(e.root, env)
}

func (e *Expr) eval(n Node, env Env) (float64, error) {
	switch n := n.(type) {
	case *Num:
		return n.Value, nil
	case *Str:
		return 0, e.evalErr("string %q used as a number", n.Value)
	case *Var:
		if v, ok := env.Var(n.Name); ok {
			return v, nil
		}
		return 0, e.evalErr("undefined variable %q", n.Name)
	case *Unary:
		x, err := e.eval(n.X, env)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case "-":
			return -x, nil
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, e.evalErr("unknown unary operator %q", n.Op)
	case *Binary:
		return e.evalBinary(n, env)
	case *Cond:
		c, err := e.eval(n.C, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return e.eval(n.A, env)
		}
		return e.eval(n.B, env)
	case *Call:
		return e.evalCall(n, env)
	}
	return 0, e.evalErr("unknown node %T", n)
}

func (e *Expr) evalBinary(n *Binary, env Env) (float64, error) {
	// Short-circuit boolean operators.
	switch n.Op {
	case "&&":
		l, err := e.eval(n.L, env)
		if err != nil {
			return 0, err
		}
		if l == 0 {
			return 0, nil
		}
		r, err := e.eval(n.R, env)
		if err != nil {
			return 0, err
		}
		return b2f(r != 0), nil
	case "||":
		l, err := e.eval(n.L, env)
		if err != nil {
			return 0, err
		}
		if l != 0 {
			return 1, nil
		}
		r, err := e.eval(n.R, env)
		if err != nil {
			return 0, err
		}
		return b2f(r != 0), nil
	}
	l, err := e.eval(n.L, env)
	if err != nil {
		return 0, err
	}
	r, err := e.eval(n.R, env)
	if err != nil {
		return 0, err
	}
	switch n.Op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, e.evalErr("division by zero")
		}
		return l / r, nil
	case "%":
		if r == 0 {
			return 0, e.evalErr("modulo by zero")
		}
		return math.Mod(l, r), nil
	case "^":
		return math.Pow(l, r), nil
	case "==":
		return b2f(l == r), nil
	case "!=":
		return b2f(l != r), nil
	case "<":
		return b2f(l < r), nil
	case "<=":
		return b2f(l <= r), nil
	case ">":
		return b2f(l > r), nil
	case ">=":
		return b2f(l >= r), nil
	}
	return 0, e.evalErr("unknown operator %q", n.Op)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (e *Expr) evalCall(n *Call, env Env) (float64, error) {
	// Host functions first: the sheet provides power("x"), area("x"), etc.
	if fe, ok := env.(FuncEnv); ok {
		if f, ok := fe.Func(n.Name); ok {
			args := make([]Value, len(n.Args))
			for i, a := range n.Args {
				if s, ok := a.(*Str); ok {
					args[i] = Value{Str: s.Value, IsStr: true}
					continue
				}
				v, err := e.eval(a, env)
				if err != nil {
					return 0, err
				}
				args[i] = Value{Num: v}
			}
			v, err := f(args)
			if err != nil {
				return 0, e.evalErr("%s: %v", n.Name, err)
			}
			return v, nil
		}
	}
	b, ok := builtins[n.Name]
	if !ok {
		return 0, e.evalErr("unknown function %q", n.Name)
	}
	if b.arity >= 0 && len(n.Args) != b.arity {
		return 0, e.evalErr("%s expects %d argument(s), got %d", n.Name, b.arity, len(n.Args))
	}
	if b.arity < 0 && len(n.Args) < -b.arity {
		return 0, e.evalErr("%s expects at least %d argument(s), got %d", n.Name, -b.arity, len(n.Args))
	}
	args := make([]float64, len(n.Args))
	for i, a := range n.Args {
		v, err := e.eval(a, env)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	v, err := b.fn(args)
	if err != nil {
		return 0, e.evalErr("%s: %v", n.Name, err)
	}
	return v, nil
}

type builtin struct {
	arity int // exact when >= 0; -n means "at least n"
	fn    func(args []float64) (float64, error)
}

func fn1(f func(float64) float64) builtin {
	return builtin{arity: 1, fn: func(a []float64) (float64, error) { return f(a[0]), nil }}
}

func fn2(f func(a, b float64) float64) builtin {
	return builtin{arity: 2, fn: func(a []float64) (float64, error) { return f(a[0], a[1]), nil }}
}

var builtins = map[string]builtin{
	"abs":   fn1(math.Abs),
	"sqrt":  fn1(math.Sqrt),
	"exp":   fn1(math.Exp),
	"ln":    fn1(math.Log),
	"log":   fn1(math.Log10),
	"log10": fn1(math.Log10),
	"log2":  fn1(math.Log2),
	"floor": fn1(math.Floor),
	"ceil":  fn1(math.Ceil),
	"round": fn1(math.Round),
	"pow":   fn2(math.Pow),
	"min": {arity: -1, fn: func(a []float64) (float64, error) {
		m := a[0]
		for _, v := range a[1:] {
			m = math.Min(m, v)
		}
		return m, nil
	}},
	"max": {arity: -1, fn: func(a []float64) (float64, error) {
		m := a[0]
		for _, v := range a[1:] {
			m = math.Max(m, v)
		}
		return m, nil
	}},
	"if": {arity: 3, fn: func(a []float64) (float64, error) {
		if a[0] != 0 {
			return a[1], nil
		}
		return a[2], nil
	}},
}
