// Package expr implements the expression language used by PowerPlay's
// spreadsheet cells and user-defined models.
//
// Any parameter of any subcircuit may be an expression over design
// variables ("VDD1", "f/16", "bits*words*0.6p"), over the computed
// results of other modules ("power(\"radio\") + power(\"cpu\")" — the
// inter-model interaction the paper uses for DC-DC converters and
// interconnect), and over a small library of mathematical functions.
//
// The language is a conventional arithmetic expression grammar:
//
//	expr    = cond
//	cond    = or [ "?" expr ":" expr ]
//	or      = and { "||" and }
//	and     = cmp { "&&" cmp }
//	cmp     = sum [ ("=="|"!="|"<"|"<="|">"|">=") sum ]
//	sum     = term { ("+"|"-") term }
//	term    = pow { ("*"|"/"|"%") pow }
//	pow     = unary [ "^" pow ]            (right associative)
//	unary   = ("-"|"+"|"!") unary | primary
//	primary = number | string | ident [ "(" args ")" ] | "(" expr ")"
//
// Numbers accept engineering notation with SI suffixes: "253fF", "2MHz",
// "100u", "2Meg", "1e-3".  Identifiers are dotted paths ("lut.words").
// Booleans are represented as 0 and 1.
package expr

import "fmt"

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokString
	tokIdent
	tokOp     // + - * / % ^ ( ) , ? :
	tokRelOp  // == != < <= > >=
	tokBoolOp // && || !
)

type token struct {
	kind tokenKind
	pos  int
	text string  // operator text or identifier or raw literal
	num  float64 // valid when kind == tokNumber
	str  string  // valid when kind == tokString
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of expression"
	case tokNumber:
		return fmt.Sprintf("number %s", t.text)
	case tokString:
		return fmt.Sprintf("string %q", t.str)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// SyntaxError describes a lexical or parse failure, with the byte offset
// into the source expression.
type SyntaxError struct {
	Src string
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: %s at offset %d in %q", e.Msg, e.Pos, e.Src)
}

func errf(src string, pos int, format string, args ...any) error {
	return &SyntaxError{Src: src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
