package expr

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Compile must never panic, whatever bytes arrive from a web form.
func TestQuickCompileNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				t.Logf("panic on %q", src)
				ok = false
			}
		}()
		e, err := Compile(src)
		if err != nil {
			return true
		}
		// If it compiled, printing and re-parsing must also work.
		printed := e.String()
		if _, err := Compile(printed); err != nil {
			t.Logf("reprint of %q -> %q fails: %v", src, printed, err)
			return false
		}
		// Evaluation may fail (unbound vars) but must not panic.
		_, _ = e.Eval(EmptyEnv{})
		_ = e.Vars()
		_ = e.Calls()
		_, _ = e.Const()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Pathologically nested input must fail cleanly, not exhaust the
// stack: these strings arrive straight from web forms.
func TestDeepNestingRejected(t *testing.T) {
	cases := []string{
		strings.Repeat("(", 100000) + "1" + strings.Repeat(")", 100000),
		strings.Repeat("-", 100000) + "1",
		strings.Repeat("!", 100000) + "1",
		strings.Repeat("min(", 50000) + "1" + strings.Repeat(")", 50000),
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("deeply nested input should be rejected (len %d)", len(src))
		} else if !strings.Contains(err.Error(), "nests deeper") {
			t.Errorf("want depth error, got %v", err)
		}
	}
	// Reasonable nesting still parses.
	ok := strings.Repeat("(", 50) + "1" + strings.Repeat(")", 50)
	if _, err := Compile(ok); err != nil {
		t.Errorf("50 levels should parse: %v", err)
	}
}

// randomExprSrc generates a random well-formed expression source over
// the given variable names (plus the occasional unbound name and
// division by a zero-valued variable, so the error paths are exercised
// too).
func randomExprSrc(rng *rand.Rand, vars []string, depth int) string {
	if depth <= 0 || rng.Intn(6) == 0 {
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%g", float64(rng.Intn(20))/4)
		case 1:
			return fmt.Sprintf("%ge%d", 1+float64(rng.Intn(9)), rng.Intn(7)-3)
		case 2:
			if rng.Intn(12) == 0 {
				return "ghost" // unbound: must fail identically both ways
			}
			return vars[rng.Intn(len(vars))]
		default:
			return vars[rng.Intn(len(vars))]
		}
	}
	sub := func() string { return randomExprSrc(rng, vars, depth-1) }
	switch rng.Intn(12) {
	case 0:
		return "(" + sub() + " + " + sub() + ")"
	case 1:
		return "(" + sub() + " - " + sub() + ")"
	case 2:
		return "(" + sub() + " * " + sub() + ")"
	case 3:
		return "(" + sub() + " / " + sub() + ")"
	case 4:
		return "(" + sub() + " ^ " + sub() + ")"
	case 5:
		return "(-" + sub() + ")"
	case 6:
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		return "(" + sub() + " " + ops[rng.Intn(len(ops))] + " " + sub() + ")"
	case 7:
		ops := []string{"&&", "||"}
		return "(" + sub() + " " + ops[rng.Intn(len(ops))] + " " + sub() + ")"
	case 8:
		return "(" + sub() + " ? " + sub() + " : " + sub() + ")"
	case 9:
		fns := []string{"abs", "sqrt", "ln", "log2", "floor", "ceil", "round", "exp"}
		return fns[rng.Intn(len(fns))] + "(" + sub() + ")"
	case 10:
		fns := []string{"min", "max", "pow"}
		return fns[rng.Intn(len(fns))] + "(" + sub() + ", " + sub() + ")"
	default:
		return "!(" + sub() + ")"
	}
}

// TestQuickProgramMatchesEval is the compiled pipeline's property test:
// for random expressions over random environments, CompileProgram +
// Run must produce exactly what Expr.Eval produces — same values (NaN
// included), same errors, same messages.  This is the expression-level
// half of the plan equivalence contract in internal/core/sheet.
func TestQuickProgramMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1996))
	vars := []string{"a", "b", "c", "zero", "f"}
	for i := 0; i < 4000; i++ {
		src := randomExprSrc(rng, vars, 4)
		e, err := Compile(src)
		if err != nil {
			t.Fatalf("generator produced unparsable %q: %v", src, err)
		}
		env := MapEnv{
			"a":    float64(rng.Intn(41)-20) / 4,
			"b":    rng.Float64()*10 - 5,
			"c":    float64(rng.Intn(5)),
			"zero": 0,
			"f":    2e6,
		}
		treeV, treeErr := e.Eval(env)
		r := newMapResolver(env, nil)
		p := CompileProgram(e, r)
		progV, progErr := p.Run(r.vec, nil)
		if (treeErr == nil) != (progErr == nil) {
			t.Fatalf("%q over %v: tree err %v, program err %v", src, env, treeErr, progErr)
		}
		if treeErr != nil {
			if treeErr.Error() != progErr.Error() {
				t.Fatalf("%q over %v: tree error %q, program error %q", src, env, treeErr, progErr)
			}
			continue
		}
		same := treeV == progV || (treeV != treeV && progV != progV) // NaN == NaN for our purposes
		if !same {
			t.Fatalf("%q over %v: tree %v, program %v", src, env, treeV, progV)
		}
	}
}

// Evaluation of a compiled expression is deterministic.
func TestQuickEvalDeterministic(t *testing.T) {
	env := MapEnv{"a": 3, "b": 5, "f": 2e6}
	srcs := []string{
		"a*b + f/16", "min(a, b) ^ 2", "a < b ? f : 0", "abs(a - b*f)",
	}
	f := func(pick uint8) bool {
		e := MustCompile(srcs[int(pick)%len(srcs)])
		v1, err1 := e.Eval(env)
		v2, err2 := e.Eval(env)
		return err1 == nil && err2 == nil && v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
