package expr

import (
	"strings"
	"testing"
	"testing/quick"
)

// Compile must never panic, whatever bytes arrive from a web form.
func TestQuickCompileNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				t.Logf("panic on %q", src)
				ok = false
			}
		}()
		e, err := Compile(src)
		if err != nil {
			return true
		}
		// If it compiled, printing and re-parsing must also work.
		printed := e.String()
		if _, err := Compile(printed); err != nil {
			t.Logf("reprint of %q -> %q fails: %v", src, printed, err)
			return false
		}
		// Evaluation may fail (unbound vars) but must not panic.
		_, _ = e.Eval(EmptyEnv{})
		_ = e.Vars()
		_ = e.Calls()
		_, _ = e.Const()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Pathologically nested input must fail cleanly, not exhaust the
// stack: these strings arrive straight from web forms.
func TestDeepNestingRejected(t *testing.T) {
	cases := []string{
		strings.Repeat("(", 100000) + "1" + strings.Repeat(")", 100000),
		strings.Repeat("-", 100000) + "1",
		strings.Repeat("!", 100000) + "1",
		strings.Repeat("min(", 50000) + "1" + strings.Repeat(")", 50000),
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("deeply nested input should be rejected (len %d)", len(src))
		} else if !strings.Contains(err.Error(), "nests deeper") {
			t.Errorf("want depth error, got %v", err)
		}
	}
	// Reasonable nesting still parses.
	ok := strings.Repeat("(", 50) + "1" + strings.Repeat(")", 50)
	if _, err := Compile(ok); err != nil {
		t.Errorf("50 levels should parse: %v", err)
	}
}

// Evaluation of a compiled expression is deterministic.
func TestQuickEvalDeterministic(t *testing.T) {
	env := MapEnv{"a": 3, "b": 5, "f": 2e6}
	srcs := []string{
		"a*b + f/16", "min(a, b) ^ 2", "a < b ? f : 0", "abs(a - b*f)",
	}
	f := func(pick uint8) bool {
		e := MustCompile(srcs[int(pick)%len(srcs)])
		v1, err1 := e.Eval(env)
		v2, err2 := e.Eval(env)
		return err1 == nil && err2 == nil && v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
