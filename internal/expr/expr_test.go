package expr

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func evalStr(t *testing.T, src string, env Env) float64 {
	t.Helper()
	e, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	env := MapEnv{"x": 3, "y": 4, "f": 2e6, "VDD": 1.5}
	cases := []struct {
		src  string
		want float64
	}{
		{"1+2", 3},
		{"2*3+4", 10},
		{"2+3*4", 14},
		{"(2+3)*4", 20},
		{"10/4", 2.5},
		{"10%4", 2},
		{"2^10", 1024},
		{"2^3^2", 512}, // right associative
		{"-x", -3},
		{"--x", 3},
		{"+x", 3},
		{"x*y", 12},
		{"f/16", 125e3},
		{"f/32", 62.5e3},
		{"VDD^2", 2.25},
		{"253fF*8*8", 253e-15 * 64},
		{"2MHz", 2e6},
		{"1.5 * 100u", 1.5e-4},
		{"x + -y", -1},
		{"2Meg/4", 5e5},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, env); math.Abs(got-c.want) > 1e-9*math.Max(1, math.Abs(c.want)) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	env := MapEnv{"a": 1, "b": 2}
	cases := []struct {
		src  string
		want float64
	}{
		{"a < b", 1},
		{"a > b", 0},
		{"a <= 1", 1},
		{"b >= 3", 0},
		{"a == 1", 1},
		{"a != 1", 0},
		{"a < b && b < 3", 1},
		{"a > b || b == 2", 1},
		{"!(a < b)", 0},
		{"!0", 1},
		{"a < b ? 10 : 20", 10},
		{"a > b ? 10 : 20", 20},
		{"a == 1 ? b == 2 ? 1 : 2 : 3", 1}, // nested ternary
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, env); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// Right side of && and || must not be evaluated when not needed:
	// an unbound variable would otherwise fail.
	env := MapEnv{"zero": 0, "one": 1}
	if got := evalStr(t, "zero && nosuch", env); got != 0 {
		t.Errorf("zero && nosuch = %v", got)
	}
	if got := evalStr(t, "one || nosuch", env); got != 1 {
		t.Errorf("one || nosuch = %v", got)
	}
	// But they are evaluated when required.
	e := MustCompile("one && nosuch")
	if _, err := e.Eval(env); err == nil {
		t.Error("one && nosuch should fail on unbound variable")
	}
}

func TestBuiltins(t *testing.T) {
	env := MapEnv{"x": -4}
	cases := []struct {
		src  string
		want float64
	}{
		{"abs(x)", 4},
		{"sqrt(16)", 4},
		{"min(3, 1, 2)", 1},
		{"max(3, 1, 2)", 3},
		{"min(5)", 5},
		{"pow(2, 8)", 256},
		{"log2(4096)", 12},
		{"log10(1000)", 3},
		{"log(100)", 2},
		{"ln(1)", 0},
		{"exp(0)", 1},
		{"floor(2.9)", 2},
		{"ceil(2.1)", 3},
		{"round(2.5)", 3},
		{"if(1, 10, 20)", 10},
		{"if(0, 10, 20)", 20},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, env); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

type testFuncEnv struct {
	MapEnv
	calls []string
}

func (f *testFuncEnv) Func(name string) (Func, bool) {
	if name != "power" && name != "area" {
		return nil, false
	}
	return func(args []Value) (float64, error) {
		if len(args) != 1 || !args[0].IsStr {
			return 0, fmt.Errorf("want one string arg")
		}
		f.calls = append(f.calls, name+":"+args[0].Str)
		if name == "power" {
			return 0.5, nil
		}
		return 2e-6, nil
	}, true
}

func TestHostFunctions(t *testing.T) {
	env := &testFuncEnv{MapEnv: MapEnv{"eta": 0.8}}
	// The paper's DC-DC converter: Pdiss = Pload (1-eta)/eta.
	got := evalStr(t, `power("radio") * (1-eta)/eta`, env)
	if math.Abs(got-0.125) > 1e-12 {
		t.Errorf("converter dissipation = %v, want 0.125", got)
	}
	if len(env.calls) != 1 || env.calls[0] != "power:radio" {
		t.Errorf("calls = %v", env.calls)
	}
	// Host functions shadow builtins only by name; builtins still work.
	if v := evalStr(t, `area("chip") + abs(-1)`, env); math.Abs(v-(2e-6+1)) > 1e-12 {
		t.Errorf("mixed host/builtin = %v", v)
	}
}

func TestHostFunctionError(t *testing.T) {
	env := &testFuncEnv{}
	e := MustCompile(`power(3)`)
	if _, err := e.Eval(env); err == nil {
		t.Error("power(3) should fail: numeric arg to string-expecting host func")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "* 2", "(1+2", "1+2)", "foo(", "foo(1,", "1 ? 2", "1 ? 2 :",
		"$x", "1..2", `"unterminated`, "a @ b", "2 3",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		} else {
			var se *SyntaxError
			if !asSyntax(err, &se) {
				t.Errorf("Compile(%q): error %v is not a SyntaxError", src, err)
			}
		}
	}
}

func asSyntax(err error, out **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*out = se
	}
	return ok
}

func TestEvalErrors(t *testing.T) {
	env := MapEnv{"x": 1}
	bad := []string{
		"nosuch", "1/0", "5%0", "nosuchfn(1)", "min()", "sqrt(1,2)", `"str" + 1`,
		"abs(nosuch)", "if(1,2)",
	}
	for _, src := range bad {
		e, err := Compile(src)
		if err != nil {
			if src == "min()" {
				continue // arity 0 call parses; eval or parse failure both acceptable
			}
			t.Errorf("Compile(%q): unexpected %v", src, err)
			continue
		}
		if _, err := e.Eval(env); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestVars(t *testing.T) {
	e := MustCompile("words*bits*c0 + words + lut.words*f")
	got := e.Vars()
	want := []string{"words", "bits", "c0", "lut.words", "f"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("Vars[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCalls(t *testing.T) {
	e := MustCompile(`power("radio") + power("cpu") + max(1, area("x"))`)
	got := e.Calls()
	want := []CallRef{{"power", "radio"}, {"power", "cpu"}, {"max", ""}, {"area", "x"}}
	if len(got) != len(want) {
		t.Fatalf("Calls = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("Calls[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConst(t *testing.T) {
	if v, ok := MustCompile("2*3 + 4").Const(); !ok || v != 10 {
		t.Errorf("Const = %v, %v", v, ok)
	}
	if _, ok := MustCompile("x+1").Const(); ok {
		t.Error("x+1 should not be const")
	}
	if _, ok := MustCompile("min(1,2)").Const(); ok {
		t.Error("calls are not considered const (host may shadow)")
	}
}

func TestStringRoundTrip(t *testing.T) {
	// String() must re-serialize to an equivalent expression.
	srcs := []string{
		"1 + 2*3",
		"(1+2)*3",
		"f/16",
		"253fF * bwA * bwB",
		"a < b ? x : y + 1",
		`power("radio") * (1-eta)/eta`,
		"-x^2",
		"!a && b",
		"min(1, 2, x)",
		"2^3^2",
	}
	env := &testFuncEnv{MapEnv: MapEnv{
		"f": 2e6, "bwA": 8, "bwB": 8, "a": 1, "b": 2, "x": 3, "y": 4, "eta": 0.8,
	}}
	for _, src := range srcs {
		e1 := MustCompile(src)
		printed := e1.String()
		e2, err := Compile(printed)
		if err != nil {
			t.Errorf("re-Compile(%q) from %q: %v", printed, src, err)
			continue
		}
		v1, err1 := e1.Eval(env)
		v2, err2 := e2.Eval(env)
		if err1 != nil || err2 != nil {
			t.Errorf("%q: eval errs %v / %v", src, err1, err2)
			continue
		}
		if math.Abs(v1-v2) > 1e-12*math.Max(1, math.Abs(v1)) {
			t.Errorf("%q: %v != reprinted %q: %v", src, v1, printed, v2)
		}
	}
}

func TestLiteral(t *testing.T) {
	e := Literal(253e-15, "253fF")
	if v, ok := e.Const(); !ok || v != 253e-15 {
		t.Errorf("Literal Const = %v, %v", v, ok)
	}
	if e.String() != "253fF" {
		t.Errorf("Literal String = %q", e.String())
	}
	if Literal(2.5, "").String() != "2.5" {
		t.Errorf("auto text = %q", Literal(2.5, "").String())
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on bad input")
		}
	}()
	MustCompile("1 +")
}

// Property: for random well-formed sums of variables, evaluation matches
// direct computation.
func TestQuickSums(t *testing.T) {
	f := func(a, b, c float64) bool {
		if anyBad(a, b, c) {
			return true
		}
		env := MapEnv{"a": a, "b": b, "c": c}
		e := MustCompile("a*b + c - a/2")
		got, err := e.Eval(env)
		if err != nil {
			return false
		}
		want := a*b + c - a/2
		return got == want || math.Abs(got-want) <= 1e-9*math.Abs(want) ||
			(math.IsNaN(got) && math.IsNaN(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: reprint/reparse is a fixpoint — String of the reparsed tree
// equals String of the original.
func TestQuickReprintFixpoint(t *testing.T) {
	pieces := []string{"a", "b", "1", "2.5", "min(a, b)", "f/16", "(a + b)"}
	ops := []string{" + ", " - ", " * ", " / ", " ^ "}
	f := func(i1, i2, i3, o1, o2 uint8) bool {
		src := pieces[int(i1)%len(pieces)] + ops[int(o1)%len(ops)] +
			pieces[int(i2)%len(pieces)] + ops[int(o2)%len(ops)] +
			pieces[int(i3)%len(pieces)]
		e1, err := Compile(src)
		if err != nil {
			return false
		}
		p1 := e1.String()
		e2, err := Compile(p1)
		if err != nil {
			return false
		}
		return e2.String() == p1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func anyBad(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
			return true
		}
	}
	return false
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Compile("1 + $")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "offset 4") {
		t.Errorf("error should carry position: %v", err)
	}
}

func TestDottedIdentifiers(t *testing.T) {
	env := MapEnv{"lut.words": 4096, "lut.bits": 6}
	if got := evalStr(t, "lut.words * lut.bits", env); got != 24576 {
		t.Errorf("dotted = %v", got)
	}
}

func TestEngineeringSuffixVsIdent(t *testing.T) {
	// "2f" is two femto; "f" alone is a variable.
	env := MapEnv{"f": 2e6}
	if got := evalStr(t, "2f", env); got != 2e-15 {
		t.Errorf("2f = %v", got)
	}
	if got := evalStr(t, "2*f", env); got != 4e6 {
		t.Errorf("2*f = %v", got)
	}
}
