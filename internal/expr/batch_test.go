package expr

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// batchEnv builds a resolver over the named slots plus a column matrix
// of the given width, every column filled by gen(slot, point).
func batchEnv(names []string, width int, gen func(slot, point int) float64) (*mapResolver, [][]float64) {
	env := MapEnv{}
	for _, n := range names {
		env[n] = 0
	}
	r := newMapResolver(env, nil)
	cols := make([][]float64, len(r.vec))
	for s := range cols {
		cols[s] = make([]float64, width)
		for i := range cols[s] {
			cols[s][i] = gen(s, i)
		}
	}
	return r, cols
}

// checkBatchMatchesRun is the equivalence oracle: it runs the program
// once per point through Run and once columnar through RunBatch, and
// enforces the RunBatch contract — bit-identical values when every
// point succeeds, an error (whose text matches some failing point's
// scalar error) when any point fails.
func checkBatchMatchesRun(t *testing.T, p *Program, cols [][]float64, width int) {
	t.Helper()
	if !p.Batchable() {
		t.Fatalf("%q: program not batchable", p.src)
	}
	vec := make([]float64, len(cols))
	var scratch Scratch
	want := make([]float64, width)
	errTexts := map[string]int{} // scalar error text -> first failing point
	for i := 0; i < width; i++ {
		for s := range cols {
			vec[s] = cols[s][i]
		}
		v, err := p.Run(vec, &scratch)
		if err != nil {
			if _, seen := errTexts[err.Error()]; !seen {
				errTexts[err.Error()] = i
			}
			continue
		}
		want[i] = v
	}
	dst := make([]float64, width)
	var bs BatchScratch
	batchErr := p.RunBatch(cols, dst, width, &bs)
	if len(errTexts) > 0 {
		if batchErr == nil {
			t.Fatalf("%q: %d scalar points fail but RunBatch succeeds", p.src, len(errTexts))
		}
		if _, ok := errTexts[batchErr.Error()]; !ok {
			t.Fatalf("%q: batch error %q matches no scalar point error %v", p.src, batchErr, errTexts)
		}
		return
	}
	if batchErr != nil {
		t.Fatalf("%q: every scalar point succeeds but RunBatch fails: %v", p.src, batchErr)
	}
	for i := 0; i < width; i++ {
		if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%q point %d: scalar %v (%#x), batch %v (%#x)",
				p.src, i, want[i], math.Float64bits(want[i]), dst[i], math.Float64bits(dst[i]))
		}
	}
}

func TestBatchable(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"a + b*2", true},
		{"sqrt(a) + pow(b, 2)", true},
		{"min(a, b, 3) + max(a, 1)", true},
		{"a > b", true},
		{"a/b + a%b", true},
		{"a && b", false}, // short-circuit: per-point branch
		{"a || b", false},
		{"a > 1 ? b : 2", false}, // conditional: per-point branch
	}
	env := MapEnv{"a": 1, "b": 2}
	for _, c := range cases {
		r := newMapResolver(env, nil)
		p := CompileProgram(MustCompile(c.src), r)
		if got := p.Batchable(); got != c.want {
			t.Errorf("Batchable(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

// TestRunBatchMatchesRun pins the equivalence contract on a fixed suite
// covering every batchable opcode, with column data that includes
// zeros, negatives, non-finite values and domain-error inputs.
func TestRunBatchMatchesRun(t *testing.T) {
	srcs := []string{
		"a + b - c*d",
		"-a ^ 2",
		"2 ^ a ^ 0.5",
		"a / b",   // fails where b == 0
		"a % b",   // fails where b == 0
		"a / 2.5", // never fails
		"a == b",
		"a != b",
		"a < b",
		"a <= b",
		"a > b",
		"a >= b",
		"!a + !!b",
		"abs(a) + sqrt(abs(b))",
		"sqrt(a)", // NaN where a < 0
		"ln(a) + log10(abs(b) + 1)",
		"exp(-(a*a)) * c",
		"floor(a) + ceil(b) + round(c)",
		"min(a, b, c) * max(a, d)",
		"pow(a, b)",
		"log2(abs(d) + 0.5)",
		"a*1e6 + b/1e3",
		"3.25",      // constant-folded to a single opConst
		"sqrt(-1)",  // constant-folded NaN
		"1/0",       // constant-folded to opErr: fails at point 0
		"a + 1/0",   // opErr behind real code
		"nosuch(a)", // unresolved call compiles to opErr
	}
	vals := []float64{0, 1, -1, 2.5, -3.75, 0.5, 1e9, -1e-9,
		math.Inf(1), math.Inf(-1), math.NaN(), 3, -0.0, 7.125}
	const width = len("................") // 16 points, > len(vals) to wrap
	for _, src := range srcs {
		r, cols := batchEnv([]string{"a", "b", "c", "d"}, width, func(s, i int) float64 {
			return vals[(s*5+i*3)%len(vals)]
		})
		p := CompileProgram(MustCompile(src), r)
		checkBatchMatchesRun(t, p, cols, width)
	}
}

// TestRunBatchHostFunctions covers the opCallH gather path, including a
// host error surfacing with the scalar error text.
func TestRunBatchHostFunctions(t *testing.T) {
	funcs := map[string]Func{
		"scale": func(args []Value) (float64, error) {
			v, _ := args[0].Float()
			k, _ := args[1].Float()
			return v * k, nil
		},
		"strict": func(args []Value) (float64, error) {
			v, _ := args[0].Float()
			if v < 0 {
				return 0, fmt.Errorf("negative input %g", v)
			}
			return v, nil
		},
	}
	env := MapEnv{"a": 0, "b": 0}
	mk := func(src string) (*Program, *mapResolver) {
		r := newMapResolver(env, funcs)
		return CompileProgram(MustCompile(src), r), r
	}
	width := 8
	fill := func(r *mapResolver, gen func(s, i int) float64) [][]float64 {
		cols := make([][]float64, len(r.vec))
		for s := range cols {
			cols[s] = make([]float64, width)
			for i := range cols[s] {
				cols[s][i] = gen(s, i)
			}
		}
		return cols
	}
	p, r := mk(`scale(a, 2) + scale(b, a)`)
	checkBatchMatchesRun(t, p, fill(r, func(s, i int) float64 { return float64(s+i) - 2 }), width)
	p, r = mk(`strict(a) + b`)
	checkBatchMatchesRun(t, p, fill(r, func(s, i int) float64 { return float64(i) - 3.5 }), width)
}

// randExpr emits a random straight-line expression of bounded depth
// over the given variable names: every batchable operator and builtin,
// no short-circuit or conditional forms.
func randExpr(rng *rand.Rand, names []string, depth int) string {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			return names[rng.Intn(len(names))]
		case 1:
			return fmt.Sprintf("%.4g", (rng.Float64()-0.5)*20)
		default:
			return fmt.Sprintf("%d", rng.Intn(7))
		}
	}
	a := randExpr(rng, names, depth-1)
	b := randExpr(rng, names, depth-1)
	switch rng.Intn(14) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s / %s)", a, b)
	case 4:
		return fmt.Sprintf("(%s %% %s)", a, b)
	case 5:
		return fmt.Sprintf("(%s ^ 2)", a)
	case 6:
		return fmt.Sprintf("(-%s)", a)
	case 7:
		return fmt.Sprintf("(%s %s %s)", a,
			[]string{"==", "!=", "<", "<=", ">", ">="}[rng.Intn(6)], b)
	case 8:
		return fmt.Sprintf("min(%s, %s)", a, b)
	case 9:
		return fmt.Sprintf("max(%s, %s)", a, b)
	case 10:
		return fmt.Sprintf("abs(%s)", a)
	case 11:
		return fmt.Sprintf("sqrt(abs(%s))", a)
	case 12:
		return fmt.Sprintf("%s(%s)", []string{"floor", "ceil", "round", "exp"}[rng.Intn(4)], a)
	default:
		return fmt.Sprintf("pow(%s, %s)", a, b)
	}
}

// TestQuickRunBatchMatchesRun drives the oracle with randomized
// programs over randomized point vectors: the property-based half of
// the equivalence story.
func TestQuickRunBatchMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	names := []string{"a", "b", "c", "d", "e"}
	for iter := 0; iter < 300; iter++ {
		src := randExpr(rng, names, 4)
		width := 1 + rng.Intn(64)
		r, cols := batchEnv(names, width, func(s, i int) float64 {
			switch rng.Intn(6) {
			case 0:
				return 0 // provoke division/modulo failures
			case 1:
				return float64(rng.Intn(5) - 2)
			case 2:
				return math.Inf(2*rng.Intn(2) - 1)
			default:
				return (rng.Float64() - 0.5) * 1e3
			}
		})
		p := CompileProgram(MustCompile(src), r)
		checkBatchMatchesRun(t, p, cols, width)
	}
}

// FuzzRunBatch feeds arbitrary sources and point data through the
// equivalence oracle; the seed corpus covers every batch opcode family.
// Non-compiling sources and non-batchable programs are skipped — the
// property under test is Run/RunBatch agreement, not parsing.
func FuzzRunBatch(f *testing.F) {
	f.Add("a + b*c", 1.5, -2.0, 0.0)
	f.Add("a / b + a % c", 3.0, 0.0, 2.0)
	f.Add("sqrt(a) + pow(b, c)", -1.0, 2.0, 10.0)
	f.Add("min(a, b, c) * max(a, -b)", 0.5, 1e9, -3.25)
	f.Add("1/0 + a", 1.0, 2.0, 3.0)
	f.Add("(a < b) + (b >= c) + !a", 0.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, src string, va, vb, vc float64) {
		e, err := Compile(src)
		if err != nil {
			t.Skip()
		}
		env := MapEnv{"a": 0, "b": 0, "c": 0}
		r := newMapResolver(env, nil)
		p := CompileProgram(e, r)
		if !p.Batchable() {
			t.Skip()
		}
		const width = 9
		seeds := []float64{va, vb, vc}
		cols := make([][]float64, len(r.vec))
		for s := range cols {
			cols[s] = make([]float64, width)
			for i := range cols[s] {
				cols[s][i] = seeds[(s+i)%len(seeds)] * float64(1+i%3)
			}
		}
		checkBatchMatchesRun(t, p, cols, width)
	})
}

// TestRunBatchScratchReuse pins the allocation story: a warm
// BatchScratch makes columnar evaluation allocation-free.
func TestRunBatchScratchReuse(t *testing.T) {
	env := MapEnv{"a": 0, "b": 0}
	r := newMapResolver(env, nil)
	p := CompileProgram(MustCompile("min(a, b, 10) + a*b/2.5"), r)
	const width = 256
	cols := make([][]float64, len(r.vec))
	for s := range cols {
		cols[s] = make([]float64, width)
		for i := range cols[s] {
			cols[s][i] = float64(s + i + 1)
		}
	}
	dst := make([]float64, width)
	var bs BatchScratch
	if err := p.RunBatch(cols, dst, width, &bs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.RunBatch(cols, dst, width, &bs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("RunBatch allocates %v per call with warm scratch", allocs)
	}
}
