package expr

import (
	"fmt"
	"strings"
	"testing"
)

// mapResolver adapts a MapEnv to the compile-time Resolver interface:
// each bound name gets a slot, in sorted order.
type mapResolver struct {
	slots map[string]int
	vec   []float64
	funcs map[string]Func
}

func newMapResolver(env MapEnv, funcs map[string]Func) *mapResolver {
	r := &mapResolver{slots: map[string]int{}, funcs: funcs}
	for name, v := range env {
		r.slots[name] = len(r.vec)
		r.vec = append(r.vec, v)
	}
	return r
}

func (r *mapResolver) ResolveVar(name string) (int, bool) {
	s, ok := r.slots[name]
	return s, ok
}

func (r *mapResolver) ResolveFunc(name string) (Func, bool) {
	f, ok := r.funcs[name]
	return f, ok
}

// funcMapEnv pairs a MapEnv with host functions for the tree
// interpreter side of equivalence checks.
type funcMapEnv struct {
	MapEnv
	funcs map[string]Func
}

func (e funcMapEnv) Func(name string) (Func, bool) {
	f, ok := e.funcs[name]
	return f, ok
}

// runBoth evaluates src through the interpreter and the compiled
// program and requires identical outcomes.
func runBoth(t *testing.T, src string, env MapEnv, funcs map[string]Func) (float64, error) {
	t.Helper()
	e := MustCompile(src)
	var treeV float64
	var treeErr error
	if funcs == nil {
		treeV, treeErr = e.Eval(env)
	} else {
		treeV, treeErr = e.Eval(funcMapEnv{env, funcs})
	}
	r := newMapResolver(env, funcs)
	p := CompileProgram(e, r)
	progV, progErr := p.Run(r.vec, nil)
	if (treeErr == nil) != (progErr == nil) {
		t.Fatalf("%q: tree err %v, program err %v", src, treeErr, progErr)
	}
	if treeErr == nil && treeV != progV && !(treeV != treeV && progV != progV) {
		t.Fatalf("%q: tree %v, program %v", src, treeV, progV)
	}
	if treeErr != nil && treeErr.Error() != progErr.Error() {
		t.Fatalf("%q: tree error %q, program error %q", src, treeErr, progErr)
	}
	return treeV, treeErr
}

func TestProgramMatchesInterpreter(t *testing.T) {
	env := MapEnv{"a": 3, "b": 5, "f": 2e6, "zero": 0, "neg": -2.5}
	srcs := []string{
		"1 + 2*3",
		"a*b + f/16",
		"a - b - 2",
		"-a ^ 2",
		"2 ^ 3 ^ 2",
		"a % 2",
		"b % zero",
		"a / zero",
		"min(a, b, neg)",
		"max(a, b) + min(1, 2)",
		"abs(neg) + sqrt(16)",
		"floor(2.7) + ceil(2.2) + round(2.5)",
		"ln(exp(1))",
		"log(100) + log2(8) + log10(1000)",
		"pow(2, 10)",
		"if(a > b, 1, 2)",
		"a > b ? 1 : 2",
		"a < b ? f : 1/zero",
		"zero != 0 ? 1/zero : 7",
		"a && b",
		"zero && 1/zero",
		"a || 1/zero",
		"zero || b",
		"!zero + !a",
		"a == 3 && b == 5",
		"a != 3 || b != 5",
		"a <= 3",
		"a >= 4",
		"nosuchvar + 1",
		"nosuchfn(3)",
		"min()",
		"sqrt(1, 2)",
		"sqrt(-1)",
		"1/0",
		"5%0",
		"0 ? 1/0 : 42",
		"1 ? 42 : 1/0",
		"\"text\" + 1",
		"2 + 3*4 - sqrt(49)", // fully constant: folded
		"a + 2*3",            // constant subtree folded
	}
	for _, src := range srcs {
		runBoth(t, src, env, nil)
	}
}

func TestProgramHostFunctions(t *testing.T) {
	funcs := map[string]Func{
		"scale": func(args []Value) (float64, error) {
			if len(args) != 2 {
				return 0, fmt.Errorf("scale takes 2 args")
			}
			v, err := args[0].Float()
			if err != nil {
				return 0, err
			}
			k, err := args[1].Float()
			if err != nil {
				return 0, err
			}
			return v * k, nil
		},
		"tag": func(args []Value) (float64, error) {
			if len(args) != 2 || !args[0].IsStr {
				return 0, fmt.Errorf("tag wants (string, number)")
			}
			v, _ := args[1].Float()
			return float64(len(args[0].Str)) + v, nil
		},
		// A host function shadowing a built-in name must win, exactly
		// as FuncEnv shadows builtins during interpretation.
		"min": func(args []Value) (float64, error) { return 42, nil },
	}
	env := MapEnv{"a": 3, "b": 7}
	srcs := []string{
		"scale(a, 4)",
		"scale(a, 4) + scale(b, 2)",
		"scale(scale(a, 2), 3)",
		`tag("radio", a)`,
		`tag("radio", scale(b, 2))`,
		"min(a, b)",     // shadowed: returns 42
		"scale(a)",      // host error
		`tag(a, b)`,     // host error (wants string)
		"scale(1/0, 2)", // arg error beats host call
	}
	for _, src := range srcs {
		runBoth(t, src, env, funcs)
	}
}

// slotCallResolver lowers metric("name") calls to slot reads, the way
// the sheet plan lowers power("row").
type slotCallResolver struct {
	*mapResolver
	metricSlot int
}

func (r *slotCallResolver) ClaimsCall(name string) bool { return name == "metric" }

func (r *slotCallResolver) ResolveCall(name string, args []CallArg) CallLowering {
	if len(args) != 1 || !args[0].IsStr {
		return CallLowering{Err: &EvalError{Expr: "", Msg: "metric() takes one quoted name"}}
	}
	return CallLowering{Slot: r.metricSlot}
}

func TestProgramSlotCalls(t *testing.T) {
	env := MapEnv{"a": 3}
	mr := newMapResolver(env, nil)
	mr.vec = append(mr.vec, 123.5) // the precomputed metric value
	r := &slotCallResolver{mapResolver: mr, metricSlot: len(mr.vec) - 1}
	e := MustCompile(`metric("radio") * 2 + a`)
	p := CompileProgram(e, r)
	v, err := p.Run(mr.vec, nil)
	if err != nil || v != 123.5*2+3 {
		t.Fatalf("slot call: got %v, %v", v, err)
	}
	// A malformed site errs when reached, and only when reached.
	e = MustCompile(`a > 100 ? metric(1) : 7`)
	p = CompileProgram(e, r)
	if v, err := p.Run(mr.vec, nil); err != nil || v != 7 {
		t.Fatalf("guarded bad site: got %v, %v", v, err)
	}
	e = MustCompile(`metric(1)`)
	p = CompileProgram(e, r)
	if _, err := p.Run(mr.vec, nil); err == nil || !strings.Contains(err.Error(), "quoted name") {
		t.Fatalf("bad site: got %v", err)
	}
}

func TestProgramSlotsReported(t *testing.T) {
	env := MapEnv{"a": 1, "b": 2, "c": 3}
	r := newMapResolver(env, nil)
	e := MustCompile("a + b*a")
	p := CompileProgram(e, r)
	want := map[int]bool{r.slots["a"]: true, r.slots["b"]: true}
	if len(p.Slots()) != 2 || !want[p.Slots()[0]] || !want[p.Slots()[1]] {
		t.Fatalf("slots: got %v, want keys of %v", p.Slots(), want)
	}
}

func TestProgramScratchReuse(t *testing.T) {
	env := MapEnv{"a": 3, "b": 5}
	r := newMapResolver(env, nil)
	p := CompileProgram(MustCompile("min(a, b, 10) + a*b"), r)
	var s Scratch
	if _, err := p.Run(r.vec, &s); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.Run(r.vec, &s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Run allocates %v per call with warm scratch", allocs)
	}
}
