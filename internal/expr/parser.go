package expr

type parser struct {
	lex   lexer
	tok   token
	err   error
	depth int
}

// maxDepth bounds expression nesting so pathological form input
// ("(((((…" or "-----…") fails cleanly instead of exhausting the
// stack.  Real spreadsheet cells nest a handful of levels.
const maxDepth = 200

func (p *parser) enter() bool {
	p.depth++
	if p.depth > maxDepth {
		p.fail("expression nests deeper than %d levels", maxDepth)
		return false
	}
	return true
}

func (p *parser) leave() { p.depth-- }

// Compile parses src into an evaluable expression.
func Compile(src string) (*Expr, error) {
	p := &parser{lex: lexer{src: src}}
	p.advance()
	root := p.parseExpr()
	if p.err != nil {
		return nil, p.err
	}
	if p.tok.kind != tokEOF {
		return nil, errf(src, p.tok.pos, "unexpected %s", p.tok)
	}
	return &Expr{src: src, root: root, id: nextExprID.Add(1)}, nil
}

func (p *parser) advance() {
	if p.err != nil {
		return
	}
	t, err := p.lex.next()
	if err != nil {
		p.err = err
		p.tok = token{kind: tokEOF, pos: p.lex.pos}
		return
	}
	p.tok = t
}

func (p *parser) fail(format string, args ...any) Node {
	if p.err == nil {
		p.err = errf(p.lex.src, p.tok.pos, format, args...)
	}
	return &Num{}
}

func (p *parser) expectOp(text string) {
	if p.err != nil {
		return
	}
	if p.tok.kind != tokOp || p.tok.text != text {
		p.fail("expected %q, found %s", text, p.tok)
		return
	}
	p.advance()
}

func (p *parser) isOp(text string) bool {
	return p.err == nil && p.tok.kind == tokOp && p.tok.text == text
}

// parseExpr = cond
func (p *parser) parseExpr() Node {
	if !p.enter() {
		return &Num{}
	}
	defer p.leave()
	return p.parseCond()
}

func (p *parser) parseCond() Node {
	c := p.parseOr()
	if !p.isOp("?") {
		return c
	}
	p.advance()
	a := p.parseExpr()
	p.expectOp(":")
	b := p.parseExpr()
	return &Cond{C: c, A: a, B: b}
}

func (p *parser) parseOr() Node {
	n := p.parseAnd()
	for p.err == nil && p.tok.kind == tokBoolOp && p.tok.text == "||" {
		p.advance()
		n = &Binary{Op: "||", L: n, R: p.parseAnd()}
	}
	return n
}

func (p *parser) parseAnd() Node {
	n := p.parseCmp()
	for p.err == nil && p.tok.kind == tokBoolOp && p.tok.text == "&&" {
		p.advance()
		n = &Binary{Op: "&&", L: n, R: p.parseCmp()}
	}
	return n
}

func (p *parser) parseCmp() Node {
	n := p.parseSum()
	if p.err == nil && p.tok.kind == tokRelOp {
		op := p.tok.text
		p.advance()
		n = &Binary{Op: op, L: n, R: p.parseSum()}
	}
	return n
}

func (p *parser) parseSum() Node {
	n := p.parseTerm()
	for p.err == nil && p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		p.advance()
		n = &Binary{Op: op, L: n, R: p.parseTerm()}
	}
	return n
}

func (p *parser) parseTerm() Node {
	n := p.parsePow()
	for p.err == nil && p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/" || p.tok.text == "%") {
		op := p.tok.text
		p.advance()
		n = &Binary{Op: op, L: n, R: p.parsePow()}
	}
	return n
}

// parsePow handles exponentiation, right associative: 2^3^2 == 2^(3^2).
func (p *parser) parsePow() Node {
	n := p.parseUnary()
	if p.isOp("^") {
		p.advance()
		return &Binary{Op: "^", L: n, R: p.parsePow()}
	}
	return n
}

func (p *parser) parseUnary() Node {
	if !p.enter() {
		return &Num{}
	}
	defer p.leave()
	if p.err == nil {
		switch {
		case p.tok.kind == tokOp && (p.tok.text == "-" || p.tok.text == "+"):
			op := p.tok.text
			p.advance()
			x := p.parseUnary()
			if op == "+" {
				return x
			}
			// Fold negation of literals so "-1.5" is a Num.
			if num, ok := x.(*Num); ok {
				return &Num{Value: -num.Value, Text: "-" + num.Text}
			}
			return &Unary{Op: op, X: x}
		case p.tok.kind == tokBoolOp && p.tok.text == "!":
			p.advance()
			return &Unary{Op: "!", X: p.parseUnary()}
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() Node {
	if p.err != nil {
		return &Num{}
	}
	switch p.tok.kind {
	case tokNumber:
		n := &Num{Value: p.tok.num, Text: p.tok.text}
		p.advance()
		return n
	case tokString:
		n := &Str{Value: p.tok.str}
		p.advance()
		return n
	case tokIdent:
		name := p.tok.text
		p.advance()
		if p.isOp("(") {
			return p.parseCallArgs(name)
		}
		return &Var{Name: name}
	case tokOp:
		if p.tok.text == "(" {
			p.advance()
			n := p.parseExpr()
			p.expectOp(")")
			return n
		}
	}
	return p.fail("expected operand, found %s", p.tok)
}

func (p *parser) parseCallArgs(name string) Node {
	p.expectOp("(")
	call := &Call{Name: name}
	if p.isOp(")") {
		p.advance()
		return call
	}
	for {
		call.Args = append(call.Args, p.parseExpr())
		if p.err != nil {
			return call
		}
		if p.isOp(",") {
			p.advance()
			continue
		}
		break
	}
	p.expectOp(")")
	return call
}
