package expr

import (
	"strings"
	"unicode"
	"unicode/utf8"

	"powerplay/internal/units"
)

type lexer struct {
	src string
	pos int
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
}

// next scans one token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.lexNumber()
	case c == '"' || c == '\'':
		return l.lexString(c)
	case isIdentStart(rune(c)) || c >= utf8.RuneSelf:
		return l.lexIdent()
	}
	// Operators.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "==", "!=", "<=", ">=":
		l.pos += 2
		return token{kind: tokRelOp, pos: start, text: two}, nil
	case "&&", "||":
		l.pos += 2
		return token{kind: tokBoolOp, pos: start, text: two}, nil
	}
	switch c {
	case '<', '>':
		l.pos++
		return token{kind: tokRelOp, pos: start, text: string(c)}, nil
	case '!':
		l.pos++
		return token{kind: tokBoolOp, pos: start, text: "!"}, nil
	case '+', '-', '*', '/', '%', '^', '(', ')', ',', '?', ':':
		l.pos++
		return token{kind: tokOp, pos: start, text: string(c)}, nil
	}
	return token{}, errf(l.src, start, "unexpected character %q", c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexNumber scans a numeric literal, including an attached engineering
// suffix ("253fF", "2MHz", "100u").  The mantissa is scanned first; any
// immediately following letters are treated as a units suffix and folded
// into the value via units.Parse.
func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start && expTailAt(l.src, l.pos+1):
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto suffix
		}
	}
suffix:
	// Attached unit/prefix letters, e.g. the "fF" of "253fF".  Stop at
	// anything that is not a letter (µ included).
	sufStart := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsLetter(r) {
			break
		}
		l.pos += size
	}
	lit := l.src[start:l.pos]
	v, err := units.Parse(lit)
	if err != nil {
		// The letters may belong to a following identifier typo; report
		// at the suffix.
		return token{}, errf(l.src, sufStart, "malformed number %q", lit)
	}
	return token{kind: tokNumber, pos: start, text: lit, num: v}, nil
}

func expTailAt(s string, i int) bool {
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	return i < len(s) && isDigit(s[i])
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokString, pos: start, text: l.src[start:l.pos], str: b.String()}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, errf(l.src, l.pos, "unterminated escape")
			}
			l.pos++
			b.WriteByte(l.src[l.pos])
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, errf(l.src, start, "unterminated string")
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	return token{kind: tokIdent, pos: start, text: l.src[start:l.pos]}, nil
}
