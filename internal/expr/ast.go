package expr

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Node is an expression tree node.
type Node interface {
	// writeTo re-serializes the node into canonical source form.
	writeTo(b *strings.Builder)
}

// Num is a numeric literal.  Text preserves the engineering-notation
// spelling from the source ("253fF") so spreadsheets re-display what the
// user typed.
type Num struct {
	Value float64
	Text  string
}

// Str is a string literal, used as an argument to functions such as
// power("radio").
type Str struct {
	Value string
}

// Var is a (possibly dotted) variable reference.
type Var struct {
	Name string
}

// Call is a function application.
type Call struct {
	Name string
	Args []Node
}

// Unary is a prefix operation: "-", "+" or "!".
type Unary struct {
	Op string
	X  Node
}

// Binary is an infix operation.
type Binary struct {
	Op   string
	L, R Node
}

// Cond is the ternary conditional c ? a : b.
type Cond struct {
	C, A, B Node
}

func (n *Num) writeTo(b *strings.Builder) {
	if n.Text != "" {
		b.WriteString(n.Text)
		return
	}
	b.WriteString(strconv.FormatFloat(n.Value, 'g', -1, 64))
}

func (n *Str) writeTo(b *strings.Builder) {
	b.WriteString(strconv.Quote(n.Value))
}

func (n *Var) writeTo(b *strings.Builder) { b.WriteString(n.Name) }

func (n *Call) writeTo(b *strings.Builder) {
	b.WriteString(n.Name)
	b.WriteByte('(')
	for i, a := range n.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		a.writeTo(b)
	}
	b.WriteByte(')')
}

func (n *Unary) writeTo(b *strings.Builder) {
	b.WriteString(n.Op)
	if needParens(n.X) {
		b.WriteByte('(')
		n.X.writeTo(b)
		b.WriteByte(')')
	} else {
		n.X.writeTo(b)
	}
}

func (n *Binary) writeTo(b *strings.Builder) {
	writeOperand(b, n.L)
	b.WriteByte(' ')
	b.WriteString(n.Op)
	b.WriteByte(' ')
	writeOperand(b, n.R)
}

func (n *Cond) writeTo(b *strings.Builder) {
	writeOperand(b, n.C)
	b.WriteString(" ? ")
	writeOperand(b, n.A)
	b.WriteString(" : ")
	writeOperand(b, n.B)
}

func writeOperand(b *strings.Builder, n Node) {
	if needParens(n) {
		b.WriteByte('(')
		n.writeTo(b)
		b.WriteByte(')')
	} else {
		n.writeTo(b)
	}
}

func needParens(n Node) bool {
	switch n.(type) {
	case *Binary, *Cond:
		return true
	}
	return false
}

// Expr is a compiled expression ready for repeated evaluation.
type Expr struct {
	src  string
	root Node
	id   uint64
}

// nextExprID hands each Expr a process-unique identity (see Expr.ID).
var nextExprID atomic.Uint64

// Source returns the original source text of the expression.
func (e *Expr) Source() string { return e.src }

// ID returns a process-unique identity for the expression.  Because an
// Expr is immutable after Compile and rebinding a cell swaps pointers
// rather than mutating in place, a hash over binding IDs fingerprints a
// sheet's expression content — what the evaluation-plan cache uses to
// detect edits.
func (e *Expr) ID() uint64 { return e.id }

// Root returns the root of the parse tree.
func (e *Expr) Root() Node { return e.root }

// String re-serializes the expression in canonical form.
func (e *Expr) String() string {
	var b strings.Builder
	e.root.writeTo(&b)
	return b.String()
}

// Vars returns the set of free variable names referenced by the
// expression, in first-appearance order.  Function names are not
// included; use Calls for those.
func (e *Expr) Vars() []string {
	var out []string
	seen := map[string]bool{}
	walk(e.root, func(n Node) {
		if v, ok := n.(*Var); ok && !seen[v.Name] {
			seen[v.Name] = true
			out = append(out, v.Name)
		}
	})
	return out
}

// CallRef identifies one function application site, with any leading
// string-literal argument resolved (CallRef{"power", "radio"} for
// power("radio")).  Arg is empty when the first argument is not a string
// literal.
type CallRef struct {
	Name string
	Arg  string
}

// Calls returns every function application in the expression.
func (e *Expr) Calls() []CallRef {
	var out []CallRef
	walk(e.root, func(n Node) {
		c, ok := n.(*Call)
		if !ok {
			return
		}
		ref := CallRef{Name: c.Name}
		if len(c.Args) > 0 {
			if s, ok := c.Args[0].(*Str); ok {
				ref.Arg = s.Value
			}
		}
		out = append(out, ref)
	})
	return out
}

func walk(n Node, f func(Node)) {
	f(n)
	switch n := n.(type) {
	case *Call:
		for _, a := range n.Args {
			walk(a, f)
		}
	case *Unary:
		walk(n.X, f)
	case *Binary:
		walk(n.L, f)
		walk(n.R, f)
	case *Cond:
		walk(n.C, f)
		walk(n.A, f)
		walk(n.B, f)
	}
}

// Const reports whether the expression has no free variables or function
// calls, and if so returns its value.
func (e *Expr) Const() (float64, bool) {
	varsOrCalls := false
	walk(e.root, func(n Node) {
		switch n.(type) {
		case *Var, *Call:
			varsOrCalls = true
		}
	})
	if varsOrCalls {
		return 0, false
	}
	v, err := e.Eval(EmptyEnv{})
	if err != nil {
		return 0, false
	}
	return v, true
}

// Literal builds a compiled expression holding a constant, displayed in
// engineering notation with the given unit.
func Literal(v float64, text string) *Expr {
	if text == "" {
		text = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return &Expr{src: text, root: &Num{Value: v, Text: text}, id: nextExprID.Add(1)}
}

// MustCompile is Compile that panics on error; for use with expression
// constants in source code.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(fmt.Sprintf("expr.MustCompile(%q): %v", src, err))
	}
	return e
}
