package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormat(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{253e-15, "F", "253fF"},
		{1.5, "V", "1.5V"},
		{2e6, "Hz", "2MHz"},
		{146.4e-6, "W", "146.4uW"},
		{0, "W", "0W"},
		{100e-6, "W", "100uW"},
		{999.96e-6, "W", "1mW"}, // rounds into next band
		{-3.3, "V", "-3.3V"},
		{1e-12, "F", "1pF"},
		{0.0006e-12, "F", "600aF"},
		{1000, "Hz", "1kHz"},
		{1, "Hz", "1Hz"},
		{2.83, "W", "2.83W"},
	}
	for _, c := range cases {
		if got := Format(c.v, c.unit); got != c.want {
			t.Errorf("Format(%v, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestFormatExtremes(t *testing.T) {
	if got := Format(1e30, "F"); !strings.Contains(got, "e+") {
		t.Errorf("huge value should fall back to scientific notation, got %q", got)
	}
	if got := Format(math.NaN(), "W"); got != "NaNW" {
		t.Errorf("NaN = %q", got)
	}
	if got := Format(math.Inf(1), "W"); got != "+InfW" {
		t.Errorf("+Inf = %q", got)
	}
	if got := Format(math.Inf(-1), "W"); got != "-InfW" {
		t.Errorf("-Inf = %q", got)
	}
}

func TestFormatArea(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0um^2"},
		{50e-12, "50um^2"},
		{2.5e-6, "2.5mm^2"},
		{1e-4, "1cm^2"},
	}
	for _, c := range cases {
		if got := FormatArea(c.v); got != c.want {
			t.Errorf("FormatArea(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"253fF", 253e-15},
		{"1.5V", 1.5},
		{"2MHz", 2e6},
		{"2Meg", 2e6},
		{"2meg", 2e6},
		{"0.25", 0.25},
		{"2e6", 2e6},
		{"2E6", 2e6},
		{"1e-3", 1e-3},
		{"100u", 1e-4},
		{"100uW", 1e-4},
		{"3.3 V", 3.3},
		{"-1.2V", -1.2},
		{"+5", 5},
		{"1k", 1000},
		{"1KHz", 1000},
		{"4096", 4096},
		{"1F", 1}, // bare farad, capital F is a unit not femto
		{"1fF", 1e-15},
		{"1mA", 1e-3},
		{"1GHz", 1e9},
		{"80", 80},
		{"1e+3", 1e3},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12*math.Max(1, math.Abs(c.want)) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "volts", "1.5.2bad...", "--3", "1.5V!!", "e6"} {
		if v, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %v, want error", in, v)
		}
	}
}

// Property: Format then Parse round-trips within formatting precision.
func TestFormatParseRoundTrip(t *testing.T) {
	f := func(mantissa float64, exp int8) bool {
		if mantissa == 0 || math.IsNaN(mantissa) || math.IsInf(mantissa, 0) {
			return true
		}
		// Keep within the prefix table's range.
		e := int(exp)%28 - 14
		v := mantissa / math.Pow(2, 40) * math.Pow(10, float64(e))
		if v == 0 || math.Abs(v) < 1e-17 || math.Abs(v) > 1e12 {
			return true
		}
		s := Format(v, "W")
		got, err := Parse(s)
		if err != nil {
			t.Logf("Parse(%q): %v", s, err)
			return false
		}
		rel := math.Abs(got-v) / math.Abs(v)
		return rel < 1e-3 // Format keeps 4 significant digits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Energy is symmetric in scaling — doubling V quadruples energy.
func TestEnergyQuadratic(t *testing.T) {
	f := func(c, v float64) bool {
		c = math.Abs(c)
		v = math.Abs(v)
		if math.IsInf(c, 0) || math.IsNaN(c) || math.IsInf(v, 0) || math.IsNaN(v) || c > 1e30 || v > 1e30 {
			return true
		}
		e1 := Energy(Farads(c), Volts(v))
		e2 := Energy(Farads(c), Volts(2*v))
		if e1 == 0 {
			return e2 == 0
		}
		if math.IsInf(float64(e2), 0) {
			return true
		}
		return math.Abs(float64(e2)/float64(e1)-4) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwingEnergy(t *testing.T) {
	// EQ 1: partial-swing energy is C·Vswing·VDD, linear in both.
	e := SwingEnergy(100*PicoFarad, 0.5, 1.5)
	want := 100e-12 * 0.5 * 1.5
	if math.Abs(float64(e)-want) > 1e-20 {
		t.Errorf("SwingEnergy = %v, want %v", e, want)
	}
	// Full swing degenerates to C·V².
	if SwingEnergy(10*PicoFarad, 2, 2) != Energy(10*PicoFarad, 2) {
		t.Error("full swing should equal C·V²")
	}
}

func TestPower(t *testing.T) {
	p := Power(300*PicoJoule, 2*MegaHertz)
	if math.Abs(float64(p)-600e-6) > 1e-12 {
		t.Errorf("Power = %v, want 600uW", p)
	}
}

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{(253 * FemtoFarad).String(), "253fF"},
		{Volts(1.5).String(), "1.5V"},
		{(2 * MegaHertz).String(), "2MHz"},
		{(150 * MicroWatt).String(), "150uW"},
		{Joules(300e-12).String(), "300pJ"},
		{Amps(1e-3).String(), "1mA"},
		{Seconds(1e-9).String(), "1ns"},
		{(100 * SquareMicron).String(), "100um^2"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestSci(t *testing.T) {
	if got := Sci(5.438e-4, "W"); got != "5.438e-04W" {
		t.Errorf("Sci = %q", got)
	}
}

// Parse must never panic on arbitrary form input, and anything it
// accepts must be finite unless the text spelled an infinity.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				t.Logf("panic on %q", s)
				ok = false
			}
		}()
		v, err := Parse(s)
		if err != nil {
			return true
		}
		return !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
