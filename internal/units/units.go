// Package units provides the physical quantities and engineering-notation
// formatting used throughout PowerPlay.
//
// Every model in the library trades in a small set of SI quantities:
// capacitance (farads), voltage (volts), current (amperes), frequency
// (hertz), energy (joules), power (watts), time (seconds) and area
// (square metres).  Spreadsheet cells display these in engineering
// notation ("253fF", "1.5V", "2MHz", "146.4uW") exactly as the paper's
// figures do, and parameter forms accept the same notation back.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Distinct quantity types.  They are deliberately plain float64s so that
// arithmetic stays ordinary Go; the named types exist for documentation,
// for String methods, and so that API signatures say what they mean.
type (
	// Farads is electrical capacitance.
	Farads float64
	// Volts is electrical potential.
	Volts float64
	// Amps is electrical current.
	Amps float64
	// Hertz is frequency.
	Hertz float64
	// Joules is energy.
	Joules float64
	// Watts is power.
	Watts float64
	// Seconds is time.
	Seconds float64
	// SquareMeters is silicon area.
	SquareMeters float64
)

// Convenient scale constants.
const (
	FemtoFarad Farads = 1e-15
	PicoFarad  Farads = 1e-12
	NanoFarad  Farads = 1e-9

	MicroWatt Watts = 1e-6
	MilliWatt Watts = 1e-3

	PicoJoule Joules = 1e-12
	NanoJoule Joules = 1e-9

	KiloHertz Hertz = 1e3
	MegaHertz Hertz = 1e6
	GigaHertz Hertz = 1e9

	MicroAmp Amps = 1e-6
	MilliAmp Amps = 1e-3

	SquareMicron SquareMeters = 1e-12
	SquareMM     SquareMeters = 1e-6
)

func (f Farads) String() string       { return Format(float64(f), "F") }
func (v Volts) String() string        { return Format(float64(v), "V") }
func (a Amps) String() string         { return Format(float64(a), "A") }
func (h Hertz) String() string        { return Format(float64(h), "Hz") }
func (j Joules) String() string       { return Format(float64(j), "J") }
func (w Watts) String() string        { return Format(float64(w), "W") }
func (s Seconds) String() string      { return Format(float64(s), "s") }
func (a SquareMeters) String() string { return FormatArea(float64(a)) }

// Energy returns the switching energy C·V² of a capacitance charged and
// discharged through a full swing V.
func Energy(c Farads, v Volts) Joules {
	return Joules(float64(c) * float64(v) * float64(v))
}

// SwingEnergy returns the energy C·Vswing·Vdd drawn from the supply when
// a capacitance switches over a partial swing (EQ 1 of the paper).
func SwingEnergy(c Farads, swing, vdd Volts) Joules {
	return Joules(float64(c) * float64(swing) * float64(vdd))
}

// Power converts an energy-per-operation into average power at an
// operation frequency.
func Power(e Joules, f Hertz) Watts {
	return Watts(float64(e) * float64(f))
}

// siPrefixes maps engineering exponents (multiples of three) to prefixes.
var siPrefixes = map[int]string{
	-18: "a", -15: "f", -12: "p", -9: "n", -6: "u", -3: "m",
	0: "", 3: "k", 6: "M", 9: "G", 12: "T",
}

// prefixValues is the inverse of siPrefixes, with SPICE-style aliases.
var prefixValues = map[string]float64{
	"a": 1e-18, "f": 1e-15, "p": 1e-12, "n": 1e-9,
	"u": 1e-6, "µ": 1e-6, "m": 1e-3,
	"k": 1e3, "K": 1e3, "M": 1e6, "Meg": 1e6, "meg": 1e6,
	"G": 1e9, "g": 1e9, "T": 1e12,
}

// Format renders a value in engineering notation with an SI prefix and
// the given unit symbol: Format(253e-15, "F") == "253fF".  Values whose
// magnitude falls outside the prefix table fall back to scientific
// notation.  Zero formats as "0" plus the unit.
func Format(v float64, unit string) string {
	switch {
	case v == 0:
		return "0" + unit
	case math.IsNaN(v):
		return "NaN" + unit
	case math.IsInf(v, 1):
		return "+Inf" + unit
	case math.IsInf(v, -1):
		return "-Inf" + unit
	}
	exp := int(math.Floor(math.Log10(math.Abs(v))))
	// Round the exponent down to a multiple of 3.
	eng := exp - ((exp%3)+3)%3
	prefix, ok := siPrefixes[eng]
	if !ok {
		return fmt.Sprintf("%.4g%s", v, unit)
	}
	scaled := v / math.Pow(10, float64(eng))
	// Guard against 999.99... rounding up into the next band.
	s := strconv.FormatFloat(scaled, 'g', 4, 64)
	if f, _ := strconv.ParseFloat(s, 64); math.Abs(f) >= 1000 {
		eng += 3
		if prefix, ok = siPrefixes[eng]; !ok {
			return fmt.Sprintf("%.4g%s", v, unit)
		}
		scaled = v / math.Pow(10, float64(eng))
		s = strconv.FormatFloat(scaled, 'g', 4, 64)
	}
	return s + prefix + unit
}

// FormatArea renders an area, preferring mm² and µm² which are the
// natural magnitudes for chip floorplans.
func FormatArea(m2 float64) string {
	switch {
	case m2 == 0:
		return "0um^2"
	case math.Abs(m2) >= 1e-5:
		return fmt.Sprintf("%.4gcm^2", m2*1e4)
	case math.Abs(m2) >= 1e-8:
		return fmt.Sprintf("%.4gmm^2", m2*1e6)
	default:
		return fmt.Sprintf("%.4gum^2", m2*1e12)
	}
}

// Sci renders a value the way the paper's spreadsheet dumps do
// ("5.438e-04W").
func Sci(v float64, unit string) string {
	return fmt.Sprintf("%.3e%s", v, unit)
}

// Parse reads a number in engineering notation and returns its SI value.
// Accepted forms: "253fF", "1.5V", "2MHz", "0.25", "2e6", "100u",
// "3.3 V", "2Meg".  The unit suffix, when present, is checked only for
// plausibility (letters), never interpreted; "2MHz" and "2MV" both parse
// to 2e6.  A bare SI prefix with no unit works ("100u" == 1e-4).
func Parse(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty value")
	}
	// Longest numeric prefix.
	i := 0
	seenDigit := false
	for i < len(s) {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			seenDigit = true
			i++
		case c == '+' || c == '-':
			if i == 0 || s[i-1] == 'e' || s[i-1] == 'E' {
				i++
			} else {
				goto done
			}
		case c == '.':
			i++
		case (c == 'e' || c == 'E') && seenDigit && i+1 < len(s) && isExpTail(s[i+1:]):
			i++
		default:
			goto done
		}
	}
done:
	if !seenDigit {
		return 0, fmt.Errorf("units: %q has no numeric part", s)
	}
	num, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, fmt.Errorf("units: %q: %v", s, err)
	}
	rest := strings.TrimSpace(s[i:])
	if rest == "" {
		return num, nil
	}
	// SPICE-style "Meg" must be matched before the single-letter "M"...
	// but a lone "m" means milli, and "mm^2"-style units are not supported
	// here (areas are entered in base units by the sheet).
	for _, p := range []string{"Meg", "meg"} {
		if strings.HasPrefix(rest, p) {
			if !validUnitTail(rest[len(p):]) {
				return 0, fmt.Errorf("units: %q has malformed unit %q", s, rest)
			}
			return num * 1e6, nil
		}
	}
	if mult, ok := prefixValue(rest); ok {
		return num * mult, nil
	}
	if !validUnitTail(rest) {
		return 0, fmt.Errorf("units: %q has malformed unit %q", s, rest)
	}
	return num, nil
}

func isExpTail(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '+' || s[0] == '-' {
		s = s[1:]
	}
	return len(s) > 0 && s[0] >= '0' && s[0] <= '9'
}

// prefixValue interprets the leading SI prefix of a unit tail, if the
// remainder looks like a unit.  "fF" -> 1e-15, "MHz" -> 1e6, "V" -> no
// prefix.  A single letter that is itself a common unit symbol (V, W, A,
// F, J, s) is treated as a unit, not a prefix.
func prefixValue(rest string) (float64, bool) {
	r := []rune(rest)
	first := string(r[0])
	mult, isPrefix := prefixValues[first]
	if !isPrefix {
		return 0, false
	}
	tail := string(r[1:])
	if tail == "" {
		// Bare prefix like "100u"; but bare "F"/"A" etc. are units.
		if isUnitSymbol(first) {
			return 0, false
		}
		return mult, true
	}
	if !validUnitTail(tail) {
		return 0, false
	}
	return mult, true
}

func isUnitSymbol(s string) bool {
	switch s {
	case "V", "W", "A", "F", "J", "s", "S":
		return true
	}
	return false
}

func validUnitTail(s string) bool {
	for _, c := range s {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == 'z' || c == '^' || c >= '0' && c <= '9' || c == 'Ω' || c == '/') {
			return false
		}
	}
	return true
}
