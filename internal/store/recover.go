package store

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"time"

	"powerplay/internal/core/model"
	"powerplay/internal/core/sheet"
	"powerplay/internal/library"
)

// Account is one recovered user's state: exactly what the web layer's
// per-user shard holds, reconstructed from snapshot plus journal
// suffix.
type Account struct {
	Name     string
	Defaults map[string]map[string]float64
	Designs  map[string]*sheet.Design
}

// RecoveredState is what Recover hands the server to boot from.
type RecoveredState struct {
	// Accounts maps user name to reconstructed state.
	Accounts map[string]*Account
	// Mounts are the remote libraries the pre-crash site had mounted,
	// for the server to re-mount best-effort (keys are never
	// persisted; the running configuration supplies them).
	Mounts []MountSpec
	// Subs are the repository subscriptions to resume: their mirrored
	// models are already registered (from the snapshot blob and
	// repo_model records), so resuming is starting the poll loop, not
	// refetching.
	Subs []SubSpec
	// MirrorOrigins marks which registered models are mirrored
	// publications: local name → publisher base URL.
	MirrorOrigins map[string]string
	// Stats summarizes the recovery for healthz and the boot log.
	Stats RecoveryStats
}

// RecoveryStats is the healthz "last_recovery" block.
type RecoveryStats struct {
	Accounts        int     `json:"accounts"`
	AccountsSkipped int     `json:"accounts_skipped,omitempty"`
	Designs         int     `json:"designs"`
	SnapshotsLoaded int     `json:"snapshots_loaded"`
	RecordsReplayed int     `json:"records_replayed"`
	RecordsSkipped  int     `json:"records_skipped"`
	ReplayErrors    int     `json:"replay_errors"`
	TruncatedBytes  int64   `json:"truncated_bytes"`
	DurationMs      float64 `json:"duration_ms"`
}

// Recover rebuilds the full site state from disk: for every scope,
// load the newest valid snapshot, then replay the journal suffix in
// order, skipping records whose generation the snapshot already
// covers.  Torn tails were truncated when the journals opened; a
// record that fails to apply (a journal written against a model the
// library no longer has, say) is counted and logged, never fatal —
// recovery's contract is that a crashed site boots with everything
// that can be reconstructed, not that it refuses service over what
// cannot.
//
// Call once, after Open and before serving traffic.  Site-scope
// replay registers user-defined equation models into reg.
func (st *Store) Recover(reg *model.Registry) (*RecoveredState, error) {
	return st.RecoverOwned(reg, nil)
}

// RecoverOwned is Recover restricted to a partition of the user
// corpus: accounts for which owns returns false are skipped without
// even opening their journals — their files stay byte-untouched (no
// tail truncation, no snapshot rewrite), so a misconfigured shard
// cannot damage another shard's data and a later boot with the right
// ownership finds everything exactly as the last rightful owner left
// it.  Skipped accounts are counted in Stats.AccountsSkipped.  The
// site scope is always recovered (it is replicated to every shard).
// A nil owns recovers everything.
func (st *Store) RecoverOwned(reg *model.Registry, owns func(user string) bool) (*RecoveredState, error) {
	start := time.Now()
	out := &RecoveredState{Accounts: make(map[string]*Account)}

	// Site scope first: designs replayed below may instantiate
	// user-defined models.
	if err := st.recoverSite(reg, out); err != nil {
		return nil, err
	}

	usersDir := filepath.Join(st.dir, "users")
	entries, err := os.ReadDir(usersDir)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		// Only directories the store wrote count as accounts: a user
		// directory without journal or snapshot (a legacy layout, say)
		// is not ours to claim — and claiming it would plant an empty
		// journal that blocks legacy migration.
		udir := filepath.Join(usersDir, e.Name())
		if !fileExists(filepath.Join(udir, "journal.log")) &&
			!fileExists(filepath.Join(udir, "snapshot.json")) {
			continue
		}
		if owns != nil && !owns(e.Name()) {
			out.Stats.AccountsSkipped++
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		acct, err := st.recoverUser(name, reg, &out.Stats)
		if err != nil {
			return nil, err
		}
		out.Accounts[name] = acct
		out.Stats.Accounts++
		out.Stats.Designs += len(acct.Designs)
	}
	out.Stats.DurationMs = float64(time.Since(start).Microseconds()) / 1e3
	journalLag.Set(float64(st.Lag()))
	return out, nil
}

// fileExists reports whether path names an existing regular file.
func fileExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.Mode().IsRegular()
}

// loadScope opens one scope's journal and snapshot, decoding the
// journal payloads into records.
func (st *Store) loadScope(user string, stats *RecoveryStats) (snap []byte, recs []Record, err error) {
	st.mu.Lock()
	ul, ok := st.logs[user]
	var payloads [][]byte
	var truncated int64
	if ok {
		// Already open (Recover after appends is not supported, but a
		// double Recover must not re-truncate): no payloads to offer.
		_ = ul
	} else {
		_, payloads, truncated, err = st.openScope(user)
	}
	st.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	stats.TruncatedBytes += truncated
	for _, p := range payloads {
		var r Record
		if err := json.Unmarshal(p, &r); err != nil {
			// An intact frame with undecodable JSON means a writer bug,
			// not disk corruption; skip it rather than lose the suffix.
			stats.ReplayErrors++
			slog.Warn("store: undecodable journal record", "user", user, "err", err)
			continue
		}
		recs = append(recs, r)
	}
	dir, err := st.scopeDir(user)
	if err != nil {
		return nil, nil, err
	}
	snapPayload, ok, err := readSnapshot(filepath.Join(dir, "snapshot.json"))
	if err != nil {
		// A corrupt snapshot cannot be partially trusted; boot from the
		// journal alone and say so loudly.
		stats.ReplayErrors++
		slog.Warn("store: ignoring invalid snapshot", "user", user, "err", err)
		return nil, recs, nil
	}
	if ok {
		stats.SnapshotsLoaded++
		return snapPayload, recs, nil
	}
	return nil, recs, nil
}

// recoverSite replays the site scope: equation models and mounts.
func (st *Store) recoverSite(reg *model.Registry, out *RecoveredState) error {
	snapPayload, recs, err := st.loadScope(siteScope, &out.Stats)
	if err != nil {
		return err
	}
	mounts := make(map[string]MountSpec)
	var order []string
	subs := make(map[string]SubSpec)
	var subOrder []string
	out.MirrorOrigins = make(map[string]string)
	if snapPayload != nil {
		var snap SiteSnapshot
		if err := json.Unmarshal(snapPayload, &snap); err != nil {
			out.Stats.ReplayErrors++
			slog.Warn("store: undecodable site snapshot", "err", err)
		} else {
			if len(snap.Models) > 0 {
				// Mirrored publications are Equation models and ride in
				// the same blob, so they come back without the publisher.
				if _, err := library.LoadEquations(reg, snap.Models); err != nil {
					out.Stats.ReplayErrors++
					slog.Warn("store: site snapshot models failed to load", "err", err)
				}
			}
			for _, m := range snap.Mounts {
				if _, seen := mounts[m.Prefix]; !seen {
					order = append(order, m.Prefix)
				}
				mounts[m.Prefix] = m
			}
			for _, sp := range snap.Subs {
				if _, seen := subs[sp.Prefix]; !seen {
					subOrder = append(subOrder, sp.Prefix)
				}
				subs[sp.Prefix] = sp
			}
			for name, origin := range snap.MirrorOrigins {
				out.MirrorOrigins[name] = origin
			}
		}
	}
	for _, r := range recs {
		out.Stats.RecordsReplayed++
		replayRecords.Inc()
		switch r.Kind {
		case KindModelPut:
			var q library.Equation
			if err := json.Unmarshal(r.Blob, &q); err != nil {
				out.Stats.ReplayErrors++
				slog.Warn("store: bad model_put record", "err", err)
				continue
			}
			if err := q.Compile(); err != nil {
				out.Stats.ReplayErrors++
				slog.Warn("store: recovered model does not compile", "model", q.Name, "err", err)
				continue
			}
			if err := reg.Register(&q); err != nil {
				out.Stats.ReplayErrors++
				slog.Warn("store: recovered model rejected by registry", "model", q.Name, "err", err)
			}
		case KindMount, KindRefresh:
			var m MountSpec
			if err := json.Unmarshal(r.Blob, &m); err != nil {
				out.Stats.ReplayErrors++
				slog.Warn("store: bad mount record", "err", err)
				continue
			}
			if _, seen := mounts[m.Prefix]; !seen {
				order = append(order, m.Prefix)
			}
			mounts[m.Prefix] = m
		case KindUnmount:
			var m MountSpec
			if err := json.Unmarshal(r.Blob, &m); err != nil {
				out.Stats.ReplayErrors++
				slog.Warn("store: bad unmount record", "err", err)
				continue
			}
			delete(mounts, m.Prefix)
		case KindRepoModel:
			// The blob is a canonical publication body: valid Equation
			// JSON minus the name, which the record carries.
			var q library.Equation
			if err := json.Unmarshal(r.Blob, &q); err != nil {
				out.Stats.ReplayErrors++
				slog.Warn("store: bad repo_model record", "model", r.Model, "err", err)
				continue
			}
			q.Name = r.Model
			if err := q.Compile(); err != nil {
				out.Stats.ReplayErrors++
				slog.Warn("store: recovered mirror does not compile", "model", r.Model, "err", err)
				continue
			}
			if err := reg.Register(&q); err != nil {
				out.Stats.ReplayErrors++
				slog.Warn("store: recovered mirror rejected by registry", "model", r.Model, "err", err)
				continue
			}
			out.MirrorOrigins[r.Model] = r.Origin
		case KindRepoDrop:
			reg.Unregister(r.Model)
			delete(out.MirrorOrigins, r.Model)
		case KindRepoSubscribe:
			var sp SubSpec
			if err := json.Unmarshal(r.Blob, &sp); err != nil {
				out.Stats.ReplayErrors++
				slog.Warn("store: bad repo_subscribe record", "err", err)
				continue
			}
			if _, seen := subs[sp.Prefix]; !seen {
				subOrder = append(subOrder, sp.Prefix)
			}
			subs[sp.Prefix] = sp
		case KindRepoUnsubscribe:
			var sp SubSpec
			if err := json.Unmarshal(r.Blob, &sp); err != nil {
				out.Stats.ReplayErrors++
				slog.Warn("store: bad repo_unsubscribe record", "err", err)
				continue
			}
			delete(subs, sp.Prefix)
		default:
			out.Stats.ReplayErrors++
			slog.Warn("store: unexpected record kind in site journal", "kind", r.Kind)
		}
	}
	for _, p := range order {
		if m, ok := mounts[p]; ok {
			out.Mounts = append(out.Mounts, m)
		}
	}
	for _, p := range subOrder {
		if sp, ok := subs[p]; ok {
			out.Subs = append(out.Subs, sp)
		}
	}
	return nil
}

// recoverUser rebuilds one account: snapshot state first, then the
// journal suffix with the duplicate-generation skip that makes replay
// idempotent across a crash between snapshot and truncation.
func (st *Store) recoverUser(name string, reg *model.Registry, stats *RecoveryStats) (*Account, error) {
	snapPayload, recs, err := st.loadScope(name, stats)
	if err != nil {
		return nil, err
	}
	acct := &Account{
		Name:     name,
		Defaults: make(map[string]map[string]float64),
		Designs:  make(map[string]*sheet.Design),
	}
	if snapPayload != nil {
		var snap UserSnapshot
		if err := json.Unmarshal(snapPayload, &snap); err != nil {
			stats.ReplayErrors++
			slog.Warn("store: undecodable user snapshot", "user", name, "err", err)
		} else {
			if snap.Defaults != nil {
				acct.Defaults = snap.Defaults
			}
			for _, ds := range snap.Designs {
				d, err := sheet.ParseDesign(ds.Design, reg)
				if err != nil {
					stats.ReplayErrors++
					slog.Warn("store: snapshot design failed to parse", "user", name, "err", err)
					continue
				}
				d.AdoptID(ds.ID)
				d.AdoptGeneration(ds.Gen)
				acct.Designs[d.Name] = d
			}
		}
	}
	for _, r := range recs {
		stats.RecordsReplayed++
		replayRecords.Inc()
		if err := applyUserRecord(acct, r, reg, stats); err != nil {
			stats.ReplayErrors++
			slog.Warn("store: journal record failed to apply",
				"user", name, "kind", r.Kind, "design", r.Design, "err", err)
		}
	}
	return acct, nil
}

// applyUserRecord replays one user-scope record onto an account.
func applyUserRecord(acct *Account, r Record, reg *model.Registry, stats *RecoveryStats) error {
	switch r.Kind {
	case KindUserCreate:
		return nil
	case KindDefaults:
		if r.Model == "" {
			return fmt.Errorf("defaults record without model")
		}
		m := acct.Defaults[r.Model]
		if m == nil {
			m = make(map[string]float64)
			acct.Defaults[r.Model] = m
		}
		for k, v := range r.Values {
			m[k] = v
		}
		return nil
	case KindDesignPut:
		if cur, ok := acct.Designs[r.Design]; ok && cur.Generation() >= r.Gen {
			stats.RecordsSkipped++
			return nil
		}
		d, err := sheet.ParseDesign(r.Blob, reg)
		if err != nil {
			return err
		}
		d.AdoptID(r.ID)
		d.AdoptGeneration(r.Gen)
		acct.Designs[d.Name] = d
		return nil
	case KindDesignDelete:
		delete(acct.Designs, r.Design)
		return nil
	case KindMutate:
		d, ok := acct.Designs[r.Design]
		if !ok {
			return fmt.Errorf("mutate record for unknown design %q", r.Design)
		}
		if d.Generation() >= r.Gen {
			stats.RecordsSkipped++
			return nil
		}
		if r.Mut == nil {
			return fmt.Errorf("mutate record without mutation")
		}
		if err := d.ApplyMutation(*r.Mut); err != nil {
			return err
		}
		// Pin the replayed generation to the recorded one: replay must
		// land on the exact pre-crash counter, not merely a counter
		// that moved the same number of times.
		d.AdoptGeneration(r.Gen)
		return nil
	}
	return fmt.Errorf("unknown record kind %q", r.Kind)
}
