// Package store is PowerPlay's durability layer: a per-user
// append-only mutation journal plus periodic snapshots, with
// replay-on-boot recovery that reconstructs the exact account map a
// crashed server held.
//
// The contract, from the operator's side:
//
//   - every mutating request appends one or more framed records to the
//     owning user's journal *before* the response is acknowledged, so
//     an acked write survives a kill -9 (under the "always" fsync
//     policy; "interval" bounds the exposure window instead);
//   - a snapshot is a full serialization of one user's state — the
//     journal is truncated after a snapshot lands, so boot replays
//     only the suffix written since;
//   - recovery loads the newest valid snapshot, replays the journal
//     suffix record by record, and *truncates* — never fails on — a
//     torn tail or a CRC-corrupt frame: the crash that produced the
//     partial record already lost that write, and refusing to boot
//     would turn one lost record into a lost site.
//
// The sequence numbers are not invented here: sheet.Design.Generation
// (and the model registry's generation for site-scope records) already
// advance on every mutation, so each record carries the generation the
// live tree had after the edit.  A snapshot records the generations it
// covers; replay skips records at or below them, which makes replay
// idempotent when a crash lands between snapshot and journal
// truncation.
//
// # Frame format
//
// A journal is a sequence of frames, each:
//
//	uint32 LE  payload length n
//	uint32 LE  CRC-32C (Castagnoli) of the payload
//	n bytes    payload (one JSON-encoded Record)
//
// Snapshots use the same frame around their JSON body, so both kinds
// of file share one scanner and one corruption story.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// WriteSyncer is the journal's sink: an append-only byte stream with a
// durability barrier.  *os.File satisfies it; tests substitute
// fault-injecting implementations (in the spirit of internal/faultnet)
// that tear writes mid-frame or fail the barrier.
type WriteSyncer interface {
	io.Writer
	Sync() error
}

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

// Fsync policies (the -durability flag).
const (
	// SyncAlways fsyncs after every append: an acked write survives
	// kill -9.  The strongest and slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval marks the journal dirty and lets the store's
	// background flusher fsync on a short period: a crash loses at
	// most one flush interval of acked writes.  The default.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache: fastest, and the
	// right choice only for throwaway sites and benchmarks.
	SyncNever
)

// ParsePolicy reads the -durability flag spelling.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "", "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown durability policy %q (want always, interval or never)", s)
}

// String returns the flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

const (
	// frameHeader is the fixed per-record overhead: length + CRC.
	frameHeader = 8
	// maxFrameBytes bounds one record's payload.  A record is one
	// mutation or one full design/model serialization; nothing sane
	// approaches this, so a larger declared length is read as
	// corruption, not as an allocation request.
	maxFrameBytes = 16 << 20
)

// castagnoli is the CRC-32C table (the polynomial with hardware
// support on current CPUs, and the one storage systems conventionally
// frame with).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame encodes one payload into buf and returns the extended
// slice.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// scanFrames walks b and returns every intact payload plus the length
// of the valid prefix.  Scanning stops — without error — at the first
// frame that is torn (fewer bytes than its header or declared length
// promises) or corrupt (CRC mismatch, or a length no writer would
// produce): everything at and past that point is untrusted, because
// frame boundaries cannot be re-synchronized once one frame lies.
func scanFrames(b []byte) (payloads [][]byte, validLen int64) {
	off := 0
	for {
		rest := len(b) - off
		if rest < frameHeader {
			return payloads, int64(off)
		}
		n := binary.LittleEndian.Uint32(b[off : off+4])
		crc := binary.LittleEndian.Uint32(b[off+4 : off+8])
		if n == 0 || n > maxFrameBytes || rest-frameHeader < int(n) {
			return payloads, int64(off)
		}
		payload := b[off+frameHeader : off+frameHeader+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return payloads, int64(off)
		}
		payloads = append(payloads, payload)
		off += frameHeader + int(n)
	}
}

// Journal is one append-only record file.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	sink   WriteSyncer // the write path; f unless a test interposed
	path   string
	policy SyncPolicy
	dirty  bool // bytes written since the last successful Sync
}

// openJournal opens (creating if needed) the journal at path, scans
// it, physically truncates any torn or corrupt tail, and returns the
// journal positioned for appending plus the intact payloads and the
// number of bytes cut.  Payload slices alias one read of the file and
// must be consumed before the next append.
func openJournal(path string, policy SyncPolicy) (j *Journal, payloads [][]byte, truncated int64, err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	blob, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	payloads, valid := scanFrames(blob)
	truncated = int64(len(blob)) - valid
	if truncated > 0 {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return &Journal{f: f, sink: f, path: path, policy: policy}, payloads, truncated, nil
}

// SetSink interposes a WriteSyncer between the journal and its file:
// the fault-injection hook.  Tests wrap the underlying file with a
// syncer that tears writes mid-frame or fails its barrier, simulating
// the power cut the frame format exists to survive.
func (j *Journal) SetSink(wrap func(WriteSyncer) WriteSyncer) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sink = wrap(j.sink)
}

// Append frames and writes the payloads as one contiguous write, then
// applies the sync policy.  On a write error the journal's tail may be
// torn — exactly the state recovery truncates — so the caller reports
// the error and keeps serving from memory.
func (j *Journal) Append(payloads ...[]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	var buf []byte
	for _, p := range payloads {
		if len(p) == 0 || len(p) > maxFrameBytes {
			return fmt.Errorf("store: record size %d outside (0, %d]", len(p), maxFrameBytes)
		}
		buf = appendFrame(buf, p)
	}
	start := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal %s is closed", j.path)
	}
	if _, err := j.sink.Write(buf); err != nil {
		j.dirty = true
		return fmt.Errorf("store: appending to %s: %w", j.path, err)
	}
	j.dirty = true
	if j.policy == SyncAlways {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	appendSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// Sync forces buffered appends to stable storage (a no-op when clean).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || !j.dirty {
		return nil
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if err := j.sink.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", j.path, err)
	}
	j.dirty = false
	fsyncTotal.Inc()
	return nil
}

// reset empties the journal after its records landed in a snapshot.
func (j *Journal) reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal %s is closed", j.path)
	}
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	j.dirty = true
	return j.syncLocked()
}

// Close syncs and releases the file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	var err error
	if j.dirty {
		if serr := j.sink.Sync(); serr != nil {
			err = serr
		} else {
			fsyncTotal.Inc()
		}
	}
	if cerr := j.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
