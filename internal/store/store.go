package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Options parameterize a Store.
type Options struct {
	// Policy selects the fsync discipline (the -durability flag).
	Policy SyncPolicy
	// FlushInterval paces the background fsync under SyncInterval;
	// zero selects 100 ms.
	FlushInterval time.Duration
	// SnapshotEvery is the per-user journal length at which the web
	// layer is told to fold the journal into a snapshot; zero selects
	// 512 records.
	SnapshotEvery int
}

func (o Options) flushInterval() time.Duration {
	if o.FlushInterval > 0 {
		return o.FlushInterval
	}
	return 100 * time.Millisecond
}

func (o Options) snapshotEvery() int {
	if o.SnapshotEvery > 0 {
		return o.SnapshotEvery
	}
	return 512
}

// Store manages one data directory's journals and snapshots: one
// journal+snapshot pair per user under users/<name>/, plus a
// site-scope pair under site/ for state owned by the site rather than
// any user (equation models, remote mounts).
type Store struct {
	dir string
	opt Options

	mu   sync.Mutex
	logs map[string]*userLog // "" is the site scope
	lag  int                 // total un-snapshotted records

	flushOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
	closed    bool
}

// userLog pairs one journal with its snapshot-lag bookkeeping.
type userLog struct {
	j   *Journal
	lag int
}

// SiteScope is the Append/Snapshot user argument addressing the
// site-scope journal.
const SiteScope = ""

// siteScope is the internal alias.
const siteScope = SiteScope

// Open prepares a store over dir, creating the directory tree as
// needed.  Call Recover before serving traffic; journals open lazily
// as users first write.
func Open(dir string, opt Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "users"), 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, "site"), 0o755); err != nil {
		return nil, err
	}
	return &Store{
		dir:  dir,
		opt:  opt,
		logs: make(map[string]*userLog),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Policy returns the configured fsync policy.
func (st *Store) Policy() SyncPolicy { return st.opt.Policy }

// scopeDir maps a user name to its directory.
func (st *Store) scopeDir(user string) (string, error) {
	if user == siteScope {
		return filepath.Join(st.dir, "site"), nil
	}
	if user == "" || strings.ContainsAny(user, "/\\") || strings.Contains(user, "..") {
		return "", fmt.Errorf("store: unusable user name %q", user)
	}
	return filepath.Join(st.dir, "users", user), nil
}

// openScope opens one scope's journal (creating the directory and
// file as needed), truncating any torn tail, and registers it in the
// log table.  It returns the intact record payloads for recovery to
// consume.  Caller holds st.mu.
func (st *Store) openScope(user string) (ul *userLog, payloads [][]byte, truncated int64, err error) {
	dir, err := st.scopeDir(user)
	if err != nil {
		return nil, nil, 0, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, err
	}
	j, payloads, truncated, err := openJournal(filepath.Join(dir, "journal.log"), st.opt.Policy)
	if err != nil {
		return nil, nil, 0, err
	}
	if truncated > 0 {
		truncationsTotal.Inc()
	}
	ul = &userLog{j: j, lag: len(payloads)}
	st.logs[user] = ul
	st.lag += ul.lag
	return ul, payloads, truncated, nil
}

// logFor returns (creating if needed) the journal for one scope.
// Caller holds st.mu.
func (st *Store) logFor(user string) (*userLog, error) {
	if ul, ok := st.logs[user]; ok {
		return ul, nil
	}
	ul, _, _, err := st.openScope(user)
	return ul, err
}

// Append journals records for one user ("" for site scope) and
// returns that user's journal lag — the records a crash would replay.
// The caller must serialize appends per user (the web layer holds the
// user's lock), so record order in the journal matches generation
// order.
func (st *Store) Append(user string, recs ...Record) (lagAfter int, err error) {
	if len(recs) == 0 {
		st.mu.Lock()
		defer st.mu.Unlock()
		if ul, ok := st.logs[user]; ok {
			return ul.lag, nil
		}
		return 0, nil
	}
	payloads := make([][]byte, len(recs))
	for i := range recs {
		if payloads[i], err = json.Marshal(&recs[i]); err != nil {
			return 0, fmt.Errorf("store: encoding %s record: %w", recs[i].Kind, err)
		}
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return 0, fmt.Errorf("store: closed")
	}
	ul, err := st.logFor(user)
	if err != nil {
		st.mu.Unlock()
		return 0, err
	}
	st.mu.Unlock()
	st.startFlusher()
	if err := ul.j.Append(payloads...); err != nil {
		return 0, err
	}
	st.mu.Lock()
	ul.lag += len(recs)
	st.lag += len(recs)
	lagAfter = ul.lag
	journalLag.Set(float64(st.lag))
	st.mu.Unlock()
	return lagAfter, nil
}

// SnapshotDue reports whether a user's journal lag has reached the
// fold-into-snapshot threshold.
func (st *Store) SnapshotDue(lag int) bool { return lag >= st.opt.snapshotEvery() }

// Lag returns the total number of appended-but-unsnapshotted records
// across all scopes: the healthz "journal lag".
func (st *Store) Lag() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lag
}

// SnapshotUser atomically replaces one user's snapshot and truncates
// the now-covered journal.  The caller must hold the user's lock (at
// least for reading) across building snap *and* this call, so no
// record can land between serialization and truncation.
func (st *Store) SnapshotUser(name string, snap *UserSnapshot) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot for %q: %w", name, err)
	}
	return st.snapshot(name, payload)
}

// SnapshotSite is SnapshotUser for the site scope.
func (st *Store) SnapshotSite(snap *SiteSnapshot) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encoding site snapshot: %w", err)
	}
	return st.snapshot(siteScope, payload)
}

func (st *Store) snapshot(user string, payload []byte) error {
	start := time.Now()
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return fmt.Errorf("store: closed")
	}
	ul, err := st.logFor(user)
	if err != nil {
		st.mu.Unlock()
		return err
	}
	st.mu.Unlock()
	dir, _ := st.scopeDir(user)
	if err := writeSnapshot(filepath.Join(dir, "snapshot.json"), payload); err != nil {
		return fmt.Errorf("store: writing snapshot for %q: %w", user, err)
	}
	// The journal's records are now redundant with the snapshot; a
	// crash before this truncate replays them into a state the
	// generation check recognizes as already-applied.
	if err := ul.j.reset(); err != nil {
		return fmt.Errorf("store: resetting journal for %q: %w", user, err)
	}
	st.mu.Lock()
	st.lag -= ul.lag
	ul.lag = 0
	journalLag.Set(float64(st.lag))
	st.mu.Unlock()
	snapshotSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// journalFor exposes one scope's journal for fault-injection tests.
func (st *Store) journalFor(user string) (*Journal, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ul, err := st.logFor(user)
	if err != nil {
		return nil, err
	}
	return ul.j, nil
}

// SetSink interposes a fault-injecting WriteSyncer on one scope's
// journal (see Journal.SetSink).
func (st *Store) SetSink(user string, wrap func(WriteSyncer) WriteSyncer) error {
	j, err := st.journalFor(user)
	if err != nil {
		return err
	}
	j.SetSink(wrap)
	return nil
}

// startFlusher launches the background fsync loop on first append
// under SyncInterval; other policies never need it.
func (st *Store) startFlusher() {
	if st.opt.Policy != SyncInterval {
		return
	}
	st.flushOnce.Do(func() {
		go func() {
			defer close(st.done)
			t := time.NewTicker(st.opt.flushInterval())
			defer t.Stop()
			for {
				select {
				case <-st.stop:
					return
				case <-t.C:
					st.flushAll()
				}
			}
		}()
	})
}

func (st *Store) flushAll() {
	st.mu.Lock()
	js := make([]*Journal, 0, len(st.logs))
	for _, ul := range st.logs {
		js = append(js, ul.j)
	}
	st.mu.Unlock()
	for _, j := range js {
		_ = j.Sync() // a failed background fsync retries next tick
	}
}

// Close stops the flusher and syncs and closes every journal.  It
// does not snapshot — that is the server's shutdown step, which runs
// first so a clean exit leaves empty journals.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	js := make([]*Journal, 0, len(st.logs))
	for _, ul := range st.logs {
		js = append(js, ul.j)
	}
	st.mu.Unlock()
	// Stop the flusher if it ever started; otherwise mark done so a
	// second Close cannot block.
	st.flushOnce.Do(func() { close(st.done) })
	select {
	case <-st.done:
	default:
		close(st.stop)
		<-st.done
	}
	var first error
	for _, j := range js {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
