package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTestJournal(t *testing.T, path string, policy SyncPolicy) (*Journal, [][]byte, int64) {
	t.Helper()
	j, payloads, truncated, err := openJournal(path, policy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, payloads, truncated
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, payloads, _ := openTestJournal(t, path, SyncAlways)
	if len(payloads) != 0 {
		t.Fatalf("fresh journal returned %d records", len(payloads))
	}
	want := [][]byte{[]byte(`{"a":1}`), []byte(`{"b":2}`), []byte(`{"c":3}`)}
	if err := j.Append(want[0]); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(want[1], want[2]); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, got, truncated := openTestJournal(t, path, SyncAlways)
	if truncated != 0 {
		t.Fatalf("clean journal reported %d truncated bytes", truncated)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
}

// TestJournalEmptyFile: an empty journal (or no file at all) recovers
// to zero records with zero truncation.
func TestJournalEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	_, payloads, truncated := openTestJournal(t, path, SyncNever)
	if len(payloads) != 0 || truncated != 0 {
		t.Fatalf("empty journal: %d records, %d truncated", len(payloads), truncated)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("open should have created an empty file: %v", err)
	}
}

// writeFrames builds a journal file from whole frames.
func writeFrames(t *testing.T, path string, payloads ...[]byte) []byte {
	t.Helper()
	var buf []byte
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestJournalTornTail: a partial frame at the end — from a torn header
// down to a single stray byte — is truncated; the intact prefix
// survives and the file shrinks to the last valid frame boundary.
func TestJournalTornTail(t *testing.T) {
	full := [][]byte{[]byte(`{"n":1}`), []byte(`{"n":2}`)}
	for _, cut := range []int{1, frameHeader - 1, frameHeader, frameHeader + 3} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal.log")
			buf := writeFrames(t, path, full...)
			torn := append(append([]byte{}, buf...), appendFrame(nil, []byte(`{"n":3}`))[:cut]...)
			if err := os.WriteFile(path, torn, 0o644); err != nil {
				t.Fatal(err)
			}
			_, payloads, truncated := openTestJournal(t, path, SyncNever)
			if len(payloads) != 2 {
				t.Fatalf("recovered %d records, want 2", len(payloads))
			}
			if truncated != int64(cut) {
				t.Errorf("truncated %d bytes, want %d", truncated, cut)
			}
			if fi, _ := os.Stat(path); fi.Size() != int64(len(buf)) {
				t.Errorf("file size %d after truncate, want %d", fi.Size(), len(buf))
			}
		})
	}
}

// TestJournalZeroLengthTornTail: a file ending exactly on a frame
// boundary is not a torn tail at all — nothing is truncated — and a
// tail that is only a zero-length header (a frame that never got its
// payload length written) is cut without touching the intact prefix.
func TestJournalZeroLengthTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	buf := writeFrames(t, path, []byte(`{"n":1}`))
	_, payloads, truncated := openTestJournal(t, path, SyncNever)
	if len(payloads) != 1 || truncated != 0 {
		t.Fatalf("boundary-aligned journal: %d records, %d truncated", len(payloads), truncated)
	}

	// A tail of zero bytes declared: header present, length zero —
	// scanFrames must reject the frame (no writer produces it) and
	// truncate from there.
	zeroHdr := append(append([]byte{}, buf...), make([]byte, frameHeader)...)
	if err := os.WriteFile(path, zeroHdr, 0o644); err != nil {
		t.Fatal(err)
	}
	_, payloads, truncated = openTestJournal(t, path, SyncNever)
	if len(payloads) != 1 || truncated != frameHeader {
		t.Fatalf("zero-length frame: %d records, %d truncated (want 1, %d)",
			len(payloads), truncated, frameHeader)
	}
}

// TestJournalCRCFlipMiddle: a bit flip inside a middle record's
// payload invalidates that frame and everything after it — frame
// boundaries downstream of a lying frame cannot be trusted — so the
// journal truncates at the last frame before the corruption.
func TestJournalCRCFlipMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	recs := [][]byte{[]byte(`{"n":1}`), []byte(`{"n":2}`), []byte(`{"n":3}`)}
	buf := writeFrames(t, path, recs...)
	// Flip one bit in the middle record's payload.
	middlePayload := frameHeader + len(recs[0]) + frameHeader
	buf[middlePayload+2] ^= 0x10
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, payloads, truncated := openTestJournal(t, path, SyncNever)
	if len(payloads) != 1 {
		t.Fatalf("recovered %d records, want only the one before the flip", len(payloads))
	}
	if !bytes.Equal(payloads[0], recs[0]) {
		t.Errorf("surviving record = %q, want %q", payloads[0], recs[0])
	}
	wantCut := int64(len(buf)) - int64(frameHeader+len(recs[0]))
	if truncated != wantCut {
		t.Errorf("truncated %d bytes, want %d", truncated, wantCut)
	}
}

// TestJournalInsaneLength: a frame declaring an absurd payload length
// reads as corruption, not as an allocation request.
func TestJournalInsaneLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	buf := writeFrames(t, path, []byte(`{"n":1}`))
	bad := append(append([]byte{}, buf...), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 'x')
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	_, payloads, truncated := openTestJournal(t, path, SyncNever)
	if len(payloads) != 1 || truncated != 9 {
		t.Fatalf("got %d records, %d truncated; want 1, 9", len(payloads), truncated)
	}
}

// faultSyncer is the fault-injecting WriteSyncer (in the spirit of
// internal/faultnet): it forwards writes to the real file but can tear
// a write after N bytes — the moment the power went out — and fail
// sync barriers afterwards.
type faultSyncer struct {
	inner     WriteSyncer
	tearAfter int // bytes to pass through before tearing; -1 = off
	written   int
	torn      bool
}

func (f *faultSyncer) Write(p []byte) (int, error) {
	if f.torn {
		return 0, fmt.Errorf("faultsyncer: device gone")
	}
	if f.tearAfter >= 0 && f.written+len(p) > f.tearAfter {
		keep := f.tearAfter - f.written
		if keep > 0 {
			f.inner.Write(p[:keep])
			f.written += keep
		}
		f.torn = true
		return keep, fmt.Errorf("faultsyncer: torn write after %d bytes", f.written)
	}
	n, err := f.inner.Write(p)
	f.written += n
	return n, err
}

func (f *faultSyncer) Sync() error {
	if f.torn {
		return fmt.Errorf("faultsyncer: device gone")
	}
	return f.inner.Sync()
}

// TestJournalTornWriteRecovery: a write torn mid-frame by the fault
// syncer leaves a tail the next open truncates; every record acked
// before the tear survives.
func TestJournalTornWriteRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, _, _ := openTestJournal(t, path, SyncAlways)
	good := []byte(`{"ok":true}`)
	if err := j.Append(good); err != nil {
		t.Fatal(err)
	}
	// Tear the next frame 5 bytes in (mid-header).
	j.SetSink(func(ws WriteSyncer) WriteSyncer {
		return &faultSyncer{inner: ws, tearAfter: 5}
	})
	if err := j.Append([]byte(`{"lost":true}`)); err == nil {
		t.Fatal("torn append should error")
	}
	// The torn journal on disk: [good frame][5 bytes of the next].
	// Close via the raw file (the sink now errors), then reopen.
	j.f.Close()
	j.f = nil

	_, payloads, truncated := openTestJournal(t, path, SyncAlways)
	if len(payloads) != 1 || !bytes.Equal(payloads[0], good) {
		t.Fatalf("acked record lost: got %d records", len(payloads))
	}
	if truncated != 5 {
		t.Errorf("truncated %d bytes, want the 5 torn ones", truncated)
	}
}

// TestSnapshotAtomicRoundTrip: snapshots survive their own framing and
// a corrupt snapshot is rejected wholesale.
func TestSnapshotAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.json")
	if _, ok, err := readSnapshot(path); ok || err != nil {
		t.Fatalf("missing snapshot: ok=%v err=%v", ok, err)
	}
	payload := []byte(`{"user":"x"}`)
	if err := writeSnapshot(path, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := readSnapshot(path)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: ok=%v err=%v got=%q", ok, err, got)
	}
	// Overwrite keeps exactly one valid frame.
	payload2 := []byte(`{"user":"y","more":true}`)
	if err := writeSnapshot(path, payload2); err != nil {
		t.Fatal(err)
	}
	got, ok, _ = readSnapshot(path)
	if !ok || !bytes.Equal(got, payload2) {
		t.Fatalf("overwrite: got %q", got)
	}
	// Flip a payload bit: the whole snapshot is rejected.
	blob, _ := os.ReadFile(path)
	blob[frameHeader+3] ^= 1
	os.WriteFile(path, blob, 0o644)
	if _, ok, err := readSnapshot(path); ok || err == nil {
		t.Fatal("corrupt snapshot should be rejected with an error")
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("leftover files in snapshot dir: %v", entries)
	}
}
