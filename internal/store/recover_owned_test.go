package store

import (
	"os"
	"path/filepath"
	"testing"

	"powerplay/internal/library"
)

// TestRecoverOwned: a partition filter recovers exactly the owned
// accounts and leaves foreign journals byte-untouched — no tail
// truncation, no snapshot rewrite, no file claiming.
func TestRecoverOwned(t *testing.T) {
	dir := t.TempDir()
	reg := library.Standard()
	st := openStore(t, dir)
	for _, user := range []string{"alice", "bob", "carol"} {
		d := newTestDesign(t, reg, "d_"+user)
		if _, err := st.Append(user, Record{Kind: KindUserCreate}, putRecord(t, d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "users", "bob", "journal.log")
	before, err := os.ReadFile(foreign)
	if err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	owns := func(user string) bool { return user != "bob" }
	got, err := st2.RecoverOwned(library.Standard(), owns)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Accounts) != 2 || got.Accounts["bob"] != nil {
		t.Fatalf("recovered %d accounts (bob=%v), want alice+carol only",
			len(got.Accounts), got.Accounts["bob"])
	}
	for _, user := range []string{"alice", "carol"} {
		acct := got.Accounts[user]
		if acct == nil || acct.Designs["d_"+user] == nil {
			t.Fatalf("account %s not recovered: %+v", user, acct)
		}
	}
	if got.Stats.AccountsSkipped != 1 || got.Stats.Accounts != 2 {
		t.Errorf("stats: skipped=%d accounts=%d, want 1/2",
			got.Stats.AccountsSkipped, got.Stats.Accounts)
	}
	after, err := os.ReadFile(foreign)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("foreign journal changed during partitioned recovery")
	}

	// A later recovery with full ownership finds bob exactly as left.
	st3, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	full, err := st3.Recover(library.Standard())
	if err != nil {
		t.Fatal(err)
	}
	if full.Accounts["bob"] == nil || full.Accounts["bob"].Designs["d_bob"] == nil {
		t.Fatal("bob's account lost after partitioned recovery")
	}
}
