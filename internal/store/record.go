package store

import (
	"encoding/json"

	"powerplay/internal/core/sheet"
)

// Kind discriminates journal records.  The set is closed and
// append-only, like sheet.MutOp: journals outlive binaries.
type Kind string

// Record kinds.
const (
	// KindUserCreate marks first access by a user; it carries no
	// payload beyond the journal it lives in (which names the user).
	KindUserCreate Kind = "user_create"
	// KindDefaults merges per-model parameter defaults (Model, Values).
	KindDefaults Kind = "defaults"
	// KindDesignPut installs a full design serialization under Design:
	// creation, import, and the legacy-format migration all land here.
	KindDesignPut Kind = "design_put"
	// KindDesignDelete removes the named design.
	KindDesignDelete Kind = "design_delete"
	// KindMutate applies one sheet.Mutation to the named design.
	KindMutate Kind = "mutate"

	// Site-scope kinds (the "" user's journal).

	// KindModelPut registers one user-defined equation model (Blob is
	// the library.Equation JSON).
	KindModelPut Kind = "model_put"
	// KindMount records a remote library mount (Blob is a MountSpec);
	// recovery re-mounts best-effort.
	KindMount Kind = "mount"
	// KindRefresh records a re-sync of a mounted prefix (Blob is a
	// MountSpec); replay folds into the mount set.
	KindRefresh Kind = "refresh"
	// KindUnmount removes a mounted prefix (Blob is a MountSpec; only
	// Prefix matters); replay drops it from the mount set.
	KindUnmount Kind = "unmount"

	// Repository kinds (PR 10), all site scope: the mirrored slice of
	// the registry is site state, exactly like locally published models.

	// KindRepoModel installs one mirrored publication: Model is the
	// local registry name, Origin the publisher's base URL, Blob the
	// canonical content-addressed body (internal/repo's encoding, no
	// name inside).  Replay re-registers it without the publisher.
	KindRepoModel Kind = "repo_model"
	// KindRepoDrop removes a mirrored publication (Model is the local
	// name): the publisher unpublished it, or the subscription ended.
	KindRepoDrop Kind = "repo_drop"
	// KindRepoSubscribe records a subscription (Blob is a SubSpec);
	// recovery restarts its sync loop.
	KindRepoSubscribe Kind = "repo_subscribe"
	// KindRepoUnsubscribe ends a subscription (Blob is a SubSpec; only
	// Prefix matters).
	KindRepoUnsubscribe Kind = "repo_unsubscribe"
)

// Record is one journal entry: the envelope every mutating operation
// serializes into.  Fields are a union over the kinds; unused ones
// stay empty and cost nothing on the wire.
type Record struct {
	Kind Kind `json:"kind"`
	// Design names the design a design-scope record targets.
	Design string `json:"design,omitempty"`
	// Gen is the sequence number: the design generation after a
	// design-scope record applied, or the registry generation after a
	// site-scope one.  Replay skips design records at or below the
	// restored design's generation, which makes replay idempotent.
	Gen uint64 `json:"gen,omitempty"`
	// ID is the design's process identity (KindDesignPut), restored so
	// ETags survive the restart.
	ID uint64 `json:"id,omitempty"`
	// Mut is the tree edit (KindMutate).
	Mut *sheet.Mutation `json:"mut,omitempty"`
	// Blob carries a full serialization: design JSON (KindDesignPut),
	// equation-model JSON (KindModelPut), a MountSpec, a SubSpec, or a
	// canonical publication body (KindRepoModel).
	Blob json.RawMessage `json:"blob,omitempty"`
	// Model and Values carry a defaults merge (KindDefaults); Model is
	// also the local registry name on KindRepoModel/KindRepoDrop.
	Model  string             `json:"model,omitempty"`
	Values map[string]float64 `json:"values,omitempty"`
	// Origin is the publisher base URL a mirrored model came from
	// (KindRepoModel).
	Origin string `json:"origin,omitempty"`
}

// MountSpec identifies a mounted remote library.  The site key is
// deliberately not persisted; recovery re-mounts with the running
// configuration's credentials.
type MountSpec struct {
	URL    string `json:"url"`
	Prefix string `json:"prefix"`
}

// SubSpec identifies a repository subscription: mirror the catalog of
// URL's registry, registering each publication locally as
// Prefix+name.  Filter, when set, narrows the catalog to publisher
// names with that prefix (the registry's `?prefix=` parameter).  Like
// MountSpec, the site key is never persisted.
type SubSpec struct {
	URL    string `json:"url"`
	Prefix string `json:"prefix"`
	Filter string `json:"filter,omitempty"`
}

// UserSnapshot is one user's full state: what a snapshot file holds
// and what recovery starts a user from before replaying the journal
// suffix.
type UserSnapshot struct {
	User     string                        `json:"user"`
	Defaults map[string]map[string]float64 `json:"defaults,omitempty"`
	Designs  []DesignSnapshot              `json:"designs,omitempty"`
}

// DesignSnapshot pins one design serialization to the identity and
// generation it was taken at: the generations this snapshot covers,
// in the log-sequence-number sense.
type DesignSnapshot struct {
	ID     uint64          `json:"id"`
	Gen    uint64          `json:"gen"`
	Design json.RawMessage `json:"design"`
}

// SiteSnapshot is the site-scope state: user-defined equation models
// (a library.DumpEquations blob — mirrored publications are Equation
// models too, so they ride in the same blob), the mounted remote
// libraries, the repository subscriptions, and which models in the
// blob are mirrors (local name → publisher URL; their digests are
// recomputed from content at boot, never persisted).
type SiteSnapshot struct {
	Models        json.RawMessage   `json:"models,omitempty"`
	Mounts        []MountSpec       `json:"mounts,omitempty"`
	Subs          []SubSpec         `json:"subs,omitempty"`
	MirrorOrigins map[string]string `json:"mirror_origins,omitempty"`
}
