package store

import (
	"encoding/json"

	"powerplay/internal/core/sheet"
)

// Kind discriminates journal records.  The set is closed and
// append-only, like sheet.MutOp: journals outlive binaries.
type Kind string

// Record kinds.
const (
	// KindUserCreate marks first access by a user; it carries no
	// payload beyond the journal it lives in (which names the user).
	KindUserCreate Kind = "user_create"
	// KindDefaults merges per-model parameter defaults (Model, Values).
	KindDefaults Kind = "defaults"
	// KindDesignPut installs a full design serialization under Design:
	// creation, import, and the legacy-format migration all land here.
	KindDesignPut Kind = "design_put"
	// KindDesignDelete removes the named design.
	KindDesignDelete Kind = "design_delete"
	// KindMutate applies one sheet.Mutation to the named design.
	KindMutate Kind = "mutate"

	// Site-scope kinds (the "" user's journal).

	// KindModelPut registers one user-defined equation model (Blob is
	// the library.Equation JSON).
	KindModelPut Kind = "model_put"
	// KindMount records a remote library mount (Blob is a MountSpec);
	// recovery re-mounts best-effort.
	KindMount Kind = "mount"
	// KindRefresh records a re-sync of a mounted prefix (Blob is a
	// MountSpec); replay folds into the mount set.
	KindRefresh Kind = "refresh"
)

// Record is one journal entry: the envelope every mutating operation
// serializes into.  Fields are a union over the kinds; unused ones
// stay empty and cost nothing on the wire.
type Record struct {
	Kind Kind `json:"kind"`
	// Design names the design a design-scope record targets.
	Design string `json:"design,omitempty"`
	// Gen is the sequence number: the design generation after a
	// design-scope record applied, or the registry generation after a
	// site-scope one.  Replay skips design records at or below the
	// restored design's generation, which makes replay idempotent.
	Gen uint64 `json:"gen,omitempty"`
	// ID is the design's process identity (KindDesignPut), restored so
	// ETags survive the restart.
	ID uint64 `json:"id,omitempty"`
	// Mut is the tree edit (KindMutate).
	Mut *sheet.Mutation `json:"mut,omitempty"`
	// Blob carries a full serialization: design JSON (KindDesignPut),
	// equation-model JSON (KindModelPut), or a MountSpec.
	Blob json.RawMessage `json:"blob,omitempty"`
	// Model and Values carry a defaults merge (KindDefaults).
	Model  string             `json:"model,omitempty"`
	Values map[string]float64 `json:"values,omitempty"`
}

// MountSpec identifies a mounted remote library.  The site key is
// deliberately not persisted; recovery re-mounts with the running
// configuration's credentials.
type MountSpec struct {
	URL    string `json:"url"`
	Prefix string `json:"prefix"`
}

// UserSnapshot is one user's full state: what a snapshot file holds
// and what recovery starts a user from before replaying the journal
// suffix.
type UserSnapshot struct {
	User     string                        `json:"user"`
	Defaults map[string]map[string]float64 `json:"defaults,omitempty"`
	Designs  []DesignSnapshot              `json:"designs,omitempty"`
}

// DesignSnapshot pins one design serialization to the identity and
// generation it was taken at: the generations this snapshot covers,
// in the log-sequence-number sense.
type DesignSnapshot struct {
	ID     uint64          `json:"id"`
	Gen    uint64          `json:"gen"`
	Design json.RawMessage `json:"design"`
}

// SiteSnapshot is the site-scope state: user-defined equation models
// (a library.DumpEquations blob) and the mounted remote libraries.
type SiteSnapshot struct {
	Models json.RawMessage `json:"models,omitempty"`
	Mounts []MountSpec     `json:"mounts,omitempty"`
}
