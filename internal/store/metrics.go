package store

import "powerplay/internal/obs"

// The durability layer's instrument families (see internal/obs for
// conventions).  Appends and fsyncs sit on the mutation hot path;
// snapshots, replay and truncation are rare events whose *occurrence*
// is the signal.
var (
	appendSeconds = obs.NewHistogram("powerplay_store_append_seconds",
		"Journal append latency (framing + write + any inline fsync).",
		obs.DefBuckets)
	fsyncTotal = obs.NewCounter("powerplay_store_fsync_total",
		"Journal and snapshot fsync barriers issued.")
	snapshotSeconds = obs.NewHistogram("powerplay_store_snapshot_seconds",
		"Snapshot serialization + atomic-replace duration.",
		obs.DefBuckets)
	replayRecords = obs.NewCounter("powerplay_store_replay_records_total",
		"Journal records replayed during boot recovery.")
	truncationsTotal = obs.NewCounter("powerplay_store_truncations_total",
		"Torn or corrupt journal tails truncated during recovery.")
	journalLag = obs.NewGauge("powerplay_store_journal_lag_records",
		"Records appended but not yet covered by a snapshot.")
)
