package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"powerplay/internal/core/model"
	"powerplay/internal/core/sheet"
	"powerplay/internal/library"
)

// newTestDesign builds a small design the way the web layer does.
func newTestDesign(t *testing.T, reg *model.Registry, name string) *sheet.Design {
	t.Helper()
	d := sheet.NewDesign(name, reg)
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1MHz")
	return d
}

// putRecord serializes a design into the KindDesignPut record the web
// layer journals on creation/import.
func putRecord(t *testing.T, d *sheet.Design) Record {
	t.Helper()
	blob, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return Record{Kind: KindDesignPut, Design: d.Name, Gen: d.Generation(), ID: d.ID(), Blob: blob}
}

// mutate applies m to d and returns the journal record for it.
func mutate(t *testing.T, d *sheet.Design, m sheet.Mutation) Record {
	t.Helper()
	if err := d.ApplyMutation(m); err != nil {
		t.Fatal(err)
	}
	return Record{Kind: KindMutate, Design: d.Name, Gen: d.Generation(), Mut: &m}
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// sameDesign asserts byte-identical serialization plus matching
// generation and identity — the ETag triple the web layer validates
// caches with.
func sameDesign(t *testing.T, got, want *sheet.Design) {
	t.Helper()
	gb, _ := got.MarshalJSON()
	wb, _ := want.MarshalJSON()
	if !bytes.Equal(gb, wb) {
		t.Errorf("design bytes diverge:\n got %s\nwant %s", gb, wb)
	}
	if got.Generation() != want.Generation() {
		t.Errorf("generation %d, want %d", got.Generation(), want.Generation())
	}
	if got.ID() != want.ID() {
		t.Errorf("identity %d, want %d", got.ID(), want.ID())
	}
}

// TestRecoverEmptyStore: a store over a fresh directory boots to
// nothing, quietly.
func TestRecoverEmptyStore(t *testing.T) {
	st := openStore(t, t.TempDir())
	rec, err := st.Recover(library.Standard())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Accounts) != 0 || rec.Stats.RecordsReplayed != 0 || rec.Stats.SnapshotsLoaded != 0 {
		t.Fatalf("empty store recovered state: %+v", rec.Stats)
	}
}

// TestAppendReplayRoundTrip: journal-only boot (no snapshot ever
// taken) reconstructs designs, defaults, generations and identities.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := library.Standard()
	st := openStore(t, dir)

	d := newTestDesign(t, reg, "infopad")
	recs := []Record{
		{Kind: KindUserCreate},
		putRecord(t, d),
		mutate(t, d, sheet.Mutation{Op: sheet.MutAddRow, Name: "bank", Model: library.SRAM}),
		mutate(t, d, sheet.Mutation{Op: sheet.MutSetParam, Path: "bank", Name: "words", Expr: "2048"}),
		mutate(t, d, sheet.Mutation{Op: sheet.MutSetGlobal, Name: "vdd", Expr: "3.3"}),
		mutate(t, d, sheet.Mutation{Op: sheet.MutTouch}),
		{Kind: KindDefaults, Model: library.SRAM, Values: map[string]float64{"words": 2048}},
	}
	if _, err := st.Append("rabaey", recs...); err != nil {
		t.Fatal(err)
	}
	if got := st.Lag(); got != len(recs) {
		t.Errorf("lag %d, want %d", got, len(recs))
	}
	st.Close()

	st2 := openStore(t, dir)
	rec, err := st2.Recover(library.Standard())
	if err != nil {
		t.Fatal(err)
	}
	acct := rec.Accounts["rabaey"]
	if acct == nil {
		t.Fatal("account not recovered")
	}
	sameDesign(t, acct.Designs["infopad"], d)
	if acct.Defaults[library.SRAM]["words"] != 2048 {
		t.Errorf("defaults not recovered: %v", acct.Defaults)
	}
	if rec.Stats.RecordsReplayed != len(recs) || rec.Stats.ReplayErrors != 0 {
		t.Errorf("stats: %+v", rec.Stats)
	}
	// Recovery does not consume the journal: lag equals the replayed
	// suffix until a snapshot folds it.
	if st2.Lag() != len(recs) {
		t.Errorf("post-recovery lag %d, want %d", st2.Lag(), len(recs))
	}
}

// TestSnapshotOnlyBoot: after a snapshot the journal is empty; boot
// restores everything from the snapshot alone.
func TestSnapshotOnlyBoot(t *testing.T) {
	dir := t.TempDir()
	reg := library.Standard()
	st := openStore(t, dir)

	d := newTestDesign(t, reg, "lum")
	if _, err := st.Append("demo", Record{Kind: KindUserCreate}, putRecord(t, d)); err != nil {
		t.Fatal(err)
	}
	blob, _ := d.MarshalJSON()
	snap := &UserSnapshot{
		User:     "demo",
		Defaults: map[string]map[string]float64{"cells.sram": {"words": 512}},
		Designs:  []DesignSnapshot{{ID: d.ID(), Gen: d.Generation(), Design: blob}},
	}
	if err := st.SnapshotUser("demo", snap); err != nil {
		t.Fatal(err)
	}
	if st.Lag() != 0 {
		t.Errorf("lag after snapshot = %d, want 0", st.Lag())
	}
	st.Close()

	st2 := openStore(t, dir)
	rec, err := st2.Recover(library.Standard())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.SnapshotsLoaded != 1 || rec.Stats.RecordsReplayed != 0 {
		t.Errorf("snapshot-only boot stats: %+v", rec.Stats)
	}
	acct := rec.Accounts["demo"]
	if acct == nil {
		t.Fatal("account not recovered")
	}
	sameDesign(t, acct.Designs["lum"], d)
	if acct.Defaults["cells.sram"]["words"] != 512 {
		t.Errorf("snapshot defaults lost: %v", acct.Defaults)
	}
}

// TestDuplicateGenerationReplayIdempotence: a crash between snapshot
// and journal truncation leaves records the snapshot already covers;
// replaying them must be a no-op, counted as skips.
func TestDuplicateGenerationReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	reg := library.Standard()
	st := openStore(t, dir)

	d := newTestDesign(t, reg, "dup")
	put := putRecord(t, d)
	m1 := mutate(t, d, sheet.Mutation{Op: sheet.MutSetGlobal, Name: "vdd", Expr: "2.5"})
	m2 := mutate(t, d, sheet.Mutation{Op: sheet.MutAddRow, Name: "core", Model: library.ArrayMultiplier})
	if _, err := st.Append("u", Record{Kind: KindUserCreate}, put, m1, m2); err != nil {
		t.Fatal(err)
	}
	blob, _ := d.MarshalJSON()
	if err := st.SnapshotUser("u", &UserSnapshot{
		User:    "u",
		Designs: []DesignSnapshot{{ID: d.ID(), Gen: d.Generation(), Design: blob}},
	}); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: the snapshot landed but the journal
	// kept its (now-covered) records — re-append the same records.
	if _, err := st.Append("u", put, m1, m2); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openStore(t, dir)
	rec, err := st2.Recover(library.Standard())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.RecordsSkipped != 3 {
		t.Errorf("skipped %d duplicate records, want 3", rec.Stats.RecordsSkipped)
	}
	if rec.Stats.ReplayErrors != 0 {
		t.Errorf("replay errors: %+v", rec.Stats)
	}
	sameDesign(t, rec.Accounts["u"].Designs["dup"], d)
}

// TestTornTailStoreRecovery: bytes chopped off the journal mid-frame
// cost exactly the torn record; recovery reports the truncation and
// keeps everything acked before it.
func TestTornTailStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	reg := library.Standard()
	st := openStore(t, dir)
	d := newTestDesign(t, reg, "torn")
	if _, err := st.Append("u", putRecord(t, d),
		mutate(t, d, sheet.Mutation{Op: sheet.MutSetGlobal, Name: "vdd", Expr: "1.8"})); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Tear the last 7 bytes off the journal: mid-record, as a power
	// cut would.
	jp := filepath.Join(dir, "users", "u", "journal.log")
	blob, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jp, blob[:len(blob)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	rec, err := st2.Recover(library.Standard())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.TruncatedBytes == 0 {
		t.Error("truncation not reported")
	}
	got := rec.Accounts["u"].Designs["torn"]
	if got == nil {
		t.Fatal("design lost with its journal tail")
	}
	// The torn mutation is gone; the put survives.
	if src := got.Root.Global("vdd").Source(); src != "1.5" {
		t.Errorf("torn record leaked through: vdd = %q", src)
	}
}

// TestSiteScopeRecovery: user-defined equation models and mounts
// replay from the site journal; models register into the registry.
func TestSiteScopeRecovery(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	q := &library.Equation{Name: "user.gizmo", Csw: "1p", Class: "computation"}
	if err := q.Compile(); err != nil {
		t.Fatal(err)
	}
	qb, err := jsonMarshal(q)
	if err != nil {
		t.Fatal(err)
	}
	mount, err := jsonMarshal(MountSpec{URL: "http://ma.site", Prefix: "ma"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(siteScope,
		Record{Kind: KindModelPut, Model: q.Name, Blob: qb},
		Record{Kind: KindMount, Blob: mount},
	); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openStore(t, dir)
	reg := library.Standard()
	rec, err := st2.Recover(reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Lookup("user.gizmo"); !ok {
		t.Error("equation model not re-registered")
	}
	if len(rec.Mounts) != 1 || rec.Mounts[0].Prefix != "ma" {
		t.Errorf("mounts = %+v", rec.Mounts)
	}
}

// TestReplayBudget10k: the acceptance bar — recovering a 10k-record
// journal completes in under a second.
func TestReplayBudget10k(t *testing.T) {
	dir := t.TempDir()
	reg := library.Standard()
	st, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	d := newTestDesign(t, reg, "big")
	d.Root.MustAddChild("core", library.ArrayMultiplier)
	const n = 10_000
	recs := make([]Record, 0, n+1)
	recs = append(recs, putRecord(t, d))
	for i := 0; i < n; i++ {
		recs = append(recs, mutate(t, d, sheet.Mutation{
			Op: sheet.MutSetGlobal, Name: "vdd",
			Expr: fmt.Sprintf("%.3f", 1.0+float64(i%200)/100),
		}))
	}
	if _, err := st.Append("u", recs...); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openStore(t, dir)
	start := time.Now()
	rec, err := st2.Recover(library.Standard())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if rec.Stats.RecordsReplayed != n+1 {
		t.Fatalf("replayed %d records, want %d", rec.Stats.RecordsReplayed, n+1)
	}
	sameDesign(t, rec.Accounts["u"].Designs["big"], d)
	if elapsed > time.Second {
		t.Errorf("10k-record recovery took %v, budget 1s", elapsed)
	}
	t.Logf("10k-record recovery: %v (%.0f records/s)", elapsed, float64(n+1)/elapsed.Seconds())
}

// TestStoreFaultInjectedAppend: an append through a torn WriteSyncer
// errors out, and the next boot recovers every record acked before
// the fault with the torn frame truncated.
func TestStoreFaultInjectedAppend(t *testing.T) {
	dir := t.TempDir()
	reg := library.Standard()
	st := openStore(t, dir)
	d := newTestDesign(t, reg, "faulty")
	if _, err := st.Append("u", putRecord(t, d)); err != nil {
		t.Fatal(err)
	}
	if err := st.SetSink("u", func(ws WriteSyncer) WriteSyncer {
		return &faultSyncer{inner: ws, tearAfter: 3}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append("u",
		mutate(t, d, sheet.Mutation{Op: sheet.MutSetGlobal, Name: "vdd", Expr: "9"})); err == nil {
		t.Fatal("append through torn syncer should error")
	}

	st2 := openStore(t, dir)
	rec, err := st2.Recover(library.Standard())
	if err != nil {
		t.Fatal(err)
	}
	got := rec.Accounts["u"].Designs["faulty"]
	if got == nil {
		t.Fatal("acked design lost")
	}
	if src := got.Root.Global("vdd").Source(); src != "1.5" {
		t.Errorf("unacked record survived the tear: vdd = %q", src)
	}
	if rec.Stats.TruncatedBytes == 0 {
		t.Error("torn frame not reported as truncated")
	}
}

func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }
