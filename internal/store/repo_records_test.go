package store

import (
	"encoding/json"
	"testing"

	"powerplay/internal/library"
)

// TestRepoRecordReplay: the PR 10 site-scope kinds — mirrored
// publications, subscriptions, drops and unmounts — all replay from
// the journal without the publisher being reachable.
func TestRepoRecordReplay(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)

	// A canonical publication body: Equation JSON without the name.
	body := json.RawMessage(`{"class":"computation","csw":"2e-12","title":"mirrored gizmo"}`)
	sub, _ := json.Marshal(SubSpec{URL: "http://pub.site", Prefix: "lib.", Filter: "rf."})
	gone, _ := json.Marshal(SubSpec{Prefix: "dead."})
	mount, _ := json.Marshal(MountSpec{URL: "http://ma.site", Prefix: "ma"})
	unmount, _ := json.Marshal(MountSpec{Prefix: "ma"})
	if _, err := st.Append(siteScope,
		Record{Kind: KindRepoSubscribe, Blob: sub},
		Record{Kind: KindRepoSubscribe, Blob: gone},
		Record{Kind: KindRepoModel, Model: "lib.gizmo", Origin: "http://pub.site", Blob: body},
		Record{Kind: KindRepoModel, Model: "lib.doomed", Origin: "http://pub.site", Blob: body},
		Record{Kind: KindRepoDrop, Model: "lib.doomed"},
		Record{Kind: KindRepoUnsubscribe, Blob: gone},
		Record{Kind: KindMount, Blob: mount},
		Record{Kind: KindUnmount, Blob: unmount},
	); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openStore(t, dir)
	reg := library.Standard()
	rec, err := st2.Recover(reg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.ReplayErrors != 0 {
		t.Fatalf("replay errors: %+v", rec.Stats)
	}
	m, ok := reg.Lookup("lib.gizmo")
	if !ok {
		t.Fatal("mirrored model not re-registered")
	}
	if q, ok := m.(*library.Equation); !ok || q.Title != "mirrored gizmo" {
		t.Fatalf("recovered model = %#v", m)
	}
	if _, ok := reg.Lookup("lib.doomed"); ok {
		t.Error("dropped mirror still registered")
	}
	if rec.MirrorOrigins["lib.gizmo"] != "http://pub.site" {
		t.Errorf("origins = %v", rec.MirrorOrigins)
	}
	if _, ok := rec.MirrorOrigins["lib.doomed"]; ok {
		t.Error("dropped mirror kept its origin")
	}
	if len(rec.Subs) != 1 || rec.Subs[0].URL != "http://pub.site" ||
		rec.Subs[0].Prefix != "lib." || rec.Subs[0].Filter != "rf." {
		t.Errorf("subs = %+v", rec.Subs)
	}
	if len(rec.Mounts) != 0 {
		t.Errorf("unmounted prefix survived: %+v", rec.Mounts)
	}
}

// TestRepoSnapshotRoundTrip: subscriptions and mirror origins survive
// the snapshot path (the models themselves ride the DumpEquations
// blob like any other site model).
func TestRepoSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)

	reg := library.Standard()
	q := &library.Equation{Name: "lib.gizmo", Csw: "2e-12", Title: "mirrored gizmo"}
	if err := q.Compile(); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(q); err != nil {
		t.Fatal(err)
	}
	models, err := library.DumpEquations(reg)
	if err != nil {
		t.Fatal(err)
	}
	snap := SiteSnapshot{
		Models:        models,
		Subs:          []SubSpec{{URL: "http://pub.site", Prefix: "lib."}},
		MirrorOrigins: map[string]string{"lib.gizmo": "http://pub.site"},
	}
	if err := st.SnapshotSite(&snap); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openStore(t, dir)
	reg2 := library.Standard()
	rec, err := st2.Recover(reg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg2.Lookup("lib.gizmo"); !ok {
		t.Error("snapshot mirror not re-registered")
	}
	if rec.MirrorOrigins["lib.gizmo"] != "http://pub.site" {
		t.Errorf("origins = %v", rec.MirrorOrigins)
	}
	if len(rec.Subs) != 1 || rec.Subs[0].Prefix != "lib." {
		t.Errorf("subs = %+v", rec.Subs)
	}
}
