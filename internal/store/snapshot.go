package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// Snapshots are written atomically: frame the payload (the same
// length+CRC envelope journal records use), write to a temp file in
// the same directory, fsync, rename over the previous snapshot, and
// fsync the directory.  A crash at any point leaves either the old
// snapshot or the new one — never a half-written file the next boot
// would have to guess about.  The journal is truncated only after the
// rename lands, so a crash in the gap replays records the snapshot
// already covers; the generation check in replay makes that harmless.

// writeSnapshot atomically replaces the snapshot at path with payload.
func writeSnapshot(path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(appendFrame(nil, payload)); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// readSnapshot loads and validates the snapshot at path.  A missing
// file returns (nil, false, nil): boot-from-journal-only.  A corrupt
// file also returns ok=false — with the error for the log — because a
// snapshot that fails its CRC must be ignored, not trusted halfway.
func readSnapshot(path string) (payload []byte, ok bool, err error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	payloads, valid := scanFrames(blob)
	if len(payloads) != 1 || valid != int64(len(blob)) {
		return nil, false, fmt.Errorf("store: snapshot %s failed validation (%d intact frames, %d of %d bytes valid)",
			path, len(payloads), valid, len(blob))
	}
	return payloads[0], true, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable.  Some filesystems (network mounts, FUSE) refuse fsync on
// a directory handle with EINVAL or ENOTSUP; that refusal gets a
// best-effort pass — the rename itself already ordered against the
// temp file's data sync — while real I/O errors still surface.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	err = d.Sync()
	if err == nil || errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		return nil
	}
	return err
}
