package faultnet

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// upstream is a minimal JSON endpoint standing in for a PowerPlay site.
func upstream() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"answer": 42, "pad": "`+strings.Repeat("x", 200)+`"}`)
	})
}

func get(t *testing.T, url string) (*http.Response, error) {
	t.Helper()
	c := &http.Client{Timeout: 5 * time.Second}
	return c.Get(url)
}

func decode(t *testing.T, resp *http.Response) (map[string]any, error) {
	t.Helper()
	defer resp.Body.Close()
	var out map[string]any
	err := json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

func TestPassAndExhaustedScheduleDefaultsToPass(t *testing.T) {
	p := New(upstream(), Fault{Mode: Pass})
	defer p.Close()
	for i := 0; i < 3; i++ { // 1 scripted + 2 beyond the schedule
		resp, err := get(t, p.URL())
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		out, err := decode(t, resp)
		if err != nil || out["answer"] != 42.0 {
			t.Fatalf("request %d: out=%v err=%v", i, out, err)
		}
	}
	if p.Requests() != 3 {
		t.Errorf("requests = %d, want 3", p.Requests())
	}
	if p.Remaining() != 0 {
		t.Errorf("remaining = %d, want 0", p.Remaining())
	}
}

func TestStatusBurst(t *testing.T) {
	p := New(upstream(), Script(Burst(2, Fault{Mode: Status, Code: 500}), []Fault{{Mode: Pass}})...)
	defer p.Close()
	for i, want := range []int{500, 500, 200} {
		resp, err := get(t, p.URL())
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("request %d: status %d, want %d", i, resp.StatusCode, want)
		}
	}
}

func TestReset(t *testing.T) {
	p := New(upstream(), Fault{Mode: Reset})
	defer p.Close()
	if _, err := get(t, p.URL()); err == nil {
		t.Fatal("reset request should fail at the connection level")
	}
	// The proxy is intact afterwards.
	resp, err := get(t, p.URL())
	if err != nil {
		t.Fatalf("after reset: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("after reset: %d", resp.StatusCode)
	}
}

func TestTruncate(t *testing.T) {
	p := New(upstream(), Fault{Mode: Truncate, Bytes: 10})
	defer p.Close()
	resp, err := get(t, p.URL())
	if err != nil {
		t.Fatal(err)
	}
	_, err = decode(t, resp)
	if err == nil {
		t.Fatal("truncated body should fail to decode")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !strings.Contains(err.Error(), "EOF") {
		t.Errorf("want unexpected EOF, got %v", err)
	}
}

func TestGarbage(t *testing.T) {
	p := New(upstream(), Fault{Mode: Garbage})
	defer p.Close()
	resp, err := get(t, p.URL())
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("garbage should be 200, got %d", resp.StatusCode)
	}
	if _, err := decode(t, resp); err == nil {
		t.Fatal("garbage body should fail to decode")
	}
}

func TestSlowDripDeliversAndHonorsCancel(t *testing.T) {
	p := New(upstream(),
		Fault{Mode: SlowDrip, Drip: time.Millisecond, Chunk: 64},
		Fault{Mode: SlowDrip, Drip: 50 * time.Millisecond, Chunk: 1})
	defer p.Close()

	// Patient client: the full body arrives, just slowly.
	resp, err := get(t, p.URL())
	if err != nil {
		t.Fatal(err)
	}
	out, err := decode(t, resp)
	if err != nil || out["answer"] != 42.0 {
		t.Fatalf("slow drip should deliver: out=%v err=%v", out, err)
	}

	// Impatient client: cancellation releases the handler promptly
	// (Close would hang past the test deadline if it did not).
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, p.URL(), nil)
	resp, err = http.DefaultClient.Do(req)
	if err == nil {
		if _, err = io.ReadAll(resp.Body); err == nil {
			t.Fatal("canceled slow drip should not complete")
		}
		resp.Body.Close()
	}
}

func TestLatency(t *testing.T) {
	p := New(upstream(), Fault{Mode: Pass, Latency: 80 * time.Millisecond})
	defer p.Close()
	start := time.Now()
	resp, err := get(t, p.URL())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Errorf("latency not applied: %v", d)
	}
}

func TestSetDefaultKillsRemote(t *testing.T) {
	p := New(upstream(), Fault{Mode: Pass})
	defer p.Close()
	resp, err := get(t, p.URL())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	p.SetDefault(Fault{Mode: Reset})
	for i := 0; i < 2; i++ {
		if _, err := get(t, p.URL()); err == nil {
			t.Fatalf("request %d after death should fail", i)
		}
	}
}

func TestSeededIsDeterministic(t *testing.T) {
	choices := []Weighted{
		{Fault: Fault{Mode: Pass}, Weight: 3},
		{Fault: Fault{Mode: Status, Code: 503}, Weight: 1},
		{Fault: Fault{Mode: Reset}, Weight: 1},
	}
	a := Seeded(7, 50, choices...)
	b := Seeded(7, 50, choices...)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must yield the same schedule")
	}
	c := Seeded(8, 50, choices...)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should (overwhelmingly) differ")
	}
	modes := map[Mode]int{}
	for _, f := range a {
		modes[f.Mode]++
	}
	if modes[Pass] == 0 || modes[Pass] == 50 {
		t.Errorf("weighted draw looks degenerate: %v", modes)
	}
}
