// Package faultnet is a deterministic fault-injection harness for the
// remote model protocol of Figures 6-7.
//
// The paper's cross-site claim — "a library characterized and put on
// the web in Massachusetts can be used for estimates in California" —
// is only as strong as the consumer's behavior when the network
// between the two sites misbehaves.  This package provides the
// misbehaving network: a Proxy wraps a real upstream handler (usually
// a live PowerPlay site) behind an httptest server and applies one
// scripted Fault per incoming request, popped from a fixed schedule.
//
// Faults cover the failure modes the resilience layer must survive:
//
//   - added latency before any response;
//   - 5xx bursts (a crashing or overloaded publisher);
//   - connection resets (RST mid-handshake or mid-response);
//   - truncated JSON (the body cut off below its declared length);
//   - garbage JSON (a captive portal, a proxy error page);
//   - slow-drip bodies (a byte at a time, the classic stalled peer).
//
// Schedules are plain slices, so tests read as tables; Seeded builds a
// reproducible pseudo-random schedule from a seed for soak-style runs.
// Once the schedule is exhausted the proxy applies its default fault
// (Pass unless changed with SetDefault), so "remote dies after N good
// requests" is SetDefault(Fault{Mode: Reset}) with an N-Pass schedule.
//
// The proxy never sleeps past a canceled request context and counts
// every request it serves, which lets tests assert both retry fan-out
// and the *absence* of traffic once a circuit breaker opens or a sweep
// is canceled.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Mode selects a fault behavior.
type Mode int

// Fault modes.
const (
	// Pass proxies the request to the upstream untouched.
	Pass Mode = iota
	// Status short-circuits with an HTTP error status (Fault.Code).
	Status
	// Reset closes the client connection with no response (RST).
	Reset
	// Truncate serves the upstream response cut off after Fault.Bytes
	// bytes, below its declared Content-Length, so the client's JSON
	// decoder sees an unexpected EOF.
	Truncate
	// Garbage serves 200 OK with a body that is not JSON.
	Garbage
	// SlowDrip serves the upstream response one chunk per Fault.Drip
	// tick, flushing between chunks: a stalled-but-alive peer.
	SlowDrip
)

// String names the mode for logs and test failures.
func (m Mode) String() string {
	switch m {
	case Pass:
		return "pass"
	case Status:
		return "status"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Garbage:
		return "garbage"
	case SlowDrip:
		return "slowdrip"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Fault is one scripted behavior, applied to exactly one request.
type Fault struct {
	// Mode selects the behavior; the zero value is Pass.
	Mode Mode
	// Latency is slept before any other action (any mode), honoring
	// the request context so canceled clients are not held.
	Latency time.Duration
	// Code is the HTTP status for Status mode; zero means 503.
	Code int
	// Bytes is how much of the body Truncate emits; zero means half.
	Bytes int
	// Drip is SlowDrip's per-chunk delay; zero means 5 ms.
	Drip time.Duration
	// Chunk is SlowDrip's chunk size in bytes; zero means 1.
	Chunk int
}

// Proxy is the scripted fault injector in front of an upstream handler.
type Proxy struct {
	upstream http.Handler
	srv      *httptest.Server

	mu       sync.Mutex
	schedule []Fault
	pos      int
	def      Fault
	requests int
}

// New starts a Proxy over upstream with the given schedule.  Callers
// must Close it.
func New(upstream http.Handler, schedule ...Fault) *Proxy {
	p := &Proxy{upstream: upstream, schedule: schedule}
	p.srv = httptest.NewServer(p)
	return p
}

// URL is the proxy's base URL: what a Remote client should dial.
func (p *Proxy) URL() string { return p.srv.URL }

// Close shuts the proxy down, waiting for in-flight requests.
func (p *Proxy) Close() { p.srv.Close() }

// SetDefault sets the fault applied once the schedule is exhausted
// (Pass initially).  SetDefault(Fault{Mode: Reset}) "kills" the remote
// for every future request.
func (p *Proxy) SetDefault(f Fault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.def = f
}

// Extend appends faults to the remaining schedule.
func (p *Proxy) Extend(faults ...Fault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.schedule = append(p.schedule, faults...)
}

// Requests returns how many requests the proxy has begun serving.
func (p *Proxy) Requests() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.requests
}

// Remaining returns how many scripted faults have not yet fired.
func (p *Proxy) Remaining() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.schedule) - p.pos
}

// next pops the request's fault and counts the request.
func (p *Proxy) next() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requests++
	if p.pos < len(p.schedule) {
		f := p.schedule[p.pos]
		p.pos++
		return f
	}
	return p.def
}

// ServeHTTP applies the next scheduled fault to the request.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f := p.next()
	if f.Latency > 0 && !sleep(r, f.Latency) {
		return // client gone; nothing to respond to
	}
	switch f.Mode {
	case Status:
		code := f.Code
		if code == 0 {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, "faultnet: injected fault", code)
	case Reset:
		reset(w)
	case Truncate:
		p.truncate(w, r, f)
	case Garbage:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `<<<faultnet: this is not JSON>>>`)
	case SlowDrip:
		p.slowDrip(w, r, f)
	default:
		p.upstream.ServeHTTP(w, r)
	}
}

// sleep waits d honoring the request context; it reports whether the
// client is still there.
func sleep(r *http.Request, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.Context().Done():
		return false
	}
}

// reset hijacks the connection and closes it with linger 0, which
// sends a TCP RST: the client observes a connection-level error with
// no HTTP response at all.
func reset(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic(http.ErrAbortHandler)
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetLinger(0)
	}
	conn.Close()
}

// record runs the upstream into a recorder so a fault can rewrite the
// response body on the way out.
func (p *Proxy) record(r *http.Request) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	p.upstream.ServeHTTP(rec, r)
	return rec
}

// truncate declares the full Content-Length but writes only a prefix;
// the server closes the connection on handler return, so the client's
// decoder hits io.ErrUnexpectedEOF.
func (p *Proxy) truncate(w http.ResponseWriter, r *http.Request, f Fault) {
	rec := p.record(r)
	body := rec.Body.Bytes()
	n := f.Bytes
	if n <= 0 || n > len(body) {
		n = len(body) / 2
	}
	copyHeader(w, rec)
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(rec.Code)
	w.Write(body[:n])
}

// slowDrip serves the real response a chunk at a time, flushing after
// each, until the body is done or the client gives up.
func (p *Proxy) slowDrip(w http.ResponseWriter, r *http.Request, f Fault) {
	rec := p.record(r)
	body := rec.Body.Bytes()
	drip := f.Drip
	if drip <= 0 {
		drip = 5 * time.Millisecond
	}
	chunk := f.Chunk
	if chunk <= 0 {
		chunk = 1
	}
	copyHeader(w, rec)
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(rec.Code)
	flusher, _ := w.(http.Flusher)
	for off := 0; off < len(body); off += chunk {
		if !sleep(r, drip) {
			return
		}
		end := off + chunk
		if end > len(body) {
			end = len(body)
		}
		if _, err := w.Write(body[off:end]); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func copyHeader(w http.ResponseWriter, rec *httptest.ResponseRecorder) {
	for k, vs := range rec.Header() {
		if k == "Content-Length" {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
}

// Burst returns n copies of f: Burst(3, Fault{Mode: Status}) is a
// three-request 5xx burst.
func Burst(n int, f Fault) []Fault {
	out := make([]Fault, n)
	for i := range out {
		out[i] = f
	}
	return out
}

// Script concatenates fault groups into one schedule, so tests compose
// bursts and single faults declaratively.
func Script(groups ...[]Fault) []Fault {
	var out []Fault
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// Weighted is one choice of a Seeded schedule.
type Weighted struct {
	// Fault is the scripted behavior.
	Fault Fault
	// Weight is its relative draw probability (non-positive = 1).
	Weight int
}

// Seeded returns a deterministic n-fault schedule drawn from the
// weighted choices with a fixed math/rand seed: the same seed always
// yields the same schedule, so soak tests are reproducible.
func Seeded(seed int64, n int, choices ...Weighted) []Fault {
	if len(choices) == 0 {
		return make([]Fault, n) // all Pass
	}
	total := 0
	for i := range choices {
		if choices[i].Weight <= 0 {
			choices[i].Weight = 1
		}
		total += choices[i].Weight
	}
	rnd := rand.New(rand.NewSource(seed))
	out := make([]Fault, n)
	for i := range out {
		k := rnd.Intn(total)
		for _, c := range choices {
			if k < c.Weight {
				out[i] = c.Fault
				break
			}
			k -= c.Weight
		}
	}
	return out
}
