package cachesim

import "fmt"

// Hierarchy chains cache levels the way Dinero does: an access probes
// L1; on a miss the fill propagates to L2 (and onward), and write-back
// victims are written into the next level.  Each level keeps its own
// Stats, so the refined processor model can price L1 hits, L2 hits and
// memory fills separately.
type Hierarchy struct {
	levels []*Cache
}

// NewHierarchy builds a hierarchy from outermost-first configs
// (L1 first).  At least one level is required.
func NewHierarchy(cfgs ...Config) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cachesim: hierarchy needs at least one level")
	}
	h := &Hierarchy{}
	for i, cfg := range cfgs {
		c, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("cachesim: level %d: %w", i+1, err)
		}
		h.levels = append(h.levels, c)
	}
	return h, nil
}

// Levels returns the number of cache levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// Stats returns the counters of level (1-based).
func (h *Hierarchy) Stats(level int) Stats {
	return h.levels[level-1].Stats()
}

// Access performs one access.  It returns the level that hit
// (1-based), or Levels()+1 when the request went all the way to
// memory.
func (h *Hierarchy) Access(addr uint64, write bool) int {
	for i, c := range h.levels {
		before := c.Stats().Writebacks
		hit := c.Access(addr, write)
		// A dirty eviction at this level becomes a write at the next.
		if wb := c.Stats().Writebacks - before; wb > 0 && i+1 < len(h.levels) {
			// The victim's address is not tracked per line here; model
			// the writeback as a write of the same set-sized region.
			// One write per writeback preserves the traffic counts.
			for n := uint64(0); n < wb; n++ {
				h.levels[i+1].Access(addr, true)
			}
		}
		if hit {
			return i + 1
		}
	}
	return len(h.levels) + 1
}

// Reset clears every level.
func (h *Hierarchy) Reset() {
	for _, c := range h.levels {
		c.Reset()
	}
}

// MemoryAccesses returns the number of requests that missed every
// level: the last level's misses.
func (h *Hierarchy) MemoryAccesses() uint64 {
	return h.levels[len(h.levels)-1].Stats().Misses()
}
