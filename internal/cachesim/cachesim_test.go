package cachesim

import (
	"testing"
	"testing/quick"
)

func mk(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func directMapped(t *testing.T) *Cache {
	return mk(t, Config{Size: 256, BlockSize: 16, Assoc: 1, WriteBack: true, WriteAllocate: true})
}

func TestConfigValidate(t *testing.T) {
	good := Config{Size: 8192, BlockSize: 32, Assoc: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("good config: %v", err)
	}
	bad := []Config{
		{Size: 0, BlockSize: 16, Assoc: 1},
		{Size: 256, BlockSize: 0, Assoc: 1},
		{Size: 256, BlockSize: 24, Assoc: 1},  // non power of two block
		{Size: 250, BlockSize: 16, Assoc: 1},  // size not multiple
		{Size: 256, BlockSize: 16, Assoc: 0},  // bad assoc
		{Size: 256, BlockSize: 16, Assoc: 32}, // assoc > lines
		{Size: 256, BlockSize: 16, Assoc: 5},  // lines not divisible
		{Size: 768, BlockSize: 16, Assoc: 16}, // sets=3 not pow2
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad[%d] should fail: %+v", i, cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New(bad[%d]) should fail", i)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := directMapped(t)
	if c.Access(0x40, false) {
		t.Error("cold access should miss")
	}
	if !c.Access(0x40, false) {
		t.Error("second access should hit")
	}
	if !c.Access(0x4F, false) {
		t.Error("same block should hit")
	}
	if c.Access(0x50, false) {
		t.Error("next block should miss")
	}
	s := c.Stats()
	if s.Reads != 4 || s.ReadMisses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := directMapped(t) // 16 sets of 16B
	// 0x000 and 0x100 map to the same set (256B apart).
	c.Access(0x000, false)
	c.Access(0x100, false)
	if c.Access(0x000, false) {
		t.Error("conflicting block should have evicted 0x000")
	}
	if c.Stats().Evictions == 0 {
		t.Error("eviction should be counted")
	}
}

func TestAssociativityRemovesConflict(t *testing.T) {
	c := mk(t, Config{Size: 256, BlockSize: 16, Assoc: 2, WriteBack: true, WriteAllocate: true})
	c.Access(0x000, false)
	c.Access(0x080, false) // same set in an 8-set 2-way cache
	if !c.Access(0x000, false) {
		t.Error("2-way cache should hold both blocks")
	}
}

func TestLRUvsFIFO(t *testing.T) {
	// Access pattern distinguishing the policies: fill ways A,B; touch A;
	// insert C.  LRU evicts B, FIFO evicts A.
	base := Config{Size: 64, BlockSize: 16, Assoc: 2, WriteBack: true, WriteAllocate: true}
	// Two sets of 16 B blocks: set = block & 1, so blocks 0x00, 0x40 and
	// 0x80 all land in set 0.
	lru := mk(t, base)
	lru.Access(0x00, false) // A
	lru.Access(0x40, false) // B
	lru.Access(0x00, false) // touch A
	lru.Access(0x80, false) // C evicts B under LRU
	if !lru.Access(0x00, false) {
		t.Error("LRU should have kept A")
	}
	fifoCfg := base
	fifoCfg.Policy = FIFO
	fifo := mk(t, fifoCfg)
	fifo.Access(0x00, false)
	fifo.Access(0x40, false)
	fifo.Access(0x00, false)
	fifo.Access(0x80, false) // C evicts A under FIFO
	if !fifo.Access(0x40, false) {
		t.Error("FIFO should have kept B")
	}
	if fifo.Access(0x00, false) {
		t.Error("FIFO should have evicted A despite the touch")
	}
}

func TestWriteBackGeneratesWritebacks(t *testing.T) {
	c := directMapped(t)
	c.Access(0x000, true)  // dirty fill
	c.Access(0x100, false) // evicts dirty line
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.Writebacks)
	}
	if s.MemWrites != 0 {
		t.Errorf("write-back cache should have no write-through traffic, got %d", s.MemWrites)
	}
}

func TestWriteThroughTraffic(t *testing.T) {
	c := mk(t, Config{Size: 256, BlockSize: 16, Assoc: 1, WriteBack: false, WriteAllocate: true})
	c.Access(0x00, true) // miss, fill, write through
	c.Access(0x00, true) // hit, write through
	s := c.Stats()
	if s.MemWrites != 2 {
		t.Errorf("memWrites = %d, want 2", s.MemWrites)
	}
	if s.Writebacks != 0 {
		t.Error("write-through cache should never write back")
	}
}

func TestNoWriteAllocate(t *testing.T) {
	c := mk(t, Config{Size: 256, BlockSize: 16, Assoc: 1, WriteBack: false, WriteAllocate: false})
	c.Access(0x00, true) // write miss, no fill
	if c.Access(0x00, false) {
		t.Error("no-write-allocate should not have filled the line")
	}
	s := c.Stats()
	if s.WriteMisses != 1 || s.MemWrites != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFullyAssociative(t *testing.T) {
	c := mk(t, Config{Size: 64, BlockSize: 16, Assoc: 4, WriteBack: true, WriteAllocate: true})
	for i := uint64(0); i < 4; i++ {
		c.Access(i*16, false)
	}
	for i := uint64(0); i < 4; i++ {
		if !c.Access(i*16, false) {
			t.Errorf("block %d should still be resident", i)
		}
	}
	c.Access(4*16, false) // evicts LRU block 0
	if c.Access(0, false) {
		t.Error("block 0 should have been evicted")
	}
}

func TestReset(t *testing.T) {
	c := directMapped(t)
	c.Access(0x00, true)
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Error("Reset should clear stats")
	}
	if c.Access(0x00, false) {
		t.Error("Reset should clear contents")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Reads: 80, Writes: 20, ReadMisses: 8, WriteMisses: 2, Writebacks: 3, MemWrites: 5}
	if s.Accesses() != 100 || s.Misses() != 10 {
		t.Error("accessor math")
	}
	if s.MissRate() != 0.1 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty trace miss rate should be 0")
	}
	if s.MemoryTraffic() != 18 {
		t.Errorf("MemoryTraffic = %v", s.MemoryTraffic())
	}
}

// Property: miss count never exceeds access count, and a larger cache
// never has more misses on the same sequential trace.
func TestQuickInvariants(t *testing.T) {
	f := func(addrSeed []uint16) bool {
		small := mustNew(Config{Size: 128, BlockSize: 16, Assoc: 2, WriteBack: true, WriteAllocate: true})
		big := mustNew(Config{Size: 1024, BlockSize: 16, Assoc: 2, WriteBack: true, WriteAllocate: true})
		for i, a := range addrSeed {
			addr := uint64(a)
			write := i%3 == 0
			small.Access(addr, write)
			big.Access(addr, write)
		}
		ss, bs := small.Stats(), big.Stats()
		if ss.Misses() > ss.Accesses() || bs.Misses() > bs.Accesses() {
			return false
		}
		// LRU caches with same block size & assoc are "stack" algorithms:
		// inclusion holds, so the bigger cache cannot miss more.
		return bs.Misses() <= ss.Misses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: repeating a trace twice with a cache big enough to hold the
// working set yields zero misses in the second pass.
func TestQuickSecondPassHits(t *testing.T) {
	f := func(blocks [8]uint8) bool {
		c := mustNew(Config{Size: 1 << 14, BlockSize: 16, Assoc: 4, WriteBack: true, WriteAllocate: true})
		for _, b := range blocks {
			c.Access(uint64(b)*16, false)
		}
		before := c.Stats().Misses()
		for _, b := range blocks {
			c.Access(uint64(b)*16, false)
		}
		return c.Stats().Misses() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func mustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" {
		t.Error("String")
	}
	if Replacement(9).String() == "" {
		t.Error("unknown policy should still format")
	}
}
