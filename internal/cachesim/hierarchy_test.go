package cachesim

import (
	"testing"
)

func twoLevel(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(
		Config{Size: 256, BlockSize: 16, Assoc: 1, WriteBack: true, WriteAllocate: true},
		Config{Size: 4096, BlockSize: 16, Assoc: 4, WriteBack: true, WriteAllocate: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyBasics(t *testing.T) {
	h := twoLevel(t)
	if h.Levels() != 2 {
		t.Fatalf("levels = %d", h.Levels())
	}
	// Cold access misses everywhere → level 3 (memory).
	if lvl := h.Access(0x100, false); lvl != 3 {
		t.Errorf("cold access hit level %d", lvl)
	}
	// Immediately again: L1 hit.
	if lvl := h.Access(0x100, false); lvl != 1 {
		t.Errorf("second access hit level %d", lvl)
	}
	// Conflict-evict from L1 (direct-mapped 256B: +0x100 aliases), then
	// come back: L1 misses, L2 still holds it.
	h.Access(0x200, false)
	if lvl := h.Access(0x100, false); lvl != 2 {
		t.Errorf("L2 should have caught the victim: level %d", lvl)
	}
	// Stats are per level.
	if h.Stats(1).Accesses() != 4 {
		t.Errorf("L1 accesses = %d", h.Stats(1).Accesses())
	}
	if h.Stats(2).Accesses() >= h.Stats(1).Accesses() {
		t.Error("L2 should see only L1 misses")
	}
}

func TestHierarchyWritebackPropagates(t *testing.T) {
	h := twoLevel(t)
	h.Access(0x000, true)  // dirty in L1
	h.Access(0x100, false) // evicts dirty line (same L1 set)
	if h.Stats(1).Writebacks != 1 {
		t.Fatalf("L1 writebacks = %d", h.Stats(1).Writebacks)
	}
	// The writeback became an L2 write.
	if h.Stats(2).Writes == 0 {
		t.Error("L2 should absorb the L1 writeback")
	}
}

func TestHierarchyMemoryAccesses(t *testing.T) {
	h := twoLevel(t)
	for i := uint64(0); i < 64; i++ {
		h.Access(i*16, false) // all cold
	}
	if got := h.MemoryAccesses(); got != 64 {
		t.Errorf("memory accesses = %d, want 64", got)
	}
	// Second pass: everything fits in the 4KB L2.
	for i := uint64(0); i < 64; i++ {
		h.Access(i*16, false)
	}
	if got := h.MemoryAccesses(); got != 64 {
		t.Errorf("second pass should add no memory accesses, got %d", got)
	}
	h.Reset()
	if h.MemoryAccesses() != 0 || h.Stats(1).Accesses() != 0 {
		t.Error("Reset should clear all levels")
	}
}

func TestHierarchyErrors(t *testing.T) {
	if _, err := NewHierarchy(); err == nil {
		t.Error("empty hierarchy should fail")
	}
	if _, err := NewHierarchy(Config{Size: 3}); err == nil {
		t.Error("bad level config should fail")
	}
}

func TestHierarchyFiltersLocality(t *testing.T) {
	// A looping working set larger than L1 but inside L2: L1 thrashes,
	// L2 absorbs nearly everything after warmup.
	h := twoLevel(t)
	for pass := 0; pass < 10; pass++ {
		for i := uint64(0); i < 64; i++ { // 1 KB working set
			h.Access(i*16, false)
		}
	}
	l1 := h.Stats(1)
	if l1.MissRate() < 0.5 {
		t.Errorf("L1 should thrash: missrate %v", l1.MissRate())
	}
	if mem := h.MemoryAccesses(); mem != 64 {
		t.Errorf("after warmup everything should hit L2: %d memory accesses", mem)
	}
}
