// Package cachesim is a Dinero-style trace-driven cache simulator.
//
// The paper's "Programmable Processors" section notes that instruction-
// level energy models underestimate power because cache and branch
// misses are neglected, and points at profilers (SPIX, Pixie) and cache
// simulators (Dinero) as the refinement path.  This package is that
// substrate: a set-associative cache with LRU/FIFO replacement and
// write-back/write-through policies, driven by the address trace the
// proc package's VM emits, producing the miss counts that the refined
// processor energy model prices.
package cachesim

import (
	"fmt"
)

// Replacement selects the victim line within a set.
type Replacement int

// Replacement policies.
const (
	// LRU evicts the least recently used line.
	LRU Replacement = iota
	// FIFO evicts the oldest-filled line.
	FIFO
)

func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	}
	return fmt.Sprintf("Replacement(%d)", int(r))
}

// Config describes a cache organization.
type Config struct {
	// Size is the total capacity in bytes.
	Size int
	// BlockSize is the line size in bytes.
	BlockSize int
	// Assoc is the set associativity; Size/BlockSize for fully
	// associative.
	Assoc int
	// Policy is the replacement policy.
	Policy Replacement
	// WriteBack holds dirty lines until eviction; false means
	// write-through (every write also goes to memory).
	WriteBack bool
	// WriteAllocate fills the line on a write miss; false sends the
	// write around the cache.
	WriteAllocate bool
}

// Validate checks the organization for consistency.
func (c Config) Validate() error {
	switch {
	case c.Size <= 0:
		return fmt.Errorf("cachesim: size %d must be positive", c.Size)
	case c.BlockSize <= 0:
		return fmt.Errorf("cachesim: block size %d must be positive", c.BlockSize)
	case c.BlockSize&(c.BlockSize-1) != 0:
		return fmt.Errorf("cachesim: block size %d must be a power of two", c.BlockSize)
	case c.Size%c.BlockSize != 0:
		return fmt.Errorf("cachesim: size %d not a multiple of block size %d", c.Size, c.BlockSize)
	case c.Assoc <= 0:
		return fmt.Errorf("cachesim: associativity %d must be positive", c.Assoc)
	}
	lines := c.Size / c.BlockSize
	if c.Assoc > lines {
		return fmt.Errorf("cachesim: associativity %d exceeds %d lines", c.Assoc, lines)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cachesim: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cachesim: set count %d must be a power of two", sets)
	}
	return nil
}

// Stats accumulates access outcomes.
type Stats struct {
	// Reads and Writes count accesses by kind.
	Reads, Writes uint64
	// ReadMisses and WriteMisses count misses by kind.
	ReadMisses, WriteMisses uint64
	// Writebacks counts dirty evictions (write-back caches only).
	Writebacks uint64
	// MemWrites counts words sent to memory by write-through traffic.
	MemWrites uint64
	// Evictions counts replaced valid lines.
	Evictions uint64
}

// Accesses returns total accesses.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Misses returns total misses.
func (s Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// MissRate returns misses per access, or 0 for an empty trace.
func (s Stats) MissRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Accesses())
}

// MemoryTraffic returns the number of block transfers to/from the next
// level: fills plus writebacks plus write-through words scaled to
// blocks is deliberately NOT done — traffic is reported in events.
func (s Stats) MemoryTraffic() uint64 {
	return s.Misses() + s.Writebacks + s.MemWrites
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64 // LRU stamp
	filled  uint64 // FIFO stamp
}

// Cache is one level of set-associative cache.
type Cache struct {
	cfg        Config
	sets       [][]line
	setMask    uint64
	blockShift uint
	clock      uint64
	stats      Stats
}

// New builds a cache from a validated configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.Size / cfg.BlockSize
	nsets := lines / cfg.Assoc
	sets := make([][]line, nsets)
	backing := make([]line, lines)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	shift := uint(0)
	for 1<<shift < cfg.BlockSize {
		shift++
	}
	return &Cache{
		cfg:        cfg,
		sets:       sets,
		setMask:    uint64(nsets - 1),
		blockShift: shift,
	}, nil
}

// Config returns the cache's organization.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
}

// Access performs one read (write=false) or write (write=true) of the
// byte address addr and reports whether it hit.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.clock++
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	blk := addr >> c.blockShift
	set := c.sets[blk&c.setMask]
	tag := blk >> popcount(c.setMask)

	// Hit?
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.clock
			if write {
				if c.cfg.WriteBack {
					set[i].dirty = true
				} else {
					c.stats.MemWrites++
				}
			}
			return true
		}
	}

	// Miss.
	if write {
		c.stats.WriteMisses++
		if !c.cfg.WriteAllocate {
			c.stats.MemWrites++
			return false
		}
	} else {
		c.stats.ReadMisses++
	}

	victim := c.pickVictim(set)
	if set[victim].valid {
		c.stats.Evictions++
		if set[victim].dirty {
			c.stats.Writebacks++
		}
	}
	set[victim] = line{
		tag: tag, valid: true,
		lastUse: c.clock, filled: c.clock,
	}
	if write {
		if c.cfg.WriteBack {
			set[victim].dirty = true
		} else {
			c.stats.MemWrites++
		}
	}
	return false
}

func (c *Cache) pickVictim(set []line) int {
	// Prefer an invalid way.
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	best := 0
	for i := 1; i < len(set); i++ {
		switch c.cfg.Policy {
		case FIFO:
			if set[i].filled < set[best].filled {
				best = i
			}
		default: // LRU
			if set[i].lastUse < set[best].lastUse {
				best = i
			}
		}
	}
	return best
}

func popcount(x uint64) uint {
	var n uint
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
