package vqsim

import (
	"powerplay/internal/core/model"
	"powerplay/internal/core/sheet"
	"powerplay/internal/library"
)

// The Figure 2 and Figure 3 design sheets, built programmatically the
// way a user builds them through the browser: pick cells from the
// library, customize parameters, save rows to the sheet.  Supply
// voltage and pixel frequency are top-level variables so the whole
// design re-prices when they change — the rows the paper shows as
// "Supply V" and "Operating Frequency".

// Luminance1 builds the Figure 1 architecture's sheet ("Luminance_1"):
// a 4096×6 LUT accessed at the full pixel rate.
func Luminance1(reg *model.Registry) (*sheet.Design, error) {
	d := sheet.NewDesign("Luminance_1", reg)
	d.Doc = "VQ luminance decompression, Figure 1 architecture (one pixel per LUT access)"
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 2e6, "2MHz")
	rows := []struct {
		name, model string
		params      map[string]string
	}{
		{"read_bank", library.SRAM, map[string]string{
			"words": "2048", "bits": "8", "f": "f/16"}},
		{"write_bank", library.SRAM, map[string]string{
			"words": "2048", "bits": "8", "f": "f/32"}},
		{"look_up_table", library.SRAM, map[string]string{
			"words": "4096", "bits": "6", "f": "f"}},
		{"output_register", library.Register, map[string]string{
			"words": "1", "bits": "6", "f": "f"}},
		{"output_buffer", library.PadBuffer, map[string]string{
			"bits": "6", "f": "f"}},
	}
	if err := addRows(d, rows); err != nil {
		return nil, err
	}
	return d, nil
}

// Luminance2 builds the Figure 3 architecture's sheet: the LUT is
// reorganized 1024×24 so each access yields four pixels, and only one
// multiplexor and register switch at the full 2 MHz.
func Luminance2(reg *model.Registry) (*sheet.Design, error) {
	d := sheet.NewDesign("Luminance_2", reg)
	d.Doc = "VQ luminance decompression, Figure 3 architecture (four pixels per LUT access)"
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 2e6, "2MHz")
	rows := []struct {
		name, model string
		params      map[string]string
	}{
		{"read_bank", library.SRAM, map[string]string{
			"words": "2048", "bits": "8", "f": "f/16"}},
		{"write_bank", library.SRAM, map[string]string{
			"words": "2048", "bits": "8", "f": "f/32"}},
		{"look_up_table", library.SRAM, map[string]string{
			"words": "1024", "bits": "24", "f": "f/4"}},
		{"word_latch", library.Register, map[string]string{
			"words": "1", "bits": "24", "f": "f/4"}},
		{"output_mux", library.Mux, map[string]string{
			"bits": "6", "inputs": "4", "f": "f"}},
		{"output_register", library.Register, map[string]string{
			"words": "1", "bits": "6", "f": "f"}},
		{"output_buffer", library.PadBuffer, map[string]string{
			"bits": "6", "f": "f"}},
	}
	if err := addRows(d, rows); err != nil {
		return nil, err
	}
	return d, nil
}

func addRows(d *sheet.Design, rows []struct {
	name, model string
	params      map[string]string
}) error {
	for _, row := range rows {
		n, err := d.Root.AddChild(row.name, row.model)
		if err != nil {
			return err
		}
		// Bind in a stable order for reproducible sheets.
		for _, key := range []string{"words", "bits", "inputs", "f"} {
			if src, ok := row.params[key]; ok {
				if err := n.SetParam(key, src); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
