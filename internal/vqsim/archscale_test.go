package vqsim

import (
	"context"
	"math"
	"testing"

	"powerplay/internal/library"
)

func TestMACDesignStructure(t *testing.T) {
	reg := library.Standard()
	d, err := MACDesign(reg, 4, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if r.Find("lane3/mult") == nil || r.Find("distribute") == nil {
		t.Error("rows missing")
	}
	// Per-lane frequency is fs/4.
	if got := r.Find("lane0/mult").Params["f"]; math.Abs(got-5e6) > 1 {
		t.Errorf("lane clock = %v", got)
	}
	// Mux runs at the full sample rate.
	if got := r.Find("distribute").Params["f"]; math.Abs(got-20e6) > 1 {
		t.Errorf("mux clock = %v", got)
	}
	// Single lane has no distribution mux.
	d1, err := MACDesign(reg, 1, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := d1.Evaluate()
	if r1.Find("distribute") != nil {
		t.Error("single lane should not pay for a mux")
	}
	if _, err := MACDesign(reg, 0, 1e6); err == nil {
		t.Error("zero lanes should fail")
	}
}

func TestArchScaleShape(t *testing.T) {
	// The Chandrakasan result: at fixed throughput, parallelism buys
	// voltage reduction, and power drops despite the extra hardware —
	// with diminishing returns as VDD approaches threshold.
	reg := library.Standard()
	pts, err := ArchScale(context.Background(), reg, 20e6, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MinVDD >= pts[i-1].MinVDD {
			t.Errorf("more lanes should allow a lower supply: %+v", pts)
		}
		if pts[i].Area <= pts[i-1].Area {
			t.Errorf("more lanes should cost area: %+v", pts)
		}
	}
	// Two lanes must beat one on power.
	if pts[1].Power >= pts[0].Power {
		t.Errorf("parallelism should save power: x1=%v x2=%v", pts[0].Power, pts[1].Power)
	}
	// The returns diminish: the relative gain from 4→8 is smaller than
	// from 1→2.
	gain12 := pts[0].Power / pts[1].Power
	gain48 := pts[2].Power / pts[3].Power
	if gain48 >= gain12 {
		t.Errorf("returns should diminish: 1→2 %.2fx, 4→8 %.2fx", gain12, gain48)
	}
}

func TestArchScaleUnreachable(t *testing.T) {
	reg := library.Standard()
	// 10 GHz per lane is beyond the library even at 3.3 V.
	if _, err := ArchScale(context.Background(), reg, 10e9, []int{1}); err == nil {
		t.Error("unreachable throughput should fail")
	}
}
