// Package vqsim is the functional substrate for the paper's design
// example: the luminance sub-component of a real-time vector-
// quantization video decompression chip (Figures 1–3).
//
// The decoder expands an 8-bit code into 16 6-bit luminance pixels via
// a look-up table.  Incoming frames are double-buffered with a
// ping-pong memory pair; the screen refreshes at 60 frames/s while
// video arrives at 30 frames/s, so every buffered frame is read twice
// for each time it is written.  With a 256×128 screen this pins the
// pixel rate f at 2 MHz and the buffer read/write rates at f/16 and
// f/32 — the activities the Figure 2 spreadsheet prices.
//
// Two architectures decode the same stream:
//
//   - Architecture 1 (Figure 1): the LUT is organized 4096×6 and
//     delivers one pixel per access — 16 LUT accesses per code, at the
//     full pixel rate f.
//
//   - Architecture 2 (Figure 3): the LUT is organized 1024×24 and
//     delivers four pixels per access, exploiting the locality of
//     vector quantization; a word latch holds the 24-bit word and a
//     4:1 multiplexor plus the output register are the only elements
//     switching at f.
//
// The simulator executes both dataflows, counts every unit's accesses
// (the activity numbers the power models consume), and lets the tests
// prove the two architectures are pixel-exact equivalents.
package vqsim

import (
	"fmt"
)

// Screen geometry and rates from the paper.
const (
	// ScreenW and ScreenH are the display size in pixels.
	ScreenW, ScreenH = 256, 128
	// PixelsPerCode is the vector (block) size of the quantizer.
	PixelsPerCode = 16
	// CodesPerFrame is the compressed frame size in 8-bit codes.
	CodesPerFrame = ScreenW * ScreenH / PixelsPerCode
	// RefreshHz is the display rate; VideoHz the incoming video rate.
	RefreshHz, VideoHz = 60, 30
	// PixelRateHz is the minimum pixel frequency f: W·H·Refresh.
	PixelRateHz = ScreenW * ScreenH * RefreshHz // 1.966e6, "2 MHz" in the paper
	// PixelBits is the luminance depth.
	PixelBits = 6
	// CodeBits is the compressed symbol width.
	CodeBits = 8
)

// Codebook is the 256-entry × 16-pixel luminance table shared by both
// architectures.
type Codebook struct {
	entries [256][PixelsPerCode]uint8
}

// NewCodebook builds a deterministic synthetic codebook: entry e, pixel
// i holds a 6-bit ramp/dither pattern.  A real chip would train this
// offline (Gersho & Gray); any fixed contents exercise the same
// dataflow.
func NewCodebook() *Codebook {
	cb := &Codebook{}
	for e := 0; e < 256; e++ {
		for i := 0; i < PixelsPerCode; i++ {
			cb.entries[e][i] = uint8((e*5 + i*11 + (e>>3)*i) % 64)
		}
	}
	return cb
}

// Pixel returns pixel i (0..15) of entry e.
func (cb *Codebook) Pixel(e uint8, i int) uint8 { return cb.entries[e][i] }

// Word returns the packed 4-pixel group g (0..3) of entry e as the
// architecture-2 LUT stores it: 4 × 6 bits in a 24-bit word.
func (cb *Codebook) Word(e uint8, g int) uint32 {
	var w uint32
	for k := 0; k < 4; k++ {
		w |= uint32(cb.entries[e][g*4+k]&0x3F) << (6 * k)
	}
	return w
}

// Counts tallies unit activities during a simulation: the numbers that
// become the frequency column of the Figure 2 sheet.
type Counts struct {
	// BankReads and BankWrites are ping-pong buffer accesses.
	BankReads, BankWrites uint64
	// LUTReads are look-up table accesses.
	LUTReads uint64
	// LatchLoads are architecture-2 word-latch loads.
	LatchLoads uint64
	// MuxSelects are architecture-2 output mux switches.
	MuxSelects uint64
	// RegLoads are output register loads (one per pixel).
	RegLoads uint64
	// Pixels is the number of pixels produced.
	Pixels uint64
}

// Rate converts an access count into the unit's frequency given the
// pixel clock: rate = f · count / pixels.
func (c Counts) Rate(count uint64, pixelHz float64) float64 {
	if c.Pixels == 0 {
		return 0
	}
	return pixelHz * float64(count) / float64(c.Pixels)
}

// Decoder simulates the ping-pong double-buffered decompressor for one
// architecture.
type Decoder struct {
	cb    *Codebook
	banks [2][]uint8
	// readBank indexes the bank being displayed; 1-readBank receives
	// the incoming stream.
	readBank int
	counts   Counts
	wide     bool // architecture 2 (4-pixel LUT words)
}

// NewDecoder builds a decoder; wide selects architecture 2.
func NewDecoder(cb *Codebook, wide bool) *Decoder {
	d := &Decoder{cb: cb, wide: wide}
	d.banks[0] = make([]uint8, CodesPerFrame)
	d.banks[1] = make([]uint8, CodesPerFrame)
	return d
}

// Counts returns the accumulated activity tallies.
func (d *Decoder) Counts() Counts { return d.counts }

// WriteFrame stores an incoming compressed frame into the write bank —
// the 30 Hz side of the ping-pong.
func (d *Decoder) WriteFrame(codes []uint8) error {
	if len(codes) != CodesPerFrame {
		return fmt.Errorf("vqsim: frame has %d codes, want %d", len(codes), CodesPerFrame)
	}
	w := d.banks[1-d.readBank]
	copy(w, codes)
	d.counts.BankWrites += uint64(len(codes))
	return nil
}

// SwapBanks reverses the read/write roles — once per incoming frame.
func (d *Decoder) SwapBanks() { d.readBank = 1 - d.readBank }

// DisplayFrame decodes the read bank once (one 60 Hz refresh) and
// returns the pixel stream in display order.
func (d *Decoder) DisplayFrame() []uint8 {
	out := make([]uint8, 0, CodesPerFrame*PixelsPerCode)
	bank := d.banks[d.readBank]
	for _, code := range bank {
		d.counts.BankReads++
		if d.wide {
			out = d.decodeWide(code, out)
		} else {
			out = d.decodeNarrow(code, out)
		}
	}
	d.counts.Pixels += uint64(CodesPerFrame * PixelsPerCode)
	return out
}

// decodeNarrow is architecture 1: one 6-bit LUT access per pixel.
func (d *Decoder) decodeNarrow(code uint8, out []uint8) []uint8 {
	for i := 0; i < PixelsPerCode; i++ {
		d.counts.LUTReads++
		px := d.cb.Pixel(code, i)
		d.counts.RegLoads++
		out = append(out, px)
	}
	return out
}

// decodeWide is architecture 2: one 24-bit LUT access per 4 pixels,
// then the latch + 4:1 mux deliver pixels at the full rate.
func (d *Decoder) decodeWide(code uint8, out []uint8) []uint8 {
	for g := 0; g < PixelsPerCode/4; g++ {
		d.counts.LUTReads++
		word := d.cb.Word(code, g)
		d.counts.LatchLoads++
		for k := 0; k < 4; k++ {
			d.counts.MuxSelects++
			px := uint8(word >> (6 * k) & 0x3F)
			d.counts.RegLoads++
			out = append(out, px)
		}
	}
	return out
}

// RunFrames drives the full ping-pong protocol: each incoming frame is
// written once and displayed twice (60 Hz refresh of 30 Hz video).  It
// returns the concatenated pixel output.
func (d *Decoder) RunFrames(frames [][]uint8) ([]uint8, error) {
	var out []uint8
	for _, codes := range frames {
		if err := d.WriteFrame(codes); err != nil {
			return nil, err
		}
		d.SwapBanks()
		out = append(out, d.DisplayFrame()...)
		out = append(out, d.DisplayFrame()...)
	}
	return out, nil
}
