package vqsim

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powerplay/internal/core/sheet"
	"powerplay/internal/library"
)

func randomFrames(seed int64, n int) [][]uint8 {
	rng := rand.New(rand.NewSource(seed))
	frames := make([][]uint8, n)
	for i := range frames {
		f := make([]uint8, CodesPerFrame)
		for j := range f {
			f[j] = uint8(rng.Intn(256))
		}
		frames[i] = f
	}
	return frames
}

func TestGeometryConstants(t *testing.T) {
	// The paper's derivation: 256×128 at 60 Hz ⇒ f ≈ 2 MHz, 2048 codes.
	if CodesPerFrame != 2048 {
		t.Errorf("CodesPerFrame = %d", CodesPerFrame)
	}
	if PixelRateHz != 1966080 {
		t.Errorf("PixelRateHz = %d", PixelRateHz)
	}
}

func TestArchitecturesAreEquivalent(t *testing.T) {
	// The whole Figure 3 argument rests on the two dataflows producing
	// identical pixels.
	cb := NewCodebook()
	frames := randomFrames(3, 4)
	d1 := NewDecoder(cb, false)
	d2 := NewDecoder(cb, true)
	out1, err := d1.RunFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := d2.RunFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatal("architecture outputs differ")
	}
	if len(out1) != 4*2*ScreenW*ScreenH {
		t.Errorf("pixel count = %d", len(out1))
	}
}

func TestQuickEquivalence(t *testing.T) {
	cb := NewCodebook()
	f := func(seedBytes [32]byte) bool {
		frame := make([]uint8, CodesPerFrame)
		for i := range frame {
			frame[i] = seedBytes[i%32] ^ uint8(i)
		}
		d1 := NewDecoder(cb, false)
		d2 := NewDecoder(cb, true)
		o1, err1 := d1.RunFrames([][]uint8{frame})
		o2, err2 := d2.RunFrames([][]uint8{frame})
		return err1 == nil && err2 == nil && bytes.Equal(o1, o2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestActivityRatesMatchPaper(t *testing.T) {
	// E5: read bank at f/16, write bank at f/32, LUT at f (arch 1) or
	// f/4 (arch 2), register at f.
	cb := NewCodebook()
	frames := randomFrames(9, 8)
	for _, wide := range []bool{false, true} {
		d := NewDecoder(cb, wide)
		if _, err := d.RunFrames(frames); err != nil {
			t.Fatal(err)
		}
		c := d.Counts()
		f := 2e6 // evaluate rates against the nominal pixel clock
		checkRate := func(name string, count uint64, want float64) {
			t.Helper()
			got := c.Rate(count, f)
			if math.Abs(got-want)/want > 1e-9 {
				t.Errorf("wide=%v %s rate = %v, want %v", wide, name, got, want)
			}
		}
		checkRate("bank read", c.BankReads, f/16)
		checkRate("bank write", c.BankWrites, f/32)
		if wide {
			checkRate("LUT", c.LUTReads, f/4)
			checkRate("latch", c.LatchLoads, f/4)
			checkRate("mux", c.MuxSelects, f)
		} else {
			checkRate("LUT", c.LUTReads, f)
		}
		checkRate("register", c.RegLoads, f)
	}
}

func TestWriteFrameValidation(t *testing.T) {
	d := NewDecoder(NewCodebook(), false)
	if err := d.WriteFrame(make([]uint8, 3)); err == nil {
		t.Error("short frame should fail")
	}
	if _, err := d.RunFrames([][]uint8{make([]uint8, 1)}); err == nil {
		t.Error("RunFrames should propagate the error")
	}
}

func TestPingPongSemantics(t *testing.T) {
	// While displaying frame N, frame N+1 is written to the other bank:
	// displayed pixels must come from the previously written frame.
	cb := NewCodebook()
	d := NewDecoder(cb, false)
	frameA := make([]uint8, CodesPerFrame)
	frameB := make([]uint8, CodesPerFrame)
	for i := range frameA {
		frameA[i] = 1
		frameB[i] = 2
	}
	d.WriteFrame(frameA)
	d.SwapBanks()
	d.WriteFrame(frameB) // lands in the other bank
	pixA := d.DisplayFrame()
	wantA := cb.Pixel(1, 0)
	if pixA[0] != wantA {
		t.Errorf("displaying wrong bank: got %d want %d", pixA[0], wantA)
	}
	d.SwapBanks()
	pixB := d.DisplayFrame()
	if pixB[0] != cb.Pixel(2, 0) {
		t.Error("swap should expose the newly written frame")
	}
}

func TestCodebookWordPacking(t *testing.T) {
	cb := NewCodebook()
	for g := 0; g < 4; g++ {
		w := cb.Word(7, g)
		for k := 0; k < 4; k++ {
			if got := uint8(w >> (6 * k) & 0x3F); got != cb.Pixel(7, g*4+k) {
				t.Fatalf("word packing: entry 7 group %d pixel %d", g, k)
			}
		}
	}
}

// The headline reproduction: the Figure 1 sheet prices ≈ 750 µW, the
// Figure 3 sheet ≈ 150 µW — about 5× apart — and the chip's measured
// 100 µW is within an octave of the estimate.
func TestFigure2And3Power(t *testing.T) {
	reg := library.Standard()
	d1, err := Luminance1(reg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Luminance2(reg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := d1.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d2.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	p1 := float64(r1.Power)
	p2 := float64(r2.Power)
	if p2 < 120e-6 || p2 > 190e-6 {
		t.Errorf("implementation 2 = %v, want ≈150uW", r2.Power)
	}
	ratio := p1 / p2
	if ratio < 4 || ratio > 6.5 {
		t.Errorf("ratio = %.2f, paper says ≈5", ratio)
	}
	// Measured chip: 100 µW.  Within an octave means ratio < 2.
	if oct := p2 / 100e-6; oct > 2 || oct < 0.5 {
		t.Errorf("estimate %v not within an octave of the measured 100uW", r2.Power)
	}
	// The LUT dominates implementation 1 — the insight that motivates
	// the reorganization.
	lut := float64(r1.Find("look_up_table").Power)
	if lut/p1 < 0.7 {
		t.Errorf("LUT should dominate implementation 1: %.0f%%", 100*lut/p1)
	}
}

func TestVoltageExplorationOnSheet(t *testing.T) {
	// "parameters such as bit-widths and supply voltages can be varied
	// dynamically": sweep VDD without rebuilding.
	reg := library.Standard()
	d2, err := Luminance2(reg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := d2.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	high, err := d2.EvaluateAt(map[string]float64{"vdd": 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(high.Power) / float64(base.Power); math.Abs(ratio-4) > 1e-6 {
		t.Errorf("full-swing digital design should scale as V²: ratio %v", ratio)
	}
}

func TestSheetSerializationOfDesigns(t *testing.T) {
	reg := library.Standard()
	d1, err := Luminance1(reg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d1.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	d1b, err := sheet.ParseDesign(blob, reg)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := d1.Evaluate()
	r1b, err := d1b.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Power != r1b.Power {
		t.Error("design JSON round trip changed the estimate")
	}
}
