package vqsim

import (
	"context"
	"fmt"

	"powerplay/internal/core/explore"
	"powerplay/internal/core/model"
	"powerplay/internal/core/sheet"
	"powerplay/internal/library"
)

// Architecture-driven voltage scaling: the exploration pattern the UCB
// low-power school built PowerPlay for (Chandrakasan's "Low Power
// Digital CMOS Design", the paper's ref [5]).  A fixed-throughput task
// — here a stream of multiply-accumulates — can be implemented as one
// fast MAC or as N parallel MACs each running at 1/N the rate; the
// parallel version meets timing at a far lower supply, and since power
// falls with VDD² while hardware only grows ~N×, the parallel design
// wins on power even though it "wastes" area.  The sheet + explore
// machinery reproduces the whole argument in a few dozen lines.

// MACDesign builds a datapath sheet with n parallel 16-bit MAC lanes,
// each clocked at sampleRate/n.
func MACDesign(reg *model.Registry, n int, sampleRate float64) (*sheet.Design, error) {
	if n < 1 {
		return nil, fmt.Errorf("vqsim: need at least one lane, got %d", n)
	}
	d := sheet.NewDesign(fmt.Sprintf("mac_x%d", n), reg)
	d.Doc = fmt.Sprintf("%d-lane multiply-accumulate datapath at %g samples/s total", n, sampleRate)
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("fs", sampleRate, fmt.Sprintf("%g", sampleRate))
	if err := d.Root.SetGlobal("f", fmt.Sprintf("fs/%d", n)); err != nil {
		return nil, err
	}
	for lane := 0; lane < n; lane++ {
		grp, err := d.Root.AddChild(fmt.Sprintf("lane%d", lane), "")
		if err != nil {
			return nil, err
		}
		mult, err := grp.AddChild("mult", library.ArrayMultiplier)
		if err != nil {
			return nil, err
		}
		if err := mult.SetParam("bwA", "16"); err != nil {
			return nil, err
		}
		if err := mult.SetParam("bwB", "16"); err != nil {
			return nil, err
		}
		add, err := grp.AddChild("acc_add", library.RippleAdder)
		if err != nil {
			return nil, err
		}
		if err := add.SetParam("bits", "32"); err != nil {
			return nil, err
		}
		reg32, err := grp.AddChild("acc_reg", library.Register)
		if err != nil {
			return nil, err
		}
		if err := reg32.SetParam("bits", "32"); err != nil {
			return nil, err
		}
	}
	// Distributing the stream costs a mux per lane beyond the first.
	if n > 1 {
		mux, err := d.Root.AddChild("distribute", library.Mux)
		if err != nil {
			return nil, err
		}
		if err := mux.SetParam("bits", "16"); err != nil {
			return nil, err
		}
		if err := mux.SetParam("inputs", fmt.Sprintf("%d", n)); err != nil {
			return nil, err
		}
		if err := mux.SetParam("f", "fs"); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// ArchPoint is one architecture's operating point in the study.
type ArchPoint struct {
	// Lanes is the parallelism degree.
	Lanes int
	// MinVDD is the lowest supply meeting the per-lane clock.
	MinVDD float64
	// Power is the design total at MinVDD.
	Power float64
	// Area is the design total area.
	Area float64
}

// ArchScale runs the study: for each parallelism degree, find the
// minimum supply at which every module meets the per-lane clock
// fs/lanes, and report power and area there.
func ArchScale(ctx context.Context, reg *model.Registry, sampleRate float64, lanes []int) ([]ArchPoint, error) {
	var out []ArchPoint
	for _, n := range lanes {
		d, err := MACDesign(reg, n, sampleRate)
		if err != nil {
			return nil, err
		}
		perLane := sampleRate / float64(n)
		vdd, err := explore.MinSupply(ctx, d, perLane, 0.8, 3.3)
		if err != nil {
			return nil, fmt.Errorf("vqsim: %d lanes: %w", n, err)
		}
		r, err := d.EvaluateAt(map[string]float64{"vdd": vdd})
		if err != nil {
			return nil, err
		}
		out = append(out, ArchPoint{
			Lanes: n, MinVDD: vdd,
			Power: float64(r.Power), Area: float64(r.Area),
		})
	}
	return out, nil
}
