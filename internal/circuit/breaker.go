// Package circuit is the three-state circuit breaker shared by every
// subsystem that talks to a peer it cannot trust to answer: the remote
// model client (internal/web) blames one publisher per breaker, and the
// shard router (internal/shard) blames one backend process per breaker.
//
// The machinery landed with the remote model protocol hardening (PR 3)
// and moved here unchanged when the shard router needed the identical
// open/half-open/probe discipline against its backends; internal/web
// re-exports the old names as aliases, so existing callers compile
// untouched.
package circuit

import (
	"errors"
	"sync"
	"time"

	"powerplay/internal/obs"
)

// ErrOpen is returned when a breaker is rejecting requests without
// trying the network.
var ErrOpen = errors.New("circuit breaker open")

// State enumerates the classic three circuit-breaker states.
type State int

// Breaker states.
const (
	// Closed: requests flow; failures are counted.
	Closed State = iota
	// Open: requests fail fast until the cooldown elapses.
	Open
	// HalfOpen: one probe request at a time tests recovery.
	HalfOpen
)

// String names the state for logs, healthz and stale-estimate notes.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// transitions counts every state change across all breakers in the
// process — the coarse fleet-health signal.  Per-peer attribution (which
// backend, which publisher) is the owner's job via OnTransition.
var transitions = obs.NewCounterVec("powerplay_breaker_transitions_total",
	"Circuit breaker state transitions, by state entered (open/half-open/closed).",
	"to")

// Breaker is a per-peer circuit breaker.
//
// A run of Threshold consecutive failures trips the breaker open;
// while open, Allow rejects immediately with ErrOpen, so a dead peer
// costs each caller a map lookup instead of a connect timeout.  After
// Cooldown the breaker admits a single probe request (half-open): a
// success closes the circuit, a failure re-opens it for another
// cooldown.  Concurrent probes are rejected, so a recovering peer sees
// one request, not a thundering herd.
//
// The zero value is a ready-to-use breaker with default settings; one
// Breaker must not be shared across peers (its whole point is blaming
// the right one).
type Breaker struct {
	// Threshold is the consecutive-failure count that trips the
	// breaker; zero selects 5.
	Threshold int
	// Cooldown is how long the breaker stays open before probing;
	// zero selects 10 s.
	Cooldown time.Duration
	// OnTransition, when set, observes every state change with the
	// state being entered — how an owner attributes transitions to a
	// labeled peer (the shard router's per-backend metric).  Called
	// under the breaker's lock; keep it cheap and non-reentrant.
	OnTransition func(to State)

	// now replaces the clock in tests; nil uses time.Now.
	now func() time.Time

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
	probing  bool
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 5
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 10 * time.Second
}

// enter records a state change in the process-wide counter and the
// owner's hook.  Caller holds b.mu.
func (b *Breaker) enter(to State) {
	b.state = to
	transitions.With(to.String()).Inc()
	if b.OnTransition != nil {
		b.OnTransition(to)
	}
}

// State reports the current state (transitioning open → half-open if
// the cooldown has elapsed).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.clock().Sub(b.openedAt) >= b.cooldown() {
		return HalfOpen
	}
	return b.state
}

// Allow asks permission to issue one request.  It returns nil (go
// ahead) or ErrOpen.  Every Allow that returns nil must be matched by
// exactly one Success or Failure call.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.clock().Sub(b.openedAt) < b.cooldown() {
			return ErrOpen
		}
		b.enter(HalfOpen)
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrOpen
		}
		b.probing = true
		return nil
	}
}

// Success records a completed request and closes the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Closed {
		b.enter(Closed)
	}
	b.state = Closed
	b.failures = 0
	b.probing = false
}

// Failure records a failed request, tripping or re-opening the circuit
// as appropriate.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state == HalfOpen {
		// The probe failed: straight back to open.
		b.enter(Open)
		b.openedAt = b.clock()
		return
	}
	b.failures++
	if b.failures >= b.threshold() {
		b.enter(Open)
		b.openedAt = b.clock()
	}
}
