package circuit

import (
	"testing"
	"time"
)

// TestLifecycle walks the breaker through trip, fail-fast, a failed
// probe, and a successful probe, checking the state and the Allow
// verdict at each step.
func TestLifecycle(t *testing.T) {
	clock := time.Now()
	b := &Breaker{Threshold: 3, Cooldown: time.Minute}
	b.now = func() time.Time { return clock }

	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected request %d: %v", i, err)
		}
		b.Failure()
	}
	if got := b.State(); got != Open {
		t.Fatalf("after 3 failures state = %v, want open", got)
	}
	if err := b.Allow(); err != ErrOpen {
		t.Fatalf("open breaker allowed a request (err=%v)", err)
	}

	// Cooldown elapses: one probe allowed, a concurrent probe rejected.
	clock = clock.Add(time.Minute)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("after cooldown state = %v, want half-open", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open breaker rejected the probe: %v", err)
	}
	if err := b.Allow(); err != ErrOpen {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("failed probe left state %v, want open", got)
	}

	// Second probe succeeds: circuit closes and traffic flows.
	clock = clock.Add(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("after successful probe state = %v, want closed", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker rejected traffic: %v", err)
	}
	b.Success()
}

// TestOnTransition checks the owner hook sees every state change in
// order — the contract the shard router's per-backend metric rides on.
func TestOnTransition(t *testing.T) {
	clock := time.Now()
	var seen []State
	b := &Breaker{Threshold: 1, Cooldown: time.Second,
		OnTransition: func(to State) { seen = append(seen, to) }}
	b.now = func() time.Time { return clock }

	b.Allow()
	b.Failure() // -> open
	clock = clock.Add(time.Second)
	b.Allow()   // -> half-open
	b.Success() // -> closed
	want := []State{Open, HalfOpen, Closed}
	if len(seen) != len(want) {
		t.Fatalf("hook saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", seen, want)
		}
	}
}
