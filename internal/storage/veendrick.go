package storage

import (
	"powerplay/internal/units"
)

// Veendrick's short-circuit (direct-path) dissipation model.
//
// While an input ramps between the two thresholds, both the pull-up and
// pull-down conduct and charge flows directly from VDD to ground.  For a
// symmetric static CMOS gate with input rise/fall time τ, Veendrick
// gives
//
//	P_sc = (β/12) · (VDD − 2·VT)³ · τ · f
//
// The paper folds this into the EQ 1 template by expressing the
// direct-path charge as an effective capacitance with a voltage swing:
// an EQ 1 term C·Vswing·VDD·f with Vswing = VDD dissipates C·VDD²·f,
// so C_eff = P_sc / (VDD²·f).

// DirectPathCharge returns the charge drawn from the supply per input
// transition: Q = (β/12)·(VDD − 2·VT)³·τ / VDD.  Beta is the combined
// transconductance of the gate in A/V², tau the input rise/fall time.
// When the supply is at or below 2·VT the gate has no direct path and
// the charge is zero — the classic low-power trick.
func DirectPathCharge(beta float64, tau units.Seconds, vdd, vt units.Volts) float64 {
	headroom := float64(vdd) - 2*float64(vt)
	if headroom <= 0 || vdd <= 0 {
		return 0
	}
	energy := beta / 12 * headroom * headroom * headroom * float64(tau)
	return energy / float64(vdd)
}

// DirectPathCap converts the direct-path charge into the effective
// EQ 1 capacitance: C_eff = Q / VDD, so that C_eff·VDD²·f reproduces
// Veendrick's P_sc at switching frequency f.
func DirectPathCap(beta float64, tau units.Seconds, vdd, vt units.Volts) units.Farads {
	if vdd <= 0 {
		return 0
	}
	return units.Farads(DirectPathCharge(beta, tau, vdd, vt) / float64(vdd))
}
