package storage

import (
	"math"
	"testing"
	"testing/quick"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// ucbSRAM mirrors the library's calibrated UCB low-power SRAM.
func ucbSRAM() *SRAM {
	return &SRAM{
		Name: "ucb.sram", Title: "Low-power SRAM",
		C0:       6.25 * units.PicoFarad,
		CWord:    31.25 * units.FemtoFarad,
		CBit:     500 * units.FemtoFarad,
		CWordBit: 0.6 * units.FemtoFarad,
		CellArea: 120 * units.SquareMicron,
		Delay0:   10e-9,
	}
}

func ev(t *testing.T, m model.Model, p model.Params) *model.Estimate {
	t.Helper()
	e, err := model.Evaluate(m, p)
	if err != nil {
		t.Fatalf("%v: %v", m.Info().Name, err)
	}
	return e
}

func TestSRAMEQ7(t *testing.T) {
	s := ucbSRAM()
	words, bits := 4096.0, 6.0
	e := ev(t, s, model.Params{"words": words, "bits": bits, "vdd": 1.5, "f": 2e6})
	want := 6.25e-12 + words*31.25e-15 + bits*500e-15 + words*bits*0.6e-15
	if got := float64(e.SwitchedCap()); !almost(got, want) {
		t.Errorf("C_T = %v, want %v", got, want)
	}
	// The Figure 2 look-up table: ~152 pF at this organization.
	if got := float64(e.SwitchedCap()); math.Abs(got-152e-12) > 2e-12 {
		t.Errorf("LUT capacitance %v strays from calibration (~152pF)", units.Farads(got))
	}
	// Power at 1.5 V, 2 MHz ≈ 684 µW (the Figure 2 dominant row).
	if got := float64(e.Power()); math.Abs(got-684e-6) > 5e-6 {
		t.Errorf("LUT power %v, want ≈684uW", units.Watts(got))
	}
}

func TestSRAMOrganizationMonotonic(t *testing.T) {
	// Property: capacitance strictly grows in words and in bits.
	s := ucbSRAM()
	f := func(w1, b1 uint16) bool {
		w := float64(w1%4096 + 1)
		b := float64(b1%64 + 1)
		base := mustEv(s, model.Params{"words": w, "bits": b})
		moreWords := mustEv(s, model.Params{"words": w + 1, "bits": b})
		moreBits := mustEv(s, model.Params{"words": w, "bits": b + 1})
		return float64(moreWords.SwitchedCap()) > float64(base.SwitchedCap()) &&
			float64(moreBits.SwitchedCap()) > float64(base.SwitchedCap())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSRAMReducedSwing(t *testing.T) {
	s := ucbSRAM()
	p := model.Params{"words": 1024, "bits": 16, "vdd": 1.5, "f": 1e6}
	rail := ev(t, s, p)
	p2 := p.Clone()
	p2["swing"] = ReducedSwing
	p2["vswing"] = 0.4
	red := ev(t, s, p2)
	if float64(red.Power()) >= float64(rail.Power()) {
		t.Fatalf("reduced swing should save power: %v vs %v", red.Power(), rail.Power())
	}
	// EQ 8 by hand: P = Cfull·V² f + Cbl·Vsw·V·f.
	full, bl := s.split(1024, 16)
	want := float64(full)*1.5*1.5*1e6 + float64(bl)*0.4*1.5*1e6
	if got := float64(red.Power()); !almost(got, want) {
		t.Errorf("EQ8 power = %v, want %v", got, want)
	}
}

func TestSRAMActivityAndLeakage(t *testing.T) {
	s := ucbSRAM()
	s.LeakPerCell = 10e-12 // 10 pA/cell
	idle := ev(t, s, model.Params{"words": 1024, "bits": 8, "act": 0, "vdd": 1.5, "f": 1e6})
	if got := float64(idle.DynamicPower()); got != 0 {
		t.Errorf("idle dynamic power = %v, want 0", got)
	}
	wantLeak := 1024 * 8 * 10e-12 * 1.5
	if got := float64(idle.StaticPower()); !almost(got, wantLeak) {
		t.Errorf("leakage = %v, want %v", got, wantLeak)
	}
}

func TestSRAMDelayGrowsWithWords(t *testing.T) {
	s := ucbSRAM()
	small := ev(t, s, model.Params{"words": 64, "bits": 8})
	big := ev(t, s, model.Params{"words": 65536, "bits": 8})
	if float64(big.Delay) <= float64(small.Delay) {
		t.Error("bigger array should be slower")
	}
}

func TestRegisterFile(t *testing.T) {
	r := &RegisterFile{
		Name: "ucb.reg", CapPerBit: 150 * units.FemtoFarad,
		CapPerCell: 150 * units.FemtoFarad, Delay: 1e-9,
	}
	// Pipeline register: 1 word, 6 bits, act 0.5 at 2 MHz, 1.5 V.
	e := ev(t, r, model.Params{"words": 1, "bits": 6, "vdd": 1.5, "f": 2e6})
	want := (0.5*6*150e-15 + 1*6*150e-15) * 2.25 * 2e6
	if got := float64(e.Power()); !almost(got, want) {
		t.Errorf("register power = %v, want %v", got, want)
	}
	// Clock load burns power even with act=0 (included clock capacitance).
	idle := ev(t, r, model.Params{"words": 1, "bits": 6, "act": 0, "vdd": 1.5, "f": 2e6})
	if float64(idle.Power()) <= 0 {
		t.Error("clock capacitance should dissipate even at zero data activity")
	}
}

func TestDRAM(t *testing.T) {
	d := &DRAM{
		Name: "commodity.dram", C0: 20 * units.PicoFarad,
		CWord: 10 * units.FemtoFarad, CBit: 800 * units.FemtoFarad, CWordBit: 0.05 * units.FemtoFarad,
		RefreshPeriod: 16e-3, CellArea: 8 * units.SquareMicron, Delay0: 60e-9,
	}
	e := ev(t, d, model.Params{"words": 65536, "bits": 16, "vdd": 3.3, "f": 1e6})
	if len(e.Dynamic) != 2 {
		t.Fatalf("want access+refresh terms, got %d", len(e.Dynamic))
	}
	// Refresh persists with zero access activity.
	idle := ev(t, d, model.Params{"words": 65536, "bits": 16, "act": 0, "vdd": 3.3, "f": 1e6})
	if float64(idle.Power()) <= 0 {
		t.Error("refresh should dissipate at idle")
	}
	if float64(idle.Power()) >= float64(e.Power()) {
		t.Error("active should exceed idle")
	}
	// Zero refresh period is a configuration error.
	bad := &DRAM{Name: "x"}
	if _, err := model.Evaluate(bad, nil); err == nil {
		t.Error("zero refresh period should fail")
	}
}

func TestVeendrickDirectPath(t *testing.T) {
	const beta = 1e-4 // A/V²
	tau := units.Seconds(2e-9)
	// Charge grows with headroom cubed.
	q15 := DirectPathCharge(beta, tau, 1.5, 0.7)
	q33 := DirectPathCharge(beta, tau, 3.3, 0.7)
	if q15 <= 0 || q33 <= q15 {
		t.Fatalf("direct path charge: q(1.5)=%v q(3.3)=%v", q15, q33)
	}
	// Below 2·VT there is no direct path at all.
	if q := DirectPathCharge(beta, tau, 1.3, 0.7); q != 0 {
		t.Errorf("VDD < 2VT should have zero short-circuit charge, got %v", q)
	}
	// The effective capacitance reproduces P_sc in the EQ 1 template.
	vdd := units.Volts(3.3)
	ceff := DirectPathCap(beta, tau, vdd, 0.7)
	f := 1e6
	psc := beta / 12 * math.Pow(3.3-1.4, 3) * 2e-9 * f
	e := &model.Estimate{VDD: vdd}
	e.AddCap("direct path", ceff, units.Hertz(f))
	if got := float64(e.Power()); !almost(got, psc) {
		t.Errorf("EQ1-folded P_sc = %v, want %v", got, psc)
	}
	// Longer input ramps dissipate more.
	if DirectPathCharge(beta, 2*tau, vdd, 0.7) <= DirectPathCharge(beta, tau, vdd, 0.7) {
		t.Error("slower edges should increase short-circuit charge")
	}
	// Degenerate supplies are safe.
	if DirectPathCap(beta, tau, 0, 0.7) != 0 {
		t.Error("zero supply should yield zero capacitance")
	}
}

func TestSchemasEvaluateAtDefaults(t *testing.T) {
	ms := []model.Model{
		ucbSRAM(),
		&RegisterFile{Name: "r", CapPerBit: 1e-15, CapPerCell: 1e-15},
		&DRAM{Name: "d", RefreshPeriod: 16e-3},
	}
	for _, m := range ms {
		if _, err := model.Evaluate(m, nil); err != nil {
			t.Errorf("%s at defaults: %v", m.Info().Name, err)
		}
	}
}

func mustEv(m model.Model, p model.Params) *model.Estimate {
	e, err := model.Evaluate(m, p)
	if err != nil {
		panic(err)
	}
	return e
}
