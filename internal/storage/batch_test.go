package storage

import (
	"math"
	"testing"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// checkSweepFormMatchesEvaluate is the kernel oracle: the closed form
// evaluated columnar must reproduce Evaluate bit for bit across a grid
// of operating points.
func checkSweepFormMatchesEvaluate(t *testing.T, m model.Model, base model.Params) {
	t.Helper()
	full, err := model.Validate(m.Info().Params, base)
	if err != nil {
		t.Fatalf("%s: validate: %v", m.Info().Name, err)
	}
	sf, ok := m.(model.SweepFormer).SweepForm(full)
	if !ok {
		t.Fatalf("%s: no sweep form at %v", m.Info().Name, base)
	}
	var vdd, f []float64
	for _, v := range []float64{0.6, 0.8, 1.5, 2.5, 3.3, 5} {
		for _, fr := range []float64{0, 1e6, 2e6, 66e6, 1e9} {
			vdd = append(vdd, v)
			f = append(f, fr)
		}
	}
	n := len(vdd)
	ds := make([]float64, n)
	model.DelayScaleCols(ds, vdd, n)
	pw, dyn, stat := make([]float64, n), make([]float64, n), make([]float64, n)
	area, delay := make([]float64, n), make([]float64, n)
	sf.EvalCols(vdd, f, ds, pw, dyn, stat, area, delay, n)
	for i := 0; i < n; i++ {
		full[model.ParamVDD] = vdd[i]
		full[model.ParamFreq] = f[i]
		est, err := m.Evaluate(full)
		if err != nil {
			t.Fatalf("%s @ vdd=%g f=%g: %v", m.Info().Name, vdd[i], f[i], err)
		}
		check := func(what string, got, want float64) {
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s @ vdd=%g f=%g: %s = %v (%#x), Evaluate says %v (%#x)",
					m.Info().Name, vdd[i], f[i], what,
					got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
		check("power", pw[i], float64(est.Power()))
		check("dynamic", dyn[i], float64(est.DynamicPower()))
		check("static", stat[i], float64(est.StaticPower()))
		check("area", area[i], float64(est.Area))
		check("delay", delay[i], float64(est.Delay))
	}
}

func TestStorageSweepFormsMatchEvaluate(t *testing.T) {
	sram := &SRAM{
		Name: "t.sram", C0: 1.2 * units.PicoFarad,
		CWord: 3 * units.FemtoFarad, CBit: 5 * units.FemtoFarad,
		CWordBit: 0.08 * units.FemtoFarad, LeakPerCell: 20e-12,
		CellArea: 140 * units.SquareMicron, PeripheryArea: 1e5 * units.SquareMicron,
		Delay0: 8e-9,
	}
	noleak := &SRAM{
		Name: "t.sram0", C0: 1.2 * units.PicoFarad,
		CWordBit: 0.08 * units.FemtoFarad, CellArea: 140 * units.SquareMicron,
		Delay0: 8e-9,
	}
	rf := &RegisterFile{
		Name: "t.rf", CapPerBit: 60 * units.FemtoFarad,
		CapPerCell: 2 * units.FemtoFarad, CellArea: 700 * units.SquareMicron,
		Delay: 3e-9,
	}
	dram := &DRAM{
		Name: "t.dram", C0: 5 * units.PicoFarad,
		CWord: 1 * units.FemtoFarad, CBit: 9 * units.FemtoFarad,
		CWordBit: 0.03 * units.FemtoFarad, CellArea: 4 * units.SquareMicron,
		Delay0: 60e-9, RefreshPeriod: 16e-3,
	}
	cases := []struct {
		m    model.Model
		base model.Params
	}{
		{sram, model.Params{"words": 1024, "bits": 16, "swing": RailToRail}},
		{sram, model.Params{"words": 1024, "bits": 16, "swing": ReducedSwing, "vswing": 0.3}},
		{sram, model.Params{"words": 1, "bits": 1, "act": 0.5, "tech": 0.6e-6}},
		{noleak, model.Params{"words": 256, "bits": 8}},
		{rf, model.Params{"words": 16, "bits": 32, "act": 0.25}},
		{rf, model.Params{"words": 8, "bits": 8, "tech": 1.2e-6}},
		{dram, model.Params{"words": 1 << 16, "bits": 16, "act": 0.8}},
	}
	for _, c := range cases {
		checkSweepFormMatchesEvaluate(t, c.m, c.base)
	}
}

// TestDRAMSweepFormRefusesBadRefresh pins the fallback contract: a DRAM
// whose Evaluate would fail (non-positive refresh period) must refuse a
// sweep form so the scalar path reports the canonical error.
func TestDRAMSweepFormRefusesBadRefresh(t *testing.T) {
	d := &DRAM{Name: "t.dram"}
	full, err := model.Validate(d.Info().Params, model.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.SweepForm(full); ok {
		t.Fatal("DRAM with RefreshPeriod <= 0 offered a sweep form")
	}
}
