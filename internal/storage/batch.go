// Columnar sweep forms for the memory models: each kernel rebuilds,
// from the fixed organization, exactly the capacitance / swing /
// frequency / area / delay expressions its Evaluate computes, so the
// sheet's batch executor prices whole columns of operating points with
// results bit-identical to the scalar path (see model.SweepFormer for
// the contract).
package storage

import (
	"math"

	"powerplay/internal/core/model"
)

// SweepForm implements model.SweepFormer.  The activity factor rides on
// the frequency (Evaluate folds it into the Contribution's Freq), the
// organization-dependent capacitances and the leakage current are fixed
// by words×bits, and the swing mode picks between the EQ 7 rail-to-rail
// split and the EQ 8 partial-swing term.
func (s *SRAM) SweepForm(p model.Params) (*model.SweepForm, bool) {
	words, bits := p["words"], p["bits"]
	scale := model.CapScale(p[model.ParamTech])
	act := p["act"]
	full, bitline := s.split(words, bits)
	fullC := float64(full) * scale
	bitC := float64(bitline) * scale
	sf := &model.SweepForm{}
	switch p["swing"] {
	case RailToRail:
		sf.Dyn = []model.SweepTerm{
			{Csw: fullC, FMul: act},
			{Csw: bitC, FMul: act},
		}
	case ReducedSwing:
		sf.Dyn = []model.SweepTerm{
			{Csw: fullC, FMul: act},
			{Csw: bitC, Swing: p["vswing"], FMul: act},
		}
	default:
		return nil, false
	}
	if s.LeakPerCell > 0 {
		sf.Static = []float64{words * bits * float64(s.LeakPerCell)}
	}
	sf.Area = (words*bits*float64(s.CellArea) + float64(s.PeripheryArea)) * scale * scale
	sf.Delay0 = float64(s.Delay0) * (1 + 0.1*math.Log2(math.Max(words, 2)))
	return sf, true
}

// SweepForm implements model.SweepFormer.
func (r *RegisterFile) SweepForm(p model.Params) (*model.SweepForm, bool) {
	words, bits, act := p["words"], p["bits"], p["act"]
	scale := model.CapScale(p[model.ParamTech])
	return &model.SweepForm{
		Dyn: []model.SweepTerm{
			{Csw: act * bits * float64(r.CapPerBit) * scale, FMul: 1},
			{Csw: words * bits * float64(r.CapPerCell) * scale, FMul: 1},
		},
		Area:   words * bits * float64(r.CellArea) * scale * scale,
		Delay0: float64(r.Delay),
	}, true
}

// SweepForm implements model.SweepFormer.  The refresh term switches at
// an absolute frequency set by the organization and the refresh period,
// not by the swept clock, so it rides in FConst; a non-positive refresh
// period is an Evaluate-time error, which the scalar fallback reports.
func (d *DRAM) SweepForm(p model.Params) (*model.SweepForm, bool) {
	if d.RefreshPeriod <= 0 {
		return nil, false
	}
	words, bits := p["words"], p["bits"]
	scale := model.CapScale(p[model.ParamTech])
	ct := float64(d.C0) + words*float64(d.CWord) + bits*float64(d.CBit) + words*bits*float64(d.CWordBit)
	rowCap := bits * float64(d.CWordBit) * scale
	refreshFreq := words / float64(d.RefreshPeriod)
	return &model.SweepForm{
		Dyn: []model.SweepTerm{
			{Csw: ct * scale * p["act"], FMul: 1},
			{Csw: rowCap, FConst: refreshFreq},
		},
		Area:   words * bits * float64(d.CellArea) * scale * scale,
		Delay0: float64(d.Delay0) * (1 + 0.1*math.Log2(math.Max(words, 2))),
	}, true
}

// check interface satisfaction at compile time.
var (
	_ model.SweepFormer = (*SRAM)(nil)
	_ model.SweepFormer = (*RegisterFile)(nil)
	_ model.SweepFormer = (*DRAM)(nil)
)
