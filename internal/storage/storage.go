// Package storage implements the paper's memory power models.
//
// Small memories (pipeline registers, register files) reuse the
// computational-block strategy: capacitance linear in the number of
// storage bits.  Large memories (SRAM, DRAM) use the organization-aware
// model of EQ 7,
//
//	C_T = C0 + C1w·words + C1b·bits + C2·words·bits
//
// whose cross term captures the bit-line array.  Memories with reduced
// bit-line swings are inaccurate if modeled as a single rail-to-rail
// capacitance scaled by VDD²; EQ 8 splits the estimate into full-swing
// and partial-swing terms,
//
//	P = α { Cfullswing·VDD² + Cpartialswing·Vswing·VDD } f
//
// which fits the EQ 1 template directly.  Non-negligible short-circuit
// currents are handled the same way: Veendrick's direct-path charge is
// folded in as an effective capacitance.
package storage

import (
	"fmt"
	"math"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// Swing options for the SRAM bit-line array.
const (
	// RailToRail models the bit lines switching the full supply.
	RailToRail = 0
	// ReducedSwing models precharged bit lines with a limited swing
	// (EQ 8); the swing voltage is the "vswing" parameter.
	ReducedSwing = 1
)

// SRAM is the EQ 7 organization-aware memory model.  The four
// capacitance coefficients are characterized per library; the UCB
// low-power SRAM instance lives in package library.
type SRAM struct {
	// Name, Title, Doc identify the cell.
	Name, Title, Doc string
	// C0 is the organization-independent constant (periphery, control).
	C0 units.Farads
	// CWord is the per-word coefficient (row decode, word lines).
	CWord units.Farads
	// CBit is the per-output-bit coefficient (sense amps, data path).
	CBit units.Farads
	// CWordBit is the cross coefficient (bit-line array).
	CWordBit units.Farads
	// LeakPerCell is the static leakage per storage cell.
	LeakPerCell units.Amps
	// CellArea is layout area per storage cell; periphery is folded in
	// via PeripheryArea.
	CellArea units.SquareMeters
	// PeripheryArea is organization-independent area.
	PeripheryArea units.SquareMeters
	// Delay0 is the access time at the reference supply for a minimal
	// array; access time grows logarithmically with words.
	Delay0 units.Seconds
	// DefaultWords and DefaultBits seed the input form.
	DefaultWords, DefaultBits int
	// DefaultSwing selects the default bit-line mode (RailToRail or
	// ReducedSwing); library variants differ only here.
	DefaultSwing float64
}

// Info implements model.Model.
func (s *SRAM) Info() model.Info {
	dw, db := s.DefaultWords, s.DefaultBits
	if dw == 0 {
		dw = 256
	}
	if db == 0 {
		db = 8
	}
	return model.Info{
		Name:  s.Name,
		Title: s.Title,
		Class: model.Storage,
		Doc:   s.Doc,
		Params: model.WithStd(
			model.Param{Name: "words", Doc: "number of words", Default: float64(dw), Min: 1, Max: 1 << 26, Integer: true},
			model.Param{Name: "bits", Doc: "word width", Default: float64(db), Min: 1, Max: 1024, Integer: true},
			model.Param{Name: "swing", Doc: "bit-line swing mode", Default: s.DefaultSwing,
				Options: []model.Option{
					{Label: "rail-to-rail bit lines", Value: RailToRail},
					{Label: "reduced-swing bit lines (EQ 8)", Value: ReducedSwing},
				}},
			model.Param{Name: "vswing", Doc: "bit-line swing when reduced", Unit: "V", Default: 0.4, Min: 0.05, Max: 5},
			model.Param{Name: "act", Doc: "access activity (fraction of cycles with an access)", Default: 1, Min: 0, Max: 1},
		),
	}
}

// bitlineFraction is the share of the EQ 7 capacitance that physically
// lives on the bit lines and therefore swings Vswing instead of VDD in
// reduced-swing designs: the cross term plus the per-bit data path.
func (s *SRAM) split(words, bits float64) (full, bitline units.Farads) {
	bitline = units.Farads(words*bits*float64(s.CWordBit) + bits*float64(s.CBit))
	full = units.Farads(float64(s.C0) + words*float64(s.CWord))
	return full, bitline
}

// Evaluate implements model.Model.
func (s *SRAM) Evaluate(p model.Params) (*model.Estimate, error) {
	words, bits := p["words"], p["bits"]
	scale := model.CapScale(p[model.ParamTech])
	act := p["act"]
	f := units.Hertz(float64(p.Freq()) * act)
	full, bitline := s.split(words, bits)
	full = units.Farads(float64(full) * scale)
	bitline = units.Farads(float64(bitline) * scale)

	e := &model.Estimate{VDD: p.VDD()}
	switch p["swing"] {
	case RailToRail:
		e.AddCap("periphery+decode", full, f)
		e.AddCap("bit-line array", bitline, f)
	case ReducedSwing:
		e.AddCap("periphery+decode", full, f)
		e.AddSwing("bit-line array", bitline, units.Volts(p["vswing"]), f)
		e.Note("reduced-swing bit lines: characterized at more than one voltage level (EQ 8)")
	}
	if s.LeakPerCell > 0 {
		e.AddStatic("cell leakage", units.Amps(words*bits*float64(s.LeakPerCell)))
	}
	e.Area = units.SquareMeters((words*bits*float64(s.CellArea) + float64(s.PeripheryArea)) * scale * scale)
	e.Delay = units.Seconds(float64(s.Delay0) * (1 + 0.1*math.Log2(math.Max(words, 2))) * model.DelayScale(float64(p.VDD())))
	return e, nil
}

// RegisterFile models small storage with the computational-block
// strategy: clocked storage cells plus a decoded port.  C_T =
// bits·(CapPerBit + words·CapPerCell) per access, with the clock load on
// every cell every cycle.
type RegisterFile struct {
	// Name, Title, Doc identify the cell.
	Name, Title, Doc string
	// CapPerBit is data-path capacitance per accessed bit.
	CapPerBit units.Farads
	// CapPerCell is the per-cell clock/select load switched per cycle.
	CapPerCell units.Farads
	// CellArea is area per storage cell.
	CellArea units.SquareMeters
	// Delay is the access delay at reference supply.
	Delay units.Seconds
	// DefaultWords seeds the form; 1 models a pipeline register.
	DefaultWords int
}

// Info implements model.Model.
func (r *RegisterFile) Info() model.Info {
	dw := r.DefaultWords
	if dw == 0 {
		dw = 1
	}
	return model.Info{
		Name:  r.Name,
		Title: r.Title,
		Class: model.Storage,
		Doc:   r.Doc,
		Params: model.WithStd(
			model.Param{Name: "words", Doc: "number of registers", Default: float64(dw), Min: 1, Max: 4096, Integer: true},
			model.Param{Name: "bits", Doc: "register width", Default: 8, Min: 1, Max: 256, Integer: true},
			model.Param{Name: "act", Doc: "data activity per bit", Default: 0.5, Min: 0, Max: 1},
		),
	}
}

// Evaluate implements model.Model.
func (r *RegisterFile) Evaluate(p model.Params) (*model.Estimate, error) {
	words, bits, act := p["words"], p["bits"], p["act"]
	scale := model.CapScale(p[model.ParamTech])
	e := &model.Estimate{VDD: p.VDD()}
	// Data path switches with activity; clock load switches every cycle
	// (the paper notes clock capacitance is included in each block).
	e.AddCap("data path", units.Farads(act*bits*float64(r.CapPerBit)*scale), p.Freq())
	e.AddCap("clock+select", units.Farads(words*bits*float64(r.CapPerCell)*scale), p.Freq())
	e.Area = units.SquareMeters(words * bits * float64(r.CellArea) * scale * scale)
	e.Delay = units.Seconds(float64(r.Delay) * model.DelayScale(float64(p.VDD())))
	return e, nil
}

// DRAM is a first-order dynamic memory model: EQ 7 access capacitance
// plus a refresh term that burns power even when idle.
type DRAM struct {
	// Name, Title, Doc identify the cell.
	Name, Title, Doc string
	// C0, CWord, CBit, CWordBit are the EQ 7 coefficients.
	C0, CWord, CBit, CWordBit units.Farads
	// RefreshPeriod is the time within which every row is refreshed.
	RefreshPeriod units.Seconds
	// CellArea is per-cell area.
	CellArea units.SquareMeters
	// Delay0 is the access delay for a minimal array.
	Delay0 units.Seconds
}

// Info implements model.Model.
func (d *DRAM) Info() model.Info {
	return model.Info{
		Name:  d.Name,
		Title: d.Title,
		Class: model.Storage,
		Doc:   d.Doc,
		Params: model.WithStd(
			model.Param{Name: "words", Doc: "number of words (rows × columns/bits)", Default: 1 << 16, Min: 1, Max: 1 << 28, Integer: true},
			model.Param{Name: "bits", Doc: "word width", Default: 16, Min: 1, Max: 1024, Integer: true},
			model.Param{Name: "act", Doc: "access activity", Default: 1, Min: 0, Max: 1},
		),
	}
}

// Evaluate implements model.Model.
func (d *DRAM) Evaluate(p model.Params) (*model.Estimate, error) {
	if d.RefreshPeriod <= 0 {
		return nil, fmt.Errorf("dram %q: refresh period must be positive", d.Name)
	}
	words, bits := p["words"], p["bits"]
	scale := model.CapScale(p[model.ParamTech])
	ct := float64(d.C0) + words*float64(d.CWord) + bits*float64(d.CBit) + words*bits*float64(d.CWordBit)
	e := &model.Estimate{VDD: p.VDD()}
	e.AddCap("access", units.Farads(ct*scale*p["act"]), p.Freq())
	// Refresh: every word rewritten once per period; each refresh costs
	// roughly a row access of the cross-term capacitance.
	rowCap := bits * float64(d.CWordBit) * scale
	refreshFreq := words / float64(d.RefreshPeriod)
	e.AddCap("refresh", units.Farads(rowCap), units.Hertz(refreshFreq))
	e.Area = units.SquareMeters(words * bits * float64(d.CellArea) * scale * scale)
	e.Delay = units.Seconds(float64(d.Delay0) * (1 + 0.1*math.Log2(math.Max(words, 2))) * model.DelayScale(float64(p.VDD())))
	return e, nil
}

var (
	_ model.Model = (*SRAM)(nil)
	_ model.Model = (*RegisterFile)(nil)
	_ model.Model = (*DRAM)(nil)
)
