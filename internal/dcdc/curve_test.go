package dcdc

import (
	"math"
	"testing"
	"testing/quick"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

func TestCurveInterpolation(t *testing.T) {
	c := &Curve{
		Name: "buck", Rated: 2,
		Points: []EffPoint{{1.0, 0.85}, {0.5, 0.82}, {0.1, 0.66}}, // unsorted on purpose
	}
	// Exact sample points.
	for _, tc := range []struct{ load, want float64 }{
		{2.0, 0.85}, {1.0, 0.82}, {0.2, 0.66},
	} {
		got, err := c.Efficiency(units.Watts(tc.load))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("eta(%v) = %v, want %v", tc.load, got, tc.want)
		}
	}
	// Midpoint between 0.5 and 1.0 load fraction.
	got, _ := c.Efficiency(1.5) // frac 0.75
	if math.Abs(got-0.835) > 1e-12 {
		t.Errorf("interpolated eta = %v, want 0.835", got)
	}
	// Clamping outside the characterized range.
	if got, _ := c.Efficiency(0.01); got != 0.66 {
		t.Errorf("below range: %v", got)
	}
	if got, _ := c.Efficiency(10); got != 0.85 {
		t.Errorf("above range: %v", got)
	}
}

func TestCurveValidation(t *testing.T) {
	if _, err := (&Curve{Name: "x", Rated: 1}).Efficiency(1); err == nil {
		t.Error("no points should fail")
	}
	if _, err := (&Curve{Name: "x", Points: []EffPoint{{1, 0.8}}}).Efficiency(1); err == nil {
		t.Error("no rated load should fail")
	}
	bad := &Curve{Name: "x", Rated: 1, Points: []EffPoint{{1, 1.5}}}
	if _, err := bad.Efficiency(1); err == nil {
		t.Error("eta > 1 should fail")
	}
}

func TestTypicalBuckModel(t *testing.T) {
	c := NewTypicalBuck("maxim.buck", "Buck converter", 2)
	// At rated load: 85% efficient.
	est, err := model.Evaluate(c, model.Params{"pload": 2, "rated": 2, "vdd": 6})
	if err != nil {
		t.Fatal(err)
	}
	wantLoss := 2 * (1 - 0.85) / 0.85
	if math.Abs(float64(est.Power())-wantLoss) > 1e-9 {
		t.Errorf("rated loss = %v, want %v", est.Power(), wantLoss)
	}
	// At 5% load the efficiency collapses to 55%: relative loss is much
	// worse than the constant-η model predicts.
	light, err := model.Evaluate(c, model.Params{"pload": 0.1, "rated": 2, "vdd": 6})
	if err != nil {
		t.Fatal(err)
	}
	constEta, _ := Dissipation(0.1, 0.85)
	if float64(light.Power()) <= float64(constEta)*1.5 {
		t.Errorf("light-load loss %v should far exceed constant-η %v", light.Power(), constEta)
	}
	// Defaults evaluate.
	if _, err := model.Evaluate(c, nil); err != nil {
		t.Errorf("defaults: %v", err)
	}
}

// Property: interpolated efficiency always lies within the range of
// the characteristic's samples, for any query.
func TestQuickCurveBounded(t *testing.T) {
	c := NewTypicalBuck("b", "b", 1)
	lo, hi := 1.0, 0.0
	for _, p := range c.Points {
		lo = math.Min(lo, p.Eta)
		hi = math.Max(hi, p.Eta)
	}
	f := func(raw uint16) bool {
		load := float64(raw) / 65535 * 3 // 0..3x rated
		eta, err := c.Efficiency(units.Watts(load))
		if err != nil {
			return false
		}
		return eta >= lo-1e-12 && eta <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Evaluate never mutates the receiver (reentrancy).
func TestCurveEvaluateReentrant(t *testing.T) {
	c := NewTypicalBuck("b", "b", 2)
	before := make([]EffPoint, len(c.Points))
	copy(before, c.Points)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_, _ = model.Evaluate(c, model.Params{"pload": float64(i) / 50, "rated": 1})
		}
	}()
	for i := 0; i < 100; i++ {
		_, _ = model.Evaluate(c, model.Params{"pload": float64(i) / 25, "rated": 3})
	}
	<-done
	for i := range before {
		if c.Points[i] != before[i] {
			t.Fatal("Evaluate mutated the characteristic")
		}
	}
}
