// Package dcdc implements the paper's DC-DC converter model.
//
// A converter is specified by the power it delivers to its load and by
// its conversion efficiency (EQ 18),
//
//	η ≡ P_load / P_in = P_load / (P_load + P_diss)
//
// so that under the first-order assumption of constant efficiency the
// converter's own dissipation is (EQ 19)
//
//	P_diss = P_load · (1 − η) / η
//
// This is the paper's example of inter-model interaction: in a design
// sheet the load power is normally an expression over sibling modules —
// power("custom") + power("radio") — so re-exploring any chip parameter
// automatically re-prices the converter feeding it.
package dcdc

import (
	"fmt"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// Dissipation evaluates EQ 19 for a load power and efficiency in (0,1].
func Dissipation(pload units.Watts, eta float64) (units.Watts, error) {
	if eta <= 0 || eta > 1 {
		return 0, fmt.Errorf("dcdc: efficiency %g outside (0, 1]", eta)
	}
	if pload < 0 {
		return 0, fmt.Errorf("dcdc: negative load power %v", pload)
	}
	return units.Watts(float64(pload) * (1 - eta) / eta), nil
}

// InputPower returns the total power drawn from the converter's source:
// load plus dissipation.
func InputPower(pload units.Watts, eta float64) (units.Watts, error) {
	d, err := Dissipation(pload, eta)
	if err != nil {
		return 0, err
	}
	return pload + d, nil
}

// Converter is the library model.  In a sheet, "pload" is bound to an
// expression summing the powers of the modules the converter feeds.
type Converter struct {
	// Name, Title, Doc identify the cell.
	Name, Title, Doc string
	// DefaultEta seeds the efficiency parameter (e.g. 0.8 for the
	// InfoPad's converters).
	DefaultEta float64
}

// Info implements model.Model.
func (c *Converter) Info() model.Info {
	eta := c.DefaultEta
	if eta == 0 {
		eta = 0.9
	}
	return model.Info{
		Name:  c.Name,
		Title: c.Title,
		Class: model.Converter,
		Doc:   c.Doc,
		Params: model.WithStd(
			model.Param{Name: "pload", Doc: "power delivered to the load (bind to power(...) of fed modules)", Unit: "W", Default: 1, Min: 0, Max: 1e6},
			model.Param{Name: "eta", Doc: "conversion efficiency η", Default: eta, Min: 0.01, Max: 1},
		),
	}
}

// Evaluate implements model.Model.  Only the converter's own dissipation
// is reported — the load's power is accounted for by the load's row —
// expressed as a static draw from the input supply so it fits EQ 1.
func (c *Converter) Evaluate(p model.Params) (*model.Estimate, error) {
	diss, err := Dissipation(units.Watts(p["pload"]), p["eta"])
	if err != nil {
		return nil, err
	}
	vdd := p.VDD()
	e := &model.Estimate{VDD: vdd}
	if vdd > 0 {
		e.AddStatic("conversion loss", units.Amps(float64(diss)/float64(vdd)))
	}
	e.Note("EQ 19: η=%.0f%%, load %s, input %s", p["eta"]*100,
		units.Watts(p["pload"]), units.Watts(p["pload"]+float64(diss)))
	return e, nil
}

var _ model.Model = (*Converter)(nil)
