package dcdc

import (
	"fmt"
	"sort"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// The paper notes that converter efficiency "is a function of
// temperature, input voltage, and load power for varying loads, but in
// many applications it can be assumed constant to the first order."
// Curve is the second-order model: a measured η(load) characteristic,
// interpolated piecewise-linearly, so duty-cycled systems price the
// light-load efficiency collapse that the constant-η assumption hides.

// EffPoint is one sample of the efficiency characteristic.
type EffPoint struct {
	// LoadFrac is the load as a fraction of the rated load.
	LoadFrac float64
	// Eta is the measured efficiency at that point.
	Eta float64
}

// Curve is a converter with a measured efficiency characteristic.
type Curve struct {
	// Name, Title, Doc identify the part.
	Name, Title, Doc string
	// Rated is the design load.
	Rated units.Watts
	// Points sample η(load/rated); order does not matter.  Queries
	// clamp to the endpoints.
	Points []EffPoint
}

// typicalBuckCurve is the shape of a mid-90s buck regulator: poor at
// light load (switching overhead dominates), peaking near rated load.
func typicalBuckCurve() []EffPoint {
	return []EffPoint{
		{0.01, 0.30}, {0.05, 0.55}, {0.10, 0.66}, {0.25, 0.76},
		{0.50, 0.82}, {0.75, 0.84}, {1.00, 0.85}, {1.25, 0.83},
	}
}

// NewTypicalBuck builds a Curve with the default characteristic.
func NewTypicalBuck(name, title string, rated units.Watts) *Curve {
	return &Curve{
		Name: name, Title: title,
		Doc: "Buck converter with measured efficiency vs load: light loads " +
			"pay the switching overhead, so a constant-η model misprices " +
			"duty-cycled systems (second-order EQ 18).",
		Rated:  rated,
		Points: typicalBuckCurve(),
	}
}

// Efficiency interpolates the characteristic at a load power against
// the part's rated load.
func (c *Curve) Efficiency(load units.Watts) (float64, error) {
	return c.efficiencyAt(float64(load), float64(c.Rated))
}

// efficiencyAt is the reentrant core: it never mutates the receiver,
// so concurrent sheet evaluations are safe.
func (c *Curve) efficiencyAt(load, rated float64) (float64, error) {
	if len(c.Points) == 0 {
		return 0, fmt.Errorf("dcdc: converter %q has no efficiency points", c.Name)
	}
	if rated <= 0 {
		return 0, fmt.Errorf("dcdc: converter %q has no rated load", c.Name)
	}
	pts := make([]EffPoint, len(c.Points))
	copy(pts, c.Points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].LoadFrac < pts[j].LoadFrac })
	for _, p := range pts {
		if p.Eta <= 0 || p.Eta > 1 || p.LoadFrac < 0 {
			return 0, fmt.Errorf("dcdc: converter %q has invalid point %+v", c.Name, p)
		}
	}
	frac := load / rated
	if frac <= pts[0].LoadFrac {
		return pts[0].Eta, nil
	}
	last := pts[len(pts)-1]
	if frac >= last.LoadFrac {
		return last.Eta, nil
	}
	for i := 1; i < len(pts); i++ {
		if frac <= pts[i].LoadFrac {
			a, b := pts[i-1], pts[i]
			t := (frac - a.LoadFrac) / (b.LoadFrac - a.LoadFrac)
			return a.Eta + t*(b.Eta-a.Eta), nil
		}
	}
	return last.Eta, nil
}

// Info implements model.Model.
func (c *Curve) Info() model.Info {
	return model.Info{
		Name:  c.Name,
		Title: c.Title,
		Class: model.Converter,
		Doc:   c.Doc,
		Params: model.WithStd(
			model.Param{Name: "pload", Doc: "power delivered to the load (bind to power(...))", Unit: "W", Default: float64(c.Rated), Min: 0, Max: 1e6},
			model.Param{Name: "rated", Doc: "rated (design) load", Unit: "W", Default: float64(c.Rated), Min: 1e-6, Max: 1e6},
		),
	}
}

// Evaluate implements model.Model.
func (c *Curve) Evaluate(p model.Params) (*model.Estimate, error) {
	eta, err := c.efficiencyAt(p["pload"], p["rated"])
	if err != nil {
		return nil, err
	}
	diss, err := Dissipation(units.Watts(p["pload"]), eta)
	if err != nil {
		return nil, err
	}
	vdd := p.VDD()
	e := &model.Estimate{VDD: vdd}
	if vdd > 0 {
		e.AddStatic("conversion loss", units.Amps(float64(diss)/float64(vdd)))
	}
	e.Note("η(load) characteristic: %.1f%% at %.0f%% of rated load",
		eta*100, 100*p["pload"]/p["rated"])
	return e, nil
}

var _ model.Model = (*Curve)(nil)
