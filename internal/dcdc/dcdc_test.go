package dcdc

import (
	"math"
	"testing"
	"testing/quick"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestDissipationEQ19(t *testing.T) {
	// 80% efficient converter feeding 1 W dissipates 0.25 W.
	d, err := Dissipation(1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(float64(d), 0.25) {
		t.Errorf("Pdiss = %v, want 0.25", d)
	}
	// Ideal converter dissipates nothing.
	d, err = Dissipation(1, 1)
	if err != nil || d != 0 {
		t.Errorf("ideal converter: %v, %v", d, err)
	}
	// Zero load dissipates nothing (first-order model).
	d, err = Dissipation(0, 0.8)
	if err != nil || d != 0 {
		t.Errorf("zero load: %v, %v", d, err)
	}
	// Errors.
	for _, eta := range []float64{0, -0.5, 1.5} {
		if _, err := Dissipation(1, eta); err == nil {
			t.Errorf("eta=%v should fail", eta)
		}
	}
	if _, err := Dissipation(-1, 0.8); err == nil {
		t.Error("negative load should fail")
	}
}

func TestInputPowerEQ18(t *testing.T) {
	// EQ 18 identity: η = Pload / Pin.
	pin, err := InputPower(2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(2/float64(pin), 0.8) {
		t.Errorf("η recovered = %v, want 0.8", 2/float64(pin))
	}
}

// Property: EQ 18 and EQ 19 agree for any valid load and efficiency.
func TestQuickEfficiencyIdentity(t *testing.T) {
	f := func(rawP, rawE uint16) bool {
		pload := units.Watts(float64(rawP) / 65535 * 100)
		eta := 0.05 + float64(rawE)/65535*0.95
		if eta > 1 {
			eta = 1
		}
		diss, err := Dissipation(pload, eta)
		if err != nil {
			return false
		}
		pin := float64(pload) + float64(diss)
		if pin == 0 {
			return pload == 0
		}
		return almost(float64(pload)/pin, eta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestConverterModel(t *testing.T) {
	c := &Converter{Name: "maxim.buck", DefaultEta: 0.8}
	e, err := model.Evaluate(c, model.Params{"pload": 1.273, "vdd": 6})
	if err != nil {
		t.Fatal(err)
	}
	// Only the loss is reported; the load is its own row.
	want := 1.273 * 0.25
	if got := float64(e.Power()); !almost(got, want) {
		t.Errorf("converter row power = %v, want %v", got, want)
	}
	if float64(e.DynamicPower()) != 0 {
		t.Error("converter model is a static draw")
	}
	// Bad efficiency rejected through validation bounds.
	if _, err := model.Evaluate(c, model.Params{"eta": 0}); err == nil {
		t.Error("eta=0 should fail validation")
	}
	// Zero supply still evaluates (no static term representable).
	e0, err := model.Evaluate(c, model.Params{"pload": 1, "vdd": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if float64(e0.Power()) <= 0 {
		t.Error("loss should be positive at positive supply")
	}
}

func TestConverterIntermodelShape(t *testing.T) {
	// Doubling the fed modules' power doubles the converter loss —
	// the inter-model interaction the sheet relies on.
	c := &Converter{Name: "x", DefaultEta: 0.8}
	e1, _ := model.Evaluate(c, model.Params{"pload": 1, "vdd": 6})
	e2, _ := model.Evaluate(c, model.Params{"pload": 2, "vdd": 6})
	if !almost(2*float64(e1.Power()), float64(e2.Power())) {
		t.Error("loss should be linear in load")
	}
}
