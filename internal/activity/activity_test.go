package activity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSignActivity(t *testing.T) {
	cases := []struct{ rho, want float64 }{
		{0, 0.5},
		{1, 0},
		{-1, 1},
		{0.5, math.Acos(0.5) / math.Pi},
		{2, 0},  // clamped
		{-2, 1}, // clamped
	}
	for _, c := range cases {
		if got := SignActivity(c.rho); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SignActivity(%v) = %v, want %v", c.rho, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Stats{Std: 1, Rho: 0}).Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []Stats{{Std: 0}, {Std: -1}, {Std: 1, Rho: 1}, {Std: 1, Rho: -1.5}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v should fail", bad)
		}
	}
}

func TestBreakpointsOrdering(t *testing.T) {
	s := Stats{Mean: 0, Std: 256, Rho: 0.9}
	bp0, bp1 := s.Breakpoints()
	if bp0 != 8 {
		t.Errorf("BP0 = %v, want log2(256)=8", bp0)
	}
	if bp1 <= bp0 {
		t.Errorf("BP1 (%v) should exceed BP0 (%v)", bp1, bp0)
	}
	// A large mean pushes the sign region up.
	biased := Stats{Mean: 1 << 14, Std: 256, Rho: 0.9}
	_, bp1b := biased.Breakpoints()
	if bp1b <= bp1 {
		t.Error("bias should raise BP1")
	}
}

func TestProfileShape(t *testing.T) {
	s := Stats{Std: 256, Rho: 0.95}
	prof := s.Profile(16)
	if prof[0] != 0.5 || prof[1] != 0.5 {
		t.Errorf("LSBs should be random: %v", prof[:4])
	}
	msb := SignActivity(0.95)
	if math.Abs(prof[15]-msb) > 1e-12 {
		t.Errorf("MSB = %v, want %v", prof[15], msb)
	}
	// Positive correlation: activity decreases monotonically toward the
	// sign region.
	for i := 1; i < len(prof); i++ {
		if prof[i] > prof[i-1]+1e-12 {
			t.Errorf("profile should be non-increasing for rho>0: %v", prof)
		}
	}
}

func TestWordActivityAndScale(t *testing.T) {
	// White noise over the full word: everything random.
	white := Stats{Std: 1 << 14, Rho: 0}
	if got := white.WordActivity(16); math.Abs(got-0.5) > 0.05 {
		t.Errorf("white word activity = %v", got)
	}
	if got := white.ActScale(16); math.Abs(got-1) > 0.1 {
		t.Errorf("white ActScale = %v", got)
	}
	// Strongly correlated narrow signal in a wide word: far below 1.
	narrow := Stats{Std: 16, Rho: 0.99}
	if got := narrow.ActScale(16); got > 0.6 {
		t.Errorf("correlated ActScale = %v, want well under 1", got)
	}
	if (Stats{Std: 1}).WordActivity(0) != 0 {
		t.Error("zero-width word")
	}
}

// The core empirical claim: DBT matches measured per-bit activities of
// AR(1) streams in both limiting regions.
func TestDBTMatchesMeasurement(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, rho := range []float64{0, 0.5, 0.9, -0.5} {
		s := Stats{Mean: 0, Std: 1024, Rho: rho}
		samples := GenerateAR1(rng, 200000, s)
		meas := Measure(samples, 16)
		// LSB region: bits 0..7 (BP0 = 10) behave randomly.
		for b := 0; b <= 7; b++ {
			if math.Abs(meas[b]-0.5) > 0.03 {
				t.Errorf("rho=%v bit %d measured %v, want ~0.5", rho, b, meas[b])
			}
		}
		// Sign region: bits 13..15 (BP1 = log2(3072) ≈ 11.6).
		want := SignActivity(rho)
		for b := 13; b <= 15; b++ {
			if math.Abs(meas[b]-want) > 0.03 {
				t.Errorf("rho=%v bit %d measured %v, want ~%v", rho, b, meas[b], want)
			}
		}
	}
}

// Property: the DBT word activity never exceeds the random-data bound
// for positively correlated signals, and the model's profile stays in
// [0, 1].
func TestQuickProfileBounds(t *testing.T) {
	f := func(rawRho, rawStd uint8, rawMean int8) bool {
		s := Stats{
			Mean: float64(rawMean) * 16,
			Std:  1 + float64(rawStd)*8,
			Rho:  float64(rawRho) / 256, // [0, 1)
		}
		for _, a := range s.Profile(24) {
			if a < 0 || a > 1 {
				return false
			}
		}
		return s.WordActivity(24) <= 0.5+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeasureDegenerate(t *testing.T) {
	if got := Measure(nil, 8); len(got) != 8 {
		t.Error("nil samples")
	}
	got := Measure([]int64{5}, 8)
	for _, v := range got {
		if v != 0 {
			t.Error("single sample has no transitions")
		}
	}
	// A constant stream has zero activity everywhere.
	got = Measure([]int64{7, 7, 7, 7}, 8)
	for _, v := range got {
		if v != 0 {
			t.Error("constant stream")
		}
	}
	// An alternating stream toggles its differing bits every cycle.
	got = Measure([]int64{0, 1, 0, 1}, 2)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("alternating = %v", got)
	}
}

func TestGenerateAR1Statistics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := Stats{Mean: 100, Std: 50, Rho: 0.8}
	x := GenerateAR1(rng, 100000, s)
	var sum, sq float64
	for _, v := range x {
		sum += float64(v)
	}
	mean := sum / float64(len(x))
	for _, v := range x {
		d := float64(v) - mean
		sq += d * d
	}
	std := math.Sqrt(sq / float64(len(x)))
	if math.Abs(mean-100) > 2 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(std-50) > 2 {
		t.Errorf("std = %v", std)
	}
	// Lag-1 autocorrelation.
	var cov float64
	for t1 := 1; t1 < len(x); t1++ {
		cov += (float64(x[t1]) - mean) * (float64(x[t1-1]) - mean)
	}
	rho := cov / float64(len(x)-1) / (std * std)
	if math.Abs(rho-0.8) > 0.02 {
		t.Errorf("rho = %v", rho)
	}
}
