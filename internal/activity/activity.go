// Package activity implements Landman's dual-bit-type (DBT) word-level
// activity model: the "signal-correlation characteristics" parameter
// the paper's design example sets when customizing a cell.
//
// Real datapath signals are not white noise.  In a two's-complement
// word carrying a correlated, possibly biased signal, the low-order
// bits behave like uniform random data (transition probability 1/2 per
// cycle) while the high-order bits all copy the sign, whose transition
// probability depends on the word-level statistics: for a stationary
// Gaussian sequence with lag-1 correlation ρ, the exact sign-flip
// probability is arccos(ρ)/π.  Landman's DBT model captures the whole
// word with two breakpoints,
//
//	BP0 = log2 σ                 (top of the random region)
//	BP1 = log2(|µ| + 3σ)         (bottom of the sign region)
//
// linear activity interpolation between them, and the two limiting
// activities above.  The resulting per-bit activity profile converts a
// signal specification into the "act" parameter of the library's
// capacitance models — which is how PowerPlay prices a multiplier
// differently for correlated and uncorrelated inputs.
package activity

import (
	"fmt"
	"math"
	"math/rand"
)

// Stats is a word-level signal description.
type Stats struct {
	// Mean is the signal's DC value µ.
	Mean float64
	// Std is the standard deviation σ (> 0).
	Std float64
	// Rho is the lag-1 temporal correlation ρ in (-1, 1).
	Rho float64
}

// Validate checks the description.
func (s Stats) Validate() error {
	if !(s.Std > 0) {
		return fmt.Errorf("activity: std must be positive, got %g", s.Std)
	}
	if !(s.Rho > -1 && s.Rho < 1) {
		return fmt.Errorf("activity: rho must be in (-1, 1), got %g", s.Rho)
	}
	return nil
}

// SignActivity returns the transition probability of the sign bit of a
// stationary Gaussian sequence with lag-1 correlation rho:
// arccos(ρ)/π.  White noise (ρ=0) gives 1/2; strong positive
// correlation drives it toward 0; anticorrelation toward 1.
func SignActivity(rho float64) float64 {
	if rho >= 1 {
		return 0
	}
	if rho <= -1 {
		return 1
	}
	return math.Acos(rho) / math.Pi
}

// Breakpoints returns the DBT region boundaries in bit positions.
func (s Stats) Breakpoints() (bp0, bp1 float64) {
	bp0 = math.Log2(s.Std)
	bp1 = math.Log2(math.Abs(s.Mean) + 3*s.Std)
	if bp1 < bp0 {
		bp1 = bp0
	}
	return bp0, bp1
}

// BitActivity returns the DBT transition probability of bit position
// bit (0 = LSB).
func (s Stats) BitActivity(bit int) float64 {
	bp0, bp1 := s.Breakpoints()
	b := float64(bit)
	msb := SignActivity(s.Rho)
	switch {
	case b <= bp0:
		return 0.5
	case b >= bp1:
		return msb
	default:
		frac := (b - bp0) / (bp1 - bp0)
		return 0.5 + frac*(msb-0.5)
	}
}

// Profile returns the per-bit activities of a width-bit word, LSB
// first.
func (s Stats) Profile(bits int) []float64 {
	out := make([]float64, bits)
	for i := range out {
		out[i] = s.BitActivity(i)
	}
	return out
}

// WordActivity returns the mean per-bit activity of a width-bit word:
// the number the sheet plugs into a cell's "act" parameter after
// normalizing (see ActScale).
func (s Stats) WordActivity(bits int) float64 {
	if bits <= 0 {
		return 0
	}
	var sum float64
	for _, a := range s.Profile(bits) {
		sum += a
	}
	return sum / float64(bits)
}

// ActScale converts a word activity into the activity scale factor of
// the library's Landman cells, whose coefficients were characterized
// with random (α = 1/2 per bit) data: act = ᾱ / 0.5.
func (s Stats) ActScale(bits int) float64 {
	return s.WordActivity(bits) / 0.5
}

// GenerateAR1 produces n samples of a lag-1 Gaussian (AR(1)) sequence
// with the given statistics, quantized to integers — the synthetic
// stream the empirical checks run on.
func GenerateAR1(rng *rand.Rand, n int, s Stats) []int64 {
	out := make([]int64, n)
	// x_{t+1} = ρ·x_t + sqrt(1-ρ²)·w, stationary with unit variance.
	x := rng.NormFloat64()
	drive := math.Sqrt(1 - s.Rho*s.Rho)
	for i := range out {
		out[i] = int64(math.Round(s.Mean + s.Std*x))
		x = s.Rho*x + drive*rng.NormFloat64()
	}
	return out
}

// Measure counts the observed per-bit transition probabilities of a
// two's-complement sample stream: the empirical ground truth the DBT
// model approximates.
func Measure(samples []int64, bits int) []float64 {
	out := make([]float64, bits)
	if len(samples) < 2 {
		return out
	}
	for t := 1; t < len(samples); t++ {
		diff := uint64(samples[t-1]) ^ uint64(samples[t])
		for b := 0; b < bits; b++ {
			if diff>>uint(b)&1 == 1 {
				out[b]++
			}
		}
	}
	n := float64(len(samples) - 1)
	for b := range out {
		out[b] /= n
	}
	return out
}
