package analog

import (
	"math"
	"testing"
	"testing/quick"

	"powerplay/internal/core/model"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestVT(t *testing.T) {
	if !almost(VT(300), 0.02585) {
		t.Errorf("VT(300) = %v", VT(300))
	}
	if VT(400) <= VT(300) {
		t.Error("thermal voltage should grow with temperature")
	}
}

func TestBiasEQ13(t *testing.T) {
	b := &Bias{Name: "analog.bias", Branches: 3}
	e, err := model.Evaluate(b, model.Params{"ibias": 200e-6, "vdd": 3.3})
	if err != nil {
		t.Fatal(err)
	}
	// EQ 13: P = V · ΣI, linear in supply.
	want := 3.3 * 3 * 200e-6
	if got := float64(e.Power()); !almost(got, want) {
		t.Errorf("P = %v, want %v", got, want)
	}
	if float64(e.DynamicPower()) != 0 {
		t.Error("analog model should have no capacitive term")
	}
	// Linear — not quadratic — in supply.
	e2, _ := model.Evaluate(b, model.Params{"ibias": 200e-6, "vdd": 6.6})
	if !almost(float64(e2.Power()), 2*want) {
		t.Errorf("doubling supply should double analog power: %v", e2.Power())
	}
}

func TestAmpByIbias(t *testing.T) {
	a := &TransconductanceAmp{Name: "analog.ota"}
	e, err := model.Evaluate(a, model.Params{"spec": ByIbias, "ibias": 100e-6, "vdd": 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(e.Power()); !almost(got, 3*100e-6) {
		t.Errorf("P = %v, want 300uW", got)
	}
}

func TestAmpByGmEQ17(t *testing.T) {
	a := &TransconductanceAmp{Name: "analog.ota"}
	gm := 1e-3
	e, err := model.Evaluate(a, model.Params{"spec": ByGm, "gm": gm, "vdd": 3, "temp": 300})
	if err != nil {
		t.Fatal(err)
	}
	// EQ 17: P = 2·V·(kT/q)·Gm.
	want := 2 * 3 * VT(300) * gm
	if got := float64(e.Power()); !almost(got, want) {
		t.Errorf("P = %v, want %v", got, want)
	}
}

func TestAmpByRidEQ15(t *testing.T) {
	a := &TransconductanceAmp{Name: "analog.ota"}
	p := model.Params{"spec": ByRid, "rid": 200e3, "beta0": 100, "temp": 300}
	full, err := model.Validate(a.Info().Params, p)
	if err != nil {
		t.Fatal(err)
	}
	i, err := a.TailCurrent(full)
	if err != nil {
		t.Fatal(err)
	}
	// EQ 15 solved for Ibias, then substituted back: Rid must hold.
	rid := 4 * VT(300) * 100 / i
	if !almost(rid, 200e3) {
		t.Errorf("round-trip Rid = %v", rid)
	}
	// Lower impedance spec needs more current.
	p2 := full.Clone()
	p2["rid"] = 100e3
	i2, _ := a.TailCurrent(p2)
	if i2 <= i {
		t.Error("halving Rid should raise the bias current")
	}
}

func TestAmpByRoEQ16(t *testing.T) {
	a := &TransconductanceAmp{Name: "analog.ota"}
	full, err := model.Validate(a.Info().Params, model.Params{"spec": ByRo, "ro": 500e3, "va": 50})
	if err != nil {
		t.Fatal(err)
	}
	i, err := a.TailCurrent(full)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(i, 50/500e3) {
		t.Errorf("Ibias = %v, want V_A/Ro = 100uA", i)
	}
}

// Property: the Gm-specified amplifier burns power proportional to the
// specified transconductance — the EQ 17 performance/power trade.
func TestQuickGmLinear(t *testing.T) {
	a := &TransconductanceAmp{Name: "x"}
	f := func(raw uint16) bool {
		gm := 1e-5 + float64(raw)/65535*1e-2
		e1, err1 := model.Evaluate(a, model.Params{"spec": ByGm, "gm": gm})
		e2, err2 := model.Evaluate(a, model.Params{"spec": ByGm, "gm": 2 * gm})
		if err1 != nil || err2 != nil {
			return false
		}
		return almost(2*float64(e1.Power()), float64(e2.Power()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCMOSOTASquareLaw(t *testing.T) {
	a := &CMOSOTA{Name: "analog.ota.cmos"}
	// gm = 1mA/V with k'=50µ, W/L=20: I_tail = 1e-6/(50e-6·20) = 1 mA.
	full, err := model.Validate(a.Info().Params, model.Params{"spec": ByGm, "gm": 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	i, err := a.TailCurrent(full)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(i, 1e-3) {
		t.Errorf("I_tail = %v, want 1mA", i)
	}
	// Power includes the mirror branches (default 2) at the supply.
	est, err := model.Evaluate(a, model.Params{"spec": ByGm, "gm": 1e-3, "vdd": 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(float64(est.Power()), 3*2e-3) {
		t.Errorf("P = %v, want 6mW", est.Power())
	}
	// Square law: doubling gm quadruples the current (vs the bipolar
	// pair's linear EQ 17 relationship) — MOS pays more for speed.
	est2, err := model.Evaluate(a, model.Params{"spec": ByGm, "gm": 2e-3, "vdd": 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(float64(est2.Power()), 4*float64(est.Power())) {
		t.Errorf("square law: %v vs %v", est2.Power(), est.Power())
	}
	// Direct bias spec passes through.
	est3, err := model.Evaluate(a, model.Params{"spec": ByIbias, "ibias": 200e-6, "vdd": 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(float64(est3.Power()), 3*400e-6) {
		t.Errorf("ibias spec: %v", est3.Power())
	}
}

func TestCMOSvsBipolarEfficiency(t *testing.T) {
	// At equal Gm = 1 mA/V the bipolar pair needs 2·Vt·Gm ≈ 52 µA while
	// the square-law OTA needs 1 mA: the classic gm/I advantage of
	// bipolar, visible straight from the models.
	bip := &TransconductanceAmp{Name: "b"}
	mos := &CMOSOTA{Name: "m"}
	eb, err := model.Evaluate(bip, model.Params{"spec": ByGm, "gm": 1e-3, "vdd": 3})
	if err != nil {
		t.Fatal(err)
	}
	em, err := model.Evaluate(mos, model.Params{"spec": ByGm, "gm": 1e-3, "vdd": 3})
	if err != nil {
		t.Fatal(err)
	}
	if float64(em.Power()) < 5*float64(eb.Power()) {
		t.Errorf("MOS (%v) should cost several times bipolar (%v) at equal Gm", em.Power(), eb.Power())
	}
}

func TestAmpDefaults(t *testing.T) {
	a := &TransconductanceAmp{Name: "x"}
	e, err := model.Evaluate(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Notes) == 0 {
		t.Error("amplifier should document its bias point")
	}
}
