// Package analog implements the paper's analog power models.
//
// Analog power is dominated by static bias currents rather than
// capacitive switching, so the estimate is the linear sum
//
//	P_analog = Vsupply · Σᵢ I_bias,ᵢ        (EQ 13)
//
// which is EQ 1 with only static terms.  For op-amp style circuits the
// bias current is itself derivable from the performance the designer
// actually specifies: for a bipolar emitter-coupled transconductance
// amplifier (EQ 14–16),
//
//	Gm  = (q/kT)·(I_bias/2)   (each device carries half the tail)
//	Rid = 4kTβ₀ / (q·I_bias)
//	Ro  ≈ V_A / I_bias
//
// so the amplifier can be parameterized by Gm, Rid or Ro exactly the
// way a digital adder is parameterized by bit width (EQ 17).
package analog

import (
	"fmt"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// Thermal voltage kT/q at room temperature (300 K), volts.
const vtThermal300 = 0.02585

// VT returns the thermal voltage kT/q at the given temperature.
func VT(tempK float64) float64 {
	return vtThermal300 * tempK / 300
}

// Bias is the EQ 13 generic analog block: a set of bias branches summed
// and multiplied linearly by the supply.
type Bias struct {
	// Name, Title, Doc identify the cell.
	Name, Title, Doc string
	// Branches is the number of identical bias branches.
	Branches int
	// Area is the layout estimate.
	Area units.SquareMeters
}

// Info implements model.Model.
func (b *Bias) Info() model.Info {
	nb := b.Branches
	if nb == 0 {
		nb = 1
	}
	return model.Info{
		Name:  b.Name,
		Title: b.Title,
		Class: model.Analog,
		Doc:   b.Doc,
		Params: model.WithStd(
			model.Param{Name: "ibias", Doc: "bias current per branch", Unit: "A", Default: 100e-6, Min: 0, Max: 1},
			model.Param{Name: "branches", Doc: "number of bias branches", Default: float64(nb), Min: 1, Max: 1e4, Integer: true},
		),
	}
}

// Evaluate implements model.Model.
func (b *Bias) Evaluate(p model.Params) (*model.Estimate, error) {
	e := &model.Estimate{VDD: p.VDD()}
	e.AddStatic("bias branches", units.Amps(p["ibias"]*p["branches"]))
	e.Area = b.Area
	e.Note("EQ 13: analog power linear in supply (no V² term)")
	return e, nil
}

// Specification modes for the transconductance amplifier.
const (
	// ByIbias takes the tail current directly.
	ByIbias = 0
	// ByGm derives the tail current from the required transconductance.
	ByGm = 1
	// ByRid derives it from the required differential input impedance.
	ByRid = 2
	// ByRo derives it from the required output impedance.
	ByRo = 3
)

// TransconductanceAmp is the EQ 14–17 bipolar emitter-coupled pair.
type TransconductanceAmp struct {
	// Name, Title, Doc identify the cell.
	Name, Title, Doc string
	// Area is the layout estimate.
	Area units.SquareMeters
}

// Info implements model.Model.
func (a *TransconductanceAmp) Info() model.Info {
	return model.Info{
		Name:  a.Name,
		Title: a.Title,
		Class: model.Analog,
		Doc:   a.Doc,
		Params: model.WithStd(
			model.Param{Name: "spec", Doc: "which specification fixes the bias point", Default: ByGm,
				Options: []model.Option{
					{Label: "tail bias current", Value: ByIbias},
					{Label: "transconductance Gm", Value: ByGm},
					{Label: "differential input impedance Rid", Value: ByRid},
					{Label: "output impedance Ro", Value: ByRo},
				}},
			model.Param{Name: "ibias", Doc: "tail current (spec = ibias)", Unit: "A", Default: 100e-6, Min: 0, Max: 1},
			model.Param{Name: "gm", Doc: "transconductance (spec = gm)", Unit: "A/V", Default: 1e-3, Min: 0, Max: 100},
			model.Param{Name: "rid", Doc: "input impedance (spec = rid)", Unit: "Ohm", Default: 100e3, Min: 1, Max: 1e12},
			model.Param{Name: "ro", Doc: "output impedance (spec = ro)", Unit: "Ohm", Default: 1e6, Min: 1, Max: 1e12},
			model.Param{Name: "beta0", Doc: "forward current gain β₀", Default: 100, Min: 1, Max: 1e4},
			model.Param{Name: "va", Doc: "Early voltage V_A", Unit: "V", Default: 50, Min: 1, Max: 500},
			model.Param{Name: "temp", Doc: "junction temperature", Unit: "K", Default: 300, Min: 200, Max: 450},
		),
	}
}

// TailCurrent solves EQ 14–16 for the tail current implied by the
// selected specification.
func (a *TransconductanceAmp) TailCurrent(p model.Params) (float64, error) {
	vt := VT(p["temp"])
	switch p["spec"] {
	case ByIbias:
		return p["ibias"], nil
	case ByGm:
		// Gm = (q/kT)·Ibias/2  ⇒  Ibias = 2·(kT/q)·Gm  (EQ 17).
		return 2 * vt * p["gm"], nil
	case ByRid:
		// Rid = 2β₀/gm = 4·(kT/q)·β₀/Ibias  ⇒  Ibias = 4·(kT/q)·β₀/Rid.
		return 4 * vt * p["beta0"] / p["rid"], nil
	case ByRo:
		// Ro ≈ V_A/Ibias  ⇒  Ibias = V_A/Ro.
		return p["va"] / p["ro"], nil
	}
	return 0, fmt.Errorf("unknown amplifier specification %v", p["spec"])
}

// Evaluate implements model.Model.
func (a *TransconductanceAmp) Evaluate(p model.Params) (*model.Estimate, error) {
	ibias, err := a.TailCurrent(p)
	if err != nil {
		return nil, err
	}
	vt := VT(p["temp"])
	e := &model.Estimate{VDD: p.VDD()}
	e.AddStatic("tail current", units.Amps(ibias))
	e.Area = a.Area
	e.Note("bias point: Ibias=%s Gm=%.3g A/V Rid=%.3g Ohm Ro=%.3g Ohm",
		units.Amps(ibias), ibias/(2*vt), 4*vt*p["beta0"]/ibias, p["va"]/ibias)
	return e, nil
}

// CMOSOTA is the MOS counterpart of the bipolar pair: a square-law
// five-transistor operational transconductance amplifier.  In strong
// inversion gm = √(2·k'·(W/L)·I_D), so a transconductance spec fixes
// the drain current as I_D = gm²/(2·k'·(W/L)) — the same
// performance-parameterization idea as EQ 14–17 applied to the "any
// class of … analog … components" claim.
type CMOSOTA struct {
	// Name, Title, Doc identify the cell.
	Name, Title, Doc string
	// Area is the layout estimate.
	Area units.SquareMeters
}

// Info implements model.Model.
func (a *CMOSOTA) Info() model.Info {
	return model.Info{
		Name:  a.Name,
		Title: a.Title,
		Class: model.Analog,
		Doc:   a.Doc,
		Params: model.WithStd(
			model.Param{Name: "spec", Doc: "which specification fixes the bias point", Default: ByGm,
				Options: []model.Option{
					{Label: "tail bias current", Value: ByIbias},
					{Label: "transconductance Gm", Value: ByGm},
				}},
			model.Param{Name: "ibias", Doc: "tail current (spec = ibias)", Unit: "A", Default: 100e-6, Min: 0, Max: 1},
			model.Param{Name: "gm", Doc: "transconductance (spec = gm)", Unit: "A/V", Default: 1e-3, Min: 0, Max: 10},
			model.Param{Name: "kprime", Doc: "process transconductance µ·Cox", Unit: "A/V^2", Default: 50e-6, Min: 1e-6, Max: 1e-3},
			model.Param{Name: "wl", Doc: "input-pair W/L ratio", Default: 20, Min: 0.5, Max: 1000},
			model.Param{Name: "branches", Doc: "current-mirror branches drawing the tail current", Default: 2, Min: 1, Max: 10, Integer: true},
		),
	}
}

// TailCurrent solves the square law for the selected specification.
func (a *CMOSOTA) TailCurrent(p model.Params) (float64, error) {
	switch p["spec"] {
	case ByIbias:
		return p["ibias"], nil
	case ByGm:
		gm := p["gm"]
		// Each input device carries I_tail/2: gm = √(2·k'·W/L·I_tail/2)
		// ⇒ I_tail = gm²/(k'·W/L).
		return gm * gm / (p["kprime"] * p["wl"]), nil
	}
	return 0, fmt.Errorf("unknown OTA specification %v", p["spec"])
}

// Evaluate implements model.Model.
func (a *CMOSOTA) Evaluate(p model.Params) (*model.Estimate, error) {
	itail, err := a.TailCurrent(p)
	if err != nil {
		return nil, err
	}
	e := &model.Estimate{VDD: p.VDD()}
	e.AddStatic("tail + mirrors", units.Amps(itail*p["branches"]))
	e.Area = a.Area
	e.Note("square-law bias point: I_tail=%s for Gm=%.3g A/V (k'=%.3g, W/L=%g)",
		units.Amps(itail), p["gm"], p["kprime"], p["wl"])
	return e, nil
}

var (
	_ model.Model = (*Bias)(nil)
	_ model.Model = (*TransconductanceAmp)(nil)
	_ model.Model = (*CMOSOTA)(nil)
)
