// Package ctrl implements the paper's controller power models.
//
// Controller power is particularly hard to estimate early: the
// combinational implementation platform (random logic, ROM, PLA) may be
// undecided and the controller's complexity is only roughly known.  Two
// parameters are usually available early and drive all three models
// here: N_I, the number of inputs (state + status bits), and N_O, the
// number of outputs (state bits + control signals).
//
// Random logic (EQ 9):
//
//	C_T = C0·α0·N_I·N_O + C1·α1·N_M·N_O
//
// with N_M the number of minterms and α0 = α1 = 0.25 for randomly
// distributed input vectors.
//
// ROM (EQ 10), with precharged word/bit lines and P_O the average
// fraction of low output bits:
//
//	C_T = C0 + C1·N_I·2^N_I + C2·P_O·N_O·2^N_I + C3·P_O·N_O + C4·N_O
//
// The PLA model follows the ROM structure with the word-line count
// replaced by the product-term count.  All results should be read with
// caution at this abstraction level; the models exist so an estimate is
// made at all, and are refined later through the tool paths.
package ctrl

import (
	"math"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// RandomLogic is the EQ 9 two-level random-logic controller model.
type RandomLogic struct {
	// Name, Title, Doc identify the cell.
	Name, Title, Doc string
	// C0 is the input-plane coefficient of EQ 9.
	C0 units.Farads
	// C1 is the output-plane coefficient of EQ 9.
	C1 units.Farads
	// AreaPerGate converts the N_I·N_O + N_M·N_O gate-count proxy into
	// layout area.
	AreaPerGate units.SquareMeters
	// DelayPerLevel is the per-logic-level delay; depth is estimated as
	// 2 + log2(N_I).
	DelayPerLevel units.Seconds
}

// Info implements model.Model.
func (r *RandomLogic) Info() model.Info {
	return model.Info{
		Name:  r.Name,
		Title: r.Title,
		Class: model.Controller,
		Doc:   r.Doc,
		Params: model.WithStd(
			model.Param{Name: "ni", Doc: "inputs incl. state and status bits (N_I)", Default: 8, Min: 1, Max: 64, Integer: true},
			model.Param{Name: "no", Doc: "outputs incl. state bits and controls (N_O)", Default: 16, Min: 1, Max: 1024, Integer: true},
			model.Param{Name: "nm", Doc: "minterm count (N_M); 0 estimates 2^(N_I-1)", Default: 0, Min: 0, Max: 1 << 24, Integer: true},
			model.Param{Name: "a0", Doc: "input-plane switching probability α0", Default: 0.25, Min: 0, Max: 1},
			model.Param{Name: "a1", Doc: "output-plane switching probability α1", Default: 0.25, Min: 0, Max: 1},
		),
	}
}

// Minterms resolves the nm parameter: an explicit count, or the
// random-control default of half the input space.
func Minterms(ni, nm float64) float64 {
	if nm > 0 {
		return nm
	}
	return math.Exp2(ni - 1)
}

// Evaluate implements model.Model.
func (r *RandomLogic) Evaluate(p model.Params) (*model.Estimate, error) {
	ni, no := p["ni"], p["no"]
	nm := Minterms(ni, p["nm"])
	scale := model.CapScale(p[model.ParamTech])
	e := &model.Estimate{VDD: p.VDD()}
	e.AddCap("input plane", units.Farads(float64(r.C0)*p["a0"]*ni*no*scale), p.Freq())
	e.AddCap("output plane", units.Farads(float64(r.C1)*p["a1"]*nm*no*scale), p.Freq())
	e.Area = units.SquareMeters((ni*no + nm*no) * float64(r.AreaPerGate) * scale * scale)
	depth := 2 + math.Log2(math.Max(ni, 2))
	e.Delay = units.Seconds(depth * float64(r.DelayPerLevel) * model.DelayScale(float64(p.VDD())))
	e.Note("EQ 9 estimate; interpret with caution until the control path is characterized")
	return e, nil
}

// ROM is the EQ 10 ROM-based controller model.
type ROM struct {
	// Name, Title, Doc identify the cell.
	Name, Title, Doc string
	// C0..C4 are the EQ 10 library coefficients.
	C0, C1, C2, C3, C4 units.Farads
	// AreaPerCell is area per ROM bit cell (2^N_I × N_O array).
	AreaPerCell units.SquareMeters
	// Delay0 is the access delay for a minimal array.
	Delay0 units.Seconds
}

// Info implements model.Model.
func (r *ROM) Info() model.Info {
	return model.Info{
		Name:  r.Name,
		Title: r.Title,
		Class: model.Controller,
		Doc:   r.Doc,
		Params: model.WithStd(
			model.Param{Name: "ni", Doc: "address bits (N_I)", Default: 8, Min: 1, Max: 24, Integer: true},
			model.Param{Name: "no", Doc: "output bits (N_O)", Default: 16, Min: 1, Max: 1024, Integer: true},
			model.Param{Name: "po", Doc: "average fraction of low output bits (P_O)", Default: 0.5, Min: 0, Max: 1},
		),
	}
}

// Evaluate implements model.Model.
func (r *ROM) Evaluate(p model.Params) (*model.Estimate, error) {
	ni, no, po := p["ni"], p["no"], p["po"]
	scale := model.CapScale(p[model.ParamTech])
	rows := math.Exp2(ni)
	ct := float64(r.C0) +
		float64(r.C1)*ni*rows +
		float64(r.C2)*po*no*rows +
		float64(r.C3)*po*no +
		float64(r.C4)*no
	e := &model.Estimate{VDD: p.VDD()}
	e.AddCap("decode+array+senseamps", units.Farads(ct*scale), p.Freq())
	e.Area = units.SquareMeters((rows*no*float64(r.AreaPerCell) + 64*float64(r.AreaPerCell)*ni) * scale * scale)
	e.Delay = units.Seconds(float64(r.Delay0) * (1 + 0.15*ni) * model.DelayScale(float64(p.VDD())))
	e.Note("EQ 10 estimate with precharged word/bit lines; P_O = %.2f", po)
	return e, nil
}

// PLA models a programmable logic array controller: an AND plane of
// product terms and an OR plane driving the outputs, both precharged.
// Structurally it is the ROM model with 2^N_I replaced by the product
// term count N_P, as the paper suggests ("other implementation
// platforms may be modeled in a similar way").
type PLA struct {
	// Name, Title, Doc identify the cell.
	Name, Title, Doc string
	// C0 is the constant overhead; CAnd and COr the per-crosspoint
	// coefficients of the two planes.
	C0, CAnd, COr units.Farads
	// AreaPerCrosspoint converts crosspoint count into area.
	AreaPerCrosspoint units.SquareMeters
	// Delay0 is the evaluate delay of a minimal array.
	Delay0 units.Seconds
}

// Info implements model.Model.
func (r *PLA) Info() model.Info {
	return model.Info{
		Name:  r.Name,
		Title: r.Title,
		Class: model.Controller,
		Doc:   r.Doc,
		Params: model.WithStd(
			model.Param{Name: "ni", Doc: "inputs (N_I)", Default: 8, Min: 1, Max: 64, Integer: true},
			model.Param{Name: "no", Doc: "outputs (N_O)", Default: 16, Min: 1, Max: 1024, Integer: true},
			model.Param{Name: "np", Doc: "product terms (N_P); 0 estimates N_I·4", Default: 0, Min: 0, Max: 1 << 20, Integer: true},
			model.Param{Name: "act", Doc: "plane switching activity", Default: 0.25, Min: 0, Max: 1},
		),
	}
}

// Evaluate implements model.Model.
func (r *PLA) Evaluate(p model.Params) (*model.Estimate, error) {
	ni, no := p["ni"], p["no"]
	np := p["np"]
	if np == 0 {
		np = 4 * ni
	}
	scale := model.CapScale(p[model.ParamTech])
	e := &model.Estimate{VDD: p.VDD()}
	e.AddCap("overhead", units.Farads(float64(r.C0)*scale), p.Freq())
	e.AddCap("AND plane", units.Farads(float64(r.CAnd)*p["act"]*2*ni*np*scale), p.Freq())
	e.AddCap("OR plane", units.Farads(float64(r.COr)*p["act"]*np*no*scale), p.Freq())
	e.Area = units.SquareMeters((2*ni*np + np*no) * float64(r.AreaPerCrosspoint) * scale * scale)
	e.Delay = units.Seconds(float64(r.Delay0) * model.DelayScale(float64(p.VDD())))
	return e, nil
}

var (
	_ model.Model = (*RandomLogic)(nil)
	_ model.Model = (*ROM)(nil)
	_ model.Model = (*PLA)(nil)
)
