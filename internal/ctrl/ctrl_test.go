package ctrl

import (
	"math"
	"testing"
	"testing/quick"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func randomLogic() *RandomLogic {
	return &RandomLogic{
		Name: "ucb.ctrl.random", C0: 40 * units.FemtoFarad, C1: 40 * units.FemtoFarad,
		AreaPerGate: 200 * units.SquareMicron, DelayPerLevel: 2e-9,
	}
}

func rom() *ROM {
	return &ROM{
		Name: "ucb.ctrl.rom",
		C0:   2 * units.PicoFarad, C1: 1 * units.FemtoFarad, C2: 0.05 * units.FemtoFarad,
		C3: 5 * units.FemtoFarad, C4: 20 * units.FemtoFarad,
		AreaPerCell: 15 * units.SquareMicron, Delay0: 8e-9,
	}
}

func ev(t *testing.T, m model.Model, p model.Params) *model.Estimate {
	t.Helper()
	e, err := model.Evaluate(m, p)
	if err != nil {
		t.Fatalf("%s: %v", m.Info().Name, err)
	}
	return e
}

func TestRandomLogicEQ9(t *testing.T) {
	r := randomLogic()
	// Explicit minterms: C_T = C0·a0·NI·NO + C1·a1·NM·NO.
	e := ev(t, r, model.Params{"ni": 8, "no": 16, "nm": 40, "vdd": 1.5, "f": 1e6})
	want := 40e-15*0.25*8*16 + 40e-15*0.25*40*16
	if got := float64(e.SwitchedCap()); !almost(got, want) {
		t.Errorf("C_T = %v, want %v", got, want)
	}
	// nm = 0 defaults to 2^(NI-1).
	e0 := ev(t, r, model.Params{"ni": 8, "no": 16})
	want0 := 40e-15*0.25*8*16 + 40e-15*0.25*128*16
	if got := float64(e0.SwitchedCap()); !almost(got, want0) {
		t.Errorf("defaulted minterms C_T = %v, want %v", got, want0)
	}
	// Custom switching probabilities.
	ep := ev(t, r, model.Params{"ni": 8, "no": 16, "nm": 40, "a0": 0.5, "a1": 0.1})
	wantp := 40e-15*0.5*8*16 + 40e-15*0.1*40*16
	if got := float64(ep.SwitchedCap()); !almost(got, wantp) {
		t.Errorf("custom alpha C_T = %v, want %v", got, wantp)
	}
}

func TestMinterms(t *testing.T) {
	if Minterms(8, 40) != 40 {
		t.Error("explicit minterms should pass through")
	}
	if Minterms(8, 0) != 128 {
		t.Error("default minterms should be 2^(NI-1)")
	}
}

func TestROMEQ10(t *testing.T) {
	r := rom()
	ni, no, po := 6.0, 24.0, 0.5
	e := ev(t, r, model.Params{"ni": ni, "no": no, "po": po, "vdd": 1.5, "f": 1e6})
	rows := math.Exp2(ni)
	want := 2e-12 + 1e-15*ni*rows + 0.05e-15*po*no*rows + 5e-15*po*no + 20e-15*no
	if got := float64(e.SwitchedCap()); !almost(got, want) {
		t.Errorf("C_T = %v, want %v", got, want)
	}
	// All-high outputs (po=0) stop bit-line precharge terms.
	e0 := ev(t, r, model.Params{"ni": ni, "no": no, "po": 0.0})
	wantNoBL := 2e-12 + 1e-15*ni*rows + 20e-15*no
	if got := float64(e0.SwitchedCap()); !almost(got, wantNoBL) {
		t.Errorf("po=0 C_T = %v, want %v", got, wantNoBL)
	}
}

func TestROMExponentialInNI(t *testing.T) {
	// Property: once the 2^NI array terms dominate the fixed overhead,
	// each extra address bit roughly doubles the switched capacitance.
	r := rom()
	f := func(raw uint8) bool {
		ni := float64(raw%6 + 10) // 10..15: array-dominated regime
		a := mustEv(r, model.Params{"ni": ni, "no": 16})
		b := mustEv(r, model.Params{"ni": ni + 1, "no": 16})
		return float64(b.SwitchedCap()) > 1.8*float64(a.SwitchedCap())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCrossoverROMvsRandomLogic(t *testing.T) {
	// The A1 ablation shape: for a sparse controller (few minterms)
	// random logic wins because the ROM still decodes all 2^NI rows;
	// for dense control (minterms ~ half the input space) the ROM's
	// 1 fF/cell array beats the 40 fF random-logic gates.
	rl, rm := randomLogic(), rom()
	base := model.Params{"ni": 14, "no": 16, "vdd": 1.5, "f": 1e6}

	sparse := base.Clone()
	sparse["nm"] = 32
	rlSparse := mustEv(rl, sparse).Power()
	romP := mustEv(rm, base.Clone()).Power()
	if rlSparse >= romP {
		t.Errorf("sparse random logic (%v) should beat ROM (%v)", rlSparse, romP)
	}

	dense := base.Clone() // nm defaults to 2^(NI-1)
	rlDense := mustEv(rl, dense).Power()
	if romP >= rlDense {
		t.Errorf("ROM (%v) should beat dense random logic (%v)", romP, rlDense)
	}
}

func TestPLA(t *testing.T) {
	p := &PLA{
		Name: "ucb.ctrl.pla", C0: 1 * units.PicoFarad,
		CAnd: 2 * units.FemtoFarad, COr: 2 * units.FemtoFarad,
		AreaPerCrosspoint: 10 * units.SquareMicron, Delay0: 6e-9,
	}
	e := ev(t, p, model.Params{"ni": 8, "no": 16, "np": 20, "vdd": 1.5, "f": 1e6})
	want := 1e-12 + 2e-15*0.25*2*8*20 + 2e-15*0.25*20*16
	if got := float64(e.SwitchedCap()); !almost(got, want) {
		t.Errorf("C_T = %v, want %v", got, want)
	}
	// np = 0 defaults to 4·NI.
	e0 := ev(t, p, model.Params{"ni": 8, "no": 16})
	want0 := 1e-12 + 2e-15*0.25*2*8*32 + 2e-15*0.25*32*16
	if got := float64(e0.SwitchedCap()); !almost(got, want0) {
		t.Errorf("defaulted product terms C_T = %v, want %v", got, want0)
	}
	// A PLA with few product terms beats the equivalent full ROM.
	romPower := mustEv(rom(), model.Params{"ni": 8, "no": 16}).Power()
	plaPower := e.Power()
	if plaPower >= romPower {
		t.Errorf("sparse PLA (%v) should beat full ROM (%v)", plaPower, romPower)
	}
}

func TestControllersEvaluateAtDefaults(t *testing.T) {
	for _, m := range []model.Model{randomLogic(), rom(), &PLA{Name: "p"}} {
		e, err := model.Evaluate(m, nil)
		if err != nil {
			t.Errorf("%s: %v", m.Info().Name, err)
			continue
		}
		if !(e.Power() >= 0) {
			t.Errorf("%s: negative power %v", m.Info().Name, e.Power())
		}
		if e.VDD != 1.5 {
			t.Errorf("%s: default VDD = %v", m.Info().Name, e.VDD)
		}
	}
}

func mustEv(m model.Model, p model.Params) *model.Estimate {
	e, err := model.Evaluate(m, p)
	if err != nil {
		panic(err)
	}
	return e
}
