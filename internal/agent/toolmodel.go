package agent

import (
	"fmt"
	"strings"
	"sync"

	"powerplay/internal/core/model"
)

// EstimateKind is the data kind a tool flow must produce for a
// ToolModel: a *model.Estimate.
const EstimateKind = "estimate"

// ToolModel is a library entry whose numbers come from a tool flow
// instead of a closed-form equation — the paper's "PowerPlay will
// accept any model and in fact will support paths to estimation tools
// in lieu of an equation", with the Design Agent translating the
// request into tool invocations.
//
// On evaluation the validated parameters are placed into the flow's
// data pool under "params"; the agent then plans and executes whatever
// chain of registered tools produces an EstimateKind product in the
// model's design context.  Flows for identical parameter points are
// cached, since tool invocations are expensive (that is the reason the
// agent exists).
type ToolModel struct {
	// Meta is the library descriptor: name, class, docs and the
	// parameter schema to validate against.
	Meta model.Info
	// Agent plans and runs the flow.
	Agent *Agent
	// Context selects applicable tools ("cmos", "bipolar").
	Context string

	mu    sync.Mutex
	cache map[string]*model.Estimate
}

// Info implements model.Model.
func (t *ToolModel) Info() model.Info { return t.Meta }

// Evaluate implements model.Model.
func (t *ToolModel) Evaluate(p model.Params) (*model.Estimate, error) {
	if t.Agent == nil {
		return nil, fmt.Errorf("tool model %q has no agent", t.Meta.Name)
	}
	key := p.String()
	t.mu.Lock()
	if est, ok := t.cache[key]; ok {
		t.mu.Unlock()
		return est, nil
	}
	t.mu.Unlock()

	data := map[string]any{"params": p.Clone()}
	v, ran, err := t.Agent.Fulfill(EstimateKind, data, t.Context)
	if err != nil {
		return nil, fmt.Errorf("tool model %q: %w", t.Meta.Name, err)
	}
	est, ok := v.(*model.Estimate)
	if !ok {
		return nil, fmt.Errorf("tool model %q: flow produced %T, want *model.Estimate", t.Meta.Name, v)
	}
	if len(ran) > 0 {
		est.Note("derived via tool flow: %s", strings.Join(ran, " → "))
	}
	t.mu.Lock()
	if t.cache == nil {
		t.cache = make(map[string]*model.Estimate)
	}
	t.cache[key] = est
	t.mu.Unlock()
	return est, nil
}

// ParamsFrom extracts the parameter valuation a tool flow was seeded
// with; tools call this at the start of their Run.
func ParamsFrom(data map[string]any) (model.Params, error) {
	v, ok := data["params"]
	if !ok {
		return nil, fmt.Errorf("agent: flow data has no params")
	}
	p, ok := v.(model.Params)
	if !ok {
		return nil, fmt.Errorf("agent: params product has type %T", v)
	}
	return p, nil
}

var _ model.Model = (*ToolModel)(nil)
