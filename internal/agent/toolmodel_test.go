package agent

import (
	"strings"
	"testing"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// estimationFlow registers a two-step flow: "synthesize" turns the
// parameters into a gate count, "characterize" prices the gates into a
// *model.Estimate.
func estimationFlow(t *testing.T) (*Agent, *int) {
	t.Helper()
	runs := 0
	a := New()
	a.MustRegister(&Tool{
		Name: "synthesize", Doc: "params -> gates",
		Inputs: []string{"params"}, Outputs: []string{"gates"},
		Cost: 10,
		Run: func(data map[string]any) (map[string]any, error) {
			p, err := ParamsFrom(data)
			if err != nil {
				return nil, err
			}
			return map[string]any{"gates": p["bits"] * 12}, nil
		},
	})
	a.MustRegister(&Tool{
		Name: "characterize", Doc: "gates -> estimate",
		Inputs: []string{"params", "gates"}, Outputs: []string{EstimateKind},
		Cost: 20,
		Run: func(data map[string]any) (map[string]any, error) {
			runs++
			p, err := ParamsFrom(data)
			if err != nil {
				return nil, err
			}
			gates := data["gates"].(float64)
			e := &model.Estimate{VDD: p.VDD()}
			e.AddCap("gates", units.Farads(gates*20e-15), p.Freq())
			return map[string]any{EstimateKind: e}, nil
		},
	})
	return a, &runs
}

func TestToolModelEvaluates(t *testing.T) {
	a, _ := estimationFlow(t)
	tm := &ToolModel{
		Meta: model.Info{
			Name: "tools.synth", Title: "Synthesized block", Class: model.Computation,
			Doc:    "priced through the design agent",
			Params: model.WithStd(model.Param{Name: "bits", Default: 8, Min: 1, Max: 128, Integer: true}),
		},
		Agent: a,
	}
	est, err := model.Evaluate(tm, model.Params{"bits": 16, "vdd": 1.5, "f": 1e6})
	if err != nil {
		t.Fatal(err)
	}
	want := 16 * 12 * 20e-15
	if got := float64(est.SwitchedCap()); got != want {
		t.Errorf("C_T = %v, want %v", got, want)
	}
	// The flow is documented in the notes.
	found := false
	for _, n := range est.Notes {
		if strings.Contains(n, "synthesize → characterize") {
			found = true
		}
	}
	if !found {
		t.Errorf("notes = %v", est.Notes)
	}
}

func TestToolModelCaches(t *testing.T) {
	a, runs := estimationFlow(t)
	tm := &ToolModel{
		Meta: model.Info{Name: "tools.synth",
			Params: model.WithStd(model.Param{Name: "bits", Default: 8, Min: 1, Max: 128})},
		Agent: a,
	}
	p := model.Params{"bits": 8}
	if _, err := model.Evaluate(tm, p); err != nil {
		t.Fatal(err)
	}
	if _, err := model.Evaluate(tm, p); err != nil {
		t.Fatal(err)
	}
	if *runs != 1 {
		t.Errorf("characterize ran %d times, want 1 (cached)", *runs)
	}
	// A different parameter point runs the flow again.
	if _, err := model.Evaluate(tm, model.Params{"bits": 9}); err != nil {
		t.Fatal(err)
	}
	if *runs != 2 {
		t.Errorf("characterize ran %d times, want 2", *runs)
	}
}

func TestToolModelErrors(t *testing.T) {
	// No agent.
	tm := &ToolModel{Meta: model.Info{Name: "x"}}
	if _, err := model.Evaluate(tm, nil); err == nil {
		t.Error("missing agent should fail")
	}
	// Flow produces the wrong type.
	a := New()
	a.MustRegister(&Tool{
		Name: "liar", Outputs: []string{EstimateKind},
		Run: func(map[string]any) (map[string]any, error) {
			return map[string]any{EstimateKind: 42}, nil
		},
	})
	tm2 := &ToolModel{Meta: model.Info{Name: "y"}, Agent: a}
	if _, err := model.Evaluate(tm2, nil); err == nil || !strings.Contains(err.Error(), "want *model.Estimate") {
		t.Errorf("err = %v", err)
	}
	// No flow reaches the estimate.
	tm3 := &ToolModel{Meta: model.Info{Name: "z"}, Agent: New()}
	if _, err := model.Evaluate(tm3, nil); err == nil {
		t.Error("empty agent should fail")
	}
}

func TestParamsFrom(t *testing.T) {
	if _, err := ParamsFrom(map[string]any{}); err == nil {
		t.Error("missing params should fail")
	}
	if _, err := ParamsFrom(map[string]any{"params": "nope"}); err == nil {
		t.Error("wrong type should fail")
	}
	p, err := ParamsFrom(map[string]any{"params": model.Params{"a": 1}})
	if err != nil || p["a"] != 1 {
		t.Errorf("ParamsFrom: %v %v", p, err)
	}
}
