package agent

import (
	"fmt"
	"strings"
	"testing"
)

// flow builds a little estimation flow:
//
//	spec --synthesize--> netlist --characterize--> model --evaluate--> power
//	spec --------------quick-estimate----------------------------> power (cheap, cmos only)
func flow() *Agent {
	a := New()
	mk := func(name string, in, out []string, ctx []string, cost float64) *Tool {
		return &Tool{
			Name: name, Doc: name, Inputs: in, Outputs: out, Contexts: ctx, Cost: cost,
			Run: func(data map[string]any) (map[string]any, error) {
				res := map[string]any{}
				for _, o := range out {
					res[o] = name + "(" + fmt.Sprint(data["spec"]) + ")"
				}
				return res, nil
			},
		}
	}
	a.MustRegister(mk("synthesize", []string{"spec"}, []string{"netlist"}, nil, 10))
	a.MustRegister(mk("characterize", []string{"netlist"}, []string{"model"}, nil, 20))
	a.MustRegister(mk("evaluate", []string{"model"}, []string{"power"}, nil, 1))
	a.MustRegister(mk("quick-estimate", []string{"spec"}, []string{"power"}, []string{"cmos"}, 2))
	return a
}

func TestPlanPicksCheapestApplicable(t *testing.T) {
	a := flow()
	// In the cmos context the 2-cost shortcut beats the 31-cost chain.
	plan, err := a.Plan("power", []string{"spec"}, "cmos")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].Name != "quick-estimate" {
		t.Errorf("plan = %v", names(plan))
	}
	// In another context only the full chain applies.
	plan, err = a.Plan("power", []string{"spec"}, "bipolar")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(names(plan), ","); got != "synthesize,characterize,evaluate" {
		t.Errorf("plan = %q", got)
	}
}

func TestPlanUsesAvailableData(t *testing.T) {
	a := flow()
	// With the netlist already in hand, synthesis is skipped.
	plan, err := a.Plan("power", []string{"netlist"}, "bipolar")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(names(plan), ","); got != "characterize,evaluate" {
		t.Errorf("plan = %q", got)
	}
}

func TestPlanErrors(t *testing.T) {
	a := flow()
	if _, err := a.Plan("layout", []string{"spec"}, "cmos"); err == nil {
		t.Error("unknown product should fail")
	}
	// Unsatisfiable inputs: power needs spec or netlist upstream.
	if _, err := a.Plan("power", nil, "bipolar"); err == nil {
		t.Error("missing root data should fail")
	}
	// Cycle: two tools needing each other.
	c := New()
	c.MustRegister(&Tool{Name: "a", Inputs: []string{"y"}, Outputs: []string{"x"},
		Run: func(map[string]any) (map[string]any, error) { return nil, nil }})
	c.MustRegister(&Tool{Name: "b", Inputs: []string{"x"}, Outputs: []string{"y"},
		Run: func(map[string]any) (map[string]any, error) { return nil, nil }})
	if _, err := c.Plan("x", nil, ""); err == nil {
		t.Error("cycle should fail")
	}
}

func TestFulfillExecutesAndCaches(t *testing.T) {
	a := flow()
	data := map[string]any{"spec": "adder16"}
	v, ran, err := a.Fulfill("power", data, "bipolar")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(ran, ","); got != "synthesize,characterize,evaluate" {
		t.Errorf("ran = %q", got)
	}
	if v == nil {
		t.Fatal("no product")
	}
	// Intermediates were cached into data.
	if _, ok := data["netlist"]; !ok {
		t.Error("intermediate product should be cached")
	}
	// A second request is served from cache: no tools run.
	_, ran2, err := a.Fulfill("power", data, "bipolar")
	if err != nil || len(ran2) != 0 {
		t.Errorf("cached fulfill ran %v, err %v", ran2, err)
	}
}

func TestFulfillToolFailure(t *testing.T) {
	a := New()
	a.MustRegister(&Tool{
		Name: "broken", Outputs: []string{"x"},
		Run: func(map[string]any) (map[string]any, error) {
			return nil, fmt.Errorf("boom")
		},
	})
	_, _, err := a.Fulfill("x", map[string]any{}, "")
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
	// A tool that claims but does not deliver its output.
	b := New()
	b.MustRegister(&Tool{
		Name: "liar", Outputs: []string{"y"},
		Run: func(map[string]any) (map[string]any, error) {
			return map[string]any{}, nil
		},
	})
	_, _, err = b.Fulfill("y", map[string]any{}, "")
	if err == nil || !strings.Contains(err.Error(), "not produced") {
		t.Errorf("err = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	a := New()
	run := func(map[string]any) (map[string]any, error) { return nil, nil }
	if err := a.Register(&Tool{Outputs: []string{"x"}, Run: run}); err == nil {
		t.Error("empty name should fail")
	}
	if err := a.Register(&Tool{Name: "t", Run: run}); err == nil {
		t.Error("no outputs should fail")
	}
	if err := a.Register(&Tool{Name: "t", Outputs: []string{"x"}}); err == nil {
		t.Error("nil Run should fail")
	}
	a.MustRegister(&Tool{Name: "t", Outputs: []string{"x"}, Run: run})
	if err := a.Register(&Tool{Name: "t", Outputs: []string{"y"}, Run: run}); err == nil {
		t.Error("duplicate name should fail")
	}
	if got := a.Tools(); len(got) != 1 || got[0] != "t" {
		t.Errorf("Tools = %v", got)
	}
}

func TestSharedDependencyRunsOnce(t *testing.T) {
	// Diamond: report needs power and area, both derived from netlist;
	// synthesize must appear once.
	a := New()
	count := 0
	a.MustRegister(&Tool{Name: "synthesize", Inputs: []string{"spec"}, Outputs: []string{"netlist"},
		Run: func(data map[string]any) (map[string]any, error) {
			count++
			return map[string]any{"netlist": "n"}, nil
		}})
	passthrough := func(out string) func(map[string]any) (map[string]any, error) {
		return func(map[string]any) (map[string]any, error) {
			return map[string]any{out: out}, nil
		}
	}
	a.MustRegister(&Tool{Name: "power", Inputs: []string{"netlist"}, Outputs: []string{"power"}, Run: passthrough("power")})
	a.MustRegister(&Tool{Name: "area", Inputs: []string{"netlist"}, Outputs: []string{"area"}, Run: passthrough("area")})
	a.MustRegister(&Tool{Name: "report", Inputs: []string{"power", "area"}, Outputs: []string{"report"}, Run: passthrough("report")})
	_, ran, err := a.Fulfill("report", map[string]any{"spec": "s"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("synthesize ran %d times", count)
	}
	if len(ran) != 4 {
		t.Errorf("ran = %v", ran)
	}
}

func names(ts []*Tool) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}
