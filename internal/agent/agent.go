// Package agent implements the Design Agent: the dynamic design-flow
// manager PowerPlay uses when a model is not a closed-form equation but
// a path to estimation tools (ref [1], Bentz et al., "Information-based
// Design Environment").
//
// A hyperlink request for data ("the power of this block in this design
// context") is translated into a sequence of tool invocations.  Each
// tool declares the kinds of data it consumes and produces and the
// design contexts it applies to; the agent backward-chains from the
// requested kind through the registered tools, picks the cheapest
// applicable plan, executes it, and caches intermediate products so
// repeated requests don't re-run the flow.
package agent

import (
	"fmt"
	"sort"
	"strings"
)

// Tool is one registered estimation step.
type Tool struct {
	// Name identifies the tool ("extract-netlist", "spice-power").
	Name string
	// Doc describes it for the flow display.
	Doc string
	// Inputs are the data kinds the tool consumes.
	Inputs []string
	// Outputs are the data kinds the tool produces.
	Outputs []string
	// Contexts are the design contexts the tool applies to; empty
	// means any context.
	Contexts []string
	// Cost weights plan selection (characterized-equation lookup is
	// cheap, SPICE is expensive).
	Cost float64
	// Run executes the tool over the data products gathered so far,
	// returning its new products.
	Run func(data map[string]any) (map[string]any, error)
}

func (t *Tool) applies(context string) bool {
	if len(t.Contexts) == 0 {
		return true
	}
	for _, c := range t.Contexts {
		if c == context {
			return true
		}
	}
	return false
}

func (t *Tool) produces(kind string) bool {
	for _, o := range t.Outputs {
		if o == kind {
			return true
		}
	}
	return false
}

// Agent is a tool registry plus planner.
type Agent struct {
	tools []*Tool
}

// New returns an empty agent.
func New() *Agent { return &Agent{} }

// Register adds a tool.  Names must be unique and every tool must
// produce something.
func (a *Agent) Register(t *Tool) error {
	if t.Name == "" {
		return fmt.Errorf("agent: tool needs a name")
	}
	if len(t.Outputs) == 0 {
		return fmt.Errorf("agent: tool %q produces nothing", t.Name)
	}
	if t.Run == nil {
		return fmt.Errorf("agent: tool %q has no Run", t.Name)
	}
	for _, existing := range a.tools {
		if existing.Name == t.Name {
			return fmt.Errorf("agent: duplicate tool %q", t.Name)
		}
	}
	a.tools = append(a.tools, t)
	return nil
}

// MustRegister is Register that panics on error.
func (a *Agent) MustRegister(t *Tool) {
	if err := a.Register(t); err != nil {
		panic(err)
	}
}

// Tools returns the registered tool names, sorted.
func (a *Agent) Tools() []string {
	names := make([]string, len(a.tools))
	for i, t := range a.tools {
		names[i] = t.Name
	}
	sort.Strings(names)
	return names
}

// Plan computes the tool sequence that derives the wanted data kind
// from the available kinds in the given design context.  The returned
// sequence is in execution order and minimizes total cost; ties break
// on tool name for determinism.
func (a *Agent) Plan(want string, have []string, context string) ([]*Tool, error) {
	available := map[string]bool{}
	for _, h := range have {
		available[h] = true
	}
	memo := map[string]*planNode{}
	visiting := map[string]bool{}
	node, err := a.solve(want, available, context, memo, visiting)
	if err != nil {
		return nil, err
	}
	// Flatten the dependency DAG into execution order, deduplicated.
	var order []*Tool
	seen := map[string]bool{}
	var emit func(n *planNode)
	emit = func(n *planNode) {
		if n == nil || n.tool == nil {
			return
		}
		for _, dep := range n.deps {
			emit(dep)
		}
		if !seen[n.tool.Name] {
			seen[n.tool.Name] = true
			order = append(order, n.tool)
		}
	}
	emit(node)
	return order, nil
}

type planNode struct {
	tool *Tool // nil when the kind was already available
	deps []*planNode
	cost float64
}

func (a *Agent) solve(kind string, available map[string]bool, context string,
	memo map[string]*planNode, visiting map[string]bool) (*planNode, error) {
	if available[kind] {
		return &planNode{}, nil
	}
	if n, ok := memo[kind]; ok {
		return n, nil
	}
	if visiting[kind] {
		return nil, fmt.Errorf("agent: circular tool dependencies while deriving %q", kind)
	}
	visiting[kind] = true
	defer delete(visiting, kind)

	var best *planNode
	var bestName string
	var tried []string
	for _, t := range a.tools {
		if !t.produces(kind) || !t.applies(context) {
			continue
		}
		tried = append(tried, t.Name)
		n := &planNode{tool: t, cost: t.Cost}
		ok := true
		for _, in := range t.Inputs {
			dep, err := a.solve(in, available, context, memo, visiting)
			if err != nil {
				ok = false
				break
			}
			n.deps = append(n.deps, dep)
			n.cost += dep.cost
		}
		if !ok {
			continue
		}
		if best == nil || n.cost < best.cost || n.cost == best.cost && t.Name < bestName {
			best, bestName = n, t.Name
		}
	}
	if best == nil {
		if len(tried) > 0 {
			return nil, fmt.Errorf("agent: no satisfiable flow for %q in context %q (candidates: %s)",
				kind, context, strings.Join(tried, ", "))
		}
		return nil, fmt.Errorf("agent: no tool produces %q in context %q", kind, context)
	}
	memo[kind] = best
	return best, nil
}

// Fulfill plans and executes: the hyperlink entry point.  It returns
// the requested product, the names of the tools run (in order), and
// merges every intermediate product into data for reuse.
func (a *Agent) Fulfill(want string, data map[string]any, context string) (any, []string, error) {
	if v, ok := data[want]; ok {
		return v, nil, nil
	}
	have := make([]string, 0, len(data))
	for k := range data {
		have = append(have, k)
	}
	plan, err := a.Plan(want, have, context)
	if err != nil {
		return nil, nil, err
	}
	var ran []string
	for _, t := range plan {
		out, err := t.Run(data)
		if err != nil {
			return nil, ran, fmt.Errorf("agent: tool %q: %w", t.Name, err)
		}
		for k, v := range out {
			data[k] = v
		}
		ran = append(ran, t.Name)
	}
	v, ok := data[want]
	if !ok {
		return nil, ran, fmt.Errorf("agent: flow completed but %q was not produced", want)
	}
	return v, ran, nil
}
