package repo

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Entry is one catalog line: a published model, its content digest,
// and the registry generation at which that digest was published.
type Entry struct {
	Name   string `json:"name"`
	Digest string `json:"digest"`
	Gen    uint64 `json:"published_gen"`
}

// Source is the upstream end of a subscription: a publisher's catalog
// and versioned bodies.  The web layer's implementation rides the
// Remote client, so every call inherits PR 3's RetryPolicy and the
// per-site circuit breaker; a dead publisher surfaces here as an
// error, never as a hang.
type Source interface {
	// Catalog lists the publications under the subscribed prefix.
	Catalog(ctx context.Context) ([]Entry, error)
	// Fetch returns the immutable versioned body of name@digest.
	Fetch(ctx context.Context, name, digest string) ([]byte, error)
}

// Sink is the local end: the mirrored slice of this site's model
// registry.  Names are the publisher's names — the sink owns any
// local renaming.  Apply and Remove must be durable (journaled)
// before returning, so a kill -9 between syncs loses nothing.
type Sink interface {
	// Mirrored reports what is currently mirrored from this
	// subscription: publisher name → digest.
	Mirrored() map[string]string
	// Apply installs (or replaces) one publication.  body is
	// canonical and already verified against digest.
	Apply(name, digest string, body []byte) error
	// Remove drops a publication the publisher no longer lists.
	Remove(name string) error
}

// Stats describes one sync pass.
type Stats struct {
	Catalog   int    `json:"catalog"`             // entries the publisher listed
	Applied   int    `json:"applied"`             // bodies fetched and installed
	Removed   int    `json:"removed"`             // local mirrors dropped
	Unchanged int    `json:"unchanged"`           // digests already matching
	Failed    int    `json:"failed"`              // entries that errored this pass
	LastError string `json:"last_error,omitempty"`
}

// converged reports whether the mirror now matches the catalog.
func (st Stats) converged() bool { return st.Failed == 0 && st.LastError == "" }

// Status is a point-in-time view of a Syncer for healthz.
type Status struct {
	Prefix    string    `json:"prefix"`
	Last      Stats     `json:"last_sync"`
	LastRun   time.Time `json:"-"`
	LastOK    time.Time `json:"-"`
	LagSecs   float64   `json:"lag_seconds"`
	Mirrored  int       `json:"mirrored"`
	SyncCount uint64    `json:"sync_count"`
}

// Syncer drives one subscription: a digest-diff poll loop that makes
// the Sink converge to the Source's catalog.  One Syncer per
// subscription; Run owns the schedule, SyncOnce is one pass (exported
// so tests and the serve path can force convergence deterministically).
type Syncer struct {
	src      Source
	sink     Sink
	prefix   string // metrics/healthz label
	interval time.Duration

	// OnSync, when set before Run, observes every completed pass —
	// the web layer hangs its logging here.  Called outside the lock.
	OnSync func(Stats, error)

	mu        sync.Mutex
	last      Stats
	lastRun   time.Time
	lastOK    time.Time
	syncCount uint64
}

// DefaultInterval is the poll period when the operator does not set
// one (-sync-interval).  Digest-diff polls are one cheap catalog GET
// when nothing changed, so a short default keeps mirrors fresh.
const DefaultInterval = 5 * time.Second

// NewSyncer builds a Syncer over src and sink.  prefix is the
// subscription's remote prefix, used only as the metrics label.
func NewSyncer(src Source, sink Sink, prefix string, interval time.Duration) *Syncer {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Syncer{src: src, sink: sink, prefix: prefix, interval: interval}
}

// Run polls until ctx is cancelled.  The first pass fires immediately.
func (s *Syncer) Run(ctx context.Context) {
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		st, err := s.SyncOnce(ctx)
		if s.OnSync != nil {
			s.OnSync(st, err)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// SyncOnce runs one digest-diff pass: list the catalog, fetch bodies
// whose digests differ from the mirror's, verify each body against
// its advertised digest, install, and drop mirrors the publisher no
// longer lists.  A failing entry is skipped (counted in Failed) and
// retried next pass; a failing catalog fails the whole pass and the
// mirror keeps serving what it has.
func (s *Syncer) SyncOnce(ctx context.Context) (Stats, error) {
	var st Stats
	entries, err := s.src.Catalog(ctx)
	if err != nil {
		st.LastError = err.Error()
		syncRuns.With("error").Inc()
		s.note(st, false)
		return st, fmt.Errorf("repo: catalog of %q: %w", s.prefix, err)
	}
	st.Catalog = len(entries)

	have := s.sink.Mirrored()
	want := make(map[string]bool, len(entries))
	// Deterministic application order makes test failures and logs
	// reproducible; catalogs are served sorted but we don't rely on it.
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	for _, e := range entries {
		if ctx.Err() != nil {
			st.LastError = ctx.Err().Error()
			break
		}
		want[e.Name] = true
		if have[e.Name] == e.Digest {
			st.Unchanged++
			continue
		}
		body, err := s.src.Fetch(ctx, e.Name, e.Digest)
		if err != nil {
			st.Failed++
			st.LastError = fmt.Sprintf("fetch %s@%s: %v", e.Name, e.Digest, err)
			continue
		}
		canonical, err := Canonical(body)
		if err != nil {
			digestChecks.With("mismatch").Inc()
			st.Failed++
			st.LastError = fmt.Sprintf("body of %s@%s: %v", e.Name, e.Digest, err)
			continue
		}
		if got := Digest(canonical); got != e.Digest {
			// The publisher lied (or a middlebox mangled the body):
			// never install content under a digest it doesn't hash to.
			digestChecks.With("mismatch").Inc()
			st.Failed++
			st.LastError = fmt.Sprintf("digest mismatch for %s: catalog %s, body %s", e.Name, e.Digest, got)
			continue
		}
		digestChecks.With("match").Inc()
		if err := s.sink.Apply(e.Name, e.Digest, canonical); err != nil {
			st.Failed++
			st.LastError = fmt.Sprintf("apply %s@%s: %v", e.Name, e.Digest, err)
			continue
		}
		st.Applied++
	}
	for name := range have {
		if want[name] || ctx.Err() != nil {
			continue
		}
		if err := s.sink.Remove(name); err != nil {
			st.Failed++
			st.LastError = fmt.Sprintf("remove %s: %v", name, err)
			continue
		}
		st.Removed++
	}

	mirrorModels.With(s.prefix).Set(float64(st.Applied + st.Unchanged))
	ok := st.converged()
	if ok {
		syncRuns.With("ok").Inc()
	} else {
		syncRuns.With("partial").Inc()
	}
	s.note(st, ok)
	if !ok {
		return st, fmt.Errorf("repo: sync of %q incomplete: %s", s.prefix, st.LastError)
	}
	return st, nil
}

// note records the pass and refreshes the lag gauge.
func (s *Syncer) note(st Stats, converged bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	s.last = st
	s.lastRun = now
	s.syncCount++
	if converged {
		s.lastOK = now
	}
	lag := 0.0
	if !converged && !s.lastOK.IsZero() {
		lag = now.Sub(s.lastOK).Seconds()
	}
	syncLag.With(s.prefix).Set(lag)
}

// Status snapshots the Syncer for healthz.
func (s *Syncer) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	lag := 0.0
	if !s.lastOK.IsZero() && s.lastRun.After(s.lastOK) {
		lag = s.lastRun.Sub(s.lastOK).Seconds()
	}
	return Status{
		Prefix:    s.prefix,
		Last:      s.last,
		LastRun:   s.lastRun,
		LastOK:    s.lastOK,
		LagSecs:   lag,
		Mirrored:  s.last.Applied + s.last.Unchanged,
		SyncCount: s.syncCount,
	}
}
