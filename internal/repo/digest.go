// Package repo is the federated model repository's core: content
// addressing for model publications and the background sync engine
// that mirrors another site's catalog into the local one.
//
// The paper's Figures 6-7 share libraries as a live proxy: every
// evaluation of a mounted model rides on the publisher being reachable
// right now.  A repository changes the unit of sharing from "a wire
// you can call" to "a document you can copy": publishing a model
// produces an immutable, content-addressed *publication* — the
// canonical JSON encoding of its schema and equations, named by the
// truncated SHA-256 of those bytes — and mirrors copy publications
// instead of proxying calls.  Paine's component-repository argument
// (see PAPERS.md) is the direct model: a shared library lives or dies
// on stable, versioned publication.
//
// This package deliberately knows nothing about HTTP or the web
// server.  The digest half (this file) defines the canonical encoding
// and the digest; the sync half (sync.go) drives any Source toward any
// Sink.  The web layer supplies both ends.
package repo

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"powerplay/internal/library"
)

// Canonical rewrites one JSON document into its canonical form: object
// keys sorted, no insignificant whitespace, numbers normalized through
// float64.  Two documents that differ only in key order or number
// spelling ("1.0" vs "1") canonicalize to identical bytes, so the
// digest below is a function of *content*, never of the serializer
// that happened to produce the wire bytes.  Canonical is idempotent:
// Canonical(Canonical(x)) == Canonical(x).
func Canonical(blob []byte) ([]byte, error) {
	var v any
	dec := json.NewDecoder(bytes.NewReader(blob))
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("repo: non-JSON publication body: %w", err)
	}
	// encoding/json marshals map keys sorted and emits no extra
	// whitespace: exactly the canonical form.
	out, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("repo: re-encoding publication body: %w", err)
	}
	return out, nil
}

// Digest names canonical content: the first 16 bytes of its SHA-256,
// in hex (32 characters).  Callers must canonicalize first — the
// digest of non-canonical bytes names those bytes, not the content.
func Digest(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return fmt.Sprintf("%x", sum[:16])
}

// publicationContent is the digested view of an equation model: its
// schema and equations, *excluding the local name*.  Names are
// site-local (a mirror registers "lib.sram" for the publisher's
// "sram"); content is universal.  Leaving the name out means the same
// model carries the same digest at the publisher, at a mirror, and at
// a mirror of that mirror — the property that makes mirror-chains
// serve byte-identical versioned bodies.
type publicationContent struct {
	Title   string                  `json:"title,omitempty"`
	Class   string                  `json:"class,omitempty"`
	Doc     string                  `json:"doc,omitempty"`
	Params  []library.EquationParam `json:"params,omitempty"`
	Csw     string                  `json:"csw,omitempty"`
	Vswing  string                  `json:"vswing,omitempty"`
	Istatic string                  `json:"istatic,omitempty"`
	Area    string                  `json:"area,omitempty"`
	Delay   string                  `json:"delay,omitempty"`
	Freq    string                  `json:"freq,omitempty"`
}

// BodyOf builds one model's publication: the canonical content bytes
// (the immutable versioned body the registry serves) and their digest.
func BodyOf(q *library.Equation) (body []byte, digest string, err error) {
	raw, err := json.Marshal(publicationContent{
		Title: q.Title, Class: q.Class, Doc: q.Doc, Params: q.Params,
		Csw: q.Csw, Vswing: q.Vswing, Istatic: q.Istatic,
		Area: q.Area, Delay: q.Delay, Freq: q.Freq,
	})
	if err != nil {
		return nil, "", fmt.Errorf("repo: encoding publication of %q: %w", q.Name, err)
	}
	body, err = Canonical(raw)
	if err != nil {
		return nil, "", err
	}
	return body, Digest(body), nil
}

// ParseBody decodes a publication body back into an equation model
// registered under localName, compiling it so it is ready to price
// designs.  The body's digest is unchanged by the round trip: BodyOf
// of the parsed model reproduces the input bytes.
func ParseBody(localName string, body []byte) (*library.Equation, error) {
	var q library.Equation
	if err := json.Unmarshal(body, &q); err != nil {
		return nil, fmt.Errorf("repo: bad publication body for %q: %w", localName, err)
	}
	q.Name = localName
	if err := q.Compile(); err != nil {
		return nil, fmt.Errorf("repo: publication %q does not compile: %w", localName, err)
	}
	return &q, nil
}

// Ref spells the versioned reference of a publication: "name@digest",
// the path segment under /api/v1/registry/models/.
func Ref(name, digest string) string { return name + "@" + digest }

// SplitRef splits a versioned reference.  The digest is everything
// after the last "@", so names containing "@" (which the registry does
// not produce, but a URL can carry) still split deterministically.
func SplitRef(ref string) (name, digest string, ok bool) {
	i := bytes.LastIndexByte([]byte(ref), '@')
	if i <= 0 || i == len(ref)-1 {
		return "", "", false
	}
	return ref[:i], ref[i+1:], true
}
