package repo

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"powerplay/internal/library"
)

func testEquation() *library.Equation {
	return &library.Equation{
		Name:  "lib.mult",
		Title: "Array multiplier",
		Class: "computation",
		Doc:   "booth-encoded array",
		Params: []library.EquationParam{
			{Name: "n", Default: 16, Min: 4, Max: 64, Integer: true},
			{Name: "act", Default: 0.5, Min: 0, Max: 1},
		},
		Csw:   "1e-12 * n * n * act",
		Area:  "4e-9 * n * n",
		Delay: "1e-9 * n",
	}
}

func TestDigestExcludesName(t *testing.T) {
	q := testEquation()
	body1, d1, err := BodyOf(q)
	if err != nil {
		t.Fatal(err)
	}
	renamed := *q
	renamed.Name = "mirror.of.a.mirror.mult"
	body2, d2, err := BodyOf(&renamed)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest depends on local name: %s vs %s", d1, d2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("body depends on local name:\n%s\n%s", body1, body2)
	}
	if len(d1) != 32 {
		t.Fatalf("digest %q: want 32 hex chars", d1)
	}
	if strings.Contains(string(body1), q.Name) {
		t.Fatalf("body leaks the name: %s", body1)
	}
}

func TestDigestSensitivity(t *testing.T) {
	q := testEquation()
	_, d1, _ := BodyOf(q)
	changed := *q
	changed.Csw = "2e-12 * n * n * act"
	_, d2, _ := BodyOf(&changed)
	if d1 == d2 {
		t.Fatal("digest did not change when an equation changed")
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	in := []byte(`{"b": 2, "a": {"z": [3, 1.50, true], "y": "s"}, "c": null}`)
	c1, err := Canonical(in)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Canonical(c1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("not idempotent:\n%s\n%s", c1, c2)
	}
}

func TestCanonicalRejectsGarbage(t *testing.T) {
	if _, err := Canonical([]byte("{not json")); err == nil {
		t.Fatal("want error on bad JSON")
	}
}

func TestBodyRoundTrip(t *testing.T) {
	q := testEquation()
	body, digest, err := BodyOf(q)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBody("local.name", body)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "local.name" {
		t.Fatalf("name = %q", back.Name)
	}
	body2, digest2, err := BodyOf(back)
	if err != nil {
		t.Fatal(err)
	}
	if digest2 != digest || !bytes.Equal(body, body2) {
		t.Fatalf("round trip changed content: %s -> %s", digest, digest2)
	}
}

func TestParseBodyRejectsNonCompiling(t *testing.T) {
	if _, err := ParseBody("x", []byte(`{"csw":"1 + * 2"}`)); err == nil {
		t.Fatal("want compile error")
	}
}

func TestSplitRef(t *testing.T) {
	cases := []struct {
		ref, name, digest string
		ok                bool
	}{
		{"a@b", "a", "b", true},
		{"lib.x@deadbeef", "lib.x", "deadbeef", true},
		{"we@ird@d1", "we@ird", "d1", true},
		{"noat", "", "", false},
		{"@d", "", "", false},
		{"name@", "", "", false},
	}
	for _, c := range cases {
		name, digest, ok := SplitRef(c.ref)
		if ok != c.ok || name != c.name || digest != c.digest {
			t.Errorf("SplitRef(%q) = %q, %q, %v; want %q, %q, %v",
				c.ref, name, digest, ok, c.name, c.digest, c.ok)
		}
	}
	if Ref("a", "b") != "a@b" {
		t.Error("Ref")
	}
}

// scrambleJSON re-encodes v writing object keys in a random order, so
// we can prove the canonical form (and hence the digest) is invariant
// under the serializer's key ordering.
func scrambleJSON(rng *rand.Rand, v any, out *bytes.Buffer) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		out.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				out.WriteByte(',')
			}
			kb, _ := json.Marshal(k)
			out.Write(kb)
			out.WriteByte(':')
			scrambleJSON(rng, x[k], out)
		}
		out.WriteByte('}')
	case []any:
		out.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				out.WriteByte(',')
			}
			scrambleJSON(rng, e, out)
		}
		out.WriteByte(']')
	default:
		b, _ := json.Marshal(x)
		out.Write(b)
	}
}

// FuzzCanonicalMapOrder is the satellite's digest-stability fuzz: any
// JSON document digests identically no matter what key order (or
// whitespace) the producer emitted.
func FuzzCanonicalMapOrder(f *testing.F) {
	f.Add([]byte(`{"title":"t","params":[{"name":"n","default":4}],"csw":"n*1e-12"}`), int64(1))
	f.Add([]byte(`{"a":{"b":{"c":[1,2,{"d":3}]}},"e":0.5,"f":null}`), int64(42))
	f.Add([]byte(`[{"z":1,"a":2},{"m":true}]`), int64(7))
	f.Fuzz(func(t *testing.T, blob []byte, seed int64) {
		c1, err := Canonical(blob)
		if err != nil {
			t.Skip() // not JSON; nothing to assert
		}
		var v any
		if err := json.Unmarshal(blob, &v); err != nil {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 4; i++ {
			var scrambled bytes.Buffer
			scrambleJSON(rng, v, &scrambled)
			c2, err := Canonical(scrambled.Bytes())
			if err != nil {
				t.Fatalf("scrambled form stopped parsing: %v\n%s", err, scrambled.Bytes())
			}
			if !bytes.Equal(c1, c2) {
				t.Fatalf("canonical form depends on key order:\n%s\n%s", c1, c2)
			}
			if Digest(c1) != Digest(c2) {
				t.Fatal("digest depends on key order")
			}
		}
	})
}
