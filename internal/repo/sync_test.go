package repo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeSource is a scriptable publisher catalog.
type fakeSource struct {
	mu         sync.Mutex
	entries    []Entry
	bodies     map[string][]byte // name -> body served for any digest
	catalogErr error
	fetchErr   map[string]error
	fetches    int
}

func (f *fakeSource) Catalog(ctx context.Context) ([]Entry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.catalogErr != nil {
		return nil, f.catalogErr
	}
	return append([]Entry(nil), f.entries...), nil
}

func (f *fakeSource) Fetch(ctx context.Context, name, digest string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fetches++
	if err := f.fetchErr[name]; err != nil {
		return nil, err
	}
	b, ok := f.bodies[name]
	if !ok {
		return nil, errors.New("no such body")
	}
	return b, nil
}

func (f *fakeSource) publish(name string, body []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, err := Canonical(body)
	if err != nil {
		panic(err)
	}
	if f.bodies == nil {
		f.bodies = map[string][]byte{}
	}
	f.bodies[name] = c
	d := Digest(c)
	for i := range f.entries {
		if f.entries[i].Name == name {
			f.entries[i].Digest = d
			return
		}
	}
	f.entries = append(f.entries, Entry{Name: name, Digest: d})
}

func (f *fakeSource) drop(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.bodies, name)
	for i := range f.entries {
		if f.entries[i].Name == name {
			f.entries = append(f.entries[:i], f.entries[i+1:]...)
			return
		}
	}
}

// fakeSink records applied publications in memory.
type fakeSink struct {
	mu       sync.Mutex
	state    map[string]string // name -> digest
	bodies   map[string][]byte
	applyErr error
	applies  int
	removes  int
}

func newFakeSink() *fakeSink {
	return &fakeSink{state: map[string]string{}, bodies: map[string][]byte{}}
}

func (s *fakeSink) Mirrored() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.state))
	for k, v := range s.state {
		out[k] = v
	}
	return out
}

func (s *fakeSink) Apply(name, digest string, body []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.applyErr != nil {
		return s.applyErr
	}
	s.applies++
	s.state[name] = digest
	s.bodies[name] = body
	return nil
}

func (s *fakeSink) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removes++
	delete(s.state, name)
	delete(s.bodies, name)
	return nil
}

func body(i int) []byte {
	return []byte(fmt.Sprintf(`{"title":"m%d","csw":"%d * 1e-12"}`, i, i+1))
}

func TestSyncOnceConverges(t *testing.T) {
	src := &fakeSource{}
	src.publish("lib.a", body(1))
	src.publish("lib.b", body(2))
	sink := newFakeSink()
	sy := NewSyncer(src, sink, "lib.", 0)

	st, err := sy.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 2 || st.Unchanged != 0 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(sink.state) != 2 {
		t.Fatalf("mirrored %d models", len(sink.state))
	}

	// Second pass: nothing changed, nothing fetched.
	before := src.fetches
	st, err = sy.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 0 || st.Unchanged != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if src.fetches != before {
		t.Fatalf("idle pass fetched bodies: %d -> %d", before, src.fetches)
	}

	// Republish one, drop the other: one apply, one remove.
	src.publish("lib.a", body(99))
	src.drop("lib.b")
	st, err = sy.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 1 || st.Removed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := sink.state["lib.b"]; ok {
		t.Fatal("removed model still mirrored")
	}
}

func TestSyncCatalogErrorKeepsMirror(t *testing.T) {
	src := &fakeSource{}
	src.publish("lib.a", body(1))
	sink := newFakeSink()
	sy := NewSyncer(src, sink, "lib.", 0)
	if _, err := sy.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	src.mu.Lock()
	src.catalogErr = errors.New("publisher dead")
	src.mu.Unlock()
	_, err := sy.SyncOnce(context.Background())
	if err == nil {
		t.Fatal("want catalog error")
	}
	// The mirror is untouched: last digest still serves.
	if len(sink.state) != 1 || sink.removes != 0 {
		t.Fatalf("mirror mutated on catalog failure: %+v removes=%d", sink.state, sink.removes)
	}
	if st := sy.Status(); st.Last.LastError == "" {
		t.Fatal("status lost the error")
	}
}

func TestSyncDigestMismatchRejected(t *testing.T) {
	src := &fakeSource{}
	src.publish("lib.a", body(1))
	// Corrupt the body after cataloging: digest no longer matches.
	src.mu.Lock()
	src.bodies["lib.a"] = []byte(`{"title":"tampered","csw":"1e-12"}`)
	src.mu.Unlock()

	sink := newFakeSink()
	sy := NewSyncer(src, sink, "lib.", 0)
	st, err := sy.SyncOnce(context.Background())
	if err == nil {
		t.Fatal("want mismatch error")
	}
	if st.Failed != 1 || sink.applies != 0 {
		t.Fatalf("tampered body installed: %+v applies=%d", st, sink.applies)
	}
}

func TestSyncPartialFailureRetriesNextPass(t *testing.T) {
	src := &fakeSource{fetchErr: map[string]error{"lib.b": errors.New("flaky")}}
	src.publish("lib.a", body(1))
	src.publish("lib.b", body(2))
	sink := newFakeSink()
	sy := NewSyncer(src, sink, "lib.", 0)

	st, err := sy.SyncOnce(context.Background())
	if err == nil {
		t.Fatal("want partial error")
	}
	if st.Applied != 1 || st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Publisher recovers; next pass converges without refetching lib.a.
	src.mu.Lock()
	delete(src.fetchErr, "lib.b")
	src.mu.Unlock()
	st, err = sy.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 1 || st.Unchanged != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(sink.state) != 2 {
		t.Fatalf("mirror incomplete: %+v", sink.state)
	}
}

func TestRunPollsUntilCancelled(t *testing.T) {
	src := &fakeSource{}
	src.publish("lib.a", body(1))
	sink := newFakeSink()
	sy := NewSyncer(src, sink, "lib.", time.Millisecond)

	var mu sync.Mutex
	runs := 0
	done := make(chan struct{})
	sy.OnSync = func(Stats, error) {
		mu.Lock()
		runs++
		n := runs
		mu.Unlock()
		if n == 3 {
			close(done)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	finished := make(chan struct{})
	go func() { sy.Run(ctx); close(finished) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run never reached 3 passes")
	}
	cancel()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
	if st := sy.Status(); st.SyncCount < 3 || st.Last.Catalog != 1 {
		t.Fatalf("status = %+v", st)
	}
}
