package repo

// The repository's instrument families, registered in obs.Default and
// served by GET /metrics.  The prefix label is the subscription's
// remote prefix ("lib." etc.) — one per subscription, a small closed
// set chosen by the operator, never a model name.

import "powerplay/internal/obs"

var (
	syncRuns = obs.NewCounterVec("powerplay_repo_sync_runs_total",
		"Mirror sync passes, by outcome (ok: converged; partial: some entries failed; error: catalog unreachable).",
		"outcome")
	syncLag = obs.NewGaugeVec("powerplay_repo_sync_lag_seconds",
		"Seconds since the subscription last converged with its publisher, by prefix.",
		"prefix")
	digestChecks = obs.NewCounterVec("powerplay_repo_digest_checks_total",
		"Publication bodies verified against their advertised digest, by result (match/mismatch).",
		"result")
	mirrorModels = obs.NewGaugeVec("powerplay_repo_mirror_models",
		"Models currently mirrored from a subscribed publisher, by prefix.",
		"prefix")
	// MirrorServes is incremented by the web layer each time a
	// mirrored publication's versioned body is served onward to a
	// downstream mirror — the mirror-of-a-mirror traffic.
	MirrorServes = obs.NewCounter("powerplay_repo_mirror_serves_total",
		"Versioned bodies of mirrored (not locally published) models served to downstream fetchers.")
)
