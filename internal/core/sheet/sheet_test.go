package sheet

import (
	"math"
	"strings"
	"testing"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// testRegistry builds a small library: a width-linear cell and a
// converter-style cell exercising inter-model power().
func testRegistry() *model.Registry {
	r := model.NewRegistry()
	r.MustRegister(&model.Func{
		Meta: model.Info{
			Name: "cell", Title: "test cell", Class: model.Computation, Doc: "d",
			Params: model.WithStd(
				model.Param{Name: "bits", Default: 8, Min: 1, Max: 1024, Integer: true},
				model.Param{Name: "act", Default: 1, Min: 0, Max: 2},
			),
		},
		Fn: func(p model.Params) (*model.Estimate, error) {
			e := &model.Estimate{VDD: p.VDD()}
			e.AddCap("c", units.Farads(p["act"]*p["bits"]*100e-15), p.Freq())
			e.Area = units.SquareMeters(p["bits"] * 1e-9)
			e.Delay = units.Seconds(p["bits"] * 1e-9)
			return e, nil
		},
	})
	r.MustRegister(&model.Func{
		Meta: model.Info{
			Name: "loss", Title: "converter", Class: model.Converter, Doc: "d",
			Params: model.WithStd(
				model.Param{Name: "pload", Default: 0, Min: 0, Max: 1e6},
				model.Param{Name: "eta", Default: 0.8, Min: 0.01, Max: 1},
			),
		},
		Fn: func(p model.Params) (*model.Estimate, error) {
			e := &model.Estimate{VDD: p.VDD()}
			diss := p["pload"] * (1 - p["eta"]) / p["eta"]
			e.AddStatic("loss", units.Amps(diss/float64(p.VDD())))
			return e, nil
		},
	})
	return r
}

func TestBasicSheet(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 2e6, "2MHz")
	a := d.Root.MustAddChild("alpha", "cell")
	if err := a.SetParam("bits", "16"); err != nil {
		t.Fatal(err)
	}
	b := d.Root.MustAddChild("beta", "cell")
	if err := b.SetParam("bits", "8"); err != nil {
		t.Fatal(err)
	}
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// P = bits·100fF·V²·f each.
	wantA := 16 * 100e-15 * 2.25 * 2e6
	wantB := 8 * 100e-15 * 2.25 * 2e6
	if got := float64(r.Find("alpha").Power); !almost(got, wantA) {
		t.Errorf("alpha = %v, want %v", got, wantA)
	}
	if got := float64(r.Power); !almost(got, wantA+wantB) {
		t.Errorf("total = %v, want %v", got, wantA+wantB)
	}
	// Area sums; delay is the max.
	if got := float64(r.Area); !almost(got, 24e-9) {
		t.Errorf("area = %v", got)
	}
	if got := float64(r.Delay); !almost(got, 16e-9) {
		t.Errorf("delay = %v", got)
	}
}

func TestScopeInheritanceAndShadowing(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("vdd", 3, "3")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	sub := d.Root.MustAddChild("sub", "")
	sub.SetGlobalValue("vdd", 1.5, "1.5") // shadow at the subtree
	inner := sub.MustAddChild("inner", "cell")
	_ = inner
	outer := d.Root.MustAddChild("outer", "cell")
	_ = outer
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	pInner := float64(r.Find("sub/inner").Power)
	pOuter := float64(r.Find("outer").Power)
	// Same cell: power ratio should be (3/1.5)² = 4.
	if !almost(pOuter, 4*pInner) {
		t.Errorf("shadowed supply: outer %v, inner %v", pOuter, pInner)
	}
}

func TestGlobalExpressionsAndDerivedVars(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("f", 2e6, "2MHz")
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	if err := d.Root.SetGlobal("fread", "f/16"); err != nil {
		t.Fatal(err)
	}
	n := d.Root.MustAddChild("mem", "cell")
	if err := n.SetParam("f", "fread"); err != nil {
		t.Fatal(err)
	}
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	want := 8 * 100e-15 * 2.25 * 125e3
	if got := float64(r.Power); !almost(got, want) {
		t.Errorf("derived frequency: %v, want %v", got, want)
	}
}

func TestInterModelPower(t *testing.T) {
	// The converter's load is the sum of its siblings — EQ 19 wired
	// through the sheet, the paper's inter-model interaction.
	d := NewDesign("system", testRegistry())
	d.Root.SetGlobalValue("vdd", 5, "5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	d.Root.MustAddChild("radio", "cell").SetParamValue("bits", 100, "100")
	d.Root.MustAddChild("cpu", "cell").SetParamValue("bits", 50, "50")
	conv := d.Root.MustAddChild("conv", "loss")
	if err := conv.SetParam("pload", `power("radio") + power("cpu")`); err != nil {
		t.Fatal(err)
	}
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	pRadio := float64(r.Find("radio").Power)
	pCPU := float64(r.Find("cpu").Power)
	wantLoss := (pRadio + pCPU) * 0.25
	if got := float64(r.Find("conv").Power); !almost(got, wantLoss) {
		t.Errorf("conv = %v, want %v", got, wantLoss)
	}
	if got := float64(r.Power); !almost(got, pRadio+pCPU+wantLoss) {
		t.Errorf("total = %v", got)
	}
}

func TestInterModelAreaAndDelay(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	d.Root.MustAddChild("datapath", "cell").SetParamValue("bits", 64, "64")
	probe := d.Root.MustAddChild("probe", "cell")
	// Contrived but exercises area()/delay(): bits from sibling area.
	if err := probe.SetParam("bits", `area("datapath") * 1e9 / 8`); err != nil {
		t.Fatal(err)
	}
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Find("probe").Params["bits"]; !almost(got, 8) {
		t.Errorf("probe bits = %v, want 8", got)
	}
}

func TestRowCycleDetected(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("vdd", 5, "5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	a := d.Root.MustAddChild("a", "loss")
	b := d.Root.MustAddChild("b", "loss")
	a.SetParam("pload", `power("b")`)
	b.SetParam("pload", `power("a")`)
	_, err := d.Evaluate()
	if err == nil || !strings.Contains(err.Error(), "circular dependency") {
		t.Errorf("err = %v", err)
	}
}

func TestGlobalCycleDetected(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobal("x", "y+1")
	d.Root.SetGlobal("y", "x+1")
	d.Root.MustAddChild("n", "cell").SetParam("bits", "x")
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	_, err := d.Evaluate()
	if err == nil || !strings.Contains(err.Error(), "circular definition") {
		t.Errorf("err = %v", err)
	}
}

func TestErrorsCarryRowPath(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	sub := d.Root.MustAddChild("sub", "")
	sub.MustAddChild("leaf", "nosuchmodel")
	_, err := d.Evaluate()
	ee, ok := err.(*EvalError)
	if !ok {
		t.Fatalf("want *EvalError, got %T: %v", err, err)
	}
	if ee.Path != "sub/leaf" {
		t.Errorf("path = %q", ee.Path)
	}
	// Unbound variable in a param.
	d2 := NewDesign("demo", testRegistry())
	d2.Root.MustAddChild("x", "cell").SetParam("bits", "undefined_var")
	if _, err := d2.Evaluate(); err == nil {
		t.Error("unbound variable should fail")
	}
	// Unknown row in power().
	d3 := NewDesign("demo", testRegistry())
	d3.Root.SetGlobalValue("vdd", 5, "5")
	d3.Root.SetGlobalValue("f", 1e6, "1e6")
	d3.Root.MustAddChild("c", "loss").SetParam("pload", `power("ghost")`)
	if _, err := d3.Evaluate(); err == nil || !strings.Contains(err.Error(), "no such row") {
		t.Errorf("err = %v", err)
	}
}

func TestEvaluateAtOverrides(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 2e6, "2MHz")
	d.Root.MustAddChild("x", "cell")
	base, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	swept, err := d.EvaluateAt(map[string]float64{"vdd": 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(float64(swept.Power), 4*float64(base.Power)) {
		t.Errorf("sweep: %v vs base %v", swept.Power, base.Power)
	}
	// The design itself is unchanged.
	again, _ := d.Evaluate()
	if again.Power != base.Power {
		t.Error("EvaluateAt must not mutate the design")
	}
}

func TestNodeTreeOps(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	a := d.Root.MustAddChild("a", "")
	b := a.MustAddChild("b", "cell")
	if b.Path() != "a/b" || a.Path() != "a" || d.Root.Path() != "" {
		t.Errorf("paths: %q %q %q", b.Path(), a.Path(), d.Root.Path())
	}
	if d.Root.Find("a/b") != b || d.Root.Find("a.b") != b {
		t.Error("Find with both separators")
	}
	if d.Root.Find("a/zz") != nil {
		t.Error("Find miss should be nil")
	}
	if b.Parent() != a {
		t.Error("Parent")
	}
	// Duplicate and invalid names rejected.
	if _, err := d.Root.AddChild("a", ""); err == nil {
		t.Error("duplicate should fail")
	}
	if _, err := d.Root.AddChild("bad name", ""); err == nil {
		t.Error("space in name should fail")
	}
	if _, err := d.Root.AddChild("9lead", ""); err == nil {
		t.Error("leading digit should fail")
	}
	// Remove.
	if !a.RemoveChild("b") || a.RemoveChild("b") {
		t.Error("RemoveChild")
	}
	// Param/global CRUD.
	a.SetParamValue("bits", 4, "4")
	if a.Param("bits") == nil {
		t.Error("Param")
	}
	if !a.DeleteParam("bits") || a.DeleteParam("bits") {
		t.Error("DeleteParam")
	}
	a.SetGlobalValue("g", 1, "1")
	if a.Global("g") == nil {
		t.Error("Global")
	}
	if !a.DeleteGlobal("g") || a.DeleteGlobal("g") {
		t.Error("DeleteGlobal")
	}
	if err := a.SetParam("bits", "1 +"); err == nil {
		t.Error("bad expression should fail")
	}
	if err := a.SetGlobal("g", "1 +"); err == nil {
		t.Error("bad global expression should fail")
	}
	if err := a.SetGlobal("bad name", "1"); err == nil {
		t.Error("bad variable name should fail")
	}
}

func TestResolveSiblingFirst(t *testing.T) {
	// Two rows named "mem" at different levels: a reference from deep in
	// the tree should find the nearest one.
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("vdd", 5, "5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	d.Root.MustAddChild("mem", "cell").SetParamValue("bits", 1000, "1000")
	sub := d.Root.MustAddChild("sub", "")
	sub.MustAddChild("mem", "cell").SetParamValue("bits", 1, "1")
	conv := sub.MustAddChild("conv", "loss")
	conv.SetParam("pload", `power("mem")`)
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	pSmall := float64(r.Find("sub/mem").Power)
	if got := float64(r.Find("sub/conv").Power); !almost(got, 0.25*pSmall) {
		t.Errorf("should have bound the sibling mem: %v vs %v", got, 0.25*pSmall)
	}
}

func TestFingerprint(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	d.Root.MustAddChild("a", "cell")
	f1 := d.Fingerprint()
	d.Root.MustAddChild("b", "loss")
	if d.Fingerprint() == f1 {
		t.Error("fingerprint should change with structure")
	}
}

func TestSortChildren(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	d.Root.MustAddChild("zeta", "")
	d.Root.MustAddChild("alpha", "")
	d.Root.SortChildren()
	if d.Root.Children[0].Name != "alpha" {
		t.Error("SortChildren")
	}
}
