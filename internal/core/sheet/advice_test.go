package sheet

import (
	"math"
	"testing"
)

func adviceDesign(t *testing.T) (*Design, *Result) {
	t.Helper()
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	d.Root.MustAddChild("hog", "cell").SetParamValue("bits", 900, "900")
	sub := d.Root.MustAddChild("sub", "")
	sub.MustAddChild("mid", "cell").SetParamValue("bits", 90, "90")
	sub.MustAddChild("tiny", "cell").SetParamValue("bits", 10, "10")
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	return d, r
}

func TestAdviceRanksConsumers(t *testing.T) {
	_, r := adviceDesign(t)
	rows := Advice(r)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Path != "hog" || rows[1].Path != "sub/mid" || rows[2].Path != "sub/tiny" {
		t.Errorf("order = %v", rows)
	}
	if math.Abs(rows[0].Share-0.9) > 1e-9 {
		t.Errorf("hog share = %v", rows[0].Share)
	}
	// Amdahl: eliminating the hog saves at most its share.
	if rows[0].MaxGain != rows[0].Share {
		t.Error("MaxGain should equal share for a leaf")
	}
	var sum float64
	for _, row := range rows {
		sum += row.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
}

func TestDiminishingReturns(t *testing.T) {
	_, r := adviceDesign(t)
	// 80% coverage needs only the hog.
	top := DiminishingReturns(r, 0.8)
	if len(top) != 1 || top[0].Path != "hog" {
		t.Errorf("top = %v", top)
	}
	// 95% needs hog + mid.
	top = DiminishingReturns(r, 0.95)
	if len(top) != 2 {
		t.Errorf("top = %v", top)
	}
	// Full coverage returns everything.
	if top := DiminishingReturns(r, 1.0); len(top) != 3 {
		t.Errorf("full coverage = %v", top)
	}
}

func TestTimingReport(t *testing.T) {
	_, r := adviceDesign(t)
	// The test cell's delay is bits ns: hog 900ns, mid 90ns, tiny 10ns.
	rows, err := TimingReport(r, 5e6) // 200 ns cycle
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// Sorted by slack: the violating hog first.
	if rows[0].Path != "hog" || rows[0].Meets {
		t.Errorf("worst row = %+v", rows[0])
	}
	if !rows[1].Meets || !rows[2].Meets {
		t.Error("mid and tiny meet 5MHz")
	}
	if math.Abs(rows[1].SlackSeconds-(200e-9-90e-9)) > 1e-15 {
		t.Errorf("mid slack = %v", rows[1].SlackSeconds)
	}
	if _, err := TimingReport(r, 0); err == nil {
		t.Error("zero target should fail")
	}
}

func TestCriticalRowAndMaxFrequency(t *testing.T) {
	_, r := adviceDesign(t)
	crit := CriticalRow(r)
	if crit == nil || crit.Path != "hog" {
		t.Fatalf("critical = %+v", crit)
	}
	if math.Abs(float64(MaxFrequency(r))-1/900e-9) > 1 {
		t.Errorf("MaxFrequency = %v", MaxFrequency(r))
	}
	// A design with no timing models: infinite frequency.
	d := NewDesign("none", testRegistry())
	d.Root.SetGlobalValue("vdd", 5, "5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	d.Root.MustAddChild("loss", "loss")
	rr, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(MaxFrequency(rr)), 1) {
		t.Error("untimed design should report +Inf")
	}
	if CriticalRow(rr) != nil {
		t.Error("untimed design has no critical row")
	}
}
