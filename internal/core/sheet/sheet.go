// Package sheet implements PowerPlay's design spreadsheet: the
// hierarchical, parameterized worksheet the user explores a design
// through.
//
// A design is a tree.  Every node is a row: either an instance of a
// library model (a subcircuit) or a pure hierarchy level that groups
// other rows.  Variables ("globals") may be introduced at any level —
// the Figure 2 sheet introduces "Supply V" and "Operating Frequency" at
// the top — and any parameter of any row may be an expression over the
// globals in scope, so changing one cell and pressing Play re-prices
// the whole design.  Expressions may also reference the computed power,
// area or delay of other rows (power("radio"), area("datapath")), the
// inter-model interaction that makes DC-DC converters and interconnect
// models work; the evaluator resolves these dependencies lazily and
// rejects cycles.
package sheet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"powerplay/internal/core/model"
	"powerplay/internal/expr"
)

// Binding is one named expression cell (a parameter or a global).
type Binding struct {
	// Name is the parameter or variable name.
	Name string
	// Expr is the compiled expression.
	Expr *expr.Expr
}

// Compose selects how a hierarchy node combines its children's delays
// — the compositional delay estimation the paper lists as under
// examination.  Power and area always sum; delay depends on structure.
type Compose string

// Delay composition modes.
const (
	// ComposeMax models parallel children: the level is as slow as its
	// slowest child (the default, safe for unstructured groups).
	ComposeMax Compose = ""
	// ComposeChain models children in series along one path: delays
	// add, as through a pipeline stage's logic.
	ComposeChain Compose = "chain"
)

// Node is one row (and possibly subtree) of the design sheet.
type Node struct {
	// Name is the row label, unique among siblings.  Names use the
	// identifier syntax so paths can appear in expressions.
	Name string
	// Doc is the row's documentation hyperlink text.
	Doc string
	// Model is the library model this row instantiates; empty for pure
	// hierarchy nodes.
	Model string
	// Delay selects how children's delays compose at this level.
	Delay Compose
	// Params are the model parameter bindings, in display order.
	Params []Binding
	// Globals are variables introduced at this level, visible to this
	// node's parameters and its whole subtree, in display order.
	Globals []Binding
	// Children are the sub-rows.
	Children []*Node

	parent *Node

	// epoch counts mutations over the subtree rooted here.  Only the
	// value on a tree's root is meaningful: every mutator bumps the
	// root's counter, which lets the evaluation-plan cache skip its
	// fingerprint walk when nothing changed (see plan.go).
	epoch atomic.Uint64
}

// bump records a mutation on the tree containing n.
func (n *Node) bump() {
	r := n
	for r.parent != nil {
		r = r.parent
	}
	r.epoch.Add(1)
}

// designIDs mints process-unique design identities (see Design.ID).
var designIDs atomic.Uint64

// Design is a complete sheet bound to a model library.
type Design struct {
	// Name titles the sheet ("Luminance_1", "InfoPad System").
	Name string
	// Doc is the sheet-level documentation.
	Doc string
	// Root is the top hierarchy node.  Its globals are the sheet's
	// top-level parameter rows.
	Root *Node
	// Registry resolves model names.
	Registry *model.Registry

	// Compiled-plan cache (see plan.go).  Guarded by planMu; planFP is
	// the content fingerprint the cached plans were compiled against, so
	// any tree edit invalidates them on the next PlanFor call.  The
	// fingerprint itself is cached against the root's mutation epoch.
	planMu  sync.Mutex
	planFP  uint64
	plans   map[string]*planEntry
	fpRoot  *Node
	fpEpoch uint64
	fpVal   uint64
	fpValid bool

	// id lazily holds the design's process-unique identity (see ID).
	id atomic.Uint64

	// inc lazily holds the incremental Play engine (see incremental.go).
	inc atomic.Pointer[Incremental]
}

// Generation returns the design's mutation generation: a cheap
// monotonic counter bumped by every tree mutation (AddChild,
// RemoveChild, SetParam, SetGlobal, their Delete twins, SortChildren
// and Touch).  Two reads returning the same value bracket a span in
// which the tree did not change, which makes the counter the
// invalidation key for anything derived from an evaluation — the web
// layer's memoized results, rendered pages and sweep point caches all
// key on it.  It costs one atomic load, unlike a content fingerprint
// or a serialization hash.
func (d *Design) Generation() uint64 { return d.Root.epoch.Load() }

// Touch advances the generation without changing the tree: callers
// that must force downstream caches to re-derive (the web Play button,
// whose contract is "recompute now" even when no cell changed — a
// mounted remote model may answer differently) bump through here.
func (d *Design) Touch() { d.Root.bump() }

// ID returns a process-unique identity for this Design value, assigned
// on first use and stable thereafter.  Generations of different
// designs are not comparable; ID disambiguates them, so (ID,
// Generation) is a process-wide cache key — used by the web layer's
// ETags, where a design replaced under the same name must never
// revalidate a client's stale page.  Clones get their own identity.
func (d *Design) ID() uint64 {
	if id := d.id.Load(); id != 0 {
		return id
	}
	d.id.CompareAndSwap(0, designIDs.Add(1))
	return d.id.Load()
}

// NewDesign creates an empty sheet over a library.
func NewDesign(name string, reg *model.Registry) *Design {
	return &Design{
		Name:     name,
		Root:     &Node{Name: name},
		Registry: reg,
	}
}

// validName reports whether a row name can appear in expression paths.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			i > 0 && (r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// AddChild appends a new row under n and returns it.
func (n *Node) AddChild(name, modelName string) (*Node, error) {
	if !validName(name) {
		return nil, fmt.Errorf("sheet: invalid row name %q", name)
	}
	if n.Child(name) != nil {
		return nil, fmt.Errorf("sheet: duplicate row %q under %q", name, n.Name)
	}
	c := &Node{Name: name, Model: modelName, parent: n}
	n.Children = append(n.Children, c)
	n.bump()
	return c, nil
}

// MustAddChild is AddChild that panics on error, for programmatic
// design construction.
func (n *Node) MustAddChild(name, modelName string) *Node {
	c, err := n.AddChild(name, modelName)
	if err != nil {
		panic(err)
	}
	return c
}

// Child finds a direct child by name.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// RemoveChild deletes a direct child; it reports whether it existed.
func (n *Node) RemoveChild(name string) bool {
	for i, c := range n.Children {
		if c.Name == name {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			c.parent = nil
			n.bump()
			return true
		}
	}
	return false
}

// Parent returns the enclosing node (nil at the root).
func (n *Node) Parent() *Node { return n.parent }

// Path returns the slash-separated path from the root (which is "").
func (n *Node) Path() string {
	if n.parent == nil {
		return ""
	}
	parentPath := n.parent.Path()
	if parentPath == "" {
		return n.Name
	}
	return parentPath + "/" + n.Name
}

// SetParam binds a model parameter to an expression source.
func (n *Node) SetParam(name, src string) error {
	e, err := expr.Compile(src)
	if err != nil {
		return fmt.Errorf("sheet: row %q param %q: %w", n.Name, name, err)
	}
	set(&n.Params, name, e)
	n.bump()
	return nil
}

// SetParamValue binds a parameter to a literal, keeping its
// engineering-notation spelling.
func (n *Node) SetParamValue(name string, v float64, text string) {
	set(&n.Params, name, expr.Literal(v, text))
	n.bump()
}

// Param returns the binding for name, or nil.
func (n *Node) Param(name string) *expr.Expr { return get(n.Params, name) }

// DeleteParam removes a binding; it reports whether it existed.
func (n *Node) DeleteParam(name string) bool {
	ok := del(&n.Params, name)
	if ok {
		n.bump()
	}
	return ok
}

// SetGlobal introduces (or rebinds) a variable at this level.
func (n *Node) SetGlobal(name, src string) error {
	if !validName(name) && !strings.Contains(name, ".") {
		return fmt.Errorf("sheet: invalid variable name %q", name)
	}
	e, err := expr.Compile(src)
	if err != nil {
		return fmt.Errorf("sheet: row %q variable %q: %w", n.Name, name, err)
	}
	set(&n.Globals, name, e)
	n.bump()
	return nil
}

// SetGlobalValue introduces a variable bound to a literal.
func (n *Node) SetGlobalValue(name string, v float64, text string) {
	set(&n.Globals, name, expr.Literal(v, text))
	n.bump()
}

// Global returns the variable binding at this level, or nil.
func (n *Node) Global(name string) *expr.Expr { return get(n.Globals, name) }

// DeleteGlobal removes a variable; it reports whether it existed.
func (n *Node) DeleteGlobal(name string) bool {
	ok := del(&n.Globals, name)
	if ok {
		n.bump()
	}
	return ok
}

func set(bindings *[]Binding, name string, e *expr.Expr) {
	for i := range *bindings {
		if (*bindings)[i].Name == name {
			(*bindings)[i].Expr = e
			return
		}
	}
	*bindings = append(*bindings, Binding{Name: name, Expr: e})
}

func get(bindings []Binding, name string) *expr.Expr {
	for i := range bindings {
		if bindings[i].Name == name {
			return bindings[i].Expr
		}
	}
	return nil
}

func del(bindings *[]Binding, name string) bool {
	for i := range *bindings {
		if (*bindings)[i].Name == name {
			*bindings = append((*bindings)[:i], (*bindings)[i+1:]...)
			return true
		}
	}
	return false
}

// Walk visits n and its subtree depth-first.
func (n *Node) Walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// Find resolves a path relative to n.  Paths are slash- or
// dot-separated row names; an empty path is n itself.
func (n *Node) Find(path string) *Node {
	if path == "" {
		return n
	}
	cur := n
	for _, part := range splitPath(path) {
		if cur = cur.Child(part); cur == nil {
			return nil
		}
	}
	return cur
}

func splitPath(path string) []string {
	return strings.FieldsFunc(path, func(r rune) bool { return r == '/' || r == '.' })
}

// Resolve finds the node a reference names, looking first among the
// referencing node's siblings (and their subtrees), then walking up the
// ancestry, then from the design root.  This is the rule that makes
// power("radio") in a converter row mean "my sibling radio".
func (d *Design) Resolve(from *Node, ref string) *Node {
	for scope := from.parent; scope != nil; scope = scope.parent {
		if hit := scope.Find(ref); hit != nil {
			return hit
		}
	}
	if from.parent == nil { // referencing from the root itself
		if hit := from.Find(ref); hit != nil {
			return hit
		}
	}
	return d.Root.Find(ref)
}

// Fingerprint summarizes the design structure for change detection in
// the web UI: row paths with model names, in tree order.
func (d *Design) Fingerprint() string {
	var b strings.Builder
	d.Root.Walk(func(n *Node) {
		fmt.Fprintf(&b, "%s=%s;", n.Path(), n.Model)
	})
	return b.String()
}

// SortChildren orders a node's children by name (stable display for
// generated designs); construction order is kept by default.
func (n *Node) SortChildren() {
	sort.Slice(n.Children, func(i, j int) bool {
		return n.Children[i].Name < n.Children[j].Name
	})
	n.bump()
}
