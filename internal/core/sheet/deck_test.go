package sheet

import (
	"strings"
	"testing"
)

func TestParseDeckBasic(t *testing.T) {
	deck := `
# Figure-1-style deck
design demo
doc a small test design
var vdd = 1.5
var f = 2MHz
var fread = f/16
row mem cell bits=16 f=fread
group datapath chain
row datapath/a cell bits=8
row datapath/b cell bits=4
var datapath:gain = 3
rowdoc mem the ping-pong buffer
`
	d, err := ParseDeck(deck, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "demo" || d.Doc != "a small test design" {
		t.Errorf("metadata: %q %q", d.Name, d.Doc)
	}
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// mem: 16 bits at f/16.
	wantMem := 16 * 100e-15 * 2.25 * 125e3
	if got := float64(r.Find("mem").Power); !almost(got, wantMem) {
		t.Errorf("mem = %v, want %v", got, wantMem)
	}
	// chain group delays add: 8ns + 4ns.
	if got := float64(r.Find("datapath").Delay); !almost(got, 12e-9) {
		t.Errorf("chain delay = %v", got)
	}
	if d.Root.Find("mem").Doc != "the ping-pong buffer" {
		t.Error("rowdoc lost")
	}
	if d.Root.Find("datapath").Global("gain") == nil {
		t.Error("scoped var lost")
	}
}

func TestParseDeckQuotedExpressions(t *testing.T) {
	deck := `
design demo
var vdd = 5
var f = 1e6
row radio cell bits=100
row conv loss pload="power(\"radio\")" eta=0.8
`
	d, err := ParseDeck(deck, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	pRadio := float64(r.Find("radio").Power)
	if got := float64(r.Find("conv").Power); !almost(got, 0.25*pRadio) {
		t.Errorf("conv = %v, want %v", got, 0.25*pRadio)
	}
}

func TestParseDeckErrors(t *testing.T) {
	reg := testRegistry()
	cases := []struct{ deck, want string }{
		{"", "empty deck"},
		{"var x = 1", "first directive"},
		{"design a\ndesign b", "duplicate design"},
		{"design bad name", "one valid name"},
		{"design d\nfrob x", "unknown directive"},
		{"design d\nvar x 1", "NAME = EXPR"},
		{"design d\nvar x = ", "empty expression"},
		{"design d\nvar ghost:y = 1", `no row "ghost"`},
		{"design d\nrow a", "row wants PATH MODEL"},
		{"design d\nrow g/leaf cell", "missing parent group"},
		{"design d\nrow a cell bits", "bad parameter"},
		{"design d\nrow a cell bits=1+", "param"},
		{"design d\ngroup g bogus", "unknown mode"},
		{"design d\nrowdoc ghost text", `no row "ghost"`},
		{"design d\nrow a cell bits=\"3", "unterminated quote"},
		{"design d\nrow a cell\nrow a cell", "duplicate row"},
	}
	for _, c := range cases {
		_, err := ParseDeck(c.deck, reg)
		if err == nil {
			t.Errorf("ParseDeck(%q) should fail", c.deck)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseDeck(%q) error %q, want substring %q", c.deck, err, c.want)
		}
	}
}

func TestDeckRoundTrip(t *testing.T) {
	d := NewDesign("round", testRegistry())
	d.Doc = "round trip test"
	d.Root.SetGlobalValue("vdd", 5, "5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	grp := d.Root.MustAddChild("stage", "")
	grp.Delay = ComposeChain
	grp.SetGlobalValue("inner", 7, "7")
	a := grp.MustAddChild("a", "cell")
	a.SetParam("bits", "inner*2")
	a.Doc = "first stage"
	conv := d.Root.MustAddChild("conv", "loss")
	conv.SetParam("pload", `power("stage") + 0.001`)

	text := FormatDeck(d)
	d2, err := ParseDeck(text, d.Registry)
	if err != nil {
		t.Fatalf("%v\ndeck:\n%s", err, text)
	}
	r1, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d2.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Power != r2.Power || r1.Delay != r2.Delay || r1.Area != r2.Area {
		t.Errorf("round trip drifted: %v/%v vs %v/%v", r1.Power, r1.Delay, r2.Power, r2.Delay)
	}
	if d2.Root.Find("stage/a").Doc != "first stage" {
		t.Error("rowdoc lost in round trip")
	}
	// Idempotent formatting.
	if FormatDeck(d2) != text {
		t.Errorf("format not a fixpoint:\n%s\nvs\n%s", FormatDeck(d2), text)
	}
}
