package sheet

import (
	"fmt"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// Macro lumps a whole design into a single reusable library model — the
// hierarchical macro-modeling the paper calls crucial for system-level
// work: the video-decompression sheet becomes one row of the portable
// terminal's sheet.
//
// The macro's parameters are the design's root globals; its defaults
// are their current values.  Evaluation re-plays the inner sheet at the
// caller's parameter point, so supply-voltage and frequency scaling
// flow through the hierarchy exactly as if the sub-design were inlined.
type Macro struct {
	name, title, doc string
	design           *Design
	note             string // precomputed lump note
}

// NewMacro wraps a design as a model.  Every root global whose current
// binding is a constant becomes a macro parameter with that default;
// expression-valued globals stay internal.
func NewMacro(name, title, doc string, d *Design) (*Macro, error) {
	if name == "" {
		return nil, fmt.Errorf("sheet: macro needs a name")
	}
	if d == nil || d.Root == nil {
		return nil, fmt.Errorf("sheet: macro %q needs a design", name)
	}
	// A macro must evaluate on its own before being published.
	if _, err := d.Evaluate(); err != nil {
		return nil, fmt.Errorf("sheet: macro %q: design does not evaluate: %w", name, err)
	}
	return &Macro{
		name: name, title: title, doc: doc, design: d,
		note: fmt.Sprintf("macro of design %q: %d rows lumped", d.Name, countRows(d.Root)),
	}, nil
}

// Design exposes the wrapped design (for hyperlinking from the macro's
// documentation page to the underlying sheet).
func (m *Macro) Design() *Design { return m.design }

// Info implements model.Model.
func (m *Macro) Info() model.Info {
	info := model.Info{
		Name:  m.name,
		Title: m.title,
		Class: model.Macro,
		Doc:   m.doc,
	}
	for _, g := range m.design.Root.Globals {
		if v, ok := g.Expr.Const(); ok {
			p := model.Param{Name: g.Name, Doc: "macro parameter (root variable)", Default: v}
			info.Params = append(info.Params, p)
		}
	}
	return info
}

// Evaluate implements model.Model: re-play the inner design with the
// caller's bindings overriding the root globals.
func (m *Macro) Evaluate(p model.Params) (*model.Estimate, error) {
	overrides := make(map[string]float64, len(p))
	for k, v := range p {
		overrides[k] = v
	}
	power, area, delay, err := m.design.EvaluateTotals(overrides)
	if err != nil {
		return nil, fmt.Errorf("macro %q: %w", m.name, err)
	}
	vdd := units.Volts(p.Get(model.ParamVDD, 0))
	if vdd == 0 {
		// Fall back to the design's own supply variable, if any.
		if e := m.design.Root.Global(model.ParamVDD); e != nil {
			if v, ok := e.Const(); ok {
				vdd = units.Volts(v)
			}
		}
	}
	if vdd == 0 {
		vdd = model.RefVDD
	}
	est := &model.Estimate{VDD: vdd}
	// The inner evaluation already priced everything at the overridden
	// operating point, so the lump is an equivalent static draw.
	est.AddStatic("macro total", units.Amps(power/float64(vdd)))
	est.Area = units.SquareMeters(area)
	est.Delay = units.Seconds(delay)
	est.Notes = append(est.Notes, m.note)
	return est, nil
}

// Volatile implements model.Volatile: a macro is only as pure as the
// models its inner design prices through, so it reports volatile when
// any reachable inner row resolves to a volatile model (a mounted
// remote library, or a nested macro over one).
func (m *Macro) Volatile() bool {
	volatile := false
	m.design.Root.Walk(func(n *Node) {
		if volatile || n.Model == "" {
			return
		}
		if inner, ok := m.design.Registry.Lookup(n.Model); ok && model.IsVolatile(inner) {
			volatile = true
		}
	})
	return volatile
}

func countRows(n *Node) int {
	count := 0
	n.Walk(func(*Node) { count++ })
	return count
}

var _ model.Model = (*Macro)(nil)
