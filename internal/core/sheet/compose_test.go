package sheet

import (
	"strings"
	"testing"
)

func TestComposeChainDelays(t *testing.T) {
	// A pipeline stage: multiplier feeding an adder along one path —
	// their delays add; a parallel group keeps the max.
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	chain := d.Root.MustAddChild("stage", "")
	chain.Delay = ComposeChain
	chain.MustAddChild("mult", "cell").SetParamValue("bits", 30, "30") // 30 ns
	chain.MustAddChild("add", "cell").SetParamValue("bits", 20, "20")  // 20 ns
	par := d.Root.MustAddChild("regs", "")
	par.MustAddChild("a", "cell").SetParamValue("bits", 8, "8")
	par.MustAddChild("b", "cell").SetParamValue("bits", 9, "9")
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(r.Find("stage").Delay); !almost(got, 50e-9) {
		t.Errorf("chain delay = %v, want 50ns", got)
	}
	if got := float64(r.Find("regs").Delay); !almost(got, 9e-9) {
		t.Errorf("parallel delay = %v, want 9ns", got)
	}
	// Root (default max): the chain dominates.
	if got := float64(r.Delay); !almost(got, 50e-9) {
		t.Errorf("root delay = %v", got)
	}
	// Power still sums regardless of composition.
	want := float64(r.Find("stage").Power) + float64(r.Find("regs").Power)
	if float64(r.Power) != want {
		t.Error("power should sum under chain composition too")
	}
}

func TestComposeChainWithOwnModel(t *testing.T) {
	// A model row with chained children: own delay is the chain's head.
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	head := d.Root.MustAddChild("head", "cell")
	head.Delay = ComposeChain
	head.SetParamValue("bits", 10, "10")
	head.MustAddChild("tail", "cell").SetParamValue("bits", 5, "5")
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(r.Find("head").Delay); !almost(got, 15e-9) {
		t.Errorf("head+tail = %v, want 15ns", got)
	}
}

func TestComposeJSONRoundTrip(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	chain := d.Root.MustAddChild("stage", "")
	chain.Delay = ComposeChain
	chain.MustAddChild("a", "cell").SetParamValue("bits", 3, "3")
	chain.MustAddChild("b", "cell").SetParamValue("bits", 4, "4")
	blob, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"compose":"chain"`) {
		t.Errorf("compose mode not serialized: %s", blob)
	}
	d2, err := ParseDesign(blob, d.Registry)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d2.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(r2.Find("stage").Delay); !almost(got, 7e-9) {
		t.Errorf("round-tripped chain delay = %v", got)
	}
	// Unknown compose modes are rejected on load.
	bad := strings.Replace(string(blob), `"compose":"chain"`, `"compose":"bogus"`, 1)
	if _, err := ParseDesign([]byte(bad), d.Registry); err == nil {
		t.Error("bogus compose mode should fail")
	}
}
