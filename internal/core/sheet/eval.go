package sheet

import (
	"fmt"

	"powerplay/internal/activity"
	"powerplay/internal/core/model"
	"powerplay/internal/expr"
	"powerplay/internal/obs"
	"powerplay/internal/units"
)

// planFallbacks counts evaluations that abandoned the compiled plan
// for the tree interpreter (no plan, or a run-time error re-derived
// for its canonical message).  A rising rate under steady traffic
// means the fast path is being paid for and then thrown away.
var planFallbacks = obs.NewCounter("powerplay_sheet_plan_fallbacks_total",
	"Evaluations that fell back from the compiled plan to the interpreter.")

// Result is the evaluated state of one row: the numbers the spreadsheet
// displays when Play is pressed.
type Result struct {
	// Node is the row this result belongs to.
	Node *Node
	// Power is the row's total (own model plus children).
	Power units.Watts
	// DynamicPower and StaticPower split the total per EQ 1.
	DynamicPower, StaticPower units.Watts
	// Area is the total active area (own plus children).
	Area units.SquareMeters
	// Delay is the slowest path: max of the row's own model delay and
	// its children's (compositional delay estimation is first-order, as
	// the paper notes).
	Delay units.Seconds
	// EnergyPerOp is the model's energy per access (leaf rows).
	EnergyPerOp units.Joules
	// Params holds the resolved parameter values of a model row.
	Params model.Params
	// Estimate is the raw model output (model rows only).
	Estimate *model.Estimate
	// Children are the sub-row results, in row order.
	Children []*Result
}

// Find returns the descendant result at a path relative to r.
func (r *Result) Find(path string) *Result {
	if path == "" {
		return r
	}
	cur := r
outer:
	for _, part := range splitPath(path) {
		for _, c := range cur.Children {
			if c.Node.Name == part {
				cur = c
				continue outer
			}
		}
		return nil
	}
	return cur
}

// EvalError reports an evaluation failure with the offending row.
type EvalError struct {
	// Path locates the row ("" is the root).
	Path string
	// Msg describes the failure.
	Msg string
	// Err, when non-nil, is the underlying cause, preserved so typed
	// errors (a mounted remote model's unavailability, a context
	// cancellation) survive sheet evaluation for errors.Is/As.  The
	// rendered message is Msg either way.
	Err error
}

func (e *EvalError) Error() string {
	where := e.Path
	if where == "" {
		where = "(root)"
	}
	return fmt.Sprintf("sheet: %s: %s", where, e.Msg)
}

// Unwrap exposes the underlying cause to errors.Is and errors.As.
func (e *EvalError) Unwrap() error { return e.Err }

// Evaluate computes the whole design — the Play button.
//
// Evaluation runs on the design's compiled plan (see plan.go) when one
// is available, falling back to the tree interpreter whenever the plan
// cannot be built or errs; both paths produce identical values, and
// the fallback guarantees the interpreter's canonical error messages.
func (d *Design) Evaluate() (*Result, error) {
	return d.evaluate(nil)
}

// EvaluateAt computes the design with temporary overrides applied to
// the root globals — the parameter-sweep entry point.  The design is
// not mutated.
//
// Concurrency: per-call evaluation state lives in the evaluator (or a
// pooled plan run), so concurrent EvaluateAt (and Evaluate) calls on
// one Design are safe as long as no goroutine mutates the design tree
// while they run.  Code that cannot rule out concurrent edits (the web
// handlers) should evaluate a Clone instead; see Clone and DESIGN.md's
// "Concurrent exploration" section for the full contract.
func (d *Design) EvaluateAt(overrides map[string]float64) (*Result, error) {
	return d.evaluate(overrides)
}

// evaluate is the shared compiled-first entry point.
func (d *Design) evaluate(overrides map[string]float64) (*Result, error) {
	if plan, err := d.PlanFor(overrideNames(overrides)); err == nil {
		if r, err := plan.Exec(overrides); err == nil {
			return r, nil
		}
	}
	planFallbacks.Inc()
	return d.evaluateInterpreted(overrides)
}

// EvaluateTotals computes just the design's root power, area and delay
// at an override point — identical numbers to EvaluateAt's root Result,
// without building the Result tree.  Macro evaluation uses it, which
// is what makes deeply nested macro hierarchies cheap.
func (d *Design) EvaluateTotals(overrides map[string]float64) (power, area, delay float64, err error) {
	if plan, perr := d.PlanFor(overrideNames(overrides)); perr == nil {
		if pw, a, dl, terr := plan.ExecTotals(overrides); terr == nil {
			return pw, a, dl, nil
		}
	}
	planFallbacks.Inc()
	r, err := d.evaluateInterpreted(overrides)
	if err != nil {
		return 0, 0, 0, err
	}
	return float64(r.Power), float64(r.Area), float64(r.Delay), nil
}

// EvaluateInterpreted computes the design through the tree interpreter
// only, bypassing the compiled plan.  It exists for equivalence testing
// and as the semantic reference: Evaluate/EvaluateAt must agree with it
// exactly, value for value and error message for error message.
func (d *Design) EvaluateInterpreted(overrides map[string]float64) (*Result, error) {
	return d.evaluateInterpreted(overrides)
}

func (d *Design) evaluateInterpreted(overrides map[string]float64) (*Result, error) {
	ev := &evaluator{
		design:    d,
		results:   make(map[*Node]*Result),
		visiting:  make(map[*Node]bool),
		frames:    make(map[*Node]*frame),
		overrides: overrides,
	}
	return ev.node(d.Root)
}

type evaluator struct {
	design    *Design
	results   map[*Node]*Result
	visiting  map[*Node]bool
	frames    map[*Node]*frame
	overrides map[string]float64
}

// frame lazily evaluates one node's globals.
type frame struct {
	node     *Node
	values   map[string]float64
	visiting map[string]bool
}

func (ev *evaluator) frameFor(n *Node) *frame {
	f, ok := ev.frames[n]
	if !ok {
		f = &frame{node: n, values: make(map[string]float64), visiting: make(map[string]bool)}
		ev.frames[n] = f
	}
	return f
}

func (ev *evaluator) errf(n *Node, format string, args ...any) error {
	return &EvalError{Path: n.Path(), Msg: fmt.Sprintf(format, args...)}
}

// lookupVar resolves a variable visible at node n: root overrides
// first, then globals from n's own frame outward to the root.
func (ev *evaluator) lookupVar(n *Node, name string) (float64, bool, error) {
	if ev.overrides != nil {
		if v, ok := ev.overrides[name]; ok {
			return v, true, nil
		}
	}
	for scope := n; scope != nil; scope = scope.parent {
		if e := scope.Global(name); e != nil {
			v, err := ev.globalValue(scope, name, e)
			if err != nil {
				return 0, false, err
			}
			return v, true, nil
		}
	}
	return 0, false, nil
}

// globalValue evaluates a global with memoization and cycle detection.
func (ev *evaluator) globalValue(owner *Node, name string, e *expr.Expr) (float64, error) {
	f := ev.frameFor(owner)
	if v, ok := f.values[name]; ok {
		return v, nil
	}
	if f.visiting[name] {
		return 0, ev.errf(owner, "circular definition of variable %q", name)
	}
	f.visiting[name] = true
	defer delete(f.visiting, name)
	env := &nodeEnv{ev: ev, node: owner}
	v, err := e.Eval(env)
	if env.err != nil {
		// A scope resolution failed deeper in (e.g. a variable cycle);
		// surface that cause rather than the generic eval error.
		return 0, env.err
	}
	if err != nil {
		return 0, ev.errf(owner, "variable %q: %v", name, err)
	}
	f.values[name] = v
	return v, nil
}

// nodeEnv adapts the evaluator to expr's environment interfaces for
// expressions written at a given node.
type nodeEnv struct {
	ev   *evaluator
	node *Node
	err  error // sticky first resolution error
}

// Var implements expr.Env.
func (env *nodeEnv) Var(name string) (float64, bool) {
	v, ok, err := env.ev.lookupVar(env.node, name)
	if err != nil && env.err == nil {
		env.err = err
	}
	return v, ok
}

// dbtactFunc implements dbtact(std, rho, bits): the dual-bit-type
// activity scale for a word carrying a signal with the given
// statistics, relative to the random-data characterization — bind a
// cell's "act" parameter to it and the sheet prices signal
// correlation.  It is a package-level value so the interpreter's
// nodeEnv and the compiled plan's resolver hand out the same function.
var dbtactFunc expr.Func = func(args []expr.Value) (float64, error) {
	if len(args) != 3 {
		return 0, fmt.Errorf("dbtact(std, rho, bits) takes three numbers")
	}
	std, err := args[0].Float()
	if err != nil {
		return 0, err
	}
	rho, err := args[1].Float()
	if err != nil {
		return 0, err
	}
	bits, err := args[2].Float()
	if err != nil {
		return 0, err
	}
	s := activity.Stats{Std: std, Rho: rho}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if bits < 1 || bits > 1024 {
		return 0, fmt.Errorf("dbtact: bits %g out of range", bits)
	}
	return s.ActScale(int(bits)), nil
}

// signactFunc implements signact(rho): the sign-bit transition
// probability arccos(ρ)/π.
var signactFunc expr.Func = func(args []expr.Value) (float64, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("signact(rho) takes one number")
	}
	rho, err := args[0].Float()
	if err != nil {
		return 0, err
	}
	return activity.SignActivity(rho), nil
}

// Func implements expr.FuncEnv: the inter-model accessors plus the
// signal-statistics helpers.
func (env *nodeEnv) Func(name string) (expr.Func, bool) {
	switch name {
	case "dbtact":
		return dbtactFunc, true
	case "signact":
		return signactFunc, true
	}
	var metric func(*Result) float64
	switch name {
	case "power":
		metric = func(r *Result) float64 { return float64(r.Power) }
	case "area":
		metric = func(r *Result) float64 { return float64(r.Area) }
	case "delay":
		metric = func(r *Result) float64 { return float64(r.Delay) }
	default:
		return nil, false
	}
	return func(args []expr.Value) (float64, error) {
		if len(args) != 1 || !args[0].IsStr {
			return 0, fmt.Errorf("%s() takes one quoted row path", name)
		}
		ref := args[0].Str
		target := env.ev.design.Resolve(env.node, ref)
		if target == nil {
			return 0, fmt.Errorf("%s(%q): no such row", name, ref)
		}
		r, err := env.ev.node(target)
		if err != nil {
			return 0, fmt.Errorf("%s(%q): %v", name, ref, err)
		}
		return metric(r), nil
	}, true
}

// evalExpr evaluates an expression at a node, surfacing scope errors.
func (ev *evaluator) evalExpr(n *Node, e *expr.Expr) (float64, error) {
	env := &nodeEnv{ev: ev, node: n}
	v, err := e.Eval(env)
	if env.err != nil {
		return 0, env.err
	}
	return v, err
}

// node computes (and memoizes) a row's result.
func (ev *evaluator) node(n *Node) (*Result, error) {
	if r, ok := ev.results[n]; ok {
		return r, nil
	}
	if ev.visiting[n] {
		return nil, ev.errf(n, "circular dependency between rows (through power()/area()/delay())")
	}
	ev.visiting[n] = true
	defer delete(ev.visiting, n)

	r := &Result{Node: n}

	if n.Model != "" {
		if err := ev.evalModelRow(n, r); err != nil {
			return nil, err
		}
	}
	for _, c := range n.Children {
		cr, err := ev.node(c)
		if err != nil {
			return nil, err
		}
		r.Children = append(r.Children, cr)
		r.Power += cr.Power
		r.DynamicPower += cr.DynamicPower
		r.StaticPower += cr.StaticPower
		r.Area += cr.Area
		switch n.Delay {
		case ComposeChain:
			// Children in series along one path: delays add.
			r.Delay += cr.Delay
		default:
			// Parallel children: the slowest dominates.
			if cr.Delay > r.Delay {
				r.Delay = cr.Delay
			}
		}
	}
	ev.results[n] = r
	return r, nil
}

func (ev *evaluator) evalModelRow(n *Node, r *Result) error {
	m, ok := ev.design.Registry.Lookup(n.Model)
	if !ok {
		return ev.errf(n, "no model named %q in library", n.Model)
	}
	params := make(model.Params, len(n.Params)+3)
	for _, b := range n.Params {
		v, err := ev.evalExpr(n, b.Expr)
		if err != nil {
			if ee, ok := err.(*EvalError); ok {
				return ee
			}
			return ev.errf(n, "param %q: %v", b.Name, err)
		}
		params[b.Name] = v
	}
	// Inherit the conventional scope parameters from enclosing globals
	// when the row does not bind them itself: the Figure 2 sheet sets
	// "Supply V" and "Operating Frequency" once at the top.
	for _, std := range []string{model.ParamVDD, model.ParamFreq, model.ParamTech} {
		if _, bound := params[std]; bound {
			continue
		}
		if v, ok, err := ev.lookupVar(n, std); err != nil {
			return err
		} else if ok {
			params[std] = v
		}
	}
	est, err := model.Evaluate(m, params)
	if err != nil {
		// Keep the cause: the message is identical to errf's "%v", but
		// errors.Is still sees through to typed model errors (e.g. a
		// remote library's ErrRemoteUnavailable).
		return &EvalError{Path: n.Path(), Msg: err.Error(), Err: err}
	}
	r.Estimate = est
	r.Params = params
	r.Power = est.Power()
	r.DynamicPower = est.DynamicPower()
	r.StaticPower = est.StaticPower()
	r.Area = est.Area
	r.Delay = est.Delay
	r.EnergyPerOp = est.EnergyPerOp()
	return nil
}
