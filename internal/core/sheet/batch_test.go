package sheet

import (
	"context"
	"math"
	"strings"
	"testing"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// sweepableCell is a test model with a closed sweep form, mirroring how
// the library models implement model.SweepFormer: Evaluate and
// SweepForm compute the same expressions, so the kernel path must be
// bit-identical to the scalar one.
type sweepableCell struct {
	model.Func
	capPerBit float64
}

func (c *sweepableCell) SweepForm(p model.Params) (*model.SweepForm, bool) {
	return &model.SweepForm{
		Dyn:    []model.SweepTerm{{Csw: p["act"] * p["bits"] * c.capPerBit, FMul: 1}},
		Area:   p["bits"] * 1e-9,
		Delay0: p["bits"] * 1e-9,
	}, true
}

// newSweepableCell builds a "kcell" instance whose Evaluate and
// SweepForm share one capacitance coefficient.
func newSweepableCell(title string, capPerBit float64) *sweepableCell {
	c := &sweepableCell{capPerBit: capPerBit}
	c.Func = model.Func{
		Meta: model.Info{
			Name: "kcell", Title: title, Class: model.Computation, Doc: "d",
			Params: model.WithStd(
				model.Param{Name: "bits", Default: 8, Min: 1, Max: 1024, Integer: true},
				model.Param{Name: "act", Default: 1, Min: 0, Max: 2},
			),
		},
		Fn: func(p model.Params) (*model.Estimate, error) {
			bits := p["bits"]
			e := &model.Estimate{VDD: p.VDD()}
			e.AddCap("c", units.Farads(p["act"]*bits*capPerBit), p.Freq())
			e.Area = units.SquareMeters(bits * 1e-9)
			e.Delay = units.Seconds(bits * 1e-9 * model.DelayScale(float64(p.VDD())))
			return e, nil
		},
	}
	return c
}

// batchTestRegistry extends the plan-test registry with "kcell", a
// model the batch executor can kernelize.
func batchTestRegistry() *model.Registry {
	r := testRegistry()
	r.MustRegister(newSweepableCell("kernel cell", 100e-15))
	return r
}

// batchTestDesign is a sheet that routes the columnar executor through
// every step kind at once: a batchable variant global (bExpr), a
// conditional parameter (bExprScalar feeding bModelScalar), kernel rows
// with swept and divided clocks (bKernel), a model without a sweep form
// (bModelScalar), a chain-composed subtree with a shadowed supply
// (bAgg), and a converter priced off power() slot reads.
func batchTestDesign(t *testing.T) *Design {
	t.Helper()
	d := NewDesign("batch", batchTestRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 2e6, "2MHz")
	if err := d.Root.SetGlobal("fdiv", "f/16"); err != nil {
		t.Fatal(err)
	}
	k := d.Root.MustAddChild("kern", "kcell")
	if err := k.SetParam("bits", "16"); err != nil {
		t.Fatal(err)
	}
	kd := d.Root.MustAddChild("kerndiv", "kcell")
	if err := kd.SetParam("f", "fdiv"); err != nil {
		t.Fatal(err)
	}
	cond := d.Root.MustAddChild("cond", "kcell")
	// A variant non-operating-point parameter: the kernel gate must
	// refuse this row and price it per point.
	if err := cond.SetParam("act", "vdd > 1 ? 0.5 : 1.5"); err != nil {
		t.Fatal(err)
	}
	plain := d.Root.MustAddChild("plain", "cell")
	if err := plain.SetParam("bits", "24"); err != nil {
		t.Fatal(err)
	}
	sub := d.Root.MustAddChild("sub", "")
	sub.Delay = ComposeChain
	sub.SetGlobalValue("vdd", 1.2, "1.2")
	b := sub.MustAddChild("beta", "kcell")
	if err := b.SetParam("bits", "8"); err != nil {
		t.Fatal(err)
	}
	conv := d.Root.MustAddChild("conv", "loss")
	if err := conv.SetParam("pload", `power("sub") + power("kern")`); err != nil {
		t.Fatal(err)
	}
	return d
}

// newBatchPair compiles the design for the override names and returns
// both evaluation contexts over one shared baseline.
func newBatchPair(t *testing.T, d *Design, names []string, capacity int) (*SweepEval, *BatchEval) {
	t.Helper()
	plan, err := d.PlanFor(names)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := plan.NewSweeper()
	if err != nil {
		t.Fatal(err)
	}
	return sw.NewEval(), sw.NewBatchEval(capacity)
}

// checkBatchMatchesEval runs one chunk through the BatchEval and every
// point through the scalar SweepEval, demanding bit-identical totals.
func checkBatchMatchesEval(t *testing.T, ev *SweepEval, bev *BatchEval, points []map[string]float64) {
	t.Helper()
	n := len(points)
	pw, area, delay := make([]float64, n), make([]float64, n), make([]float64, n)
	if err := bev.Run(context.Background(), points, pw, area, delay); err != nil {
		t.Fatalf("batch run: %v", err)
	}
	for i, ov := range points {
		wp, wa, wd, err := ev.At(ov)
		if err != nil {
			t.Fatalf("scalar at %v: %v", ov, err)
		}
		if math.Float64bits(pw[i]) != math.Float64bits(wp) ||
			math.Float64bits(area[i]) != math.Float64bits(wa) ||
			math.Float64bits(delay[i]) != math.Float64bits(wd) {
			t.Errorf("point %d %v: batch %v/%v/%v, scalar %v/%v/%v",
				i, ov, pw[i], area[i], delay[i], wp, wa, wd)
		}
	}
}

func TestBatchEvalMatchesSweepEval(t *testing.T) {
	d := batchTestDesign(t)
	ev, bev := newBatchPair(t, d, []string{"vdd"}, 64)
	var pts []map[string]float64
	// 0.6 and 0.7 sit at or below the delay-scale threshold voltage:
	// the +Inf delay positions must survive the columnar path too.
	for i := 0; i < 64; i++ {
		pts = append(pts, map[string]float64{"vdd": 0.6 + float64(i)*(3.3-0.6)/63})
	}
	checkBatchMatchesEval(t, ev, bev, pts)
	// A second, smaller chunk through the same contexts: per-chunk
	// state (DelayScale memos, override columns) must reset cleanly.
	checkBatchMatchesEval(t, ev, bev, pts[:7])
}

func TestBatchEvalFrequencySweep(t *testing.T) {
	d := batchTestDesign(t)
	// Constant vdd: the kernels take the precomputed DelayScale column.
	ev, bev := newBatchPair(t, d, []string{"f"}, 32)
	var pts []map[string]float64
	for i := 0; i < 32; i++ {
		pts = append(pts, map[string]float64{"f": 1e6 * float64(1+i)})
	}
	checkBatchMatchesEval(t, ev, bev, pts)
}

func TestBatchEvalTwoVariableSweep(t *testing.T) {
	d := batchTestDesign(t)
	ev, bev := newBatchPair(t, d, []string{"f", "vdd"}, 64)
	var pts []map[string]float64
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			pts = append(pts, map[string]float64{
				"vdd": 0.9 + 0.3*float64(i), "f": 1e6 * float64(1+j),
			})
		}
	}
	checkBatchMatchesEval(t, ev, bev, pts)
}

func TestBatchEvalErrors(t *testing.T) {
	d := batchTestDesign(t)
	_, bev := newBatchPair(t, d, []string{"vdd"}, 8)
	pw, area, delay := make([]float64, 8), make([]float64, 8), make([]float64, 8)
	ctx := context.Background()

	// Oversized chunk.
	big := make([]map[string]float64, 9)
	for i := range big {
		big[i] = map[string]float64{"vdd": 1.5}
	}
	if err := bev.Run(ctx, big, make([]float64, 9), make([]float64, 9), make([]float64, 9)); err == nil ||
		!strings.Contains(err.Error(), "capacity") {
		t.Fatalf("oversized chunk: got %v", err)
	}

	// A point missing the override the plan was compiled for.
	if err := bev.Run(ctx, []map[string]float64{{"f": 1e6}}, pw, area, delay); err == nil ||
		!strings.Contains(err.Error(), "missing override") {
		t.Fatalf("missing override: got %v", err)
	}

	// A failing point anywhere in the chunk fails the whole run: vdd=11
	// violates the std schema range (max 10 V), caught by the kernel
	// path's per-column validation.
	bad := []map[string]float64{{"vdd": 1.5}, {"vdd": 11}, {"vdd": 2}}
	if err := bev.Run(ctx, bad[:3], pw, area, delay); err == nil {
		t.Fatal("out-of-range vdd slipped through the columnar path")
	}

	// Cancellation surfaces as an error, not a partial chunk.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := bev.Run(canceled, []map[string]float64{{"vdd": 1.5}}, pw, area, delay); err == nil {
		t.Fatal("canceled context not honored")
	}

	// Errors must not poison later runs: a clean chunk still works and
	// still matches the scalar path.
	ev, _ := newBatchPair(t, d, []string{"vdd"}, 8)
	checkBatchMatchesEval(t, ev, bev, []map[string]float64{{"vdd": 1.1}, {"vdd": 2.2}})
}

func TestBatchEvalModelRegeneration(t *testing.T) {
	d := batchTestDesign(t)
	ev, bev := newBatchPair(t, d, []string{"vdd"}, 4)
	pts := []map[string]float64{{"vdd": 1.0}, {"vdd": 2.0}}
	checkBatchMatchesEval(t, ev, bev, pts)
	// Swap the kernel model for one with doubled capacitance: the next
	// Run must rebuild against the new registry generation, exactly as
	// the scalar path does.
	d.Registry.MustRegister(newSweepableCell("kernel cell v2", 200e-15))
	checkBatchMatchesEval(t, ev, bev, pts)
}
