package sheet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildRandomTree grows a random hierarchy of cell rows under a
// deterministic RNG and returns the design plus the number of leaves.
func buildRandomTree(seed int64) (*Design, int) {
	rng := rand.New(rand.NewSource(seed))
	d := NewDesign("random", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	leaves := 0
	var grow func(n *Node, depth int)
	grow = func(n *Node, depth int) {
		kids := rng.Intn(4)
		if depth == 0 && kids == 0 {
			kids = 1
		}
		for i := 0; i < kids; i++ {
			if depth < 3 && rng.Intn(3) == 0 {
				sub := n.MustAddChild(fmt.Sprintf("g%d_%d", depth, i), "")
				grow(sub, depth+1)
				continue
			}
			leaf := n.MustAddChild(fmt.Sprintf("c%d_%d", depth, i), "cell")
			leaf.SetParamValue("bits", float64(1+rng.Intn(64)), "")
			leaves++
		}
	}
	grow(d.Root, 0)
	return d, leaves
}

// Property: for any hierarchy, the root power/area equal the sums over
// leaves, and repeated evaluation is bit-identical.
func TestQuickHierarchyConservation(t *testing.T) {
	f := func(seed int64) bool {
		d, leaves := buildRandomTree(seed)
		r1, err := d.Evaluate()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		var sumP, sumA float64
		count := 0
		var walk func(*Result)
		walk = func(rr *Result) {
			if rr.Estimate != nil {
				sumP += float64(rr.Estimate.Power())
				sumA += float64(rr.Estimate.Area)
				count++
			}
			for _, c := range rr.Children {
				walk(c)
			}
		}
		walk(r1)
		if count != leaves {
			t.Logf("seed %d: %d leaves evaluated, want %d", seed, count, leaves)
			return false
		}
		if math.Abs(sumP-float64(r1.Power)) > 1e-12*math.Max(1, sumP) {
			return false
		}
		if math.Abs(sumA-float64(r1.Area)) > 1e-12*math.Max(1, sumA) {
			return false
		}
		r2, err := d.Evaluate()
		if err != nil {
			return false
		}
		return r1.Power == r2.Power && r1.Area == r2.Area && r1.Delay == r2.Delay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: JSON round trip preserves the evaluation of any random
// hierarchy exactly.
func TestQuickJSONRoundTripExact(t *testing.T) {
	f := func(seed int64) bool {
		d, _ := buildRandomTree(seed)
		blob, err := d.MarshalJSON()
		if err != nil {
			return false
		}
		d2, err := ParseDesign(blob, d.Registry)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		r1, err1 := d.Evaluate()
		r2, err2 := d2.Evaluate()
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Power == r2.Power && r1.Area == r2.Area
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: scaling the supply by k scales every full-swing design's
// power by exactly k² (no hidden voltage dependence anywhere in the
// evaluator).
func TestQuickSupplyQuadratic(t *testing.T) {
	f := func(seed int64, rawK uint8) bool {
		k := 1 + float64(rawK)/64 // 1 .. ~5
		d, _ := buildRandomTree(seed)
		base, err := d.Evaluate()
		if err != nil {
			return false
		}
		if 1.5*k > 10 { // validation cap on vdd
			return true
		}
		scaled, err := d.EvaluateAt(map[string]float64{"vdd": 1.5 * k})
		if err != nil {
			return false
		}
		want := float64(base.Power) * k * k
		return math.Abs(float64(scaled.Power)-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
