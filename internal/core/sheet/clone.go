package sheet

// Snapshot semantics for concurrent exploration.
//
// EvaluateAt keeps all of its working state (memoized results, variable
// frames, cycle-detection sets) inside a per-call evaluator, so any
// number of evaluations may run concurrently over one Design — PROVIDED
// nothing mutates the design tree while they run.  The sheet itself is
// an editable spreadsheet, though: the web server rebinds cells and
// adds rows between requests.  Clone gives exploration code an
// immutable-by-convention snapshot to evaluate against, decoupling
// long-running sweeps from subsequent edits to the live sheet.

// Clone returns a deep, independent copy of the design: a snapshot that
// later edits to d (new rows, rebound cells) cannot affect.
//
// The node tree and every binding slice are copied; the compiled
// expressions themselves are shared, which is safe because *expr.Expr
// is immutable after Compile (rebinding a cell swaps the pointer in the
// owning node's slice, never the expression in place).  The model
// Registry is also shared — it is safe for concurrent use, and sharing
// it keeps remote and user-defined models resolvable from the clone.
//
// Clone is the snapshot half of the concurrency contract documented in
// DESIGN.md ("Concurrent exploration"): evaluating a clone is race-free
// against any mutation of the original, and concurrent EvaluateAt calls
// on one clone are race-free against each other.
func (d *Design) Clone() *Design {
	if d == nil {
		return nil
	}
	return &Design{
		Name:     d.Name,
		Doc:      d.Doc,
		Root:     d.Root.Clone(),
		Registry: d.Registry,
	}
}

// Clone returns a deep copy of the node and its whole subtree.  The
// copy's parent is nil, making it a self-contained root; binding slices
// are copied (sharing the immutable compiled expressions) so parameter
// and variable edits on either tree never show through to the other.
func (n *Node) Clone() *Node {
	return n.cloneInto(nil)
}

func (n *Node) cloneInto(parent *Node) *Node {
	if n == nil {
		return nil
	}
	c := &Node{
		Name:   n.Name,
		Doc:    n.Doc,
		Model:  n.Model,
		Delay:  n.Delay,
		parent: parent,
	}
	if len(n.Params) > 0 {
		c.Params = append([]Binding(nil), n.Params...)
	}
	if len(n.Globals) > 0 {
		c.Globals = append([]Binding(nil), n.Globals...)
	}
	for _, ch := range n.Children {
		c.Children = append(c.Children, ch.cloneInto(c))
	}
	return c
}
