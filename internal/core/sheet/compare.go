package sheet

import (
	"fmt"
	"io"
	"sort"

	"powerplay/internal/units"
)

// Compare puts two evaluated designs side by side — "this estimation
// strategy enables a quick comparison of alternative design choices",
// which is the entire point of the Figure 1 vs Figure 3 exercise.
// Rows are matched by path; rows present in only one design are shown
// against a blank.

// CompareRow is one matched line of a comparison.
type CompareRow struct {
	// Path is the row location (matched by name).
	Path string
	// A and B are the row powers in each design; NaN-free: a missing
	// row reports 0 with Only set.
	A, B units.Watts
	// Only is "" when both designs have the row, "A" or "B" otherwise.
	Only string
}

// Delta returns B − A.
func (r CompareRow) Delta() units.Watts { return r.B - r.A }

// Comparison is the result of Compare.
type Comparison struct {
	// NameA and NameB title the columns.
	NameA, NameB string
	// Rows are the matched model rows, sorted by |delta| descending.
	Rows []CompareRow
	// TotalA and TotalB are the design totals.
	TotalA, TotalB units.Watts
}

// Ratio returns TotalA / TotalB (the "1/5 of the original" number).
func (c *Comparison) Ratio() float64 {
	if c.TotalB == 0 {
		return 0
	}
	return float64(c.TotalA) / float64(c.TotalB)
}

// Compare evaluates nothing itself: it digests two Results.
func Compare(nameA string, a *Result, nameB string, b *Result) *Comparison {
	collect := func(r *Result) map[string]units.Watts {
		out := map[string]units.Watts{}
		var walk func(*Result)
		walk = func(rr *Result) {
			if rr.Estimate != nil {
				out[rr.Node.Path()] = rr.Estimate.Power()
			}
			for _, c := range rr.Children {
				walk(c)
			}
		}
		walk(r)
		return out
	}
	pa, pb := collect(a), collect(b)
	seen := map[string]bool{}
	var rows []CompareRow
	for path, p := range pa {
		row := CompareRow{Path: path, A: p}
		if q, ok := pb[path]; ok {
			row.B = q
		} else {
			row.Only = "A"
		}
		rows = append(rows, row)
		seen[path] = true
	}
	for path, q := range pb {
		if seen[path] {
			continue
		}
		rows = append(rows, CompareRow{Path: path, B: q, Only: "B"})
	}
	sort.Slice(rows, func(i, j int) bool {
		di := float64(rows[i].Delta())
		dj := float64(rows[j].Delta())
		if abs(di) != abs(dj) {
			return abs(di) > abs(dj)
		}
		return rows[i].Path < rows[j].Path
	})
	return &Comparison{
		NameA: nameA, NameB: nameB,
		Rows:   rows,
		TotalA: a.Power, TotalB: b.Power,
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Write renders the comparison as a table.
func (c *Comparison) Write(w io.Writer) {
	fmt.Fprintf(w, "%-24s %14s %14s %14s\n", "row", c.NameA, c.NameB, "delta")
	for _, r := range c.Rows {
		aCol, bCol := r.A.String(), r.B.String()
		switch r.Only {
		case "A":
			bCol = "—"
		case "B":
			aCol = "—"
		}
		fmt.Fprintf(w, "%-24s %14s %14s %14s\n", clip(r.Path, 24), aCol, bCol, r.Delta().String())
	}
	fmt.Fprintf(w, "%-24s %14s %14s %14s   (%s/%s = %.2fx)\n", "TOTAL",
		c.TotalA.String(), c.TotalB.String(), (c.TotalB - c.TotalA).String(),
		c.NameA, c.NameB, c.Ratio())
}
