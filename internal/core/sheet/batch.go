package sheet

// Columnar plan execution.
//
// A BatchEval is the chunked counterpart of SweepEval: where SweepEval
// replays the override-dependent cone of a compiled plan once per
// point, a BatchEval replays it once per *chunk*, with every slot of
// the plan widened to a []float64 column.  Expression steps run through
// expr.Program.RunBatch (tight per-operator loops), model rows with a
// closed sweep form run through model.SweepForm.EvalCols (no Estimate
// allocation, no parameter map, DelayScale memoized per vdd column),
// and the remaining work — non-batchable programs, models without a
// sweep form — degrades gracefully to per-point execution inside the
// chunk without giving up the columnar steps around it.
//
// Correctness contract, continuing the plan's: a Run that succeeds
// produces, for every point, values bit-identical to SweepEval.At on
// that point (each columnar path replicates the scalar path's
// floating-point operations in order — see expr.RunBatch and
// model.SweepForm for their halves of the argument).  A Run that fails
// promises only that at least one point of the chunk would fail the
// scalar path too; the error's text and position are NOT canonical.
// Callers must treat any Run error as "re-evaluate this chunk point by
// point through the scalar path", which reproduces the canonical error
// at the canonical (lowest-indexed) point.  Batch errors are therefore
// never user-visible.

import (
	"context"
	"fmt"

	"powerplay/internal/core/model"
	"powerplay/internal/expr"
	"powerplay/internal/obs"
)

// sheetBatchSteps counts variant plan steps executed per chunk by the
// columnar executor, by path: "program" (columnar expression),
// "program_scalar" (per-point expression: control flow), "kernel"
// (model sweep form), "model_scalar" (per-point model evaluation).  A
// high scalar share means the sheet defeats the batch engine and
// explains a points/sec plateau.
var sheetBatchSteps = obs.NewCounterVec("powerplay_sheet_batch_steps_total",
	"Variant plan steps executed by the columnar sweep executor, by path.", "path")

// batch step kinds.
const (
	bExpr        uint8 = iota // batchable expression program
	bExprScalar               // expression with control flow: per-point Run
	bAgg                      // model-less row: child aggregation only
	bKernel                   // model with a sweep form: columnar kernel
	bModelScalar              // model without one: per-point Evaluate
)

// batchStep is one variant plan step prepared for columnar execution.
type batchStep struct {
	st   *planStep
	kind uint8

	// bKernel / bModelScalar state.
	mc   *rowModelCache
	form *model.SweepForm
	// vddCol and fCol supply the operating point to the kernel: plan
	// columns when the parameter is slot-bound, private constant
	// columns when defaulted.
	vddCol, fCol []float64
	// vddSlot >= 0 marks a sweep-variant vdd column whose DelayScale
	// column comes from the per-chunk memo; otherwise dsConst holds the
	// precomputed constant DelayScale column.
	vddSlot int
	dsConst []float64
}

// dsMemo is one per-chunk memoized DelayScale column.
type dsMemo struct {
	gen uint64
	col []float64
}

// BatchEval evaluates chunks of sweep points against a hoisted
// baseline, columnar wherever the plan allows.  It holds per-chunk
// mutable state and must not be used concurrently; each worker builds
// its own from the shared (immutable) Sweeper.
type BatchEval struct {
	sw       *Sweeper
	capacity int
	cols     [][]float64 // slot -> column; invariant slots broadcast baseline
	bsteps   []batchStep
	run      *planRun // scalar state for the per-point paths
	bscratch expr.BatchScratch

	built    bool
	gen      uint64 // registry generation bsteps were prepared for
	buildErr error

	chunkGen uint64
	ds       map[int]*dsMemo // vdd slot -> DelayScale column memo
}

// NewBatchEval returns a columnar evaluation context over the sweeper's
// baseline, able to evaluate up to capacity points per Run.  Like
// SweepEval, a BatchEval must not be used concurrently.
func (s *Sweeper) NewBatchEval(capacity int) *BatchEval {
	if capacity < 1 {
		capacity = 1
	}
	p := s.plan
	b := &BatchEval{
		sw:       s,
		capacity: capacity,
		cols:     make([][]float64, p.slotCount),
		run:      p.newRun(),
		ds:       make(map[int]*dsMemo),
	}
	// The scalar-path slot vector starts at the baseline, exactly like
	// a SweepEval's; per-point paths refresh only the variant slots
	// they read.
	copy(b.run.slots, s.baseline)
	// Every slot gets a column: invariant slots broadcast their
	// baseline value once here, variant slots are rewritten each Run by
	// the override fill and the variant steps.
	for i := range b.cols {
		col := make([]float64, capacity)
		if v := s.baseline[i]; v != 0 {
			for j := range col {
				col[j] = v
			}
		}
		b.cols[i] = col
	}
	return b
}

// constCol allocates a column holding one value.
func (b *BatchEval) constCol(v float64) []float64 {
	col := make([]float64, b.capacity)
	if v != 0 {
		for i := range col {
			col[i] = v
		}
	}
	return col
}

// invValue resolves an invariant parameter entry's (run-independent)
// value: a defaulted constant or a baseline slot.
func (b *BatchEval) invValue(en *paramEntry) float64 {
	if en.slot >= 0 {
		return b.sw.baseline[en.slot]
	}
	return en.def
}

// buildParams assembles the full validated parameter map the sweep-form
// kernels are built from: invariant entries carry their real values
// (checked, as the scalar path would on its first fill), variant ones a
// schema-default placeholder the form must not depend on.
func (b *BatchEval) buildParams(mc *rowModelCache) (model.Params, error) {
	full := make(model.Params, mc.size)
	for i := range mc.invEntries {
		en := &mc.invEntries[i]
		v := b.invValue(en)
		if en.check {
			if err := en.param.Check(v); err != nil {
				return nil, err
			}
		}
		full[en.name] = v
	}
	for i := range mc.varEntries {
		en := &mc.varEntries[i]
		full[en.name] = en.param.Default
	}
	return full, nil
}

// opCol resolves the column feeding an operating-point parameter (vdd
// or f) of a kernel row: the bound slot's column, a constant column for
// a defaulted parameter, or — matching Params' zero-for-missing
// semantics — a zero column when the model has no such parameter.  The
// second result is the slot index when the column is sweep-variant, -1
// when it is constant.
func (b *BatchEval) opCol(mc *rowModelCache, name string) ([]float64, int) {
	for i := range mc.varEntries {
		if en := &mc.varEntries[i]; en.name == name {
			return b.cols[en.slot], en.slot
		}
	}
	for i := range mc.invEntries {
		if en := &mc.invEntries[i]; en.name == name {
			if en.slot >= 0 {
				return b.cols[en.slot], -1
			}
			return b.constCol(en.def), -1
		}
	}
	return b.constCol(0), -1
}

// build prepares the variant steps for columnar execution against one
// registry generation.  A build failure poisons the BatchEval (Run
// returns the error) rather than one step: the caller's scalar fallback
// then reproduces the canonical failure, and a later registry change
// triggers a rebuild.
func (b *BatchEval) build(gen uint64) {
	b.built, b.gen, b.buildErr = true, gen, nil
	b.bsteps = b.bsteps[:0]
	p := b.sw.plan
	for _, si := range p.variantSteps {
		st := p.steps[si]
		bs := batchStep{st: st, vddSlot: -1}
		switch {
		case st.kind == stepExpr:
			if st.prog.Batchable() {
				bs.kind = bExpr
			} else {
				bs.kind = bExprScalar
			}
		case st.modelName == "":
			bs.kind = bAgg
		default:
			m, ok := p.design.Registry.Lookup(st.modelName)
			if !ok {
				b.buildErr = fmt.Errorf("no model named %q in library", st.modelName)
				return
			}
			mc := st.mc.Load()
			if mc == nil || mc.gen != gen {
				mc = buildRowModelCache(st, m, gen, p.variantSlot)
				st.mc.Store(mc)
			}
			if mc.invalid != "" {
				b.buildErr = fmt.Errorf("unknown parameter %q", mc.invalid)
				return
			}
			bs.mc = mc
			bs.kind = bModelScalar
			// The kernel path needs the row's variant parameters to be
			// exactly the operating point (a swept structural parameter
			// — bit width, activity — changes the form itself) and the
			// model to export a closed form.
			opOnly := true
			for i := range mc.varEntries {
				if n := mc.varEntries[i].name; n != model.ParamVDD && n != model.ParamFreq {
					opOnly = false
					break
				}
			}
			if sf, isFormer := m.(model.SweepFormer); isFormer && opOnly {
				full, err := b.buildParams(mc)
				if err != nil {
					b.buildErr = err
					return
				}
				if form, ok := sf.SweepForm(full); ok {
					bs.kind = bKernel
					bs.form = form
					var vddSlot int
					bs.vddCol, vddSlot = b.opCol(mc, model.ParamVDD)
					bs.fCol, _ = b.opCol(mc, model.ParamFreq)
					if vddSlot >= 0 {
						bs.vddSlot = vddSlot
					} else {
						// Constant vdd (an f sweep): one DelayScale
						// evaluation serves the whole column for the
						// life of the eval.
						bs.dsConst = b.constCol(model.DelayScale(bs.vddCol[0]))
					}
				}
			}
		}
		b.bsteps = append(b.bsteps, bs)
	}
}

// dsCol returns the per-chunk DelayScale column for a variant vdd slot,
// computing it at most once per chunk regardless of how many rows read
// the same supply.
func (b *BatchEval) dsCol(slot, n int) []float64 {
	m := b.ds[slot]
	if m == nil {
		m = &dsMemo{col: make([]float64, b.capacity)}
		b.ds[slot] = m
	}
	if m.gen != b.chunkGen {
		model.DelayScaleCols(m.col, b.cols[slot], n)
		m.gen = b.chunkGen
	}
	return m.col
}

// aggregate folds the children's result columns into a row's, in child
// order, replicating execStep's per-point accumulation.
func (b *BatchEval) aggregate(st *planStep, n int) {
	for _, cb := range st.childBases {
		for o := slotPower; o <= slotArea; o++ {
			dst := b.cols[st.base+o][:n]
			src := b.cols[cb+o][:n]
			for j := range dst {
				dst[j] += src[j]
			}
		}
		dst := b.cols[st.base+slotDelay][:n]
		src := b.cols[cb+slotDelay][:n]
		if st.compose == ComposeChain {
			for j := range dst {
				dst[j] += src[j]
			}
		} else {
			for j := range dst {
				if src[j] > dst[j] {
					dst[j] = src[j]
				}
			}
		}
	}
}

// Run evaluates one chunk of override points and writes the design's
// root totals for point i to pw[i], area[i], delay[i].  On success
// every value is bit-identical to SweepEval.At on the same point; on
// error the caller must re-evaluate the chunk through the scalar path
// (see the contract at the top of the file).
//
// Run honors ctx between steps and — on the per-point sub-paths, where
// a single model evaluation may be arbitrarily slow (remote models) —
// between points, returning ctx.Err() unwrapped; to a caller that is a
// batch error like any other, and the scalar re-run surfaces the
// canonical interruption message.
func (b *BatchEval) Run(ctx context.Context, points []map[string]float64, pw, area, delay []float64) error {
	n := len(points)
	if n == 0 {
		return nil
	}
	if n > b.capacity {
		return fmt.Errorf("sheet: batch of %d points exceeds capacity %d", n, b.capacity)
	}
	p := b.sw.plan
	gen := p.design.Registry.Generation()
	if !b.built || b.gen != gen {
		b.build(gen)
	}
	if b.buildErr != nil {
		return b.buildErr
	}
	b.chunkGen++
	for i, name := range p.overrideNames {
		col := b.cols[p.overrideSlots[i]]
		for j, pt := range points {
			v, ok := pt[name]
			if !ok {
				return fmt.Errorf("sweep point missing override %q", name)
			}
			col[j] = v
		}
	}
	for si := range b.bsteps {
		if err := ctx.Err(); err != nil {
			return err
		}
		bs := &b.bsteps[si]
		st := bs.st
		switch bs.kind {
		case bExpr:
			if err := st.prog.RunBatch(b.cols, b.cols[st.dst], n, &b.bscratch); err != nil {
				return err
			}
			sheetBatchSteps.With("program").Inc()

		case bExprScalar:
			slots := st.prog.Slots()
			for j := 0; j < n; j++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				for _, s := range slots {
					b.run.slots[s] = b.cols[s][j]
				}
				v, err := st.prog.Run(b.run.slots, &b.run.scratch)
				if err != nil {
					return err
				}
				b.cols[st.dst][j] = v
			}
			sheetBatchSteps.With("program_scalar").Inc()

		case bAgg:
			for o := 0; o < nodeSlots; o++ {
				col := b.cols[st.base+o][:n]
				for j := range col {
					col[j] = 0
				}
			}
			b.aggregate(st, n)

		case bKernel:
			// Validation amortized per column: each variant operating-
			// point parameter is range-checked in one pass over its
			// column before any arithmetic runs.
			for i := range bs.mc.varEntries {
				en := &bs.mc.varEntries[i]
				if !en.check {
					continue
				}
				col := b.cols[en.slot][:n]
				for j := range col {
					if err := en.param.Check(col[j]); err != nil {
						return err
					}
				}
			}
			ds := bs.dsConst
			if ds == nil {
				ds = b.dsCol(bs.vddSlot, n)
			}
			bs.form.EvalCols(bs.vddCol, bs.fCol, ds,
				b.cols[st.base+slotPower], b.cols[st.base+slotDynamic],
				b.cols[st.base+slotStatic], b.cols[st.base+slotArea],
				b.cols[st.base+slotDelay], n)
			b.aggregate(st, n)
			sheetBatchSteps.With("kernel").Inc()

		case bModelScalar:
			mc := bs.mc
			for j := 0; j < n; j++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				full, populated := b.run.fullMap(st.nodeIdx, mc.size, gen)
				if !populated {
					for i := range mc.invEntries {
						en := &mc.invEntries[i]
						v := b.invValue(en)
						if en.check {
							if err := en.param.Check(v); err != nil {
								return err
							}
						}
						full[en.name] = v
					}
				}
				for i := range mc.varEntries {
					en := &mc.varEntries[i]
					v := b.cols[en.slot][j]
					if en.check {
						if err := en.param.Check(v); err != nil {
							return err
						}
					}
					full[en.name] = v
				}
				if !populated {
					b.run.fullGen[st.nodeIdx] = gen
				}
				est, err := mc.m.Evaluate(full)
				if err != nil {
					return err
				}
				b.cols[st.base+slotPower][j] = float64(est.Power())
				b.cols[st.base+slotDynamic][j] = float64(est.DynamicPower())
				b.cols[st.base+slotStatic][j] = float64(est.StaticPower())
				b.cols[st.base+slotArea][j] = float64(est.Area)
				b.cols[st.base+slotDelay][j] = float64(est.Delay)
			}
			b.aggregate(st, n)
			sheetBatchSteps.With("model_scalar").Inc()
		}
	}
	base := p.nodeBase[p.rootIdx]
	copy(pw[:n], b.cols[base+slotPower][:n])
	copy(area[:n], b.cols[base+slotArea][:n])
	copy(delay[:n], b.cols[base+slotDelay][:n])
	return nil
}
