package sheet

// Incremental Play: dirty-cone recompute over compiled plans.
//
// The interactive loop the paper centers on — edit a cell, hit Play,
// read the new power column — touches one binding at a time, yet a
// plain Evaluate re-runs every step of the plan.  The Incremental
// engine retains the last run's slot vector and diffs the freshly
// compiled plan against the one that produced it: expressions are
// immutable and rebinding a cell swaps pointers, so comparing step
// expression identities across two congruent plans yields exactly the
// edited cells.  Dirtiness then propagates through the same slot
// read/write sets the variance analysis uses, and only the dirty cone
// re-executes over the retained baseline.
//
// Correctness contract (the same one the compiled and batch paths are
// held to): an incremental Play returns values bit-identical to a
// from-scratch full evaluation, including NaN/Inf propagation and
// error text/positions.  The guarantees stack as follows —
//
//   - Clean steps' slots hold values a full run would recompute
//     identically: their expressions are unchanged, their inputs are
//     clean (dirtiness is closed under the conservative read sets),
//     and their models are pure functions of their parameters for as
//     long as the registry generation holds (volatile models — remote
//     proxies, macros over them — never count as clean).
//   - Any structural change (row or binding added/removed/renamed, a
//     changed slot layout) fails congruence and forces a full run.
//   - Any error, at compile or run time, abandons the retained state
//     and falls back to the tree interpreter, which re-derives the
//     canonical error message — exactly as Design.Evaluate does.
//
// Full recompute stays available as the pinned fallback: callers that
// distrust the diffing (or want the old cost model) simply keep using
// Design.Evaluate, which is what the web layer's -incremental=false
// flag selects.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"powerplay/internal/expr"
	"powerplay/internal/obs"
)

// incrementalPlays counts engine runs by mode: "incremental" (dirty
// cone only, possibly empty), "full" (no retained state or structural
// change), "fallback" (compile or run error; interpreter re-derived
// the result).
var incrementalPlays = obs.NewCounterVec("powerplay_sheet_incremental_plays_total",
	"Incremental Play engine runs, by mode (incremental, full, fallback).", "mode")

// dirtySlotBuckets spans one-cell edits (a handful of slots) up to
// whole-sheet recomputes.
var dirtySlotBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// dirtySlots records how many slots each incremental Play actually
// recomputed; mass near zero means edits stay cheap.
var dirtySlots = obs.NewHistogram("powerplay_sheet_dirty_slots",
	"Slots recomputed per incremental Play.", dirtySlotBuckets)

// wavefrontWidth tracks the widest dependency level of the most
// recently played plan: the parallelism a full recompute can exploit.
var wavefrontWidth = obs.NewGauge("powerplay_sheet_wavefront_width",
	"Widest dependency level of the most recently played plan.")

// PlayDelta describes what one incremental Play actually did — the
// changed-cell delta set a live-collaboration channel (SSE) will push
// to other viewers of the same sheet.
type PlayDelta struct {
	// Full reports a from-scratch evaluation (first Play, structural
	// change, or error fallback); the whole sheet should be considered
	// changed.
	Full bool
	// DirtySteps/TotalSteps count scheduled steps re-executed vs. the
	// plan's total; DirtySlots/TotalSlots the same for value slots.
	DirtySteps, TotalSteps int
	DirtySlots, TotalSlots int
	// ChangedRows lists the paths of rows whose displayed results were
	// recomputed this Play — model rows re-priced and hierarchy rows
	// whose aggregates moved — in schedule order ("" is the root).  Nil
	// when Full (everything changed) or when no row was touched.
	ChangedRows []string
	// WavefrontWidth is the played plan's widest dependency level.
	WavefrontWidth int
}

// Incremental is a Design's incremental Play engine: it retains the
// last evaluation's plan, slot vector and per-row outputs, and
// re-executes only the dirty cone on the next Play.  Obtain one with
// Design.IncrementalEngine; all methods are safe for concurrent use
// (Plays serialize on the engine), but the usual sheet rule applies —
// do not mutate the design tree while a Play is running.
type Incremental struct {
	mu      sync.Mutex
	d       *Design
	plan    *Plan
	run     *planRun
	gen     uint64 // design generation the retained plan reflects
	regGen  uint64
	res     *Result
	results []*Result // per plan-node Result; clean subtrees are shared across Plays

	// Reusable per-Play scratch (guarded by mu).
	dirty     []bool
	slotDirty []bool
}

// IncrementalEngine returns the design's incremental Play engine,
// creating it on first use.
func (d *Design) IncrementalEngine() *Incremental {
	if e := d.inc.Load(); e != nil {
		return e
	}
	d.inc.CompareAndSwap(nil, &Incremental{d: d})
	return d.inc.Load()
}

// invalidate drops all retained state; the next Play runs full.
// Caller holds mu.
func (e *Incremental) invalidate() {
	e.plan, e.run, e.res, e.results, e.gen, e.regGen = nil, nil, nil, nil, 0, 0
}

// Play evaluates the design — the Play button — recomputing only what
// the edits since the previous Play can have changed.  The Result is
// bit-identical to Design.Evaluate's; the PlayDelta reports the work
// done and the rows whose numbers may differ from last time.
//
// The returned Result tree is shared with the engine's retained state
// and with earlier callers when nothing was dirty: treat it as
// read-only, as with all evaluation results.
func (e *Incremental) Play() (*Result, PlayDelta, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	// Fast path: when only cell bindings changed since the last Play,
	// patch the retained plan in place (see patch.go) — recompiling
	// just the edited expressions, keeping every slot assignment, step
	// and warmed row-model cache.  An unchanged design generation means
	// no tree edit at all, so the retained plan replays as-is (volatile
	// rows and registry moves still dirty themselves inside
	// playIncremental).  Anything the patcher cannot prove safe takes
	// the ordinary full-compile path below.
	if e.plan != nil && e.run != nil {
		gen := e.d.Generation()
		if gen == e.gen {
			return e.playIncremental(e.plan)
		}
		if np, ok := e.plan.patch(); ok {
			e.gen = gen
			return e.playIncremental(np)
		}
	}

	plan, err := e.d.PlanFor(nil)
	if err != nil {
		return e.fallback()
	}
	e.gen = e.d.Generation()
	if e.plan == nil || e.run == nil || (plan != e.plan && !congruent(e.plan, plan)) {
		return e.playFull(plan)
	}
	return e.playIncremental(plan)
}

// fallback abandons retained state and re-derives the result through
// the tree interpreter, reproducing the canonical error message.
// Caller holds mu.
func (e *Incremental) fallback() (*Result, PlayDelta, error) {
	e.invalidate()
	planFallbacks.Inc()
	incrementalPlays.With("fallback").Inc()
	r, err := e.d.evaluateInterpreted(nil)
	return r, PlayDelta{Full: true}, err
}

// playFull evaluates every step of the plan (wavefront-scheduled) and
// retains the run for the next Play.  Caller holds mu.
func (e *Incremental) playFull(plan *Plan) (*Result, PlayDelta, error) {
	run := plan.newRun()
	if err := plan.execLevels(nil, run, runtime.GOMAXPROCS(0), true); err != nil {
		return e.fallback()
	}
	e.plan, e.run, e.regGen = plan, run, e.d.Registry.Generation()
	e.results = plan.buildResults(run)
	e.res = e.results[plan.rootIdx]
	incrementalPlays.With("full").Inc()
	dirtySlots.Observe(float64(plan.slotCount))
	wavefrontWidth.Set(float64(plan.WavefrontWidth()))
	return e.res, PlayDelta{
		Full:           true,
		DirtySteps:     len(plan.steps),
		TotalSteps:     len(plan.steps),
		DirtySlots:     plan.slotCount,
		TotalSlots:     plan.slotCount,
		WavefrontWidth: plan.WavefrontWidth(),
	}, nil
}

// playIncremental diffs the (congruent) new plan against the retained
// one, propagates dirtiness, and re-executes only the dirty cone over
// the retained slot vector.  Caller holds mu.
func (e *Incremental) playIncremental(plan *Plan) (*Result, PlayDelta, error) {
	run := e.run
	regGen := e.d.Registry.Generation()

	// Seed self-dirty steps: edited cells (expression identity moved),
	// every model row when the registry generation moved (a
	// re-registered model may answer differently for any row), and
	// volatile rows always (their answers may change with no edit at
	// all — the reason Play's contract is "recompute now").
	if e.dirty == nil || len(e.dirty) < len(plan.steps) {
		e.dirty = make([]bool, len(plan.steps))
	}
	if e.slotDirty == nil || len(e.slotDirty) < plan.slotCount {
		e.slotDirty = make([]bool, plan.slotCount)
	}
	dirty, slotDirty := e.dirty[:len(plan.steps)], e.slotDirty[:plan.slotCount]
	clear(dirty)
	clear(slotDirty)
	regMoved := regGen != e.regGen
	if plan != e.plan {
		old := e.plan.steps
		for i, st := range plan.steps {
			if st.kind == stepExpr && st != old[i] && st.exprID != old[i].exprID {
				dirty[i] = true
			}
		}
	}
	if regMoved {
		for i, st := range plan.steps {
			if st.kind == stepNode && st.modelName != "" {
				dirty[i] = true
			}
		}
	} else {
		// Volatile rows re-price on every Play; the scan behind the
		// list hits the registry, so it is cached per generation.
		if !plan.volOK || plan.volGen != regGen {
			plan.volSteps = plan.volSteps[:0]
			for i, st := range plan.steps {
				if st.kind == stepNode && plan.stepVolatile(st) {
					plan.volSteps = append(plan.volSteps, i)
				}
			}
			plan.volGen, plan.volOK = regGen, true
		}
		for _, i := range plan.volSteps {
			dirty[i] = true
		}
	}

	// Propagate: a step reading a dirty slot is dirty; a dirty step's
	// written slots are dirty.  Schedule order makes one pass complete.
	dirtySteps, dirtySlotCount := 0, 0
	var changedRows []string
	var dirtyNodes []int
	for i, st := range plan.steps {
		if !dirty[i] {
			st.forEachRead(func(s int) {
				if slotDirty[s] {
					dirty[i] = true
				}
			})
		}
		if !dirty[i] {
			continue
		}
		dirtySteps++
		st.forEachWrite(func(s int) {
			if !slotDirty[s] {
				slotDirty[s] = true
				dirtySlotCount++
			}
		})
		if st.kind == stepNode {
			changedRows = append(changedRows, plan.nodePaths[st.nodeIdx])
			dirtyNodes = append(dirtyNodes, st.nodeIdx)
			// Force a fresh parameter-map fill: a populated map skips
			// its invariant entries, but under the adopted plan those
			// entries may be exactly what the edit changed.
			run.fulls[st.nodeIdx] = nil
		}
	}

	delta := PlayDelta{
		DirtySteps:     dirtySteps,
		TotalSteps:     len(plan.steps),
		DirtySlots:     dirtySlotCount,
		TotalSlots:     plan.slotCount,
		ChangedRows:    changedRows,
		WavefrontWidth: plan.WavefrontWidth(),
	}
	incrementalPlays.With("incremental").Inc()
	dirtySlots.Observe(float64(dirtySlotCount))
	wavefrontWidth.Set(float64(plan.WavefrontWidth()))

	if dirtySteps == 0 {
		e.plan, e.regGen = plan, regGen
		return e.res, delta, nil
	}
	if err := plan.execLevels(dirty, run, runtime.GOMAXPROCS(0), true); err != nil {
		return e.fallback()
	}
	e.plan, e.regGen = plan, regGen
	// Rebuild only the dirty rows' Results (children before parents —
	// dirtyNodes is in schedule order); clean subtrees are shared with
	// the previous Play's tree, which is immutable once built.
	for _, idx := range dirtyNodes {
		e.results[idx] = plan.buildResultAt(run, idx, e.results)
	}
	e.res = e.results[plan.rootIdx]
	return e.res, delta, nil
}

// congruent reports whether two plans share an identical schedule
// skeleton — same slot layout, same step shapes, same rows in the same
// order — differing at most in which expressions the steps compute.
// Congruence is what lets the new plan adopt the old plan's run: every
// clean step then provably recomputes the retained value into the
// retained slot.
func congruent(a, b *Plan) bool {
	if a.slotCount != b.slotCount || a.rootIdx != b.rootIdx ||
		len(a.steps) != len(b.steps) || len(a.nodes) != len(b.nodes) {
		return false
	}
	for i := range a.nodes {
		if a.nodes[i] != b.nodes[i] || a.nodeBase[i] != b.nodeBase[i] {
			return false
		}
	}
	for i := range a.steps {
		sa, sb := a.steps[i], b.steps[i]
		if sa.kind != sb.kind {
			return false
		}
		if sa.kind == stepExpr {
			if sa.dst != sb.dst || !equalInts(sa.prog.Slots(), sb.prog.Slots()) {
				return false
			}
			continue
		}
		if sa.node != sb.node || sa.nodeIdx != sb.nodeIdx || sa.base != sb.base ||
			sa.modelName != sb.modelName || sa.compose != sb.compose ||
			!equalStrings(sa.paramNames, sb.paramNames) ||
			!equalInts(sa.paramSlots, sb.paramSlots) ||
			!equalStrings(sa.stdNames, sb.stdNames) ||
			!equalInts(sa.stdSlots, sb.stdSlots) ||
			!equalInts(sa.childBases, sb.childBases) {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Wavefront execution

// minParallelLevel is the smallest level worth fanning out; below it
// goroutine handoff costs more than the steps.
const minParallelLevel = 4

// execLevels runs the scheduled steps whose include bit is set (nil
// means all), level by level: steps within one wavefront level read
// only slots finalized at shallower levels and write disjoint slots
// (and disjoint per-row entries of run), so a level's steps execute
// concurrently across up to `workers` goroutines, each with its own
// expression scratch.  A barrier separates levels.  On error the
// lowest-indexed failing step wins, execution stops after its level,
// and the run's state must be considered poisoned — callers fall back
// to a fresh evaluation, exactly as they do for any plan error.
func (p *Plan) execLevels(include []bool, run *planRun, workers int, keep bool) error {
	p.levels()
	var buf []int
	for _, bucket := range p.byLevel {
		buf = buf[:0]
		for _, si := range bucket {
			if include == nil || include[si] {
				buf = append(buf, si)
			}
		}
		if len(buf) == 0 {
			continue
		}
		if workers <= 1 || len(buf) < minParallelLevel {
			for _, si := range buf {
				if err := p.execStep(p.steps[si], run.slots, run, keep); err != nil {
					return err
				}
			}
			continue
		}
		n := workers
		if n > len(buf) {
			n = len(buf)
		}
		var (
			next     atomic.Int64
			wg       sync.WaitGroup
			errMu    sync.Mutex
			firstErr error
			firstIdx int
		)
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var scratch expr.Scratch
				for {
					i := int(next.Add(1)) - 1
					if i >= len(buf) {
						return
					}
					si := buf[i]
					if err := p.execStepScratch(p.steps[si], run.slots, run, &scratch, keep); err != nil {
						errMu.Lock()
						if firstErr == nil || si < firstIdx {
							firstErr, firstIdx = err, si
						}
						errMu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
	}
	return nil
}
