package sheet

import (
	"strings"
	"sync/atomic"
	"testing"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// countingRegistry is testRegistry with an evaluation counter per row
// model, so tests can assert exactly which rows an incremental Play
// re-priced.
func countingRegistry(counts map[string]*atomic.Int64) *model.Registry {
	r := model.NewRegistry()
	r.MustRegister(&model.Func{
		Meta: model.Info{
			Name: "cell", Title: "test cell", Class: model.Computation, Doc: "d",
			Params: model.WithStd(
				model.Param{Name: "bits", Default: 8, Min: 1, Max: 1024, Integer: true},
				model.Param{Name: "act", Default: 1, Min: 0, Max: 2},
			),
		},
		Fn: func(p model.Params) (*model.Estimate, error) {
			if c := counts["cell"]; c != nil {
				c.Add(1)
			}
			e := &model.Estimate{VDD: p.VDD()}
			e.AddCap("c", units.Farads(p["act"]*p["bits"]*100e-15), p.Freq())
			e.Area = units.SquareMeters(p["bits"] * 1e-9)
			e.Delay = units.Seconds(p["bits"] * 1e-9)
			return e, nil
		},
	})
	return r
}

// incTestDesign builds a three-row sheet where each row's parameters
// feed from a distinct global, so single edits have small, known dirty
// cones: alpha reads wa, beta reads wb, gamma reads wc.
func incTestDesign(t *testing.T, counts map[string]*atomic.Int64) *Design {
	t.Helper()
	d := NewDesign("inc", countingRegistry(counts))
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 2e6, "2MHz")
	d.Root.SetGlobalValue("wa", 16, "16")
	d.Root.SetGlobalValue("wb", 8, "8")
	d.Root.SetGlobalValue("wc", 4, "4")
	for _, row := range []struct{ name, param string }{
		{"alpha", "wa"}, {"beta", "wb"}, {"gamma", "wc"},
	} {
		n := d.Root.MustAddChild(row.name, "cell")
		if err := n.SetParam("bits", row.param); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// playBothWays runs the incremental engine and the interpreter and
// demands bit-identical results (or identical error text): the
// engine-level statement of the repo-wide correctness contract.
func playBothWays(t *testing.T, d *Design) (*Result, PlayDelta) {
	t.Helper()
	r, delta, err := d.IncrementalEngine().Play()
	ri, errI := d.EvaluateInterpreted(nil)
	if (err == nil) != (errI == nil) {
		t.Fatalf("paths disagree on failure: incremental err=%v, interpreted err=%v", err, errI)
	}
	if err != nil {
		if err.Error() != errI.Error() {
			t.Fatalf("error text differs:\nincremental: %v\ninterpreted: %v", err, errI)
		}
		return nil, delta
	}
	sameResult(t, "", r, ri)
	return r, delta
}

func TestIncrementalDirtyCone(t *testing.T) {
	counts := map[string]*atomic.Int64{"cell": {}}
	d := incTestDesign(t, counts)
	e := d.IncrementalEngine()
	_, delta, err := e.Play()
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Full {
		t.Fatalf("first Play should be full, got %+v", delta)
	}
	if got := counts["cell"].Load(); got != 3 {
		t.Fatalf("first Play evaluated %d rows, want 3", got)
	}

	// Editing wa reaches only alpha (and the root aggregate).
	d.Root.SetGlobalValue("wa", 32, "32")
	r, delta, err := e.Play()
	if err != nil {
		t.Fatal(err)
	}
	if delta.Full {
		t.Fatalf("one-cell edit forced a full recompute: %+v", delta)
	}
	if got := counts["cell"].Load(); got != 4 {
		t.Fatalf("edit re-evaluated %d extra rows, want exactly 1 (alpha)", got-3)
	}
	if delta.DirtySteps >= delta.TotalSteps || delta.DirtySlots >= delta.TotalSlots {
		t.Errorf("dirty cone is not a strict subset: %+v", delta)
	}
	want := []string{"alpha", ""}
	if len(delta.ChangedRows) != len(want) {
		t.Fatalf("ChangedRows = %q, want %q", delta.ChangedRows, want)
	}
	for i := range want {
		if delta.ChangedRows[i] != want[i] {
			t.Fatalf("ChangedRows = %q, want %q", delta.ChangedRows, want)
		}
	}
	// The incremental result is bit-identical to a fresh evaluation.
	ri, errI := d.EvaluateInterpreted(nil)
	if errI != nil {
		t.Fatal(errI)
	}
	sameResult(t, "", r, ri)
}

func TestIncrementalZeroEditPlay(t *testing.T) {
	counts := map[string]*atomic.Int64{"cell": {}}
	d := incTestDesign(t, counts)
	e := d.IncrementalEngine()
	r1, _, err := e.Play()
	if err != nil {
		t.Fatal(err)
	}
	base := counts["cell"].Load()
	// Play's "recompute now" bump must not cost anything when every
	// model is a pure function and nothing changed.
	d.Touch()
	r2, delta, err := e.Play()
	if err != nil {
		t.Fatal(err)
	}
	if delta.Full || delta.DirtySteps != 0 {
		t.Fatalf("editless Play dirtied steps: %+v", delta)
	}
	if r2 != r1 {
		t.Error("editless Play did not serve the retained result")
	}
	if got := counts["cell"].Load(); got != base {
		t.Errorf("editless Play re-evaluated models (%d -> %d)", base, got)
	}
}

func TestIncrementalStructuralEditGoesFull(t *testing.T) {
	d := incTestDesign(t, nil)
	playBothWays(t, d)
	n := d.Root.MustAddChild("delta_row", "cell")
	if err := n.SetParam("bits", "wa"); err != nil {
		t.Fatal(err)
	}
	_, delta := playBothWays(t, d)
	if !delta.Full {
		t.Fatalf("structural edit should force a full recompute, got %+v", delta)
	}
	// And removal too.
	d.Root.RemoveChild("delta_row")
	if _, delta = playBothWays(t, d); !delta.Full {
		t.Fatalf("row removal should force a full recompute, got %+v", delta)
	}
}

func TestIncrementalErrorFallbackCanonicalText(t *testing.T) {
	d := incTestDesign(t, nil)
	playBothWays(t, d)
	// bits above the schema max: the run fails, and the engine must
	// reproduce the interpreter's canonical message.
	d.Root.SetGlobalValue("wa", 5000, "5000")
	if _, delta := playBothWays(t, d); !delta.Full {
		t.Fatalf("error fallback should report Full, got %+v", delta)
	}
	// Recovery after the error: state was dropped, next Play is full
	// and correct.
	d.Root.SetGlobalValue("wa", 16, "16")
	if _, delta := playBothWays(t, d); !delta.Full {
		t.Fatalf("post-error Play should be full, got %+v", delta)
	}
	// ...and incrementality resumes after that.
	d.Root.SetGlobalValue("wa", 24, "24")
	if _, delta := playBothWays(t, d); delta.Full {
		t.Fatalf("incrementality did not resume after error recovery: %+v", delta)
	}
}

// volatileCell wraps a counting model under its own name and declares
// it volatile, like a mounted remote proxy.
type volatileCell struct {
	model.Model
	evals atomic.Int64
}

func (v *volatileCell) Info() model.Info {
	info := v.Model.Info()
	info.Name = "remote.cell"
	return info
}
func (v *volatileCell) Volatile() bool { return true }
func (v *volatileCell) Evaluate(p model.Params) (*model.Estimate, error) {
	v.evals.Add(1)
	return v.Model.Evaluate(p)
}

func TestIncrementalVolatileModelAlwaysReplays(t *testing.T) {
	d := incTestDesign(t, nil)
	inner, _ := d.Registry.Lookup("cell")
	vc := &volatileCell{Model: inner}
	d.Registry.MustRegister(vc)
	n := d.Root.MustAddChild("rem", "remote.cell")
	if err := n.SetParam("bits", "2"); err != nil {
		t.Fatal(err)
	}
	e := d.IncrementalEngine()
	if _, _, err := e.Play(); err != nil {
		t.Fatal(err)
	}
	base := vc.evals.Load()
	d.Touch()
	_, delta, err := e.Play()
	if err != nil {
		t.Fatal(err)
	}
	if got := vc.evals.Load(); got != base+1 {
		t.Errorf("volatile row evaluated %d times on editless Play, want 1", got-base)
	}
	if delta.Full || delta.DirtySteps == 0 {
		t.Errorf("volatile row should dirty an incremental Play: %+v", delta)
	}
	found := false
	for _, p := range delta.ChangedRows {
		if p == "rem" {
			found = true
		}
	}
	if !found {
		t.Errorf("ChangedRows %q misses the volatile row", delta.ChangedRows)
	}
}

func TestIncrementalRegistryEditDirtiesAllRows(t *testing.T) {
	counts := map[string]*atomic.Int64{"cell": {}}
	d := incTestDesign(t, counts)
	e := d.IncrementalEngine()
	if _, _, err := e.Play(); err != nil {
		t.Fatal(err)
	}
	base := counts["cell"].Load()
	// Re-registering any model bumps the registry generation: every
	// model row must re-price (the edit may have changed any of them).
	reg := countingRegistry(counts)
	m, _ := reg.Lookup("cell")
	d.Registry.MustRegister(m)
	_, delta, err := e.Play()
	if err != nil {
		t.Fatal(err)
	}
	if got := counts["cell"].Load(); got != base+3 {
		t.Errorf("registry edit re-evaluated %d rows, want 3", got-base)
	}
	if delta.Full {
		t.Errorf("registry edit should stay incremental (plan unchanged): %+v", delta)
	}
}

// TestWavefrontParity pins the parallel executor against the serial
// one: same slots, same results, across worker counts, on the richest
// test design (derived globals, shadowing, chain compose, inter-row
// power()).
func TestWavefrontParity(t *testing.T) {
	d := planTestDesign(t)
	plan, err := d.PlanFor(nil)
	if err != nil {
		t.Fatal(err)
	}
	if w := plan.WavefrontWidth(); w < 2 {
		t.Fatalf("test design too narrow to exercise parallelism (width %d)", w)
	}
	serial := plan.newRun()
	if err := plan.execLevels(nil, serial, 1, true); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		run := plan.newRun()
		if err := plan.execLevels(nil, run, workers, true); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range serial.slots {
			if run.slots[i] != serial.slots[i] {
				t.Fatalf("workers=%d: slot %d = %v, serial %v", workers, i, run.slots[i], serial.slots[i])
			}
		}
		sameResult(t, "", plan.buildResult(run, plan.rootIdx), plan.buildResult(serial, plan.rootIdx))
	}
}

// TestWavefrontLevelsRespectDependencies checks the schedule invariant
// the parallel executor relies on: every step's reads resolve at a
// strictly shallower level than its own.
func TestWavefrontLevelsRespectDependencies(t *testing.T) {
	d := planTestDesign(t)
	plan, err := d.PlanFor(nil)
	if err != nil {
		t.Fatal(err)
	}
	plan.levels()
	writerLevel := make([]int, plan.slotCount)
	for i, st := range plan.steps {
		lv := plan.stepLevel[i]
		st.forEachRead(func(s int) {
			if writerLevel[s] >= lv {
				t.Fatalf("step %d (level %d) reads slot %d written at level %d", i, lv, s, writerLevel[s])
			}
		})
		st.forEachWrite(func(s int) { writerLevel[s] = lv })
	}
}

func TestSharedSweeperMemo(t *testing.T) {
	d := planTestDesign(t)
	plan, err := d.PlanFor([]string{"vdd"})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := plan.SharedSweeper()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := plan.SharedSweeper()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("repeated sweeps did not share the hoisted baseline")
	}
	// A registry edit retires the memo.
	m, _ := d.Registry.Lookup("cell")
	d.Registry.MustRegister(m)
	s3, err := plan.SharedSweeper()
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Error("registry edit did not retire the shared baseline")
	}
	// Shared and fresh baselines price points identically.
	e1, e2 := s3.NewEval(), mustSweeper(t, plan).NewEval()
	for _, v := range []float64{0.9, 1.5, 3.3} {
		p1, a1, d1, err1 := e1.At(map[string]float64{"vdd": v})
		p2, a2, d2, err2 := e2.At(map[string]float64{"vdd": v})
		if err1 != nil || err2 != nil {
			t.Fatalf("vdd=%v: %v / %v", v, err1, err2)
		}
		if p1 != p2 || a1 != a2 || d1 != d2 {
			t.Errorf("vdd=%v: shared %v/%v/%v vs fresh %v/%v/%v", v, p1, a1, d1, p2, a2, d2)
		}
	}
}

func mustSweeper(t *testing.T, p *Plan) *Sweeper {
	t.Helper()
	sw, err := p.NewSweeper()
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestSharedSweeperVolatileNeverMemoizes(t *testing.T) {
	d := incTestDesign(t, nil)
	inner, _ := d.Registry.Lookup("cell")
	vc := &volatileCell{Model: inner}
	d.Registry.MustRegister(vc)
	n := d.Root.MustAddChild("rem", vc.Info().Name)
	if err := n.SetParam("bits", "2"); err != nil {
		t.Fatal(err)
	}
	plan, err := d.PlanFor([]string{"vdd"})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := plan.SharedSweeper()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := plan.SharedSweeper()
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Error("volatile design shared a hoisted baseline across sweeps")
	}
}

// TestIncrementalParamEditOnRow covers the other edit surface: cell
// edits on a row parameter (not a global), the row_path|param form of
// the web Play.
func TestIncrementalParamEditOnRow(t *testing.T) {
	counts := map[string]*atomic.Int64{"cell": {}}
	d := incTestDesign(t, counts)
	e := d.IncrementalEngine()
	if _, _, err := e.Play(); err != nil {
		t.Fatal(err)
	}
	base := counts["cell"].Load()
	if err := d.Root.Child("beta").SetParam("bits", "wb*2"); err != nil {
		t.Fatal(err)
	}
	r, delta, err := e.Play()
	if err != nil {
		t.Fatal(err)
	}
	if delta.Full {
		t.Fatalf("param cell edit forced a full recompute: %+v", delta)
	}
	if got := counts["cell"].Load(); got != base+1 {
		t.Errorf("param edit re-evaluated %d rows, want 1", got-base)
	}
	joined := strings.Join(delta.ChangedRows, ",")
	if !strings.Contains(joined, "beta") {
		t.Errorf("ChangedRows %q misses beta", delta.ChangedRows)
	}
	ri, errI := d.EvaluateInterpreted(nil)
	if errI != nil {
		t.Fatal(errI)
	}
	sameResult(t, "", r, ri)
}
