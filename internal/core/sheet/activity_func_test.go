package sheet

import (
	"math"
	"testing"

	"powerplay/internal/activity"
)

func TestDbtactInSheet(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	// Two identical cells: one with random data, one carrying a
	// narrow, strongly correlated signal.
	white := d.Root.MustAddChild("white", "cell")
	white.SetParamValue("bits", 16, "16")
	corr := d.Root.MustAddChild("corr", "cell")
	corr.SetParamValue("bits", 16, "16")
	if err := corr.SetParam("act", "dbtact(512, 0.97, 16)"); err != nil {
		t.Fatal(err)
	}
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	pWhite := float64(r.Find("white").Power)
	pCorr := float64(r.Find("corr").Power)
	if pCorr >= pWhite {
		t.Errorf("correlated signal should price lower: %v vs %v", pCorr, pWhite)
	}
	// The power ratio equals the activity scale exactly.
	want := activity.Stats{Std: 512, Rho: 0.97}.ActScale(16)
	if got := pCorr / pWhite; math.Abs(got-want) > 1e-9 {
		t.Errorf("power ratio = %v, want %v", got, want)
	}
	if got := r.Find("corr").Params["act"]; math.Abs(got-want) > 1e-12 {
		t.Errorf("act = %v, want %v", got, want)
	}
}

func TestSignactInSheet(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	if err := d.Root.SetGlobal("a", "signact(0)"); err != nil {
		t.Fatal(err)
	}
	n := d.Root.MustAddChild("x", "cell")
	n.SetParam("act", "a")
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Find("x").Params["act"]; got != 0.5 {
		t.Errorf("signact(0) = %v, want 0.5", got)
	}
}

func TestDbtactErrors(t *testing.T) {
	d := NewDesign("demo", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	cases := []string{
		"dbtact(1, 0)",          // arity
		"dbtact(0, 0.5, 16)",    // std must be positive
		"dbtact(10, 1.5, 16)",   // rho out of range
		"dbtact(10, 0.5, 9999)", // bits out of range
		`dbtact("a", 0.5, 16)`,  // string arg
		"signact()",             // arity
	}
	for _, src := range cases {
		d2 := NewDesign("demo", testRegistry())
		d2.Root.SetGlobalValue("vdd", 1.5, "1.5")
		d2.Root.SetGlobalValue("f", 1e6, "1e6")
		n := d2.Root.MustAddChild("x", "cell")
		if err := n.SetParam("act", src); err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		if _, err := d2.Evaluate(); err == nil {
			t.Errorf("%q should fail at evaluation", src)
		}
	}
	_ = d
}

// The cell in testRegistry ignores "act"; a realistic check against a
// library cell lives in the facade tests.  This test just pins that the
// white cell's power is unaffected by binding act (schema allows it).
func TestDbtactDeck(t *testing.T) {
	deck := `
design d
var vdd = 1.5
var f = 1e6
row x cell bits=8 act=dbtact(256,0.9,8)
`
	d, err := ParseDeck(deck, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	want := activity.Stats{Std: 256, Rho: 0.9}.ActScale(8)
	if got := r.Find("x").Params["act"]; math.Abs(got-want) > 1e-12 {
		t.Errorf("deck dbtact = %v, want %v", got, want)
	}
}
