package sheet

import (
	"strings"
	"testing"
)

func TestCompare(t *testing.T) {
	reg := testRegistry()
	mk := func(name string, rows map[string]float64) *Result {
		d := NewDesign(name, reg)
		d.Root.SetGlobalValue("vdd", 1.5, "1.5")
		d.Root.SetGlobalValue("f", 1e6, "1e6")
		// Deterministic construction order.
		for _, n := range []string{"lut", "mem", "mux", "reg"} {
			if bits, ok := rows[n]; ok {
				d.Root.MustAddChild(n, "cell").SetParamValue("bits", bits, "")
			}
		}
		r, err := d.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := mk("impl1", map[string]float64{"lut": 100, "mem": 10, "reg": 2})
	b := mk("impl2", map[string]float64{"lut": 20, "mem": 10, "mux": 3, "reg": 2})

	c := Compare("impl1", a, "impl2", b)
	if c.Ratio() <= 1 {
		t.Errorf("impl1 should be hungrier: ratio %v", c.Ratio())
	}
	if len(c.Rows) != 4 {
		t.Fatalf("rows = %d", len(c.Rows))
	}
	// The LUT delta dominates and sorts first.
	if c.Rows[0].Path != "lut" {
		t.Errorf("first row = %+v", c.Rows[0])
	}
	byPath := map[string]CompareRow{}
	for _, r := range c.Rows {
		byPath[r.Path] = r
	}
	if byPath["mux"].Only != "B" || byPath["lut"].Only != "" {
		t.Errorf("Only flags: %+v", byPath)
	}
	if byPath["mem"].Delta() != 0 {
		t.Errorf("identical rows should have zero delta: %v", byPath["mem"])
	}
	var buf strings.Builder
	c.Write(&buf)
	out := buf.String()
	for _, want := range []string{"impl1", "impl2", "lut", "—", "TOTAL", "x)"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison table missing %q:\n%s", want, out)
		}
	}
}

func TestCompareZeroTotal(t *testing.T) {
	empty := &Result{Node: &Node{Name: "e"}}
	c := Compare("a", empty, "b", empty)
	if c.Ratio() != 0 {
		t.Errorf("zero totals should report ratio 0, got %v", c.Ratio())
	}
}
