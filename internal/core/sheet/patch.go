package sheet

// Plan patching: the edit-Play fast path.
//
// PlanFor keys its cache on a fingerprint over the whole tree, so any
// cell edit recompiles the entire plan — correct, but the compile (and
// the fresh plan's cold row-model caches) costs several times a warm
// full evaluation, which would leave the incremental engine slower
// than the thing it is meant to beat.  patch() exploits that a
// binding-only edit cannot move the slot layout: it verifies the tree
// still has the shape the plan was compiled from, recompiles just the
// cells whose expression identity moved against the recorded slot
// assignments, and returns a shallow copy of the plan sharing every
// unchanged step — including the stepNode pointers and their warmed
// row-model caches.
//
// patch() is deliberately conservative: anything it cannot prove
// preserves the compiled schedule — a row or binding added, removed,
// renamed or reordered, a global name appearing anywhere (it could
// shadow a recorded resolution), an edited cell referencing a global
// that was unreachable at compile time, or a new reference that would
// require reordering steps — makes it bail to (nil, false), and the
// engine takes the ordinary full-compile path.  Errors inside patched
// expressions need no special care: any evaluation error falls back to
// the tree interpreter, which re-derives the canonical message.

import (
	"fmt"

	"powerplay/internal/expr"
)

// planCell records where one compiled binding landed: the patch table
// the incremental engine diffs and patches through.
type planCell struct {
	owner   *Node
	name    string
	param   bool // parameter binding (else global)
	stepIdx int
}

// patch returns a plan equivalent to compiling the design afresh,
// provided only cell bindings changed since p was compiled; ok is
// false when that cannot be proven cheaply.  The returned plan shares
// all unchanged steps (and their caches) with p; when no binding
// changed at all it is p itself.  Only override-free plans — the
// incremental engine's — are patchable.
func (p *Plan) patch() (*Plan, bool) {
	if len(p.overrideNames) != 0 {
		return nil, false
	}
	d := p.design

	// The tree must still have exactly the compiled shape: same node
	// set, same models, same delay composition, same child order, same
	// parameter lists on model rows, and the same global names on every
	// node (a new global anywhere could shadow a recorded resolution).
	ok := true
	count := 0
	d.Root.Walk(func(n *Node) {
		count++
		if !ok {
			return
		}
		idx, in := p.idxOf[n]
		if !in {
			ok = false
			return
		}
		st := p.steps[p.nodeStep[idx]]
		if n.Model != st.modelName || n.Delay != st.compose || len(n.Children) != len(st.childBases) {
			ok = false
			return
		}
		for i, c := range n.Children {
			ci, cin := p.idxOf[c]
			if !cin || st.childBases[i] != p.nodeBase[ci] {
				ok = false
				return
			}
		}
		if n.Model != "" {
			if len(n.Params) != len(st.paramNames) {
				ok = false
				return
			}
			for i, b := range n.Params {
				if b.Name != st.paramNames[i] {
					ok = false
					return
				}
			}
		}
		names := p.globalNames[idx]
		if len(n.Globals) != len(names) {
			ok = false
			return
		}
		for i, g := range n.Globals {
			if g.Name != names[i] {
				ok = false
				return
			}
		}
	})
	if !ok || count != len(p.nodes) {
		return nil, false
	}

	// Diff the cells and recompile the edited ones in place.  A patched
	// program must read only slots written by earlier steps — a new
	// reference that violates schedule order (or would form a cycle)
	// needs a real recompile to reorder, so it bails.
	var newSteps []*planStep
	writer := p.slotWriters()
	levelsValid := p.stepLevel != nil
	for _, c := range p.cells {
		var cur *expr.Expr
		if c.param {
			cur = c.owner.Param(c.name)
		} else {
			cur = c.owner.Global(c.name)
		}
		if cur == nil {
			return nil, false
		}
		old := p.steps[c.stepIdx]
		if cur.ID() == old.exprID {
			continue
		}
		prog, rok := p.recompileCell(c.owner, cur)
		if !rok {
			return nil, false
		}
		for _, s := range prog.Slots() {
			if writer[s] >= c.stepIdx {
				return nil, false
			}
			// The old wavefront schedule stays valid only while every
			// read resolves at a strictly shallower level.
			if levelsValid && p.stepLevel[writer[s]] >= p.stepLevel[c.stepIdx] {
				levelsValid = false
			}
		}
		if newSteps == nil {
			newSteps = append([]*planStep(nil), p.steps...)
		}
		newSteps[c.stepIdx] = &planStep{kind: stepExpr, prog: prog, dst: old.dst, exprID: cur.ID()}
	}
	if newSteps == nil {
		return p, true
	}
	np := &Plan{
		design:        p.design,
		overrideNames: p.overrideNames,
		overrideSlots: p.overrideSlots,
		slotCount:     p.slotCount,
		steps:         newSteps,
		isVariant:     p.isVariant,
		variantSteps:  p.variantSteps,
		variantSlot:   p.variantSlot,
		nodes:         p.nodes,
		nodeBase:      p.nodeBase,
		idxOf:         p.idxOf,
		rootIdx:       p.rootIdx,
		cells:         p.cells,
		globalSlot:    p.globalSlot,
		nodeStep:      p.nodeStep,
		globalNames:   p.globalNames,
		nodePaths:     p.nodePaths,
		writers:       p.writers,
		volSteps:      p.volSteps,
		volGen:        p.volGen,
		volOK:         p.volOK,
	}
	if levelsValid {
		// Patching preserved every level constraint, so the wavefront
		// schedule carries over instead of being recomputed per edit.
		np.stepLevel, np.byLevel, np.maxWidth = p.stepLevel, p.byLevel, p.maxWidth
		np.levelOnce.Do(func() {})
	}
	return np, true
}

// slotWriters maps each slot to the index of the step writing it (-1
// when none does — impossible in an override-free plan, but kept safe).
// The table is computed once and shared through patching: a patched
// step keeps its destination, so write sets never move.
func (p *Plan) slotWriters() []int {
	if w := p.writers; w != nil {
		return w
	}
	w := make([]int, p.slotCount)
	for i := range w {
		w[i] = -1
	}
	for i, st := range p.steps {
		st.forEachWrite(func(s int) { w[s] = i })
	}
	p.writers = w
	return w
}

// recompileCell compiles one edited expression against the plan's
// recorded slot assignments; ok is false when the expression references
// a binding the plan never assigned a slot (newly reachable — a real
// compile must lay it out).
func (p *Plan) recompileCell(n *Node, e *expr.Expr) (*expr.Program, bool) {
	r := &patchResolver{p: p, node: n, ok: true}
	prog := expr.CompileProgram(e, r)
	return prog, r.ok
}

// patchResolver resolves an edited cell's references against the slots
// the original compile assigned — the same scope-chain and call
// lowering rules as planResolver, minus the ability to allocate.
type patchResolver struct {
	p    *Plan
	node *Node
	ok   bool
}

// ResolveVar implements expr.Resolver via the compiled scope chain.
func (r *patchResolver) ResolveVar(name string) (int, bool) {
	for scope := r.node; scope != nil; scope = scope.parent {
		if scope.Global(name) != nil {
			slot, in := r.p.globalSlot[globalKey{scope, name}]
			if !in {
				r.ok = false
				return 0, false
			}
			return slot, true
		}
	}
	return 0, false
}

// ResolveFunc implements expr.Resolver with the same host functions the
// full compile resolves, so results and error messages are identical.
func (r *patchResolver) ResolveFunc(name string) (expr.Func, bool) {
	switch name {
	case "dbtact":
		return dbtactFunc, true
	case "signact":
		return signactFunc, true
	}
	return nil, false
}

// ClaimsCall implements expr.CallResolver for the inter-row accessors.
func (r *patchResolver) ClaimsCall(name string) bool {
	switch name {
	case "power", "area", "delay":
		return true
	}
	return false
}

// ResolveCall lowers power/area/delay exactly as planResolver does,
// reading the target row's recorded result block.
func (r *patchResolver) ResolveCall(name string, args []expr.CallArg) expr.CallLowering {
	if len(args) != 1 || !args[0].IsStr {
		return expr.CallLowering{Err: fmt.Errorf("%s() takes one quoted row path", name)}
	}
	ref := args[0].Str
	target := r.p.design.Resolve(r.node, ref)
	if target == nil {
		return expr.CallLowering{Err: fmt.Errorf("%s(%q): no such row", name, ref)}
	}
	idx, in := r.p.idxOf[target]
	if !in {
		// Unreachable after the shape check, but never patch blindly.
		r.ok = false
		return expr.CallLowering{Err: fmt.Errorf("%s(%q): no such row", name, ref)}
	}
	off := slotPower
	switch name {
	case "area":
		off = slotArea
	case "delay":
		off = slotDelay
	}
	return expr.CallLowering{Slot: r.p.nodeBase[idx] + off}
}
