package sheet

import "fmt"

// Mutation is one replayable tree edit: the unit the durability layer
// journals (internal/store) and replays on boot.  Every mutating web
// handler expresses its edit as a Mutation, applies it through
// ApplyMutation, and appends the encoded form to the owning user's
// journal, so the journal is a faithful enumeration of the operations
// that produced the in-memory tree.
//
// A Mutation deliberately carries expression *sources*, not compiled
// expressions: replay re-compiles through the same path the original
// request used, so a journal written by one server version replays on
// any version that parses the same language.
type Mutation struct {
	// Op selects the edit.
	Op MutOp `json:"op"`
	// Path addresses the node the edit targets ("" is the root; row
	// paths are slash-separated as in Node.Path).  For MutAddRow and
	// MutRemoveRow it addresses the *parent*.
	Path string `json:"path,omitempty"`
	// Name is the parameter, variable or row name the edit touches.
	Name string `json:"name,omitempty"`
	// Model is the library model an added row instantiates.
	Model string `json:"model,omitempty"`
	// Expr is the expression source for the set operations.
	Expr string `json:"expr,omitempty"`
}

// MutOp enumerates the replayable edits.  The set is closed and
// append-only: removing or repurposing a value would orphan records in
// existing journals.
type MutOp string

// Mutation operations.
const (
	// MutSetParam binds a model parameter (Path, Name, Expr).
	MutSetParam MutOp = "set_param"
	// MutDeleteParam removes a parameter binding (Path, Name).
	MutDeleteParam MutOp = "del_param"
	// MutSetGlobal introduces or rebinds a variable (Path, Name, Expr).
	MutSetGlobal MutOp = "set_global"
	// MutDeleteGlobal removes a variable (Path, Name).
	MutDeleteGlobal MutOp = "del_global"
	// MutAddRow appends a row (Path = parent, Name, Model).
	MutAddRow MutOp = "add_row"
	// MutRemoveRow deletes a row (Path = parent, Name).
	MutRemoveRow MutOp = "del_row"
	// MutTouch advances the generation without changing the tree: the
	// Play button's "recompute now" contract, journaled so replayed
	// generations match live ones.
	MutTouch MutOp = "touch"
)

// ApplyMutation performs one journaled edit on the design.  It is the
// replay twin of the web layer's form handling: the same Node methods
// run, so a replayed tree is indistinguishable from the tree the
// original requests built.  Errors leave the tree untouched (the
// journal only contains edits that succeeded once, so an error here
// means the journal and the model library have diverged — the caller
// counts and continues rather than failing the boot).
func (d *Design) ApplyMutation(m Mutation) error {
	if m.Op == MutTouch {
		d.Touch()
		return nil
	}
	n := d.Root.Find(m.Path)
	if n == nil {
		return fmt.Errorf("sheet: mutation %s: no row %q", m.Op, m.Path)
	}
	switch m.Op {
	case MutSetParam:
		return n.SetParam(m.Name, m.Expr)
	case MutDeleteParam:
		n.DeleteParam(m.Name)
		return nil
	case MutSetGlobal:
		return n.SetGlobal(m.Name, m.Expr)
	case MutDeleteGlobal:
		n.DeleteGlobal(m.Name)
		return nil
	case MutAddRow:
		_, err := n.AddChild(m.Name, m.Model)
		return err
	case MutRemoveRow:
		if !n.RemoveChild(m.Name) {
			return fmt.Errorf("sheet: mutation del_row: no row %q under %q", m.Name, m.Path)
		}
		return nil
	}
	return fmt.Errorf("sheet: unknown mutation op %q", m.Op)
}

// AdoptGeneration forces the design's mutation generation to gen.
// Recovery uses it after replaying each journal record, whose Gen field
// holds the generation the live tree had after the original edit: the
// replayed design then reports the same generation the pre-crash server
// did, so generation-keyed validators (ETags, cache keys, sweep caches)
// match across a restart.  Never call it on a design serving traffic —
// moving the counter backwards would revalidate stale caches.
func (d *Design) AdoptGeneration(gen uint64) { d.Root.epoch.Store(gen) }

// AdoptID installs a persisted design identity, and advances the
// process-wide ID mint past it so no later design can collide.  Like
// AdoptGeneration it exists for recovery: a restored design keeps the
// identity its ETags were minted under, so a browser's cached page
// revalidates across the restart iff nothing changed.
func (d *Design) AdoptID(id uint64) {
	if id == 0 {
		return
	}
	d.id.CompareAndSwap(0, id)
	for {
		cur := designIDs.Load()
		if cur >= id || designIDs.CompareAndSwap(cur, id) {
			return
		}
	}
}
