package sheet

import (
	"encoding/json"
	"fmt"

	"powerplay/internal/core/model"
	"powerplay/internal/expr"
)

// The JSON design format: what the server persists per user ("any
// previously generated designs" in the paper's implementation section)
// and what ppcli evaluates from the shell.  Expressions are stored as
// source text.

// designJSON mirrors Design.
type designJSON struct {
	Name string   `json:"name"`
	Doc  string   `json:"doc,omitempty"`
	Root nodeJSON `json:"root"`
}

// nodeJSON mirrors Node.
type nodeJSON struct {
	Name     string        `json:"name"`
	Doc      string        `json:"doc,omitempty"`
	Model    string        `json:"model,omitempty"`
	Compose  string        `json:"compose,omitempty"`
	Params   []bindingJSON `json:"params,omitempty"`
	Globals  []bindingJSON `json:"globals,omitempty"`
	Children []nodeJSON    `json:"children,omitempty"`
}

type bindingJSON struct {
	Name string `json:"name"`
	Expr string `json:"expr"`
}

// MarshalJSON serializes the design with expression sources preserved.
func (d *Design) MarshalJSON() ([]byte, error) {
	return json.Marshal(designJSON{Name: d.Name, Doc: d.Doc, Root: nodeToJSON(d.Root)})
}

func nodeToJSON(n *Node) nodeJSON {
	out := nodeJSON{Name: n.Name, Doc: n.Doc, Model: n.Model, Compose: string(n.Delay)}
	for _, b := range n.Params {
		out.Params = append(out.Params, bindingJSON{b.Name, b.Expr.Source()})
	}
	for _, b := range n.Globals {
		out.Globals = append(out.Globals, bindingJSON{b.Name, b.Expr.Source()})
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, nodeToJSON(c))
	}
	return out
}

// ParseDesign decodes a JSON design and binds it to a registry.  All
// expressions are compiled; the first syntax error aborts.
func ParseDesign(data []byte, reg *model.Registry) (*Design, error) {
	var dj designJSON
	if err := json.Unmarshal(data, &dj); err != nil {
		return nil, fmt.Errorf("sheet: bad design JSON: %w", err)
	}
	if dj.Name == "" {
		return nil, fmt.Errorf("sheet: design JSON missing name")
	}
	root, err := nodeFromJSON(dj.Root, nil)
	if err != nil {
		return nil, err
	}
	if root.Name == "" {
		root.Name = dj.Name
	}
	return &Design{Name: dj.Name, Doc: dj.Doc, Root: root, Registry: reg}, nil
}

func nodeFromJSON(nj nodeJSON, parent *Node) (*Node, error) {
	n := &Node{Name: nj.Name, Doc: nj.Doc, Model: nj.Model, Delay: Compose(nj.Compose), parent: parent}
	if parent != nil && !validName(nj.Name) {
		return nil, fmt.Errorf("sheet: invalid row name %q", nj.Name)
	}
	switch n.Delay {
	case ComposeMax, ComposeChain:
	default:
		return nil, fmt.Errorf("sheet: row %q has unknown compose mode %q", nj.Name, nj.Compose)
	}
	for _, b := range nj.Params {
		e, err := expr.Compile(b.Expr)
		if err != nil {
			return nil, fmt.Errorf("sheet: row %q param %q: %w", nj.Name, b.Name, err)
		}
		n.Params = append(n.Params, Binding{b.Name, e})
	}
	for _, b := range nj.Globals {
		e, err := expr.Compile(b.Expr)
		if err != nil {
			return nil, fmt.Errorf("sheet: row %q variable %q: %w", nj.Name, b.Name, err)
		}
		n.Globals = append(n.Globals, Binding{b.Name, e})
	}
	seen := make(map[string]bool)
	for _, cj := range nj.Children {
		if seen[cj.Name] {
			return nil, fmt.Errorf("sheet: duplicate row %q under %q", cj.Name, nj.Name)
		}
		seen[cj.Name] = true
		c, err := nodeFromJSON(cj, n)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
	return n, nil
}
