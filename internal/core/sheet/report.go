package sheet

import (
	"fmt"
	"io"
	"strings"

	"powerplay/internal/units"
)

// Report renders an evaluated design as the text analogue of the
// paper's Figure 2 / Figure 5 spreadsheets: one row per node with
// parameters, energy per access, power, area and delay, the variable
// rows, and the total.
func Report(w io.Writer, d *Design, r *Result) {
	fmt.Fprintf(w, "%s summary\n", d.Name)
	if d.Doc != "" {
		fmt.Fprintf(w, "%s\n", d.Doc)
	}
	fmt.Fprintf(w, "%-28s %-24s %14s %14s %12s %12s\n",
		"Name", "Parameters", "Energy/op", "Power", "Area", "Delay")
	writeRows(w, r, 0)
	for _, g := range d.Root.Globals {
		val := ""
		if v, ok := g.Expr.Const(); ok {
			val = fmt.Sprintf("%g", v)
		} else {
			val = g.Expr.Source()
		}
		fmt.Fprintf(w, "%-28s %-24s\n", g.Name, val)
	}
	fmt.Fprintf(w, "%-28s %-24s %14s %14s %12s %12s\n", "TOTAL", "",
		"", units.Sci(float64(r.Power), "W"), r.Area.String(), r.Delay.String())
}

func writeRows(w io.Writer, r *Result, depth int) {
	if depth > 0 || r.Node.Model != "" {
		indent := strings.Repeat("  ", depth-1)
		name := indent + r.Node.Name
		fmt.Fprintf(w, "%-28s %-24s %14s %14s %12s %12s\n",
			clip(name, 28), clip(paramSummary(r), 24),
			energyCol(r), units.Sci(float64(r.Power), "W"),
			r.Area.String(), r.Delay.String())
	}
	for _, c := range r.Children {
		writeRows(w, c, depth+1)
	}
}

func energyCol(r *Result) string {
	if r.Estimate == nil {
		return ""
	}
	return units.Sci(float64(r.EnergyPerOp), "J")
}

// paramSummary renders the row's interesting parameters compactly,
// in binding order, skipping the inherited scope values.
func paramSummary(r *Result) string {
	if r.Node.Model == "" {
		return ""
	}
	var parts []string
	for _, b := range r.Node.Params {
		v := r.Params[b.Name]
		parts = append(parts, fmt.Sprintf("%s=%g", b.Name, v))
	}
	return strings.Join(parts, " ")
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Breakdown returns "name: power" lines for a result's direct children,
// largest first — the Figure 5 reading of a system sheet.
func Breakdown(r *Result) []string {
	rows := append([]*Result(nil), r.Children...)
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].Power > rows[i].Power {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	var out []string
	total := float64(r.Power)
	for _, c := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(c.Power) / total
		}
		out = append(out, fmt.Sprintf("%-24s %12s  %5.1f%%",
			c.Node.Name, units.Watts(c.Power).String(), pct))
	}
	return out
}
