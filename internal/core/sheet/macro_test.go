package sheet

import (
	"strings"
	"testing"

	"powerplay/internal/core/model"
)

func buildSubDesign(t *testing.T) *Design {
	t.Helper()
	d := NewDesign("videochip", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 2e6, "2MHz")
	d.Root.MustAddChild("lut", "cell").SetParamValue("bits", 64, "64")
	d.Root.MustAddChild("reg", "cell").SetParamValue("bits", 6, "6")
	return d
}

func TestMacroLumpsDesign(t *testing.T) {
	sub := buildSubDesign(t)
	subResult, err := sub.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	mac, err := NewMacro("macro.video", "Video chip", "lumped Figure 2 sheet", sub)
	if err != nil {
		t.Fatal(err)
	}
	// The macro exposes the root globals as parameters.
	info := mac.Info()
	if info.Class != model.Macro {
		t.Errorf("class = %v", info.Class)
	}
	names := map[string]bool{}
	for _, p := range info.Params {
		names[p.Name] = true
	}
	if !names["vdd"] || !names["f"] {
		t.Errorf("macro params = %v", info.Params)
	}
	// Evaluated at its defaults, the macro reproduces the design total.
	est, err := model.Evaluate(mac, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(float64(est.Power()), float64(subResult.Power)) {
		t.Errorf("macro power %v, design %v", est.Power(), subResult.Power)
	}
	if !almost(float64(est.Area), float64(subResult.Area)) {
		t.Errorf("macro area %v, design %v", est.Area, subResult.Area)
	}
}

func TestMacroRescalesWithSupply(t *testing.T) {
	sub := buildSubDesign(t)
	mac, err := NewMacro("m", "", "", sub)
	if err != nil {
		t.Fatal(err)
	}
	base, err := model.Evaluate(mac, model.Params{"vdd": 1.5})
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := model.Evaluate(mac, model.Params{"vdd": 3.0})
	if err != nil {
		t.Fatal(err)
	}
	// The inner sheet re-plays at 3 V: quadratic power growth flows
	// through the lump.
	if !almost(float64(boosted.Power()), 4*float64(base.Power())) {
		t.Errorf("macro should rescale: %v vs %v", boosted.Power(), base.Power())
	}
}

func TestMacroInSheet(t *testing.T) {
	// The paper's use: the video chip macro becomes one row of the
	// system sheet.
	sub := buildSubDesign(t)
	mac, err := NewMacro("macro.video", "Video chip", "", sub)
	if err != nil {
		t.Fatal(err)
	}
	reg := testRegistry()
	reg.MustRegister(mac)
	sys := NewDesign("system", reg)
	sys.Root.SetGlobalValue("vdd", 1.5, "1.5")
	sys.Root.SetGlobalValue("f", 1e6, "1e6")
	sys.Root.MustAddChild("video", "macro.video")
	sys.Root.MustAddChild("other", "cell")
	r, err := sys.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	subR, _ := sub.EvaluateAt(map[string]float64{"f": 1e6}) // system f inherited
	if !almost(float64(r.Find("video").Power), float64(subR.Power)) {
		t.Errorf("macro row power %v, sub design at 1MHz %v", r.Find("video").Power, subR.Power)
	}
}

func TestMacroValidation(t *testing.T) {
	if _, err := NewMacro("", "", "", nil); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewMacro("m", "", "", nil); err == nil {
		t.Error("nil design should fail")
	}
	// A broken design cannot be published.
	bad := NewDesign("bad", testRegistry())
	bad.Root.MustAddChild("x", "nosuch")
	if _, err := NewMacro("m", "", "", bad); err == nil {
		t.Error("unevaluable design should fail")
	}
}

func TestDesignJSONRoundTrip(t *testing.T) {
	d := buildSubDesign(t)
	d.Doc = "two-row test design"
	d.Root.MustAddChild("conv", "loss").SetParam("pload", `power("lut")`)
	blob, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ParseDesign(blob, d.Registry)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d2.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(float64(r1.Power), float64(r2.Power)) {
		t.Errorf("round trip changed power: %v vs %v", r1.Power, r2.Power)
	}
	if d2.Doc != d.Doc || d2.Name != d.Name {
		t.Error("metadata lost")
	}
	// Parameter expression sources survive.
	if d2.Root.Find("conv").Param("pload").Source() != `power("lut")` {
		t.Error("expression source lost")
	}
}

func TestParseDesignErrors(t *testing.T) {
	reg := testRegistry()
	cases := []string{
		"not json",
		`{}`, // no name
		`{"name":"d","root":{"name":"d","children":[{"name":"bad name"}]}}`,
		`{"name":"d","root":{"name":"d","children":[{"name":"a"},{"name":"a"}]}}`,
		`{"name":"d","root":{"name":"d","params":[{"name":"p","expr":"1+"}]}}`,
		`{"name":"d","root":{"name":"d","globals":[{"name":"g","expr":")("}]}}`,
	}
	for _, src := range cases {
		if _, err := ParseDesign([]byte(src), reg); err == nil {
			t.Errorf("ParseDesign(%q) should fail", src)
		}
	}
}

func TestReportRendersSpreadsheet(t *testing.T) {
	d := buildSubDesign(t)
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	Report(&b, d, r)
	out := b.String()
	for _, want := range []string{"videochip summary", "lut", "reg", "TOTAL", "vdd", "f", "Energy/op"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestBreakdownSorted(t *testing.T) {
	d := buildSubDesign(t)
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	rows := Breakdown(r)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if !strings.Contains(rows[0], "lut") {
		t.Errorf("largest consumer first: %v", rows)
	}
	if !strings.Contains(rows[0], "%") {
		t.Error("percent column missing")
	}
}
