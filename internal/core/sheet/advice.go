package sheet

import (
	"fmt"
	"math"
	"sort"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// The paper's System Design section: "When working on power-
// minimization, it is important to identify both the major power
// consumers and the point of diminishing returns."  Advice digests an
// evaluated sheet into exactly that: each leaf row's share of the
// total, and the Amdahl bound — how much the system total could drop
// if that row were optimized to zero.

// AdviceRow is one ranked consumer.
type AdviceRow struct {
	// Path locates the row.
	Path string
	// Power is the row's own (model) power.
	Power units.Watts
	// Share is the row's fraction of the design total.
	Share float64
	// MaxGain is the largest possible fractional reduction of the
	// design total from optimizing only this row (Amdahl's bound).
	MaxGain float64
}

// Advice ranks every model row of an evaluated design by power,
// largest first.
func Advice(r *Result) []AdviceRow {
	total := float64(r.Power)
	var rows []AdviceRow
	var walk func(*Result)
	walk = func(rr *Result) {
		if rr.Estimate != nil {
			p := float64(rr.Estimate.Power())
			row := AdviceRow{Path: rr.Node.Path(), Power: units.Watts(p)}
			if total > 0 {
				row.Share = p / total
				row.MaxGain = p / total
			}
			rows = append(rows, row)
		}
		for _, c := range rr.Children {
			walk(c)
		}
	}
	walk(r)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Power != rows[j].Power {
			return rows[i].Power > rows[j].Power
		}
		return rows[i].Path < rows[j].Path
	})
	return rows
}

// DiminishingReturns returns the smallest set of top consumers that
// together cover the given fraction of total power: the rows worth an
// engineer's time.  Everything after them is past the point of
// diminishing returns.
func DiminishingReturns(r *Result, coverage float64) []AdviceRow {
	rows := Advice(r)
	var out []AdviceRow
	var acc float64
	for _, row := range rows {
		if acc >= coverage {
			break
		}
		out = append(out, row)
		acc += row.Share
	}
	return out
}

// TimingRow is one row of a timing report.
type TimingRow struct {
	// Path locates the row.
	Path string
	// Delay is the row's critical path.
	Delay units.Seconds
	// MaxFreq is 1/Delay.
	MaxFreq units.Hertz
	// SlackSeconds is cycleTime − delay; negative means the row cannot
	// run at the target frequency.
	SlackSeconds float64
	// Meets reports SlackSeconds >= 0.
	Meets bool
}

// TimingReport checks every model row of an evaluated design against a
// target clock frequency — the "timing analysis" column of the
// worksheet.  Rows with no timing model (zero delay) are skipped.
func TimingReport(r *Result, fTarget units.Hertz) ([]TimingRow, error) {
	if fTarget <= 0 {
		return nil, fmt.Errorf("sheet: bad frequency target %v", fTarget)
	}
	cycle := 1 / float64(fTarget)
	var rows []TimingRow
	var walk func(*Result)
	walk = func(rr *Result) {
		if rr.Estimate != nil && rr.Estimate.Delay > 0 {
			d := float64(rr.Estimate.Delay)
			rows = append(rows, TimingRow{
				Path:         rr.Node.Path(),
				Delay:        rr.Estimate.Delay,
				MaxFreq:      units.Hertz(model.MaxFreq(d)),
				SlackSeconds: cycle - d,
				Meets:        d <= cycle,
			})
		}
		for _, c := range rr.Children {
			walk(c)
		}
	}
	walk(r)
	sort.Slice(rows, func(i, j int) bool { return rows[i].SlackSeconds < rows[j].SlackSeconds })
	return rows, nil
}

// CriticalRow returns the slowest model row, or nil if no row carries
// timing.
func CriticalRow(r *Result) *TimingRow {
	rows, err := TimingReport(r, units.Hertz(1)) // any positive target
	if err != nil || len(rows) == 0 {
		return nil
	}
	crit := rows[0]
	for _, row := range rows {
		if row.Delay > crit.Delay {
			crit = row
		}
	}
	// Recompute fields against the row's own max frequency for clarity.
	crit.SlackSeconds = 0
	crit.Meets = true
	return &crit
}

// MaxFrequency returns the fastest clock the whole design supports:
// the reciprocal of the slowest row's delay (infinite when the design
// has no timing models).
func MaxFrequency(r *Result) units.Hertz {
	crit := CriticalRow(r)
	if crit == nil {
		return units.Hertz(math.Inf(1))
	}
	return crit.MaxFreq
}
