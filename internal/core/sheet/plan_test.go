package sheet

import (
	"fmt"
	"sync"
	"testing"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// sameResult asserts two result trees are exactly equal — bit-identical
// floats, same resolved parameters, same shape.  This is the compiled
// path's correctness contract against the interpreter.
func sameResult(t *testing.T, path string, a, b *Result) {
	t.Helper()
	if a.Node != b.Node {
		t.Fatalf("%s: node mismatch: %v vs %v", path, a.Node, b.Node)
	}
	if a.Power != b.Power || a.DynamicPower != b.DynamicPower || a.StaticPower != b.StaticPower {
		t.Errorf("%s: power %v/%v/%v vs %v/%v/%v", path,
			a.Power, a.DynamicPower, a.StaticPower, b.Power, b.DynamicPower, b.StaticPower)
	}
	if a.Area != b.Area || a.Delay != b.Delay || a.EnergyPerOp != b.EnergyPerOp {
		t.Errorf("%s: area/delay/epo %v/%v/%v vs %v/%v/%v", path,
			a.Area, a.Delay, a.EnergyPerOp, b.Area, b.Delay, b.EnergyPerOp)
	}
	if len(a.Params) != len(b.Params) {
		t.Errorf("%s: params %v vs %v", path, a.Params, b.Params)
	} else {
		for k, v := range a.Params {
			if bv, ok := b.Params[k]; !ok || bv != v {
				t.Errorf("%s: param %q %v vs %v", path, k, v, bv)
			}
		}
	}
	if (a.Estimate == nil) != (b.Estimate == nil) {
		t.Errorf("%s: estimate presence %v vs %v", path, a.Estimate != nil, b.Estimate != nil)
	}
	if len(a.Children) != len(b.Children) {
		t.Fatalf("%s: %d children vs %d", path, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		sameResult(t, path+"/"+a.Children[i].Node.Name, a.Children[i], b.Children[i])
	}
}

// bothWays evaluates a design through the compiled plan and through the
// interpreter and demands identical trees (or identical error text).
func bothWays(t *testing.T, d *Design, overrides map[string]float64) *Result {
	t.Helper()
	// Confirm the compiled path is actually exercised, not silently
	// falling back.
	if _, err := d.PlanFor(overrideNames(overrides)); err != nil {
		t.Fatalf("plan does not compile: %v", err)
	}
	rc, errC := d.EvaluateAt(overrides)
	ri, errI := d.EvaluateInterpreted(overrides)
	if (errC == nil) != (errI == nil) {
		t.Fatalf("paths disagree on failure: compiled err=%v, interpreted err=%v", errC, errI)
	}
	if errC != nil {
		if errC.Error() != errI.Error() {
			t.Fatalf("error text differs:\ncompiled:    %v\ninterpreted: %v", errC, errI)
		}
		return nil
	}
	sameResult(t, "", rc, ri)
	return rc
}

// planTestDesign builds a sheet covering the features the compiler must
// reproduce: derived globals, scope shadowing, std inheritance, chain
// composition, inter-row power()/delay() and a converter row.
func planTestDesign(t *testing.T) *Design {
	t.Helper()
	d := NewDesign("plan", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 2e6, "2MHz")
	if err := d.Root.SetGlobal("width", "8*2"); err != nil {
		t.Fatal(err)
	}
	a := d.Root.MustAddChild("alpha", "cell")
	if err := a.SetParam("bits", "width"); err != nil {
		t.Fatal(err)
	}
	sub := d.Root.MustAddChild("sub", "")
	sub.Delay = ComposeChain
	sub.SetGlobalValue("vdd", 1.2, "1.2") // shadowed supply for the subtree
	b := sub.MustAddChild("beta", "cell")
	if err := b.SetParam("bits", "width/2"); err != nil {
		t.Fatal(err)
	}
	c := sub.MustAddChild("gamma", "cell")
	if err := c.SetParam("act", "vdd > 1 ? 0.5 : 1.5"); err != nil {
		t.Fatal(err)
	}
	conv := d.Root.MustAddChild("conv", "loss")
	if err := conv.SetParam("pload", `power("sub") + power("alpha")`); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPlanMatchesInterpreter(t *testing.T) {
	d := planTestDesign(t)
	bothWays(t, d, nil)
	bothWays(t, d, map[string]float64{"vdd": 2.0})
	bothWays(t, d, map[string]float64{"vdd": 0.9, "f": 5e6})
	// Overrides shadow every scope by plain name, including the
	// subtree-shadowed vdd and the derived width.
	r := bothWays(t, d, map[string]float64{"width": 4})
	if got := r.Find("alpha").Params["bits"]; got != 4 {
		t.Errorf("override not applied through plan: bits = %v", got)
	}
}

func TestPlanUnusedBrokenGlobalStaysLazy(t *testing.T) {
	// The interpreter only evaluates globals on reference; the plan must
	// preserve that by compiling only reachable bindings.
	d := planTestDesign(t)
	if err := d.Root.SetGlobal("broken", "no_such_var * 2"); err != nil {
		t.Fatal(err)
	}
	bothWays(t, d, nil)
}

func TestPlanErrorsMatchInterpreter(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *Design
	}{
		{"row cycle", func(t *testing.T) *Design {
			d := NewDesign("cyc", testRegistry())
			d.Root.SetGlobalValue("vdd", 1.5, "1.5")
			d.Root.SetGlobalValue("f", 1e6, "1e6")
			a := d.Root.MustAddChild("a", "loss")
			b := d.Root.MustAddChild("b", "loss")
			if err := a.SetParam("pload", `power("b")`); err != nil {
				t.Fatal(err)
			}
			if err := b.SetParam("pload", `power("a")`); err != nil {
				t.Fatal(err)
			}
			return d
		}},
		{"global cycle", func(t *testing.T) *Design {
			d := NewDesign("cyc", testRegistry())
			d.Root.SetGlobalValue("f", 1e6, "1e6")
			if err := d.Root.SetGlobal("vdd", "x+1"); err != nil {
				t.Fatal(err)
			}
			if err := d.Root.SetGlobal("x", "vdd*2"); err != nil {
				t.Fatal(err)
			}
			d.Root.MustAddChild("a", "cell")
			return d
		}},
		{"unknown model", func(t *testing.T) *Design {
			d := NewDesign("bad", testRegistry())
			d.Root.SetGlobalValue("vdd", 1.5, "1.5")
			d.Root.SetGlobalValue("f", 1e6, "1e6")
			d.Root.MustAddChild("a", "nosuchmodel")
			return d
		}},
		{"unknown parameter", func(t *testing.T) *Design {
			d := NewDesign("bad", testRegistry())
			d.Root.SetGlobalValue("vdd", 1.5, "1.5")
			d.Root.SetGlobalValue("f", 1e6, "1e6")
			a := d.Root.MustAddChild("a", "cell")
			if err := a.SetParam("frobs", "3"); err != nil {
				t.Fatal(err)
			}
			return d
		}},
		{"range violation", func(t *testing.T) *Design {
			d := NewDesign("bad", testRegistry())
			d.Root.SetGlobalValue("vdd", 1.5, "1.5")
			d.Root.SetGlobalValue("f", 1e6, "1e6")
			a := d.Root.MustAddChild("a", "cell")
			if err := a.SetParam("bits", "4096"); err != nil {
				t.Fatal(err)
			}
			return d
		}},
		{"undefined variable", func(t *testing.T) *Design {
			d := NewDesign("bad", testRegistry())
			d.Root.SetGlobalValue("vdd", 1.5, "1.5")
			d.Root.SetGlobalValue("f", 1e6, "1e6")
			a := d.Root.MustAddChild("a", "cell")
			if err := a.SetParam("bits", "mystery"); err != nil {
				t.Fatal(err)
			}
			return d
		}},
		{"dangling power ref", func(t *testing.T) *Design {
			d := NewDesign("bad", testRegistry())
			d.Root.SetGlobalValue("vdd", 1.5, "1.5")
			d.Root.SetGlobalValue("f", 1e6, "1e6")
			a := d.Root.MustAddChild("a", "loss")
			if err := a.SetParam("pload", `power("ghost")`); err != nil {
				t.Fatal(err)
			}
			return d
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.build(t)
			_, errC := d.Evaluate()
			_, errI := d.EvaluateInterpreted(nil)
			if errC == nil || errI == nil {
				t.Fatalf("expected both paths to fail: compiled=%v interpreted=%v", errC, errI)
			}
			if errC.Error() != errI.Error() {
				t.Fatalf("error text differs:\ncompiled:    %v\ninterpreted: %v", errC, errI)
			}
		})
	}
}

func TestPlanCacheReuseAndInvalidation(t *testing.T) {
	d := planTestDesign(t)
	p1, err := d.PlanFor(nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.PlanFor(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("unchanged design should reuse its cached plan")
	}
	// Distinct override-name sets compile distinct plans.
	pv, err := d.PlanFor([]string{"vdd"})
	if err != nil {
		t.Fatal(err)
	}
	if pv == p1 {
		t.Fatal("override set must key the plan cache")
	}
	// Any edit invalidates: a rebound cell...
	if err := d.Root.Find("alpha").SetParam("bits", "width+2"); err != nil {
		t.Fatal(err)
	}
	p3, err := d.PlanFor(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("SetParam must invalidate the plan cache")
	}
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Find("alpha").Params["bits"]; got != 18 {
		t.Errorf("stale plan: bits = %v, want 18", got)
	}
	// ...a structural edit...
	d.Root.MustAddChild("extra", "cell")
	p4, err := d.PlanFor(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p3 {
		t.Fatal("AddChild must invalidate the plan cache")
	}
	// ...and a global edit.
	d.Root.SetGlobalValue("width", 10, "10")
	p5, err := d.PlanFor(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p5 == p4 {
		t.Fatal("SetGlobalValue must invalidate the plan cache")
	}
}

func TestPlanPicksUpReRegisteredModel(t *testing.T) {
	d := NewDesign("regen", testRegistry())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1e6")
	d.Root.MustAddChild("a", "cell")
	r1, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Re-register "cell" with doubled switched capacitance; the plan is
	// unchanged but its per-row model cache must refresh (registry
	// generation), exactly as the interpreter would.
	d.Registry.MustRegister(&model.Func{
		Meta: model.Info{
			Name: "cell", Title: "test cell v2", Class: model.Computation, Doc: "d",
			Params: model.WithStd(
				model.Param{Name: "bits", Default: 8, Min: 1, Max: 1024, Integer: true},
				model.Param{Name: "act", Default: 1, Min: 0, Max: 2},
			),
		},
		Fn: func(p model.Params) (*model.Estimate, error) {
			e := &model.Estimate{VDD: p.VDD()}
			e.AddCap("c", units.Farads(p["act"]*p["bits"]*200e-15), p.Freq())
			return e, nil
		},
	})
	r2, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if float64(r2.Power) != 2*float64(r1.Power) {
		t.Errorf("re-registered model not picked up: %v then %v", r1.Power, r2.Power)
	}
	sameResult(t, "", r2, mustInterp(t, d))
}

func mustInterp(t *testing.T, d *Design) *Result {
	t.Helper()
	r, err := d.EvaluateInterpreted(nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSweeperMatchesEvaluateAt(t *testing.T) {
	d := planTestDesign(t)
	plan, err := d.PlanFor([]string{"vdd"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.VariantSteps() >= plan.Steps() {
		t.Fatalf("hoisting found no invariant work: %d of %d steps variant",
			plan.VariantSteps(), plan.Steps())
	}
	sw, err := plan.NewSweeper()
	if err != nil {
		t.Fatal(err)
	}
	ev := sw.NewEval()
	for _, vdd := range []float64{0.8, 1.0, 1.5, 2.0, 3.3} {
		ov := map[string]float64{"vdd": vdd}
		power, area, delay, err := ev.At(ov)
		if err != nil {
			t.Fatalf("vdd=%g: %v", vdd, err)
		}
		full, err := d.EvaluateAt(ov)
		if err != nil {
			t.Fatalf("vdd=%g: %v", vdd, err)
		}
		if power != float64(full.Power) || area != float64(full.Area) || delay != float64(full.Delay) {
			t.Errorf("vdd=%g: hoisted %v/%v/%v, full %v/%v/%v",
				vdd, power, area, delay, full.Power, full.Area, full.Delay)
		}
	}
}

func TestPlanConcurrentSharedUse(t *testing.T) {
	// Many goroutines share one design, its cached plan and one Sweeper:
	// the mix the exploration engine produces under -race.
	d := planTestDesign(t)
	want, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := d.PlanFor([]string{"vdd"})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := plan.NewSweeper()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ev := sw.NewEval()
			for i := 0; i < 50; i++ {
				r, err := d.Evaluate()
				if err != nil {
					errs <- err
					return
				}
				if r.Power != want.Power {
					errs <- fmt.Errorf("goroutine %d: power %v, want %v", g, r.Power, want.Power)
					return
				}
				vdd := 1.0 + float64((g+i)%10)*0.2
				p1, _, _, err := ev.At(map[string]float64{"vdd": vdd})
				if err != nil {
					errs <- err
					return
				}
				full, err := d.EvaluateAt(map[string]float64{"vdd": vdd})
				if err != nil {
					errs <- err
					return
				}
				if p1 != float64(full.Power) {
					errs <- fmt.Errorf("goroutine %d: hoisted %v, full %v at vdd=%g", g, p1, full.Power, vdd)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEvaluateTotalsMatchesEvaluate(t *testing.T) {
	d := planTestDesign(t)
	for _, ov := range []map[string]float64{nil, {"vdd": 2.2}, {"width": 6, "f": 3e6}} {
		power, area, delay, err := d.EvaluateTotals(ov)
		if err != nil {
			t.Fatal(err)
		}
		full, err := d.EvaluateAt(ov)
		if err != nil {
			t.Fatal(err)
		}
		if power != float64(full.Power) || area != float64(full.Area) || delay != float64(full.Delay) {
			t.Errorf("totals %v/%v/%v, full %v/%v/%v at %v",
				power, area, delay, full.Power, full.Area, full.Delay, ov)
		}
	}
}
