package sheet

import (
	"fmt"
	"sort"
	"strings"

	"powerplay/internal/core/model"
	"powerplay/internal/expr"
)

// The deck format: a line-oriented, hand-writable description of a
// design sheet, the shell-side counterpart of the web forms.  The JSON
// format is what the server persists; decks are what a user edits in
// $EDITOR and feeds to ppcli.
//
//	# Figure 1 architecture
//	design Luminance_1
//	doc VQ luminance decompression
//	var vdd = 1.5
//	var f = 2MHz
//	row read_bank ucb.sram words=2048 bits=8 f=f/16
//	row look_up_table ucb.sram words=4096 bits=6 f=f
//	group datapath chain
//	row datapath/mult ucb.mult.array bwA=16 bwB=16
//	var datapath:gain = 2
//	row conv power.dcdc pload="power(\"datapath\")" eta=0.8
//
// Grammar, one directive per line ("#" and ";" start comments):
//
//	design NAME              sheet name (first directive)
//	doc TEXT                 sheet documentation (may repeat)
//	var [PATH:]NAME = EXPR   variable at the root or at PATH
//	group PATH [chain]       hierarchy row, optional serial delay
//	row PATH MODEL [K=V ...] model row; missing parent groups error
//	rowdoc PATH TEXT         row documentation
//
// Values containing spaces are double-quoted with backslash escapes.

// ParseDeck reads a deck into a design bound to a registry.
func ParseDeck(src string, reg *model.Registry) (*Design, error) {
	var d *Design
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields, err := tokenizeDeckLine(line)
		if err != nil {
			return nil, deckErr(lineNo, "%v", err)
		}
		directive := fields[0]
		args := fields[1:]
		if d == nil && directive != "design" {
			return nil, deckErr(lineNo, "the first directive must be \"design NAME\", got %q", directive)
		}
		switch directive {
		case "design":
			if d != nil {
				return nil, deckErr(lineNo, "duplicate design directive")
			}
			if len(args) != 1 || !validName(args[0]) {
				return nil, deckErr(lineNo, "design wants one valid name")
			}
			d = NewDesign(args[0], reg)
		case "doc":
			d.Doc = strings.TrimSpace(d.Doc + " " + strings.Join(args, " "))
		case "var":
			if err := deckVar(d, args); err != nil {
				return nil, deckErr(lineNo, "%v", err)
			}
		case "group":
			if err := deckGroup(d, args); err != nil {
				return nil, deckErr(lineNo, "%v", err)
			}
		case "row":
			if err := deckRow(d, args); err != nil {
				return nil, deckErr(lineNo, "%v", err)
			}
		case "rowdoc":
			if len(args) < 2 {
				return nil, deckErr(lineNo, "rowdoc wants PATH TEXT")
			}
			n := d.Root.Find(args[0])
			if n == nil {
				return nil, deckErr(lineNo, "rowdoc: no row %q", args[0])
			}
			n.Doc = strings.Join(args[1:], " ")
		default:
			return nil, deckErr(lineNo, "unknown directive %q", directive)
		}
	}
	if d == nil {
		return nil, fmt.Errorf("sheet: empty deck")
	}
	return d, nil
}

func deckErr(lineNo int, format string, args ...any) error {
	return fmt.Errorf("sheet: deck line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
}

// deckVar handles "var [PATH:]NAME = EXPR".
func deckVar(d *Design, args []string) error {
	// Re-join and split on "=" so "var x=1" and "var x = 1" both work.
	joined := strings.Join(args, " ")
	name, src, ok := strings.Cut(joined, "=")
	if !ok {
		return fmt.Errorf("var wants NAME = EXPR")
	}
	name = strings.TrimSpace(name)
	src = strings.TrimSpace(src)
	target := d.Root
	if path, varName, scoped := strings.Cut(name, ":"); scoped {
		target = d.Root.Find(strings.TrimSpace(path))
		if target == nil {
			return fmt.Errorf("var: no row %q", path)
		}
		name = strings.TrimSpace(varName)
	}
	if src == "" {
		return fmt.Errorf("var %s: empty expression", name)
	}
	return target.SetGlobal(name, src)
}

// deckGroup handles "group PATH [chain]".
func deckGroup(d *Design, args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("group wants PATH [chain]")
	}
	n, err := addAtPath(d, args[0], "")
	if err != nil {
		return err
	}
	if len(args) == 2 {
		if args[1] != "chain" {
			return fmt.Errorf("group: unknown mode %q", args[1])
		}
		n.Delay = ComposeChain
	}
	return nil
}

// deckRow handles "row PATH MODEL [K=V ...]".
func deckRow(d *Design, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("row wants PATH MODEL [param=expr ...]")
	}
	n, err := addAtPath(d, args[0], args[1])
	if err != nil {
		return err
	}
	for _, kv := range args[2:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" || v == "" {
			return fmt.Errorf("row %s: bad parameter %q (want key=expr)", args[0], kv)
		}
		if err := n.SetParam(k, v); err != nil {
			return err
		}
	}
	return nil
}

// addAtPath creates a node at a slash path whose parents already exist.
func addAtPath(d *Design, path, modelName string) (*Node, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty row path")
	}
	parent := d.Root
	for _, part := range parts[:len(parts)-1] {
		next := parent.Child(part)
		if next == nil {
			return nil, fmt.Errorf("row %q: missing parent group %q (declare it first)", path, part)
		}
		parent = next
	}
	return parent.AddChild(parts[len(parts)-1], modelName)
}

// tokenizeDeckLine splits on whitespace, honouring double quotes with
// backslash escapes; quotes may appear inside key=value tokens.
func tokenizeDeckLine(line string) ([]string, error) {
	var fields []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			fields = append(fields, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '\\' && inQuote:
			if i+1 >= len(line) {
				return nil, fmt.Errorf("dangling escape")
			}
			i++
			cur.WriteByte(line[i])
		case c == '"':
			inQuote = !inQuote
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	flush()
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty line")
	}
	return fields, nil
}

// FormatDeck serializes a design in deck form; ParseDeck(FormatDeck(d))
// evaluates identically to d.
func FormatDeck(d *Design) string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %s\n", d.Name)
	if d.Doc != "" {
		fmt.Fprintf(&b, "doc %s\n", d.Doc)
	}
	for _, g := range d.Root.Globals {
		fmt.Fprintf(&b, "var %s = %s\n", g.Name, g.Expr.Source())
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			path := c.Path()
			if c.Model == "" {
				if c.Delay == ComposeChain {
					fmt.Fprintf(&b, "group %s chain\n", path)
				} else {
					fmt.Fprintf(&b, "group %s\n", path)
				}
			} else {
				fmt.Fprintf(&b, "row %s %s", path, c.Model)
				for _, p := range c.Params {
					fmt.Fprintf(&b, " %s=%s", p.Name, quoteDeck(p.Expr.Source()))
				}
				fmt.Fprintln(&b)
			}
			if c.Doc != "" {
				fmt.Fprintf(&b, "rowdoc %s %s\n", path, c.Doc)
			}
			// Scoped variables, in stable order.
			names := make([]string, 0, len(c.Globals))
			byName := map[string]*expr.Expr{}
			for _, g := range c.Globals {
				names = append(names, g.Name)
				byName[g.Name] = g.Expr
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(&b, "var %s:%s = %s\n", path, name, byName[name].Source())
			}
			walk(c)
		}
	}
	walk(d.Root)
	return b.String()
}

// quoteDeck wraps values containing spaces or quotes.
func quoteDeck(s string) string {
	if !strings.ContainsAny(s, " \t\"") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return `"` + s + `"`
}
