package sheet

import (
	"sync"
	"testing"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// cloneTestDesign builds a two-level design exercising everything Clone
// must copy: globals, params, expressions over globals, an inter-row
// power() reference, and a chain-composed group.
func cloneTestDesign(t *testing.T) *Design {
	t.Helper()
	reg := model.NewRegistry()
	reg.MustRegister(&model.Func{
		Meta: model.Info{
			Name: "cell", Title: "t", Class: model.Computation, Doc: "d",
			Params: model.WithStd(model.Param{Name: "bits", Doc: "width", Default: 8}),
		},
		Fn: func(p model.Params) (*model.Estimate, error) {
			e := &model.Estimate{VDD: p.VDD()}
			e.AddCap("c", units.Farads(p.Get("bits", 8))*units.PicoFarad, p.Freq())
			e.Delay = units.Seconds(10e-9 * model.DelayScale(float64(p.VDD())))
			e.Area = 1e-9
			return e, nil
		},
	})
	d := NewDesign("orig", reg)
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 2e6, "2MHz")
	grp := d.Root.MustAddChild("dp", "")
	grp.Delay = ComposeChain
	a := grp.MustAddChild("a", "cell")
	if err := a.SetParam("bits", "16"); err != nil {
		t.Fatal(err)
	}
	b := grp.MustAddChild("b", "cell")
	if err := b.SetParam("bits", "power(\"a\")*1e6"); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCloneEvaluatesIdentically(t *testing.T) {
	d := cloneTestDesign(t)
	want, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	c := d.Clone()
	got, err := c.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Power != want.Power || got.Area != want.Area || got.Delay != want.Delay {
		t.Errorf("clone totals %v/%v/%v != %v/%v/%v",
			got.Power, got.Area, got.Delay, want.Power, want.Area, want.Delay)
	}
	if c.Name != d.Name || c.Registry != d.Registry {
		t.Error("clone should keep the name and share the registry")
	}
	// Structure is copied, not aliased.
	if c.Root == d.Root || c.Root.Child("dp") == d.Root.Child("dp") {
		t.Error("clone shares nodes with the original")
	}
	if p := c.Root.Child("dp").Child("a").Parent(); p == nil || p != c.Root.Child("dp") {
		t.Error("clone parent pointers not rewired")
	}
	if c.Root.Child("dp").Delay != ComposeChain {
		t.Error("compose mode lost")
	}
}

// TestCloneIsolation: edits to either tree never show through to the
// other — the property that makes a clone a true snapshot.
func TestCloneIsolation(t *testing.T) {
	d := cloneTestDesign(t)
	before, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	c := d.Clone()
	// Mutate the clone heavily: rebind, add, remove.
	c.Root.SetGlobalValue("vdd", 3.3, "3.3")
	if err := c.Root.Child("dp").Child("a").SetParam("bits", "64"); err != nil {
		t.Fatal(err)
	}
	c.Root.MustAddChild("extra", "cell")
	c.Root.Child("dp").RemoveChild("b")
	after, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if after.Power != before.Power || len(d.Root.Children) != 1 {
		t.Error("mutating the clone changed the original")
	}
	if d.Root.Child("dp").Child("b") == nil {
		t.Error("original lost a row")
	}
	// And the other direction: mutate the original, re-check the clone.
	c2 := d.Clone()
	wantClone, err := c2.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	d.Root.SetGlobalValue("f", 40e6, "40MHz")
	gotClone, err := c2.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if gotClone.Power != wantClone.Power {
		t.Error("mutating the original changed the clone")
	}
}

// TestCloneConcurrentEvaluation is the sheet-level half of the race
// regression suite: many goroutines evaluate clones (and the original)
// while nothing mutates — run under -race via make race.
func TestCloneConcurrentEvaluation(t *testing.T) {
	d := cloneTestDesign(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		vdd := 1.0 + float64(i)*0.2
		wg.Add(1)
		go func() {
			defer wg.Done()
			snap := d.Clone()
			if _, err := snap.EvaluateAt(map[string]float64{"vdd": vdd}); err != nil {
				t.Error(err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Concurrent EvaluateAt on the SHARED design is part of the
			// contract too, as long as nobody mutates it.
			if _, err := d.EvaluateAt(map[string]float64{"vdd": vdd}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

func TestCloneNil(t *testing.T) {
	var d *Design
	if d.Clone() != nil {
		t.Error("nil design should clone to nil")
	}
}
