package sheet

// Compiled evaluation plans.
//
// A Plan is the sheet-level half of the compiled evaluation pipeline
// (the expression half lives in internal/expr/program.go): one walk of
// the design assigns every reachable global and parameter binding a
// slot in a flat float64 vector, compiles each binding to a slot-
// resolved expr.Program, and topologically orders the work so that a
// whole evaluation is a linear pass over precompiled steps — no scope
// chains, no map lookups, no AST walks.  power("row")/area/delay call
// sites lower to reads of the target row's result slots, which the
// plan guarantees are computed first; the cycle detection mirrors the
// interpreter's two rules (variable cycles and row cycles) with the
// same error text.
//
// Correctness contract: a Plan execution that succeeds produces values
// bit-identical to the tree interpreter (the programs replicate the
// interpreter's operations exactly, and the step graph evaluates a
// superset of what the interpreter would touch, in a compatible
// order).  Any failure — at compile time (static cycle, which may be a
// false positive when the cycle hides behind an untaken branch) or at
// run time (a model error, a division by zero) — makes the caller fall
// back to the interpreter, which re-derives the canonical error
// message.  The compiled path therefore never changes observable
// results; it only makes the common case fast.
//
// Sweep-invariant hoisting: the plan statically splits its steps into
// the cone that depends (transitively) on the override slots and the
// invariant remainder.  A Sweeper executes the invariant steps once
// and snapshots the slot vector; each per-point evaluation then runs
// only the variant cone over a copy of that baseline.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"powerplay/internal/core/model"
	"powerplay/internal/expr"
	"powerplay/internal/obs"
	"powerplay/internal/units"
)

// planCompiles counts whole-plan compilations by outcome; a high "err"
// rate means designs keep hitting the interpreter-only path (static
// cycles) and the compiled pipeline is not paying for itself.
var planCompiles = obs.NewCounterVec("powerplay_sheet_plan_compiles_total",
	"Design evaluation plans compiled, by outcome.", "result")

// planEntry caches one compile outcome (failures are cached too, so a
// sheet the compiler cannot handle pays the analysis once, not per
// evaluation).
type planEntry struct {
	plan *Plan
	err  error
}

// maxCachedPlans bounds the per-design plan cache; the key space is
// override-name *sets*, which sweeps reuse heavily, but web input could
// mint unboundedly many.
const maxCachedPlans = 64

// overrideNames returns the sorted name set of an override map: the
// plan-cache key component.
func overrideNames(ov map[string]float64) []string {
	if len(ov) == 0 {
		return nil
	}
	names := make([]string, 0, len(ov))
	for k := range ov {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// PlanFor returns the design's compiled evaluation plan for the given
// override-name set (sorted; nil for plain Evaluate), compiling it on
// first use and caching it on the Design.  The cache is invalidated by
// any edit to the tree's structure or bindings, detected through a
// content fingerprint over expression identities, so callers never
// observe a stale plan.  Concurrent callers share one cached Plan;
// Plan execution is itself concurrency-safe.
func (d *Design) PlanFor(names []string) (*Plan, error) {
	if !sort.StringsAreSorted(names) {
		names = append([]string(nil), names...)
		sort.Strings(names)
	}
	key := strings.Join(names, "\x00")
	d.planMu.Lock()
	defer d.planMu.Unlock()
	fp := d.cachedFingerprint()
	if d.plans == nil || d.planFP != fp || len(d.plans) > maxCachedPlans {
		d.plans = make(map[string]*planEntry)
		d.planFP = fp
	}
	if e, ok := d.plans[key]; ok {
		return e.plan, e.err
	}
	plan, err := compilePlan(d, names)
	if err == nil {
		planCompiles.With("ok").Inc()
	} else {
		planCompiles.With("err").Inc()
	}
	d.plans[key] = &planEntry{plan: plan, err: err}
	return plan, err
}

// cachedFingerprint returns the design's content fingerprint, reusing
// the previous hash when the tree's mutation epoch (and root identity)
// are unchanged since it was computed.  Caller holds planMu.
func (d *Design) cachedFingerprint() uint64 {
	e := d.Root.epoch.Load()
	if d.fpValid && d.fpRoot == d.Root && d.fpEpoch == e {
		return d.fpVal
	}
	d.fpVal = d.contentFingerprint()
	d.fpRoot, d.fpEpoch, d.fpValid = d.Root, e, true
	return d.fpVal
}

// contentFingerprint hashes everything evaluation depends on: the tree
// shape, row names, models, delay composition and the identity of
// every bound expression.  Expressions are immutable after compile and
// rebinding swaps pointers, so expr.Expr.ID captures cell edits.
func (d *Design) contentFingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	str := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff
		h *= prime
	}
	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		str(n.Name)
		str(n.Model)
		str(string(n.Delay))
		for _, b := range n.Params {
			str(b.Name)
			u64(b.Expr.ID())
		}
		h ^= 0xfe
		h *= prime
		for _, b := range n.Globals {
			str(b.Name)
			u64(b.Expr.ID())
		}
		h ^= 0xfd
		h *= prime
		for _, c := range n.Children {
			walk(c)
		}
		h ^= 0xfc
		h *= prime
	}
	walk(d.Root)
	return h
}

// Plan is a compiled evaluation schedule for one design and one
// override-name set.  It is immutable after compilation (per-row model
// caches update atomically) and safe for concurrent Exec calls.
type Plan struct {
	design        *Design
	overrideNames []string
	overrideSlots []int
	slotCount     int
	steps         []*planStep
	isVariant     []bool // per step: depends on an override slot
	variantSteps  []int  // indices of variant steps, in schedule order
	variantSlot   []bool // per slot: an override writes it, transitively
	nodes         []*Node
	nodeBase      []int
	idxOf         map[*Node]int
	rootIdx       int
	pool          sync.Pool // *planRun

	// Patch metadata (see patch.go): where every compiled binding
	// landed and what the tree looked like at compile time, so a
	// binding-only edit can be patched into a retained plan without a
	// whole-sheet recompile.
	cells       []planCell
	globalSlot  map[globalKey]int // slot of every reachable global
	nodeStep    []int             // per node index: index of its stepNode
	globalNames [][]string        // per node index: global names at compile
	nodePaths   []string          // per node index: path at compile (stable under patching)
	writers     []int             // per slot: writing step index; lazy, engine-mu guarded

	// Volatile model-step cache, keyed by registry generation (lazy,
	// engine-mu guarded like writers; patching carries it over since
	// stepNode steps are shared).
	volSteps []int
	volGen   uint64
	volOK    bool

	// Wavefront schedule (see levels): computed lazily, once, from the
	// same slot dependencies markVariance walks.
	levelOnce sync.Once
	stepLevel []int   // per step: 1-based dependency depth
	byLevel   [][]int // step indices grouped by level, schedule-ordered
	maxWidth  int     // widest level: the plan's available parallelism

	// swMemo caches the hoisted invariant baseline per registry
	// generation, so repeated sweeps over one plan skip re-executing
	// the invariant steps (see SharedSweeper).
	swMemo atomic.Pointer[sweeperMemo]
}

// planStep is one unit of scheduled work: either "run a compiled
// expression into a slot" or "evaluate and aggregate one row".
type planStep struct {
	kind stepKind

	// stepExpr
	prog *expr.Program
	dst  int
	// exprID is the identity of the source expression the program was
	// compiled from.  Expressions are immutable and rebinding a cell
	// swaps the pointer, so comparing IDs across two congruent plans
	// detects exactly the edited cells (see incremental.go).
	exprID uint64

	// stepNode
	node       *Node
	nodeIdx    int
	base       int // 5 result slots: power, dynamic, static, area, delay
	modelName  string
	paramNames []string
	paramSlots []int
	stdNames   []string // inherited vdd/f/tech, when in scope and unbound
	stdSlots   []int
	childBases []int
	compose    Compose
	mc         atomic.Pointer[rowModelCache]
}

type stepKind uint8

const (
	stepExpr stepKind = iota
	stepNode
)

// rowModelCache pins the resolved model, its prebuilt validation
// schema, and the row's precomputed validation schedule, keyed to the
// registry generation so re-registering a model invalidates it.  The
// schedule is split by slot variance: between evaluations of one plan,
// invariant entries always reproduce the same value (their slots are
// written by deterministic invariant steps, or are constants), so a
// re-fill of an already-populated map only rewrites varEntries.
type rowModelCache struct {
	gen        uint64
	m          model.Model
	schema     *model.Schema
	varEntries []paramEntry // bound to override-dependent slots
	invEntries []paramEntry // invariant slots and schema defaults
	size       int
	invalid    string // a bound name Validate would reject; "" when fine
}

// paramEntry is one precomputed element of a row's validated parameter
// map: a schema parameter (bound to a slot, or defaulted) or a
// passed-through conventional parameter.  The sequence reproduces what
// Schema.Validate builds, without the intermediate map.
type paramEntry struct {
	name  string
	slot  int // -1: use def
	def   float64
	check bool
	param model.Param
}

// buildRowModelCache resolves a row's model and precomputes its
// validation schedule from the step's bound/inherited slots, split by
// the plan's slot-variance map.
func buildRowModelCache(st *planStep, m model.Model, gen uint64, variantSlot []bool) *rowModelCache {
	mc := &rowModelCache{gen: gen, m: m, schema: model.NewSchema(m.Info().Params)}
	put := func(en paramEntry) {
		mc.size++
		if en.slot >= 0 && variantSlot[en.slot] {
			mc.varEntries = append(mc.varEntries, en)
		} else {
			mc.invEntries = append(mc.invEntries, en)
		}
	}
	bound := make(map[string]bool, len(st.paramNames)+len(st.stdNames))
	add := func(name string, slot int) {
		bound[name] = true
		if p, ok := mc.schema.Lookup(name); ok {
			put(paramEntry{name: name, slot: slot, check: true, param: p})
			return
		}
		switch name {
		case model.ParamVDD, model.ParamFreq, model.ParamTech:
			put(paramEntry{name: name, slot: slot})
		default:
			if mc.invalid == "" {
				mc.invalid = name
			}
		}
	}
	for i, name := range st.paramNames {
		add(name, st.paramSlots[i])
	}
	for i, name := range st.stdNames {
		add(name, st.stdSlots[i])
	}
	for _, p := range mc.schema.Params() {
		if !bound[p.Name] {
			put(paramEntry{name: p.Name, slot: -1, def: p.Default})
		}
	}
	return mc
}

// Node result slot offsets within a row's 5-slot block.
const (
	slotPower = iota
	slotDynamic
	slotStatic
	slotArea
	slotDelay
	nodeSlots
)

// planRun is pooled (or per-worker) mutable execution state.  ests and
// params hold per-row outputs when the caller keeps results; fulls are
// reusable per-row validated-parameter maps that never escape a run.
// A full map's key set is fixed by the row's validation schedule, so
// re-evaluations overwrite in place without clearing; fullGen records
// which schedule (registry generation) populated it, forcing a clear
// if a re-registered model changed the schema.
type planRun struct {
	slots   []float64
	scratch expr.Scratch
	ests    []*model.Estimate
	params  []model.Params
	fulls   []model.Params
	fullGen []uint64
}

// newRun allocates execution state sized to the plan.
func (p *Plan) newRun() *planRun {
	return &planRun{
		slots:   make([]float64, p.slotCount),
		ests:    make([]*model.Estimate, len(p.nodes)),
		params:  make([]model.Params, len(p.nodes)),
		fulls:   make([]model.Params, len(p.nodes)),
		fullGen: make([]uint64, len(p.nodes)),
	}
}

// fullMap returns the idx'th reusable validated-parameter map and
// whether it is already populated for this registry generation.  A
// populated map's invariant entries hold their final values — they are
// written by deterministic invariant steps or are schema constants —
// so the caller only rewrites the variant entries.  The caller marks
// the map populated (fullGen) after a successful full fill.
func (run *planRun) fullMap(idx, size int, gen uint64) (model.Params, bool) {
	m := run.fulls[idx]
	if m == nil {
		m = make(model.Params, size)
		run.fulls[idx] = m
		return m, false
	}
	if run.fullGen[idx] != gen {
		clear(m)
		return m, false
	}
	return m, true
}

// Steps returns the number of scheduled steps (for tests and
// diagnostics).
func (p *Plan) Steps() int { return len(p.steps) }

// VariantSteps returns how many steps depend on the override set: the
// per-point work a sweep actually pays after invariant hoisting.
func (p *Plan) VariantSteps() int { return len(p.variantSteps) }

// Slots returns the size of the plan's slot vector.
func (p *Plan) Slots() int { return p.slotCount }

// Exec evaluates the design at one override point and builds the full
// Result tree.  It is safe for concurrent use.
func (p *Plan) Exec(overrides map[string]float64) (*Result, error) {
	run, _ := p.pool.Get().(*planRun)
	if run == nil {
		run = p.newRun()
	}
	defer p.pool.Put(run)
	for i, name := range p.overrideNames {
		run.slots[p.overrideSlots[i]] = overrides[name]
	}
	for _, st := range p.steps {
		if err := p.execStep(st, run.slots, run, true); err != nil {
			return nil, err
		}
	}
	return p.buildResult(run, p.rootIdx), nil
}

// ExecTotals evaluates the design at one override point and returns
// just the root totals, skipping Result-tree construction: the fast
// path for callers (macros, sweeps) that only consume the lumped
// numbers.  It is safe for concurrent use.
func (p *Plan) ExecTotals(overrides map[string]float64) (power, area, delay float64, err error) {
	run, _ := p.pool.Get().(*planRun)
	if run == nil {
		run = p.newRun()
	}
	defer p.pool.Put(run)
	for i, name := range p.overrideNames {
		run.slots[p.overrideSlots[i]] = overrides[name]
	}
	for _, st := range p.steps {
		if err := p.execStep(st, run.slots, run, false); err != nil {
			return 0, 0, 0, err
		}
	}
	base := p.nodeBase[p.rootIdx]
	return run.slots[base+slotPower], run.slots[base+slotArea], run.slots[base+slotDelay], nil
}

// execStep runs one step against a slot vector.  When keep is set the
// per-row estimate and parameter map are retained in run for Result
// construction; otherwise reusable scratch maps are used and nothing
// escapes the run.
func (p *Plan) execStep(st *planStep, slots []float64, run *planRun, keep bool) error {
	return p.execStepScratch(st, slots, run, &run.scratch, keep)
}

// execStepScratch is execStep with the expression scratch passed
// explicitly, so wavefront workers sharing one run can each bring
// their own (everything else a step writes — its slots, its node's
// ests/params/fulls entries — is private to that step).
func (p *Plan) execStepScratch(st *planStep, slots []float64, run *planRun, scratch *expr.Scratch, keep bool) error {
	if st.kind == stepExpr {
		v, err := st.prog.Run(slots, scratch)
		if err != nil {
			return err
		}
		slots[st.dst] = v
		return nil
	}

	var pw, dyn, static, area, delay float64
	if st.modelName != "" {
		reg := p.design.Registry
		m, ok := reg.Lookup(st.modelName)
		if !ok {
			return fmt.Errorf("no model named %q in library", st.modelName)
		}
		gen := reg.Generation()
		mc := st.mc.Load()
		if mc == nil || mc.gen != gen {
			mc = buildRowModelCache(st, m, gen, p.variantSlot)
			st.mc.Store(mc)
		}
		if mc.invalid != "" {
			return fmt.Errorf("unknown parameter %q", mc.invalid)
		}
		full, populated := run.fullMap(st.nodeIdx, mc.size, gen)
		if !populated {
			for i := range mc.invEntries {
				en := &mc.invEntries[i]
				v := en.def
				if en.slot >= 0 {
					v = slots[en.slot]
				}
				if en.check {
					if err := en.param.Check(v); err != nil {
						return err
					}
				}
				full[en.name] = v
			}
		}
		for i := range mc.varEntries {
			en := &mc.varEntries[i]
			v := slots[en.slot]
			if en.check {
				if err := en.param.Check(v); err != nil {
					return err
				}
			}
			full[en.name] = v
		}
		if !populated {
			run.fullGen[st.nodeIdx] = gen
		}
		est, err := m.Evaluate(full)
		if err != nil {
			return err
		}
		if keep {
			params := make(model.Params, len(st.paramNames)+3)
			for i, name := range st.paramNames {
				params[name] = slots[st.paramSlots[i]]
			}
			for i, name := range st.stdNames {
				params[name] = slots[st.stdSlots[i]]
			}
			run.ests[st.nodeIdx] = est
			run.params[st.nodeIdx] = params
		}
		pw = float64(est.Power())
		dyn = float64(est.DynamicPower())
		static = float64(est.StaticPower())
		area = float64(est.Area)
		delay = float64(est.Delay)
	}
	for _, cb := range st.childBases {
		pw += slots[cb+slotPower]
		dyn += slots[cb+slotDynamic]
		static += slots[cb+slotStatic]
		area += slots[cb+slotArea]
		if st.compose == ComposeChain {
			delay += slots[cb+slotDelay]
		} else if slots[cb+slotDelay] > delay {
			delay = slots[cb+slotDelay]
		}
	}
	slots[st.base+slotPower] = pw
	slots[st.base+slotDynamic] = dyn
	slots[st.base+slotStatic] = static
	slots[st.base+slotArea] = area
	slots[st.base+slotDelay] = delay
	return nil
}

// buildResult reconstructs the interpreter's Result tree from the slot
// vector.
func (p *Plan) buildResult(run *planRun, idx int) *Result {
	n := p.nodes[idx]
	base := p.nodeBase[idx]
	s := run.slots
	r := &Result{
		Node:         n,
		Power:        units.Watts(s[base+slotPower]),
		DynamicPower: units.Watts(s[base+slotDynamic]),
		StaticPower:  units.Watts(s[base+slotStatic]),
		Area:         units.SquareMeters(s[base+slotArea]),
		Delay:        units.Seconds(s[base+slotDelay]),
	}
	if n.Model != "" {
		est := run.ests[idx]
		r.Estimate = est
		r.Params = run.params[idx]
		r.EnergyPerOp = est.EnergyPerOp()
	}
	for _, c := range n.Children {
		r.Children = append(r.Children, p.buildResult(run, p.idxOf[c]))
	}
	return r
}

// buildResultAt builds one node's Result, taking the children's
// Results from a per-node table the caller keeps current.  Result
// trees are never mutated after construction (each exec allocates
// fresh estimates and parameter maps), so the incremental engine
// shares clean subtrees across Plays and rebuilds only dirty rows.
func (p *Plan) buildResultAt(run *planRun, idx int, results []*Result) *Result {
	n := p.nodes[idx]
	base := p.nodeBase[idx]
	s := run.slots
	r := &Result{
		Node:         n,
		Power:        units.Watts(s[base+slotPower]),
		DynamicPower: units.Watts(s[base+slotDynamic]),
		StaticPower:  units.Watts(s[base+slotStatic]),
		Area:         units.SquareMeters(s[base+slotArea]),
		Delay:        units.Seconds(s[base+slotDelay]),
	}
	if n.Model != "" {
		est := run.ests[idx]
		r.Estimate = est
		r.Params = run.params[idx]
		r.EnergyPerOp = est.EnergyPerOp()
	}
	if len(n.Children) > 0 {
		r.Children = make([]*Result, len(n.Children))
		for i, c := range n.Children {
			r.Children[i] = results[p.idxOf[c]]
		}
	}
	return r
}

// buildResults builds the whole Result forest in schedule order
// (children before parents) and returns the per-node table.
func (p *Plan) buildResults(run *planRun) []*Result {
	results := make([]*Result, len(p.nodes))
	for _, st := range p.steps {
		if st.kind == stepNode {
			results[st.nodeIdx] = p.buildResultAt(run, st.nodeIdx, results)
		}
	}
	return results
}

// Sweeper snapshots the sweep-invariant portion of a plan: every step
// that cannot depend on the override slots is executed once, and the
// resulting slot vector becomes the baseline each per-point evaluation
// starts from.  A Sweeper is immutable and safe to share; per-worker
// mutable state lives in SweepEval.
type Sweeper struct {
	plan     *Plan
	baseline []float64
}

// NewSweeper hoists and executes the invariant steps.  An error means
// some invariant binding or model fails — the sweep caller should fall
// back to plain EvaluateAt, which reproduces the canonical error.
func (p *Plan) NewSweeper() (*Sweeper, error) {
	run := p.newRun()
	for i, st := range p.steps {
		if p.isVariant[i] {
			continue
		}
		if err := p.execStep(st, run.slots, run, false); err != nil {
			return nil, err
		}
	}
	return &Sweeper{plan: p, baseline: run.slots}, nil
}

// NewEval returns a per-goroutine evaluation context over the sweeper's
// baseline.  A SweepEval must not be used concurrently.
func (s *Sweeper) NewEval() *SweepEval {
	run := s.plan.newRun()
	copy(run.slots, s.baseline)
	return &SweepEval{sw: s, run: run}
}

// SweepEval evaluates sweep points against a hoisted baseline, running
// only the override-dependent cone per point.
type SweepEval struct {
	sw  *Sweeper
	run *planRun
}

// At evaluates one override point and returns the design's root
// totals.  Results are identical to EvaluateAt's root Power/Area/Delay;
// any error means the caller should fall back to EvaluateAt for the
// canonical message.
func (e *SweepEval) At(ov map[string]float64) (power, area, delay float64, err error) {
	p := e.sw.plan
	slots := e.run.slots
	for i, name := range p.overrideNames {
		v, ok := ov[name]
		if !ok {
			return 0, 0, 0, fmt.Errorf("sweep point missing override %q", name)
		}
		slots[p.overrideSlots[i]] = v
	}
	for _, si := range p.variantSteps {
		if err := p.execStep(p.steps[si], slots, e.run, false); err != nil {
			return 0, 0, 0, err
		}
	}
	base := p.nodeBase[p.rootIdx]
	return slots[base+slotPower], slots[base+slotArea], slots[base+slotDelay], nil
}

// SharedSweeper returns a hoisted invariant baseline that repeated
// sweeps over this plan share, rebuilding it only when the model
// registry's generation moves (a re-registered model may change any
// row's numbers; binding edits already invalidate the whole plan via
// the content fingerprint, so they cannot leak in here).  Plans whose
// rows resolve to volatile models never share: their "invariant" steps
// are not actually invariant across calls, so each sweep hoists fresh,
// exactly as NewSweeper would.  A memoized error is shared too — a
// failing invariant binding fails every sweep identically until an
// edit rebuilds the plan.
func (p *Plan) SharedSweeper() (*Sweeper, error) {
	if p.hasVolatileModel() {
		return p.NewSweeper()
	}
	gen := p.design.Registry.Generation()
	if m := p.swMemo.Load(); m != nil && m.regGen == gen {
		return m.sw, m.err
	}
	sw, err := p.NewSweeper()
	p.swMemo.Store(&sweeperMemo{regGen: gen, sw: sw, err: err})
	return sw, err
}

// sweeperMemo caches one hoisted baseline (or its error) keyed to the
// registry generation it was computed under.
type sweeperMemo struct {
	regGen uint64
	sw     *Sweeper
	err    error
}

// stepVolatile reports whether a step's row currently resolves to a
// volatile model (see model.Volatile): such steps must re-run on every
// Play regardless of dirty tracking, and baselines containing their
// outputs must not be reused across calls.
func (p *Plan) stepVolatile(st *planStep) bool {
	if st.kind != stepNode || st.modelName == "" {
		return false
	}
	m, ok := p.design.Registry.Lookup(st.modelName)
	return ok && model.IsVolatile(m)
}

// hasVolatileModel reports whether any row of the plan resolves to a
// volatile model.
func (p *Plan) hasVolatileModel() bool {
	for _, st := range p.steps {
		if p.stepVolatile(st) {
			return true
		}
	}
	return false
}

// forEachRead calls fn for every slot the step reads.  Expression slot
// sets are conservative (untaken branches count), matching the
// variance analysis, so dirtiness is never propagated too narrowly.
func (st *planStep) forEachRead(fn func(slot int)) {
	if st.kind == stepExpr {
		for _, s := range st.prog.Slots() {
			fn(s)
		}
		return
	}
	for _, s := range st.paramSlots {
		fn(s)
	}
	for _, s := range st.stdSlots {
		fn(s)
	}
	for _, cb := range st.childBases {
		for o := 0; o < nodeSlots; o++ {
			fn(cb + o)
		}
	}
}

// forEachWrite calls fn for every slot the step writes.
func (st *planStep) forEachWrite(fn func(slot int)) {
	if st.kind == stepExpr {
		fn(st.dst)
		return
	}
	for o := 0; o < nodeSlots; o++ {
		fn(st.base + o)
	}
}

// levels lazily computes the wavefront schedule: each step's dependency
// depth is one more than the deepest step writing a slot it reads, so
// all steps of one level read only slots finalized at shallower levels
// and write mutually disjoint slots (the compiler allocates every
// step's destination uniquely).  Steps of one level may therefore run
// concurrently; schedule order is preserved within a level, so a serial
// walk of byLevel visits steps in an order compatible with the original
// topological order.
func (p *Plan) levels() {
	p.levelOnce.Do(func() {
		slotDepth := make([]int, p.slotCount)
		p.stepLevel = make([]int, len(p.steps))
		maxLevel := 0
		for i, st := range p.steps {
			level := 1
			st.forEachRead(func(s int) {
				if slotDepth[s] >= level {
					level = slotDepth[s] + 1
				}
			})
			st.forEachWrite(func(s int) {
				slotDepth[s] = level
			})
			p.stepLevel[i] = level
			if level > maxLevel {
				maxLevel = level
			}
		}
		p.byLevel = make([][]int, maxLevel)
		for i, lv := range p.stepLevel {
			p.byLevel[lv-1] = append(p.byLevel[lv-1], i)
		}
		for _, bucket := range p.byLevel {
			if len(bucket) > p.maxWidth {
				p.maxWidth = len(bucket)
			}
		}
	})
}

// WavefrontWidth returns the size of the plan's widest dependency
// level: the parallelism a multi-core full recompute can exploit.
func (p *Plan) WavefrontWidth() int {
	p.levels()
	return p.maxWidth
}

// ---------------------------------------------------------------------
// Compilation

const (
	visitNew uint8 = iota
	visitActive
	visitDone
)

// globalInfo tracks one reachable global binding during compilation.
type globalInfo struct {
	owner *Node
	name  string
	e     *expr.Expr
	slot  int
	state uint8
}

type globalKey struct {
	owner *Node
	name  string
}

// nodeInfo tracks one row during compilation.
type nodeInfo struct {
	n     *Node
	idx   int
	base  int
	state uint8
}

// planDep is one edge discovered while compiling an expression: the
// referenced global or row must be scheduled before the referencing
// step.
type planDep struct {
	g *globalInfo
	n *Node
}

type planCompiler struct {
	d       *Design
	ovSlots map[string]int
	slots   int
	globals map[globalKey]*globalInfo
	nodes   map[*Node]*nodeInfo
	plan    *Plan
}

// compilePlan builds the evaluation plan for a design and a sorted
// override-name set.  Only statically reachable bindings are compiled,
// preserving the interpreter's lazy-globals semantics; an error (a
// static cycle) aborts the plan and the design evaluates through the
// interpreter instead.
func compilePlan(d *Design, names []string) (*Plan, error) {
	p := &Plan{
		design:        d,
		overrideNames: names,
		idxOf:         make(map[*Node]int),
	}
	pc := &planCompiler{
		d:       d,
		ovSlots: make(map[string]int, len(names)),
		globals: make(map[globalKey]*globalInfo),
		nodes:   make(map[*Node]*nodeInfo),
		plan:    p,
	}
	for _, name := range names {
		pc.ovSlots[name] = pc.slots
		p.overrideSlots = append(p.overrideSlots, pc.slots)
		pc.slots++
	}
	if err := pc.visitNode(d.Root); err != nil {
		return nil, err
	}
	p.rootIdx = pc.nodes[d.Root].idx
	p.slotCount = pc.slots
	pc.markVariance()
	p.nodeStep = make([]int, len(p.nodes))
	for i, st := range p.steps {
		if st.kind == stepNode {
			p.nodeStep[st.nodeIdx] = i
		}
	}
	p.globalNames = make([][]string, len(p.nodes))
	p.nodePaths = make([]string, len(p.nodes))
	for i, n := range p.nodes {
		for _, g := range n.Globals {
			p.globalNames[i] = append(p.globalNames[i], g.Name)
		}
		p.nodePaths[i] = n.Path()
	}
	p.globalSlot = make(map[globalKey]int, len(pc.globals))
	for k, gi := range pc.globals {
		p.globalSlot[k] = gi.slot
	}
	return p, nil
}

// alloc reserves n consecutive slots.
func (pc *planCompiler) alloc(n int) int {
	s := pc.slots
	pc.slots += n
	return s
}

// nodeInfoFor assigns a row its index and result slots on first touch.
func (pc *planCompiler) nodeInfoFor(n *Node) *nodeInfo {
	ni, ok := pc.nodes[n]
	if !ok {
		ni = &nodeInfo{n: n, idx: len(pc.plan.nodes), base: pc.alloc(nodeSlots)}
		pc.nodes[n] = ni
		pc.plan.nodes = append(pc.plan.nodes, n)
		pc.plan.nodeBase = append(pc.plan.nodeBase, ni.base)
		pc.plan.idxOf[n] = ni.idx
	}
	return ni
}

// globalInfoFor assigns a global binding its slot on first touch.
func (pc *planCompiler) globalInfoFor(owner *Node, name string, e *expr.Expr) *globalInfo {
	key := globalKey{owner, name}
	gi, ok := pc.globals[key]
	if !ok {
		gi = &globalInfo{owner: owner, name: name, e: e, slot: pc.alloc(1)}
		pc.globals[key] = gi
	}
	return gi
}

// compileAt compiles one expression in a row's scope and returns the
// program plus the dependencies its slots reference.
func (pc *planCompiler) compileAt(n *Node, e *expr.Expr) (*expr.Program, []planDep) {
	r := &planResolver{pc: pc, node: n}
	prog := expr.CompileProgram(e, r)
	return prog, r.deps
}

func (pc *planCompiler) visitDeps(deps []planDep) error {
	for _, dep := range deps {
		if dep.g != nil {
			if err := pc.visitGlobal(dep.g); err != nil {
				return err
			}
			continue
		}
		if err := pc.visitNode(dep.n); err != nil {
			return err
		}
	}
	return nil
}

// visitGlobal schedules a global binding's step after everything it
// depends on, reusing the interpreter's cycle error text.
func (pc *planCompiler) visitGlobal(gi *globalInfo) error {
	switch gi.state {
	case visitDone:
		return nil
	case visitActive:
		return &EvalError{Path: gi.owner.Path(), Msg: fmt.Sprintf("circular definition of variable %q", gi.name)}
	}
	gi.state = visitActive
	prog, deps := pc.compileAt(gi.owner, gi.e)
	if err := pc.visitDeps(deps); err != nil {
		return err
	}
	pc.plan.steps = append(pc.plan.steps, &planStep{kind: stepExpr, prog: prog, dst: gi.slot, exprID: gi.e.ID()})
	pc.plan.cells = append(pc.plan.cells, planCell{owner: gi.owner, name: gi.name, stepIdx: len(pc.plan.steps) - 1})
	gi.state = visitDone
	return nil
}

// visitNode schedules a row: its parameter programs, then its children,
// then the row's own evaluate-and-aggregate step.
func (pc *planCompiler) visitNode(n *Node) error {
	ni := pc.nodeInfoFor(n)
	switch ni.state {
	case visitDone:
		return nil
	case visitActive:
		return &EvalError{Path: n.Path(), Msg: "circular dependency between rows (through power()/area()/delay())"}
	}
	ni.state = visitActive
	st := &planStep{
		kind:      stepNode,
		node:      n,
		nodeIdx:   ni.idx,
		base:      ni.base,
		modelName: n.Model,
		compose:   n.Delay,
	}
	if n.Model != "" {
		for _, b := range n.Params {
			prog, deps := pc.compileAt(n, b.Expr)
			if err := pc.visitDeps(deps); err != nil {
				return err
			}
			slot := pc.alloc(1)
			pc.plan.steps = append(pc.plan.steps, &planStep{kind: stepExpr, prog: prog, dst: slot, exprID: b.Expr.ID()})
			pc.plan.cells = append(pc.plan.cells, planCell{owner: n, name: b.Name, param: true, stepIdx: len(pc.plan.steps) - 1})
			st.paramNames = append(st.paramNames, b.Name)
			st.paramSlots = append(st.paramSlots, slot)
		}
		// Inherit the conventional scope parameters from enclosing
		// globals when the row does not bind them itself, mirroring
		// evalModelRow.
	std:
		for _, std := range [...]string{model.ParamVDD, model.ParamFreq, model.ParamTech} {
			for _, bound := range st.paramNames {
				if bound == std {
					continue std
				}
			}
			if s, ok := pc.ovSlots[std]; ok {
				st.stdNames = append(st.stdNames, std)
				st.stdSlots = append(st.stdSlots, s)
				continue
			}
			for scope := n; scope != nil; scope = scope.parent {
				if e := scope.Global(std); e != nil {
					gi := pc.globalInfoFor(scope, std, e)
					if err := pc.visitGlobal(gi); err != nil {
						return err
					}
					st.stdNames = append(st.stdNames, std)
					st.stdSlots = append(st.stdSlots, gi.slot)
					break
				}
			}
		}
	}
	for _, c := range n.Children {
		if err := pc.visitNode(c); err != nil {
			return err
		}
		st.childBases = append(st.childBases, pc.nodes[c].base)
	}
	pc.plan.steps = append(pc.plan.steps, st)
	ni.state = visitDone
	return nil
}

// markVariance splits the schedule into the override-dependent cone
// and the invariant remainder.  A slot is variant when an override
// writes it or a variant step writes it; a step is variant when it
// reads a variant slot.  Program slot sets are conservative (branches
// count), so invariance is never claimed falsely.
func (pc *planCompiler) markVariance() {
	p := pc.plan
	variantSlot := make([]bool, p.slotCount)
	for _, s := range p.overrideSlots {
		variantSlot[s] = true
	}
	p.isVariant = make([]bool, len(p.steps))
	for i, st := range p.steps {
		variant := false
		if st.kind == stepExpr {
			for _, s := range st.prog.Slots() {
				if variantSlot[s] {
					variant = true
					break
				}
			}
			if variant {
				variantSlot[st.dst] = true
			}
		} else {
			for _, s := range st.paramSlots {
				if variantSlot[s] {
					variant = true
					break
				}
			}
			if !variant {
				for _, s := range st.stdSlots {
					if variantSlot[s] {
						variant = true
						break
					}
				}
			}
			if !variant {
				for _, cb := range st.childBases {
					if variantSlot[cb] {
						variant = true
						break
					}
				}
			}
			if variant {
				for o := 0; o < nodeSlots; o++ {
					variantSlot[st.base+o] = true
				}
			}
		}
		if variant {
			p.isVariant[i] = true
			p.variantSteps = append(p.variantSteps, i)
		}
	}
	p.variantSlot = variantSlot
}

// planResolver implements expr.Resolver and expr.CallResolver for
// expressions written at one row: overrides shadow every scope by
// plain name (as the interpreter's lookupVar does), then globals
// resolve through the scope chain, and the inter-row accessors lower
// to slot reads of the target row's result block.
type planResolver struct {
	pc   *planCompiler
	node *Node
	deps []planDep
}

// ResolveVar implements expr.Resolver.
func (r *planResolver) ResolveVar(name string) (int, bool) {
	if s, ok := r.pc.ovSlots[name]; ok {
		return s, true
	}
	for scope := r.node; scope != nil; scope = scope.parent {
		if e := scope.Global(name); e != nil {
			gi := r.pc.globalInfoFor(scope, name, e)
			r.deps = append(r.deps, planDep{g: gi})
			return gi.slot, true
		}
	}
	return 0, false
}

// ResolveFunc implements expr.Resolver with the same host functions
// nodeEnv provides (the same function values, so results and error
// messages are identical).
func (r *planResolver) ResolveFunc(name string) (expr.Func, bool) {
	switch name {
	case "dbtact":
		return dbtactFunc, true
	case "signact":
		return signactFunc, true
	}
	return nil, false
}

// ClaimsCall implements expr.CallResolver for the inter-row accessors.
func (r *planResolver) ClaimsCall(name string) bool {
	switch name {
	case "power", "area", "delay":
		return true
	}
	return false
}

// ResolveCall lowers power("row")/area("row")/delay("row") to a read
// of the target row's result slot.  Malformed or dangling sites lower
// to lazy errors raised only if evaluated, matching the interpreter;
// either way an error triggers interpreter fallback, which reproduces
// the canonical message.
func (r *planResolver) ResolveCall(name string, args []expr.CallArg) expr.CallLowering {
	if len(args) != 1 || !args[0].IsStr {
		return expr.CallLowering{Err: fmt.Errorf("%s() takes one quoted row path", name)}
	}
	ref := args[0].Str
	target := r.pc.d.Resolve(r.node, ref)
	if target == nil {
		return expr.CallLowering{Err: fmt.Errorf("%s(%q): no such row", name, ref)}
	}
	ni := r.pc.nodeInfoFor(target)
	r.deps = append(r.deps, planDep{n: target})
	off := slotPower
	switch name {
	case "area":
		off = slotArea
	case "delay":
		off = slotDelay
	}
	return expr.CallLowering{Slot: ni.base + off}
}
