package model

import (
	"fmt"
	"math"
)

// Param describes one input parameter of a model: the fields the web
// input form (Figure 4 of the paper) renders, and the constraints
// Validate enforces.
type Param struct {
	// Name is the parameter key ("bits", "words", "vdd").
	Name string
	// Doc is the one-line description shown next to the form field.
	Doc string
	// Unit is the display unit symbol ("V", "Hz", "F", ""), used only
	// for presentation.
	Unit string
	// Default is the value used when the caller does not bind the
	// parameter.
	Default float64
	// Min and Max bound the legal range when Min < Max.  When both are
	// zero the parameter is unconstrained.
	Min, Max float64
	// Integer requires a whole-number value.
	Integer bool
	// Options, when non-empty, restricts the parameter to an enumerated
	// choice (e.g. multiplier input correlation); forms render a menu.
	Options []Option
}

// Option is one enumerated choice of a Param.
type Option struct {
	// Label is the menu text ("uncorrelated inputs").
	Label string
	// Value is the numeric encoding stored in Params.
	Value float64
}

// Bounded reports whether the parameter carries a range constraint.
func (p Param) Bounded() bool { return p.Min < p.Max }

// Check validates a single value against the parameter's constraints.
func (p Param) Check(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("parameter %q: value must be finite, got %v", p.Name, v)
	}
	if p.Integer && v != math.Trunc(v) {
		return fmt.Errorf("parameter %q: must be an integer, got %v", p.Name, v)
	}
	if p.Bounded() && (v < p.Min || v > p.Max) {
		return fmt.Errorf("parameter %q: %v outside [%g, %g]", p.Name, v, p.Min, p.Max)
	}
	if len(p.Options) > 0 {
		for _, o := range p.Options {
			if o.Value == v {
				return nil
			}
		}
		return fmt.Errorf("parameter %q: %v is not one of the allowed options", p.Name, v)
	}
	return nil
}

// Validate checks a parameter valuation against a schema and returns a
// complete copy with defaults filled in.  Unknown parameter names are
// rejected, except the conventional scope parameters (vdd, f, tech),
// which are always allowed through so that enclosing-sheet globals can
// be handed to any model.
//
// Callers validating against one schema repeatedly (the compiled sheet
// plan, the web form) should build a Schema once and use its Validate,
// which skips the per-call index construction this function pays.
func Validate(schema []Param, in Params) (Params, error) {
	return NewSchema(schema).Validate(in)
}

// Schema is a prebuilt parameter-schema index: the reusable form of
// Validate for hot paths that evaluate the same model many times.  A
// Schema is immutable after NewSchema and safe for concurrent use.
type Schema struct {
	params []Param
	known  map[string]Param
}

// NewSchema indexes a parameter schema for repeated validation.
func NewSchema(params []Param) *Schema {
	s := &Schema{params: params, known: make(map[string]Param, len(params))}
	for _, p := range params {
		s.known[p.Name] = p
	}
	return s
}

// Params returns the schema's parameter list, in declaration order.
func (s *Schema) Params() []Param { return s.params }

// Lookup returns the schema parameter with the given name.
func (s *Schema) Lookup(name string) (Param, bool) {
	p, ok := s.known[name]
	return p, ok
}

// Validate checks a valuation against the schema and returns a complete
// copy with defaults filled in — semantics identical to the package-
// level Validate.
func (s *Schema) Validate(in Params) (Params, error) {
	return s.ValidateInto(in, make(Params, len(s.params)+3))
}

// ValidateInto is Validate writing into a caller-owned output map,
// which it clears first: the allocation-free variant for hot loops
// (the compiled sheet plan) that re-validate against one schema per
// evaluation.  The caller must not let the model being evaluated
// retain out beyond the call.
// Validation order is deterministic regardless of map iteration order:
// schema parameters are checked in declaration order, so when several
// bound values are invalid at once, the error is always the first
// offender by schema position.  Unknown names are reported in sorted
// order.  The interpreter, compiled, batch, and incremental paths all
// funnel through here, so this ordering is what makes their error text
// reproducible and mutually bit-identical.
func (s *Schema) ValidateInto(in, out Params) (Params, error) {
	clear(out)
	known := 0
	for _, p := range s.params {
		v, ok := in[p.Name]
		if !ok {
			out[p.Name] = p.Default
			continue
		}
		known++
		if err := p.Check(v); err != nil {
			return nil, err
		}
		out[p.Name] = v
	}
	for _, name := range [...]string{ParamVDD, ParamFreq, ParamTech} {
		if _, inSchema := s.known[name]; inSchema {
			continue
		}
		if v, ok := in[name]; ok {
			known++
			out[name] = v
		}
	}
	if known != len(in) {
		unknown := ""
		for name := range in {
			if _, ok := s.known[name]; ok {
				continue
			}
			switch name {
			case ParamVDD, ParamFreq, ParamTech:
				continue
			}
			if unknown == "" || name < unknown {
				unknown = name
			}
		}
		return nil, fmt.Errorf("unknown parameter %q", unknown)
	}
	return out, nil
}

// Std returns the conventional scope parameters that nearly every model
// shares, with library-wide defaults: 1.5 V supply (the UCB low-power
// process operating point) and a 1 MHz default frequency.
func Std() []Param {
	return []Param{
		{Name: ParamVDD, Doc: "supply voltage", Unit: "V", Default: 1.5, Min: 0.5, Max: 10},
		{Name: ParamFreq, Doc: "operating frequency", Unit: "Hz", Default: 1e6, Min: 0, Max: 10e9},
		{Name: ParamTech, Doc: "feature size (0 = library reference)", Unit: "m", Default: 0, Min: 0, Max: 1e-5},
	}
}

// WithStd prepends the conventional scope parameters to a model-specific
// schema.
func WithStd(params ...Param) []Param {
	return append(Std(), params...)
}

// Evaluate validates p against m's schema and evaluates the model: the
// single entry point callers outside a model implementation should use.
func Evaluate(m Model, p Params) (*Estimate, error) {
	full, err := Validate(m.Info().Params, p)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", m.Info().Name, err)
	}
	est, err := m.Evaluate(full)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", m.Info().Name, err)
	}
	return est, nil
}
