package model

import "math"

// Voltage-to-delay scaling.
//
// The library's delay figures are characterized at the reference supply
// (1.5 V, the UCB low-power operating point).  Gate delay follows the
// alpha-power law
//
//	t ∝ VDD / (VDD − VT)^α
//
// with VT the threshold voltage and α the velocity-saturation index.
// DelayScale returns the multiplicative factor relative to the reference
// supply, so halving headroom slows the library down the way a designer
// exploring voltage scaling expects.
const (
	// RefVDD is the characterization supply of the built-in library.
	RefVDD = 1.5
	// Vt is the nominal threshold voltage of the reference process.
	Vt = 0.7
	// AlphaSat is the velocity-saturation index of the reference process.
	AlphaSat = 1.4
)

// DelayScale returns the delay multiplier at supply vdd relative to the
// reference supply.  Supplies at or below threshold return +Inf: the
// circuit does not run.
func DelayScale(vdd float64) float64 {
	if vdd <= Vt {
		return math.Inf(1)
	}
	ref := RefVDD / math.Pow(RefVDD-Vt, AlphaSat)
	return (vdd / math.Pow(vdd-Vt, AlphaSat)) / ref
}

// MaxFreq converts a critical-path delay into the highest clock the
// component supports.  A zero delay means "no timing model" and returns
// +Inf.
func MaxFreq(delaySeconds float64) float64 {
	if delaySeconds <= 0 {
		return math.Inf(1)
	}
	return 1 / delaySeconds
}
