package model

import (
	"math"
	"testing"
	"testing/quick"

	"powerplay/internal/units"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestEstimatePowerEQ1(t *testing.T) {
	// One full-swing term, one partial-swing term, one static term:
	// P = C1·VDD²·f1 + C2·Vsw·VDD·f2 + I·VDD.
	e := &Estimate{VDD: 1.5}
	e.AddCap("logic", 100*units.PicoFarad, 2*units.MegaHertz)
	e.AddSwing("bit-lines", 50*units.PicoFarad, 0.5, 1*units.MegaHertz)
	e.AddStatic("bias", 10*units.MicroAmp)

	want := 100e-12*1.5*1.5*2e6 + 50e-12*0.5*1.5*1e6 + 10e-6*1.5
	if got := float64(e.Power()); !almost(got, want) {
		t.Errorf("Power = %v, want %v", got, want)
	}
	if got := float64(e.DynamicPower()); !almost(got, want-10e-6*1.5) {
		t.Errorf("DynamicPower = %v", got)
	}
	if got := float64(e.StaticPower()); !almost(got, 10e-6*1.5) {
		t.Errorf("StaticPower = %v", got)
	}
	if got := float64(e.SwitchedCap()); !almost(got, 150e-12) {
		t.Errorf("SwitchedCap = %v", got)
	}
	wantE := 100e-12*1.5*1.5 + 50e-12*0.5*1.5
	if got := float64(e.EnergyPerOp()); !almost(got, wantE) {
		t.Errorf("EnergyPerOp = %v, want %v", got, wantE)
	}
}

func TestPowerDecomposition(t *testing.T) {
	// Property: Power == DynamicPower + StaticPower for arbitrary terms.
	f := func(caps [4]float64, freqs [4]float64, cur [2]float64, vdd float64) bool {
		vdd = 0.5 + math.Abs(math.Mod(vdd, 5))
		e := &Estimate{VDD: units.Volts(vdd)}
		for i := range caps {
			c := math.Abs(math.Mod(caps[i], 1e-9))
			fr := math.Abs(math.Mod(freqs[i], 1e9))
			e.AddCap("c", units.Farads(c), units.Hertz(fr))
		}
		for i := range cur {
			e.AddStatic("i", units.Amps(math.Abs(math.Mod(cur[i], 1e-3))))
		}
		total := float64(e.Power())
		parts := float64(e.DynamicPower()) + float64(e.StaticPower())
		return almost(total, parts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroSwingMeansFullRail(t *testing.T) {
	full := &Estimate{VDD: 2}
	full.AddCap("x", units.PicoFarad, units.MegaHertz)
	part := &Estimate{VDD: 2}
	part.AddSwing("x", units.PicoFarad, 2, units.MegaHertz)
	if full.Power() != part.Power() {
		t.Errorf("explicit full swing %v != implicit %v", part.Power(), full.Power())
	}
}

func TestNotes(t *testing.T) {
	e := &Estimate{}
	e.Note("signal correlations neglected (%s estimate)", "conservative")
	if len(e.Notes) != 1 || e.Notes[0] != "signal correlations neglected (conservative estimate)" {
		t.Errorf("Notes = %v", e.Notes)
	}
}

func TestCapScale(t *testing.T) {
	if CapScale(0) != 1 {
		t.Error("zero tech should mean reference scale")
	}
	if CapScale(RefTech) != 1 {
		t.Error("reference tech should scale by 1")
	}
	if got := CapScale(0.6e-6); !almost(got, 0.5) {
		t.Errorf("half feature size should halve capacitance, got %v", got)
	}
}

func TestParamCheck(t *testing.T) {
	p := Param{Name: "bits", Min: 1, Max: 64, Integer: true}
	if err := p.Check(8); err != nil {
		t.Errorf("Check(8): %v", err)
	}
	for _, bad := range []float64{0, 65, 8.5, math.NaN(), math.Inf(1)} {
		if err := p.Check(bad); err == nil {
			t.Errorf("Check(%v) should fail", bad)
		}
	}
	opt := Param{Name: "corr", Options: []Option{{"uncorrelated", 0}, {"correlated", 1}}}
	if err := opt.Check(1); err != nil {
		t.Errorf("option Check(1): %v", err)
	}
	if err := opt.Check(2); err == nil {
		t.Error("option Check(2) should fail")
	}
}

func TestValidate(t *testing.T) {
	schema := WithStd(
		Param{Name: "bits", Doc: "word width", Default: 8, Min: 1, Max: 128, Integer: true},
		Param{Name: "words", Doc: "word count", Default: 256, Min: 1, Max: 1 << 24, Integer: true},
	)
	got, err := Validate(schema, Params{"bits": 16})
	if err != nil {
		t.Fatal(err)
	}
	if got["bits"] != 16 || got["words"] != 256 || got["vdd"] != 1.5 || got["f"] != 1e6 {
		t.Errorf("defaults not applied: %v", got)
	}
	// Range violation.
	if _, err := Validate(schema, Params{"bits": 0}); err == nil {
		t.Error("bits=0 should fail")
	}
	// Unknown parameter rejected...
	if _, err := Validate(schema, Params{"nope": 1}); err == nil {
		t.Error("unknown param should fail")
	}
	// ...but the conventional scope names always pass even if the schema
	// omits them.
	if _, err := Validate([]Param{}, Params{ParamVDD: 3.3, ParamFreq: 1e6, ParamTech: 0}); err != nil {
		t.Errorf("scope params should pass: %v", err)
	}
	// Input must not be mutated.
	in := Params{"bits": 16}
	if _, err := Validate(schema, in); err != nil {
		t.Fatal(err)
	}
	if len(in) != 1 {
		t.Error("Validate mutated its input")
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Params{"vdd": 1.5, "f": 2e6, "bits": 8}
	if p.Get("bits", 0) != 8 || p.Get("missing", 42) != 42 {
		t.Error("Get")
	}
	if p.VDD() != 1.5 || p.Freq() != 2e6 {
		t.Error("VDD/Freq")
	}
	q := p.Clone()
	q["bits"] = 9
	if p["bits"] != 8 {
		t.Error("Clone should be independent")
	}
	if p.String() != "bits=8 f=2e+06 vdd=1.5" {
		t.Errorf("String = %q", p.String())
	}
}

func testModel(name string) Model {
	return &Func{
		Meta: Info{
			Name:   name,
			Title:  "test",
			Class:  Computation,
			Params: WithStd(Param{Name: "bits", Default: 8, Min: 1, Max: 64, Integer: true}),
		},
		Fn: func(p Params) (*Estimate, error) {
			e := &Estimate{VDD: p.VDD()}
			e.AddCap("core", units.Farads(p["bits"]*50e-15), p.Freq())
			return e, nil
		},
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(testModel("ucb.add.ripple"))
	r.MustRegister(testModel("ucb.mult.array"))
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if _, ok := r.Lookup("ucb.add.ripple"); !ok {
		t.Fatal("Lookup failed")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "ucb.add.ripple" || names[1] != "ucb.mult.array" {
		t.Errorf("Names = %v", names)
	}
	if got := r.ByClass(Computation); len(got) != 2 {
		t.Errorf("ByClass = %v", got)
	}
	if got := r.ByClass(Storage); len(got) != 0 {
		t.Errorf("ByClass(Storage) = %v", got)
	}
	// Evaluate with defaults.
	est, err := r.Evaluate("ucb.add.ripple", Params{"vdd": 1.5, "f": 2e6})
	if err != nil {
		t.Fatal(err)
	}
	want := 8 * 50e-15 * 1.5 * 1.5 * 2e6
	if !almost(float64(est.Power()), want) {
		t.Errorf("Power = %v, want %v", est.Power(), want)
	}
	// Evaluate with out-of-range parameter fails validation.
	if _, err := r.Evaluate("ucb.add.ripple", Params{"bits": 1000}); err == nil {
		t.Error("bits=1000 should fail")
	}
	// Missing model.
	if _, err := r.Evaluate("nope", nil); err == nil {
		t.Error("missing model should fail")
	}
	// Unregister.
	if !r.Unregister("ucb.add.ripple") || r.Unregister("ucb.add.ripple") {
		t.Error("Unregister")
	}
	// Empty name rejected.
	if err := r.Register(&Func{}); err == nil {
		t.Error("empty name should fail")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			r.MustRegister(testModel("m"))
			r.Unregister("m")
		}
	}()
	for i := 0; i < 200; i++ {
		r.Lookup("m")
		r.Names()
		r.Len()
	}
	<-done
}
