package model

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a thread-safe name → Model table: one PowerPlay library
// namespace.  The web server holds one registry per site; remote
// libraries are mounted into it under a prefix.
type Registry struct {
	mu     sync.RWMutex
	models map[string]Model
	gen    atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]Model)}
}

// Register adds a model under its Info().Name.  Re-registering a name
// replaces the previous model (user-defined models may be edited).
func (r *Registry) Register(m Model) error {
	name := m.Info().Name
	if name == "" {
		return fmt.Errorf("model has empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[name] = m
	r.gen.Add(1)
	return nil
}

// MustRegister is Register that panics on error, for library init code.
func (r *Registry) MustRegister(m Model) {
	if err := r.Register(m); err != nil {
		panic(err)
	}
}

// Unregister removes a model; it reports whether the name was present.
func (r *Registry) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.models[name]
	delete(r.models, name)
	if ok {
		r.gen.Add(1)
	}
	return ok
}

// Generation returns a counter that advances on every Register and
// Unregister: a cheap staleness check for caches keyed to a model
// lookup (the sheet plan's per-row schema cache).
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// Lookup finds a model by name.
func (r *Registry) Lookup(name string) (Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	return m, ok
}

// Names returns all registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByClass returns the sorted names of models in the given class.
func (r *Registry) ByClass(c Class) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var names []string
	for n, m := range r.models {
		if m.Info().Class == c {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// Evaluate looks up a model and evaluates it with validation.
func (r *Registry) Evaluate(name string, p Params) (*Estimate, error) {
	m, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("no model named %q in library", name)
	}
	return Evaluate(m, p)
}

// Func adapts an evaluation function plus an Info into a Model: the
// quickest way to define built-in characterized cells.
type Func struct {
	// Meta is the descriptor returned by Info.
	Meta Info
	// Fn computes the estimate.
	Fn func(p Params) (*Estimate, error)
}

// Info returns the descriptor.
func (f *Func) Info() Info { return f.Meta }

// Evaluate runs the wrapped function.
func (f *Func) Evaluate(p Params) (*Estimate, error) { return f.Fn(p) }
