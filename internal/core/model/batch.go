package model

// Columnar model evaluation.
//
// A sweep holds every structural parameter of a row fixed — bit widths,
// memory organization, activity, technology — and varies only the
// operating point (vdd, f).  For every library model built on the EQ 1
// template, the estimate at fixed structure is then a closed form in
// vdd and f:
//
//	P(vdd, f) = Σᵢ Csw,ᵢ · swingᵢ(vdd) · vdd · fᵢ(f)  +  Σⱼ Iⱼ · vdd
//	delay(vdd) = Delay0 · DelayScale(vdd)
//	area       = const
//
// SweepForm captures exactly that closed form, and EvalCols evaluates
// it over whole columns of operating points at once — no Estimate
// allocation, no parameter map, no per-point model dispatch.  The
// arithmetic in EvalCols replicates, operation for operation, what
// Model.Evaluate followed by Estimate.Power/DynamicPower/StaticPower
// computes per point, so columnar results are bit-identical to the
// scalar path — the property the sheet layer's equivalence oracle
// depends on.

// SweepTerm is one dynamic EQ 1 term of a sweep form: a capacitance
// lump whose per-point power is ((Csw·swing)·vdd)·freq, with swing and
// freq resolved per the field rules below.
type SweepTerm struct {
	// Csw is the switched capacitance in farads, with every structural
	// factor (activity folded into capacitance, technology scale)
	// already applied — computed by the model exactly as its Evaluate
	// would compute the Contribution's Csw.
	Csw float64
	// Swing is the voltage swing; zero means full rail (the point's
	// vdd), mirroring Contribution.Vswing.
	Swing float64
	// FMul scales the point's f column to this term's switching
	// frequency (an activity or clock-divider factor the model's
	// Evaluate folds into the Contribution's Freq).  Ignored when
	// FConst is set.
	FMul float64
	// FConst, when nonzero, is an absolute switching frequency
	// independent of the swept f (a DRAM refresh clock).
	FConst float64
}

// SweepForm is a model's estimate at fixed structural parameters,
// closed over the operating point.  It is immutable once built and safe
// to share across chunks and goroutines.
type SweepForm struct {
	// Dyn holds the dynamic terms in the same order the model's
	// Evaluate emits its Contributions (power sums are order-sensitive
	// in floating point).
	Dyn []SweepTerm
	// Static holds the static currents in amps, in StaticTerm order.
	Static []float64
	// Area is the (operating-point-independent) area in square meters.
	Area float64
	// Delay0 is the delay at the reference supply with every structural
	// factor applied; per-point delay is Delay0 · DelayScale(vdd).
	Delay0 float64
}

// SweepFormer is the optional Model extension the columnar sheet
// executor uses.  SweepForm returns the model's closed form at the
// given (fully validated and defaulted) parameter point, reading only
// structural parameters — vdd and f in p are placeholders and must not
// influence the form.  Returning ok == false means "no closed form at
// these parameters" (or for this model at all); the caller falls back
// to per-point Evaluate calls, which is always correct.
//
// Implementations must compute each field with the same floating-point
// expressions (same operations, same order) their Evaluate uses, so
// that EvalCols reproduces the scalar results bit for bit.
type SweepFormer interface {
	SweepForm(p Params) (sf *SweepForm, ok bool)
}

// DelayScaleCols fills ds[i] = DelayScale(vdd[i]) for points 0..n-1.
// The two math.Pow calls inside DelayScale dominate a columnar row
// evaluation, so callers memoize the result per vdd column and share it
// across every row reading that column.
func DelayScaleCols(ds, vdd []float64, n int) {
	for i := 0; i < n; i++ {
		ds[i] = DelayScale(vdd[i])
	}
}

// EvalCols evaluates the form for points 0..n-1: vdd and f are the
// operating-point columns, ds is the matching DelayScale column (see
// DelayScaleCols), and the five result columns receive exactly what the
// scalar path's Power/DynamicPower/StaticPower/Area/Delay reductions
// produce per point.
func (sf *SweepForm) EvalCols(vdd, f, ds, pw, dyn, stat, area, delay []float64, n int) {
	for i := 0; i < n; i++ {
		dyn[i] = 0
	}
	for _, t := range sf.Dyn {
		// Each loop mirrors Estimate.Power's per-term expression
		// ((Csw·swing)·VDD)·Freq.  Csw·Swing is hoisted when the swing
		// is fixed (both factors constant, so the product is the same
		// bits every iteration); the FMul == 1 case uses f[i] directly,
		// which matches the models that pass p.Freq() through unscaled.
		switch {
		case t.FConst != 0 && t.Swing == 0:
			for i := 0; i < n; i++ {
				dyn[i] += t.Csw * vdd[i] * vdd[i] * t.FConst
			}
		case t.FConst != 0:
			cs := t.Csw * t.Swing
			for i := 0; i < n; i++ {
				dyn[i] += cs * vdd[i] * t.FConst
			}
		case t.Swing == 0 && t.FMul == 1:
			for i := 0; i < n; i++ {
				dyn[i] += t.Csw * vdd[i] * vdd[i] * f[i]
			}
		case t.Swing == 0:
			for i := 0; i < n; i++ {
				dyn[i] += t.Csw * vdd[i] * vdd[i] * (f[i] * t.FMul)
			}
		case t.FMul == 1:
			cs := t.Csw * t.Swing
			for i := 0; i < n; i++ {
				dyn[i] += cs * vdd[i] * f[i]
			}
		default:
			cs := t.Csw * t.Swing
			for i := 0; i < n; i++ {
				dyn[i] += cs * vdd[i] * (f[i] * t.FMul)
			}
		}
	}
	// Power() accumulates the dynamic terms first — the partial sum at
	// that point is bit-identical to DynamicPower()'s total — then adds
	// the static terms; StaticPower() accumulates the same I·vdd
	// products from zero.
	copy(pw[:n], dyn[:n])
	for i := 0; i < n; i++ {
		stat[i] = 0
	}
	for _, cur := range sf.Static {
		for i := 0; i < n; i++ {
			v := cur * vdd[i]
			pw[i] += v
			stat[i] += v
		}
	}
	for i := 0; i < n; i++ {
		area[i] = sf.Area
	}
	for i := 0; i < n; i++ {
		delay[i] = sf.Delay0 * ds[i]
	}
}
