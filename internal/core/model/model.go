// Package model defines PowerPlay's model template (EQ 1 of the paper)
// and the parameter schema shared by every component model.
//
// Electronic power dissipation is described by the sum of dynamic and
// static components,
//
//	P = Σᵢ Csw,ᵢ · Vswing,ᵢ · VDD · fᵢ  +  I · VDD
//
// where Csw,ᵢ is the average capacitance at node group i switching over
// a voltage range Vswing,ᵢ at frequency fᵢ, and I is the total static
// current (leakage, bias).  A model maps its input parameters — bit
// widths, memory organization, signal correlation, supply voltage,
// operating frequency — onto any combination of Csw, Vswing and I terms,
// which gives maximum flexibility: digital, analog and mixed-mode
// components at any abstraction level all fit the template.
//
// Models also report first-order area and delay, which the spreadsheet
// displays next to power and which other models consume (interconnect
// power is a function of the design's active area).
package model

import (
	"fmt"
	"sort"
	"strings"

	"powerplay/internal/units"
)

// Conventional parameter names every model understands.  The spreadsheet
// engine injects these from the enclosing scope when an instance does not
// bind them explicitly.
const (
	ParamVDD  = "vdd"  // supply voltage, volts
	ParamFreq = "f"    // operating (access) frequency, hertz
	ParamTech = "tech" // feature size, metres; scales capacitance
)

// RefTech is the feature size at which the built-in library was
// characterized (the UC Berkeley 1.2 µm low-power process).
const RefTech = 1.2e-6

// CapScale returns the first-order technology scaling factor for
// switched capacitance: linear in feature size.  A zero tech parameter
// means "reference technology".
func CapScale(tech float64) float64 {
	if tech <= 0 {
		return 1
	}
	return tech / RefTech
}

// Contribution is one dynamic term of EQ 1: a lump of capacitance
// switching at a node group.
type Contribution struct {
	// Label names the node group ("bit-lines", "clock", "word-line").
	Label string
	// Csw is the average switched capacitance, including activity.
	Csw units.Farads
	// Vswing is the voltage range the capacitance switches over.
	// Zero means full rail (VDD), the common digital CMOS case.
	Vswing units.Volts
	// Freq is the switching frequency of this node group.
	Freq units.Hertz
}

// StaticTerm is one static term of EQ 1: a constant current draw.
type StaticTerm struct {
	// Label names the source ("bias", "leakage", "sense amps").
	Label string
	// I is the current drawn from the supply.
	I units.Amps
}

// Estimate is the result of evaluating a model at a parameter point.
type Estimate struct {
	// VDD is the supply the estimate was evaluated at.
	VDD units.Volts
	// Dynamic holds the capacitive terms of EQ 1.
	Dynamic []Contribution
	// Static holds the current terms of EQ 1.
	Static []StaticTerm
	// Area is the first-order active area of the component.
	Area units.SquareMeters
	// Delay is the first-order critical-path delay per operation.
	Delay units.Seconds
	// Notes carries modeling caveats for the documentation pane
	// ("signal correlations neglected — conservatively high").
	Notes []string
}

// Power evaluates EQ 1: total average power of the estimate.
func (e *Estimate) Power() units.Watts {
	var p float64
	for _, c := range e.Dynamic {
		swing := float64(c.Vswing)
		if swing == 0 {
			swing = float64(e.VDD)
		}
		p += float64(c.Csw) * swing * float64(e.VDD) * float64(c.Freq)
	}
	for _, s := range e.Static {
		p += float64(s.I) * float64(e.VDD)
	}
	return units.Watts(p)
}

// DynamicPower returns only the capacitive-switching portion of EQ 1.
func (e *Estimate) DynamicPower() units.Watts {
	var p float64
	for _, c := range e.Dynamic {
		swing := float64(c.Vswing)
		if swing == 0 {
			swing = float64(e.VDD)
		}
		p += float64(c.Csw) * swing * float64(e.VDD) * float64(c.Freq)
	}
	return units.Watts(p)
}

// StaticPower returns only the I·VDD portion of EQ 1.
func (e *Estimate) StaticPower() units.Watts {
	var p float64
	for _, s := range e.Static {
		p += float64(s.I) * float64(e.VDD)
	}
	return units.Watts(p)
}

// SwitchedCap returns the total effective switched capacitance,
// Σ Csw,ᵢ, ignoring swing and frequency differences.  This is the C_T
// the paper's computational-block models characterize.
func (e *Estimate) SwitchedCap() units.Farads {
	var c units.Farads
	for _, t := range e.Dynamic {
		c += t.Csw
	}
	return c
}

// EnergyPerOp returns the supply energy drawn per operation assuming all
// dynamic terms fire once per operation: Σ C·Vswing·VDD.  It is the
// "energy/access" column of the paper's spreadsheets.
func (e *Estimate) EnergyPerOp() units.Joules {
	var j float64
	for _, c := range e.Dynamic {
		swing := float64(c.Vswing)
		if swing == 0 {
			swing = float64(e.VDD)
		}
		j += float64(c.Csw) * swing * float64(e.VDD)
	}
	return units.Joules(j)
}

// AddCap appends a full-swing dynamic contribution.
func (e *Estimate) AddCap(label string, c units.Farads, f units.Hertz) {
	if e.Dynamic == nil {
		// Most models contribute a handful of terms; one right-sized
		// allocation beats append's doubling walk on the hot
		// evaluation path.
		e.Dynamic = make([]Contribution, 0, 4)
	}
	e.Dynamic = append(e.Dynamic, Contribution{Label: label, Csw: c, Freq: f})
}

// AddSwing appends a partial-swing dynamic contribution (EQ 8).
func (e *Estimate) AddSwing(label string, c units.Farads, swing units.Volts, f units.Hertz) {
	if e.Dynamic == nil {
		e.Dynamic = make([]Contribution, 0, 4)
	}
	e.Dynamic = append(e.Dynamic, Contribution{Label: label, Csw: c, Vswing: swing, Freq: f})
}

// AddStatic appends a static current term.
func (e *Estimate) AddStatic(label string, i units.Amps) {
	e.Static = append(e.Static, StaticTerm{Label: label, I: i})
}

// Note records a modeling caveat.
func (e *Estimate) Note(format string, args ...any) {
	e.Notes = append(e.Notes, fmt.Sprintf(format, args...))
}

// Class enumerates the component classes of the paper's Models section.
type Class string

// Component classes.
const (
	Computation  Class = "computation"
	Storage      Class = "storage"
	Controller   Class = "controller"
	Interconnect Class = "interconnect"
	Processor    Class = "processor"
	Analog       Class = "analog"
	Converter    Class = "converter"
	Commodity    Class = "commodity" // data-sheet components (LCDs, radios)
	Macro        Class = "macro"     // a lumped sub-design
)

// Info describes a model for menus, input forms and documentation pages.
type Info struct {
	// Name is the unique library name ("ucb.mult.array").
	Name string
	// Title is the human-readable name ("Array multiplier").
	Title string
	// Class is the component class.
	Class Class
	// Doc is the integrated documentation shown from hyperlinks.
	Doc string
	// Params is the parameter schema, in display order.
	Params []Param
}

// Model is a parameterized power/area/delay model: the element every
// PowerPlay library entry implements.
type Model interface {
	// Info returns the model's descriptor.
	Info() Info
	// Evaluate computes the estimate at a parameter point.  The point
	// has already been validated and defaulted against Info().Params.
	Evaluate(p Params) (*Estimate, error)
}

// Volatile is an optional interface a Model may implement to declare
// that Evaluate can answer differently for identical parameters over
// time — a remote proxy whose publishing site may change or recover,
// for example.  Machinery that reuses past evaluations across calls
// (the incremental Play engine, hoisted sweep baselines) must re-run
// rows whose model reports Volatile() true; everything else may assume
// a model is a pure function of its parameters for as long as the
// registry generation holds still.
type Volatile interface {
	// Volatile reports whether identical parameter points may evaluate
	// to different estimates over time.
	Volatile() bool
}

// IsVolatile reports whether m declares itself volatile.
func IsVolatile(m Model) bool {
	v, ok := m.(Volatile)
	return ok && v.Volatile()
}

// Params is a parameter valuation.
type Params map[string]float64

// Get returns the named parameter or its fallback.
func (p Params) Get(name string, fallback float64) float64 {
	if v, ok := p[name]; ok {
		return v
	}
	return fallback
}

// VDD returns the supply voltage parameter (default 0 — models should
// validate with a schema default instead of relying on this).
func (p Params) VDD() units.Volts { return units.Volts(p[ParamVDD]) }

// Freq returns the operating frequency parameter.
func (p Params) Freq() units.Hertz { return units.Hertz(p[ParamFreq]) }

// Clone returns an independent copy.
func (p Params) Clone() Params {
	q := make(Params, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

// String renders the valuation deterministically for logs and tests.
func (p Params) String() string {
	names := make([]string, 0, len(p))
	for k := range p {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%g", k, p[k])
	}
	return b.String()
}
