package explore

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestRunnerMatchesSerial pins the determinism guarantee: any worker
// count produces exactly the points a serial run does, in the same
// order.
func TestRunnerMatchesSerial(t *testing.T) {
	d := testDesign(t)
	values := Linspace(1.0, 3.3, 17)
	serial, err := (&Runner{Workers: 1}).Sweep(context.Background(), d, "vdd", values)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 100} {
		r := &Runner{Workers: workers}
		got, err := r.Sweep(context.Background(), d, "vdd", values)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i].Vars["vdd"] != serial[i].Vars["vdd"] ||
				!almost(got[i].Power, serial[i].Power) ||
				!almost(got[i].Delay, serial[i].Delay) ||
				!almost(got[i].Area, serial[i].Area) {
				t.Errorf("workers=%d point %d: %+v != %+v", workers, i, got[i], serial[i])
			}
		}
	}
}

// TestRunnerSweep2DMatchesSerial does the same for the 2-D cross
// product, whose row-major ordering the web table depends on.
func TestRunnerSweep2DMatchesSerial(t *testing.T) {
	d := testDesign(t)
	v1 := Linspace(1.0, 3.3, 5)
	v2 := Linspace(1e6, 4e6, 4)
	serial, err := (&Runner{Workers: 1}).Sweep2D(context.Background(), d, "vdd", v1, "f", v2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&Runner{Workers: 6}).Sweep2D(context.Background(), d, "vdd", v1, "f", v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 || len(serial) != 20 {
		t.Fatalf("len = %d / %d", len(got), len(serial))
	}
	for i := range got {
		if got[i].Vars["vdd"] != serial[i].Vars["vdd"] || got[i].Vars["f"] != serial[i].Vars["f"] ||
			!almost(got[i].Power, serial[i].Power) {
			t.Errorf("point %d: %+v != %+v", i, got[i], serial[i])
		}
	}
}

// TestConcurrentSweepsSharedDesign is the concurrency regression test:
// several parallel sweeps (and solvers) overlap on ONE design.  Run
// under -race (make race) this proves the snapshot/clone path keeps
// EvaluateAt race-free across overlapping explorations.
func TestConcurrentSweepsSharedDesign(t *testing.T) {
	d := testDesign(t)
	runner := &Runner{Workers: 4, Cache: NewCache(0)}
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pts, err := runner.Sweep(context.Background(), d, "vdd", Linspace(1.0, 3.3, 8))
			if err == nil && len(pts) != 8 {
				err = errors.New("short sweep")
			}
			errs <- err
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			pts, err := runner.Sweep2D(context.Background(), d, "vdd", Linspace(1.0, 3.3, 4), "f", Linspace(1e6, 4e6, 4))
			if err == nil && len(pts) != 16 {
				err = errors.New("short 2-D sweep")
			}
			errs <- err
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := runner.MinSupply(context.Background(), d, 20e6, 0.9, 3.3)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestRunnerCancellation checks both halves of the cancellation
// contract: a pre-canceled context evaluates nothing, and the error
// wraps ctx.Err() so callers can classify it.
func TestRunnerCancellation(t *testing.T) {
	d := testDesign(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		r := &Runner{Workers: workers}
		if _, err := r.Sweep(ctx, d, "vdd", Linspace(1.0, 3.3, 64)); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	// Deadline classification survives the wrapping too.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := (&Runner{Workers: 2}).Sweep2D(dctx, d, "vdd", Linspace(1, 3, 8), "f", Linspace(1e6, 4e6, 8)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := MinSupply(ctx, d, 20e6, 0.9, 3.3); !errors.Is(err, context.Canceled) {
		t.Errorf("MinSupply err = %v, want context.Canceled", err)
	}
	if _, err := VoltageScale(ctx, d, 20e6, 0.9, 3.3); !errors.Is(err, context.Canceled) {
		t.Errorf("VoltageScale err = %v, want context.Canceled", err)
	}
}

// TestRunnerErrorDeterminism: with many failing points, the reported
// error is the lowest-indexed one regardless of worker count.
func TestRunnerErrorDeterminism(t *testing.T) {
	d := testDesign(t)
	// Points 0..2 are fine, 3 onward are invalid (negative supply).
	values := []float64{1.5, 1.6, 1.7, -1, -2, -3, -4, -5}
	want, err1 := (&Runner{Workers: 1}).Sweep(context.Background(), d, "vdd", values)
	if err1 == nil || want != nil {
		t.Fatalf("serial: %v, %v", want, err1)
	}
	for _, workers := range []int{2, 4, 8} {
		_, err := (&Runner{Workers: workers}).Sweep(context.Background(), d, "vdd", values)
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if err.Error() != err1.Error() {
			t.Errorf("workers=%d: error %q, want %q", workers, err, err1)
		}
	}
}

// TestCache checks the memoization layer: hits on repeats, capacity
// bounded by LRU eviction, canonical keys.
func TestCache(t *testing.T) {
	d := testDesign(t)
	cache := NewCache(0)
	r := &Runner{Workers: 2, Cache: cache}
	values := Linspace(1.0, 3.3, 10)
	first, err := r.Sweep(context.Background(), d, "vdd", values)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != 10 {
		t.Errorf("cold sweep: hits=%d misses=%d", hits, misses)
	}
	second, err := r.Sweep(context.Background(), d, "vdd", values)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != 10 {
		t.Errorf("warm sweep should hit all 10 points, hits=%d", hits)
	}
	for i := range first {
		if !almost(first[i].Power, second[i].Power) || !almost(first[i].Delay, second[i].Delay) {
			t.Errorf("cached point %d drifted: %+v vs %+v", i, first[i], second[i])
		}
	}
	if cache.Len() != 10 {
		t.Errorf("Len = %d", cache.Len())
	}
	// Key is canonical: insertion order of the map must not matter.
	if Key(map[string]float64{"vdd": 1.5, "f": 2e6}) != Key(map[string]float64{"f": 2e6, "vdd": 1.5}) {
		t.Error("Key should be order-independent")
	}
	if got := Key(map[string]float64{"vdd": 1.5, "f": 2e6}); got != "f=2e+06;vdd=1.5" {
		t.Errorf("Key = %q", got)
	}
	// LRU eviction keeps the cache bounded.
	small := NewCache(4)
	rs := &Runner{Workers: 1, Cache: small}
	if _, err := rs.Sweep(context.Background(), d, "vdd", Linspace(1.0, 3.3, 9)); err != nil {
		t.Fatal(err)
	}
	if small.Len() != 4 {
		t.Errorf("bounded cache Len = %d, want 4", small.Len())
	}
}

// TestRunnerMinSupplyUsesCache: a repeated search over the same design
// re-uses the bisection probes.
func TestRunnerMinSupplyUsesCache(t *testing.T) {
	d := testDesign(t)
	cache := NewCache(0)
	r := &Runner{Cache: cache}
	v1, err := r.MinSupply(context.Background(), d, 20e6, 0.9, 3.3)
	if err != nil {
		t.Fatal(err)
	}
	_, missesCold := cache.Stats()
	v2, err := r.MinSupply(context.Background(), d, 20e6, 0.9, 3.3)
	if err != nil || v1 != v2 {
		t.Fatalf("repeat search: %v vs %v (%v)", v1, v2, err)
	}
	hits, misses := cache.Stats()
	if misses != missesCold {
		t.Errorf("repeat search evaluated new points: %d -> %d misses", missesCold, misses)
	}
	if hits == 0 {
		t.Error("repeat search should hit the cache")
	}
}
