package explore

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"powerplay/internal/core/sheet"
)

// The paper's accuracy target: "At this level of abstraction, accuracy
// should be within an octave of the actual value."  Uncertainty makes
// that claim quantitative: every library coefficient is an empirical
// characterization with error, so each leaf estimate is treated as a
// lognormally distributed value centred on the model output, and the
// design total's distribution follows by Monte Carlo.  Because a sheet
// sums many leaves, relative error at the top shrinks below the
// per-model error — the structural reason a pile of ±50 % models can
// still deliver an octave-accurate total.

// Distribution summarizes the sampled totals.
type Distribution struct {
	// Median is the 50th percentile of the total.
	Median float64
	// P05 and P95 bound the central 90 %.
	P05, P95 float64
	// Mean is the sample mean.
	Mean float64
	// OctaveProb is the fraction of samples within a factor of two of
	// the nominal (unperturbed) total.
	OctaveProb float64
	// Nominal is the unperturbed total the samples are compared to.
	Nominal float64
}

// Uncertainty perturbs every leaf estimate of an evaluated design with
// independent lognormal noise of the given relative sigma (e.g. 0.5
// for "each model is good to roughly ±50 %") and Monte-Carlo samples
// the total power distribution.
func Uncertainty(r *sheet.Result, relSigma float64, samples int, seed int64) (Distribution, error) {
	if relSigma < 0 {
		return Distribution{}, fmt.Errorf("explore: negative sigma %g", relSigma)
	}
	if samples < 10 {
		return Distribution{}, fmt.Errorf("explore: need at least 10 samples, got %d", samples)
	}
	var leaves []float64
	var walk func(*sheet.Result)
	walk = func(rr *sheet.Result) {
		if rr.Estimate != nil {
			leaves = append(leaves, float64(rr.Estimate.Power()))
		}
		for _, c := range rr.Children {
			walk(c)
		}
	}
	walk(r)
	if len(leaves) == 0 {
		return Distribution{}, fmt.Errorf("explore: design has no model rows")
	}
	nominal := 0.0
	for _, p := range leaves {
		nominal += p
	}
	// Lognormal with median 1: exp(sigma·N(0,1)), sigma chosen so that
	// one standard deviation of the factor is about 1±relSigma.
	sigma := math.Log(1 + relSigma)
	rng := rand.New(rand.NewSource(seed))
	totals := make([]float64, samples)
	within := 0
	for i := range totals {
		var sum float64
		for _, p := range leaves {
			sum += p * math.Exp(sigma*rng.NormFloat64())
		}
		totals[i] = sum
		if sum <= 2*nominal && sum >= nominal/2 {
			within++
		}
	}
	sort.Float64s(totals)
	var mean float64
	for _, v := range totals {
		mean += v
	}
	mean /= float64(samples)
	pct := func(p float64) float64 {
		idx := int(p * float64(samples-1))
		return totals[idx]
	}
	return Distribution{
		Median:     pct(0.50),
		P05:        pct(0.05),
		P95:        pct(0.95),
		Mean:       mean,
		OctaveProb: float64(within) / float64(samples),
		Nominal:    nominal,
	}, nil
}
