package explore

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"powerplay/internal/obs"
)

// sweepCacheEvents counts point-cache traffic across every Cache in
// the process: the sweep-side half of the serving cache story (the
// sheet read path has its own counters in internal/web).
var sweepCacheEvents = obs.NewCounterVec("powerplay_sweepcache_points_total",
	"Sweep point cache lookups and evictions, by event.", "event")

// Cache memoizes evaluated design points for one design, keyed by the
// override vector.  The web sweep page re-evaluates the whole range on
// every request; with a Cache attached to the Runner, a repeated or
// overlapping request re-uses every point already priced at the same
// operating coordinates instead of re-playing the sheet.
//
// A Cache is only valid for a single design snapshot: the key encodes
// the overrides, not the sheet's cell contents, so any edit to the
// design must be answered with a fresh Cache (the web server keys its
// caches by a hash of the serialized design and drops them on change).
//
// All methods are safe for concurrent use; one Cache may be shared by
// every worker of a Runner and across overlapping HTTP requests.
type Cache struct {
	mu      sync.Mutex
	limit   int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	hits    int64
	misses  int64
}

// cacheRecord is one stored point: the key plus the design totals.
// Vars are reconstructed by the caller, which already holds the
// override map.
type cacheRecord struct {
	key                string
	power, area, delay float64
}

// DefaultCacheSize bounds a NewCache(0) cache: generous enough for the
// web UI's 200-step sweep limit across many distinct ranges, small
// enough to be irrelevant next to a design's own footprint.
const DefaultCacheSize = 4096

// NewCache returns an empty cache holding at most limit points (LRU
// eviction).  A limit <= 0 selects DefaultCacheSize.
func NewCache(limit int) *Cache {
	if limit <= 0 {
		limit = DefaultCacheSize
	}
	return &Cache{
		limit:   limit,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Key canonicalizes an override vector into a cache key: names sorted,
// values spelled with full round-trip precision, so two maps with the
// same bindings always collide regardless of construction order.
func Key(overrides map[string]float64) string {
	names := make([]string, 0, len(overrides))
	for n := range overrides {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(overrides[n], 'g', -1, 64))
	}
	return b.String()
}

// lookup returns the stored totals for a key, marking it most recently
// used.
func (c *Cache) lookup(key string) (cacheRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		sweepCacheEvents.With("miss").Inc()
		return cacheRecord{}, false
	}
	c.hits++
	sweepCacheEvents.With("hit").Inc()
	c.order.MoveToFront(el)
	return el.Value.(cacheRecord), true
}

// store inserts a point, evicting the least recently used entry when
// the cache is full.
func (c *Cache) store(rec cacheRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[rec.key]; ok {
		el.Value = rec
		c.order.MoveToFront(el)
		return
	}
	c.entries[rec.key] = c.order.PushFront(rec)
	for c.order.Len() > c.limit {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(cacheRecord).key)
		sweepCacheEvents.With("evict").Inc()
	}
}

// Len returns the number of cached points.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports the lifetime hit and miss counts: the observability
// hook the web layer (and tests) use to confirm memoization is working.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
