package explore

import (
	"math"
	"testing"

	"powerplay/internal/core/sheet"
)

// manyLeafDesign builds a sheet with n identical rows.
func manyLeafDesign(t *testing.T, n int) *sheet.Result {
	t.Helper()
	d := testDesign(t)
	for i := 1; i < n; i++ {
		d.Root.MustAddChild(nameFor(i), "cell")
	}
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func nameFor(i int) string {
	return "x" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestUncertaintyBasics(t *testing.T) {
	r := manyLeafDesign(t, 8)
	dist, err := Uncertainty(r, 0.5, 4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The nominal equals the design total.
	if !almost(dist.Nominal, float64(r.Power)) {
		t.Errorf("nominal = %v, total = %v", dist.Nominal, r.Power)
	}
	// The median sits near the nominal (lognormal has median 1).
	if math.Abs(dist.Median-dist.Nominal)/dist.Nominal > 0.10 {
		t.Errorf("median %v strays from nominal %v", dist.Median, dist.Nominal)
	}
	// Percentiles are ordered.
	if !(dist.P05 < dist.Median && dist.Median < dist.P95) {
		t.Errorf("percentiles out of order: %+v", dist)
	}
	// With ±50% per-model error over 8 averaging leaves, octave
	// accuracy is near-certain — the paper's claim.
	if dist.OctaveProb < 0.99 {
		t.Errorf("octave probability = %v", dist.OctaveProb)
	}
}

func TestUncertaintyAveragingEffect(t *testing.T) {
	// More leaves tighten the total: P95/P05 shrinks with row count.
	one := manyLeafDesign(t, 1)
	many := manyLeafDesign(t, 32)
	d1, err := Uncertainty(one, 0.6, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	d32, err := Uncertainty(many, 0.6, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	spread1 := d1.P95 / d1.P05
	spread32 := d32.P95 / d32.P05
	if spread32 >= spread1 {
		t.Errorf("averaging should tighten the total: 1 leaf %.2fx, 32 leaves %.2fx", spread1, spread32)
	}
}

func TestUncertaintyZeroSigma(t *testing.T) {
	r := manyLeafDesign(t, 4)
	dist, err := Uncertainty(r, 0, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(dist.P05, dist.P95) || !almost(dist.Median, dist.Nominal) {
		t.Errorf("zero sigma should collapse the distribution: %+v", dist)
	}
	if dist.OctaveProb != 1 {
		t.Error("zero sigma is always within the octave")
	}
}

func TestUncertaintyErrors(t *testing.T) {
	r := manyLeafDesign(t, 2)
	if _, err := Uncertainty(r, -1, 100, 1); err == nil {
		t.Error("negative sigma should fail")
	}
	if _, err := Uncertainty(r, 0.5, 5, 1); err == nil {
		t.Error("too few samples should fail")
	}
	// A design with no model rows.
	d := sheet.NewDesign("empty", nil)
	empty := &sheet.Result{Node: d.Root}
	if _, err := Uncertainty(empty, 0.5, 100, 1); err == nil {
		t.Error("no leaves should fail")
	}
}

func TestUncertaintyDeterministicSeed(t *testing.T) {
	r := manyLeafDesign(t, 4)
	a, _ := Uncertainty(r, 0.5, 500, 42)
	b, _ := Uncertainty(r, 0.5, 500, 42)
	if a != b {
		t.Error("same seed should reproduce the distribution")
	}
	c, _ := Uncertainty(r, 0.5, 500, 43)
	if a == c {
		t.Error("different seeds should differ")
	}
}
