// Package explore implements the design-space exploration loops that
// PowerPlay's spreadsheet exists to serve: parameter sweeps, power/
// delay trade-off (Pareto) extraction, and operating-point solvers.
//
// The paper's enabler #3 is "a spread-sheet-like work sheet … which
// allows the study of the impact of parameter variations (such as
// supply voltage and clock frequency)".  The sheet's EvaluateAt gives
// single points; this package drives it across ranges and digests the
// results into the decisions an early-phase designer actually makes:
// which architecture wins where, how low the supply can go for a given
// throughput, and what the energy cost of headroom is.
package explore

import (
	"fmt"
	"math"
	"sort"

	"powerplay/internal/core/sheet"
)

// Point is one evaluated design point.
type Point struct {
	// Vars holds the overridden variables at this point.
	Vars map[string]float64
	// Power, Area and Delay are the design totals.
	Power, Area, Delay float64
}

// EDP returns the energy-delay product proxy P·D² (power × delay² is
// the voltage-independent figure of merit for CMOS).
func (p Point) EDP() float64 { return p.Power * p.Delay * p.Delay }

// Linspace returns n evenly spaced values across [lo, hi].
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Geomspace returns n logarithmically spaced values across [lo, hi];
// both bounds must be positive.
func Geomspace(lo, hi float64, n int) []float64 {
	if n <= 0 || lo <= 0 || hi <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	return out
}

// Sweep evaluates the design across values of one variable.
func Sweep(d *sheet.Design, name string, values []float64) ([]Point, error) {
	out := make([]Point, 0, len(values))
	for _, v := range values {
		r, err := d.EvaluateAt(map[string]float64{name: v})
		if err != nil {
			return nil, fmt.Errorf("explore: %s=%g: %w", name, v, err)
		}
		out = append(out, Point{
			Vars:  map[string]float64{name: v},
			Power: float64(r.Power), Area: float64(r.Area), Delay: float64(r.Delay),
		})
	}
	return out, nil
}

// Sweep2D evaluates the cross product of two variables, row-major in
// the first variable.
func Sweep2D(d *sheet.Design, n1 string, v1 []float64, n2 string, v2 []float64) ([]Point, error) {
	out := make([]Point, 0, len(v1)*len(v2))
	for _, a := range v1 {
		for _, b := range v2 {
			r, err := d.EvaluateAt(map[string]float64{n1: a, n2: b})
			if err != nil {
				return nil, fmt.Errorf("explore: %s=%g %s=%g: %w", n1, a, n2, b, err)
			}
			out = append(out, Point{
				Vars:  map[string]float64{n1: a, n2: b},
				Power: float64(r.Power), Area: float64(r.Area), Delay: float64(r.Delay),
			})
		}
	}
	return out, nil
}

// Pareto returns the power/delay non-dominated subset of points,
// sorted by increasing power.  A point is dominated when another point
// is no worse in both power and delay and strictly better in one.
func Pareto(points []Point) []Point {
	var out []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Power <= p.Power && q.Delay <= p.Delay &&
				(q.Power < p.Power || q.Delay < p.Delay) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Power != out[j].Power {
			return out[i].Power < out[j].Power
		}
		return out[i].Delay < out[j].Delay
	})
	return out
}

// MinSupply finds, by bisection, the lowest supply voltage in
// [lo, hi] at which the design's critical path still meets the cycle
// time 1/fTarget.  It relies on delay decreasing monotonically with
// supply (the alpha-power law all library delays follow).  It returns
// an error if even hi misses the target or the design fails to
// evaluate.
func MinSupply(d *sheet.Design, fTarget, lo, hi float64) (float64, error) {
	if !(lo > 0 && hi > lo) {
		return 0, fmt.Errorf("explore: bad supply range [%g, %g]", lo, hi)
	}
	if fTarget <= 0 {
		return 0, fmt.Errorf("explore: bad frequency target %g", fTarget)
	}
	target := 1 / fTarget
	meets := func(vdd float64) (bool, error) {
		r, err := d.EvaluateAt(map[string]float64{"vdd": vdd})
		if err != nil {
			return false, err
		}
		return float64(r.Delay) <= target, nil
	}
	ok, err := meets(hi)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("explore: target %g Hz unreachable even at %g V", fTarget, hi)
	}
	if ok, err := meets(lo); err != nil {
		return 0, err
	} else if ok {
		return lo, nil
	}
	for i := 0; i < 60 && hi-lo > 1e-4; i++ {
		mid := (lo + hi) / 2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// SupplySavings reports the power saved by running a design at the
// minimum supply that still meets fTarget, versus a nominal supply.
type SupplySavings struct {
	// NominalVDD and MinVDD are the compared operating points.
	NominalVDD, MinVDD float64
	// NominalPower and MinPower are the design totals at each.
	NominalPower, MinPower float64
}

// Saving returns the fractional reduction.
func (s SupplySavings) Saving() float64 {
	if s.NominalPower == 0 {
		return 0
	}
	return 1 - s.MinPower/s.NominalPower
}

// VoltageScale computes the classic voltage-scaling exploration: find
// the minimum supply meeting fTarget within [lo, nominal] and compare
// power against running at the nominal supply.
func VoltageScale(d *sheet.Design, fTarget, lo, nominal float64) (SupplySavings, error) {
	min, err := MinSupply(d, fTarget, lo, nominal)
	if err != nil {
		return SupplySavings{}, err
	}
	rNom, err := d.EvaluateAt(map[string]float64{"vdd": nominal})
	if err != nil {
		return SupplySavings{}, err
	}
	rMin, err := d.EvaluateAt(map[string]float64{"vdd": min})
	if err != nil {
		return SupplySavings{}, err
	}
	return SupplySavings{
		NominalVDD: nominal, MinVDD: min,
		NominalPower: float64(rNom.Power), MinPower: float64(rMin.Power),
	}, nil
}
