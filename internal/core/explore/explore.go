// Package explore implements the design-space exploration loops that
// PowerPlay's spreadsheet exists to serve: parameter sweeps, power/
// delay trade-off (Pareto) extraction, and operating-point solvers.
//
// The paper's enabler #3 is "a spread-sheet-like work sheet … which
// allows the study of the impact of parameter variations (such as
// supply voltage and clock frequency)".  The sheet's EvaluateAt gives
// single points; this package drives it across ranges and digests the
// results into the decisions an early-phase designer actually makes:
// which architecture wins where, how low the supply can go for a given
// throughput, and what the energy cost of headroom is.
//
// # Concurrency
//
// Exploration is embarrassingly parallel across points, and the engine
// exploits that: the Runner type fans points out over a worker pool
// (default GOMAXPROCS), each worker evaluating its own
// sheet.Design.Clone snapshot, with results reassembled in input order
// and an optional Cache memoizing repeated operating points.  The
// package-level Sweep, Sweep2D, MinSupply and VoltageScale are thin
// wrappers over a zero-value Runner; all of them take a
// context.Context and stop at the next point boundary once it is
// canceled.  The full contract — snapshot semantics, cancellation,
// determinism, and cache validity — is documented on Runner, Cache and
// in DESIGN.md's "Concurrent exploration" section.
package explore

import (
	"context"
	"math"
	"sort"

	"powerplay/internal/core/sheet"
)

// Point is one evaluated design point.
type Point struct {
	// Vars holds the overridden variables at this point.
	Vars map[string]float64
	// Power, Area and Delay are the design totals.
	Power, Area, Delay float64
}

// EDP returns the energy-delay product proxy P·D² (power × delay² is
// the voltage-independent figure of merit for CMOS).
func (p Point) EDP() float64 { return p.Power * p.Delay * p.Delay }

// Linspace returns n evenly spaced values across [lo, hi].
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Geomspace returns n logarithmically spaced values across [lo, hi];
// both bounds must be positive.
func Geomspace(lo, hi float64, n int) []float64 {
	if n <= 0 || lo <= 0 || hi <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	return out
}

// Sweep evaluates the design across values of one variable using a
// zero-value Runner (GOMAXPROCS workers, no cache); results are in
// input order.  Construct a Runner directly to control worker count or
// attach a Cache.
func Sweep(ctx context.Context, d *sheet.Design, name string, values []float64) ([]Point, error) {
	return (&Runner{}).Sweep(ctx, d, name, values)
}

// Sweep2D evaluates the cross product of two variables, row-major in
// the first variable, using a zero-value Runner.  Construct a Runner
// directly to control worker count or attach a Cache.
func Sweep2D(ctx context.Context, d *sheet.Design, n1 string, v1 []float64, n2 string, v2 []float64) ([]Point, error) {
	return (&Runner{}).Sweep2D(ctx, d, n1, v1, n2, v2)
}

// Pareto returns the power/delay non-dominated subset of points,
// sorted by increasing power.  A point is dominated when another point
// is no worse in both power and delay and strictly better in one.
func Pareto(points []Point) []Point {
	var out []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Power <= p.Power && q.Delay <= p.Delay &&
				(q.Power < p.Power || q.Delay < p.Delay) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Power != out[j].Power {
			return out[i].Power < out[j].Power
		}
		return out[i].Delay < out[j].Delay
	})
	return out
}

// MinSupply finds, by bisection, the lowest supply voltage in
// [lo, hi] at which the design's critical path still meets the cycle
// time 1/fTarget, using a zero-value Runner.  See Runner.MinSupply for
// the search and cancellation semantics.
func MinSupply(ctx context.Context, d *sheet.Design, fTarget, lo, hi float64) (float64, error) {
	return (&Runner{}).MinSupply(ctx, d, fTarget, lo, hi)
}

// SupplySavings reports the power saved by running a design at the
// minimum supply that still meets fTarget, versus a nominal supply.
type SupplySavings struct {
	// NominalVDD and MinVDD are the compared operating points.
	NominalVDD, MinVDD float64
	// NominalPower and MinPower are the design totals at each.
	NominalPower, MinPower float64
}

// Saving returns the fractional reduction.
func (s SupplySavings) Saving() float64 {
	if s.NominalPower == 0 {
		return 0
	}
	return 1 - s.MinPower/s.NominalPower
}

// VoltageScale computes the classic voltage-scaling exploration —
// find the minimum supply meeting fTarget within [lo, nominal] and
// compare power against running at the nominal supply — using a
// zero-value Runner.  See Runner.VoltageScale.
func VoltageScale(ctx context.Context, d *sheet.Design, fTarget, lo, nominal float64) (SupplySavings, error) {
	return (&Runner{}).VoltageScale(ctx, d, fTarget, lo, nominal)
}
