package explore

import (
	"context"
	"math"
	"testing"

	"powerplay/internal/core/model"
	"powerplay/internal/core/sheet"
	"powerplay/internal/units"
)

// sameBits demands two point slices be bit-identical — the chunked
// engine's contract against the scalar path, stronger than almost().
func sameBits(t *testing.T, label string, got, want []Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i].Power) != math.Float64bits(want[i].Power) ||
			math.Float64bits(got[i].Area) != math.Float64bits(want[i].Area) ||
			math.Float64bits(got[i].Delay) != math.Float64bits(want[i].Delay) {
			t.Errorf("%s point %d: %+v != %+v", label, i, got[i], want[i])
		}
	}
}

// TestChunkedSweepBitIdenticalToScalar is the engine-level equivalence
// oracle: the columnar path must reproduce the scalar path bit for bit
// across worker counts and chunk sizes, including the +Inf delay
// positions below the delay-scale threshold supply.
func TestChunkedSweepBitIdenticalToScalar(t *testing.T) {
	d := testDesign(t)
	values := Linspace(0.5, 3.3, 257)
	scalar, err := (&Runner{Workers: 1, ChunkSize: 1}).Sweep(context.Background(), d, "vdd", values)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Runner{
		{Workers: 1},                 // default chunking, serial
		{Workers: 4},                 // default chunking, parallel
		{Workers: 1, ChunkSize: 7},   // chunk not dividing the sweep
		{Workers: 4, ChunkSize: 64},  // several chunks per worker
		{Workers: 4, ChunkSize: 512}, // chunk larger than the sweep
	} {
		cfg := cfg
		got, err := cfg.Sweep(context.Background(), d, "vdd", values)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		sameBits(t, "vdd sweep", got, scalar)
	}

	v1, v2 := Linspace(1.0, 3.3, 9), Linspace(1e6, 8e6, 7)
	scalar2, err := (&Runner{Workers: 1, ChunkSize: 1}).Sweep2D(context.Background(), d, "vdd", v1, "f", v2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := (&Runner{Workers: 3, ChunkSize: 16}).Sweep2D(context.Background(), d, "vdd", v1, "f", v2)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "2-D sweep", got2, scalar2)
}

// exprErrDesign binds a row clock to a global that divides by zero at
// exactly vdd = 2, so a sweep crossing that point fails with a specific
// expression error at a specific index.
func exprErrDesign(t *testing.T) *sheet.Design {
	t.Helper()
	d := testDesign(t)
	if err := d.Root.SetGlobal("badf", "1e6/(vdd-2)"); err != nil {
		t.Fatal(err)
	}
	x := d.Root.Find("x")
	if x == nil {
		t.Fatal("no row x")
	}
	if err := x.SetParam("f", "badf"); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestChunkedSweepErrorTextMatchesScalar pins the error contract: a
// failing chunk is re-run point by point, so the chunked engine reports
// exactly the scalar engine's error — same text, same (lowest-indexed)
// point — for both schema violations and expression errors.
func TestChunkedSweepErrorTextMatchesScalar(t *testing.T) {
	cases := []struct {
		name   string
		design *sheet.Design
		values []float64
	}{
		// Negative supplies violate the std schema from index 3 on.
		{"schema", testDesign(t), []float64{1.5, 1.6, 1.7, -1, -2, -3, -4, -5}},
		// vdd = 2.0 at index 2 divides by zero inside a global.
		{"expression", exprErrDesign(t), []float64{1.5, 1.75, 2.0, 2.25, 2.0, 2.75}},
	}
	for _, c := range cases {
		pts, want := (&Runner{Workers: 1, ChunkSize: 1}).Sweep(context.Background(), c.design, "vdd", c.values)
		if want == nil || pts != nil {
			t.Fatalf("%s: scalar sweep did not fail: %v", c.name, pts)
		}
		for _, cfg := range []Runner{
			{Workers: 1},
			{Workers: 4},
			{Workers: 4, ChunkSize: 2},
			{Workers: 2, ChunkSize: 3},
		} {
			cfg := cfg
			_, err := cfg.Sweep(context.Background(), c.design, "vdd", c.values)
			if err == nil {
				t.Fatalf("%s %+v: no error", c.name, cfg)
			}
			if err.Error() != want.Error() {
				t.Errorf("%s %+v:\n  chunked: %v\n  scalar:  %v", c.name, cfg, err, want)
			}
		}
	}
}

// cycleDesign builds a sheet whose plan is rejected by the conservative
// static cycle check (the global's false self-reference) even though
// the lazy interpreter evaluates it fine: hoisting and therefore the
// columnar engine are unavailable, and every point takes the full
// EvaluateAt fallback.
func cycleDesign(t *testing.T) *sheet.Design {
	t.Helper()
	d := testDesign(t)
	if err := d.Root.SetGlobal("g", "vdd < 100 ? 3e6 : g"); err != nil {
		t.Fatal(err)
	}
	x := d.Root.Find("x")
	if err := x.SetParam("f", "g"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PlanFor([]string{"vdd"}); err == nil {
		t.Fatal("fixture broken: plan compiled, fallback path not exercised")
	}
	return d
}

// TestSweepCacheAccountingOncePerPoint is the accounting regression
// test: a cached (or duplicated) point re-requested within one sweep
// must cost exactly one lookup — one hit or one miss — never a second
// lookup from the evaluation path.  Covers both the columnar chunk path
// and the scalar fallback (hoisting unavailable).
func TestSweepCacheAccountingOncePerPoint(t *testing.T) {
	for _, c := range []struct {
		name   string
		design *sheet.Design
	}{
		{"columnar", testDesign(t)},
		{"scalar-fallback", cycleDesign(t)},
	} {
		cache := NewCache(0)
		r := &Runner{Workers: 1, ChunkSize: 2, Cache: cache}
		// The same operating point twice within one chunk: two misses,
		// no phantom hit from the second evaluation-and-store.
		pts, err := r.Sweep(context.Background(), c.design, "vdd", []float64{2.5, 2.5})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Float64bits(pts[0].Power) != math.Float64bits(pts[1].Power) {
			t.Errorf("%s: duplicate points disagree: %v vs %v", c.name, pts[0].Power, pts[1].Power)
		}
		if hits, misses := cache.Stats(); hits != 0 || misses != 2 {
			t.Errorf("%s cold: hits=%d misses=%d, want 0/2", c.name, hits, misses)
		}
		// Warm repeat: every request is one hit, nothing re-evaluated.
		if _, err := r.Sweep(context.Background(), c.design, "vdd", []float64{2.5, 2.5}); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if hits, misses := cache.Stats(); hits != 2 || misses != 2 {
			t.Errorf("%s warm: hits=%d misses=%d, want 2/2", c.name, hits, misses)
		}
	}
}

// TestChunkedSweepFallbackMatchesScalar: with hoisting unavailable the
// chunked engine still returns exactly what the scalar engine does.
func TestChunkedSweepFallbackMatchesScalar(t *testing.T) {
	d := cycleDesign(t)
	values := Linspace(1.0, 3.3, 11)
	want, err := (&Runner{Workers: 1, ChunkSize: 1}).Sweep(context.Background(), d, "vdd", values)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&Runner{Workers: 4}).Sweep(context.Background(), d, "vdd", values)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "fallback sweep", got, want)
}

// TestChunkSizeResolution pins the effective-chunk policy: small sweeps
// shrink the chunk so the whole worker pool stays busy.
func TestChunkSizeResolution(t *testing.T) {
	cases := []struct {
		workers, chunk, n, want int
	}{
		{1, 0, 10000, DefaultChunkSize},
		{1, 16, 100, 16},
		{1, -3, 100, DefaultChunkSize},
		{4, 256, 64, 16},  // shrunk: 4 workers × 16 points
		{4, 8, 64, 8},     // explicit size below the shrink point wins
		{8, 0, 4, 1},      // more workers than points
		{2, 1, 1000, 1},   // batching disabled
		{3, 256, 100, 34}, // ceil(100/3)
	}
	for _, c := range cases {
		r := &Runner{Workers: c.workers, ChunkSize: c.chunk}
		if got := r.chunkSize(c.n); got != c.want {
			t.Errorf("workers=%d chunk=%d n=%d: chunkSize = %d, want %d",
				c.workers, c.chunk, c.n, got, c.want)
		}
	}
}

// TestChunkedSweepWithRemoteishModel: a design mixing a kernelizable
// library model with a custom Func (no sweep form) still sweeps
// bit-identically — the batch executor prices the Func rows per point
// inside the chunk.
func TestChunkedMixedModelSweep(t *testing.T) {
	reg := model.NewRegistry()
	reg.MustRegister(&model.Func{
		Meta: model.Info{
			Name: "odd", Title: "t", Class: model.Computation, Doc: "d",
			Params: model.WithStd(),
		},
		Fn: func(p model.Params) (*model.Estimate, error) {
			e := &model.Estimate{VDD: p.VDD()}
			e.AddCap("c", units.Farads(33e-15*math.Sqrt(float64(p.VDD()))), p.Freq())
			e.Delay = units.Seconds(5e-9 * model.DelayScale(float64(p.VDD())))
			return e, nil
		},
	})
	d := sheet.NewDesign("mixed", reg)
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 2e6, "2MHz")
	d.Root.MustAddChild("a", "odd")
	d.Root.MustAddChild("b", "odd")
	values := Linspace(0.8, 3.3, 33)
	want, err := (&Runner{Workers: 1, ChunkSize: 1}).Sweep(context.Background(), d, "vdd", values)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&Runner{Workers: 2, ChunkSize: 8}).Sweep(context.Background(), d, "vdd", values)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "mixed sweep", got, want)
}
