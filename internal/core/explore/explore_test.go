package explore

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"powerplay/internal/core/model"
	"powerplay/internal/core/sheet"
	"powerplay/internal/units"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// testDesign builds a one-row design whose cell has quadratic power and
// alpha-power-law delay in vdd — the canonical CMOS trade-off.
func testDesign(t *testing.T) *sheet.Design {
	t.Helper()
	reg := model.NewRegistry()
	reg.MustRegister(&model.Func{
		Meta: model.Info{
			Name: "cell", Title: "t", Class: model.Computation, Doc: "d",
			Params: model.WithStd(),
		},
		Fn: func(p model.Params) (*model.Estimate, error) {
			e := &model.Estimate{VDD: p.VDD()}
			e.AddCap("c", 100*units.PicoFarad, p.Freq())
			e.Delay = units.Seconds(20e-9 * model.DelayScale(float64(p.VDD())))
			e.Area = 1e-8
			return e, nil
		},
	})
	d := sheet.NewDesign("t", reg)
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1MHz")
	d.Root.MustAddChild("x", "cell")
	return d
}

func TestLinspace(t *testing.T) {
	got := Linspace(1, 3, 5)
	want := []float64{1, 1.5, 2, 2.5, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Errorf("Linspace[%d] = %v", i, got[i])
		}
	}
	if Linspace(1, 3, 0) != nil {
		t.Error("n=0 should be nil")
	}
	if got := Linspace(2, 9, 1); len(got) != 1 || got[0] != 2 {
		t.Errorf("n=1: %v", got)
	}
}

func TestGeomspace(t *testing.T) {
	got := Geomspace(1, 16, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Errorf("Geomspace[%d] = %v", i, got[i])
		}
	}
	if Geomspace(-1, 16, 5) != nil || Geomspace(1, 16, 0) != nil {
		t.Error("bad inputs should be nil")
	}
}

func TestSweepQuadraticPower(t *testing.T) {
	d := testDesign(t)
	pts, err := Sweep(context.Background(), d, "vdd", []float64{1.5, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("pts = %v", pts)
	}
	if !almost(pts[1].Power, 4*pts[0].Power) {
		t.Errorf("power should be quadratic in vdd: %v", pts)
	}
	if !(pts[1].Delay < pts[0].Delay) {
		t.Error("delay should fall with supply")
	}
	if pts[0].Vars["vdd"] != 1.5 {
		t.Error("Vars should carry the overrides")
	}
	// Errors propagate with the point identified.
	if _, err := Sweep(context.Background(), d, "vdd", []float64{-1}); err == nil {
		t.Error("invalid supply should fail")
	}
}

func TestSweep2D(t *testing.T) {
	d := testDesign(t)
	pts, err := Sweep2D(context.Background(), d, "vdd", []float64{1.5, 3}, "f", []float64{1e6, 2e6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("len = %d", len(pts))
	}
	// Row-major: pts[1] is vdd=1.5, f=2e6 — double the power of pts[0].
	if !almost(pts[1].Power, 2*pts[0].Power) {
		t.Errorf("frequency axis: %v vs %v", pts[1].Power, pts[0].Power)
	}
}

func TestPareto(t *testing.T) {
	pts := []Point{
		{Power: 1, Delay: 10},
		{Power: 2, Delay: 5},
		{Power: 3, Delay: 6}, // dominated by (2,5)
		{Power: 4, Delay: 1},
		{Power: 5, Delay: 1},  // dominated by (4,1)
		{Power: 1, Delay: 12}, // dominated by (1,10)
	}
	front := Pareto(pts)
	if len(front) != 3 {
		t.Fatalf("front = %v", front)
	}
	if front[0].Power != 1 || front[1].Power != 2 || front[2].Power != 4 {
		t.Errorf("front order = %v", front)
	}
}

// Property: the voltage sweep of a CMOS design is entirely
// non-dominated (lower V ⇒ less power but more delay), so Pareto keeps
// every point.
func TestQuickSweepIsFrontier(t *testing.T) {
	d := testDesign(t)
	f := func(raw uint8) bool {
		n := int(raw%6) + 2
		pts, err := Sweep(context.Background(), d, "vdd", Linspace(1.0, 3.3, n))
		if err != nil {
			return false
		}
		return len(Pareto(pts)) == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMinSupply(t *testing.T) {
	d := testDesign(t)
	// At 1.5 V the cell runs at 20 ns (50 MHz).  Ask for something
	// slower: the minimum supply must drop below 1.5 V.
	v, err := MinSupply(context.Background(), d, 20e6, 0.9, 3.3)
	if err != nil {
		t.Fatal(err)
	}
	if v >= 1.5 || v <= 0.9 {
		t.Errorf("MinSupply = %v, want in (0.9, 1.5)", v)
	}
	// The returned voltage meets the target; a hair lower misses it.
	r, _ := d.EvaluateAt(map[string]float64{"vdd": v})
	if float64(r.Delay) > 1/20e6+1e-12 {
		t.Errorf("returned supply misses target: %v", r.Delay)
	}
	r2, _ := d.EvaluateAt(map[string]float64{"vdd": v - 0.01})
	if float64(r2.Delay) <= 1/20e6 {
		t.Error("MinSupply not tight")
	}
	// Unreachable target.
	if _, err := MinSupply(context.Background(), d, 10e9, 0.9, 3.3); err == nil {
		t.Error("10GHz should be unreachable")
	}
	// lo already meets the target.
	v, err = MinSupply(context.Background(), d, 1e3, 0.9, 3.3)
	if err != nil || v != 0.9 {
		t.Errorf("easy target: %v, %v", v, err)
	}
	// Bad arguments.
	if _, err := MinSupply(context.Background(), d, 1e6, 3, 1); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := MinSupply(context.Background(), d, 0, 1, 3); err == nil {
		t.Error("zero target should fail")
	}
}

func TestVoltageScale(t *testing.T) {
	d := testDesign(t)
	s, err := VoltageScale(context.Background(), d, 20e6, 0.9, 3.3)
	if err != nil {
		t.Fatal(err)
	}
	if s.MinVDD >= s.NominalVDD {
		t.Errorf("scaling found nothing: %+v", s)
	}
	if s.Saving() <= 0.5 {
		t.Errorf("quadratic savings expected, got %.0f%%", 100*s.Saving())
	}
	// Power ratio ≈ (Vmin/Vnom)².
	want := (s.MinVDD / s.NominalVDD) * (s.MinVDD / s.NominalVDD)
	if got := s.MinPower / s.NominalPower; math.Abs(got-want) > 1e-3 {
		t.Errorf("ratio = %v, want %v", got, want)
	}
	if (SupplySavings{}).Saving() != 0 {
		t.Error("zero value should be safe")
	}
}

func TestEDP(t *testing.T) {
	p := Point{Power: 2, Delay: 3}
	if p.EDP() != 18 {
		t.Errorf("EDP = %v", p.EDP())
	}
}
