package explore

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"powerplay/internal/core/sheet"
)

// Runner is the parallel exploration engine: it fans design points out
// across a pool of worker goroutines, each evaluating against its own
// snapshot of the design, and reassembles the results in input order.
//
// The zero value is ready to use and is what the package-level Sweep,
// Sweep2D, MinSupply and VoltageScale delegate to.
//
// # Concurrency contract
//
// Each worker evaluates a private sheet.Design.Clone of the design, so
// a running sweep never races with the caller — the caller may even
// mutate the original design while a sweep is in flight and the sweep
// still sees a consistent snapshot taken when its worker started.  One
// Runner may serve any number of concurrent calls; it holds no mutable
// state of its own beyond the optional Cache, which is internally
// locked.
//
// Cancellation: every method takes a context.Context and stops promptly
// — no later than the next point boundary — when the context is
// canceled or its deadline passes, returning an error that wraps
// ctx.Err() (so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work).  Points already
// evaluated are discarded; partial sweeps are never returned.
//
// Determinism: results are ordered by input position regardless of
// worker count or scheduling, and a failing sweep always reports the
// error of the lowest-indexed failing point, so serial and parallel
// runs are observably identical apart from wall-clock time.
type Runner struct {
	// Workers caps the number of concurrent evaluation goroutines.
	// Zero or negative selects runtime.GOMAXPROCS(0).  A sweep never
	// uses more workers than it has points; Workers == 1 evaluates
	// serially on the caller's design without cloning.
	Workers int

	// Cache, when non-nil, memoizes evaluated points by override
	// vector (see Cache for the validity rules).  All workers share
	// it, so a 2-D sweep that revisits a column and a repeated web
	// request both hit memoized points.
	Cache *Cache
}

// workers resolves the effective pool size for n points.
func (r *Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Sweep evaluates the design across values of one variable, in order.
// See the Runner type documentation for the concurrency, cancellation
// and determinism guarantees.
func (r *Runner) Sweep(ctx context.Context, d *sheet.Design, name string, values []float64) ([]Point, error) {
	overrides := make([]map[string]float64, len(values))
	for i, v := range values {
		overrides[i] = map[string]float64{name: v}
	}
	return r.run(ctx, d, overrides)
}

// Sweep2D evaluates the cross product of two variables, row-major in
// the first variable (the same ordering the serial implementation
// produced).  See the Runner type documentation for the concurrency,
// cancellation and determinism guarantees.
func (r *Runner) Sweep2D(ctx context.Context, d *sheet.Design, n1 string, v1 []float64, n2 string, v2 []float64) ([]Point, error) {
	overrides := make([]map[string]float64, 0, len(v1)*len(v2))
	for _, a := range v1 {
		for _, b := range v2 {
			overrides = append(overrides, map[string]float64{n1: a, n2: b})
		}
	}
	return r.run(ctx, d, overrides)
}

// MinSupply finds, by bisection, the lowest supply voltage in [lo, hi]
// at which the design's critical path still meets the cycle time
// 1/fTarget.  It relies on delay decreasing monotonically with supply
// (the alpha-power law all library delays follow).  It returns an
// error if even hi misses the target, if the design fails to evaluate,
// or if ctx is canceled mid-search.
//
// Bisection is inherently sequential, so MinSupply never parallelizes;
// it still honors ctx at every probe and shares the Runner's Cache, so
// repeated searches (the web analysis page, ArchScale's per-lane
// loops) hit memoized operating points.
func (r *Runner) MinSupply(ctx context.Context, d *sheet.Design, fTarget, lo, hi float64) (float64, error) {
	if !(lo > 0 && hi > lo) {
		return 0, fmt.Errorf("explore: bad supply range [%g, %g]", lo, hi)
	}
	if fTarget <= 0 {
		return 0, fmt.Errorf("explore: bad frequency target %g", fTarget)
	}
	target := 1 / fTarget
	meets := func(vdd float64) (bool, error) {
		p, err := r.point(ctx, d, map[string]float64{"vdd": vdd})
		if err != nil {
			return false, err
		}
		return p.Delay <= target, nil
	}
	ok, err := meets(hi)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("explore: target %g Hz unreachable even at %g V", fTarget, hi)
	}
	if ok, err := meets(lo); err != nil {
		return 0, err
	} else if ok {
		return lo, nil
	}
	for i := 0; i < 60 && hi-lo > 1e-4; i++ {
		mid := (lo + hi) / 2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// VoltageScale computes the classic voltage-scaling exploration: find
// the minimum supply meeting fTarget within [lo, nominal] and compare
// power against running at the nominal supply.  It honors ctx at every
// evaluation and shares the Runner's Cache.
func (r *Runner) VoltageScale(ctx context.Context, d *sheet.Design, fTarget, lo, nominal float64) (SupplySavings, error) {
	min, err := r.MinSupply(ctx, d, fTarget, lo, nominal)
	if err != nil {
		return SupplySavings{}, err
	}
	pNom, err := r.point(ctx, d, map[string]float64{"vdd": nominal})
	if err != nil {
		return SupplySavings{}, err
	}
	pMin, err := r.point(ctx, d, map[string]float64{"vdd": min})
	if err != nil {
		return SupplySavings{}, err
	}
	return SupplySavings{
		NominalVDD: nominal, MinVDD: min,
		NominalPower: pNom.Power, MinPower: pMin.Power,
	}, nil
}

// run evaluates one point per override map against d, preserving input
// order in the returned slice.
func (r *Runner) run(ctx context.Context, d *sheet.Design, overrides []map[string]float64) ([]Point, error) {
	out := make([]Point, len(overrides))
	if w := r.workers(len(overrides)); w > 1 {
		if err := r.runParallel(ctx, d, overrides, out, w); err != nil {
			return nil, err
		}
		return out, nil
	}
	// Serial fast path: evaluate on the caller's design, no clone.
	for i, ov := range overrides {
		p, err := r.point(ctx, d, ov)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// runParallel fans the points out over w workers, each evaluating its
// own clone of d.  Result slots are pre-assigned by index, so no two
// goroutines ever write the same element and the output order matches
// the input regardless of scheduling.
func (r *Runner) runParallel(parent context.Context, d *sheet.Design, overrides []map[string]float64, out []Point, w int) error {
	// The internal context stops the index feed once any point fails;
	// workers evaluate the point they already hold under the PARENT
	// context.  That distinction is what makes error reporting
	// deterministic: indices are handed out in order, so when point k
	// fails, every lower index is already held by some worker and gets
	// fully evaluated — the lowest-indexed failure is always observed,
	// exactly as a serial run would report it.
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range overrides {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = -1
	)
	var wg sync.WaitGroup
	for n := 0; n < w; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One snapshot per worker: cloning is O(rows), evaluation
			// is O(rows × points/worker), so the clone amortizes away
			// while guaranteeing race freedom against the caller.
			snap := d.Clone()
			for i := range idx {
				p, err := r.point(parent, snap, overrides[i])
				if err != nil {
					mu.Lock()
					// Keep the lowest-indexed failure so parallel runs
					// report the same error a serial run would.
					if errIdx == -1 || i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
					cancel()
					return
				}
				out[i] = p
			}
		}()
	}
	wg.Wait()

	// A cancellation raced with a point failure: the parent's error
	// wins only when no point actually failed.
	if err := parent.Err(); err != nil && firstErr == nil {
		return fmt.Errorf("explore: sweep interrupted: %w", err)
	}
	return firstErr
}

// point evaluates (or recalls from cache) a single override vector.
// It checks ctx before doing any work, so a canceled sweep stops at
// the next point boundary.
func (r *Runner) point(ctx context.Context, d *sheet.Design, overrides map[string]float64) (Point, error) {
	if err := ctx.Err(); err != nil {
		return Point{}, fmt.Errorf("explore: sweep interrupted: %w", err)
	}
	var key string
	if r.Cache != nil {
		key = Key(overrides)
		if rec, ok := r.Cache.lookup(key); ok {
			return Point{Vars: overrides, Power: rec.power, Area: rec.area, Delay: rec.delay}, nil
		}
	}
	res, err := d.EvaluateAt(overrides)
	if err != nil {
		return Point{}, fmt.Errorf("explore: %s: %w", overridesLabel(overrides), err)
	}
	p := Point{
		Vars:  overrides,
		Power: float64(res.Power), Area: float64(res.Area), Delay: float64(res.Delay),
	}
	if r.Cache != nil {
		r.Cache.store(cacheRecord{key: key, power: p.Power, area: p.Area, delay: p.Delay})
	}
	return p, nil
}

// overridesLabel renders an override vector for error messages
// ("vdd=1.5 f=2e+06"), names sorted for determinism.
func overridesLabel(overrides map[string]float64) string {
	names := make([]string, 0, len(overrides))
	for n := range overrides {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%g", n, overrides[n])
	}
	return strings.Join(parts, " ")
}
