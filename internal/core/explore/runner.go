package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"powerplay/internal/core/sheet"
	"powerplay/internal/obs"
)

// Engine instrumentation: points priced, chunks processed, worker time
// burned, sweeps torn down early.  A handful of counter adds per chunk
// — noise next to a sheet evaluation.
var (
	explorePoints = obs.NewCounter("powerplay_explore_points_total",
		"Design points evaluated (or recalled from cache) by the exploration engine.")
	exploreBusySeconds = obs.NewCounter("powerplay_explore_worker_busy_seconds_total",
		"Cumulative time exploration workers spent evaluating points.")
	exploreCancellations = obs.NewCounter("powerplay_explore_cancellations_total",
		"Explorations abandoned because their context was canceled or timed out.")
	// exploreChunks tells the columnar story per chunk: "columnar"
	// chunks ran the batch executor end to end, "scalar" chunks fell
	// back to per-point evaluation (non-batchable sheet, failed batch,
	// batching disabled), "cached" chunks were answered entirely from
	// the point cache.
	exploreChunks = obs.NewCounterVec("powerplay_explore_chunks_total",
		"Sweep chunks processed by the exploration engine, by result.", "result")
	// exploreBatchPoints splits the same traffic per point: how many
	// points each path actually resolved.  columnar/scalar/cache adds
	// sum to powerplay_explore_points_total for chunked sweeps.
	exploreBatchPoints = obs.NewCounterVec("powerplay_explore_batch_points_total",
		"Sweep points resolved by the chunked exploration engine, by path.", "path")
	explorePointsPerSec = obs.NewGauge("powerplay_explore_points_per_second",
		"Throughput of the most recently completed sweep, in points per wall-clock second.")
	exploreChunkSize = obs.NewGauge("powerplay_explore_chunk_size",
		"Effective chunk size of the most recently started sweep.")
)

// DefaultChunkSize is the sweep chunk size a zero Runner.ChunkSize
// selects.  256 points is large enough to amortize the columnar
// executor's per-chunk dispatch to nothing and small enough that a
// chunk's column working set stays cache-resident.
const DefaultChunkSize = 256

// noteInterrupted records (and logs, with the request ID the context
// carries) an exploration that died of cancellation or deadline rather
// than a bad point.
func noteInterrupted(ctx context.Context, err error, points int) {
	if err == nil || (!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)) {
		return
	}
	exploreCancellations.Inc()
	obs.Log(ctx).Debug("explore: sweep interrupted", "points", points, "err", err)
}

// Runner is the parallel exploration engine: it fans design points out
// across a pool of worker goroutines in fixed-size chunks, each worker
// evaluating against its own snapshot of the design — columnar when
// the sheet allows, per point otherwise — and reassembles the results
// in input order.
//
// The zero value is ready to use and is what the package-level Sweep,
// Sweep2D, MinSupply and VoltageScale delegate to.
//
// # Concurrency contract
//
// Each worker evaluates a private sheet.Design.Clone of the design, so
// a running sweep never races with the caller — the caller may even
// mutate the original design while a sweep is in flight and the sweep
// still sees a consistent snapshot taken when its worker started.  One
// Runner may serve any number of concurrent calls; it holds no mutable
// state of its own beyond the optional Cache, which is internally
// locked.
//
// Cancellation: every method takes a context.Context and stops promptly
// — no later than the next chunk boundary (the next point boundary when
// evaluating per point) — when the context is canceled or its deadline
// passes, returning an error that wraps ctx.Err() (so
// errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work).  Points already
// evaluated are discarded; partial sweeps are never returned.
//
// Determinism: results are ordered by input position regardless of
// worker count, scheduling or chunking, and a failing sweep always
// reports the error of the lowest-indexed failing point with the same
// text the serial scalar path produces.  The columnar fast path never
// reports its own errors — a chunk whose batch evaluation fails is
// re-evaluated point by point, which rediscovers the canonical failure
// in order — so serial, parallel, batched and unbatched runs are
// observably identical apart from wall-clock time.
type Runner struct {
	// Workers caps the number of concurrent evaluation goroutines.
	// Zero or negative selects runtime.GOMAXPROCS(0).  A sweep never
	// uses more workers than it has chunks; Workers == 1 evaluates
	// serially on the caller's design without cloning.
	Workers int

	// ChunkSize sets how many consecutive points a worker claims at a
	// time — the unit of columnar evaluation and of cancellation.
	// Zero or negative selects DefaultChunkSize; 1 disables columnar
	// evaluation entirely (every point runs the scalar path).  Sweeps
	// small relative to the worker pool use a smaller effective chunk
	// so every worker stays busy.
	ChunkSize int

	// Cache, when non-nil, memoizes evaluated points by override
	// vector (see Cache for the validity rules).  All workers share
	// it, so a 2-D sweep that revisits a column and a repeated web
	// request both hit memoized points.  Each requested point costs
	// exactly one lookup per sweep — a hit fills the point from the
	// record, a miss evaluates and stores it without a second lookup —
	// so Stats counts requests, not internal traffic.
	Cache *Cache
}

// workers resolves the effective pool size for n work items.
func (r *Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chunkSize resolves the effective chunk length for an n-point sweep:
// the configured size, shrunk so a sweep with fewer points than
// workers×chunk still spreads across the whole pool.
func (r *Runner) chunkSize(n int) int {
	c := r.ChunkSize
	if c <= 0 {
		c = DefaultChunkSize
	}
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > 1 {
		if per := (n + w - 1) / w; c > per {
			c = per
		}
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Sweep evaluates the design across values of one variable, in order.
// See the Runner type documentation for the concurrency, cancellation
// and determinism guarantees.
func (r *Runner) Sweep(ctx context.Context, d *sheet.Design, name string, values []float64) ([]Point, error) {
	overrides := make([]map[string]float64, len(values))
	for i, v := range values {
		overrides[i] = map[string]float64{name: v}
	}
	return r.run(ctx, d, overrides)
}

// Sweep2D evaluates the cross product of two variables, row-major in
// the first variable (the same ordering the serial implementation
// produced).  See the Runner type documentation for the concurrency,
// cancellation and determinism guarantees.
func (r *Runner) Sweep2D(ctx context.Context, d *sheet.Design, n1 string, v1 []float64, n2 string, v2 []float64) ([]Point, error) {
	overrides := make([]map[string]float64, 0, len(v1)*len(v2))
	for _, a := range v1 {
		for _, b := range v2 {
			overrides = append(overrides, map[string]float64{n1: a, n2: b})
		}
	}
	return r.run(ctx, d, overrides)
}

// MinSupply finds, by bisection, the lowest supply voltage in [lo, hi]
// at which the design's critical path still meets the cycle time
// 1/fTarget.  It relies on delay decreasing monotonically with supply
// (the alpha-power law all library delays follow).  It returns an
// error if even hi misses the target, if the design fails to evaluate,
// or if ctx is canceled mid-search.
//
// Bisection is inherently sequential, so MinSupply never parallelizes
// or batches; it still honors ctx at every probe and shares the
// Runner's Cache, so repeated searches (the web analysis page,
// ArchScale's per-lane loops) hit memoized operating points.
func (r *Runner) MinSupply(ctx context.Context, d *sheet.Design, fTarget, lo, hi float64) (float64, error) {
	if !(lo > 0 && hi > lo) {
		return 0, fmt.Errorf("explore: bad supply range [%g, %g]", lo, hi)
	}
	if fTarget <= 0 {
		return 0, fmt.Errorf("explore: bad frequency target %g", fTarget)
	}
	target := 1 / fTarget
	// Bisection probes share one override-name set, so the invariant
	// part of the design is hoisted once for the whole search.
	ev := newEval(hoist(d, []map[string]float64{{"vdd": lo}}))
	meets := func(vdd float64) (bool, error) {
		p, err := r.point(ctx, d, ev, map[string]float64{"vdd": vdd})
		if err != nil {
			return false, err
		}
		return p.Delay <= target, nil
	}
	ok, err := meets(hi)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("explore: target %g Hz unreachable even at %g V", fTarget, hi)
	}
	if ok, err := meets(lo); err != nil {
		return 0, err
	} else if ok {
		return lo, nil
	}
	for i := 0; i < 60 && hi-lo > 1e-4; i++ {
		mid := (lo + hi) / 2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// VoltageScale computes the classic voltage-scaling exploration: find
// the minimum supply meeting fTarget within [lo, nominal] and compare
// power against running at the nominal supply.  It honors ctx at every
// evaluation and shares the Runner's Cache.
func (r *Runner) VoltageScale(ctx context.Context, d *sheet.Design, fTarget, lo, nominal float64) (SupplySavings, error) {
	min, err := r.MinSupply(ctx, d, fTarget, lo, nominal)
	if err != nil {
		return SupplySavings{}, err
	}
	ev := newEval(hoist(d, []map[string]float64{{"vdd": nominal}}))
	pNom, err := r.point(ctx, d, ev, map[string]float64{"vdd": nominal})
	if err != nil {
		return SupplySavings{}, err
	}
	pMin, err := r.point(ctx, d, ev, map[string]float64{"vdd": min})
	if err != nil {
		return SupplySavings{}, err
	}
	return SupplySavings{
		NominalVDD: nominal, MinVDD: min,
		NominalPower: pNom.Power, MinPower: pMin.Power,
	}, nil
}

// run evaluates one point per override map against d, preserving input
// order in the returned slice.
//
// Before any point is evaluated, run hoists the sweep-invariant part of
// the computation: it compiles the design's evaluation plan for the
// override-name set (all points of a sweep share one), executes every
// step that cannot depend on the swept variables once, and snapshots
// the result.  The points are then processed in chunks: each chunk's
// cache misses are evaluated columnar against the baseline (one
// sheet.BatchEval pass over the whole chunk), falling back to the
// per-point replay — and, when hoisting is unavailable, to the full
// EvaluateAt path, which reproduces the canonical error messages.
func (r *Runner) run(ctx context.Context, d *sheet.Design, overrides []map[string]float64) ([]Point, error) {
	n := len(overrides)
	out := make([]Point, n)
	if n == 0 {
		return out, nil
	}
	sw := hoist(d, overrides)
	chunk := r.chunkSize(n)
	nchunks := (n + chunk - 1) / chunk
	exploreChunkSize.Set(float64(chunk))
	start := time.Now()
	var err error
	if w := r.workers(nchunks); w > 1 {
		err = r.runParallel(ctx, d, overrides, out, w, sw, chunk)
	} else {
		err = r.runSerial(ctx, d, overrides, out, sw, chunk)
	}
	if err != nil {
		noteInterrupted(ctx, err, n)
		return nil, err
	}
	if el := time.Since(start).Seconds(); el > 0 {
		explorePointsPerSec.Set(float64(n) / el)
	}
	return out, nil
}

// hoist builds the sweep-invariant baseline for a uniform override
// list.  It returns nil — meaning "no fast path, evaluate every point
// in full" — when there are no points, when the points do not share one
// override-name set, when the plan does not compile (e.g. a static
// cycle), or when an invariant step fails; in every such case the
// per-point fallback reproduces exactly what the design's own
// EvaluateAt would report.
func hoist(d *sheet.Design, overrides []map[string]float64) *sheet.Sweeper {
	if len(overrides) == 0 {
		return nil
	}
	names := make([]string, 0, len(overrides[0]))
	for n := range overrides[0] {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, ov := range overrides[1:] {
		if len(ov) != len(names) {
			return nil
		}
		for _, n := range names {
			if _, ok := ov[n]; !ok {
				return nil
			}
		}
	}
	plan, err := d.PlanFor(names)
	if err != nil {
		return nil
	}
	// Sweeps over an unchanged design share one hoisted baseline
	// (memoized on the plan, keyed to the registry generation), so
	// repeated sweeps warm-start from the invariant cone instead of
	// re-executing it per run.
	sw, err := plan.SharedSweeper()
	if err != nil {
		return nil
	}
	return sw
}

// newEval is the nil-safe per-goroutine evaluation context constructor:
// a nil Sweeper (hoisting unavailable) yields a nil SweepEval, which
// the point evaluators treat as "no fast path".
func newEval(sw *sheet.Sweeper) *sheet.SweepEval {
	if sw == nil {
		return nil
	}
	return sw.NewEval()
}

// newBatchEval is the nil-safe columnar counterpart: no baseline or a
// chunk too small to batch yields nil, which runChunk treats as
// "scalar only".
func newBatchEval(sw *sheet.Sweeper, chunk int) *sheet.BatchEval {
	if sw == nil || chunk < 2 {
		return nil
	}
	return sw.NewBatchEval(chunk)
}

// runSerial processes the chunks in order on the caller's goroutine,
// evaluating on the caller's design with no clone.
func (r *Runner) runSerial(ctx context.Context, d *sheet.Design, overrides []map[string]float64, out []Point, sw *sheet.Sweeper, chunk int) error {
	ev := newEval(sw)
	bev := newBatchEval(sw, chunk)
	start := time.Now()
	defer func() { exploreBusySeconds.Add(time.Since(start).Seconds()) }()
	for lo := 0; lo < len(overrides); lo += chunk {
		hi := min(lo+chunk, len(overrides))
		if _, err := r.runChunk(ctx, d, ev, bev, overrides, out, lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// runParallel fans the chunks out over w workers, each evaluating its
// own clone of d.  Result slots are pre-assigned by index, so no two
// goroutines ever write the same element and the output order matches
// the input regardless of scheduling.
func (r *Runner) runParallel(parent context.Context, d *sheet.Design, overrides []map[string]float64, out []Point, w int, sw *sheet.Sweeper, chunk int) error {
	// The internal context stops the chunk feed once any point fails;
	// workers evaluate the chunk they already hold under the PARENT
	// context.  That distinction is what makes error reporting
	// deterministic: chunk indices are handed out in order, so when a
	// point in chunk c fails, every lower chunk is already held by some
	// worker and gets fully evaluated — and within a chunk the scalar
	// fallback walks the points in order — so the lowest-indexed
	// failure is always observed, exactly as a serial run would report
	// it.
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	n := len(overrides)
	nchunks := (n + chunk - 1) / chunk
	idx := make(chan int)
	go func() {
		defer close(idx)
		for c := 0; c < nchunks; c++ {
			select {
			case idx <- c:
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = -1
	)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			defer func() { exploreBusySeconds.Add(time.Since(start).Seconds()) }()
			// One snapshot per worker: cloning is O(rows), evaluation
			// is O(rows × points/worker), so the clone amortizes away
			// while guaranteeing race freedom against the caller.  The
			// hoisted Sweeper is shared — it is immutable — but each
			// worker gets its own SweepEval and BatchEval (private
			// slot vectors and columns over the shared baseline); the
			// clone serves the fallback path.
			snap := d.Clone()
			ev := newEval(sw)
			bev := newBatchEval(sw, chunk)
			for c := range idx {
				lo := c * chunk
				hi := min(lo+chunk, n)
				at, err := r.runChunk(parent, snap, ev, bev, overrides, out, lo, hi)
				if err != nil {
					mu.Lock()
					// Keep the lowest-indexed failure so parallel runs
					// report the same error a serial run would.
					if errIdx == -1 || at < errIdx {
						firstErr, errIdx = err, at
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()

	// A cancellation raced with a point failure: the parent's error
	// wins only when no point actually failed.
	if err := parent.Err(); err != nil && firstErr == nil {
		return fmt.Errorf("explore: sweep interrupted: %w", err)
	}
	return firstErr
}

// runChunk prices points [lo, hi) of the sweep.  The chunk makes one
// pass over the cache (exactly one lookup per requested point — a
// cached point re-requested within a sweep counts one hit, never two),
// evaluates the misses columnar in a single BatchEval pass, and on any
// batch error — whose text and position are not canonical, see the
// BatchEval contract — re-evaluates the misses in order through the
// scalar path, which reproduces the error of the lowest-indexed
// failing point verbatim.  On failure the returned int is that point's
// global index.
func (r *Runner) runChunk(ctx context.Context, d *sheet.Design, ev *sheet.SweepEval, bev *sheet.BatchEval, overrides []map[string]float64, out []Point, lo, hi int) (int, error) {
	if err := ctx.Err(); err != nil {
		return lo, fmt.Errorf("explore: sweep interrupted: %w", err)
	}
	n := hi - lo
	pending := make([]int, 0, n) // chunk-relative indexes still to price
	var keys []string
	if r.Cache != nil {
		keys = make([]string, n)
		for rel := 0; rel < n; rel++ {
			ov := overrides[lo+rel]
			keys[rel] = Key(ov)
			if rec, ok := r.Cache.lookup(keys[rel]); ok {
				out[lo+rel] = Point{Vars: ov, Power: rec.power, Area: rec.area, Delay: rec.delay}
				explorePoints.Inc()
				exploreBatchPoints.With("cache").Inc()
				continue
			}
			pending = append(pending, rel)
		}
	} else {
		for rel := 0; rel < n; rel++ {
			pending = append(pending, rel)
		}
	}
	if len(pending) == 0 {
		exploreChunks.With("cached").Inc()
		return 0, nil
	}
	if bev != nil && r.chunkColumnar(ctx, bev, overrides, out, lo, pending, keys) {
		return 0, nil
	}
	exploreChunks.With("scalar").Inc()
	for _, rel := range pending {
		var key string
		if keys != nil {
			key = keys[rel]
		}
		p, err := r.evalPoint(ctx, d, ev, overrides[lo+rel], key)
		if err != nil {
			return lo + rel, err
		}
		out[lo+rel] = p
		exploreBatchPoints.With("scalar").Inc()
	}
	return 0, nil
}

// chunkColumnar attempts one columnar evaluation of a chunk's pending
// points, back-filling results (and the cache) on success.  It reports
// false — claiming nothing, counting nothing — when the batch fails
// (including by cancellation); the caller's scalar pass then owns the
// chunk and reproduces the canonical error.
func (r *Runner) chunkColumnar(ctx context.Context, bev *sheet.BatchEval, overrides []map[string]float64, out []Point, lo int, pending []int, keys []string) bool {
	m := len(pending)
	pts := make([]map[string]float64, m)
	for i, rel := range pending {
		pts[i] = overrides[lo+rel]
	}
	pw := make([]float64, m)
	area := make([]float64, m)
	delay := make([]float64, m)
	if err := bev.Run(ctx, pts, pw, area, delay); err != nil {
		return false
	}
	for i, rel := range pending {
		p := Point{Vars: pts[i], Power: pw[i], Area: area[i], Delay: delay[i]}
		if r.Cache != nil {
			r.Cache.store(cacheRecord{key: keys[rel], power: p.Power, area: p.Area, delay: p.Delay})
		}
		out[lo+rel] = p
		explorePoints.Inc()
	}
	exploreChunks.With("columnar").Inc()
	exploreBatchPoints.With("columnar").Add(float64(m))
	return true
}

// evalPoint prices one point through the scalar path and, when the
// Runner has a cache, stores it under key — already canonicalized by
// the caller's cache pass.  evalPoint itself never looks the point up:
// the lookup happened when the point entered its chunk (or in point),
// so hit/miss accounting counts each requested point exactly once.
//
// When ev is non-nil it is tried first: the hoisted fast path replays
// only the override-dependent cone of the compiled plan and yields
// totals identical to a full evaluation.  Any fast-path error falls
// through to EvaluateAt, which reproduces the canonical message.
func (r *Runner) evalPoint(ctx context.Context, d *sheet.Design, ev *sheet.SweepEval, overrides map[string]float64, key string) (Point, error) {
	if err := ctx.Err(); err != nil {
		return Point{}, fmt.Errorf("explore: sweep interrupted: %w", err)
	}
	p, ok := Point{}, false
	if ev != nil {
		if power, area, delay, err := ev.At(overrides); err == nil {
			p, ok = Point{Vars: overrides, Power: power, Area: area, Delay: delay}, true
		}
	}
	if !ok {
		res, err := d.EvaluateAt(overrides)
		if err != nil {
			return Point{}, fmt.Errorf("explore: %s: %w", overridesLabel(overrides), err)
		}
		p = Point{
			Vars:  overrides,
			Power: float64(res.Power), Area: float64(res.Area), Delay: float64(res.Delay),
		}
	}
	if r.Cache != nil {
		r.Cache.store(cacheRecord{key: key, power: p.Power, area: p.Area, delay: p.Delay})
	}
	explorePoints.Inc()
	return p, nil
}

// point evaluates (or recalls from cache) a single override vector —
// the sequential entry point MinSupply and VoltageScale probe through.
// It checks ctx before doing any work, so a canceled search stops at
// the next probe.
func (r *Runner) point(ctx context.Context, d *sheet.Design, ev *sheet.SweepEval, overrides map[string]float64) (Point, error) {
	if err := ctx.Err(); err != nil {
		return Point{}, fmt.Errorf("explore: sweep interrupted: %w", err)
	}
	var key string
	if r.Cache != nil {
		key = Key(overrides)
		if rec, ok := r.Cache.lookup(key); ok {
			explorePoints.Inc()
			return Point{Vars: overrides, Power: rec.power, Area: rec.area, Delay: rec.delay}, nil
		}
	}
	return r.evalPoint(ctx, d, ev, overrides, key)
}

// overridesLabel renders an override vector for error messages
// ("vdd=1.5 f=2e+06"), names sorted for determinism.
func overridesLabel(overrides map[string]float64) string {
	names := make([]string, 0, len(overrides))
	for n := range overrides {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%g", n, overrides[n])
	}
	return strings.Join(parts, " ")
}
