package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"powerplay/internal/core/sheet"
	"powerplay/internal/obs"
)

// Engine instrumentation: points priced, worker time burned, sweeps
// torn down early.  One counter add per point (and one per worker) —
// noise next to a sheet evaluation.
var (
	explorePoints = obs.NewCounter("powerplay_explore_points_total",
		"Design points evaluated (or recalled from cache) by the exploration engine.")
	exploreBusySeconds = obs.NewCounter("powerplay_explore_worker_busy_seconds_total",
		"Cumulative time exploration workers spent evaluating points.")
	exploreCancellations = obs.NewCounter("powerplay_explore_cancellations_total",
		"Explorations abandoned because their context was canceled or timed out.")
)

// noteInterrupted records (and logs, with the request ID the context
// carries) an exploration that died of cancellation or deadline rather
// than a bad point.
func noteInterrupted(ctx context.Context, err error, points int) {
	if err == nil || (!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)) {
		return
	}
	exploreCancellations.Inc()
	obs.Log(ctx).Debug("explore: sweep interrupted", "points", points, "err", err)
}

// Runner is the parallel exploration engine: it fans design points out
// across a pool of worker goroutines, each evaluating against its own
// snapshot of the design, and reassembles the results in input order.
//
// The zero value is ready to use and is what the package-level Sweep,
// Sweep2D, MinSupply and VoltageScale delegate to.
//
// # Concurrency contract
//
// Each worker evaluates a private sheet.Design.Clone of the design, so
// a running sweep never races with the caller — the caller may even
// mutate the original design while a sweep is in flight and the sweep
// still sees a consistent snapshot taken when its worker started.  One
// Runner may serve any number of concurrent calls; it holds no mutable
// state of its own beyond the optional Cache, which is internally
// locked.
//
// Cancellation: every method takes a context.Context and stops promptly
// — no later than the next point boundary — when the context is
// canceled or its deadline passes, returning an error that wraps
// ctx.Err() (so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work).  Points already
// evaluated are discarded; partial sweeps are never returned.
//
// Determinism: results are ordered by input position regardless of
// worker count or scheduling, and a failing sweep always reports the
// error of the lowest-indexed failing point, so serial and parallel
// runs are observably identical apart from wall-clock time.
type Runner struct {
	// Workers caps the number of concurrent evaluation goroutines.
	// Zero or negative selects runtime.GOMAXPROCS(0).  A sweep never
	// uses more workers than it has points; Workers == 1 evaluates
	// serially on the caller's design without cloning.
	Workers int

	// Cache, when non-nil, memoizes evaluated points by override
	// vector (see Cache for the validity rules).  All workers share
	// it, so a 2-D sweep that revisits a column and a repeated web
	// request both hit memoized points.
	Cache *Cache
}

// workers resolves the effective pool size for n points.
func (r *Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Sweep evaluates the design across values of one variable, in order.
// See the Runner type documentation for the concurrency, cancellation
// and determinism guarantees.
func (r *Runner) Sweep(ctx context.Context, d *sheet.Design, name string, values []float64) ([]Point, error) {
	overrides := make([]map[string]float64, len(values))
	for i, v := range values {
		overrides[i] = map[string]float64{name: v}
	}
	return r.run(ctx, d, overrides)
}

// Sweep2D evaluates the cross product of two variables, row-major in
// the first variable (the same ordering the serial implementation
// produced).  See the Runner type documentation for the concurrency,
// cancellation and determinism guarantees.
func (r *Runner) Sweep2D(ctx context.Context, d *sheet.Design, n1 string, v1 []float64, n2 string, v2 []float64) ([]Point, error) {
	overrides := make([]map[string]float64, 0, len(v1)*len(v2))
	for _, a := range v1 {
		for _, b := range v2 {
			overrides = append(overrides, map[string]float64{n1: a, n2: b})
		}
	}
	return r.run(ctx, d, overrides)
}

// MinSupply finds, by bisection, the lowest supply voltage in [lo, hi]
// at which the design's critical path still meets the cycle time
// 1/fTarget.  It relies on delay decreasing monotonically with supply
// (the alpha-power law all library delays follow).  It returns an
// error if even hi misses the target, if the design fails to evaluate,
// or if ctx is canceled mid-search.
//
// Bisection is inherently sequential, so MinSupply never parallelizes;
// it still honors ctx at every probe and shares the Runner's Cache, so
// repeated searches (the web analysis page, ArchScale's per-lane
// loops) hit memoized operating points.
func (r *Runner) MinSupply(ctx context.Context, d *sheet.Design, fTarget, lo, hi float64) (float64, error) {
	if !(lo > 0 && hi > lo) {
		return 0, fmt.Errorf("explore: bad supply range [%g, %g]", lo, hi)
	}
	if fTarget <= 0 {
		return 0, fmt.Errorf("explore: bad frequency target %g", fTarget)
	}
	target := 1 / fTarget
	// Bisection probes share one override-name set, so the invariant
	// part of the design is hoisted once for the whole search.
	ev := newEval(hoist(d, []map[string]float64{{"vdd": lo}}))
	meets := func(vdd float64) (bool, error) {
		p, err := r.point(ctx, d, ev, map[string]float64{"vdd": vdd})
		if err != nil {
			return false, err
		}
		return p.Delay <= target, nil
	}
	ok, err := meets(hi)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("explore: target %g Hz unreachable even at %g V", fTarget, hi)
	}
	if ok, err := meets(lo); err != nil {
		return 0, err
	} else if ok {
		return lo, nil
	}
	for i := 0; i < 60 && hi-lo > 1e-4; i++ {
		mid := (lo + hi) / 2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// VoltageScale computes the classic voltage-scaling exploration: find
// the minimum supply meeting fTarget within [lo, nominal] and compare
// power against running at the nominal supply.  It honors ctx at every
// evaluation and shares the Runner's Cache.
func (r *Runner) VoltageScale(ctx context.Context, d *sheet.Design, fTarget, lo, nominal float64) (SupplySavings, error) {
	min, err := r.MinSupply(ctx, d, fTarget, lo, nominal)
	if err != nil {
		return SupplySavings{}, err
	}
	ev := newEval(hoist(d, []map[string]float64{{"vdd": nominal}}))
	pNom, err := r.point(ctx, d, ev, map[string]float64{"vdd": nominal})
	if err != nil {
		return SupplySavings{}, err
	}
	pMin, err := r.point(ctx, d, ev, map[string]float64{"vdd": min})
	if err != nil {
		return SupplySavings{}, err
	}
	return SupplySavings{
		NominalVDD: nominal, MinVDD: min,
		NominalPower: pNom.Power, MinPower: pMin.Power,
	}, nil
}

// run evaluates one point per override map against d, preserving input
// order in the returned slice.
//
// Before any point is evaluated, run hoists the sweep-invariant part of
// the computation: it compiles the design's evaluation plan for the
// override-name set (all points of a sweep share one), executes every
// step that cannot depend on the swept variables once, and snapshots
// the result.  Each point then replays only the override-dependent cone
// over a copy of that baseline.  When hoisting is unavailable — the
// plan does not compile, or the invariant steps themselves fail — every
// point falls back to the full EvaluateAt path, which reproduces the
// canonical error messages.
func (r *Runner) run(ctx context.Context, d *sheet.Design, overrides []map[string]float64) ([]Point, error) {
	out := make([]Point, len(overrides))
	sw := hoist(d, overrides)
	if w := r.workers(len(overrides)); w > 1 {
		if err := r.runParallel(ctx, d, overrides, out, w, sw); err != nil {
			noteInterrupted(ctx, err, len(overrides))
			return nil, err
		}
		return out, nil
	}
	// Serial fast path: evaluate on the caller's design, no clone.
	ev := newEval(sw)
	start := time.Now()
	defer func() { exploreBusySeconds.Add(time.Since(start).Seconds()) }()
	for i, ov := range overrides {
		p, err := r.point(ctx, d, ev, ov)
		if err != nil {
			noteInterrupted(ctx, err, len(overrides))
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// hoist builds the sweep-invariant baseline for a uniform override
// list.  It returns nil — meaning "no fast path, evaluate every point
// in full" — when there are no points, when the points do not share one
// override-name set, when the plan does not compile (e.g. a static
// cycle), or when an invariant step fails; in every such case the
// per-point fallback reproduces exactly what the design's own
// EvaluateAt would report.
func hoist(d *sheet.Design, overrides []map[string]float64) *sheet.Sweeper {
	if len(overrides) == 0 {
		return nil
	}
	names := make([]string, 0, len(overrides[0]))
	for n := range overrides[0] {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, ov := range overrides[1:] {
		if len(ov) != len(names) {
			return nil
		}
		for _, n := range names {
			if _, ok := ov[n]; !ok {
				return nil
			}
		}
	}
	plan, err := d.PlanFor(names)
	if err != nil {
		return nil
	}
	sw, err := plan.NewSweeper()
	if err != nil {
		return nil
	}
	return sw
}

// newEval is the nil-safe per-goroutine evaluation context constructor:
// a nil Sweeper (hoisting unavailable) yields a nil SweepEval, which
// point treats as "no fast path".
func newEval(sw *sheet.Sweeper) *sheet.SweepEval {
	if sw == nil {
		return nil
	}
	return sw.NewEval()
}

// runParallel fans the points out over w workers, each evaluating its
// own clone of d.  Result slots are pre-assigned by index, so no two
// goroutines ever write the same element and the output order matches
// the input regardless of scheduling.
func (r *Runner) runParallel(parent context.Context, d *sheet.Design, overrides []map[string]float64, out []Point, w int, sw *sheet.Sweeper) error {
	// The internal context stops the index feed once any point fails;
	// workers evaluate the point they already hold under the PARENT
	// context.  That distinction is what makes error reporting
	// deterministic: indices are handed out in order, so when point k
	// fails, every lower index is already held by some worker and gets
	// fully evaluated — the lowest-indexed failure is always observed,
	// exactly as a serial run would report it.
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range overrides {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = -1
	)
	var wg sync.WaitGroup
	for n := 0; n < w; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			defer func() { exploreBusySeconds.Add(time.Since(start).Seconds()) }()
			// One snapshot per worker: cloning is O(rows), evaluation
			// is O(rows × points/worker), so the clone amortizes away
			// while guaranteeing race freedom against the caller.  The
			// hoisted Sweeper is shared — it is immutable — but each
			// worker gets its own SweepEval (a private slot vector over
			// the shared baseline); the clone serves the fallback path.
			snap := d.Clone()
			ev := newEval(sw)
			for i := range idx {
				p, err := r.point(parent, snap, ev, overrides[i])
				if err != nil {
					mu.Lock()
					// Keep the lowest-indexed failure so parallel runs
					// report the same error a serial run would.
					if errIdx == -1 || i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
					cancel()
					return
				}
				out[i] = p
			}
		}()
	}
	wg.Wait()

	// A cancellation raced with a point failure: the parent's error
	// wins only when no point actually failed.
	if err := parent.Err(); err != nil && firstErr == nil {
		return fmt.Errorf("explore: sweep interrupted: %w", err)
	}
	return firstErr
}

// point evaluates (or recalls from cache) a single override vector.
// It checks ctx before doing any work, so a canceled sweep stops at
// the next point boundary.
//
// When ev is non-nil it is tried first: the hoisted fast path replays
// only the override-dependent cone of the compiled plan and yields
// totals identical to a full evaluation.  Any fast-path error falls
// through to EvaluateAt, which reproduces the canonical message.
func (r *Runner) point(ctx context.Context, d *sheet.Design, ev *sheet.SweepEval, overrides map[string]float64) (Point, error) {
	if err := ctx.Err(); err != nil {
		return Point{}, fmt.Errorf("explore: sweep interrupted: %w", err)
	}
	var key string
	if r.Cache != nil {
		key = Key(overrides)
		if rec, ok := r.Cache.lookup(key); ok {
			explorePoints.Inc()
			return Point{Vars: overrides, Power: rec.power, Area: rec.area, Delay: rec.delay}, nil
		}
	}
	p, ok := Point{}, false
	if ev != nil {
		if power, area, delay, err := ev.At(overrides); err == nil {
			p, ok = Point{Vars: overrides, Power: power, Area: area, Delay: delay}, true
		}
	}
	if !ok {
		res, err := d.EvaluateAt(overrides)
		if err != nil {
			return Point{}, fmt.Errorf("explore: %s: %w", overridesLabel(overrides), err)
		}
		p = Point{
			Vars:  overrides,
			Power: float64(res.Power), Area: float64(res.Area), Delay: float64(res.Delay),
		}
	}
	if r.Cache != nil {
		r.Cache.store(cacheRecord{key: key, power: p.Power, area: p.Area, delay: p.Delay})
	}
	explorePoints.Inc()
	return p, nil
}

// overridesLabel renders an override vector for error messages
// ("vdd=1.5 f=2e+06"), names sorted for determinism.
func overridesLabel(overrides map[string]float64) string {
	names := make([]string, 0, len(overrides))
	for n := range overrides {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%g", n, overrides[n])
	}
	return strings.Join(parts, " ")
}
