package obs

// Structured logging and request-ID propagation.
//
// Every HTTP request gets an ID at the edge (the web middleware) that
// travels in the request context, so a log line written deep inside
// sheet evaluation, the sweep runner, or the remote model client
// carries the same request_id the access log and the JSON error
// envelope show the client.  Code that logs takes whatever context it
// already has and calls obs.Log(ctx) — no logger plumbing through
// APIs, and outside a request (tests, CLI tools, background refresh)
// it degrades to slog.Default().  The request-tagged logger is
// composed lazily at the log site, not per request: requests that log
// nothing (the overwhelming hot path) pay one context value, no
// logger allocation.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
)

type ctxKey int

const (
	requestIDKey ctxKey = iota
	loggerKey
)

// NewRequestID mints a fresh request ID: 8 random bytes, hex-encoded.
// Collisions across a log-retention window are about as likely as a
// disk flipping the same bits.  One allocation (the returned string):
// this runs once per HTTP request.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is not recoverable
	}
	var dst [16]byte
	hex.Encode(dst[:], b[:])
	return string(dst[:])
}

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request ID, or "" outside a request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// WithLogger returns ctx carrying a logger for Log to hand back.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// Log returns the context's logger — in a request, tagged with its
// request_id — or slog.Default() when the context carries none.  A nil
// context is tolerated so helpers without one still log.  The tagged
// logger is built here, at the (rare) log site, so carrying an ID
// through the (hot) non-logging path costs nothing.
func Log(ctx context.Context) *slog.Logger {
	if ctx != nil {
		if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok {
			return l
		}
		if id, ok := ctx.Value(requestIDKey).(string); ok {
			return slog.Default().With("request_id", id)
		}
	}
	return slog.Default()
}
