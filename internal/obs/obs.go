// Package obs is PowerPlay's observability spine: dependency-free
// in-process instruments (counters, gauges, fixed-bucket histograms,
// and labeled families of each) behind a registry that exports the
// Prometheus text format, plus the structured-logging and request-ID
// plumbing every layer shares (see log.go).
//
// The package exists so that the hot paths — sheet evaluation, the
// sweep runner, the remote model client, the serving caches — can be
// measured in production without pulling a client library into a
// codebase that is deliberately stdlib-only.  Instruments are a few
// atomic words each; recording is one or two atomic operations, cheap
// enough for paths served in microseconds.
//
// # Naming scheme
//
// Every instrument is named powerplay_<subsystem>_<what>[_<unit>] with
// the usual Prometheus conventions: counters end in _total, durations
// are in seconds, gauges name the quantity they track.  Labels are
// reserved for *small, closed* sets (route patterns, event kinds,
// breaker states) — never user names, design names, model names, or
// anything else a client can mint, so one site's label cardinality is
// bounded by its code, not its traffic.
//
// Instruments register into a package-default Registry on first use;
// constructors are get-or-create by name, so two servers in one test
// process (or a re-built handler) share the process's instruments the
// way Prometheus expects.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated with compare-and-swap on its bits:
// the storage under counters and gauges (Prometheus samples are
// floats, and the busy-seconds counters need fractional adds).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v, which must be non-negative (not checked; a negative add
// would only corrupt this one sample, never the process).
func (c *Counter) Add(v float64) { c.v.Add(v) }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Value() }

// Gauge is a value that goes up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Set(v) }

// Add moves the value by v (negative to decrease).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Value() }

// Histogram is a fixed-bucket cumulative histogram: observations land
// in the first bucket whose upper bound admits them, and the exporter
// emits the Prometheus cumulative form (every bucket counts all
// observations at or below its bound, closed by +Inf).
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Bucket count is small and fixed (≤ ~20); a linear scan beats a
	// binary search at this size and never allocates.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefBuckets spans the latencies this server actually serves: cached
// sheet GETs in tens of microseconds up through multi-second sweeps.
var DefBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// ---------------------------------------------------------------------
// Labeled families

// labeled is the shared machinery behind the *Vec types: a lazily
// populated map from label-value tuples to child instruments.
type labeled[T any] struct {
	labels []string
	mu     sync.RWMutex
	kids   map[string]T
	mk     func() T
}

func newLabeled[T any](labels []string, mk func() T) *labeled[T] {
	return &labeled[T]{labels: labels, kids: make(map[string]T), mk: mk}
}

// with returns the child for one label-value tuple, creating it on
// first use.  The fast path is a read-locked map hit.
func (l *labeled[T]) with(values ...string) T {
	if len(values) != len(l.labels) {
		panic(fmt.Sprintf("obs: instrument wants %d label values, got %d", len(l.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	l.mu.RLock()
	kid, ok := l.kids[key]
	l.mu.RUnlock()
	if ok {
		return kid
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if kid, ok = l.kids[key]; !ok {
		kid = l.mk()
		l.kids[key] = kid
	}
	return kid
}

// snapshot returns the children sorted by key for deterministic export.
func (l *labeled[T]) snapshot() (keys []string, kids []T) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	keys = make([]string, 0, len(l.kids))
	for k := range l.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids = make([]T, len(keys))
	for i, k := range keys {
		kids[i] = l.kids[k]
	}
	return keys, kids
}

// CounterVec is a family of counters sharing a name and label set.
type CounterVec struct{ l *labeled[*Counter] }

// With returns the counter for one label-value tuple.
func (v *CounterVec) With(values ...string) *Counter { return v.l.with(values...) }

// GaugeVec is a family of gauges sharing a name and label set.
type GaugeVec struct{ l *labeled[*Gauge] }

// With returns the gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge { return v.l.with(values...) }

// HistogramVec is a family of histograms sharing a name, label set and
// bucket layout.
type HistogramVec struct{ l *labeled[*Histogram] }

// With returns the histogram for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram { return v.l.with(values...) }

// ---------------------------------------------------------------------
// Registry

// family is one registered instrument family: the unit of HELP/TYPE
// output.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string
	inst   any // *Counter, *Gauge, *Histogram, or the matching *Vec
}

// Registry holds instrument families and renders them in the
// Prometheus text exposition format.  The zero value is ready to use;
// most code uses the package-level Default registry through the
// NewCounter/NewGauge/... constructors.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Default is the process-wide registry the package-level constructors
// register into and Handler serves.
var Default = &Registry{}

// register is the get-or-create core: a family already registered
// under the name is returned as-is (the constructor's instrument shape
// must match — a name registered as a counter cannot come back as a
// gauge).
func (r *Registry) register(name, help, typ string, labels []string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.families == nil {
		r.families = make(map[string]*family)
	}
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: %s re-registered as a different instrument", name))
		}
		return f.inst
	}
	inst := mk()
	r.families[name] = &family{name: name, help: help, typ: typ, labels: labels, inst: inst}
	return inst
}

// NewCounter registers (or finds) an unlabeled counter in r.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, help, "counter", nil, func() any { return &Counter{} }).(*Counter)
}

// NewCounterVec registers (or finds) a counter family in r.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return r.register(name, help, "counter", labels, func() any {
		return &CounterVec{l: newLabeled(labels, func() *Counter { return &Counter{} })}
	}).(*CounterVec)
}

// NewGauge registers (or finds) an unlabeled gauge in r.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", nil, func() any { return &Gauge{} }).(*Gauge)
}

// NewGaugeVec registers (or finds) a gauge family in r.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return r.register(name, help, "gauge", labels, func() any {
		return &GaugeVec{l: newLabeled(labels, func() *Gauge { return &Gauge{} })}
	}).(*GaugeVec)
}

// NewHistogram registers (or finds) an unlabeled histogram in r.  A nil
// buckets slice selects DefBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, "histogram", nil, func() any {
		return newHistogram(buckets)
	}).(*Histogram)
}

// NewHistogramVec registers (or finds) a histogram family in r.  A nil
// buckets slice selects DefBuckets.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return r.register(name, help, "histogram", labels, func() any {
		return &HistogramVec{l: newLabeled(labels, func() *Histogram { return newHistogram(buckets) })}
	}).(*HistogramVec)
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Package-level constructors against the Default registry.

// NewCounter registers (or finds) an unlabeled counter.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewCounterVec registers (or finds) a counter family.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return Default.NewCounterVec(name, help, labels...)
}

// NewGauge registers (or finds) an unlabeled gauge.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewGaugeVec registers (or finds) a gauge family.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return Default.NewGaugeVec(name, help, labels...)
}

// NewHistogram registers (or finds) an unlabeled histogram.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.NewHistogram(name, help, buckets)
}

// NewHistogramVec registers (or finds) a histogram family.
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return Default.NewHistogramVec(name, help, buckets, labels...)
}

// ---------------------------------------------------------------------
// Exposition

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4), families and children in
// deterministic name order.
func (r *Registry) WritePrometheus(w *strings.Builder) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		switch inst := f.inst.(type) {
		case *Counter:
			writeSample(w, f.name, "", inst.Value())
		case *Gauge:
			writeSample(w, f.name, "", inst.Value())
		case *Histogram:
			writeHistogram(w, f.name, "", inst)
		case *CounterVec:
			keys, kids := inst.l.snapshot()
			for i, k := range keys {
				writeSample(w, f.name, labelString(f.labels, k, ""), kids[i].Value())
			}
		case *GaugeVec:
			keys, kids := inst.l.snapshot()
			for i, k := range keys {
				writeSample(w, f.name, labelString(f.labels, k, ""), kids[i].Value())
			}
		case *HistogramVec:
			keys, kids := inst.l.snapshot()
			for i := range keys {
				writeHistogram(w, f.name, labelString(f.labels, keys[i], ""), kids[i])
			}
		}
	}
}

// writeSample emits one `name{labels} value` line.  labels is the
// pre-rendered `a="b",c="d"` interior, possibly empty.
func writeSample(w *strings.Builder, name, labels string, v float64) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	fmt.Fprintf(w, " %s\n", formatValue(v))
}

// writeHistogram emits the cumulative bucket series plus _sum and
// _count.  extraLabels is the family's label interior ("" when
// unlabeled); the le label is appended after it.
func writeHistogram(w *strings.Builder, name, extraLabels string, h *Histogram) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, name+"_bucket", joinLabels(extraLabels, fmt.Sprintf(`le="%s"`, formatValue(bound))), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(w, name+"_bucket", joinLabels(extraLabels, `le="+Inf"`), float64(cum))
	writeSample(w, name+"_sum", extraLabels, h.Sum())
	writeSample(w, name+"_count", extraLabels, float64(h.Count()))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// labelString renders the label interior for one child key (the
// \xff-joined value tuple), plus an optional extra pre-rendered pair.
func labelString(labels []string, key, extra string) string {
	values := strings.Split(key, "\xff")
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l, escapeLabel(values[i]))
	}
	if extra != "" {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects:
// integers without an exponent, everything else in shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the Default registry at GET /metrics.
func Handler() http.Handler {
	return HandlerFor(Default)
}

// HandlerFor serves one registry's exposition.
func HandlerFor(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var b strings.Builder
		r.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}
