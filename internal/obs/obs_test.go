package obs

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := &Registry{}
	c := r.NewCounter("t_count_total", "a counter")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	g := r.NewGauge("t_gauge", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %v, want 5", got)
	}
	// Get-or-create: same name returns the same instrument.
	if r.NewCounter("t_count_total", "again") != c {
		t.Error("re-registration minted a second counter")
	}
}

func TestRegisterTypeMismatchPanics(t *testing.T) {
	r := &Registry{}
	r.NewCounter("t_clash", "counter first")
	defer func() {
		if recover() == nil {
			t.Error("registering t_clash as a gauge should panic")
		}
	}()
	r.NewGauge("t_clash", "now a gauge")
}

func TestHistogramBucketsAndExport(t *testing.T) {
	r := &Registry{}
	h := r.NewHistogram("t_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5.555 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE t_lat_seconds histogram",
		`t_lat_seconds_bucket{le="0.01"} 1`,
		`t_lat_seconds_bucket{le="0.1"} 2`,
		`t_lat_seconds_bucket{le="1"} 3`,
		`t_lat_seconds_bucket{le="+Inf"} 4`,
		"t_lat_seconds_sum 5.555",
		"t_lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramCumulativeMonotonic checks the exported bucket series is
// non-decreasing and closed by +Inf == count, under concurrency.
func TestHistogramCumulativeMonotonic(t *testing.T) {
	r := &Registry{}
	h := r.NewHistogramVec("t_conc_seconds", "latency", nil, "route")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.With("a").Observe(float64(i%37) / 1000)
			}
		}(w)
	}
	wg.Wait()
	var b strings.Builder
	r.WritePrometheus(&b)
	prev := -1.0
	count := -1.0
	inf := -1.0
	for _, line := range strings.Split(b.String(), "\n") {
		var v float64
		switch {
		case strings.HasPrefix(line, "t_conc_seconds_bucket"):
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err != nil {
				t.Fatal(err)
			}
			if v < prev {
				t.Fatalf("bucket series decreased: %q after %v", line, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		case strings.HasPrefix(line, "t_conc_seconds_count"):
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err != nil {
				t.Fatal(err)
			}
			count = v
		}
	}
	if count != 8000 || inf != count {
		t.Errorf("count = %v, +Inf bucket = %v, want both 8000", count, inf)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := &Registry{}
	vec := r.NewCounterVec("t_events_total", "events", "kind")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				vec.With("hit").Inc()
				vec.With("miss").Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := vec.With("hit").Value(); got != 8000 {
		t.Errorf("hit = %v", got)
	}
	if got := vec.With("miss").Value(); got != 4000 {
		t.Errorf("miss = %v", got)
	}
}

func TestVecLabelExport(t *testing.T) {
	r := &Registry{}
	vec := r.NewCounterVec("t_labeled_total", "labeled", "route", "status")
	vec.With(`GET /x`, "200").Add(3)
	vec.With(`quo"te`, "500").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`t_labeled_total{route="GET /x",status="200"} 3`,
		`t_labeled_total{route="quo\"te",status="500"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRequestIDContext(t *testing.T) {
	id := NewRequestID()
	if len(id) != 16 {
		t.Fatalf("id %q not 16 hex chars", id)
	}
	if id == NewRequestID() {
		t.Error("two IDs collided")
	}
	ctx := WithRequestID(context.Background(), id)
	if RequestID(ctx) != id {
		t.Error("request ID lost in context")
	}
	if RequestID(context.Background()) != "" {
		t.Error("empty context should have no ID")
	}
}

func TestLogFallsBackToDefault(t *testing.T) {
	if Log(context.Background()) != slog.Default() {
		t.Error("bare context should log to slog.Default")
	}
	if Log(nil) != slog.Default() {
		t.Error("nil context should log to slog.Default")
	}
	l := slog.Default().With("request_id", "abc")
	ctx := WithLogger(context.Background(), l)
	if Log(ctx) != l {
		t.Error("context logger not returned")
	}
}
