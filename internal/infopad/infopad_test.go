package infopad

import (
	"math"
	"strings"
	"testing"

	"powerplay/internal/core/sheet"
	"powerplay/internal/library"
)

func build(t *testing.T) (*sheet.Design, *sheet.Result) {
	t.Helper()
	reg := library.Standard()
	d, err := Build(reg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	return d, r
}

func TestSystemEvaluates(t *testing.T) {
	_, r := build(t)
	total := float64(r.Power)
	// Reconstructed total: a couple of watts, an order of magnitude
	// sanity band rather than a point estimate.
	if total < 1 || total > 6 {
		t.Errorf("system total = %v W, outside plausible band", total)
	}
	// Every Figure 5 row is present.
	for _, name := range []string{
		"custom_hardware", "radio_subsystem", "display_lcds",
		"uP_subsystem", "support_electronics", "voltage_converters",
		"other_io_devices",
	} {
		if r.Find(name) == nil {
			t.Errorf("missing subsystem %q", name)
		}
	}
}

func TestCustomHardwareIsUnderOnePercent(t *testing.T) {
	// The paper's pitfall: effort is spent where the power is not.
	// The custom low-power chipset is a sliver of the system.
	_, r := build(t)
	custom := float64(r.Find("custom_hardware").Power)
	total := float64(r.Power)
	if frac := custom / total; frac > 0.02 {
		t.Errorf("custom hardware = %.2f%% of total, want < 2%%", 100*frac)
	}
	// And the video chip itself (the whole Figure 2 exercise!) is a
	// sliver of the sliver.
	lum := float64(r.Find("custom_hardware/luminance").Power)
	if lum < 100e-6 || lum > 200e-6 {
		t.Errorf("luminance macro = %v W, want ≈142 µW", lum)
	}
}

func TestCommodityPartsDominate(t *testing.T) {
	_, r := build(t)
	total := float64(r.Power)
	commodity := float64(r.Find("display_lcds").Power) +
		float64(r.Find("uP_subsystem").Power) +
		float64(r.Find("other_io_devices").Power) +
		float64(r.Find("radio_subsystem").Power)
	if frac := commodity / total; frac < 0.75 {
		t.Errorf("commodity fraction = %.0f%%, want > 75%%", 100*frac)
	}
}

func TestConverterTracksLoad(t *testing.T) {
	// EQ 19 inter-model interaction: at 80% efficiency the converter row
	// must equal exactly a quarter of the fed subsystems' power.
	_, r := build(t)
	load := float64(r.Find("custom_hardware").Power) +
		float64(r.Find("radio_subsystem").Power) +
		float64(r.Find("uP_subsystem").Power)
	conv := float64(r.Find("voltage_converters").Power)
	if math.Abs(conv-0.25*load) > 1e-9 {
		t.Errorf("converter = %v, want (1-0.8)/0.8 × %v", conv, load)
	}
}

func TestWhatIfReducesConverterLoss(t *testing.T) {
	// Duty-cycling the processor from the TOP page must shrink both the
	// processor row and the converter row — no manual re-plumbing.
	d, base := build(t)
	cpu := d.Root.Find("uP_subsystem/cpu")
	if err := cpu.SetParam("act", "0.40"); err != nil {
		t.Fatal(err)
	}
	after, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !(after.Find("uP_subsystem").Power < base.Find("uP_subsystem").Power) {
		t.Error("processor row should shrink")
	}
	if !(after.Find("voltage_converters").Power < base.Find("voltage_converters").Power) {
		t.Error("converter row should track the reduced load")
	}
	if !(after.Power < base.Power) {
		t.Error("total should shrink")
	}
}

func TestMixedSupplies(t *testing.T) {
	// Rows run at different supplies — 1.5 V custom, 3.3 V logic, 5 V
	// analog — within one sheet.
	_, r := build(t)
	if got := r.Find("custom_hardware/chrominance_u").Params["vdd"]; got != 1.5 {
		t.Errorf("custom supply = %v", got)
	}
	if got := r.Find("uP_subsystem/cpu").Params["vdd"]; got != 3.3 {
		t.Errorf("logic supply = %v", got)
	}
	if got := r.Find("radio_subsystem/receiver_frontend").Params["vdd"]; got != 5.0 {
		t.Errorf("analog supply = %v", got)
	}
}

func TestRadioIsStaticPower(t *testing.T) {
	// The RF front end is EQ 13 bias current: all static, no V² term.
	_, r := build(t)
	rf := r.Find("radio_subsystem/receiver_frontend")
	if float64(rf.DynamicPower) != 0 {
		t.Error("analog front end should have no dynamic term")
	}
	// 4 branches × 12 mA × 5 V = 240 mW.
	if got := float64(rf.Power); math.Abs(got-0.24) > 1e-9 {
		t.Errorf("receiver = %v, want 0.24", got)
	}
}

func TestMacroRegisteredOnce(t *testing.T) {
	reg := library.Standard()
	if _, err := Build(reg); err != nil {
		t.Fatal(err)
	}
	n := reg.Len()
	// Building a second system over the same library reuses the macro.
	if _, err := Build(reg); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != n {
		t.Error("second Build should not duplicate the macro")
	}
}

func TestBreakdownReport(t *testing.T) {
	d, r := build(t)
	rows := sheet.Breakdown(r)
	if len(rows) != 7 {
		t.Fatalf("breakdown rows = %d", len(rows))
	}
	var b strings.Builder
	sheet.Report(&b, d, r)
	out := b.String()
	for _, want := range []string{"InfoPad", "radio_subsystem", "voltage_converters", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestBatteryLife(t *testing.T) {
	_, r := build(t)
	// A mid-90s 15 Wh NiMH pack at 90% usable.
	h, err := BatteryLife(r.Power, 15, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	want := 15 * 0.9 / float64(r.Power)
	if math.Abs(h-want) > 1e-9 {
		t.Errorf("hours = %v, want %v", h, want)
	}
	if h < 3 || h > 10 {
		t.Errorf("runtime %v h implausible for the reconstructed terminal", h)
	}
	// Duty-cycling the CPU extends life.
	d, _ := build(t)
	d.Root.Find("uP_subsystem/cpu").SetParam("act", "0.3")
	r2, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := BatteryLife(r2.Power, 15, 0.9)
	if h2 <= h {
		t.Error("lower power should extend runtime")
	}
	// Errors.
	if _, err := BatteryLife(0, 15, 0.9); err == nil {
		t.Error("zero power should fail")
	}
	if _, err := BatteryLife(1, 0, 0.9); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := BatteryLife(1, 15, 1.5); err == nil {
		t.Error("bad derate should fail")
	}
}

func TestJSONRoundTripSystem(t *testing.T) {
	reg := library.Standard()
	d, err := Build(reg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := sheet.ParseDesign(blob, reg)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := d.Evaluate()
	r2, err := d2.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Power != r2.Power {
		t.Errorf("round trip changed total: %v vs %v", r1.Power, r2.Power)
	}
}
