package infopad

import (
	"errors"

	"powerplay/internal/core/model"
	"powerplay/internal/core/sheet"
	"powerplay/internal/library"
)

// ProtocolChip builds the radio protocol chip as its own design sheet:
// the place the controller models (EQ 9–10) get used in anger rather
// than in isolation.  The chip frames packets for the radio link: a
// ROM-based sequencer steps the protocol states, a small random-logic
// block decodes header fields, an SRAM FIFO buffers a packet, a
// checksum datapath folds the payload, and pads drive the radio.
//
// The paper's guidance applies directly: the two controller rows are
// the least certain numbers on the sheet ("interpret with caution"),
// and swapping their implementation platform is a one-cell edit.
func ProtocolChip(reg *model.Registry) (*sheet.Design, error) {
	d := sheet.NewDesign("ProtocolChip", reg)
	d.Doc = "Radio protocol/framing chip: sequencer, field decode, packet FIFO, checksum, pads"
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1MHz") // byte clock of the link

	rows := []struct {
		name, modelName, doc string
		params               map[string]string
	}{
		{"sequencer", library.ROMCtrl,
			"Protocol state sequencer: 6 state/status inputs, 24 control outputs (EQ 10).",
			map[string]string{"ni": "6", "no": "24", "po": "0.5"}},
		{"field_decode", library.RandomCtrl,
			"Header field decoder: sparse two-level logic (EQ 9).",
			map[string]string{"ni": "8", "no": "12", "nm": "24"}},
		{"packet_fifo", library.LowSwingSRAM,
			"One-packet buffer with reduced-swing bit lines (EQ 8).",
			map[string]string{"words": "2048", "bits": "8", "f": "f/2"}},
		{"checksum", library.RippleAdder,
			"Payload checksum fold (adder proxy for the XOR tree).",
			map[string]string{"bits": "16", "f": "f/2"}},
		{"pads", library.PadBuffer,
			"Serial link drivers toward the radio.",
			map[string]string{"bits": "2", "f": "f"}},
	}
	for _, row := range rows {
		n, err := d.Root.AddChild(row.name, row.modelName)
		if err != nil {
			return nil, err
		}
		n.Doc = row.doc
		for _, key := range []string{"ni", "no", "po", "nm", "words", "bits", "f"} {
			if src, ok := row.params[key]; ok {
				if err := n.SetParam(key, src); err != nil {
					return nil, err
				}
			}
		}
	}
	return d, nil
}

// SwapSequencerPlatform rebinds the sequencer row to another controller
// platform with equivalent N_I/N_O — the one-cell what-if the paper's
// controller section motivates.  Supported models: library.ROMCtrl,
// library.RandomCtrl, library.PLACtrl.
func SwapSequencerPlatform(d *sheet.Design, modelName string) error {
	seq := d.Root.Find("sequencer")
	if seq == nil {
		return errors.New("infopad: design has no sequencer row")
	}
	seq.Model = modelName
	// Platform-specific parameters: keep N_I/N_O, drop the rest.
	seq.DeleteParam("po")
	seq.DeleteParam("nm")
	seq.DeleteParam("np")
	switch modelName {
	case library.RandomCtrl:
		return seq.SetParam("nm", "40")
	case library.PLACtrl:
		return seq.SetParam("np", "40")
	}
	return nil
}
