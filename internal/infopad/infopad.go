// Package infopad builds the paper's system-design case study: the
// power breakdown of the InfoPad portable multimedia terminal
// (Figure 5).
//
// The sheet demonstrates everything the paper's "System Design" section
// claims: mixed-mode rows (digital CMOS, analog RF, electro-mechanical
// I/O, data-sheet commodity parts) at several supply voltages, deep
// hierarchy with hyperlinked sub-sheets, the video decompression design
// lumped into a macro and reused as a single row, and DC-DC converters
// whose dissipation is an expression over the power of the modules they
// feed — so any what-if on any chip re-prices the converters too.
//
// The scanned Figure 5 values are partially illegible; the breakdown
// here reconstructs a consistent set around the readable anchors (an
// 80 %-efficient converter bank; pen/speech/speaker "other I/O"; a
// 2·10⁷ Hz processor row) and preserves the figure's message: the
// custom low-power hardware is under 1 % of the total — the commodity
// components dominate, which is exactly why system-level exploration
// matters.
package infopad

import (
	"fmt"

	"powerplay/internal/core/model"
	"powerplay/internal/core/sheet"
	"powerplay/internal/library"
	"powerplay/internal/units"
	"powerplay/internal/vqsim"
)

// MacroName is the registry name under which the video decompression
// macro is published.
const MacroName = "macro.luminance"

// Build assembles the InfoPad system sheet over the given library,
// registering the luminance-chip macro into it as a side effect (the
// paper's macro-reuse flow: model the chip, lump it, drop it into the
// system sheet).
func Build(reg *model.Registry) (*sheet.Design, error) {
	if _, exists := reg.Lookup(MacroName); !exists {
		lum, err := vqsim.Luminance2(reg)
		if err != nil {
			return nil, fmt.Errorf("infopad: building luminance design: %w", err)
		}
		mac, err := sheet.NewMacro(MacroName, "Luminance decompression chip",
			"Figure 3 architecture lumped into a macro; hyperlinks to the Luminance_2 sheet.", lum)
		if err != nil {
			return nil, fmt.Errorf("infopad: lumping luminance design: %w", err)
		}
		if err := reg.Register(mac); err != nil {
			return nil, err
		}
	}

	d := sheet.NewDesign("InfoPad", reg)
	d.Doc = "Portable multimedia terminal system power breakdown (Figure 5)"
	// System-level variables: the two digital supplies and the main
	// clock, changeable from the top page.
	d.Root.SetGlobalValue("vdd1", 1.5, "1.5") // custom low-power supply
	d.Root.SetGlobalValue("vdd2", 3.3, "3.3") // commodity logic supply
	d.Root.SetGlobalValue("vdd3", 5.0, "5")   // analog/RF and I/O supply
	d.Root.SetGlobalValue("fclk", 20e6, "20MHz")

	if err := buildCustomHardware(d); err != nil {
		return nil, err
	}
	if err := buildRadio(d); err != nil {
		return nil, err
	}
	if err := buildRows(d.Root, []row{
		{"display_lcds", library.FixedPart, b{"pnom": "0.445", "vdd": "vdd3"},
			"Four LCD panels; power from actual measurements."},
	}); err != nil {
		return nil, err
	}
	if err := buildProcessor(d); err != nil {
		return nil, err
	}
	if err := buildRows(d.Root, []row{
		{"support_electronics", library.FixedPart, b{"pnom": "0.075", "vdd": "vdd2"},
			"Glue logic, clock generation, level shifters (hand estimate)."},
	}); err != nil {
		return nil, err
	}
	// The converter bank feeds the three regulated subsystems; its
	// dissipation is an expression over their computed power (EQ 19).
	conv, err := d.Root.AddChild("voltage_converters", library.DCDC)
	if err != nil {
		return nil, err
	}
	conv.Doc = "Buck converters, measured 80% efficiency; load re-priced on every Play."
	if err := conv.SetParam("pload",
		`power("custom_hardware") + power("radio_subsystem") + power("uP_subsystem")`); err != nil {
		return nil, err
	}
	if err := conv.SetParam("eta", "0.80"); err != nil {
		return nil, err
	}
	if err := conv.SetParam("vdd", "vdd3"); err != nil {
		return nil, err
	}
	if err := buildOtherIO(d); err != nil {
		return nil, err
	}
	return d, nil
}

type b map[string]string

type row struct {
	name, modelName string
	params          b
	doc             string
}

func buildRows(parent *sheet.Node, rows []row) error {
	for _, r := range rows {
		n, err := parent.AddChild(r.name, r.modelName)
		if err != nil {
			return err
		}
		n.Doc = r.doc
		for _, key := range []string{"pnom", "act", "ibias", "branches", "words", "bits", "vdd", "f", "pavg"} {
			if src, ok := r.params[key]; ok {
				if err := n.SetParam(key, src); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// buildCustomHardware models the six-chip custom chipset: the only part
// of the terminal running from the 1.5 V low-power supply.
func buildCustomHardware(d *sheet.Design) error {
	hw, err := d.Root.AddChild("custom_hardware", "")
	if err != nil {
		return err
	}
	hw.Doc = "UCB low-power chipset; luminance chip modeled (macro), others measured."
	hw.SetGlobalValue("vdd", 1.5, "1.5")
	hw.SetGlobalValue("f", 2e6, "2MHz")
	if _, err := hw.AddChild("luminance", MacroName); err != nil {
		return err
	}
	return buildRows(hw, []row{
		{"chrominance_u", library.FixedPart, b{"pnom": "0.003", "vdd": "vdd"},
			"Chrominance decompression chip (measured)."},
		{"chrominance_v", library.FixedPart, b{"pnom": "0.003", "vdd": "vdd"},
			"Chrominance decompression chip (measured)."},
		{"video_controller", library.FixedPart, b{"pnom": "0.012", "vdd": "vdd"},
			"Frame-buffer / LCD timing controller (measured)."},
		{"protocol_chip", library.FixedPart, b{"pnom": "0.0065", "vdd": "vdd"},
			"Radio protocol / error correction chip (measured)."},
	})
}

// buildRadio models the RF subsystem with the analog models: static
// bias currents dominate (EQ 13).
func buildRadio(d *sheet.Design) error {
	radio, err := d.Root.AddChild("radio_subsystem", "")
	if err != nil {
		return err
	}
	radio.Doc = "Plessey-style 2.4 GHz link: analog front ends plus PA."
	radio.SetGlobalValue("vdd", 5, "5")
	return buildRows(radio, []row{
		{"receiver_frontend", library.AnalogBias, b{"ibias": "12e-3", "branches": "4"},
			"LNA/mixer/IF strips: four 12 mA bias branches at 5 V (EQ 13)."},
		{"transmitter", library.FixedPart, b{"pnom": "0.150"},
			"Power amplifier and synthesizer, transmit duty cycle folded in."},
	})
}

// buildProcessor models the embedded processor subsystem with the
// EQ 11 data-sheet model plus commodity DRAM.
func buildProcessor(d *sheet.Design) error {
	up, err := d.Root.AddChild("uP_subsystem", "")
	if err != nil {
		return err
	}
	up.Doc = "Embedded control processor and memory, 3.3 V, 20 MHz."
	up.SetGlobalValue("vdd", 3.3, "3.3")
	up.SetGlobalValue("f", 20e6, "20MHz")
	cpu, err := up.AddChild("cpu", library.GenericCPU)
	if err != nil {
		return err
	}
	cpu.Doc = "EQ 11: P = α·P_AVG from the data book."
	if err := cpu.SetParam("act", "0.95"); err != nil {
		return err
	}
	return buildRows(up, []row{
		{"dram", library.DRAM, b{"words": "2^20", "bits": "16", "f": "f/4"},
			"1M×16 commodity DRAM, one access per four CPU cycles."},
	})
}

// BatteryLife converts the terminal's total power into runtime on a
// battery pack: the number a portable-terminal design review actually
// asks for.  A derating factor accounts for converter-input and
// end-of-discharge losses not captured by the sheet (1 = none).
func BatteryLife(total units.Watts, packWattHours, derate float64) (hours float64, err error) {
	if total <= 0 {
		return 0, fmt.Errorf("infopad: non-positive system power %v", total)
	}
	if packWattHours <= 0 {
		return 0, fmt.Errorf("infopad: non-positive pack capacity %g Wh", packWattHours)
	}
	if derate <= 0 || derate > 1 {
		return 0, fmt.Errorf("infopad: derating %g outside (0, 1]", derate)
	}
	return packWattHours * derate / float64(total), nil
}

func buildOtherIO(d *sheet.Design) error {
	io, err := d.Root.AddChild("other_io_devices", "")
	if err != nil {
		return err
	}
	io.Doc = "Pen digitizer, speech codec, speaker amplifier (data sheets)."
	io.SetGlobalValue("vdd", 5, "5")
	return buildRows(io, []row{
		{"pen_digitizer", library.FixedPart, b{"pnom": "0.100"}, "Pen input digitizer."},
		{"speech_codec", library.FixedPart, b{"pnom": "0.300"}, "Speech codec and microphone path."},
		{"speaker_amp", library.FixedPart, b{"pnom": "0.400"}, "Speaker output amplifier."},
	})
}
