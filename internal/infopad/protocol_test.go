package infopad

import (
	"testing"

	"powerplay/internal/library"
)

func TestProtocolChipEvaluates(t *testing.T) {
	reg := library.Standard()
	d, err := ProtocolChip(reg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// µW-scale custom chip at 1.5 V / 1 MHz.
	p := float64(r.Power)
	if p < 20e-6 || p > 2e-3 {
		t.Errorf("protocol chip = %v W, implausible", p)
	}
	for _, row := range []string{"sequencer", "field_decode", "packet_fifo", "checksum", "pads"} {
		if r.Find(row) == nil {
			t.Errorf("missing row %q", row)
		}
	}
	// The FIFO should dominate (memory beats control, as always).
	fifo := float64(r.Find("packet_fifo").Power)
	seq := float64(r.Find("sequencer").Power)
	if fifo <= seq {
		t.Errorf("FIFO (%v) should dominate the sequencer (%v)", fifo, seq)
	}
}

func TestSwapSequencerPlatform(t *testing.T) {
	reg := library.Standard()
	d, err := ProtocolChip(reg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	romSeq := float64(base.Find("sequencer").Power)

	if err := SwapSequencerPlatform(d, library.PLACtrl); err != nil {
		t.Fatal(err)
	}
	pla, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	plaSeq := float64(pla.Find("sequencer").Power)
	if plaSeq >= romSeq {
		t.Errorf("a 40-term PLA should beat the full 2^6-row ROM: %v vs %v", plaSeq, romSeq)
	}

	if err := SwapSequencerPlatform(d, library.RandomCtrl); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Evaluate(); err != nil {
		t.Fatalf("random-logic swap: %v", err)
	}
	// Swapping on a sheet without the row fails cleanly.
	empty, _ := ProtocolChip(library.Standard())
	empty.Root.RemoveChild("sequencer")
	if err := SwapSequencerPlatform(empty, library.PLACtrl); err == nil {
		t.Error("missing sequencer should fail")
	}
}
