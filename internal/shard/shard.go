// Package shard scales one PowerPlay site horizontally: a router
// process maps every user to one of N backend processes with
// rendezvous (highest-random-weight) hashing and reverse-proxies the
// request over pooled keep-alive connections, while each backend owns
// exactly its partition of the per-user journals PR 8 introduced.
//
// The paper's premise is a power-exploration tool "available to the
// whole design community" over the web; the durable per-user account
// store made whole accounts the natural partition unit, and this
// package spreads those accounts across independent engines the same
// way Coburn et al. spread a fixed evaluation workload across
// accelerator engines.  The pieces:
//
//   - the hash (this file): deterministic rendezvous hashing over the
//     canonical member names "shard-0".."shard-N-1", so the router and
//     every backend agree on ownership from the shard count alone, and
//     resizing N remaps only ~1/N of the user corpus;
//   - the wire protocol (protocol.go): the X-Powerplay-Shard-* headers
//     and the 421 ShardRedirect a backend answers when a request for a
//     user it does not own arrives, so a router with a stale view
//     re-routes and self-heals;
//   - the router (router.go): per-backend circuit breakers (the PR 3
//     machinery, now internal/circuit), user extraction from the login
//     form or the powerplay_user cookie, round-robin spreading of
//     site-scope reads, and site-model replication fan-out.
package shard

// The rendezvous hash.  For each member m the score is a 64-bit mix of
// hash(m) and hash(user); the member with the highest score owns the
// user.  Removing a member therefore remaps exactly the users it owned
// (they re-maximize over the survivors) and nobody else — the ≤ 1/N
// churn bound that makes fleet resizes cheap — and no coordination or
// state is needed beyond the member list itself.

import "fmt"

// fnv64a is FNV-1a, inlined so scoring a user allocates nothing.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is SplitMix64's finalizer: a cheap bijective scrambler that
// turns the xor of two FNV hashes into a well-distributed score.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Ring is an immutable rendezvous-hash member set with precomputed
// member hashes, so the per-request cost is one user hash plus one
// mix per member.
type Ring struct {
	members []string
	hashes  []uint64
}

// NewRing builds a ring over the given member names.  Order matters
// only for the index Pick returns; ownership depends on the names
// alone.
func NewRing(members []string) *Ring {
	r := &Ring{
		members: append([]string(nil), members...),
		hashes:  make([]uint64, len(members)),
	}
	for i, m := range r.members {
		r.hashes[i] = fnv64a(m)
	}
	return r
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the member names (a copy).
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Pick returns the index of the member owning user, or -1 on an empty
// ring.  Ties (astronomically unlikely under mix64) break toward the
// lexically smallest member name, so ownership never depends on list
// order.
func (r *Ring) Pick(user string) int {
	if len(r.members) == 0 {
		return -1
	}
	ringLookups.Inc()
	uh := fnv64a(user)
	best := 0
	bestScore := mix64(r.hashes[0] ^ uh)
	for i := 1; i < len(r.hashes); i++ {
		s := mix64(r.hashes[i] ^ uh)
		if s > bestScore || (s == bestScore && r.members[i] < r.members[best]) {
			best, bestScore = i, s
		}
	}
	return best
}

// Members returns the canonical member names for an N-shard fleet:
// "shard-0".."shard-N-1".  Routers and backends both hash over these,
// so agreeing on N is agreeing on ownership.
func Members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard-%d", i)
	}
	return out
}

// Owner maps a user to its shard index in an n-shard fleet.  A fleet
// of one (or none) owns everything at index 0 — the unsharded case.
// Convenience for one-off calls; hot paths hold a Ring.
func Owner(user string, n int) int {
	if n <= 1 {
		return 0
	}
	return NewRing(Members(n)).Pick(user)
}
