package shard

// The shard router's instrument families, following the web layer's
// conventions: bounded label cardinality only — backend labels are
// shard indices (a small closed set fixed by the fleet size), never
// user names or paths.

import "powerplay/internal/obs"

var (
	ringLookups = obs.NewCounter("powerplay_shard_lookups_total",
		"Rendezvous hash-ring ownership lookups.")
	proxiedRequests = obs.NewCounterVec("powerplay_shard_proxied_requests_total",
		"Requests the router proxied, by backend shard index and upstream status class (2xx/3xx/4xx/5xx/error).",
		"backend", "status")
	shardRedirects = obs.NewCounter("powerplay_shard_redirects_total",
		"ShardRedirect (421) answers consumed by the router: misdirected requests re-routed to the owning backend.")
	shardBreakerTransitions = obs.NewCounterVec("powerplay_shard_breaker_transitions_total",
		"Router per-backend circuit breaker transitions, by backend shard index and state entered.",
		"backend", "to")
	shardReplications = obs.NewCounterVec("powerplay_shard_replications_total",
		"Site-scope write replications fanned out to backends, by outcome (ok/error).",
		"outcome")
	shardRejected = obs.NewCounter("powerplay_shard_rejected_total",
		"Requests the router refused outright: owning backend breaker open or unreachable.")
)
