package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"powerplay/internal/circuit"
	"powerplay/internal/obs"
)

// Config parameterizes a Router.
type Config struct {
	// Backends are the backend base URLs in shard order: Backends[i]
	// serves shard i.  Required, at least one.
	Backends []string
	// ShardCount is the hash width — how many shards the user corpus
	// is partitioned into.  Zero selects len(Backends), the steady
	// state.  During a fleet resize it may lag behind the backend list
	// (the list already holds the new backend, the hash still spreads
	// over the old count); misdirected requests then self-heal through
	// ShardRedirect answers.  Never larger than len(Backends): a shard
	// with no backend would be unroutable.
	ShardCount int
	// Key is the site password, forwarded on internal replication
	// calls (X-PowerPlay-Key).  Client requests pass their own
	// credentials through untouched.
	Key string
	// BreakerThreshold and BreakerCooldown parameterize each backend's
	// circuit breaker; zeros select the circuit package defaults
	// (5 failures, 10 s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxIdlePerBackend caps the keep-alive connection pool per
	// backend; zero selects 32.
	MaxIdlePerBackend int
}

func (c Config) maxIdle() int {
	if c.MaxIdlePerBackend > 0 {
		return c.MaxIdlePerBackend
	}
	return 32
}

// maxBufferedBody bounds how much of a request body the router holds
// in memory so it can retry after a ShardRedirect and replicate
// site-scope writes.  Matches the backends' own 4 MiB body cap with
// headroom; a larger body streams through with no retry capability.
const maxBufferedBody = 8 << 20

// Router is the shard front door: one process that owns no user state
// at all, just the hash, the backend list, and a breaker per backend.
//
// Request routing:
//
//   - POST /login routes by the form's user field (the shard key is
//     the user name; the login form is where it first appears);
//   - anything carrying the powerplay_user cookie routes to that
//     user's owner backend;
//   - /api/v1/healthz and /metrics answer locally (the router's own
//     health and instruments — backend health is per-backend);
//   - everything else (the front page, the library, the site-scope
//     model API) spreads round-robin over breaker-closed backends,
//     which is safe because site-scope state replicates everywhere.
//
// A backend answering 421 ShardRedirect triggers one re-route to the
// owner it names — how a router with a stale ShardCount keeps serving
// through a resize.  A backend whose breaker is open costs its users a
// fast 503 with the v1 error envelope; everyone else is untouched.
type Router struct {
	cfg      Config
	backends []string // normalized: scheme://host, no trailing slash
	ring     *Ring
	breakers []*circuit.Breaker
	client   *http.Client
	rr       atomic.Uint64
	started  time.Time
}

// NewRouter validates the configuration and builds the router with its
// pooled keep-alive transport and per-backend breakers.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one backend")
	}
	n := cfg.ShardCount
	if n == 0 {
		n = len(cfg.Backends)
	}
	if n < 1 || n > len(cfg.Backends) {
		return nil, fmt.Errorf("shard: shard count %d not in 1..%d (the backend list)", n, len(cfg.Backends))
	}
	rt := &Router{
		cfg:     cfg,
		ring:    NewRing(Members(n)),
		started: time.Now(),
	}
	for i, b := range cfg.Backends {
		b = strings.TrimSuffix(b, "/")
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		u, err := url.Parse(b)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("shard: backend %d: unusable URL %q", i, cfg.Backends[i])
		}
		rt.backends = append(rt.backends, b)
		idx := strconv.Itoa(i)
		rt.breakers = append(rt.breakers, &circuit.Breaker{
			Threshold: cfg.BreakerThreshold,
			Cooldown:  cfg.BreakerCooldown,
			OnTransition: func(to circuit.State) {
				shardBreakerTransitions.With(idx, to.String()).Inc()
			},
		})
	}
	rt.client = &http.Client{
		Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
			MaxIdleConns:        cfg.maxIdle() * len(cfg.Backends),
			MaxIdleConnsPerHost: cfg.maxIdle(),
			IdleConnTimeout:     90 * time.Second,
			// Above the backends' own 2 min request deadline, so a slow
			// sweep finishes and only a truly hung backend trips this.
			ResponseHeaderTimeout: 150 * time.Second,
		},
		// The router never follows 3xx: redirects (the app's 303s)
		// belong to the browser.
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	return rt, nil
}

// ShardCount returns the hash width in force.
func (rt *Router) ShardCount() int { return rt.ring.Len() }

// BreakerState reports one backend's breaker state (for healthz and
// tests).
func (rt *Router) BreakerState(i int) circuit.State { return rt.breakers[i].State() }

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/healthz", rt.handleHealthz)
	mux.Handle("GET /metrics", obs.Handler())
	mux.HandleFunc("/", rt.route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Echo (or mint) the request ID so one ID follows the request
		// through router log lines, backend log lines, and the client's
		// error envelope.
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
			r.Header.Set("X-Request-ID", id)
		}
		w.Header().Set("X-Request-ID", id)
		mux.ServeHTTP(w, r)
	})
}

// route is the proxying path: extract the shard key, pick the backend,
// forward.
func (rt *Router) route(w http.ResponseWriter, r *http.Request) {
	body, buffered, err := rt.bufferBody(r)
	if err != nil {
		rt.fail(w, r, http.StatusBadGateway, CodeUnavailable, "reading request body: "+err.Error())
		return
	}
	user := rt.requestUser(r, body)
	if user != "" {
		target := rt.ring.Pick(user)
		rt.proxy(w, r, target, body, buffered, false)
		return
	}
	// Site-scope / anonymous traffic: any healthy backend will do.
	target, ok := rt.nextHealthy()
	if !ok {
		shardRejected.Inc()
		rt.fail(w, r, http.StatusServiceUnavailable, CodeUnavailable, "no backend available")
		return
	}
	rt.proxy(w, r, target, body, buffered, true)
}

// requestUser extracts the shard key: the login form's user field on
// POST /login, the routing cookie everywhere else.
func (rt *Router) requestUser(r *http.Request, body []byte) string {
	if r.Method == http.MethodPost && r.URL.Path == "/login" {
		ct := r.Header.Get("Content-Type")
		if body != nil && (ct == "" || strings.HasPrefix(ct, "application/x-www-form-urlencoded")) {
			if vals, err := url.ParseQuery(string(body)); err == nil {
				if u := vals.Get("user"); u != "" {
					return u
				}
			}
		}
		return ""
	}
	if c, err := r.Cookie(UserCookie); err == nil && c.Value != "" {
		return c.Value
	}
	return ""
}

// bufferBody reads a bounded request body into memory so the request
// can be retried (ShardRedirect) and replicated (site-scope writes).
// An over-limit body is not consumed: buffered reports false and the
// request streams through exactly once.
func (rt *Router) bufferBody(r *http.Request) (body []byte, buffered bool, err error) {
	if r.Body == nil || r.Body == http.NoBody {
		return nil, true, nil
	}
	if r.ContentLength > maxBufferedBody {
		return nil, false, nil
	}
	body, err = io.ReadAll(io.LimitReader(r.Body, maxBufferedBody+1))
	if err != nil {
		return nil, false, err
	}
	if len(body) > maxBufferedBody {
		// Too big after all (chunked encoding): stream the rest through,
		// stitching the consumed prefix back on.
		r.Body = struct {
			io.Reader
			io.Closer
		}{io.MultiReader(bytes.NewReader(body), r.Body), r.Body}
		return nil, false, nil
	}
	return body, true, nil
}

// nextHealthy picks the next round-robin backend whose breaker admits
// traffic, scanning at most one full cycle.
func (rt *Router) nextHealthy() (int, bool) {
	n := len(rt.backends)
	start := int(rt.rr.Add(1))
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if rt.breakers[i].State() != circuit.Open {
			return i, true
		}
	}
	return 0, false
}

// proxy forwards one request to backends[target], following at most
// one ShardRedirect, and copies the response back.  rr marks
// round-robin (site-scope) traffic, which may fail over to another
// backend; user traffic must not — the user's state lives on exactly
// one backend.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, target int, body []byte, buffered bool, rr bool) {
	resp, err := rt.attempt(r, target, body, buffered)
	if err != nil && rr && buffered {
		// Site-scope reads are stateless: one failover attempt.
		if next, ok := rt.nextHealthy(); ok && next != target {
			target = next
			resp, err = rt.attempt(r, target, body, buffered)
		}
	}
	if err != nil {
		shardRejected.Inc()
		proxiedRequests.With(strconv.Itoa(target), "error").Inc()
		rt.fail(w, r, http.StatusServiceUnavailable, CodeUnavailable,
			fmt.Sprintf("shard %d unavailable: %v", target, err))
		return
	}
	// A misdirected request: the backend told us who owns the user.
	// Trust it for one hop — the backend's count is ground truth for
	// its own journal partition — and re-route.
	if resp.StatusCode == StatusMisdirected && buffered {
		owner, oerr := strconv.Atoi(resp.Header.Get(HeaderOwner))
		if oerr == nil && owner != target && owner >= 0 && owner < len(rt.backends) {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			shardRedirects.Inc()
			if cnt := resp.Header.Get(HeaderCount); cnt != "" && cnt != strconv.Itoa(rt.ring.Len()) {
				slog.Warn("shard: backend disagrees on shard count; following its redirect",
					"router_count", rt.ring.Len(), "backend_count", cnt, "owner", owner)
			}
			target = owner
			resp, err = rt.attempt(r, target, body, buffered)
			if err != nil {
				shardRejected.Inc()
				proxiedRequests.With(strconv.Itoa(target), "error").Inc()
				rt.fail(w, r, http.StatusServiceUnavailable, CodeUnavailable,
					fmt.Sprintf("shard %d unavailable: %v", target, err))
				return
			}
		}
	}
	defer resp.Body.Close()
	proxiedRequests.With(strconv.Itoa(target), statusClass(resp.StatusCode)).Inc()
	// Site-model replication: a successful model definition on the
	// owner backend fans out to every other backend, so site-scope
	// reads stay local to whichever backend answers them.  Synchronous
	// and before the client sees the 303, so a follow-up GET /library
	// through any backend already shows the model.
	if r.Method == http.MethodPost && r.URL.Path == "/models/new" &&
		resp.StatusCode == http.StatusSeeOther && buffered && body != nil {
		rt.replicateModel(r, body, target)
	}
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// attempt issues one proxied request through the target's breaker.
func (rt *Router) attempt(r *http.Request, target int, body []byte, buffered bool) (*http.Response, error) {
	br := rt.breakers[target]
	if err := br.Allow(); err != nil {
		return nil, err
	}
	var rd io.Reader
	if buffered {
		if len(body) > 0 {
			rd = bytes.NewReader(body)
		}
	} else {
		rd = r.Body
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		rt.backends[target]+r.URL.RequestURI(), rd)
	if err != nil {
		br.Success() // a malformed URL is our bug, not the backend's health
		return nil, err
	}
	copyHeaders(out.Header, r.Header)
	out.Header.Set("X-Forwarded-Host", r.Host)
	if ip, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		if prior := r.Header.Get("X-Forwarded-For"); prior != "" {
			ip = prior + ", " + ip
		}
		out.Header.Set("X-Forwarded-For", ip)
	}
	if buffered {
		out.ContentLength = int64(len(body))
	}
	resp, err := rt.client.Do(out)
	if err != nil {
		br.Failure()
		return nil, err
	}
	// Any HTTP answer means the process is alive: application-level
	// errors (404s, even 500s from one handler) are not fleet-topology
	// signals and must not blackhole a whole shard.
	br.Success()
	return resp, nil
}

// replicateModel fans a successful site-model definition out to every
// backend except src, through each backend's internal
// POST /api/v1/shard/model endpoint.  Best-effort: a backend that is
// down misses the model until an operator re-replicates (its breaker
// state says so); the owner's journal holds the authoritative copy.
func (rt *Router) replicateModel(r *http.Request, body []byte, src int) {
	for i := range rt.backends {
		if i == src || rt.breakers[i].State() == circuit.Open {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
			rt.backends[i]+"/api/v1/shard/model", bytes.NewReader(body))
		if err != nil {
			shardReplications.With("error").Inc()
			continue
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		if rt.cfg.Key != "" {
			req.Header.Set("X-PowerPlay-Key", rt.cfg.Key)
		}
		req.Header.Set("X-Request-ID", r.Header.Get("X-Request-ID"))
		resp, err := rt.client.Do(req)
		if err != nil {
			shardReplications.With("error").Inc()
			slog.Warn("shard: model replication failed", "backend", i, "err", err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 == 2 {
			shardReplications.With("ok").Inc()
		} else {
			shardReplications.With("error").Inc()
			slog.Warn("shard: model replication rejected", "backend", i, "status", resp.StatusCode)
		}
	}
}

// ----- healthz -----

// healthBackend is one backend's row in the router healthz.
type healthBackend struct {
	URL     string `json:"url"`
	ShardID int    `json:"shard_id"`
	Breaker string `json:"breaker"`
}

// healthzResponse is the router's GET /api/v1/healthz body: the shard
// identity block (role, shard_count) plus every backend's breaker
// state — the one-glance fleet view.
type healthzResponse struct {
	Status        string          `json:"status"`
	Role          string          `json:"role"`
	ShardCount    int             `json:"shard_count"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Backends      []healthBackend `json:"backends"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:        "ok",
		Role:          RoleRouter,
		ShardCount:    rt.ring.Len(),
		UptimeSeconds: time.Since(rt.started).Seconds(),
	}
	for i, b := range rt.backends {
		resp.Backends = append(resp.Backends, healthBackend{
			URL: b, ShardID: i, Breaker: rt.breakers[i].State().String(),
		})
	}
	w.Header().Set(HeaderShard, RoleRouter)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// fail writes the v1 error envelope, matching the backends' shape so a
// client never needs to know which process refused it.
func (rt *Router) fail(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	w.Header().Set(HeaderShard, RoleRouter)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"error": map[string]string{
		"code": code, "message": msg, "request_id": w.Header().Get("X-Request-ID"),
	}})
}

// hopHeaders are the hop-by-hop headers a proxy must not forward.
var hopHeaders = []string{
	"Connection", "Proxy-Connection", "Keep-Alive", "Proxy-Authenticate",
	"Proxy-Authorization", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
	for _, h := range hopHeaders {
		dst.Del(h)
	}
}

// statusClass buckets upstream statuses for the proxied-requests
// counter: bounded cardinality, still diagnostic.
func statusClass(status int) string {
	switch status / 100 {
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	case 5:
		return "5xx"
	}
	return "other"
}
