package shard

// The shard wire protocol: three response headers and one status code,
// shared between the router (which emits and consumes them) and the
// backends (internal/web, which emits them).  Everything else about a
// proxied request is ordinary HTTP.

import "net/http"

// Response headers.
const (
	// HeaderShard names the process that produced a response: a shard
	// index ("2") from a backend, RoleRouter from the router's own
	// endpoints.  Every sharded response carries it, so a misbehaving
	// fleet can be blamed from curl alone.
	HeaderShard = "X-Powerplay-Shard"
	// HeaderOwner, on a ShardRedirect, carries the shard index the
	// answering backend believes owns the user.
	HeaderOwner = "X-Powerplay-Shard-Owner"
	// HeaderCount, on a ShardRedirect, carries the answering backend's
	// shard count, so a router with a stale topology can tell ownership
	// disagreement from count disagreement.
	HeaderCount = "X-Powerplay-Shard-Count"
)

// StatusMisdirected is the ShardRedirect status: 421 Misdirected
// Request, the HTTP status minted for exactly this situation — the
// server can speak the protocol but is not the right authority for
// the request.  The body is the v1 error envelope with code
// CodeShardRedirect; the router retries against HeaderOwner and never
// shows a client the 421.
const StatusMisdirected = http.StatusMisdirectedRequest

// Error-envelope codes the shard layer adds to the v1 API's closed set.
const (
	// CodeShardRedirect marks a ShardRedirect envelope (status 421).
	CodeShardRedirect = "shard_redirect"
	// CodeUnavailable marks a request refused because the owning
	// backend is down (breaker open) or unreachable (status 503).
	CodeUnavailable = "unavailable"
)

// RoleRouter and RoleBackend are the healthz "role" values.
const (
	RoleRouter  = "router"
	RoleBackend = "backend"
)

// UserCookie is the routing cookie backends set at login: the bare
// user name, which is the shard key.  Sessions stay backend-local
// (the token cookie is opaque and meaningless off its backend); this
// cookie exists so the router can route without holding any session
// state — the fleet's only shared routing state is the hash itself.
const UserCookie = "powerplay_user"
