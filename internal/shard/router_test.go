package shard_test

// End-to-end fleet tests: real web.Server backends behind a real
// Router, all over loopback HTTP.  In shard_test (not shard) because
// the backends come from internal/web, which itself imports
// internal/shard.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"powerplay/internal/library"
	"powerplay/internal/shard"
	"powerplay/internal/web"
)

// userFor finds a deterministic user name the n-shard hash assigns to
// the wanted shard.
func userFor(t *testing.T, want, n int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("user%d", i)
		if shard.Owner(name, n) == want {
			return name
		}
	}
	t.Fatalf("no user maps to shard %d of %d in 10000 tries", want, n)
	return ""
}

// fleet is one router over n in-process backends.
type fleet struct {
	router   *shard.Router
	front    *httptest.Server
	backends []*httptest.Server
	servers  []*web.Server
}

// newFleet builds an n-backend fleet.  mutate, when non-nil, adjusts
// the router config (e.g. a stale shard count) before the router is
// built.
func newFleet(t *testing.T, n int, mutate func(*shard.Config)) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		s, err := web.NewServer(web.Config{ShardID: i, ShardCount: n}, library.Standard())
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, s)
		f.backends = append(f.backends, ts)
	}
	cfg := shard.Config{}
	for _, b := range f.backends {
		cfg.Backends = append(cfg.Backends, b.URL)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := shard.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.front = httptest.NewServer(rt.Handler())
	t.Cleanup(f.front.Close)
	return f
}

func newClient(t *testing.T) *http.Client {
	t.Helper()
	jar, _ := cookiejar.New(nil)
	return &http.Client{Jar: jar}
}

// login identifies user through the fleet's front door.
func login(t *testing.T, c *http.Client, base, user string) {
	t.Helper()
	resp, err := c.PostForm(base+"/login", url.Values{"user": {user}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login %s: %s", user, resp.Status)
	}
}

// get fetches url and returns status, body, and the shard header.
func get(t *testing.T, c *http.Client, url string) (int, string, string) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), resp.Header.Get(shard.HeaderShard)
}

func TestRouterRoutesByUser(t *testing.T) {
	f := newFleet(t, 2, nil)
	for want := 0; want < 2; want++ {
		user := userFor(t, want, 2)
		c := newClient(t)
		login(t, c, f.front.URL, user)
		code, body, hdr := get(t, c, f.front.URL+"/menu")
		if code != 200 || !strings.Contains(body, user) {
			t.Fatalf("menu for %s: %d", user, code)
		}
		if hdr != fmt.Sprintf("%d", want) {
			t.Errorf("user %s served by shard %q, hash says %d", user, hdr, want)
		}
		// The user's state must live on exactly the owning backend.
		if !f.servers[want].Owns(user) {
			t.Errorf("backend %d does not own %s", want, user)
		}
		if f.servers[1-want].Owns(user) {
			t.Errorf("backend %d claims %s too", 1-want, user)
		}
	}
	// Anonymous site traffic spreads without a user: the front page
	// answers from some backend with its shard header.
	code, _, hdr := get(t, newClient(t), f.front.URL+"/")
	if code != 200 || (hdr != "0" && hdr != "1") {
		t.Errorf("front page: %d shard %q", code, hdr)
	}
}

func TestRouterHealthz(t *testing.T) {
	f := newFleet(t, 3, nil)
	resp, err := http.Get(f.front.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(shard.HeaderShard); got != shard.RoleRouter {
		t.Errorf("router healthz shard header %q, want %q", got, shard.RoleRouter)
	}
	var h struct {
		Status     string `json:"status"`
		Role       string `json:"role"`
		ShardCount int    `json:"shard_count"`
		Backends   []struct {
			URL     string `json:"url"`
			ShardID int    `json:"shard_id"`
			Breaker string `json:"breaker"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Role != shard.RoleRouter || h.ShardCount != 3 || len(h.Backends) != 3 {
		t.Fatalf("router healthz: %+v", h)
	}
	for i, b := range h.Backends {
		if b.ShardID != i || b.Breaker != "closed" || b.URL == "" {
			t.Errorf("backend %d block: %+v", i, b)
		}
	}
	// The backends' own healthz carries the backend identity block.
	var bh struct {
		Shard *struct {
			ShardID    int    `json:"shard_id"`
			ShardCount int    `json:"shard_count"`
			Role       string `json:"role"`
		} `json:"shard"`
	}
	br, err := http.Get(f.backends[2].URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer br.Body.Close()
	if err := json.NewDecoder(br.Body).Decode(&bh); err != nil {
		t.Fatal(err)
	}
	if bh.Shard == nil || bh.Shard.ShardID != 2 || bh.Shard.ShardCount != 3 || bh.Shard.Role != shard.RoleBackend {
		t.Fatalf("backend healthz shard block: %+v", bh.Shard)
	}
}

// TestShardRedirectSelfHeal: a router whose shard count is stale (a
// resize in progress) sends a user to the wrong backend; the backend's
// 421 names the owner and the router re-routes within the same client
// request.
func TestShardRedirectSelfHeal(t *testing.T) {
	// Backends believe the fleet has 2 shards; the router still hashes
	// over 1, sending every user to backend 0.
	f := newFleet(t, 2, func(c *shard.Config) { c.ShardCount = 1 })
	user := userFor(t, 1, 2) // owned by shard 1, misrouted to 0
	c := newClient(t)
	login(t, c, f.front.URL, user)
	code, body, hdr := get(t, c, f.front.URL+"/menu")
	if code != 200 || !strings.Contains(body, user) {
		t.Fatalf("menu through stale router: %d", code)
	}
	if hdr != "1" {
		t.Errorf("self-healed request served by shard %q, want 1", hdr)
	}
	// The client never saw the 421; the backend that owns nothing of
	// this user's never created state for them.
	if f.servers[0].Owns(user) {
		t.Error("backend 0 claims the misrouted user")
	}
}

// TestDirectMisdirect: hitting a backend directly with a user it does
// not own answers the full ShardRedirect protocol (what the router
// consumes, and what a curl user sees).
func TestDirectMisdirect(t *testing.T) {
	f := newFleet(t, 2, nil)
	user := userFor(t, 1, 2)
	// No router in the path: POST the login form straight at backend 0.
	resp, err := http.PostForm(f.backends[0].URL+"/login", url.Values{"user": {user}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != shard.StatusMisdirected {
		t.Fatalf("direct misdirect: %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get(shard.HeaderOwner); got != "1" {
		t.Errorf("owner header %q, want 1", got)
	}
	if got := resp.Header.Get(shard.HeaderCount); got != "2" {
		t.Errorf("count header %q, want 2", got)
	}
	if !strings.Contains(string(body), shard.CodeShardRedirect) {
		t.Errorf("421 body lacks the %s envelope: %s", shard.CodeShardRedirect, body)
	}
}

// TestModelReplication: a site model defined through the router lands
// on every backend, so site-scope reads never cross shards.
func TestModelReplication(t *testing.T) {
	f := newFleet(t, 2, nil)
	user := userFor(t, 0, 2)
	c := newClient(t)
	login(t, c, f.front.URL, user)
	resp, err := c.PostForm(f.front.URL+"/models/new", url.Values{
		"name": {"repl.adder"}, "class": {"computation"},
		"params": {"bits 8 1 64 int"},
		"csw":    {"bits*42f"},
		"doc":    {"replicated model"},
	})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK { // client followed the 303 to /doc
		t.Fatalf("model create: %s", resp.Status)
	}
	for i, b := range f.backends {
		code, body, _ := get(t, newClient(t), b.URL+"/api/v1/models/repl.adder")
		if code != 200 || !strings.Contains(body, "repl.adder") {
			t.Errorf("backend %d missing replicated model: %d %s", i, code, body)
		}
	}
}

// crashableBackend is a backend the test can kill (listener closed,
// server abandoned un-Closed — a crash, not a shutdown) and restart on
// the same address over the same data directory.
type crashableBackend struct {
	t    *testing.T
	addr string
	dir  string
	id   int
	n    int
	hs   *http.Server
	srv  *web.Server
}

func startCrashable(t *testing.T, addr, dir string, id, n int) *crashableBackend {
	t.Helper()
	b := &crashableBackend{t: t, addr: addr, dir: dir, id: id, n: n}
	s, err := web.NewServer(web.Config{
		ShardID: id, ShardCount: n, DataDir: dir, Durability: "always",
	}, library.Standard())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	b.addr = ln.Addr().String()
	b.srv = s
	b.hs = &http.Server{Handler: s.Handler()}
	go b.hs.Serve(ln)
	return b
}

// kill drops the backend as a crash would: the port closes, in-flight
// requests die, and the store is never drained.
func (b *crashableBackend) kill() { b.hs.Close() }

func (b *crashableBackend) url() string { return "http://" + b.addr }

// TestKillBackendMidTraffic is the fleet's fault e2e: one backend dies
// under live traffic, its breaker opens and its users get fast 503s,
// the surviving shard keeps serving, and the restarted backend rejoins
// serving its partition byte-identically (per-user journals, PR 8).
func TestKillBackendMidTraffic(t *testing.T) {
	dir0, dir1 := t.TempDir(), t.TempDir()
	b0 := startCrashable(t, "127.0.0.1:0", dir0, 0, 2)
	defer b0.kill()
	b1 := startCrashable(t, "127.0.0.1:0", dir1, 1, 2)

	rt, err := shard.NewRouter(shard.Config{
		Backends:         []string{b0.url(), b1.url()},
		BreakerThreshold: 2,
		BreakerCooldown:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	u0, u1 := userFor(t, 0, 2), userFor(t, 1, 2)
	c0, c1 := newClient(t), newClient(t)
	login(t, c0, front.URL, u0)
	login(t, c1, front.URL, u1)

	// State on the doomed shard: a design whose page must come back
	// byte-identical after the crash.
	resp, err := c1.PostForm(front.URL+"/designs", url.Values{"name": {"boom"}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	code, wantBody, hdr := get(t, c1, front.URL+"/design/boom")
	if code != 200 || hdr != "1" {
		t.Fatalf("design page before crash: %d shard %q", code, hdr)
	}
	wantETag := etagOf(t, c1, front.URL+"/design/boom")

	b1.kill()

	// Live traffic against the dead shard: transport errors until the
	// breaker trips (threshold 2), then fast envelope 503s.
	saw503 := false
	for i := 0; i < 10; i++ {
		resp, err := c1.Get(front.URL + "/menu")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("dead shard answer %d: %s", resp.StatusCode, body)
		}
		if strings.Contains(string(body), shard.CodeUnavailable) {
			saw503 = true
		}
		if rt.BreakerState(1).String() == "open" {
			break
		}
	}
	if !saw503 {
		t.Fatal("dead shard never answered the unavailable envelope")
	}
	if got := rt.BreakerState(1).String(); got != "open" {
		t.Fatalf("backend 1 breaker %q after kill, want open", got)
	}

	// The surviving shard is untouched.
	if code, body, hdr := get(t, c0, front.URL+"/menu"); code != 200 || hdr != "0" || !strings.Contains(body, u0) {
		t.Fatalf("surviving shard: %d shard %q", code, hdr)
	}

	// Restart on the same address over the same journals.  The breaker
	// half-opens after the cooldown, a probe succeeds, and the shard
	// rejoins with its partition byte-identical.
	b1 = startCrashable(t, b1.addr, dir1, 1, 2)
	defer b1.kill()
	c1 = newClient(t) // sessions died with the process; log in again
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := c1.PostForm(front.URL+"/login", url.Values{"user": {u1}})
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted shard never rejoined: last login %s", resp.Status)
		}
		time.Sleep(100 * time.Millisecond)
	}
	code, gotBody, hdr := get(t, c1, front.URL+"/design/boom")
	if code != 200 || hdr != "1" {
		t.Fatalf("design page after rejoin: %d shard %q", code, hdr)
	}
	if gotETag := etagOf(t, c1, front.URL+"/design/boom"); gotETag != wantETag {
		t.Fatalf("rejoined shard ETag %q, want %q", gotETag, wantETag)
	}
	if gotBody != wantBody {
		t.Fatalf("rejoined shard page differs: %d vs %d bytes", len(gotBody), len(wantBody))
	}
	if got := rt.BreakerState(1).String(); got != "closed" {
		t.Errorf("backend 1 breaker %q after rejoin, want closed", got)
	}
}

func etagOf(t *testing.T, c *http.Client, url string) string {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	return resp.Header.Get("ETag")
}

// TestShardMetricsContract drives every shard event — routed requests,
// a redirect, a breaker trip with rejections, a replication — then
// asserts the powerplay_shard_* families are declared and counting.
func TestShardMetricsContract(t *testing.T) {
	// A stale-count router over 2 backends: guarantees redirects.
	f := newFleet(t, 2, func(c *shard.Config) {
		c.ShardCount = 1
		c.BreakerThreshold = 1
		c.BreakerCooldown = time.Minute
	})
	user := userFor(t, 1, 2)
	c := newClient(t)
	login(t, c, f.front.URL, user)
	if code, _, _ := get(t, c, f.front.URL+"/menu"); code != 200 {
		t.Fatalf("menu: %d", code)
	}
	// A replication.
	c.PostForm(f.front.URL+"/models/new", url.Values{
		"name": {"metrics.model"}, "class": {"computation"},
		"params": {"bits 8 1 64 int"}, "csw": {"bits*7f"},
	})
	// A breaker trip and a rejection: kill backend 1's listener, then
	// hit its user twice (trip, then fast-fail).
	f.backends[1].Close()
	for i := 0; i < 2; i++ {
		resp, err := c.Get(f.front.URL + "/menu")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(f.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	text := string(blob)
	for _, fam := range []string{
		"powerplay_shard_lookups_total",
		"powerplay_shard_proxied_requests_total",
		"powerplay_shard_redirects_total",
		"powerplay_shard_breaker_transitions_total",
		"powerplay_shard_replications_total",
		"powerplay_shard_rejected_total",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" counter") {
			t.Errorf("/metrics missing counter declaration for %s", fam)
		}
	}
	// The events above guarantee live samples for these.  (Counters are
	// process-global, so assert presence, not exact values.)
	for _, sample := range []string{
		"powerplay_shard_redirects_total ",
		`powerplay_shard_proxied_requests_total{backend="1",status="2xx"}`,
		`powerplay_shard_breaker_transitions_total{backend="1",to="open"}`,
		`powerplay_shard_replications_total{outcome="ok"}`,
		"powerplay_shard_rejected_total ",
	} {
		if !strings.Contains(text, sample) {
			t.Errorf("/metrics missing sample %s", sample)
		}
	}
}
