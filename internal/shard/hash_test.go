package shard

import (
	"fmt"
	"testing"
)

// corpus builds a deterministic 10k-user population shaped like real
// login names.
func corpus(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("user_%04x", i)
	}
	return out
}

// TestRemovalRemap is the rendezvous property the whole design leans
// on: dropping one of N members remaps exactly the users that member
// owned — everyone else keeps their owner — and that set is ~1/N of
// the corpus.
func TestRemovalRemap(t *testing.T) {
	const n = 4
	users := corpus(10000)
	full := NewRing(Members(n))

	for removed := 0; removed < n; removed++ {
		var survivors []string
		for i, m := range Members(n) {
			if i != removed {
				survivors = append(survivors, m)
			}
		}
		small := NewRing(survivors)
		remapped, ownedByRemoved := 0, 0
		for _, u := range users {
			before := full.Members()[full.Pick(u)]
			after := survivors[small.Pick(u)]
			if before == Members(n)[removed] {
				ownedByRemoved++
				continue // these must remap; where to is the hash's business
			}
			if before != after {
				remapped++
			}
		}
		if remapped != 0 {
			t.Errorf("removing shard %d remapped %d users another member owned; rendezvous must move none",
				removed, remapped)
		}
		// The churn is exactly the removed member's load, which balance
		// keeps near 1/N.  Allow generous slop around 2500: this guards
		// the 1/N *bound*, not perfect balance (tested separately).
		if lim := 10000 / n * 13 / 10; ownedByRemoved > lim {
			t.Errorf("shard %d owned %d of 10000 users; churn bound wants <= %d (~1/%d + 30%%)",
				removed, ownedByRemoved, lim, n)
		}
	}
}

// TestBalance: each member's share of a 10k corpus stays near 1/N.
func TestBalance(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		r := NewRing(Members(n))
		counts := make([]int, n)
		for _, u := range corpus(10000) {
			counts[r.Pick(u)]++
		}
		want := 10000 / n
		for i, c := range counts {
			if c < want*7/10 || c > want*13/10 {
				t.Errorf("n=%d shard %d owns %d users; want %d +/- 30%%", n, i, c, want)
			}
		}
	}
}

// TestDeterminism: ownership depends on the member names alone, never
// on list order or ring instance.
func TestDeterminism(t *testing.T) {
	users := corpus(1000)
	fwd := NewRing([]string{"shard-0", "shard-1", "shard-2"})
	rev := NewRing([]string{"shard-2", "shard-1", "shard-0"})
	for _, u := range users {
		a := fwd.Members()[fwd.Pick(u)]
		b := rev.Members()[rev.Pick(u)]
		if a != b {
			t.Fatalf("user %s: owner %s with one order, %s with the other", u, a, b)
		}
		if own := Owner(u, 3); fwd.Members()[fwd.Pick(u)] != fmt.Sprintf("shard-%d", own) {
			t.Fatalf("user %s: Owner disagrees with Ring.Pick", u)
		}
	}
}

// TestOwnerUnsharded: fleets of zero or one shard own everything at 0.
func TestOwnerUnsharded(t *testing.T) {
	for _, n := range []int{0, 1} {
		if got := Owner("anyone", n); got != 0 {
			t.Errorf("Owner(n=%d) = %d, want 0", n, got)
		}
	}
}

// TestEmptyRing: Pick on an empty ring answers -1, not a panic.
func TestEmptyRing(t *testing.T) {
	if got := NewRing(nil).Pick("u"); got != -1 {
		t.Errorf("empty ring Pick = %d, want -1", got)
	}
}
