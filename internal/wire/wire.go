// Package wire implements the paper's interconnect estimation.
//
// Interconnect activity is not inherent to an algorithm, so at the
// earliest design stages the best available estimate ties interconnect
// to the design's active area through Rent's rule — T = t·B^p, relating
// the block count of a region to its external connections — and
// Donath's hierarchical placement argument, which converts the Rent
// exponent into an average wire length in gate pitches.  Given active
// area (supplied by the other modules' area models, an inter-model
// interaction), the gate pitch follows, total wire length follows, and
// capacitance is parameterized by feature size and capacitance per unit
// length.  As the design progresses these values are back-annotated for
// accuracy.
package wire

import (
	"math"

	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// RentTerminals evaluates Rent's rule T = t·B^p: the expected number of
// external terminals of a region containing blocks blocks, with
// per-block pin count t and Rent exponent p.
func RentTerminals(t float64, blocks float64, p float64) float64 {
	if blocks <= 0 {
		return 0
	}
	return t * math.Pow(blocks, p)
}

// DonathAvgLength returns Donath's estimate of the average interconnect
// length, in gate pitches, of a hierarchically placed design of n gates
// with Rent exponent p (0 < p < 1).
//
// The closed form (Donath 1979) is
//
//	R̄ = (2/9) · [ 7·(n^(p−1/2) − 1)/(4^(p−1/2) − 1)
//	              − (1 − n^(p−3/2))/(1 − 4^(p−3/2)) ]
//	           / [ (1 − n^(p−1))/(1 − 4^(p−1)) ]
//
// The removable singularities at p = 1/2 and p = 1 are handled by a tiny
// perturbation, which is far below the accuracy of the model.
func DonathAvgLength(n float64, p float64) float64 {
	if n <= 1 {
		return 0
	}
	// Perturb off the removable singularities.
	if math.Abs(p-0.5) < 1e-9 {
		p = 0.5 + 1e-9
	}
	if math.Abs(p-1) < 1e-9 {
		p = 1 - 1e-9
	}
	num := 7*(math.Pow(n, p-0.5)-1)/(math.Pow(4, p-0.5)-1) -
		(1-math.Pow(n, p-1.5))/(1-math.Pow(4, p-1.5))
	den := (1 - math.Pow(n, p-1)) / (1 - math.Pow(4, p-1))
	return 2.0 / 9.0 * num / den
}

// Estimate is a plain-function interconnect estimate used by both the
// Interconnect model and the tests.
type Estimate struct {
	// GatePitch is the linear spacing of blocks: sqrt(area/blocks).
	GatePitch float64
	// AvgLength is the Donath average wire length in metres.
	AvgLength float64
	// TotalLength is metres of wire across the whole design.
	TotalLength float64
	// TotalCap is the total wire capacitance.
	TotalCap units.Farads
	// WireArea is the physical routing area.
	WireArea units.SquareMeters
}

// EstimateWires computes the geometric part of the interconnect model:
// given active area, block count, Rent exponent, fanout (wires per
// block), capacitance per metre and wire pitch.
func EstimateWires(activeArea float64, blocks, rent, fanout, capPerMeter, wirePitch float64) Estimate {
	if blocks < 1 || activeArea <= 0 {
		return Estimate{}
	}
	pitch := math.Sqrt(activeArea / blocks)
	avg := DonathAvgLength(blocks, rent) * pitch
	total := avg * blocks * fanout
	return Estimate{
		GatePitch:   pitch,
		AvgLength:   avg,
		TotalLength: total,
		TotalCap:    units.Farads(total * capPerMeter),
		WireArea:    units.SquareMeters(total * wirePitch),
	}
}

// Interconnect is the library model wrapping EstimateWires.  Its "area"
// parameter is normally bound to an expression over the sheet's other
// modules (area("datapath") + area("ctrl")) — the inter-model
// interaction the paper describes.
type Interconnect struct {
	// Name, Title, Doc identify the cell.
	Name, Title, Doc string
	// CapPerMeter is wire capacitance per unit length at the reference
	// feature size.
	CapPerMeter float64
	// WirePitch is the routing pitch at the reference feature size.
	WirePitch float64
}

// Info implements model.Model.
func (w *Interconnect) Info() model.Info {
	return model.Info{
		Name:  w.Name,
		Title: w.Title,
		Class: model.Interconnect,
		Doc:   w.Doc,
		Params: model.WithStd(
			model.Param{Name: "area", Doc: "active area of the region (bind to area(...) of composing modules)", Unit: "m^2", Default: 1e-6, Min: 0, Max: 1},
			model.Param{Name: "blocks", Doc: "number of placed blocks/gates", Default: 1000, Min: 1, Max: 1e9},
			model.Param{Name: "rent", Doc: "Rent exponent p", Default: 0.6, Min: 0.1, Max: 0.9},
			model.Param{Name: "fanout", Doc: "wires per block", Default: 1.5, Min: 0.1, Max: 10},
			model.Param{Name: "act", Doc: "average wire switching activity", Default: 0.15, Min: 0, Max: 1},
		),
	}
}

// Evaluate implements model.Model.
func (w *Interconnect) Evaluate(p model.Params) (*model.Estimate, error) {
	scale := model.CapScale(p[model.ParamTech])
	est := EstimateWires(p["area"], p["blocks"], p["rent"], p["fanout"],
		w.CapPerMeter*scale, w.WirePitch*scale)
	e := &model.Estimate{VDD: p.VDD()}
	e.AddCap("wires", units.Farads(float64(est.TotalCap)*p["act"]), p.Freq())
	e.Area = est.WireArea
	// RC delay of the average wire, with a lumped 100 Ω/mm proxy.
	e.Delay = units.Seconds(0.5 * est.AvgLength * 1e5 * est.AvgLength * w.CapPerMeter * scale)
	e.Note("Donath/Rent estimate: avg length %.3g m over %g blocks (p=%.2f); back-annotate as placement firms up",
		est.AvgLength, p["blocks"], p["rent"])
	return e, nil
}

var _ model.Model = (*Interconnect)(nil)
