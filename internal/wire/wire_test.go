package wire

import (
	"math"
	"testing"
	"testing/quick"

	"powerplay/internal/core/model"
)

func TestRentTerminals(t *testing.T) {
	// Landman & Russo's canonical relationship: T = t·B^p.
	if got := RentTerminals(4, 1, 0.6); got != 4 {
		t.Errorf("one block should expose its own pins, got %v", got)
	}
	if got := RentTerminals(4, 1024, 0.5); math.Abs(got-128) > 1e-9 {
		t.Errorf("T(1024, p=0.5) = %v, want 128", got)
	}
	if RentTerminals(4, 0, 0.5) != 0 {
		t.Error("zero blocks should have zero terminals")
	}
	// Higher Rent exponent means more external wiring.
	if RentTerminals(4, 4096, 0.7) <= RentTerminals(4, 4096, 0.5) {
		t.Error("terminals should grow with p")
	}
}

func TestDonathKnownBehaviour(t *testing.T) {
	// Single gate: no wires.
	if got := DonathAvgLength(1, 0.6); got != 0 {
		t.Errorf("n=1 should be 0, got %v", got)
	}
	// For p < 0.5, average length saturates with n (locality wins);
	// classical result: R̄ stays O(1) gate pitches as n grows.
	lSat6 := DonathAvgLength(1e6, 0.3)
	lSat8 := DonathAvgLength(1e8, 0.3)
	if lSat6 > 5 || lSat8/lSat6 > 1.1 {
		t.Errorf("p=0.3 average length should saturate: l(1e6)=%v l(1e8)=%v", lSat6, lSat8)
	}
	// For p > 0.5 the average length grows as n^(p-0.5).
	l4 := DonathAvgLength(1e4, 0.7)
	l6 := DonathAvgLength(1e6, 0.7)
	wantRatio := math.Pow(1e2, 0.2) // n ratio 100, exponent p-1/2
	if ratio := l6 / l4; math.Abs(ratio-wantRatio)/wantRatio > 0.15 {
		t.Errorf("growth ratio = %v, want ≈ %v", ratio, wantRatio)
	}
	// Removable singularities evaluate finitely and continuously.
	for _, p := range []float64{0.5, 1.0} {
		v := DonathAvgLength(1e4, p)
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Errorf("p=%v should be finite positive, got %v", p, v)
		}
		near := DonathAvgLength(1e4, p+1e-6)
		if math.Abs(v-near)/near > 1e-2 {
			t.Errorf("p=%v discontinuous: %v vs %v", p, v, near)
		}
	}
}

func TestDonathMonotonicInRent(t *testing.T) {
	// Property: for fixed n, higher Rent exponent gives longer wires.
	f := func(raw uint8) bool {
		p := 0.15 + float64(raw)/255*0.6 // 0.15 .. 0.75
		a := DonathAvgLength(1e5, p)
		b := DonathAvgLength(1e5, p+0.1)
		return b > a && a > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEstimateWires(t *testing.T) {
	// 1 mm² of active area, 10k gates.
	est := EstimateWires(1e-6, 1e4, 0.6, 1.5, 200e-12, 2.4e-6)
	if est.GatePitch <= 0 || math.Abs(est.GatePitch-1e-5) > 1e-12 {
		t.Errorf("gate pitch = %v, want 10 µm", est.GatePitch)
	}
	if est.AvgLength <= est.GatePitch {
		t.Error("average wire should span more than one pitch at p=0.6")
	}
	wantTotal := est.AvgLength * 1e4 * 1.5
	if math.Abs(est.TotalLength-wantTotal) > 1e-9 {
		t.Errorf("total length = %v, want %v", est.TotalLength, wantTotal)
	}
	if float64(est.TotalCap) <= 0 || float64(est.WireArea) <= 0 {
		t.Error("cap and wire area should be positive")
	}
	// Degenerate inputs are safe.
	if EstimateWires(0, 100, 0.6, 1, 1, 1) != (Estimate{}) {
		t.Error("zero area should produce the zero estimate")
	}
	if EstimateWires(1e-6, 0, 0.6, 1, 1, 1) != (Estimate{}) {
		t.Error("zero blocks should produce the zero estimate")
	}
}

func TestInterconnectModel(t *testing.T) {
	w := &Interconnect{Name: "ucb.wire", CapPerMeter: 200e-12, WirePitch: 2.4e-6}
	e, err := model.Evaluate(w, model.Params{
		"area": 1e-6, "blocks": 1e4, "rent": 0.6, "vdd": 1.5, "f": 2e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if float64(e.Power()) <= 0 {
		t.Error("interconnect power should be positive")
	}
	// The A4 ablation shape: power grows superlinearly with Rent p.
	var prev float64
	for _, p := range []float64{0.4, 0.55, 0.7, 0.85} {
		est, err := model.Evaluate(w, model.Params{"area": 1e-6, "blocks": 1e4, "rent": p, "f": 2e6})
		if err != nil {
			t.Fatal(err)
		}
		if float64(est.Power()) <= prev {
			t.Errorf("power at p=%v should exceed p-0.15", p)
		}
		prev = float64(est.Power())
	}
	// Larger designs have longer (slower) average wires.
	small, _ := model.Evaluate(w, model.Params{"area": 1e-8, "blocks": 1e3})
	big, _ := model.Evaluate(w, model.Params{"area": 1e-4, "blocks": 1e6})
	if float64(big.Delay) <= float64(small.Delay) {
		t.Error("bigger die should have slower average wire")
	}
}

func TestInterconnectDefaults(t *testing.T) {
	w := &Interconnect{Name: "w", CapPerMeter: 200e-12, WirePitch: 2.4e-6}
	if _, err := model.Evaluate(w, nil); err != nil {
		t.Fatal(err)
	}
}
