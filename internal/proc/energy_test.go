package proc

import (
	"math"
	"math/rand"
	"testing"

	"powerplay/internal/cachesim"
	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestDatasheetEQ11(t *testing.T) {
	cpu := &Datasheet{Name: "arm610", PAvg: 0.5, RatedVDD: 3.3, RatedFreq: 20e6}
	// α = 1: full data-book power.
	e, err := model.Evaluate(cpu, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(e.Power()); !almost(got, 0.5) {
		t.Errorf("P = %v, want 0.5", got)
	}
	// α = 0.3 shutdown duty cycle.
	e, err = model.Evaluate(cpu, model.Params{"act": 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(e.Power()); !almost(got, 0.15) {
		t.Errorf("P = %v, want 0.15", got)
	}
	// Derating: half supply quarters power; half clock halves it.
	e, _ = model.Evaluate(cpu, model.Params{"vdd": 1.65})
	if got := float64(e.Power()); !almost(got, 0.125) {
		t.Errorf("derated P = %v, want 0.125", got)
	}
	e, _ = model.Evaluate(cpu, model.Params{"f": 10e6})
	if got := float64(e.Power()); !almost(got, 0.25) {
		t.Errorf("freq-derated P = %v, want 0.25", got)
	}
}

func TestProgramEnergyEQ12(t *testing.T) {
	tab := DefaultEnergyTable()
	var p Profile
	p.ByClass[ClassALU] = 100
	p.ByClass[ClassLoad] = 50
	p.ByClass[ClassMul] = 10
	p.Total = 160
	want := 100*0.4e-9 + 50*1.1e-9 + 10*1.6e-9
	if got := float64(tab.ProgramEnergy(&p)); !almost(got, want) {
		t.Errorf("E_T = %v, want %v", got, want)
	}
}

func TestRefinedEnergyAddsMissPenalties(t *testing.T) {
	tab := DefaultEnergyTable()
	var p Profile
	p.ByClass[ClassLoad] = 100
	cs := cachesim.Stats{Reads: 100, ReadMisses: 20, Writebacks: 5}
	flat := float64(tab.ProgramEnergy(&p))
	ref := float64(tab.RefinedEnergy(&p, cs))
	want := flat + 20*9e-9 + 5*5e-9
	if !almost(ref, want) {
		t.Errorf("refined = %v, want %v", ref, want)
	}
	if ref <= flat {
		t.Error("the paper's point: EQ 12 alone underestimates")
	}
}

func TestScaleVDD(t *testing.T) {
	tab := DefaultEnergyTable()
	e := units.Joules(1e-6)
	if got := tab.ScaleVDD(e, 3.3); !almost(float64(got), 1e-6) {
		t.Error("reference supply should be identity")
	}
	if got := tab.ScaleVDD(e, 1.65); !almost(float64(got), 0.25e-6) {
		t.Errorf("half supply should quarter energy, got %v", got)
	}
	if got := tab.ScaleVDD(e, 0); got != e {
		t.Error("degenerate supply should pass through")
	}
}

func TestInstructionModelPower(t *testing.T) {
	tab := DefaultEnergyTable()
	var p Profile
	p.ByClass[ClassALU] = 1000
	p.Total = 1000
	m := &InstructionModel{Name: "eq12", Table: tab, Prof: &p}
	e, err := model.Evaluate(m, model.Params{"f": 20e6, "vdd": 3.3})
	if err != nil {
		t.Fatal(err)
	}
	// E = 1000·0.4nJ = 400nJ; t = 1000·1.4/20MHz = 70µs; P = 5.714mW.
	if got := float64(e.Power()); !almost(got, 400e-9/70e-6) {
		t.Errorf("P = %v, want %v", got, 400e-9/70e-6)
	}
	if got := float64(e.Delay); !almost(got, 70e-6) {
		t.Errorf("runtime = %v", got)
	}
	// Cache stats add stall cycles and miss energy.
	cs := cachesim.Stats{Reads: 100, ReadMisses: 10}
	mc := &InstructionModel{Name: "eq12c", Table: tab, Prof: &p, CacheStats: &cs}
	ec, err := model.Evaluate(mc, model.Params{"f": 20e6, "vdd": 3.3})
	if err != nil {
		t.Fatal(err)
	}
	if float64(ec.Delay) <= float64(e.Delay) {
		t.Error("misses should stall the pipeline")
	}
	// Missing pieces are configuration errors.
	if _, err := model.Evaluate(&InstructionModel{Name: "x", Table: tab}, nil); err == nil {
		t.Error("missing profile should fail")
	}
}

func TestMeasureSortsOngYanShape(t *testing.T) {
	// The paper's ref [15] result: orders of magnitude variance in
	// energy across sorting algorithms on the same fictitious processor.
	rng := rand.New(rand.NewSource(42))
	n := 400
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(rng.Intn(1 << 16))
	}
	rows, err := MeasureSorts(data, DefaultEnergyTable(), cachesim.Config{
		Size: 1 << 12, BlockSize: 32, Assoc: 2, WriteBack: true, WriteAllocate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]SortEnergy{}
	for _, r := range rows {
		byName[r.Algorithm] = r
		if r.Energy <= 0 || r.RefinedEnergyJ < r.Energy {
			t.Errorf("%s: energies inconsistent: %v %v", r.Algorithm, r.Energy, r.RefinedEnergyJ)
		}
	}
	spread := float64(byName["bubble"].Energy) / float64(byName["quicksort"].Energy)
	if spread < 10 {
		t.Errorf("bubble/quicksort energy spread = %.1fx, want ≥ 10x (orders of magnitude)", spread)
	}
}

func TestMeasureSortsRejectsBadCache(t *testing.T) {
	if _, err := MeasureSorts([]int64{3, 1, 2}, DefaultEnergyTable(), cachesim.Config{}); err == nil {
		t.Error("invalid cache config should fail")
	}
}
