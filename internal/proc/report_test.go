package proc

import (
	"strings"
	"testing"
)

func TestProfileReport(t *testing.T) {
	prof, _, err := RunSort(QuickSortSrc, []int64{5, 2, 9, 1, 7, 3})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	prof.Report(&b, DefaultEnergyTable())
	out := b.String()
	for _, want := range []string{
		"instructions executed:", "memory reads", "taken branches",
		"alu", "load", "store", "E-share", "hot opcodes:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Without a table the energy columns are absent.
	var b2 strings.Builder
	prof.Report(&b2, nil)
	if strings.Contains(b2.String(), "E-share") {
		t.Error("nil table should omit energy columns")
	}
}

func TestDisassemble(t *testing.T) {
	prog := MustAssemble(`
start:  li   r1, 3
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        call sub
        jmp  end
sub:    ret
end:    halt
`)
	var b strings.Builder
	prog.Disassemble(&b)
	out := b.String()
	for _, want := range []string{
		"start:", "loop:", "sub:", "end:",
		"bne r1, r0, loop", "call sub", "jmp end",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	// The listing re-assembles to the same program.
	reasm, err := Assemble(stripIndices(out))
	if err != nil {
		t.Fatalf("re-assemble: %v\n%s", err, out)
	}
	if len(reasm.Instrs) != len(prog.Instrs) {
		t.Fatalf("length changed: %d vs %d", len(reasm.Instrs), len(prog.Instrs))
	}
	for i := range reasm.Instrs {
		if reasm.Instrs[i] != prog.Instrs[i] {
			t.Errorf("instr %d: %v vs %v", i, reasm.Instrs[i], prog.Instrs[i])
		}
	}
}

// stripIndices removes the leading instruction indices so the listing
// becomes valid assembler input again.
func stripIndices(listing string) string {
	var b strings.Builder
	for _, line := range strings.Split(listing, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasSuffix(trimmed, ":") {
			b.WriteString(trimmed + "\n")
			continue
		}
		fields := strings.SplitN(trimmed, " ", 2)
		if len(fields) == 2 {
			b.WriteString(strings.TrimSpace(fields[1]) + "\n")
		}
	}
	return b.String()
}

func TestDisassembleTrailingLabel(t *testing.T) {
	prog := MustAssemble("jmp end\nend:")
	var b strings.Builder
	prog.Disassemble(&b)
	if !strings.HasSuffix(strings.TrimSpace(b.String()), "end:") {
		t.Errorf("trailing label lost:\n%s", b.String())
	}
}
