package proc

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestEnergyTableJSONRoundTrip(t *testing.T) {
	orig := DefaultEnergyTable()
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back EnergyTable
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != *orig {
		t.Errorf("round trip drifted:\n%+v\nvs\n%+v", back, *orig)
	}
	// The wire format uses readable class names.
	if !strings.Contains(string(blob), `"alu"`) || !strings.Contains(string(blob), `"callret"`) {
		t.Errorf("wire format: %s", blob)
	}
}

func TestEnergyTableJSONValidation(t *testing.T) {
	cases := []string{
		`not json`,
		`{"refVdd":0,"cpi":1,"perClass":{}}`,
		`{"refVdd":3.3,"cpi":0,"perClass":{}}`,
		`{"refVdd":3.3,"cpi":1,"perClass":{"warp":1e-9}}`,
		`{"refVdd":3.3,"cpi":1,"perClass":{"alu":-1}}`,
	}
	for _, src := range cases {
		var tab EnergyTable
		if err := json.Unmarshal([]byte(src), &tab); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
	// Missing classes default to zero and still price programs.
	var sparse EnergyTable
	if err := json.Unmarshal([]byte(`{"refVdd":3.3,"cpi":1.2,"perClass":{"alu":1e-9}}`), &sparse); err != nil {
		t.Fatal(err)
	}
	var p Profile
	p.ByClass[ClassALU] = 10
	p.ByClass[ClassLoad] = 5
	if got := float64(sparse.ProgramEnergy(&p)); got != 10e-9 {
		t.Errorf("sparse table energy = %v", got)
	}
}
