package proc

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled instruction sequence.
type Program struct {
	// Instrs is the instruction memory.
	Instrs []Instr
	// Labels maps label name → instruction index.
	Labels map[string]int
}

// AsmError reports an assembly failure with its source line number.
type AsmError struct {
	Line int
	Msg  string
}

func (e *AsmError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

// Assemble translates assembly text into a Program.
//
// Syntax: one instruction per line; "label:" prefixes; ";" or "#" start
// comments; registers are r0..r15; immediates are decimal or 0x hex;
// memory operands are imm(rN); branch/jump/call targets are labels.
// A two-pass assembler resolves forward references.
func Assemble(src string) (*Program, error) {
	type pending struct {
		line  int
		index int
		label string
	}
	p := &Program{Labels: make(map[string]int)}
	var fixups []pending

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		lineNo := ln + 1
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Labels (possibly several, possibly followed by an instruction).
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !validLabel(label) {
				return nil, &AsmError{lineNo, fmt.Sprintf("invalid label %q", label)}
			}
			if _, dup := p.Labels[label]; dup {
				return nil, &AsmError{lineNo, fmt.Sprintf("duplicate label %q", label)}
			}
			p.Labels[label] = len(p.Instrs)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		mnemonic := strings.ToLower(fields[0])
		op, ok := opNames[mnemonic]
		if !ok {
			return nil, &AsmError{lineNo, fmt.Sprintf("unknown mnemonic %q", mnemonic)}
		}
		args := parseArgs(strings.TrimSpace(line[len(fields[0]):]))
		ins, labelRef, err := encode(op, args)
		if err != nil {
			return nil, &AsmError{lineNo, err.Error()}
		}
		if labelRef != "" {
			fixups = append(fixups, pending{lineNo, len(p.Instrs), labelRef})
		}
		p.Instrs = append(p.Instrs, ins)
	}
	for _, f := range fixups {
		target, ok := p.Labels[f.label]
		if !ok {
			return nil, &AsmError{f.line, fmt.Sprintf("undefined label %q", f.label)}
		}
		p.Instrs[f.index].Imm = int64(target)
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error, for the built-in
// programs.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			i > 0 && r >= '0' && r <= '9'
		if !ok {
			return false
		}
	}
	_, isReg := parseReg(s)
	return !isReg
}

func parseArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (int, bool) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, false
	}
	return n, true
}

func parseImm(s string) (int64, bool) {
	v, err := strconv.ParseInt(s, 0, 64)
	return v, err == nil
}

// parseMem parses "imm(rN)" or "(rN)".
func parseMem(s string) (imm int64, reg int, ok bool) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, false
	}
	immPart := strings.TrimSpace(s[:open])
	regPart := strings.TrimSpace(s[open+1 : len(s)-1])
	if immPart != "" {
		v, ok := parseImm(immPart)
		if !ok {
			return 0, 0, false
		}
		imm = v
	}
	r, ok := parseReg(regPart)
	if !ok {
		return 0, 0, false
	}
	return imm, r, true
}

// encode builds the Instr for an opcode and its textual arguments; a
// non-empty labelRef asks the caller to patch Imm in pass two.
func encode(op Op, args []string) (ins Instr, labelRef string, err error) {
	ins.Op = op
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d operand(s), got %d", op.Name(), n, len(args))
		}
		return nil
	}
	reg := func(s string) (int, error) {
		r, ok := parseReg(s)
		if !ok {
			return 0, fmt.Errorf("%s: bad register %q", op.Name(), s)
		}
		return r, nil
	}
	switch op {
	case OpNop, OpHalt, OpRet:
		err = need(0)
	case OpLi:
		if err = need(2); err != nil {
			return
		}
		if ins.Rd, err = reg(args[0]); err != nil {
			return
		}
		imm, ok := parseImm(args[1])
		if !ok {
			err = fmt.Errorf("li: bad immediate %q", args[1])
			return
		}
		ins.Imm = imm
	case OpMov:
		if err = need(2); err != nil {
			return
		}
		if ins.Rd, err = reg(args[0]); err != nil {
			return
		}
		ins.Ra, err = reg(args[1])
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpDiv:
		if err = need(3); err != nil {
			return
		}
		if ins.Rd, err = reg(args[0]); err != nil {
			return
		}
		if ins.Ra, err = reg(args[1]); err != nil {
			return
		}
		ins.Rb, err = reg(args[2])
	case OpAddi, OpShli, OpShri:
		if err = need(3); err != nil {
			return
		}
		if ins.Rd, err = reg(args[0]); err != nil {
			return
		}
		if ins.Ra, err = reg(args[1]); err != nil {
			return
		}
		imm, ok := parseImm(args[2])
		if !ok {
			err = fmt.Errorf("%s: bad immediate %q", op.Name(), args[2])
			return
		}
		ins.Imm = imm
	case OpLd, OpSt:
		if err = need(2); err != nil {
			return
		}
		var r int
		if r, err = reg(args[0]); err != nil {
			return
		}
		if op == OpLd {
			ins.Rd = r
		} else {
			ins.Ra = r // value register for stores lives in Ra...
		}
		imm, base, ok := parseMem(args[1])
		if !ok {
			err = fmt.Errorf("%s: bad memory operand %q", op.Name(), args[1])
			return
		}
		ins.Imm = imm
		if op == OpLd {
			ins.Ra = base
		} else {
			ins.Rb = base // ...and the base register in Rb.
		}
	case OpBeq, OpBne, OpBlt, OpBge:
		if err = need(3); err != nil {
			return
		}
		if ins.Ra, err = reg(args[0]); err != nil {
			return
		}
		if ins.Rb, err = reg(args[1]); err != nil {
			return
		}
		labelRef = args[2]
	case OpJmp, OpCall:
		if err = need(1); err != nil {
			return
		}
		labelRef = args[0]
	case OpPush:
		if err = need(1); err != nil {
			return
		}
		ins.Ra, err = reg(args[0])
	case OpPop:
		if err = need(1); err != nil {
			return
		}
		ins.Rd, err = reg(args[0])
	default:
		err = fmt.Errorf("unhandled opcode %v", op)
	}
	return
}
