// Package proc implements the paper's programmable-processor power
// models and the substrate they need.
//
// Two abstraction levels are provided, exactly as in the paper:
//
//   - EQ 11, the first-order data-sheet model P = α·P_AVG, where α ≤ 1
//     is the processor's activity factor (1 for a part with no
//     power-down capability);
//
//   - EQ 12, the instruction-level model E_T = Σᵢ Nᵢ·E_inst,ᵢ of Tiwari,
//     which requires a coded algorithm and a per-instruction energy
//     characterization, and which Ong and Yan used on a fictitious
//     processor to show orders-of-magnitude energy variance across
//     sorting algorithms.
//
// To feed EQ 12 with real instruction counts the package includes that
// fictitious processor: a 16-register load/store ISA, a two-pass
// assembler, an interpreting VM with a built-in profiler (the role SPIX
// and Pixie play in the paper), and a memory-trace hook that drives the
// Dinero-style simulator in package cachesim so cache misses can be
// priced back into the estimate.
package proc

import "fmt"

// Op is an instruction opcode.
type Op int

// Opcodes of the fictitious processor.
const (
	OpNop Op = iota
	OpHalt
	OpLi   // li  rd, imm      rd ← imm
	OpMov  // mov rd, ra       rd ← ra
	OpAdd  // add rd, ra, rb
	OpSub  // sub rd, ra, rb
	OpAnd  // and rd, ra, rb
	OpOr   // or  rd, ra, rb
	OpXor  // xor rd, ra, rb
	OpMul  // mul rd, ra, rb
	OpDiv  // div rd, ra, rb   (traps on zero divisor)
	OpAddi // addi rd, ra, imm
	OpShli // shli rd, ra, imm
	OpShri // shri rd, ra, imm (logical)
	OpLd   // ld rd, imm(ra)   rd ← mem[ra+imm]
	OpSt   // st rs, imm(ra)   mem[ra+imm] ← rs
	OpBeq  // beq ra, rb, label
	OpBne  // bne ra, rb, label
	OpBlt  // blt ra, rb, label
	OpBge  // bge ra, rb, label
	OpJmp  // jmp label
	OpCall // call label       push pc+1; pc ← label
	OpRet  // ret              pc ← pop
	OpPush // push ra
	OpPop  // pop rd
)

// NumRegs is the architectural register count.
const NumRegs = 16

// Class buckets opcodes for energy characterization: the granularity at
// which E_inst,ᵢ is measured (Tiwari characterizes per instruction; per
// class is the usual compromise and is what our table stores).
type Class int

// Instruction energy classes.
const (
	ClassNop Class = iota
	ClassALU
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassCallRet
	ClassStack
	numClasses
)

// String names the class for profiles and tables.
func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassDiv:
		return "div"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassJump:
		return "jump"
	case ClassCallRet:
		return "callret"
	case ClassStack:
		return "stack"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ClassOf maps opcodes to energy classes.
func ClassOf(op Op) Class {
	switch op {
	case OpNop, OpHalt:
		return ClassNop
	case OpLi, OpMov, OpAdd, OpSub, OpAnd, OpOr, OpXor, OpAddi, OpShli, OpShri:
		return ClassALU
	case OpMul:
		return ClassMul
	case OpDiv:
		return ClassDiv
	case OpLd:
		return ClassLoad
	case OpSt:
		return ClassStore
	case OpBeq, OpBne, OpBlt, OpBge:
		return ClassBranch
	case OpJmp:
		return ClassJump
	case OpCall, OpRet:
		return ClassCallRet
	case OpPush, OpPop:
		return ClassStack
	}
	return ClassNop
}

// opNames maps mnemonic → opcode for the assembler, and back for
// disassembly.
var opNames = map[string]Op{
	"nop": OpNop, "halt": OpHalt, "li": OpLi, "mov": OpMov,
	"add": OpAdd, "sub": OpSub, "and": OpAnd, "or": OpOr, "xor": OpXor,
	"mul": OpMul, "div": OpDiv, "addi": OpAddi, "shli": OpShli, "shri": OpShri,
	"ld": OpLd, "st": OpSt,
	"beq": OpBeq, "bne": OpBne, "blt": OpBlt, "bge": OpBge,
	"jmp": OpJmp, "call": OpCall, "ret": OpRet, "push": OpPush, "pop": OpPop,
}

// Name returns the mnemonic of an opcode.
func (op Op) Name() string {
	for n, o := range opNames {
		if o == op {
			return n
		}
	}
	return fmt.Sprintf("op%d", int(op))
}

// Instr is one decoded instruction.  Rd/Ra/Rb are register indices,
// Imm the immediate or branch/jump target (instruction index).
type Instr struct {
	Op         Op
	Rd, Ra, Rb int
	Imm        int64
}

func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpHalt, OpRet:
		return i.Op.Name()
	case OpLi:
		return fmt.Sprintf("li r%d, %d", i.Rd, i.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", i.Rd, i.Ra)
	case OpAddi, OpShli, OpShri:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op.Name(), i.Rd, i.Ra, i.Imm)
	case OpLd:
		return fmt.Sprintf("ld r%d, %d(r%d)", i.Rd, i.Imm, i.Ra)
	case OpSt:
		// Stores keep the value register in Ra and the base in Rb.
		return fmt.Sprintf("st r%d, %d(r%d)", i.Ra, i.Imm, i.Rb)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op.Name(), i.Ra, i.Rb, i.Imm)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s %d", i.Op.Name(), i.Imm)
	case OpPush:
		return fmt.Sprintf("push r%d", i.Ra)
	case OpPop:
		return fmt.Sprintf("pop r%d", i.Rd)
	}
	return fmt.Sprintf("%s r%d, r%d, r%d", i.Op.Name(), i.Rd, i.Ra, i.Rb)
}
