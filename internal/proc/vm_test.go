package proc

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string, mem int, setup func(*VM)) *VM {
	t.Helper()
	vm := NewVM(MustAssemble(src), mem)
	if setup != nil {
		setup(vm)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestALUOps(t *testing.T) {
	vm := run(t, `
 li r1, 6
 li r2, 7
 add r3, r1, r2
 sub r4, r2, r1
 mul r5, r1, r2
 div r6, r2, r1
 and r7, r1, r2
 or  r8, r1, r2
 xor r9, r1, r2
 addi r10, r1, 100
 shli r11, r1, 2
 shri r12, r11, 1
 mov r13, r12
 halt
`, 16, nil)
	want := map[int]int64{3: 13, 4: 1, 5: 42, 6: 1, 7: 6, 8: 7, 9: 1, 10: 106, 11: 24, 12: 12, 13: 12}
	for r, v := range want {
		if vm.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, vm.Regs[r], v)
		}
	}
	if !vm.Halted() {
		t.Error("should have halted")
	}
}

func TestMemoryOps(t *testing.T) {
	vm := run(t, `
 li r1, 3
 li r2, 1234
 st r2, 2(r1)   ; mem[5] = 1234
 ld r3, 5(r0)   ; r3 = mem[5]
 halt
`, 16, nil)
	if vm.Mem[5] != 1234 || vm.Regs[3] != 1234 {
		t.Errorf("mem[5]=%d r3=%d", vm.Mem[5], vm.Regs[3])
	}
	p := vm.Profile()
	if p.MemReads != 1 || p.MemWrites != 1 {
		t.Errorf("mem profile = %+v", p)
	}
}

func TestBranches(t *testing.T) {
	vm := run(t, `
 li r1, 5
 li r2, 5
 li r3, 9
 beq r1, r2, t1
 li r10, 111    ; skipped
t1: bne r1, r3, t2
 li r11, 111    ; skipped
t2: blt r1, r3, t3
 li r12, 111    ; skipped
t3: bge r3, r1, done
 li r13, 111    ; skipped
done: halt
`, 8, nil)
	for r := 10; r <= 13; r++ {
		if vm.Regs[r] != 0 {
			t.Errorf("branch failed to skip li r%d", r)
		}
	}
	if vm.Profile().TakenBranches != 4 {
		t.Errorf("taken = %d, want 4", vm.Profile().TakenBranches)
	}
}

func TestCallRetStack(t *testing.T) {
	vm := run(t, `
 li r1, 10
 call double
 call double
 halt
double: add r1, r1, r1
 ret
`, 64, nil)
	if vm.Regs[1] != 40 {
		t.Errorf("r1 = %d, want 40", vm.Regs[1])
	}
	if vm.SP != 64 {
		t.Errorf("stack not balanced: SP = %d", vm.SP)
	}
}

func TestPushPop(t *testing.T) {
	vm := run(t, `
 li r1, 7
 li r2, 8
 push r1
 push r2
 pop r3
 pop r4
 halt
`, 32, nil)
	if vm.Regs[3] != 8 || vm.Regs[4] != 7 {
		t.Errorf("LIFO violated: r3=%d r4=%d", vm.Regs[3], vm.Regs[4])
	}
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name, src string
		mem       int
		want      string
	}{
		{"divzero", "li r1, 1\nli r2, 0\ndiv r3, r1, r2\nhalt", 8, "division by zero"},
		{"loadrange", "li r1, 100\nld r2, 0(r1)\nhalt", 8, "load address"},
		{"storerange", "li r1, -1\nst r1, 0(r1)\nhalt", 8, "store address"},
		{"underflow", "pop r1\nhalt", 8, "stack underflow"},
		{"pcrange", "jmp off\noff:", 8, "program counter out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			vm := NewVM(MustAssemble(c.src), c.mem)
			err := vm.Run()
			if err == nil {
				t.Fatal("expected trap")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestStackOverflow(t *testing.T) {
	vm := NewVM(MustAssemble("loop: push r0\njmp loop"), 8)
	err := vm.Run()
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("err = %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	vm := NewVM(MustAssemble("loop: jmp loop"), 4)
	vm.MaxSteps = 1000
	err := vm.Run()
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("err = %v", err)
	}
}

func TestStepAfterHalt(t *testing.T) {
	vm := NewVM(MustAssemble("halt"), 4)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	done, err := vm.Step()
	if !done || err != nil {
		t.Error("Step after halt should be a no-op success")
	}
}

func TestTracerSeesAccesses(t *testing.T) {
	var trace []struct {
		addr  uint64
		write bool
	}
	vm := NewVM(MustAssemble("li r1, 9\nst r1, 3(r0)\nld r2, 3(r0)\nhalt"), 16)
	vm.Tracer = func(addr uint64, write bool) {
		trace = append(trace, struct {
			addr  uint64
			write bool
		}{addr, write})
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[0].addr != 3 || !trace[0].write || trace[1].write {
		t.Errorf("trace = %+v", trace)
	}
}

func TestProfileCounts(t *testing.T) {
	vm := run(t, "li r1, 1\nadd r2, r1, r1\nmul r3, r1, r1\nld r4, 0(r0)\nhalt", 8, nil)
	p := vm.Profile()
	if p.Total != 5 {
		t.Errorf("total = %d", p.Total)
	}
	if p.ByClass[ClassALU] != 2 || p.ByClass[ClassMul] != 1 || p.ByClass[ClassLoad] != 1 || p.ByClass[ClassNop] != 1 {
		t.Errorf("by class = %v", p.ByClass)
	}
	if p.ByOp[OpLi] != 1 || p.ByOp[OpAdd] != 1 {
		t.Errorf("by op = %v", p.ByOp)
	}
}

func TestProfileAdd(t *testing.T) {
	var a, b Profile
	a.ByOp = map[Op]uint64{OpAdd: 1}
	a.Total, a.MemReads = 3, 1
	a.ByClass[ClassALU] = 3
	b.ByOp = map[Op]uint64{OpAdd: 2, OpLd: 1}
	b.Total, b.MemReads, b.TakenBranches = 4, 2, 1
	b.ByClass[ClassALU] = 3
	a.Add(&b)
	if a.Total != 7 || a.MemReads != 3 || a.TakenBranches != 1 || a.ByOp[OpAdd] != 3 || a.ByClass[ClassALU] != 6 {
		t.Errorf("Add result = %+v", a)
	}
	var zero Profile
	zero.Add(&b) // nil ByOp path
	if zero.ByOp[OpLd] != 1 {
		t.Error("Add should lazily allocate ByOp")
	}
}

// The three sorting programs must agree with Go's sort on arbitrary
// inputs — the substrate correctness property everything else rests on.
func TestSortProgramsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, prog := range SortPrograms() {
		t.Run(prog.Name, func(t *testing.T) {
			for trial := 0; trial < 25; trial++ {
				n := rng.Intn(60)
				data := make([]int64, n)
				for i := range data {
					data[i] = int64(rng.Intn(2000) - 1000)
				}
				want := append([]int64(nil), data...)
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				_, got, err := RunSort(prog.Src, data)
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d: got[%d]=%d want %d", n, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestSortProgramsQuick(t *testing.T) {
	// Property-based: random byte slices, all three programs sort them.
	for _, prog := range SortPrograms() {
		src := prog.Src
		f := func(raw []byte) bool {
			if len(raw) > 64 {
				raw = raw[:64]
			}
			data := make([]int64, len(raw))
			for i, b := range raw {
				data[i] = int64(b) - 128
			}
			_, got, err := RunSort(src, data)
			if err != nil {
				return false
			}
			return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", prog.Name, err)
		}
	}
}

func TestSortedInputIsCheapForInsertion(t *testing.T) {
	// Insertion sort degenerates to O(n) on sorted input; bubble still
	// scans O(n²).  The instruction counts must reflect that.
	n := 200
	sorted := make([]int64, n)
	for i := range sorted {
		sorted[i] = int64(i)
	}
	insProf, _, err := RunSort(InsertionSortSrc, sorted)
	if err != nil {
		t.Fatal(err)
	}
	bubProf, _, err := RunSort(BubbleSortSrc, sorted)
	if err != nil {
		t.Fatal(err)
	}
	if insProf.Total*10 > bubProf.Total {
		t.Errorf("insertion (%d) should be ≫ cheaper than bubble (%d) on sorted input",
			insProf.Total, bubProf.Total)
	}
}

func TestQuicksortBeatsBubbleAtScale(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(rng.Intn(1 << 20))
	}
	qProf, _, err := RunSort(QuickSortSrc, data)
	if err != nil {
		t.Fatal(err)
	}
	bProf, _, err := RunSort(BubbleSortSrc, data)
	if err != nil {
		t.Fatal(err)
	}
	if qProf.Total*10 > bProf.Total {
		t.Errorf("quicksort (%d instrs) should be ≫ cheaper than bubble (%d) at n=%d",
			qProf.Total, bProf.Total, n)
	}
}
