package proc

import (
	"fmt"
)

// Profile is the instruction histogram a run produces: the Nᵢ of EQ 12.
type Profile struct {
	// ByClass counts executed instructions per energy class.
	ByClass [numClasses]uint64
	// ByOp counts executed instructions per opcode.
	ByOp map[Op]uint64
	// Total is the executed instruction count.
	Total uint64
	// TakenBranches counts taken conditional branches.
	TakenBranches uint64
	// MemReads and MemWrites count data memory traffic (including
	// stack operations).
	MemReads, MemWrites uint64
}

// Add accumulates another profile into p.
func (p *Profile) Add(q *Profile) {
	for i := range p.ByClass {
		p.ByClass[i] += q.ByClass[i]
	}
	if p.ByOp == nil {
		p.ByOp = make(map[Op]uint64)
	}
	for op, n := range q.ByOp {
		p.ByOp[op] += n
	}
	p.Total += q.Total
	p.TakenBranches += q.TakenBranches
	p.MemReads += q.MemReads
	p.MemWrites += q.MemWrites
}

// TrapError reports a runtime fault in the simulated program.
type TrapError struct {
	PC  int
	Msg string
}

func (e *TrapError) Error() string {
	return fmt.Sprintf("vm: trap at pc=%d: %s", e.PC, e.Msg)
}

// MemTracer observes every data-memory access; the cachesim package's
// Cache.Access matches this signature's intent and is adapted in
// energy.go.  Addresses are word indices.
type MemTracer func(addr uint64, write bool)

// VM interprets a Program against a word-addressed data memory.
type VM struct {
	// Regs is the architectural register file.
	Regs [NumRegs]int64
	// Mem is the data memory, in 64-bit words.  The stack grows down
	// from the top.
	Mem []int64
	// SP is the stack pointer (word index one above the live top).
	SP int
	// PC is the program counter (instruction index).
	PC int
	// Tracer, when set, observes data accesses.
	Tracer MemTracer
	// MaxSteps bounds execution; 0 means the DefaultMaxSteps.
	MaxSteps uint64

	prog    *Program
	profile Profile
	halted  bool
}

// DefaultMaxSteps bounds runaway programs.
const DefaultMaxSteps = 200_000_000

// NewVM prepares a VM with the given data memory size in words.
func NewVM(prog *Program, memWords int) *VM {
	vm := &VM{
		Mem:  make([]int64, memWords),
		SP:   memWords,
		prog: prog,
	}
	vm.profile.ByOp = make(map[Op]uint64)
	return vm
}

// Profile returns the run's instruction histogram.
func (vm *VM) Profile() *Profile { return &vm.profile }

// Halted reports whether the program executed halt.
func (vm *VM) Halted() bool { return vm.halted }

// Run executes until halt, a trap, or the step bound.
func (vm *VM) Run() error {
	limit := vm.MaxSteps
	if limit == 0 {
		limit = DefaultMaxSteps
	}
	for steps := uint64(0); ; steps++ {
		if steps >= limit {
			return &TrapError{vm.PC, fmt.Sprintf("step limit %d exceeded", limit)}
		}
		done, err := vm.Step()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// Step executes one instruction; it reports true after halt.
func (vm *VM) Step() (bool, error) {
	if vm.halted {
		return true, nil
	}
	if vm.PC < 0 || vm.PC >= len(vm.prog.Instrs) {
		return false, &TrapError{vm.PC, "program counter out of range"}
	}
	ins := vm.prog.Instrs[vm.PC]
	vm.profile.Total++
	vm.profile.ByClass[ClassOf(ins.Op)]++
	vm.profile.ByOp[ins.Op]++
	next := vm.PC + 1

	switch ins.Op {
	case OpNop:
	case OpHalt:
		vm.halted = true
		vm.PC = next
		return true, nil
	case OpLi:
		vm.Regs[ins.Rd] = ins.Imm
	case OpMov:
		vm.Regs[ins.Rd] = vm.Regs[ins.Ra]
	case OpAdd:
		vm.Regs[ins.Rd] = vm.Regs[ins.Ra] + vm.Regs[ins.Rb]
	case OpSub:
		vm.Regs[ins.Rd] = vm.Regs[ins.Ra] - vm.Regs[ins.Rb]
	case OpAnd:
		vm.Regs[ins.Rd] = vm.Regs[ins.Ra] & vm.Regs[ins.Rb]
	case OpOr:
		vm.Regs[ins.Rd] = vm.Regs[ins.Ra] | vm.Regs[ins.Rb]
	case OpXor:
		vm.Regs[ins.Rd] = vm.Regs[ins.Ra] ^ vm.Regs[ins.Rb]
	case OpMul:
		vm.Regs[ins.Rd] = vm.Regs[ins.Ra] * vm.Regs[ins.Rb]
	case OpDiv:
		if vm.Regs[ins.Rb] == 0 {
			return false, &TrapError{vm.PC, "division by zero"}
		}
		vm.Regs[ins.Rd] = vm.Regs[ins.Ra] / vm.Regs[ins.Rb]
	case OpAddi:
		vm.Regs[ins.Rd] = vm.Regs[ins.Ra] + ins.Imm
	case OpShli:
		vm.Regs[ins.Rd] = vm.Regs[ins.Ra] << uint(ins.Imm&63)
	case OpShri:
		vm.Regs[ins.Rd] = int64(uint64(vm.Regs[ins.Ra]) >> uint(ins.Imm&63))
	case OpLd:
		v, err := vm.load(vm.Regs[ins.Ra] + ins.Imm)
		if err != nil {
			return false, err
		}
		vm.Regs[ins.Rd] = v
	case OpSt:
		if err := vm.store(vm.Regs[ins.Rb]+ins.Imm, vm.Regs[ins.Ra]); err != nil {
			return false, err
		}
	case OpBeq:
		if vm.Regs[ins.Ra] == vm.Regs[ins.Rb] {
			vm.profile.TakenBranches++
			next = int(ins.Imm)
		}
	case OpBne:
		if vm.Regs[ins.Ra] != vm.Regs[ins.Rb] {
			vm.profile.TakenBranches++
			next = int(ins.Imm)
		}
	case OpBlt:
		if vm.Regs[ins.Ra] < vm.Regs[ins.Rb] {
			vm.profile.TakenBranches++
			next = int(ins.Imm)
		}
	case OpBge:
		if vm.Regs[ins.Ra] >= vm.Regs[ins.Rb] {
			vm.profile.TakenBranches++
			next = int(ins.Imm)
		}
	case OpJmp:
		next = int(ins.Imm)
	case OpCall:
		if err := vm.push(int64(next)); err != nil {
			return false, err
		}
		next = int(ins.Imm)
	case OpRet:
		v, err := vm.pop()
		if err != nil {
			return false, err
		}
		next = int(v)
	case OpPush:
		if err := vm.push(vm.Regs[ins.Ra]); err != nil {
			return false, err
		}
	case OpPop:
		v, err := vm.pop()
		if err != nil {
			return false, err
		}
		vm.Regs[ins.Rd] = v
	default:
		return false, &TrapError{vm.PC, fmt.Sprintf("illegal opcode %v", ins.Op)}
	}
	vm.PC = next
	return false, nil
}

func (vm *VM) load(addr int64) (int64, error) {
	if addr < 0 || addr >= int64(len(vm.Mem)) {
		return 0, &TrapError{vm.PC, fmt.Sprintf("load address %d out of range", addr)}
	}
	vm.profile.MemReads++
	if vm.Tracer != nil {
		vm.Tracer(uint64(addr), false)
	}
	return vm.Mem[addr], nil
}

func (vm *VM) store(addr, v int64) error {
	if addr < 0 || addr >= int64(len(vm.Mem)) {
		return &TrapError{vm.PC, fmt.Sprintf("store address %d out of range", addr)}
	}
	vm.profile.MemWrites++
	if vm.Tracer != nil {
		vm.Tracer(uint64(addr), true)
	}
	vm.Mem[addr] = v
	return nil
}

func (vm *VM) push(v int64) error {
	if vm.SP <= 0 {
		return &TrapError{vm.PC, "stack overflow"}
	}
	vm.SP--
	return vm.store(int64(vm.SP), v)
}

func (vm *VM) pop() (int64, error) {
	if vm.SP >= len(vm.Mem) {
		return 0, &TrapError{vm.PC, "stack underflow"}
	}
	v, err := vm.load(int64(vm.SP))
	if err != nil {
		return 0, err
	}
	vm.SP++
	return v, nil
}
