package proc

import (
	"strings"
	"testing"
)

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(`
; a comment
start:  li   r1, 42        # trailing comment
        addi r2, r1, -1
        ld   r3, 4(r2)
        st   r3, 0x10(r1)
        beq  r1, r2, start
        jmp  end
end:    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 7 {
		t.Fatalf("got %d instructions", len(p.Instrs))
	}
	if p.Labels["start"] != 0 || p.Labels["end"] != 6 {
		t.Errorf("labels = %v", p.Labels)
	}
	if p.Instrs[0].Op != OpLi || p.Instrs[0].Rd != 1 || p.Instrs[0].Imm != 42 {
		t.Errorf("li = %+v", p.Instrs[0])
	}
	if p.Instrs[1].Imm != -1 {
		t.Errorf("negative immediate = %+v", p.Instrs[1])
	}
	if ins := p.Instrs[2]; ins.Rd != 3 || ins.Ra != 2 || ins.Imm != 4 {
		t.Errorf("ld = %+v", ins)
	}
	if ins := p.Instrs[3]; ins.Ra != 3 || ins.Rb != 1 || ins.Imm != 16 {
		t.Errorf("st = %+v (hex imm, value in Ra, base in Rb)", ins)
	}
	if p.Instrs[4].Imm != 0 {
		t.Errorf("backward branch target = %+v", p.Instrs[4])
	}
	if p.Instrs[5].Imm != 6 {
		t.Errorf("forward jump target = %+v", p.Instrs[5])
	}
}

func TestAssembleLabelOnOwnLine(t *testing.T) {
	p, err := Assemble("loop:\n  jmp loop\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["loop"] != 0 || p.Instrs[0].Imm != 0 {
		t.Errorf("own-line label: %v %v", p.Labels, p.Instrs)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"frobnicate r1", "unknown mnemonic"},
		{"li r99, 1", "bad register"},
		{"li r1", "expects 2 operand"},
		{"li r1, xyz", "bad immediate"},
		{"ld r1, r2", "bad memory operand"},
		{"jmp nowhere", `undefined label "nowhere"`},
		{"dup: nop\ndup: nop", "duplicate label"},
		{"1bad: nop", "invalid label"},
		{"r1: nop", "invalid label"}, // register names can't be labels
		{"add r1, r2", "expects 3 operand"},
		{"ld r1, 4(r99)", "bad memory operand"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestAsmErrorLineNumbers(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus r1\n")
	ae, ok := err.(*AsmError)
	if !ok {
		t.Fatalf("want *AsmError, got %T", err)
	}
	if ae.Line != 3 {
		t.Errorf("line = %d, want 3", ae.Line)
	}
}

func TestInstrString(t *testing.T) {
	p := MustAssemble(`
 li r1, 5
 mov r2, r1
 add r3, r1, r2
 addi r4, r3, 7
 ld r5, 2(r4)
 st r5, 3(r4)
 beq r1, r2, zero
zero: jmp zero
 call zero
 push r1
 pop r2
 ret
 nop
 halt
`)
	wants := []string{
		"li r1, 5", "mov r2, r1", "add r3, r1, r2", "addi r4, r3, 7",
		"ld r5, 2(r4)", "st r5, 3(r4)", "beq r1, r2, 7", "jmp 7",
		"call 7", "push r1", "pop r2", "ret", "nop", "halt",
	}
	for i, want := range wants {
		if got := p.Instrs[i].String(); got != want {
			t.Errorf("Instrs[%d].String() = %q, want %q", i, got, want)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic")
		}
	}()
	MustAssemble("bogus")
}

func TestOpNameRoundTrip(t *testing.T) {
	for name, op := range opNames {
		if op.Name() != name {
			t.Errorf("Name(%v) = %q, want %q", op, op.Name(), name)
		}
	}
}

func TestClassOfCoversAllOps(t *testing.T) {
	for _, op := range opNames {
		c := ClassOf(op)
		if c < 0 || c >= numClasses {
			t.Errorf("ClassOf(%v) = %v out of range", op, c)
		}
	}
	if ClassOf(OpMul) != ClassMul || ClassOf(OpLd) != ClassLoad || ClassOf(OpSt) != ClassStore {
		t.Error("class mapping")
	}
	for c := ClassNop; c < numClasses; c++ {
		if strings.HasPrefix(c.String(), "Class(") {
			t.Errorf("class %d missing a name", c)
		}
	}
}
