package proc

// Built-in benchmark programs for the fictitious processor, following
// Ong and Yan's power-conscious software study (the paper's ref [15]):
// the same sorting task coded three ways, spanning O(n²) to O(n·log n),
// so the instruction-level model can expose the energy spread that the
// data-sheet model (EQ 11) is blind to.
//
// Calling convention for all programs: r0 = array base (word index),
// r1 = element count; the program sorts in place ascending and halts.

// BubbleSortSrc is the O(n²) exchange sort.
const BubbleSortSrc = `
; bubble sort: r0 = base, r1 = n
        li   r2, 0          ; i
outer:  addi r10, r1, -1    ; r10 = n-1
        bge  r2, r10, done
        sub  r11, r10, r2   ; r11 = n-1-i
        li   r3, 0          ; j
inner:  bge  r3, r11, iend
        add  r4, r0, r3
        ld   r5, 0(r4)      ; a[j]
        ld   r6, 1(r4)      ; a[j+1]
        bge  r6, r5, noswap
        st   r6, 0(r4)
        st   r5, 1(r4)
noswap: addi r3, r3, 1
        jmp  inner
iend:   addi r2, r2, 1
        jmp  outer
done:   halt
`

// InsertionSortSrc is the O(n²) sort with good behaviour on
// nearly-sorted data.
const InsertionSortSrc = `
; insertion sort: r0 = base, r1 = n
        li   r14, 0
        li   r2, 1          ; i
outer:  bge  r2, r1, done
        add  r4, r0, r2
        ld   r5, 0(r4)      ; key
        addi r3, r2, -1     ; j
inner:  blt  r3, r14, place
        add  r6, r0, r3
        ld   r7, 0(r6)
        bge  r5, r7, place  ; key >= a[j] -> insert after j
        st   r7, 1(r6)      ; a[j+1] = a[j]
        addi r3, r3, -1
        jmp  inner
place:  addi r3, r3, 1
        add  r6, r0, r3
        st   r5, 0(r6)
        addi r2, r2, 1
        jmp  outer
done:   halt
`

// QuickSortSrc is the O(n·log n) average-case recursive sort
// (Lomuto partition, pivot = last element).
const QuickSortSrc = `
; quicksort: r0 = base, r1 = n
main:   li   r10, 0
        addi r11, r1, -1
        mov  r1, r10        ; lo
        mov  r2, r11        ; hi
        call qsort
        halt

; qsort(r1 = lo, r2 = hi); clobbers r3..r12
qsort:  bge  r1, r2, qret
        ; partition around pivot = a[hi]
        add  r3, r0, r2
        ld   r4, 0(r3)      ; pivot
        addi r5, r1, -1     ; i = lo-1
        mov  r6, r1         ; j = lo
ploop:  bge  r6, r2, pend
        add  r7, r0, r6
        ld   r8, 0(r7)
        bge  r8, r4, pskip  ; a[j] >= pivot stays right
        addi r5, r5, 1
        add  r9, r0, r5
        ld   r12, 0(r9)
        st   r8, 0(r9)      ; swap a[i], a[j]
        st   r12, 0(r7)
pskip:  addi r6, r6, 1
        jmp  ploop
pend:   addi r5, r5, 1      ; p = i+1
        add  r7, r0, r5     ; swap a[p], a[hi]
        ld   r8, 0(r7)
        add  r9, r0, r2
        ld   r12, 0(r9)
        st   r12, 0(r7)
        st   r8, 0(r9)
        push r1             ; recurse left: qsort(lo, p-1)
        push r2
        push r5
        addi r2, r5, -1
        call qsort
        pop  r5
        pop  r2
        pop  r1
        push r1             ; recurse right: qsort(p+1, hi)
        push r2
        push r5
        addi r1, r5, 1
        call qsort
        pop  r5
        pop  r2
        pop  r1
qret:   ret
`

// ShellSortSrc is the gap-sequence sort: the O(n^1.3)-ish middle
// ground between the quadratic sorts and quicksort.
const ShellSortSrc = `
; shell sort (gap = n/2, n/4, ...): r0 = base, r1 = n
        li   r14, 0
        mov  r2, r1
        shri r2, r2, 1      ; gap = n/2
gaploop: beq r2, r14, done
        mov  r3, r2         ; i = gap
iloop:  bge  r3, r1, inext
        add  r4, r0, r3
        ld   r5, 0(r4)      ; temp = a[i]
        mov  r6, r3         ; j = i
jloop:  blt  r6, r2, place  ; j < gap
        sub  r7, r6, r2
        add  r8, r0, r7
        ld   r9, 0(r8)      ; a[j-gap]
        bge  r5, r9, place
        add  r10, r0, r6
        st   r9, 0(r10)     ; a[j] = a[j-gap]
        mov  r6, r7
        jmp  jloop
place:  add  r10, r0, r6
        st   r5, 0(r10)
        addi r3, r3, 1
        jmp  iloop
inext:  shri r2, r2, 1
        jmp  gaploop
done:   halt
`

// FIRSrc is a direct-form FIR filter: the multiply-heavy DSP inner
// loop whose energy is dominated by ClassMul — the workload the
// paper's multiplier model (EQ 20) exists for.
//
// Calling convention: r0 = x base, r1 = x length, r2 = h base,
// r3 = tap count, r4 = y base; y[n] = Σ h[k]·x[n−k] for n ≥ taps−1.
const FIRSrc = `
; FIR: r0 = x, r1 = nx, r2 = h, r3 = taps, r4 = y
        addi r5, r3, -1     ; n = taps-1
nloop:  bge  r5, r1, done
        li   r6, 0          ; acc
        li   r7, 0          ; k
kloop:  bge  r7, r3, kdone
        add  r8, r2, r7
        ld   r9, 0(r8)      ; h[k]
        sub  r10, r5, r7
        add  r11, r0, r10
        ld   r12, 0(r11)    ; x[n-k]
        mul  r13, r9, r12
        add  r6, r6, r13
        addi r7, r7, 1
        jmp  kloop
kdone:  add  r8, r4, r5
        st   r6, 0(r8)
        addi r5, r5, 1
        jmp  nloop
done:   halt
`

// SortPrograms maps algorithm name → source, in descending asymptotic
// cost — the order the Ong/Yan reproduction reports them.
func SortPrograms() []struct{ Name, Src string } {
	return []struct{ Name, Src string }{
		{"bubble", BubbleSortSrc},
		{"insertion", InsertionSortSrc},
		{"shellsort", ShellSortSrc},
		{"quicksort", QuickSortSrc},
	}
}

// RunFIR assembles and executes the FIR program over input x and taps
// h, returning the filtered output (aligned with x; the first
// len(h)-1 entries are untouched zeros) and the profile.
func RunFIR(x, h []int64) ([]int64, *Profile, error) {
	prog, err := Assemble(FIRSrc)
	if err != nil {
		return nil, nil, err
	}
	nx, taps := len(x), len(h)
	memWords := 2*nx + taps + 256
	vm := NewVM(prog, memWords)
	copy(vm.Mem, x)
	copy(vm.Mem[nx:], h)
	vm.Regs[0] = 0
	vm.Regs[1] = int64(nx)
	vm.Regs[2] = int64(nx)
	vm.Regs[3] = int64(taps)
	vm.Regs[4] = int64(nx + taps)
	if err := vm.Run(); err != nil {
		return nil, nil, err
	}
	out := make([]int64, nx)
	copy(out, vm.Mem[nx+taps:nx+taps+nx])
	return out, vm.Profile(), nil
}

// RunSort assembles and executes one of the sorting programs on the
// given data, returning the profile.  The data is laid out at word 0;
// the stack occupies the top of a memory sized for the recursion.
func RunSort(src string, data []int64) (*Profile, []int64, error) {
	prog, err := Assemble(src)
	if err != nil {
		return nil, nil, err
	}
	memWords := len(data) + 4096
	vm := NewVM(prog, memWords)
	copy(vm.Mem, data)
	vm.Regs[0] = 0
	vm.Regs[1] = int64(len(data))
	if err := vm.Run(); err != nil {
		return nil, nil, err
	}
	out := make([]int64, len(data))
	copy(out, vm.Mem[:len(data)])
	return vm.Profile(), out, nil
}
