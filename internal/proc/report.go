package proc

import (
	"fmt"
	"io"
	"sort"
)

// Profiler-style reporting: the role SPIX and Pixie play in the paper
// ("more detailed information can be obtained by using a coded
// algorithm and profilers").  Report renders an executed profile the
// way a profiler dumps it — per-class and per-opcode counts with
// shares — and Disassemble lists a program with labels resolved, so a
// user can see exactly what the energy table is pricing.

// Report writes the profile as a profiler listing.  When table is
// non-nil each class row also shows its EQ 12 energy share.
func (p *Profile) Report(w io.Writer, table *EnergyTable) {
	fmt.Fprintf(w, "instructions executed: %d\n", p.Total)
	fmt.Fprintf(w, "memory reads %d, writes %d, taken branches %d\n",
		p.MemReads, p.MemWrites, p.TakenBranches)
	var totalE float64
	if table != nil {
		totalE = float64(table.ProgramEnergy(p))
	}
	fmt.Fprintf(w, "%-10s %12s %8s", "class", "count", "share")
	if table != nil {
		fmt.Fprintf(w, " %12s %8s", "energy", "E-share")
	}
	fmt.Fprintln(w)
	for c := ClassNop; c < numClasses; c++ {
		n := p.ByClass[c]
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s %12d %7.2f%%", c, n, 100*float64(n)/float64(p.Total))
		if table != nil {
			e := float64(n) * float64(table.PerClass[c])
			fmt.Fprintf(w, " %12.4g %7.2f%%", e, 100*e/totalE)
		}
		fmt.Fprintln(w)
	}
	// Hot opcodes, descending.
	type opCount struct {
		op Op
		n  uint64
	}
	var ops []opCount
	for op, n := range p.ByOp {
		ops = append(ops, opCount{op, n})
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].n != ops[j].n {
			return ops[i].n > ops[j].n
		}
		return ops[i].op < ops[j].op
	})
	fmt.Fprintln(w, "hot opcodes:")
	for i, oc := range ops {
		if i >= 8 {
			break
		}
		fmt.Fprintf(w, "  %-6s %12d\n", oc.op.Name(), oc.n)
	}
}

// Disassemble lists the program with instruction indices and label
// names re-attached.
func (prog *Program) Disassemble(w io.Writer) {
	labelAt := make(map[int][]string)
	for name, idx := range prog.Labels {
		labelAt[idx] = append(labelAt[idx], name)
	}
	for idx := range labelAt {
		sort.Strings(labelAt[idx])
	}
	for i, ins := range prog.Instrs {
		for _, l := range labelAt[i] {
			fmt.Fprintf(w, "%s:\n", l)
		}
		fmt.Fprintf(w, "%4d    %s\n", i, prog.disasmInstr(ins))
	}
	// Labels pointing past the end (e.g. a trailing label).
	for _, l := range labelAt[len(prog.Instrs)] {
		fmt.Fprintf(w, "%s:\n", l)
	}
}

// disasmInstr renders one instruction, substituting label names for
// numeric branch targets when one matches.
func (prog *Program) disasmInstr(ins Instr) string {
	switch ins.Op {
	case OpBeq, OpBne, OpBlt, OpBge:
		if l := prog.labelFor(int(ins.Imm)); l != "" {
			return fmt.Sprintf("%s r%d, r%d, %s", ins.Op.Name(), ins.Ra, ins.Rb, l)
		}
	case OpJmp, OpCall:
		if l := prog.labelFor(int(ins.Imm)); l != "" {
			return fmt.Sprintf("%s %s", ins.Op.Name(), l)
		}
	}
	return ins.String()
}

func (prog *Program) labelFor(idx int) string {
	best := ""
	for name, at := range prog.Labels {
		if at == idx && (best == "" || name < best) {
			best = name
		}
	}
	return best
}
