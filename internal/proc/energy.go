package proc

import (
	"fmt"

	"powerplay/internal/cachesim"
	"powerplay/internal/core/model"
	"powerplay/internal/units"
)

// Datasheet is the EQ 11 first-order processor model: P = α·P_AVG, the
// average power from the part's data book (or measurement), scaled by
// the activity factor α ≤ 1 of the duty cycle the system imposes.  A
// processor with no power-down capability has α = 1.  Optional
// frequency/voltage derating factors support what-if exploration of
// parts offered at several operating points.
type Datasheet struct {
	// Name, Title, Doc identify the part.
	Name, Title, Doc string
	// PAvg is the data-book average power at the rated operating point.
	PAvg units.Watts
	// RatedVDD and RatedFreq are the data-book operating point; when a
	// sheet binds vdd/f away from them the model derates by
	// (vdd/rated)²·(f/rated), the first-order CMOS scaling.
	RatedVDD  units.Volts
	RatedFreq units.Hertz
}

// Info implements model.Model.
func (d *Datasheet) Info() model.Info {
	return model.Info{
		Name:  d.Name,
		Title: d.Title,
		Class: model.Processor,
		Doc:   d.Doc,
		Params: []model.Param{
			{Name: model.ParamVDD, Doc: "supply voltage", Unit: "V", Default: float64(d.RatedVDD), Min: 0.5, Max: 10},
			{Name: model.ParamFreq, Doc: "clock frequency", Unit: "Hz", Default: float64(d.RatedFreq), Min: 0, Max: 10e9},
			{Name: model.ParamTech, Doc: "feature size (unused for data-sheet parts)", Unit: "m", Default: 0, Min: 0, Max: 1e-5},
			{Name: "act", Doc: "activity factor α (1 = no power-down)", Default: 1, Min: 0, Max: 1},
		},
	}
}

// Evaluate implements model.Model.
func (d *Datasheet) Evaluate(p model.Params) (*model.Estimate, error) {
	power := float64(d.PAvg) * p["act"]
	vdd := p.VDD()
	if d.RatedVDD > 0 && vdd != d.RatedVDD {
		r := float64(vdd) / float64(d.RatedVDD)
		power *= r * r
	}
	if d.RatedFreq > 0 && p.Freq() != d.RatedFreq {
		power *= float64(p.Freq()) / float64(d.RatedFreq)
	}
	e := &model.Estimate{VDD: vdd}
	if vdd > 0 {
		e.AddStatic("EQ 11 average draw", units.Amps(power/float64(vdd)))
	}
	e.Note("EQ 11: P = α·P_AVG; computation mix, cache and branch behaviour not modeled")
	return e, nil
}

// EnergyTable holds E_inst per instruction class, characterized at a
// reference supply; energy scales with (VDD/ref)².
type EnergyTable struct {
	// PerClass is the energy per executed instruction of each class.
	PerClass [numClasses]units.Joules
	// MissPenalty is the additional energy per cache miss (line fill
	// from the next level).
	MissPenalty units.Joules
	// WritebackPenalty is the additional energy per dirty eviction.
	WritebackPenalty units.Joules
	// RefVDD is the characterization supply.
	RefVDD units.Volts
	// CPI maps executed instructions to cycles for the power
	// denominator (time = instructions·CPI/f).
	CPI float64
}

// DefaultEnergyTable is a plausible mid-90s embedded-core
// characterization (3.3 V): loads and stores cost roughly 2–3× an ALU
// operation, multiplies ~4×, divides ~8×, and a cache miss an order of
// magnitude more than a hit.
func DefaultEnergyTable() *EnergyTable {
	t := &EnergyTable{RefVDD: 3.3, CPI: 1.4,
		MissPenalty:      9 * units.NanoJoule,
		WritebackPenalty: 5 * units.NanoJoule,
	}
	t.PerClass[ClassNop] = 0.2 * units.NanoJoule
	t.PerClass[ClassALU] = 0.4 * units.NanoJoule
	t.PerClass[ClassMul] = 1.6 * units.NanoJoule
	t.PerClass[ClassDiv] = 3.2 * units.NanoJoule
	t.PerClass[ClassLoad] = 1.1 * units.NanoJoule
	t.PerClass[ClassStore] = 0.9 * units.NanoJoule
	t.PerClass[ClassBranch] = 0.5 * units.NanoJoule
	t.PerClass[ClassJump] = 0.4 * units.NanoJoule
	t.PerClass[ClassCallRet] = 1.3 * units.NanoJoule
	t.PerClass[ClassStack] = 1.0 * units.NanoJoule
	return t
}

// ProgramEnergy evaluates EQ 12 over a profile: E_T = Σᵢ Nᵢ·E_inst,ᵢ at
// the table's reference supply.
func (t *EnergyTable) ProgramEnergy(p *Profile) units.Joules {
	var e float64
	for c, n := range p.ByClass {
		e += float64(n) * float64(t.PerClass[c])
	}
	return units.Joules(e)
}

// RefinedEnergy adds the cache-miss and writeback penalties the paper
// says EQ 12 alone neglects.
func (t *EnergyTable) RefinedEnergy(p *Profile, cs cachesim.Stats) units.Joules {
	base := float64(t.ProgramEnergy(p))
	base += float64(cs.Misses()) * float64(t.MissPenalty)
	base += float64(cs.Writebacks) * float64(t.WritebackPenalty)
	return units.Joules(base)
}

// ScaleVDD returns the energy rescaled from the table's reference
// supply to vdd (quadratic, full-swing CMOS).
func (t *EnergyTable) ScaleVDD(e units.Joules, vdd units.Volts) units.Joules {
	if t.RefVDD <= 0 || vdd <= 0 {
		return e
	}
	r := float64(vdd) / float64(t.RefVDD)
	return units.Joules(float64(e) * r * r)
}

// InstructionModel is the EQ 12 library model: a processor whose energy
// is the profile-weighted sum of instruction energies, with optional
// cache refinement.  It is constructed from a concrete run (profile +
// cache stats), then behaves like any other sheet model: power is
// E_T·(vdd/ref)² / (cycles/f).
type InstructionModel struct {
	// Name, Title, Doc identify the model.
	Name, Title, Doc string
	// Table is the per-class characterization.
	Table *EnergyTable
	// Prof is the profiled instruction mix.
	Prof *Profile
	// CacheStats, when non-nil, adds the miss penalties.
	CacheStats *cachesim.Stats
}

// Info implements model.Model.
func (m *InstructionModel) Info() model.Info {
	return model.Info{
		Name:  m.Name,
		Title: m.Title,
		Class: model.Processor,
		Doc:   m.Doc,
		Params: []model.Param{
			{Name: model.ParamVDD, Doc: "supply voltage", Unit: "V", Default: float64(m.Table.RefVDD), Min: 0.5, Max: 10},
			{Name: model.ParamFreq, Doc: "clock frequency", Unit: "Hz", Default: 20e6, Min: 1, Max: 10e9},
			{Name: model.ParamTech, Doc: "feature size (characterized part)", Unit: "m", Default: 0, Min: 0, Max: 1e-5},
		},
	}
}

// Evaluate implements model.Model.
func (m *InstructionModel) Evaluate(p model.Params) (*model.Estimate, error) {
	if m.Table == nil || m.Prof == nil {
		return nil, fmt.Errorf("instruction model %q missing table or profile", m.Name)
	}
	var energy units.Joules
	if m.CacheStats != nil {
		energy = m.Table.RefinedEnergy(m.Prof, *m.CacheStats)
	} else {
		energy = m.Table.ProgramEnergy(m.Prof)
	}
	vdd := p.VDD()
	energy = m.Table.ScaleVDD(energy, vdd)
	cycles := float64(m.Prof.Total) * m.Table.CPI
	if m.CacheStats != nil {
		// A miss also stalls the pipeline; 10 cycles per miss.
		cycles += 10 * float64(m.CacheStats.Misses())
	}
	seconds := cycles / float64(p.Freq())
	e := &model.Estimate{VDD: vdd}
	if seconds > 0 && vdd > 0 {
		e.AddStatic("EQ 12 program draw", units.Amps(float64(energy)/seconds/float64(vdd)))
	}
	e.Delay = units.Seconds(seconds)
	e.Note("EQ 12: %d instructions, E_T = %s at %s", m.Prof.Total, energy, vdd)
	return e, nil
}

// SortEnergy is one row of the Ong/Yan reproduction: algorithm name,
// instruction count and EQ 12 energy, with and without cache
// refinement.
type SortEnergy struct {
	// Algorithm is the program name.
	Algorithm string
	// Instructions is the executed count.
	Instructions uint64
	// Energy is the flat EQ 12 energy.
	Energy units.Joules
	// RefinedEnergyJ includes cache penalties.
	RefinedEnergyJ units.Joules
	// MissRate is the data-cache miss rate observed.
	MissRate float64
}

// MeasureSorts runs every built-in sorting program on a copy of data,
// through a data cache of the given configuration, and prices the runs
// with the table.  It verifies each program actually sorted its input.
func MeasureSorts(data []int64, table *EnergyTable, cacheCfg cachesim.Config) ([]SortEnergy, error) {
	var out []SortEnergy
	for _, prog := range SortPrograms() {
		c, err := cachesim.New(cacheCfg)
		if err != nil {
			return nil, err
		}
		asm, err := Assemble(prog.Src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", prog.Name, err)
		}
		memWords := len(data) + 4096
		vm := NewVM(asm, memWords)
		copy(vm.Mem, data)
		vm.Regs[0] = 0
		vm.Regs[1] = int64(len(data))
		vm.Tracer = func(addr uint64, write bool) {
			c.Access(addr*8, write) // words are 8 bytes
		}
		if err := vm.Run(); err != nil {
			return nil, fmt.Errorf("%s: %w", prog.Name, err)
		}
		for i := 1; i < len(data); i++ {
			if vm.Mem[i-1] > vm.Mem[i] {
				return nil, fmt.Errorf("%s: output not sorted at %d", prog.Name, i)
			}
		}
		prof := vm.Profile()
		out = append(out, SortEnergy{
			Algorithm:      prog.Name,
			Instructions:   prof.Total,
			Energy:         table.ProgramEnergy(prof),
			RefinedEnergyJ: table.RefinedEnergy(prof, c.Stats()),
			MissRate:       c.Stats().MissRate(),
		})
	}
	return out, nil
}

var (
	_ model.Model = (*Datasheet)(nil)
	_ model.Model = (*InstructionModel)(nil)
)
