package proc

import (
	"math/rand"
	"sort"
	"testing"
)

func TestShellSortCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(120)
		data := make([]int64, n)
		for i := range data {
			data[i] = int64(rng.Intn(4000) - 2000)
		}
		_, got, err := RunSort(ShellSortSrc, data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("n=%d: not sorted: %v", n, got)
		}
	}
}

func TestShellSortComplexityBetweenNeighbours(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]int64, 600)
	for i := range data {
		data[i] = int64(rng.Intn(1 << 16))
	}
	shell, _, err := RunSort(ShellSortSrc, data)
	_ = shell
	if err != nil {
		t.Fatal(err)
	}
	pShell, _, _ := RunSort(ShellSortSrc, data)
	pBubble, _, _ := RunSort(BubbleSortSrc, data)
	pQuick, _, _ := RunSort(QuickSortSrc, data)
	if !(pShell.Total < pBubble.Total && pShell.Total > pQuick.Total) {
		t.Errorf("instruction counts: bubble %d, shell %d, quick %d",
			pBubble.Total, pShell.Total, pQuick.Total)
	}
}

func TestFIRMatchesGoReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := make([]int64, 200)
	for i := range x {
		x[i] = int64(rng.Intn(200) - 100)
	}
	h := []int64{3, -1, 4, 1, -5}
	got, prof, err := RunFIR(x, h)
	if err != nil {
		t.Fatal(err)
	}
	for n := len(h) - 1; n < len(x); n++ {
		var want int64
		for k := range h {
			want += h[k] * x[n-k]
		}
		if got[n] != want {
			t.Fatalf("y[%d] = %d, want %d", n, got[n], want)
		}
	}
	// The first taps-1 outputs are not computed.
	for n := 0; n < len(h)-1; n++ {
		if got[n] != 0 {
			t.Errorf("y[%d] should be untouched", n)
		}
	}
	// One multiply per (n, k) pair.
	wantMuls := uint64((len(x) - len(h) + 1) * len(h))
	if prof.ByClass[ClassMul] != wantMuls {
		t.Errorf("muls = %d, want %d", prof.ByClass[ClassMul], wantMuls)
	}
}

func TestFIRIsMultiplyHeavy(t *testing.T) {
	// The DSP point: the FIR kernel spends a far larger energy fraction
	// in the multiplier class than control-style code (quicksort) does —
	// the workload contrast EQ 20's multiplier model exists for.
	x := make([]int64, 400)
	for i := range x {
		x[i] = int64(i % 97)
	}
	h := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	_, firProf, err := RunFIR(x, h)
	if err != nil {
		t.Fatal(err)
	}
	sortProf, _, err := RunSort(QuickSortSrc, x)
	if err != nil {
		t.Fatal(err)
	}
	tab := DefaultEnergyTable()
	mulFrac := func(p *Profile) float64 {
		mulE := float64(p.ByClass[ClassMul]) * float64(tab.PerClass[ClassMul])
		return mulE / float64(tab.ProgramEnergy(p))
	}
	fir, srt := mulFrac(firProf), mulFrac(sortProf)
	if fir < 0.15 {
		t.Errorf("FIR multiply energy fraction = %.2f, want substantial", fir)
	}
	if fir < 10*srt {
		t.Errorf("FIR (%.3f) should be ≫ more multiply-heavy than quicksort (%.3f)", fir, srt)
	}
}

func TestSortProgramsIncludesShell(t *testing.T) {
	names := map[string]bool{}
	for _, p := range SortPrograms() {
		names[p.Name] = true
	}
	for _, want := range []string{"bubble", "insertion", "shellsort", "quicksort"} {
		if !names[want] {
			t.Errorf("missing program %q", want)
		}
	}
}
