package proc

import (
	"encoding/json"
	"fmt"

	"powerplay/internal/units"
)

// Energy tables travel as JSON, the same way cell libraries do: a
// processor characterized at one site prices algorithms at another.
// The wire format keys energies by class name so files stay readable
// and robust against class reordering.

type tableJSON struct {
	RefVDD           float64            `json:"refVdd"`
	CPI              float64            `json:"cpi"`
	MissPenalty      float64            `json:"missPenalty"`
	WritebackPenalty float64            `json:"writebackPenalty"`
	PerClass         map[string]float64 `json:"perClass"`
}

// MarshalJSON implements json.Marshaler.
func (t *EnergyTable) MarshalJSON() ([]byte, error) {
	out := tableJSON{
		RefVDD:           float64(t.RefVDD),
		CPI:              t.CPI,
		MissPenalty:      float64(t.MissPenalty),
		WritebackPenalty: float64(t.WritebackPenalty),
		PerClass:         make(map[string]float64, int(numClasses)),
	}
	for c := ClassNop; c < numClasses; c++ {
		out.PerClass[c.String()] = float64(t.PerClass[c])
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.  Unknown class names are
// rejected (a typo would silently zero an energy otherwise); missing
// classes default to zero.
func (t *EnergyTable) UnmarshalJSON(data []byte) error {
	var in tableJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("proc: bad energy table JSON: %w", err)
	}
	if in.RefVDD <= 0 {
		return fmt.Errorf("proc: energy table needs a positive refVdd")
	}
	if in.CPI <= 0 {
		return fmt.Errorf("proc: energy table needs a positive cpi")
	}
	byName := make(map[string]Class, int(numClasses))
	for c := ClassNop; c < numClasses; c++ {
		byName[c.String()] = c
	}
	out := EnergyTable{
		RefVDD:           units.Volts(in.RefVDD),
		CPI:              in.CPI,
		MissPenalty:      units.Joules(in.MissPenalty),
		WritebackPenalty: units.Joules(in.WritebackPenalty),
	}
	for name, e := range in.PerClass {
		c, ok := byName[name]
		if !ok {
			return fmt.Errorf("proc: unknown instruction class %q in energy table", name)
		}
		if e < 0 {
			return fmt.Errorf("proc: class %q has negative energy %g", name, e)
		}
		out.PerClass[c] = units.Joules(e)
	}
	*t = out
	return nil
}
