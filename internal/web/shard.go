package web

// The backend half of horizontal sharding (internal/shard holds the
// router half and the protocol).  A backend configured with
// Config.ShardID/ShardCount owns exactly the users the rendezvous hash
// assigns to its shard: it recovers only their journals at boot
// (~1/N of the corpus), refuses the rest with a 421 ShardRedirect that
// names the real owner, and stamps every response with its shard index
// so the fleet is debuggable from curl alone.  Site-scope state (user
// defined models) is replicated to every backend by the router through
// apiShardModelPut below, so site reads never cross shards.

import (
	"net/http"
	"strconv"

	"powerplay/internal/shard"
)

// Owns reports whether this server is the authority for the named
// user.  An unsharded server owns everyone.
func (s *Server) Owns(user string) bool {
	if s.ring == nil {
		return true
	}
	return s.ring.Pick(user) == s.cfg.ShardID
}

// shardID spells the server's shard index for the response header.
func (s *Server) shardID() string { return strconv.Itoa(s.cfg.ShardID) }

// shardRedirect answers a request for a user this shard does not own:
// 421 Misdirected Request, the owner and shard count in the protocol
// headers, and the v1 error envelope in the body.  The router consumes
// the 421 and retries against the owner; a direct client sees an
// explicit, actionable refusal instead of a silently empty account.
func (s *Server) shardRedirect(w http.ResponseWriter, r *http.Request, user string) {
	owner := s.ring.Pick(user)
	w.Header().Set(shard.HeaderOwner, strconv.Itoa(owner))
	w.Header().Set(shard.HeaderCount, strconv.Itoa(s.cfg.ShardCount))
	w.Header().Set(shard.HeaderShard, s.shardID())
	apiFail(w, r, shard.StatusMisdirected, shard.CodeShardRedirect,
		"user "+user+" belongs to shard "+strconv.Itoa(owner))
}

// misdirected reports (and answers) a request routed to the wrong
// shard, keyed the same way the router keys its routing decision: the
// powerplay_user cookie.  Handlers that resolve the user another way
// (the login form) make their own check.  No-op on unsharded servers.
func (s *Server) misdirected(w http.ResponseWriter, r *http.Request) bool {
	if s.ring == nil {
		return false
	}
	c, err := r.Cookie(shard.UserCookie)
	if err != nil || c.Value == "" || !validUserName(c.Value) || s.Owns(c.Value) {
		return false
	}
	s.shardRedirect(w, r, c.Value)
	return true
}

// shardHeaderMiddleware stamps every response with this backend's
// shard index.
func shardHeaderMiddleware(next http.Handler, id string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(shard.HeaderShard, id)
		next.ServeHTTP(w, r)
	})
}

// apiShardModelPut is the internal replication endpoint the router
// fans site-model definitions out to: the same form POST /models/new
// accepts, guarded by the site key (apiAuth) rather than a session.
// Registering is idempotent — replaying a replication is harmless —
// and each backend journals the model into its own site scope, so a
// restarted backend recovers the model without the router's help.
func (s *Server) apiShardModelPut(w http.ResponseWriter, r *http.Request) {
	q, err := equationFromForm(r)
	if err != nil {
		apiFail(w, r, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if err := s.checkModelOverwrite(q.Name); err != nil {
		apiFail(w, r, http.StatusUnprocessableEntity, codeInvalidParams, err.Error())
		return
	}
	if err := s.persistSiteModel(q); err != nil {
		apiFail(w, r, http.StatusUnprocessableEntity, codeInvalidParams, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "model": q.Name})
}
