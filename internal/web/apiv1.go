package web

// The versioned JSON API surface.
//
// Every remote-protocol endpoint lives under /api/v1/...; the original
// bare /api/... paths remain as thin aliases that answer identically
// but advertise their replacement with a Deprecation header, so an old
// consumer keeps working while telling its operator where to move.
// Error responses on the versioned surface (and, since they share the
// handlers, on the aliases) use one uniform JSON envelope:
//
//	{"error": {"code": "...", "message": "...", "request_id": "..."}}
//
// The code is a small closed enumeration a program can switch on, the
// message is for humans, and the request_id matches the X-Request-ID
// response header and the server's log lines, so a failing client can
// hand its operator something grep-able.

import (
	"net/http"
	"strings"
	"time"

	"powerplay/internal/obs"
	"powerplay/internal/shard"
	"powerplay/internal/store"
)

// errorDetail is the body of the uniform API error envelope.
type errorDetail struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// errorEnvelope is the uniform API error response.
type errorEnvelope struct {
	Error errorDetail `json:"error"`
}

// API error codes: the closed set clients may switch on.  Adding a code
// is a compatible change; repurposing one is not.
const (
	codeUnauthorized  = "unauthorized"   // missing or wrong site key
	codeNotFound      = "not_found"      // no such model
	codeBadRequest    = "bad_request"    // unparseable request payload
	codeInvalidParams = "invalid_params" // the model rejected the evaluation
	codeInternal      = "internal"       // server-side failure
)

// apiFail writes the uniform error envelope with the request's ID.
func apiFail(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	writeJSON(w, status, errorEnvelope{Error: errorDetail{
		Code:      code,
		Message:   msg,
		RequestID: obs.RequestID(r.Context()),
	}})
}

// apiRoutes registers the JSON API: the versioned /api/v1 surface, the
// deprecated bare aliases, and the unauthenticated probes (/metrics and
// the health endpoint).  handle is Server.Handler's instrumented
// registrar, so every route lands in the per-route metrics under its
// literal pattern.
func (s *Server) apiRoutes(handle func(pattern string, h http.HandlerFunc)) {
	// The versioned surface.
	handle("GET /api/v1/models", s.apiAuth(s.apiModels))
	handle("POST /api/v1/models", s.apiAuth(s.apiModelPublish))
	handle("GET /api/v1/models/{name...}", s.apiAuth(s.apiModelInfo))
	handle("POST /api/v1/eval", s.apiAuth(s.apiEval))
	handle("GET /api/v1/equations", s.apiAuth(s.apiEquations))
	// The model repository (see registry.go / federation.go): the
	// content-addressed catalog, immutable versioned bodies, and mount
	// management over JSON.
	handle("GET /api/v1/registry", s.apiAuth(s.apiRegistry))
	handle("GET /api/v1/registry/models/{ref...}", s.apiAuth(s.apiRegistryModel))
	handle("GET /api/v1/mounts", s.apiAuth(s.apiMounts))
	handle("POST /api/v1/mounts", s.apiAuth(s.apiMountCreate))
	handle("DELETE /api/v1/mounts/{prefix...}", s.apiAuth(s.apiMountDelete))
	// Internal shard replication (router fan-out of site models; see
	// shard.go).  Site-key guarded like the rest of the machine API.
	handle("POST /api/v1/shard/model", s.apiAuth(s.apiShardModelPut))
	// Probes: no site key, so load balancers and scrapers work against
	// password-restricted sites.  Neither exposes design data.
	handle("GET /api/v1/healthz", s.apiHealthz)
	handle("GET /metrics", obs.Handler().ServeHTTP)
	// Deprecated aliases for the original unversioned paths.
	handle("GET /api/models", deprecated(s.apiAuth(s.apiModels)))
	handle("GET /api/models/{name...}", deprecated(s.apiAuth(s.apiModelInfo)))
	handle("POST /api/eval", deprecated(s.apiAuth(s.apiEval)))
	handle("GET /api/equations", deprecated(s.apiAuth(s.apiEquations)))
}

// aliasSunset is the announced removal date of the unversioned /api/...
// aliases, advertised on every alias response (RFC 8594).
const aliasSunset = "Mon, 01 Jun 2026 00:00:00 GMT"

// deprecated wraps a legacy /api/... alias: same handler, same answer,
// plus the RFC 9745 Deprecation header, the RFC 8594 Sunset date, and
// a successor-version link pointing at the /api/v1 path the caller
// should move to.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		successor := "/api/v1" + strings.TrimPrefix(r.URL.Path, "/api")
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", aliasSunset)
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

// healthRemote summarizes one mounted publisher for the health page.
type healthRemote struct {
	BaseURL string `json:"base_url"`
	Breaker string `json:"breaker"`
	Models  int    `json:"models"`
}

// healthDurability reports the journal store's state: the fsync
// policy in force, how many records a crash right now would replay
// (journal lag), and what the last boot's recovery did.
type healthDurability struct {
	Policy            string               `json:"policy"`
	JournalLagRecords int                  `json:"journal_lag_records"`
	LastRecovery      *store.RecoveryStats `json:"last_recovery,omitempty"`
}

// healthShard is the shard identity block: which slice of the user
// corpus this backend owns.  The router's healthz has its own shape
// (role "router" plus per-backend breaker states — see
// internal/shard).
type healthShard struct {
	ShardID    int    `json:"shard_id"`
	ShardCount int    `json:"shard_count"`
	Role       string `json:"role"`
}

// healthResponse is the GET /api/v1/healthz body: alive-ness plus the
// one-glance numbers an operator checks first (uptime, load, cache
// population, the state of every mounted publisher's breaker, and —
// on a durable site — the journal store's lag and recovery stats).
type healthResponse struct {
	Status            string            `json:"status"`
	UptimeSeconds     float64           `json:"uptime_seconds"`
	InflightRequests  int               `json:"inflight_requests"`
	Models            int               `json:"models"`
	ReadCacheEntries  int               `json:"read_cache_entries"`
	SweepCacheEntries int               `json:"sweep_cache_entries"`
	Shard             *healthShard      `json:"shard,omitempty"`
	Remotes           []healthRemote    `json:"remotes,omitempty"`
	Durability        *healthDurability `json:"durability,omitempty"`
	// Repo lists the repository subscriptions this site mirrors: per
	// prefix, the publisher, its breaker, and the last sync pass.
	Repo []healthRepoSub `json:"repo,omitempty"`
}

// apiHealthz is the liveness endpoint: it answers 200 whenever the
// process serves requests at all, and the body carries the summary
// (degraded publishers show as open breakers, not as a failing probe).
func (s *Server) apiHealthz(w http.ResponseWriter, r *http.Request) {
	names := s.registry.Names()
	// One entry per distinct Remote, in first-seen (sorted-name) order.
	seen := make(map[*Remote]*healthRemote)
	var order []*healthRemote
	for _, name := range names {
		m, ok := s.registry.Lookup(name)
		if !ok {
			continue
		}
		pm, isProxy := m.(*proxyModel)
		if !isProxy {
			continue
		}
		hr := seen[pm.remote]
		if hr == nil {
			hr = &healthRemote{
				BaseURL: pm.remote.BaseURL,
				Breaker: pm.remote.BreakerState().String(),
			}
			seen[pm.remote] = hr
			order = append(order, hr)
		}
		hr.Models++
	}
	s.cacheMu.Lock()
	readN := s.readCaches.len()
	s.cacheMu.Unlock()
	s.sweepMu.Lock()
	sweepN := s.sweepCaches.len()
	s.sweepMu.Unlock()
	resp := healthResponse{
		Status:            "ok",
		UptimeSeconds:     time.Since(s.started).Seconds(),
		InflightRequests:  int(httpInflight.Value()),
		Models:            len(names),
		ReadCacheEntries:  readN,
		SweepCacheEntries: sweepN,
	}
	if s.cfg.ShardCount > 0 {
		resp.Shard = &healthShard{
			ShardID:    s.cfg.ShardID,
			ShardCount: s.cfg.ShardCount,
			Role:       shard.RoleBackend,
		}
	}
	if s.store != nil {
		resp.Durability = &healthDurability{
			Policy:            s.store.Policy().String(),
			JournalLagRecords: s.store.Lag(),
			LastRecovery:      s.lastRecovery,
		}
	}
	for _, hr := range order {
		resp.Remotes = append(resp.Remotes, *hr)
	}
	resp.Repo = s.repoHealth()
	writeJSON(w, http.StatusOK, resp)
}
