// Package web is PowerPlay's World Wide Web application: the access
// mechanism that makes the framework universally available.
//
// The 1996 implementation was HTML pages plus Perl CGI scripts; this
// one is Go's net/http and html/template, but every interaction from
// the paper's "PowerPlay Implementation" section is present:
//
//   - user identification on first access, with per-user defaults and
//     designs persisted on the server's local file system;
//   - a menu page linking the library, the user's designs, the
//     model-definition form, and the tutorials;
//   - per-cell input pages (Figure 4) with virtually-instantaneous
//     feedback and a save-to-spreadsheet action;
//   - design spreadsheets (Figures 2 and 5) whose Play button
//     recalculates the whole hierarchy, with every subcircuit
//     hyperlinked to its own page and documentation;
//   - an interactive page for defining new models from equations; and
//   - the HTTP model-access protocol of Figures 6–7, through which a
//     PowerPlay site serves its models to remote sites and mounts
//     remote libraries into its own namespace, with optional
//     password restriction.
package web

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"powerplay/internal/core/explore"
	"powerplay/internal/core/model"
	"powerplay/internal/core/sheet"
	"powerplay/internal/library"
	"powerplay/internal/shard"
	"powerplay/internal/store"
)

// Config parameterizes a server.
type Config struct {
	// SiteName labels pages ("Berkeley", "Motorola").
	SiteName string
	// DataDir persists users, designs and models; empty keeps
	// everything in memory (tests, demos).
	DataDir string
	// Password, when non-empty, restricts both the HTML login and the
	// remote model API ("PowerPlay can provide password-restricted
	// access").
	Password string
	// SweepTimeout caps one exploration-page sweep request; zero or
	// negative selects the 30 s default.  Sites mounting slow remote
	// models may need more; batch test rigs may want much less.
	SweepTimeout time.Duration
	// SweepChunk sets the exploration engine's chunk size — how many
	// consecutive sweep points a worker prices per columnar batch.
	// Zero selects the engine's default (explore.DefaultChunkSize);
	// 1 disables columnar evaluation, pricing every point through the
	// scalar path (a debugging aid, never a production setting).
	SweepChunk int
	// RequestTimeout is the deadline given to every request's context;
	// zero selects a 2 min default (above any sweep budget), negative
	// disables the deadline.
	RequestTimeout time.Duration
	// MaxBodyBytes caps any request body; zero selects a 4 MiB
	// default, negative disables the cap.
	MaxBodyBytes int64
	// CacheEntries bounds each of the server's read-path caches (the
	// per-design sweep point caches and the memoized sheet
	// results/pages), in entries; zero selects the 256 default,
	// negative selects the minimum of one entry.
	CacheEntries int
	// DisableReadCache turns off the sheet read-path memoization
	// (results, rendered pages, ETags), making every GET re-evaluate
	// and re-render: the measured baseline for the serve benchmarks,
	// never something a production site wants.
	DisableReadCache bool
	// DisableIncremental makes every sheet evaluation a from-scratch
	// full recompute instead of going through the incremental Play
	// engine (sheet.Incremental) — the pinned fallback behind the
	// -incremental=false flag.  Results are bit-identical either way;
	// only the cost model changes.
	DisableIncremental bool
	// Durability selects the journal fsync policy when DataDir is set:
	// "always" (fsync per mutation), "interval" (background fsync, the
	// default), or "never" (leave it to the OS).  See store.ParsePolicy.
	Durability string
	// SnapshotEvery is the per-user journal length at which the server
	// folds the journal into a snapshot; zero selects the store's
	// default (512 records).
	SnapshotEvery int
	// SyncInterval paces each repository subscription's digest-diff
	// poll loop (see internal/repo); zero selects repo.DefaultInterval.
	SyncInterval time.Duration
	// ShardID and ShardCount make this server one backend of a sharded
	// fleet (see internal/shard): it owns only the users the rendezvous
	// hash assigns to shard ShardID of ShardCount, recovers only their
	// journals at boot, and answers requests for anyone else with a 421
	// ShardRedirect naming the owner.  ShardCount zero (the default)
	// disables sharding entirely; when set, 0 <= ShardID < ShardCount.
	ShardID    int
	ShardCount int
}

// User is one identified user's server-side state.
type User struct {
	// Name is the login name.
	Name string
	// Defaults remembers the last-used parameters per model, keyed by
	// model name: the "relevant user default parameters" of the paper.
	Defaults map[string]map[string]float64
	// Designs are the user's sheets, by name.
	Designs map[string]*sheet.Design

	// mu is this user's shard of the server lock: it guards Defaults,
	// Designs and every design tree under them.  Handlers lock the one
	// user they serve, so one user's Play (write lock) never blocks
	// another user's GETs.  Lock order: never acquire Server.mu while
	// holding a User lock (the few paths that need both take Server.mu
	// first, or sequentially).
	mu sync.RWMutex
}

// Server is one PowerPlay site.
type Server struct {
	cfg      Config
	registry *model.Registry

	// mu guards only the account tables: sessions and the users map.
	// Per-user state — designs and defaults — is sharded behind each
	// User's own lock, so traffic for different users never contends
	// here beyond the map lookup.
	mu       sync.RWMutex
	sessions map[string]string // token -> user name
	users    map[string]*User

	// sweepCaches memoizes exploration points per (user, design)
	// snapshot, so repeated sweep requests re-use already-priced
	// operating points.  Guarded by its own mutex: cache bookkeeping
	// must not serialize behind design edits holding a user lock.
	sweepMu     sync.Mutex
	sweepCaches *lruCache[*sweepCacheEntry]

	// readCaches memoizes sheet evaluations and rendered pages per
	// (user, design) — the serving hot path (see pagecache.go).
	cacheMu    sync.Mutex
	readCaches *lruCache[*readEntry]

	// started timestamps server construction for the healthz uptime.
	started time.Time

	// ring is the rendezvous hash over the fleet's canonical member
	// names, nil on an unsharded server (see shard.go).  Immutable
	// after NewServer.
	ring *shard.Ring

	// store is the durability layer (nil without a DataDir): the
	// per-user mutation journals and snapshots every mutating handler
	// writes through (see persist.go).
	store *store.Store
	// lastRecovery summarizes the boot replay for healthz.
	lastRecovery *store.RecoveryStats
	// mounts is the live remote-mount table, journaled so a restarted
	// site can re-mount.  Guarded by mu.
	mounts []store.MountSpec

	// pubs is the content-addressed view of the registry — the
	// publication index behind /api/v1/registry — and the home of the
	// federation state: mirror origins and live subscriptions (see
	// registry.go and federation.go).
	pubs *pubIndex
	// recoveredSubs holds the subscriptions boot recovery found, until
	// ResumeSubscriptions consumes them.
	recoveredSubs []store.SubSpec
}

// sweepCacheEntry ties a point cache to the design snapshot it was
// filled from: the design's identity and mutation generation plus the
// registry generation.  Any sheet edit or library change retires the
// cache (see explore.Cache's validity rule).
type sweepCacheEntry struct {
	design *sheet.Design
	gen    uint64
	regGen uint64
	cache  *explore.Cache
}

// NewServer builds a site over a model registry (usually
// library.Standard() plus site-local models).  If cfg.DataDir is set,
// previously persisted users, designs and user models are loaded.
func NewServer(cfg Config, reg *model.Registry) (*Server, error) {
	if cfg.SiteName == "" {
		cfg.SiteName = "PowerPlay"
	}
	if cfg.ShardCount < 0 || (cfg.ShardCount > 0 && (cfg.ShardID < 0 || cfg.ShardID >= cfg.ShardCount)) {
		return nil, fmt.Errorf("web: shard id %d not in 0..%d", cfg.ShardID, cfg.ShardCount-1)
	}
	s := &Server{
		cfg:         cfg,
		registry:    reg,
		sessions:    make(map[string]string),
		users:       make(map[string]*User),
		sweepCaches: newLRU[*sweepCacheEntry](cfg.cacheEntries()),
		readCaches:  newLRU[*readEntry](cfg.cacheEntries()),
		started:     time.Now(),
		pubs:        newPubIndex(),
	}
	if cfg.ShardCount > 0 {
		// Built before openStore: recovery filters the on-disk user
		// partition through the same ring the request path uses.
		s.ring = shard.NewRing(shard.Members(cfg.ShardCount))
	}
	if cfg.DataDir != "" {
		if err := s.openStore(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Registry exposes the site's model namespace.
func (s *Server) Registry() *model.Registry { return s.registry }

// cacheEntries resolves the per-cache entry cap (see Config).
func (c Config) cacheEntries() int {
	switch {
	case c.CacheEntries > 0:
		return c.CacheEntries
	case c.CacheEntries < 0:
		return 1
	}
	return defaultCacheEntries
}

// defaultCacheEntries bounds each read-path cache when
// Config.CacheEntries is unset: roomy for any realistic number of
// concurrently active (user, design) pairs, small enough that retired
// designs and departed users cannot accumulate into a leak.
const defaultCacheEntries = 256

// sweepCacheFor returns the evaluation cache for one user's design at
// its current generation, retiring any cache filled from an older
// snapshot of the sheet or of the model library.  The caller must hold
// the user's lock (read or write) so the generation cannot move
// between the read and the sweep's design clone.
func (s *Server) sweepCacheFor(user string, d *sheet.Design) *explore.Cache {
	key := user + "/" + d.Name
	gen, regGen := d.Generation(), s.registry.Generation()
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	e, ok := s.sweepCaches.get(key)
	if !ok || e.design != d || e.gen != gen || e.regGen != regGen {
		e = &sweepCacheEntry{design: d, gen: gen, regGen: regGen, cache: explore.NewCache(0)}
		if s.sweepCaches.put(key, e) {
			webCacheEvictions.With("sweep").Inc()
		}
	}
	return e.cache
}

// InstallDesign places a design under a user's account (creating the
// account if needed) and persists it: how seeded demos and programmatic
// imports land on a site.  If the user already has a design with that
// name, the existing one wins and the call is a no-op — so re-running
// a seed flag on a durable site after a restart cannot clobber the
// edits recovery just replayed.
func (s *Server) InstallDesign(userName string, d *sheet.Design) error {
	if !validUserName(userName) {
		return fmt.Errorf("web: invalid user name %q", userName)
	}
	if !validUserName(d.Name) {
		return fmt.Errorf("web: design name %q not addressable in URLs", d.Name)
	}
	if !s.Owns(userName) {
		return fmt.Errorf("web: user %s belongs to shard %d, not this backend (shard %d)",
			userName, s.ring.Pick(userName), s.cfg.ShardID)
	}
	s.mu.Lock()
	u, ok := s.users[userName]
	if !ok {
		u = &User{
			Name:     userName,
			Defaults: make(map[string]map[string]float64),
			Designs:  make(map[string]*sheet.Design),
		}
		s.users[userName] = u
	}
	s.mu.Unlock()
	u.mu.Lock()
	if _, exists := u.Designs[d.Name]; exists {
		u.mu.Unlock()
		return nil
	}
	u.Designs[d.Name] = d
	rec, err := designRecord(d)
	var lag int
	if err == nil {
		lag, err = s.appendUser(u.Name, rec)
	}
	u.mu.Unlock()
	if err != nil {
		return fmt.Errorf("web: persisting design %s: %w", d.Name, err)
	}
	s.maybeSnapshotUser(u, lag)
	return nil
}

// Handler returns the site's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Every route registers through the instrumentation wrapper, with
	// its literal pattern as the (bounded-cardinality) route label.
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, instrument(pattern, h))
	}
	// HTML application.
	handle("GET /{$}", s.handleFront)
	handle("POST /login", s.handleLogin)
	handle("GET /logout", s.handleLogout)
	handle("GET /menu", s.auth(s.handleMenu))
	handle("GET /library", s.auth(s.handleLibrary))
	handle("GET /cell/{name...}", s.auth(s.handleCellForm))
	handle("POST /cell/{name...}", s.auth(s.handleCellEval))
	handle("GET /designs", s.auth(s.handleDesigns))
	handle("POST /designs", s.auth(s.handleDesignCreate))
	handle("POST /designs/delete", s.auth(s.handleDesignDelete))
	handle("GET /design/{name}", s.auth(s.handleDesignSheet))
	handle("POST /design/{name}/play", s.auth(s.handleDesignPlay))
	handle("POST /design/{name}/rows", s.auth(s.handleDesignRows))
	handle("GET /design/{name}/analysis", s.auth(s.handleDesignAnalysis))
	handle("GET /design/{name}/sweep", s.auth(s.handleDesignSweep))
	handle("GET /design/{name}/export", s.auth(s.handleDesignExport))
	handle("GET /design/{name}/csv", s.auth(s.handleDesignCSV))
	handle("POST /designs/import", s.auth(s.handleDesignImport))
	handle("GET /models/new", s.auth(s.handleModelForm))
	handle("POST /models/new", s.auth(s.handleModelCreate))
	handle("GET /models/edit/{name...}", s.auth(s.handleModelEdit))
	handle("GET /doc/{name...}", s.auth(s.handleDoc))
	handle("GET /help", s.handleHelp)
	// Remote model protocol (Figures 6-7): the versioned JSON API,
	// the deprecated bare aliases, and the unauthenticated probes
	// (see apiv1.go).
	s.apiRoutes(handle)
	// Hardening stack (see middleware.go): recovery outermost so it
	// also covers the inner middleware, then request IDs (so every
	// deeper log line and error envelope can carry one), then the body
	// cap, then the per-request deadline.
	var h http.Handler = mux
	if s.cfg.ShardCount > 0 {
		h = shardHeaderMiddleware(h, s.shardID())
	}
	if d := s.requestTimeout(); d > 0 {
		h = timeoutMiddleware(h, d)
	}
	if max := s.maxBodyBytes(); max > 0 {
		h = limitBodyMiddleware(h, max)
	}
	return recoverMiddleware(requestIDMiddleware(h))
}

// requestTimeout resolves the per-request context deadline (0 = off).
// The default never undercuts the sweep budget: a site configured for
// long sweeps gets a correspondingly longer request deadline.
func (s *Server) requestTimeout() time.Duration {
	switch {
	case s.cfg.RequestTimeout > 0:
		return s.cfg.RequestTimeout
	case s.cfg.RequestTimeout < 0:
		return 0
	}
	if d := s.sweepTimeout() + 30*time.Second; d > defaultRequestTimeout {
		return d
	}
	return defaultRequestTimeout
}

// maxBodyBytes resolves the request-body cap (0 = off).
func (s *Server) maxBodyBytes() int64 {
	switch {
	case s.cfg.MaxBodyBytes > 0:
		return s.cfg.MaxBodyBytes
	case s.cfg.MaxBodyBytes < 0:
		return 0
	}
	return defaultMaxBodyBytes
}

// ----- sessions -----

const sessionCookie = "powerplay_session"

func newToken() string {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		panic(err) // crypto/rand failure is not recoverable
	}
	return hex.EncodeToString(b)
}

// currentUser resolves the request's session, if any.
func (s *Server) currentUser(r *http.Request) *User {
	c, err := r.Cookie(sessionCookie)
	if err != nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	name, ok := s.sessions[c.Value]
	if !ok {
		return nil
	}
	return s.users[name]
}

// auth wraps HTML handlers: unidentified users are sent to the login
// page, since WWW browsers do not supply user names.
func (s *Server) auth(h func(http.ResponseWriter, *http.Request, *User)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Sharded fleets first: a request routed here for a user another
		// backend owns gets the ShardRedirect, not a login bounce —
		// the router heals on the 421, a login bounce would loop.
		if s.misdirected(w, r) {
			return
		}
		u := s.currentUser(r)
		if u == nil {
			http.Redirect(w, r, "/", http.StatusSeeOther)
			return
		}
		h(w, r, u)
	}
}

// apiAuth guards the remote protocol with the optional site password,
// carried in the X-PowerPlay-Key header ("secure scripts at Universal
// Resource Locators").
func (s *Server) apiAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Password != "" && r.Header.Get("X-PowerPlay-Key") != s.cfg.Password {
			apiFail(w, r, http.StatusUnauthorized, codeUnauthorized, "missing or wrong site key")
			return
		}
		h(w, r)
	}
}

// login identifies a user, creating server-side state on first access.
func (s *Server) login(name string) (token string, err error) {
	if !validUserName(name) {
		return "", fmt.Errorf("invalid user name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[name]
	if !ok {
		u = &User{
			Name:     name,
			Defaults: make(map[string]map[string]float64),
			Designs:  make(map[string]*sheet.Design),
		}
		s.users[name] = u
		// Journal the account's existence so a crashed site greets the
		// user by name again.  Still under s.mu, so no concurrent writer
		// for this brand-new user exists yet.
		if _, err := s.appendUser(name, store.Record{Kind: store.KindUserCreate}); err != nil {
			delete(s.users, name)
			return "", fmt.Errorf("persisting account: %w", err)
		}
	}
	token = newToken()
	s.sessions[token] = name
	return token, nil
}

func validUserName(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, r := range s {
		ok := r == '_' || r == '-' || r >= 'a' && r <= 'z' ||
			r >= 'A' && r <= 'Z' || r >= '0' && r <= '9'
		if !ok {
			return false
		}
	}
	return true
}

// ----- legacy persistence (read-only, for migration) -----

func (s *Server) userDir(name string) string {
	return filepath.Join(s.cfg.DataDir, "users", name)
}

// loadState restores users, designs and site models from the
// pre-journal flat-file layout.  It survives only as the migration
// reader (see persist.go); the write path is the journal store.
func (s *Server) loadState() error {
	if blob, err := os.ReadFile(filepath.Join(s.cfg.DataDir, "models.json")); err == nil {
		if _, err := library.LoadEquations(s.registry, blob); err != nil {
			return fmt.Errorf("web: loading site models: %w", err)
		}
	}
	usersDir := filepath.Join(s.cfg.DataDir, "users")
	entries, err := os.ReadDir(usersDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		if !e.IsDir() || !validUserName(e.Name()) {
			continue
		}
		u := &User{
			Name:     e.Name(),
			Defaults: make(map[string]map[string]float64),
			Designs:  make(map[string]*sheet.Design),
		}
		dir := s.userDir(u.Name)
		if blob, err := os.ReadFile(filepath.Join(dir, "defaults.json")); err == nil {
			if err := json.Unmarshal(blob, &u.Defaults); err != nil {
				return fmt.Errorf("web: user %s defaults: %w", u.Name, err)
			}
		}
		designs, _ := os.ReadDir(filepath.Join(dir, "designs"))
		for _, de := range designs {
			if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
				continue
			}
			blob, err := os.ReadFile(filepath.Join(dir, "designs", de.Name()))
			if err != nil {
				return err
			}
			d, err := sheet.ParseDesign(blob, s.registry)
			if err != nil {
				return fmt.Errorf("web: user %s design %s: %w", u.Name, de.Name(), err)
			}
			u.Designs[strings.TrimSuffix(de.Name(), ".json")] = d
		}
		s.users[u.Name] = u
	}
	return nil
}
