package web

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"powerplay/internal/core/model"
	"powerplay/internal/core/sheet"
	"powerplay/internal/shard"
	"powerplay/internal/store"
	"powerplay/internal/units"
)

// base carries the fields every page shares.
type base struct {
	Site  string
	Title string
	Error string
}

func (s *Server) base(title string) base {
	return base{Site: s.cfg.SiteName, Title: title}
}

func (s *Server) render(w http.ResponseWriter, name string, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTmpl.ExecuteTemplate(w, name, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ----- login / menu -----

type loginPage struct {
	base
	NeedPassword bool
}

func (s *Server) handleFront(w http.ResponseWriter, r *http.Request) {
	if s.currentUser(r) != nil {
		http.Redirect(w, r, "/menu", http.StatusSeeOther)
		return
	}
	s.render(w, "login", loginPage{base: s.base("User Identification"), NeedPassword: s.cfg.Password != ""})
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	fail := func(msg string) {
		p := loginPage{base: s.base("User Identification"), NeedPassword: s.cfg.Password != ""}
		p.Error = msg
		w.WriteHeader(http.StatusForbidden)
		s.render(w, "login", p)
	}
	if s.cfg.Password != "" && r.FormValue("password") != s.cfg.Password {
		fail("wrong site password")
		return
	}
	name := r.FormValue("user")
	// On a sharded backend, a login for a user another shard owns is a
	// routing mistake, not a bad credential: answer the ShardRedirect
	// so the router re-routes to the owner.
	if s.ring != nil && validUserName(name) && !s.Owns(name) {
		s.shardRedirect(w, r, name)
		return
	}
	token, err := s.login(name)
	if err != nil {
		fail(err.Error())
		return
	}
	http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: token, Path: "/", HttpOnly: true})
	// The routing cookie: the bare user name, readable by the shard
	// router so it can route without session state.  Deliberately not
	// HttpOnly-sensitive — it holds nothing the user did not type.
	http.SetCookie(w, &http.Cookie{Name: shard.UserCookie, Value: name, Path: "/"})
	http.Redirect(w, r, "/menu", http.StatusSeeOther)
}

func (s *Server) handleLogout(w http.ResponseWriter, r *http.Request) {
	if c, err := r.Cookie(sessionCookie); err == nil {
		s.mu.Lock()
		delete(s.sessions, c.Value)
		s.mu.Unlock()
	}
	http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: "", Path: "/", MaxAge: -1})
	http.SetCookie(w, &http.Cookie{Name: shard.UserCookie, Value: "", Path: "/", MaxAge: -1})
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

type menuPage struct {
	base
	User        string
	DesignCount int
}

func (s *Server) handleMenu(w http.ResponseWriter, r *http.Request, u *User) {
	u.mu.RLock()
	n := len(u.Designs)
	u.mu.RUnlock()
	s.render(w, "menu", menuPage{base: s.base("Main Menu"), User: u.Name, DesignCount: n})
}

// ----- library -----

type libraryPage struct {
	base
	Groups []libraryGroup
}

type libraryGroup struct {
	Class string
	Cells []libraryCell
}

type libraryCell struct{ Name, Title string }

// titleCase upper-cases the first letter of an ASCII class name.
func titleCase(s string) string {
	if s == "" {
		return s
	}
	if c := s[0]; c >= 'a' && c <= 'z' {
		return string(c-'a'+'A') + s[1:]
	}
	return s
}

func (s *Server) handleLibrary(w http.ResponseWriter, r *http.Request, u *User) {
	page := libraryPage{base: s.base("Library Elements")}
	classes := []model.Class{
		model.Computation, model.Storage, model.Controller, model.Interconnect,
		model.Processor, model.Analog, model.Converter, model.Commodity, model.Macro,
	}
	for _, c := range classes {
		g := libraryGroup{Class: titleCase(string(c))}
		for _, name := range s.registry.ByClass(c) {
			m, _ := s.registry.Lookup(name)
			g.Cells = append(g.Cells, libraryCell{Name: name, Title: m.Info().Title})
		}
		if len(g.Cells) > 0 {
			page.Groups = append(page.Groups, g)
		}
	}
	s.render(w, "library", page)
}

// ----- cell form (Figure 4) -----

type cellPage struct {
	base
	Name   string
	Doc    string
	Params []cellParam
	Design string
	Row    string
	Result *cellResult
}

type cellParam struct {
	Name, Unit, Doc, Value string
	Options                []model.Option
}

type cellResult struct {
	Power, Energy, Cap, Area, Delay string
	Notes                           []string
}

func (s *Server) cellPage(u *User, name string) (*cellPage, model.Model, bool) {
	m, ok := s.registry.Lookup(name)
	if !ok {
		return nil, nil, false
	}
	info := m.Info()
	page := &cellPage{base: s.base(info.Title), Name: name, Doc: info.Doc, Design: "", Row: ""}
	u.mu.RLock()
	defaults := u.Defaults[name]
	u.mu.RUnlock()
	for _, p := range info.Params {
		v := p.Default
		if dv, ok := defaults[p.Name]; ok {
			v = dv
		}
		page.Params = append(page.Params, cellParam{
			Name: p.Name, Unit: p.Unit, Doc: p.Doc,
			// Engineering notation ("2M", "253f") round-trips through
			// units.Parse and avoids HTML-escaping surprises with "e+".
			Value:   units.Format(v, ""),
			Options: p.Options,
		})
	}
	return page, m, true
}

func (s *Server) handleCellForm(w http.ResponseWriter, r *http.Request, u *User) {
	page, _, ok := s.cellPage(u, r.PathValue("name"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.render(w, "cell", page)
}

// handleCellEval is the instant-feedback loop of Figure 4: parse the
// form, evaluate, remember the user's values as new defaults, and
// either display the result or save the configured element to a design.
func (s *Server) handleCellEval(w http.ResponseWriter, r *http.Request, u *User) {
	name := r.PathValue("name")
	page, m, ok := s.cellPage(u, name)
	if !ok {
		http.NotFound(w, r)
		return
	}
	params := make(model.Params)
	srcs := make(map[string]string)
	var parseErr error
	for _, p := range m.Info().Params {
		raw := strings.TrimSpace(r.FormValue("p_" + p.Name))
		if raw == "" {
			continue
		}
		v, err := units.Parse(raw)
		if err != nil {
			parseErr = fmt.Errorf("parameter %s: %v", p.Name, err)
			break
		}
		params[p.Name] = v
		srcs[p.Name] = raw
	}
	// Refresh displayed values with what the user typed.
	for i := range page.Params {
		if src, ok := srcs[page.Params[i].Name]; ok {
			page.Params[i].Value = src
		}
	}
	if parseErr != nil {
		page.Error = parseErr.Error()
		w.WriteHeader(http.StatusBadRequest)
		s.render(w, "cell", page)
		return
	}
	est, err := model.Evaluate(m, params)
	if err != nil {
		page.Error = err.Error()
		w.WriteHeader(http.StatusBadRequest)
		s.render(w, "cell", page)
		return
	}
	// Update the user's defaults for this model, journaling the merge.
	u.mu.Lock()
	if u.Defaults[name] == nil {
		u.Defaults[name] = make(map[string]float64)
	}
	for k, v := range params {
		u.Defaults[name][k] = v
	}
	lag, perr := s.appendUser(u.Name, store.Record{
		Kind: store.KindDefaults, Model: name, Values: params,
	})
	u.mu.Unlock()
	if perr != nil {
		page.Error = "persisting defaults: " + perr.Error()
	}
	s.maybeSnapshotUser(u, lag)

	if r.FormValue("action") == "Add to design" {
		s.addCellToDesign(w, r, u, name, srcs, page)
		return
	}
	page.Result = &cellResult{
		Power:  est.Power().String(),
		Energy: est.EnergyPerOp().String(),
		Cap:    est.SwitchedCap().String(),
		Area:   est.Area.String(),
		Delay:  est.Delay.String(),
		Notes:  est.Notes,
	}
	s.render(w, "cell", page)
}

func (s *Server) addCellToDesign(w http.ResponseWriter, r *http.Request, u *User,
	modelName string, srcs map[string]string, page *cellPage) {
	designName := strings.TrimSpace(r.FormValue("design"))
	rowName := strings.TrimSpace(r.FormValue("row"))
	page.Design, page.Row = designName, rowName
	u.mu.Lock()
	var recs []store.Record
	d, ok := u.Designs[designName]
	if !ok && designName != "" {
		// Create on first save, like the original tool.  The fresh
		// design (with its stock variables) journals whole; the row and
		// parameters below journal as mutations on top of it.
		d = sheet.NewDesign(designName, s.registry)
		d.Root.SetGlobalValue("vdd", 1.5, "1.5")
		d.Root.SetGlobalValue("f", 1e6, "1MHz")
		u.Designs[designName] = d
		if rec, err := designRecord(d); err == nil {
			recs = append(recs, rec)
		}
		ok = true
	}
	var addErr error
	if !ok {
		addErr = fmt.Errorf("no design named %q", designName)
	} else {
		m := sheet.Mutation{Op: sheet.MutAddRow, Name: rowName, Model: modelName}
		if addErr = d.ApplyMutation(m); addErr == nil {
			recs = append(recs, mutRecord(d, m))
			for _, p := range pageParamOrder(page) {
				if src, has := srcs[p]; has {
					pm := sheet.Mutation{Op: sheet.MutSetParam, Path: rowName, Name: p, Expr: src}
					if addErr = d.ApplyMutation(pm); addErr != nil {
						break
					}
					recs = append(recs, mutRecord(d, pm))
				}
			}
		}
	}
	// Journal whatever landed, even on a halfway failure: the
	// in-memory tree keeps the successful edits, and the journal must
	// agree with it.
	lag, perr := s.appendUser(u.Name, recs...)
	u.mu.Unlock()
	s.maybeSnapshotUser(u, lag)
	if addErr != nil {
		page.Error = addErr.Error()
		w.WriteHeader(http.StatusBadRequest)
		s.render(w, "cell", page)
		return
	}
	if perr != nil {
		page.Error = "persisting design: " + perr.Error()
		s.render(w, "cell", page)
		return
	}
	http.Redirect(w, r, "/design/"+designName, http.StatusSeeOther)
}

func pageParamOrder(page *cellPage) []string {
	names := make([]string, len(page.Params))
	for i, p := range page.Params {
		names[i] = p.Name
	}
	return names
}

// ----- designs -----

type designsPage struct {
	base
	Designs []designEntry
}

type designEntry struct {
	Name string
	Rows int
}

func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request, u *User) {
	page := designsPage{base: s.base("Design Spreadsheets")}
	u.mu.RLock()
	for name, d := range u.Designs {
		rows := 0
		d.Root.Walk(func(*sheet.Node) { rows++ })
		page.Designs = append(page.Designs, designEntry{Name: name, Rows: rows - 1})
	}
	u.mu.RUnlock()
	sort.Slice(page.Designs, func(i, j int) bool { return page.Designs[i].Name < page.Designs[j].Name })
	s.render(w, "designs", page)
}

func (s *Server) handleDesignCreate(w http.ResponseWriter, r *http.Request, u *User) {
	name := strings.TrimSpace(r.FormValue("name"))
	u.mu.Lock()
	var err, perr error
	var lag int
	switch {
	case !validUserName(name):
		err = fmt.Errorf("invalid design name %q", name)
	case u.Designs[name] != nil:
		err = fmt.Errorf("design %q already exists", name)
	default:
		d := sheet.NewDesign(name, s.registry)
		d.Root.SetGlobalValue("vdd", 1.5, "1.5")
		d.Root.SetGlobalValue("f", 1e6, "1MHz")
		u.Designs[name] = d
		var rec store.Record
		if rec, perr = designRecord(d); perr == nil {
			lag, perr = s.appendUser(u.Name, rec)
		}
	}
	u.mu.Unlock()
	if err != nil {
		page := designsPage{base: s.base("Design Spreadsheets")}
		page.Error = err.Error()
		w.WriteHeader(http.StatusBadRequest)
		s.render(w, "designs", page)
		return
	}
	if perr != nil {
		http.Error(w, "persisting design: "+perr.Error(), http.StatusInternalServerError)
		return
	}
	s.maybeSnapshotUser(u, lag)
	http.Redirect(w, r, "/design/"+name, http.StatusSeeOther)
}

// handleDesignDelete removes a design from the account — journaled,
// so the deletion survives a crash like any other mutation.
func (s *Server) handleDesignDelete(w http.ResponseWriter, r *http.Request, u *User) {
	name := strings.TrimSpace(r.FormValue("name"))
	u.mu.Lock()
	_, ok := u.Designs[name]
	var lag int
	var perr error
	if ok {
		delete(u.Designs, name)
		lag, perr = s.appendUser(u.Name, store.Record{
			Kind: store.KindDesignDelete, Design: name,
		})
	}
	u.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	if perr != nil {
		http.Error(w, "persisting deletion: "+perr.Error(), http.StatusInternalServerError)
		return
	}
	s.maybeSnapshotUser(u, lag)
	http.Redirect(w, r, "/designs", http.StatusSeeOther)
}
