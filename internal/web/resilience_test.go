package web

import (
	"context"
	"errors"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"powerplay/internal/core/model"
	"powerplay/internal/core/sheet"
	"powerplay/internal/faultnet"
	"powerplay/internal/library"
)

// These tests drive the resilient remote protocol through the faultnet
// harness: a real eastern PowerPlay site behind a scripted misbehaving
// network, consumed by a western Remote client.

// fastRetry is the default policy with millisecond pacing, so failure
// scenarios run at test speed.
func fastRetry() *RetryPolicy {
	return &RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

// faultedSite starts an eastern site and a fault proxy in front of it.
func faultedSite(t *testing.T, schedule ...faultnet.Fault) *faultnet.Proxy {
	t.Helper()
	s, err := NewServer(Config{SiteName: "east"}, library.Standard())
	if err != nil {
		t.Fatal(err)
	}
	p := faultnet.New(s.Handler(), schedule...)
	t.Cleanup(p.Close)
	return p
}

// sramParams is a valid evaluation point for library.SRAM.
func sramParams() map[string]float64 {
	return map[string]float64{"words": 1024, "bits": 8, "vdd": 1.5, "f": 1e6}
}

// TestRemoteGetRetriesTransientFailures: an idempotent lookup survives a
// 5xx, a connection reset, and a garbage body back to back — one retry
// per failure mode, then success.
func TestRemoteGetRetriesTransientFailures(t *testing.T) {
	p := faultedSite(t,
		faultnet.Fault{Mode: faultnet.Status, Code: 500},
		faultnet.Fault{Mode: faultnet.Reset},
		faultnet.Fault{Mode: faultnet.Garbage},
	) // then the schedule is exhausted: Pass
	rc := &Remote{BaseURL: p.URL(), Retry: fastRetry()}
	models, err := rc.Models(context.Background())
	if err != nil {
		t.Fatalf("Models should survive 3 transient failures: %v", err)
	}
	if len(models) < 20 {
		t.Errorf("got %d models", len(models))
	}
	if got := p.Requests(); got != 4 {
		t.Errorf("requests = %d, want 4 (3 failures + 1 success)", got)
	}
}

// TestRemoteGetExhaustsBudget: a site that never answers sanely costs
// exactly MaxAttempts requests and returns the typed unavailable error.
func TestRemoteGetExhaustsBudget(t *testing.T) {
	p := faultedSite(t)
	p.SetDefault(faultnet.Fault{Mode: faultnet.Status, Code: 503})
	rc := &Remote{BaseURL: p.URL(), Retry: &RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
	}}
	_, err := rc.Models(context.Background())
	if !errors.Is(err, ErrRemoteUnavailable) {
		t.Fatalf("want ErrRemoteUnavailable, got %v", err)
	}
	if got := p.Requests(); got != 3 {
		t.Errorf("requests = %d, want MaxAttempts=3", got)
	}
}

// TestRemoteEvalRetryClassification: an Eval POST is never re-sent
// after a 5xx (the server may have done the work), is re-sent after a
// connection-level reset (it demonstrably never arrived), and an
// application-level rejection is neither retried nor "unavailable".
func TestRemoteEvalRetryClassification(t *testing.T) {
	t.Run("5xx not retried", func(t *testing.T) {
		p := faultedSite(t)
		p.SetDefault(faultnet.Fault{Mode: faultnet.Status, Code: 500})
		rc := &Remote{BaseURL: p.URL(), Retry: fastRetry()}
		_, err := rc.Eval(context.Background(), library.SRAM, sramParams())
		if !errors.Is(err, ErrRemoteUnavailable) {
			t.Fatalf("want ErrRemoteUnavailable, got %v", err)
		}
		if got := p.Requests(); got != 1 {
			t.Errorf("requests = %d: a 5xx Eval must not be re-sent", got)
		}
	})
	t.Run("reset retried", func(t *testing.T) {
		p := faultedSite(t, faultnet.Fault{Mode: faultnet.Reset})
		rc := &Remote{BaseURL: p.URL(), Retry: fastRetry()}
		est, err := rc.Eval(context.Background(), library.SRAM, sramParams())
		if err != nil {
			t.Fatalf("Eval should survive one reset: %v", err)
		}
		if len(est.Dynamic) == 0 {
			t.Error("estimate came back empty")
		}
		if got := p.Requests(); got != 2 {
			t.Errorf("requests = %d, want 2 (reset + retry)", got)
		}
	})
	t.Run("app error final", func(t *testing.T) {
		p := faultedSite(t)
		rc := &Remote{BaseURL: p.URL(), Retry: fastRetry()}
		_, err := rc.Eval(context.Background(), "ghost", nil)
		if err == nil || errors.Is(err, ErrRemoteUnavailable) {
			t.Fatalf("unknown model is an app error, not unavailability: %v", err)
		}
		if got := p.Requests(); got != 1 {
			t.Errorf("requests = %d: app errors must not be retried", got)
		}
		if got := rc.BreakerState(); got != BreakerClosed {
			t.Errorf("breaker = %v: an answering site is healthy", got)
		}
	})
}

// TestBreakerLifecycle walks the full circuit: consecutive failures
// trip it open, open means fail-fast with zero network traffic, the
// cooldown admits a single probe whose failure re-opens and whose
// success closes.
func TestBreakerLifecycle(t *testing.T) {
	p := faultedSite(t)
	p.SetDefault(faultnet.Fault{Mode: faultnet.Reset})
	const cooldown = 50 * time.Millisecond
	rc := &Remote{
		BaseURL: p.URL(),
		Retry:   &RetryPolicy{MaxAttempts: 1, MaxEvalAttempts: 1, BaseDelay: time.Millisecond},
		Breaker: &Breaker{Threshold: 3, Cooldown: cooldown},
	}
	ctx := context.Background()

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := rc.Models(ctx); !errors.Is(err, ErrRemoteUnavailable) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	if got := rc.BreakerState(); got != BreakerOpen {
		t.Fatalf("after 3 failures breaker = %v, want open", got)
	}
	if got := p.Requests(); got != 3 {
		t.Fatalf("requests = %d, want 3", got)
	}

	// Open: fail fast, typed, and no packet leaves the building.
	_, err := rc.Models(ctx)
	if !errors.Is(err, ErrCircuitOpen) || !errors.Is(err, ErrRemoteUnavailable) {
		t.Fatalf("open breaker error not typed: %v", err)
	}
	if got := p.Requests(); got != 3 {
		t.Errorf("requests = %d: open breaker must not touch the network", got)
	}

	// After the cooldown one probe goes out; the site is still dead, so
	// the breaker snaps back open.
	time.Sleep(cooldown + 20*time.Millisecond)
	if _, err := rc.Models(ctx); !errors.Is(err, ErrRemoteUnavailable) {
		t.Fatalf("probe against dead site: %v", err)
	}
	if got := p.Requests(); got != 4 {
		t.Errorf("requests = %d: half-open admits exactly one probe", got)
	}
	if got := rc.BreakerState(); got != BreakerOpen {
		t.Errorf("failed probe should re-open, got %v", got)
	}
	if _, err := rc.Models(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Errorf("re-opened breaker should fail fast: %v", err)
	}
	if got := p.Requests(); got != 4 {
		t.Errorf("requests = %d after failed probe + fail-fast", got)
	}

	// The site recovers; the next probe closes the circuit for good.
	p.SetDefault(faultnet.Fault{})
	time.Sleep(cooldown + 20*time.Millisecond)
	if _, err := rc.Models(ctx); err != nil {
		t.Fatalf("probe against healed site: %v", err)
	}
	if got := rc.BreakerState(); got != BreakerClosed {
		t.Errorf("successful probe should close, got %v", got)
	}
	if _, err := rc.Models(ctx); err != nil {
		t.Errorf("closed breaker should pass traffic: %v", err)
	}
}

// TestMountAtomic: a mount that fails mid-fetch, or mid-register on a
// name collision, leaves the consumer registry exactly as it was —
// never a partially-mounted prefix.
func TestMountAtomic(t *testing.T) {
	t.Run("fetch failure", func(t *testing.T) {
		// Two good responses (the model list, the first schema), then the
		// site dies while the schemas are still being fetched.
		p := faultedSite(t, faultnet.Fault{}, faultnet.Fault{})
		p.SetDefault(faultnet.Fault{Mode: faultnet.Status, Code: 500})
		rc := &Remote{BaseURL: p.URL(), Retry: &RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond}}
		reg := library.Standard()
		before := append([]string(nil), reg.Names()...)
		if _, err := MountContext(context.Background(), reg, rc, "east"); !errors.Is(err, ErrRemoteUnavailable) {
			t.Fatalf("mount against dying site: %v", err)
		}
		assertNamesEqual(t, reg, before)
	})
	t.Run("name collision", func(t *testing.T) {
		p := faultedSite(t)
		rc := &Remote{BaseURL: p.URL(), Retry: fastRetry()}
		reg := library.Standard()
		// Occupy one local name a remote model would take: the registry
		// replaces on Register, so without the up-front collision check
		// the mount would silently clobber this model.
		remote := library.Standard().Names()
		sort.Strings(remote)
		collision := "east." + remote[len(remote)-1]
		local := &model.Func{
			Meta: model.Info{Name: collision, Title: "squatter", Class: model.Computation},
			Fn: func(p model.Params) (*model.Estimate, error) {
				return &model.Estimate{}, nil
			},
		}
		reg.MustRegister(local)
		before := append([]string(nil), reg.Names()...)
		_, err := MountContext(context.Background(), reg, rc, "east")
		if err == nil || !strings.Contains(err.Error(), "clobber") {
			t.Fatalf("mount over an occupied name: %v", err)
		}
		assertNamesEqual(t, reg, before)
		if m, _ := reg.Lookup(collision); m != local {
			t.Error("failed mount replaced the pre-existing local model")
		}
	})
	t.Run("remount is idempotent", func(t *testing.T) {
		p := faultedSite(t)
		rc := &Remote{BaseURL: p.URL(), Retry: fastRetry()}
		reg := library.Standard()
		n1, err := Mount(reg, rc, "east")
		if err != nil {
			t.Fatal(err)
		}
		// Mounting the same remote under the same prefix again replaces
		// its own proxies — that is not clobbering.
		n2, err := Mount(reg, rc, "east")
		if err != nil {
			t.Fatalf("remount of own proxies: %v", err)
		}
		if n1 != n2 {
			t.Errorf("remount count %d != %d", n2, n1)
		}
	})
}

func assertNamesEqual(t *testing.T, reg *model.Registry, want []string) {
	t.Helper()
	got := reg.Names()
	if len(got) != len(want) {
		t.Fatalf("registry changed: %d names, want %d", len(got), len(want))
	}
	sort.Strings(got)
	w := append([]string(nil), want...)
	sort.Strings(w)
	for i := range got {
		if got[i] != w[i] {
			t.Fatalf("registry changed: %q vs %q", got[i], w[i])
		}
	}
}

// TestRefreshSyncsMount: Refresh picks up newly published remote
// models, drops unpublished ones (but only this mount's proxies), and a
// refresh against a dead site leaves the working mount untouched.
func TestRefreshSyncsMount(t *testing.T) {
	east, tsEast, cEast := site(t, Config{SiteName: "east"})
	ctx := context.Background()
	westReg := library.Standard()
	rc := &Remote{BaseURL: tsEast.URL, Retry: fastRetry()}
	n0, err := Mount(westReg, rc, "east")
	if err != nil {
		t.Fatal(err)
	}

	// The eastern site publishes a new model; Refresh mounts it.
	loginAs(t, tsEast, cEast, "characterizer", "")
	post(t, cEast, tsEast.URL+"/models/new", url.Values{
		"name": {"dsp.fresh"}, "class": {"computation"}, "csw": {"1p"},
	})
	n1, err := Refresh(ctx, westReg, rc, "east")
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n0+1 {
		t.Errorf("after publish: %d mounted, want %d", n1, n0+1)
	}
	if _, ok := westReg.Lookup("east.dsp.fresh"); !ok {
		t.Error("refresh did not mount the new model")
	}

	// A local model that happens to share the prefix is not Refresh's to
	// drop when the site unpublishes.
	westReg.MustRegister(&model.Func{
		Meta: model.Info{Name: "east.local.notaproxy", Title: "local", Class: model.Computation},
		Fn: func(p model.Params) (*model.Estimate, error) {
			return &model.Estimate{}, nil
		},
	})
	east.Registry().Unregister("dsp.fresh")
	if _, err := Refresh(ctx, westReg, rc, "east"); err != nil {
		t.Fatal(err)
	}
	if _, ok := westReg.Lookup("east.dsp.fresh"); ok {
		t.Error("refresh did not unmount the unpublished model")
	}
	if _, ok := westReg.Lookup("east.local.notaproxy"); !ok {
		t.Error("refresh dropped a local model that merely shares the prefix")
	}

	// Refresh through a dead network: error out, change nothing.
	before := append([]string(nil), westReg.Names()...)
	p := faultedSite(t)
	p.SetDefault(faultnet.Fault{Mode: faultnet.Reset})
	dead := &Remote{BaseURL: p.URL(), Retry: &RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond}}
	if _, err := Refresh(ctx, westReg, dead, "east"); !errors.Is(err, ErrRemoteUnavailable) {
		t.Fatalf("refresh against dead site: %v", err)
	}
	assertNamesEqual(t, westReg, before)
}

// TestSheetDegradesToStaleWhenRemoteDies is the acceptance scenario:
// a sheet built on mounted proxy models keeps evaluating after the
// publishing site dies mid-session.  Previously-evaluated cells serve
// visibly stale estimates with identical totals; never-evaluated points
// return the typed ErrRemoteUnavailable; once the breaker opens, the
// degraded sheet costs zero network traffic; and the rendered page
// marks the stale rows.
func TestSheetDegradesToStaleWhenRemoteDies(t *testing.T) {
	p := faultedSite(t)
	westReg := library.Standard()
	rc := &Remote{
		BaseURL: p.URL(),
		Retry:   fastRetry(),
		Breaker: &Breaker{Threshold: 2, Cooldown: time.Hour},
	}
	if _, err := Mount(westReg, rc, "east"); err != nil {
		t.Fatal(err)
	}

	d := sheet.NewDesign("d", westReg)
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1MHz")
	mem := d.Root.MustAddChild("mem", "east."+library.SRAM)
	if err := mem.SetParam("words", "1024"); err != nil {
		t.Fatal(err)
	}
	if err := mem.SetParam("bits", "8"); err != nil {
		t.Fatal(err)
	}

	// Healthy: the evaluation round-trips over the network.
	r1, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Power <= 0 {
		t.Fatalf("healthy power = %v", r1.Power)
	}

	// The publisher dies mid-session.
	p.SetDefault(faultnet.Fault{Mode: faultnet.Reset})

	// The previously-evaluated point still evaluates — same total,
	// visibly stale.
	r2, err := d.Evaluate()
	if err != nil {
		t.Fatalf("degraded evaluation should serve stale estimates: %v", err)
	}
	if r2.Power != r1.Power {
		t.Errorf("stale power %v != last good %v", r2.Power, r1.Power)
	}
	memRes := r2.Children[0]
	var stale bool
	for _, note := range memRes.Estimate.Notes {
		if strings.HasPrefix(note, staleNotePrefix) {
			stale = true
		}
	}
	if !stale {
		t.Errorf("degraded row carries no stale note: %v", memRes.Estimate.Notes)
	}

	// A never-evaluated point cannot be served from cache: it fails with
	// the typed error, visible through sheet evaluation's wrapping.
	_, err = d.EvaluateAt(map[string]float64{"vdd": 2.0})
	if err == nil {
		t.Fatal("never-evaluated point should fail when the remote is dead")
	}
	if !errors.Is(err, ErrRemoteUnavailable) {
		t.Errorf("error not typed through sheet evaluation: %v", err)
	}

	// By now the consecutive failures have opened the breaker: the
	// degraded sheet keeps evaluating without touching the network.
	if got := rc.BreakerState(); got != BreakerOpen {
		t.Fatalf("breaker = %v, want open", got)
	}
	quiet := p.Requests()
	if _, err := d.Evaluate(); err != nil {
		t.Fatalf("evaluation under open breaker: %v", err)
	}
	if got := p.Requests(); got != quiet {
		t.Errorf("open breaker leaked %d requests", got-quiet)
	}

	// The rendered sheet page marks the stale cell.
	west, err := NewServer(Config{SiteName: "west"}, westReg)
	if err != nil {
		t.Fatal(err)
	}
	if err := west.InstallDesign("u", d); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(west.Handler())
	defer ts.Close()
	jar, _ := cookiejar.New(nil)
	c := &http.Client{Jar: jar}
	loginAs(t, ts, c, "u", "")
	code, body := fetch(t, c, ts.URL+"/design/d")
	if code != 200 {
		t.Fatalf("degraded sheet page: %d", code)
	}
	if !strings.Contains(body, "(stale)") || !strings.Contains(body, staleNotePrefix) {
		t.Errorf("page does not mark the stale row:\n%s", grep(body, "stale"))
	}
}

// TestSweepClientDisconnectCancelsWorkers: a client that abandons a
// sweep mid-flight must cancel the exploration — the workers stop
// dispatching points (no further remote evals) and the handler returns,
// which is what lets the server shut down.  The remote's slow-drip mode
// makes each point slow enough that the sweep is provably mid-flight
// when the client goes away.
func TestSweepClientDisconnectCancelsWorkers(t *testing.T) {
	const steps = 200
	if runtime.GOMAXPROCS(0) >= steps/2 {
		t.Skipf("GOMAXPROCS=%d: too many sweep workers to observe cancellation", runtime.GOMAXPROCS(0))
	}
	p := faultedSite(t)
	westReg := library.Standard()
	rc := &Remote{BaseURL: p.URL(), Retry: fastRetry()}
	if _, err := Mount(westReg, rc, "east"); err != nil {
		t.Fatal(err)
	}
	d := sheet.NewDesign("d", westReg)
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.SetGlobalValue("f", 1e6, "1MHz")
	mem := d.Root.MustAddChild("mem", "east."+library.SRAM)
	if err := mem.SetParam("words", "1024"); err != nil {
		t.Fatal(err)
	}

	west, err := NewServer(Config{SiteName: "west"}, westReg)
	if err != nil {
		t.Fatal(err)
	}
	if err := west.InstallDesign("u", d); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(west.Handler())
	jar, _ := cookiejar.New(nil)
	c := &http.Client{Jar: jar}
	loginAs(t, ts, c, "u", "")

	// From here on every remote eval drips its body slowly: each sweep
	// point takes on the order of 100 ms, so a full 200-point sweep
	// would run for tens of seconds.
	base := p.Requests()
	p.SetDefault(faultnet.Fault{Mode: faultnet.SlowDrip, Drip: 4 * time.Millisecond, Chunk: 8})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET",
		ts.URL+"/design/d/sweep?var=vdd&from=1.0&to=3.0&steps=200", nil)
	if err != nil {
		t.Fatal(err)
	}
	timer := time.AfterFunc(80*time.Millisecond, cancel)
	defer timer.Stop()
	if _, err := c.Do(req); err == nil {
		t.Fatal("the sweep finished before the client disconnected; slow-drip not slow enough")
	}

	// The handler must come home: ts.Close blocks until every in-flight
	// handler (and therefore every sweep worker the handler waits on)
	// has returned.
	closed := make(chan struct{})
	go func() { ts.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(15 * time.Second):
		t.Fatal("server close timed out: sweep workers not released after client disconnect")
	}

	swept := p.Requests() - base
	if swept < 1 {
		t.Fatal("sweep never reached the remote; the test proved nothing")
	}
	if swept >= steps {
		t.Errorf("sweep dispatched %d/%d points after client disconnect", swept, steps)
	}
	// And the traffic has actually stopped, not merely paused.
	settled := p.Requests()
	time.Sleep(100 * time.Millisecond)
	if got := p.Requests(); got != settled {
		t.Errorf("requests still arriving after handler returned: %d -> %d", settled, got)
	}
}
