package web

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerplay/internal/core/sheet"
	"powerplay/internal/library"
	"powerplay/internal/store"
)

// durableSite builds a server over dir with per-write fsync, so tests
// can abandon it mid-flight (a simulated crash) and reopen the
// directory.
func durableSite(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server, *http.Client) {
	t.Helper()
	cfg.DataDir = dir
	cfg.Durability = "always"
	s, err := NewServer(cfg, library.Standard())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	jar, _ := cookiejar.New(nil)
	return s, ts, &http.Client{Jar: jar}
}

// fetchWithETag grabs a page plus its validator.
func fetchWithETag(t *testing.T, c *http.Client, url string) (body, etag string) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw), resp.Header.Get("ETag")
}

// TestCrashRecoveryExactState is the acceptance bar: kill the server
// mid-life (no shutdown, no snapshot), restart over the directory, and
// every account's rendered sheet page must be byte-identical — ETag
// included, so a browser's cached copy revalidates across the crash.
func TestCrashRecoveryExactState(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, c := durableSite(t, dir, Config{})
	loginAs(t, ts1, c, "rabaey", "")
	post(t, c, ts1.URL+"/designs", url.Values{"name": {"infopad"}})
	post(t, c, ts1.URL+"/design/infopad/rows", url.Values{
		"action": {"Add"}, "row": {"bank"}, "model": {library.SRAM},
	})
	post(t, c, ts1.URL+"/design/infopad/play", url.Values{
		"row_bank|words": {"4096"}, "glob_vdd": {"3.3"},
	})
	post(t, c, ts1.URL+"/cell/"+library.ArrayMultiplier, url.Values{
		"p_bwA": {"12"}, "action": {"Calculate"},
	})
	preBody, preTag := fetchWithETag(t, c, ts1.URL+"/design/infopad")
	if preTag == "" {
		t.Fatal("sheet page served without an ETag")
	}
	// Crash: the httptest listener dies, the Server is abandoned with
	// its journals un-snapshotted and never Closed.
	ts1.Close()
	if lag := s1.JournalLag(); lag == 0 {
		t.Fatal("test expects un-snapshotted journal records at crash time")
	}

	s2, ts2, c2 := durableSite(t, dir, Config{})
	loginAs(t, ts2, c2, "rabaey", "")
	postBody, postTag := fetchWithETag(t, c2, ts2.URL+"/design/infopad")
	if postTag != preTag {
		t.Errorf("ETag diverged across crash: %s -> %s", preTag, postTag)
	}
	if postBody != preBody {
		t.Error("sheet page bytes diverged across crash")
	}
	stats := s2.LastRecovery()
	if stats == nil || stats.RecordsReplayed == 0 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	// The multiplier defaults rode along.
	_, body := fetch(t, c2, ts2.URL+"/cell/"+library.ArrayMultiplier)
	if !strings.Contains(body, `value="12"`) {
		t.Error("defaults lost across crash")
	}
}

// TestSnapshotFoldingAndCleanShutdown: crossing the SnapshotEvery
// threshold folds the journal into a snapshot mid-flight, and a clean
// Close leaves empty journals, so the next boot replays nothing.
func TestSnapshotFoldingAndCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, c := durableSite(t, dir, Config{SnapshotEvery: 4})
	loginAs(t, ts1, c, "u", "")
	post(t, c, ts1.URL+"/designs", url.Values{"name": {"d"}})
	// Each Play journals at least a touch record; a handful crosses the
	// 4-record threshold and folds.
	for i := 0; i < 6; i++ {
		post(t, c, ts1.URL+"/design/d/play", url.Values{"glob_vdd": {"2.5"}})
	}
	if lag := s1.JournalLag(); lag >= 7 {
		t.Errorf("journal never folded: lag %d", lag)
	}
	preBody, preTag := fetchWithETag(t, c, ts1.URL+"/design/d")
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("clean shutdown: %v", err)
	}

	s2, ts2, c2 := durableSite(t, dir, Config{})
	loginAs(t, ts2, c2, "u", "")
	stats := s2.LastRecovery()
	if stats == nil {
		t.Fatal("no recovery stats on a durable site")
	}
	if stats.RecordsReplayed != 0 {
		t.Errorf("clean shutdown left %d journal records", stats.RecordsReplayed)
	}
	if stats.SnapshotsLoaded == 0 {
		t.Error("clean shutdown should boot from snapshots")
	}
	postBody, postTag := fetchWithETag(t, c2, ts2.URL+"/design/d")
	if postTag != preTag || postBody != preBody {
		t.Error("state diverged across clean shutdown")
	}
}

// TestDesignDeleteSurvivesCrash: deletion is a journaled mutation too.
func TestDesignDeleteSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	_, ts1, c := durableSite(t, dir, Config{})
	loginAs(t, ts1, c, "u", "")
	post(t, c, ts1.URL+"/designs", url.Values{"name": {"keep"}})
	post(t, c, ts1.URL+"/designs", url.Values{"name": {"drop"}})
	if code, _ := post(t, c, ts1.URL+"/designs/delete", url.Values{"name": {"drop"}}); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if code, _ := post(t, c, ts1.URL+"/designs/delete", url.Values{"name": {"drop"}}); code != http.StatusNotFound {
		t.Errorf("double delete should 404, got %d", code)
	}
	ts1.Close() // crash

	_, ts2, c2 := durableSite(t, dir, Config{})
	loginAs(t, ts2, c2, "u", "")
	if code, _ := fetch(t, c2, ts2.URL+"/design/keep"); code != http.StatusOK {
		t.Errorf("kept design lost: %d", code)
	}
	if code, _ := fetch(t, c2, ts2.URL+"/design/drop"); code != http.StatusNotFound {
		t.Errorf("deleted design resurrected: %d", code)
	}
}

// TestUserModelSurvivesCrash: the site-scope journal carries equation
// models, and recovered designs can price through them.
func TestUserModelSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	_, ts1, c := durableSite(t, dir, Config{})
	loginAs(t, ts1, c, "u", "")
	if code, body := post(t, c, ts1.URL+"/models/new", url.Values{
		"name": {"user.crashproof"}, "csw": {"3p"}, "class": {"computation"},
	}); code != http.StatusOK {
		t.Fatalf("model create: %d %s", code, body)
	}
	post(t, c, ts1.URL+"/designs", url.Values{"name": {"d"}})
	post(t, c, ts1.URL+"/design/d/rows", url.Values{
		"action": {"Add"}, "row": {"x"}, "model": {"user.crashproof"},
	})
	preBody, _ := fetchWithETag(t, c, ts1.URL+"/design/d")
	ts1.Close() // crash

	s2, ts2, c2 := durableSite(t, dir, Config{})
	if _, ok := s2.Registry().Lookup("user.crashproof"); !ok {
		t.Fatal("user model lost across crash")
	}
	loginAs(t, ts2, c2, "u", "")
	postBody, _ := fetchWithETag(t, c2, ts2.URL+"/design/d")
	if postBody != preBody {
		t.Error("design pricing through user model diverged across crash")
	}
}

// TestLegacyStateMigration: a data directory written by the
// pre-journal flat-file layout imports into the store on first boot
// and survives a second (store-native) restart.
func TestLegacyStateMigration(t *testing.T) {
	dir := t.TempDir()
	d := sheet.NewDesign("vintage", library.Standard())
	d.Root.SetGlobalValue("vdd", 1.5, "1.5")
	d.Root.MustAddChild("bank", library.SRAM)
	blob, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	udir := filepath.Join(dir, "users", "old")
	if err := os.MkdirAll(filepath.Join(udir, "designs"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile := func(path string, b []byte) {
		t.Helper()
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(filepath.Join(udir, "defaults.json"), []byte(`{"ucb.sram":{"words":512}}`))
	writeFile(filepath.Join(udir, "designs", "vintage.json"), blob)
	writeFile(filepath.Join(dir, "models.json"),
		[]byte(`[{"name":"user.legacy","csw":"2p","class":"computation"}]`))

	s1, ts1, c := durableSite(t, dir, Config{})
	if _, ok := s1.Registry().Lookup("user.legacy"); !ok {
		t.Fatal("legacy site model not migrated")
	}
	loginAs(t, ts1, c, "old", "")
	if code, body := fetch(t, c, ts1.URL+"/design/vintage"); code != 200 || !strings.Contains(body, "bank") {
		t.Fatalf("legacy design not migrated: %d", code)
	}
	_, body := fetch(t, c, ts1.URL+"/cell/"+library.SRAM)
	if !strings.Contains(body, `value="512"`) {
		t.Error("legacy defaults not migrated")
	}
	ts1.Close() // crash: migrated state must now live in the store

	s2, ts2, c2 := durableSite(t, dir, Config{})
	if s2.LastRecovery().SnapshotsLoaded == 0 {
		t.Error("migration should have snapshotted into the store")
	}
	if _, ok := s2.Registry().Lookup("user.legacy"); !ok {
		t.Error("migrated model lost on second boot")
	}
	loginAs(t, ts2, c2, "old", "")
	if code, _ := fetch(t, c2, ts2.URL+"/design/vintage"); code != 200 {
		t.Errorf("migrated design lost on second boot: %d", code)
	}
}

// TestHealthzDurabilityBlock: the probe reports policy, journal lag
// and the last recovery's stats on a durable site, and omits the
// block on an in-memory one.
func TestHealthzDurabilityBlock(t *testing.T) {
	dir := t.TempDir()
	_, ts1, c := durableSite(t, dir, Config{})
	loginAs(t, ts1, c, "u", "")
	post(t, c, ts1.URL+"/designs", url.Values{"name": {"d"}})
	ts1.Close() // crash, so the next boot has recovery stats to report

	_, ts2, c2 := durableSite(t, dir, Config{})
	_, body := fetch(t, c2, ts2.URL+"/api/v1/healthz")
	var resp struct {
		Durability *struct {
			Policy            string               `json:"policy"`
			JournalLagRecords int                  `json:"journal_lag_records"`
			LastRecovery      *store.RecoveryStats `json:"last_recovery"`
		} `json:"durability"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Durability == nil {
		t.Fatal("healthz missing durability block on a durable site")
	}
	if resp.Durability.Policy != "always" {
		t.Errorf("policy = %q", resp.Durability.Policy)
	}
	if lr := resp.Durability.LastRecovery; lr == nil || lr.RecordsReplayed == 0 {
		t.Errorf("last_recovery = %+v", lr)
	}
	if resp.Durability.JournalLagRecords == 0 {
		t.Error("journal lag should count the replayed, un-snapshotted records")
	}

	// An in-memory site has no durability story to tell.
	_, tsMem, _ := site(t, Config{})
	_, body = fetch(t, c2, tsMem.URL+"/api/v1/healthz")
	if strings.Contains(body, "durability") {
		t.Error("in-memory healthz should omit the durability block")
	}
}
