package web

import (
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and parses it into sample values plus the
// declared family types.
func scrape(t *testing.T, base string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	blob, _ := io.ReadAll(resp.Body)
	samples = make(map[string]float64)
	types = make(map[string]string)
	for _, line := range strings.Split(string(blob), "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples, types
}

// TestMetricsSmoke drives one of everything through a site — sheet GETs
// (miss then hits), a sweep, API evaluations, an API error — then
// scrapes /metrics and checks the contract: the instrument families
// spanning every subsystem are present with correct types, histogram
// buckets are cumulative, and counters are monotonic across scrapes.
func TestMetricsSmoke(t *testing.T) {
	_, base, c := sheetSite(t)
	for i := 0; i < 3; i++ {
		if code, _ := fetch(t, c, base+"/design/d"); code != 200 {
			t.Fatalf("sheet GET: %d", code)
		}
	}
	if code, _ := fetch(t, c, base+"/design/d/sweep?var=vdd&from=1&to=3&steps=5"); code != 200 {
		t.Fatalf("sweep GET: %d", code)
	}
	// Two edit-Plays so the incremental engine records a dirty-cone run
	// on top of full runs: the first introduces the global (a structural
	// change, full recompute), the second rebinds it (incremental).
	post(t, c, base+"/design/d/play", url.Values{"glob_vdd": {"1.8"}})
	post(t, c, base+"/design/d/play", url.Values{"glob_vdd": {"2.1"}})
	if code, _ := fetch(t, c, base+"/design/d"); code != 200 {
		t.Fatal("post-Play GET failed")
	}
	evalBody := `{"model":"` + "sram" + `","params":{}}`
	doAPI(t, "POST", base+"/api/v1/eval", evalBody, nil) // error path is fine
	doAPI(t, "GET", base+"/api/v1/models", "", nil)

	samples, types := scrape(t, base)

	// Families spanning HTTP edge, caches, sweep runner, evaluation
	// plans and the remote client must all be exported.
	wantFamilies := map[string]string{
		"powerplay_http_requests_total":               "counter",
		"powerplay_http_request_seconds":              "histogram",
		"powerplay_http_inflight_requests":            "gauge",
		"powerplay_http_panics_total":                 "counter",
		"powerplay_pagecache_events_total":            "counter",
		"powerplay_webcache_evictions_total":          "counter",
		"powerplay_sweepcache_points_total":           "counter",
		"powerplay_explore_points_total":              "counter",
		"powerplay_explore_worker_busy_seconds_total": "counter",
		"powerplay_explore_cancellations_total":       "counter",
		"powerplay_sheet_plan_compiles_total":         "counter",
		"powerplay_sheet_plan_fallbacks_total":        "counter",
		"powerplay_sheet_incremental_plays_total":     "counter",
		"powerplay_sheet_dirty_slots":                 "histogram",
		"powerplay_sheet_wavefront_width":             "gauge",
		"powerplay_expr_program_compiles_total":       "counter",
		"powerplay_remote_attempts_total":             "counter",
		"powerplay_remote_retries_total":              "counter",
		"powerplay_remote_stale_serves_total":         "counter",
		"powerplay_breaker_transitions_total":         "counter",
	}
	for name, typ := range wantFamilies {
		if got, ok := types[name]; !ok {
			t.Errorf("family %s missing from /metrics", name)
		} else if got != typ {
			t.Errorf("family %s has type %s, want %s", name, got, typ)
		}
	}

	// Traffic landed where it should.
	if samples[`powerplay_http_requests_total{route="GET /design/{name}",method="GET",status="200"}`] < 3 {
		t.Error("sheet GETs not counted")
	}
	if samples[`powerplay_pagecache_events_total{event="page_hit"}`] < 1 ||
		samples[`powerplay_pagecache_events_total{event="page_miss"}`] < 1 {
		t.Error("pagecache hit/miss not counted")
	}
	if samples["powerplay_explore_points_total"] < 5 {
		t.Errorf("explore points = %v, want >= 5",
			samples["powerplay_explore_points_total"])
	}

	// The incremental engine saw both a full run (first miss) and a
	// dirty-cone run (the second edit-Play), and recorded cone sizes.
	if samples[`powerplay_sheet_incremental_plays_total{mode="full"}`] < 1 {
		t.Error("no full incremental-engine run counted")
	}
	if samples[`powerplay_sheet_incremental_plays_total{mode="incremental"}`] < 1 {
		t.Error("no incremental (dirty-cone) run counted")
	}
	if samples["powerplay_sheet_dirty_slots_count"] < 2 {
		t.Error("dirty-slot histogram missing observations")
	}
	if samples["powerplay_sheet_wavefront_width"] < 1 {
		t.Error("wavefront width gauge not set")
	}

	// Histogram buckets are cumulative (non-decreasing in le order) and
	// the +Inf bucket equals _count, per series.
	checkHistogram(t, samples, "powerplay_http_request_seconds")
	checkHistogram(t, samples, "powerplay_sheet_dirty_slots")

	// Counters are monotonic: more traffic never decreases any counter
	// sample present in both scrapes.
	if code, _ := fetch(t, c, base+"/design/d"); code != 200 {
		t.Fatal("second-round GET failed")
	}
	again, _ := scrape(t, base)
	for key, v := range samples {
		name, _, _ := strings.Cut(key, "{")
		name = strings.TrimSuffix(name, "_bucket")
		name = strings.TrimSuffix(name, "_sum")
		name = strings.TrimSuffix(name, "_count")
		if types[name] == "gauge" {
			continue
		}
		if v2, ok := again[key]; ok && v2 < v {
			t.Errorf("counter %s went backwards: %v -> %v", key, v, v2)
		}
	}
}

// checkHistogram validates the cumulative-bucket invariant for every
// series of one histogram family.
func checkHistogram(t *testing.T, samples map[string]float64, fam string) {
	t.Helper()
	type bkt struct {
		le  float64
		cum float64
	}
	series := make(map[string][]bkt) // non-le labels -> buckets
	for key, v := range samples {
		rest, ok := strings.CutPrefix(key, fam+"_bucket{")
		if !ok {
			continue
		}
		i := strings.LastIndex(rest, `le="`)
		if i < 0 {
			t.Fatalf("bucket without le: %s", key)
		}
		labels := strings.TrimSuffix(rest[:i], ",")
		leStr := strings.TrimSuffix(rest[i+len(`le="`):], `"}`)
		le := math.Inf(1)
		if leStr != "+Inf" {
			f, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bad le in %s: %v", key, err)
			}
			le = f
		}
		series[labels] = append(series[labels], bkt{le, v})
	}
	if len(series) == 0 {
		t.Fatalf("no bucket series for %s", fam)
	}
	for labels, buckets := range series {
		sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
		prev := 0.0
		for _, b := range buckets {
			if b.cum < prev {
				t.Errorf("%s{%s}: bucket le=%v decreases (%v < %v)", fam, labels, b.le, b.cum, prev)
			}
			prev = b.cum
		}
		inf := buckets[len(buckets)-1]
		if !math.IsInf(inf.le, 1) {
			t.Errorf("%s{%s}: no +Inf bucket", fam, labels)
		}
		countKey := fam + "_count"
		if labels != "" {
			countKey += "{" + labels + "}"
		}
		if count, ok := samples[countKey]; !ok || count != inf.cum {
			t.Errorf("%s{%s}: +Inf bucket %v != _count %v", fam, labels, inf.cum, count)
		}
	}
}
