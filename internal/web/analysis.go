package web

import (
	"fmt"
	"net/http"

	"powerplay/internal/core/sheet"
	"powerplay/internal/units"
)

// The analysis page: the Figure 5 reading of a sheet — ranked
// consumers, the point of diminishing returns, and a timing check at
// the sheet's clock — one hyperlink away from the spreadsheet.

type analysisPage struct {
	base
	Name       string
	Total      string
	Consumers  []analysisRow
	TopPaths   string
	Coverage   string
	Timing     []timingRow
	ClockLabel string
	MaxFreq    string
}

type analysisRow struct {
	Path, Power string
	SharePct    string
}

type timingRow struct {
	Path, Delay, MaxFreq, Slack string
	Meets                       bool
}

func (s *Server) handleDesignAnalysis(w http.ResponseWriter, r *http.Request, u *User) {
	d, ok := s.design(u, r.PathValue("name"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	// Snapshot under the read lock, evaluate outside it: the analysis
	// of a large sheet must not hold up (or race with) concurrent
	// edits.  Evaluation of a single point is not interruptible, so
	// the request context is honored at the boundaries.
	u.mu.RLock()
	snap := d.Clone()
	var fClock float64
	if g := snap.Root.Global("f"); g != nil {
		if v, ok := g.Const(); ok {
			fClock = v
		}
	}
	u.mu.RUnlock()
	page := analysisPage{base: s.base(d.Name + " analysis"), Name: d.Name}
	if err := r.Context().Err(); err != nil {
		return // client already gone
	}
	res, err := snap.Evaluate()
	if err != nil {
		page.Error = err.Error()
		w.WriteHeader(http.StatusUnprocessableEntity)
		s.render(w, "analysis", page)
		return
	}
	page.Total = units.Watts(res.Power).String()
	for _, row := range sheet.Advice(res) {
		page.Consumers = append(page.Consumers, analysisRow{
			Path:     row.Path,
			Power:    row.Power.String(),
			SharePct: fmt.Sprintf("%.1f%%", 100*row.Share),
		})
	}
	top := sheet.DiminishingReturns(res, 0.8)
	var covered float64
	for i, row := range top {
		if i > 0 {
			page.TopPaths += ", "
		}
		page.TopPaths += row.Path
		covered += row.Share
	}
	page.Coverage = fmt.Sprintf("%.0f%%", 100*covered)
	page.MaxFreq = sheet.MaxFrequency(res).String()
	if fClock > 0 {
		page.ClockLabel = units.Hertz(fClock).String()
		rows, err := sheet.TimingReport(res, units.Hertz(fClock))
		if err == nil {
			for _, tr := range rows {
				page.Timing = append(page.Timing, timingRow{
					Path:    tr.Path,
					Delay:   tr.Delay.String(),
					MaxFreq: tr.MaxFreq.String(),
					Slack:   units.Seconds(tr.SlackSeconds).String(),
					Meets:   tr.Meets,
				})
			}
		}
	}
	s.render(w, "analysis", page)
}
