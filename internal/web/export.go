package web

import (
	"encoding/csv"
	"fmt"
	"net/http"
	"strings"

	"powerplay/internal/core/sheet"
	"powerplay/internal/store"
	"powerplay/internal/units"
)

// Design import/export: sheets travel as the same JSON the server
// persists, so a design built at one site (or by the ppcli tool) drops
// into another user's account — the design re-use the paper's shared
// libraries enable.  CSV export feeds external spreadsheet tools, the
// 1996 equivalent of "download as Excel".

func (s *Server) handleDesignExport(w http.ResponseWriter, r *http.Request, u *User) {
	d, ok := s.design(u, r.PathValue("name"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	u.mu.RLock()
	blob, err := d.MarshalJSON()
	u.mu.RUnlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", d.Name+".json"))
	_, _ = w.Write(blob)
}

func (s *Server) handleDesignImport(w http.ResponseWriter, r *http.Request, u *User) {
	blob := []byte(r.FormValue("design"))
	if len(blob) == 0 {
		http.Error(w, "powerplay: empty design payload", http.StatusBadRequest)
		return
	}
	d, err := sheet.ParseDesign(blob, s.registry)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if name := strings.TrimSpace(r.FormValue("name")); name != "" {
		d.Name = name
		d.Root.Name = name
	}
	if !validUserName(d.Name) {
		http.Error(w, fmt.Sprintf("powerplay: design name %q not addressable", d.Name), http.StatusBadRequest)
		return
	}
	u.mu.Lock()
	_, exists := u.Designs[d.Name]
	var lag int
	var perr error
	if !exists {
		u.Designs[d.Name] = d
		var rec store.Record
		if rec, perr = designRecord(d); perr == nil {
			lag, perr = s.appendUser(u.Name, rec)
		}
	}
	u.mu.Unlock()
	if exists {
		http.Error(w, fmt.Sprintf("powerplay: design %q already exists", d.Name), http.StatusConflict)
		return
	}
	if perr != nil {
		http.Error(w, "persisting design: "+perr.Error(), http.StatusInternalServerError)
		return
	}
	s.maybeSnapshotUser(u, lag)
	http.Redirect(w, r, "/design/"+d.Name, http.StatusSeeOther)
}

func (s *Server) handleDesignCSV(w http.ResponseWriter, r *http.Request, u *User) {
	d, ok := s.design(u, r.PathValue("name"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	u.mu.RLock()
	res, err := s.evalDesign(u.Name, d)
	u.mu.RUnlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", d.Name+".csv"))
	cw := csv.NewWriter(w)
	_ = cw.Write([]string{"path", "model", "parameters", "energy_per_op_J", "power_W", "area_m2", "delay_s"})
	var walk func(*sheet.Result)
	walk = func(rr *sheet.Result) {
		if rr.Node.Parent() != nil || rr.Node.Model != "" {
			var params []string
			for _, b := range rr.Node.Params {
				params = append(params, b.Name+"="+b.Expr.Source())
			}
			_ = cw.Write([]string{
				rr.Node.Path(), rr.Node.Model, strings.Join(params, " "),
				units.Sci(float64(rr.EnergyPerOp), ""),
				units.Sci(float64(rr.Power), ""),
				units.Sci(float64(rr.Area), ""),
				units.Sci(float64(rr.Delay), ""),
			})
		}
		for _, c := range rr.Children {
			walk(c)
		}
	}
	walk(res)
	_ = cw.Write([]string{"TOTAL", "", "",
		"", units.Sci(float64(res.Power), ""),
		units.Sci(float64(res.Area), ""), units.Sci(float64(res.Delay), "")})
	cw.Flush()
}
