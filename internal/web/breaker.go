package web

// The circuit breaker moved to internal/circuit when the shard router
// (internal/shard) needed the same machinery against its backends; the
// remote model protocol's names survive here as aliases so PR 3's
// callers — and its tests — compile unchanged.

import "powerplay/internal/circuit"

// ErrCircuitOpen is returned (wrapped in ErrRemoteUnavailable) when a
// Remote's circuit breaker is rejecting requests without trying the
// network.
var ErrCircuitOpen = circuit.ErrOpen

// Breaker is a per-site circuit breaker for the remote model protocol
// (see circuit.Breaker for the state machine).
type Breaker = circuit.Breaker

// BreakerState enumerates the classic three circuit-breaker states.
type BreakerState = circuit.State

// Breaker states.
const (
	// BreakerClosed: requests flow; failures are counted.
	BreakerClosed = circuit.Closed
	// BreakerOpen: requests fail fast until the cooldown elapses.
	BreakerOpen = circuit.Open
	// BreakerHalfOpen: one probe request at a time tests recovery.
	BreakerHalfOpen = circuit.HalfOpen
)
