package web

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped in ErrRemoteUnavailable) when a
// Remote's circuit breaker is rejecting requests without trying the
// network.
var ErrCircuitOpen = errors.New("circuit breaker open")

// BreakerState enumerates the classic three circuit-breaker states.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed: requests flow; failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests fail fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request at a time tests recovery.
	BreakerHalfOpen
)

// String names the state for logs and stale-estimate notes.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-site circuit breaker for the remote model protocol.
//
// A run of Threshold consecutive failures trips the breaker open;
// while open, Allow rejects immediately with ErrCircuitOpen, so a dead
// publisher costs each sheet evaluation a map lookup instead of a
// connect timeout.  After Cooldown the breaker admits a single probe
// request (half-open): a success closes the circuit, a failure re-opens
// it for another cooldown.  Concurrent probes are rejected, so a
// recovering site sees one request, not a thundering herd.
//
// The zero value is a ready-to-use breaker with default settings; one
// Breaker must not be shared across sites (its whole point is blaming
// the right publisher).
type Breaker struct {
	// Threshold is the consecutive-failure count that trips the
	// breaker; zero selects 5.
	Threshold int
	// Cooldown is how long the breaker stays open before probing;
	// zero selects 10 s.
	Cooldown time.Duration

	// now replaces the clock in tests; nil uses time.Now.
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 5
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 10 * time.Second
}

// State reports the current state (transitioning open → half-open if
// the cooldown has elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.clock().Sub(b.openedAt) >= b.cooldown() {
		return BreakerHalfOpen
	}
	return b.state
}

// Allow asks permission to issue one request.  It returns nil (go
// ahead) or ErrCircuitOpen.  Every Allow that returns nil must be
// matched by exactly one Success or Failure call.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.clock().Sub(b.openedAt) < b.cooldown() {
			return ErrCircuitOpen
		}
		b.state = BreakerHalfOpen
		breakerTransitions.With("half-open").Inc()
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// Success records a completed request and closes the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		breakerTransitions.With("closed").Inc()
	}
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure records a failed request, tripping or re-opening the circuit
// as appropriate.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state == BreakerHalfOpen {
		// The probe failed: straight back to open.
		b.state = BreakerOpen
		b.openedAt = b.clock()
		breakerTransitions.With("open").Inc()
		return
	}
	b.failures++
	if b.failures >= b.threshold() {
		b.state = BreakerOpen
		b.openedAt = b.clock()
		breakerTransitions.With("open").Inc()
	}
}
