package web

import (
	"context"
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"time"
)

// Server-side hardening for a site under heavy (or hostile) traffic:
// the handler stack returned by Server.Handler wraps the application
// mux in, outermost first,
//
//  1. panic recovery — one evaluating model that panics turns into a
//     500 and a logged stack, not a dead worker process;
//  2. a request-body cap — no client can stream an unbounded design
//     import (or eval payload) into memory; and
//  3. a per-request context timeout — every handler's r.Context() has
//     a deadline, so a stalled remote model or a pathological sweep
//     cannot hold a connection forever.
//
// The companion settings live in Config (MaxBodyBytes, RequestTimeout);
// transport-level limits (header read timeout, idle timeout, graceful
// shutdown) belong to the http.Server that fronts this handler — see
// cmd/powerplay.

// defaultMaxBodyBytes caps request bodies when Config.MaxBodyBytes is
// unset.  Design imports are the largest legitimate payload; the
// paper-scale sheets serialize to a few kilobytes, so 4 MiB is three
// orders of magnitude of headroom.
const defaultMaxBodyBytes = 4 << 20

// defaultRequestTimeout bounds one request's context when
// Config.RequestTimeout is unset: comfortably above the 30 s default
// sweep budget, far below "forever".
const defaultRequestTimeout = 2 * time.Minute

// recoverMiddleware converts handler panics into 500 responses with a
// logged stack trace.  http.ErrAbortHandler passes through: it is the
// sanctioned way to drop a connection mid-response.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			log.Printf("powerplay: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			// Best effort: if the handler already wrote headers this is
			// a no-op and the connection is dropped instead.
			http.Error(w, "internal server error", http.StatusInternalServerError)
		}()
		next.ServeHTTP(w, r)
	})
}

// limitBodyMiddleware caps every request body at max bytes.  Reads past
// the cap fail and MaxBytesReader closes the connection, so oversized
// payloads surface as request errors in whatever handler is decoding.
func limitBodyMiddleware(next http.Handler, max int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, max)
		}
		next.ServeHTTP(w, r)
	})
}

// timeoutMiddleware gives every request context a deadline.  Handlers
// that respect r.Context() (the sweep engine, remote fetches) stop; the
// rest at least inherit a bounded outgoing-call budget.
func timeoutMiddleware(next http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// acceptsGzip reports whether the client's Accept-Encoding admits a
// gzip response body: a "gzip" or "*" coding whose quality is not
// zero.  Used by the cached sheet page path, which pays compression
// once per generation and serves the stored bytes to every willing
// client afterwards (with Vary: Accept-Encoding keeping shared caches
// honest).
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if coding != "gzip" && coding != "*" {
			continue
		}
		q := strings.TrimSpace(params)
		if strings.HasPrefix(q, "q=") {
			switch strings.TrimPrefix(q, "q=") {
			case "0", "0.", "0.0", "0.00", "0.000":
				continue
			}
		}
		return true
	}
	return false
}
